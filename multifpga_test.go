package duet

import (
	"testing"

	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// scaleAccel doubles values popped from FIFO 0 into FIFO 1 after touching
// a line of coherent memory.
type scaleAccel struct {
	gain uint64
	addr uint64
}

func (a *scaleAccel) Start(env *efpga.Env) {
	env.Eng.Go("scale", func(t *sim.Thread) {
		for {
			v := env.Regs.PopFPGA(t, 0)
			b, err := env.Mem[0].Load(t, a.addr, 8)
			if err != nil {
				return
			}
			base := uint64(b[0])
			t.SleepCycles(env.Clk, 2)
			env.Regs.PushCPU(t, 1, v*a.gain+base)
		}
	})
}

// TestMultipleEFPGAs exercises the paper's scalability claim (Fig. 1c):
// multiple independent eFPGAs, each behind its own Duet Adapter, serving
// different cores concurrently while sharing one coherent memory system.
func TestMultipleEFPGAs(t *testing.T) {
	sys := New(Config{
		Cores: 2, MemHubs: 1, EFPGAs: 2, Style: StyleDuet,
		RegSpecs: []core.SoftRegSpec{
			{Kind: core.RegFIFOToFPGA},
			{Kind: core.RegFIFOToCPU},
		},
	})
	if len(sys.Adapters) != 2 || len(sys.Fabrics) != 2 {
		t.Fatalf("adapters=%d fabrics=%d", len(sys.Adapters), len(sys.Fabrics))
	}
	addr0 := sys.Alloc(64)
	addr1 := sys.Alloc(64)
	mk := func(gain, addr uint64) *efpga.Bitstream {
		return efpga.Synthesize(efpga.Design{Name: "scale", LUTLogic: 60, RegBits: 128, PipelineDepth: 3},
			func() efpga.Accelerator { return &scaleAccel{gain: gain, addr: addr} })
	}
	if err := sys.InstallAcceleratorOn(0, mk(3, addr0)); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallAcceleratorOn(1, mk(5, addr1)); err != nil {
		t.Fatal(err)
	}

	results := make([][]uint64, 2)
	for c := 0; c < 2; c++ {
		c := c
		sys.Cores[c].Run("driver", func(p cpu.Proc) {
			addr := addr0
			if c == 1 {
				addr = addr1
			}
			p.Store64(addr, uint64(c+10)) // accelerator pulls this coherently
			p.MMIOWrite64(HubSwitchAddrOn(c, 0, core.SwEnable), 1)
			for i := uint64(1); i <= 6; i++ {
				p.MMIOWrite64(SoftRegAddrOn(c, 0), i)
				results[c] = append(results[c], p.MMIORead64(SoftRegAddrOn(c, 1)))
			}
		})
	}
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		if results[0][i-1] != i*3+10 {
			t.Fatalf("adapter0 results: %v", results[0])
		}
		if results[1][i-1] != i*5+11 {
			t.Fatalf("adapter1 results: %v", results[1])
		}
	}
}

// TestMultiEFPGATLBIsolation verifies per-adapter fault dispatch: a TLB
// fault on adapter 1 is resolved by the kernel without touching adapter 0.
func TestMultiEFPGATLBIsolation(t *testing.T) {
	sys := New(Config{
		Cores: 1, MemHubs: 1, EFPGAs: 2, Style: StyleDuet,
		RegSpecs: []core.SoftRegSpec{
			{Kind: core.RegFIFOToFPGA},
			{Kind: core.RegFIFOToCPU},
		},
	})
	pa := sys.AllocPage()
	va := uint64(0x5000_0000)
	sys.PT.Map(va, pa)
	sys.Dom.DRAM.Write64(pa+8, 777)

	bs := efpga.Synthesize(efpga.Design{Name: "virt", LUTLogic: 40, PipelineDepth: 2},
		func() efpga.Accelerator {
			return accelFunc(func(env *efpga.Env) {
				env.Eng.Go("virt", func(th *sim.Thread) {
					env.Regs.PopFPGA(th, 0)
					b, err := env.Mem[0].Load(th, va+8, 8)
					if err != nil {
						env.Regs.PushCPU(th, 1, 0)
						return
					}
					var v uint64
					for i := range b {
						v |= uint64(b[i]) << (8 * i)
					}
					env.Regs.PushCPU(th, 1, v)
				})
			})
		})
	if err := sys.InstallAcceleratorOn(1, bs); err != nil {
		t.Fatal(err)
	}
	var got uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(HubSwitchAddrOn(1, 0, core.SwVirtMode), 1)
		p.MMIOWrite64(HubSwitchAddrOn(1, 0, core.SwEnable), 1)
		p.MMIOWrite64(SoftRegAddrOn(1, 0), 1)
		got = p.MMIORead64(SoftRegAddrOn(1, 1))
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if got != 777 {
		t.Fatalf("virtual load through adapter 1 = %d", got)
	}
	if sys.Adapters[1].Hub(0).TLB().Misses == 0 {
		t.Fatal("no fault exercised")
	}
	if sys.Adapters[0].Hub(0).TLB().Misses != 0 {
		t.Fatal("adapter 0's TLB was touched by adapter 1's fault")
	}
}
