package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"duet/internal/daemon"
	"duet/internal/faults"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/workload"
)

// daemonOpts carries the daemon command's flag values.
type daemonOpts struct {
	listen      string
	backend     workload.BackendMode
	efpgas      int
	softCPUs    int
	policy      string
	queueCap    int
	maxInflight int
	timescale   float64
	windowMS    float64
	// Fault-injection knobs (see internal/faults): a nonzero wedge
	// probability installs a seeded fault plan below the backend seam,
	// so a live daemon can rehearse degraded operation — /healthz flips
	// to degraded/down and /metrics carries the fault counters. A
	// repair delay (simulated µs) makes quarantine transient, and a
	// domain spec (faults.ParseDomains syntax) adds correlated
	// rack/power outages.
	wedgeProb     float64
	retries       int
	faultSeed     int64
	repairDelayUS int64
	domains       string
}

// daemonCmd boots the HTTP ingest server and blocks until SIGINT/SIGTERM
// (graceful drain: stop admitting, finish every in-flight job, flush a
// final stats line) or a listener error.
func daemonCmd(o daemonOpts) error {
	pol, err := sched.PolicyByName(o.policy)
	if err != nil {
		return err
	}
	var plan *faults.Plan
	if o.wedgeProb > 0 || o.repairDelayUS > 0 || strings.TrimSpace(o.domains) != "" {
		plan = &faults.Plan{
			Seed: o.faultSeed, WedgeProb: o.wedgeProb, MaxRetries: o.retries,
			RepairDelay: sim.Time(o.repairDelayUS) * sim.US,
		}
		if strings.TrimSpace(o.domains) != "" {
			doms, err := faults.ParseDomains(o.domains)
			if err != nil {
				return err
			}
			plan.Domains = doms
		}
	}
	srv, err := daemon.NewServer(daemon.Config{
		Backend:        o.backend,
		EFPGAs:         o.efpgas,
		SoftCPUs:       o.softCPUs,
		Policy:         pol,
		QueueCap:       o.queueCap,
		MaxOutstanding: o.maxInflight,
		Timescale:      o.timescale,
		WindowWidth:    sim.Time(o.windowMS * float64(sim.MS)),
		Faults:         plan,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	go srv.RunTicker(2*time.Millisecond, stop)
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	fmt.Fprintf(os.Stderr, "duetsim daemon: listening on %s (%s backend, %d eFPGAs, policy %s, timescale %g)\n",
		ln.Addr(), o.backend, o.efpgas, pol, o.timescale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		close(stop)
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "duetsim daemon: %v: draining in-flight jobs\n", s)
	}

	// Drain first (every admitted job retires, sync waiters unblock),
	// then shut the listener down so those responses still go out.
	srv.Drain()
	close(stop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("daemon shutdown: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "duetsim daemon: drained; completed %d, failed %d, queue-rejected %d, p50 %v, p99 %v\n",
		st.Completed, st.Failed, st.Rejected, st.P50, st.P99)
	return nil
}

// loadgenOpts carries the loadgen command's flag values.
type loadgenOpts struct {
	target      string
	mode        string
	concurrency int
	rateHz      float64
	duration    time.Duration
	requests    int
	apps        string
	tenants     string
	seed        int64
	timeout     time.Duration
	jsonOut     bool
}

// loadgenCmd drives a running daemon and prints the final report.
func loadgenCmd(o loadgenOpts) error {
	tenants, err := daemon.ParseTenants(o.tenants)
	if err != nil {
		return err
	}
	var apps []string
	if strings.TrimSpace(o.apps) != "" {
		apps = strings.Split(o.apps, ",")
	}
	rep, err := daemon.RunLoadgen(context.Background(), daemon.LoadgenConfig{
		Target:      o.target,
		Mode:        o.mode,
		Concurrency: o.concurrency,
		RateHz:      o.rateHz,
		Duration:    o.duration,
		Jobs:        o.requests,
		Apps:        apps,
		Tenants:     tenants,
		Seed:        o.seed,
		Timeout:     o.timeout,
	})
	if err != nil {
		return err
	}
	if o.jsonOut {
		emitJSON(struct {
			Loadgen daemon.LoadgenReport `json:"loadgen"`
		}{rep})
		return nil
	}
	header(fmt.Sprintf("Loadgen: %s loop against %s (%v)", rep.Mode, o.target, rep.Elapsed.Round(time.Millisecond)))
	fmt.Printf("  sent %d: %d completed, %d failed, %d queue-rejected (429), %d unavailable (503), %d errors, %d retried\n",
		rep.Sent, rep.Completed, rep.Failed, rep.Rejected429, rep.Unavailable503, rep.OtherErrors, rep.Retried)
	fmt.Printf("  throughput %.1f jobs/s\n", rep.ThroughputHz)
	if rep.Completed > 0 {
		fmt.Printf("  wall latency mean %v, p50 %v, p95 %v, p99 %v\n",
			rep.WallMean.Round(time.Microsecond), rep.WallP50.Round(time.Microsecond),
			rep.WallP95.Round(time.Microsecond), rep.WallP99.Round(time.Microsecond))
	}
	return nil
}
