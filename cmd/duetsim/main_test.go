package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSamePath covers the -in/-out overlap guard: `-out F report -in F`
// must be rejected before os.Create truncates the input (the historical
// failure mode), in every spelling of "the same file".
func TestSamePath(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "series.json")
	if err := os.WriteFile(f, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}

	if !samePath(f, f) {
		t.Fatal("identical paths not detected")
	}
	// Different spellings of the same file.
	dotted := filepath.Join(dir, ".", "series.json")
	if !samePath(f, dotted) {
		t.Fatalf("cleaned spelling %q not matched to %q", dotted, f)
	}
	link := filepath.Join(dir, "link.json")
	if err := os.Symlink(f, link); err == nil {
		if !samePath(f, link) {
			t.Fatal("symlinked spelling not matched")
		}
	}

	other := filepath.Join(dir, "other.json")
	if err := os.WriteFile(other, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if samePath(f, other) {
		t.Fatal("distinct files reported as same")
	}
	// A not-yet-existing output never aliases an existing input.
	if samePath(filepath.Join(dir, "new.json"), f) {
		t.Fatal("nonexistent output matched existing input")
	}
}
