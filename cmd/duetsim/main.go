// Command duetsim regenerates the tables and figures of "Duet: Creating
// Harmony between Processors and Embedded FPGAs" (HPCA 2023) from live
// simulation:
//
//	duetsim table1          # area/frequency of Dolly hard components
//	duetsim table2          # soft accelerator synthesis results
//	duetsim fig9            # CPU-eFPGA communication latency breakdown
//	duetsim fig10           # single-processor bandwidth vs eFPGA clock
//	duetsim fig11           # per-processor bandwidth vs contention
//	duetsim fig12           # application speedups and ADP
//	duetsim ablate          # hub-window / CDC-depth / speculation ablations
//	duetsim serve           # multi-tenant accelerator-as-a-service study
//	duetsim cluster         # sharded serve farm across N serve replicas
//	duetsim xval            # model-vs-cycle backend cross-validation gate
//	duetsim chaos           # deterministic fault-injection scenarios
//	duetsim study           # fig9+fig10+fig11+ablations in one sweep
//	duetsim report          # summarize a saved -windows series (-in FILE)
//	duetsim daemon          # live HTTP ingest server over the scheduler
//	duetsim loadgen         # drive a running daemon with open/closed load
//	duetsim all             # the paper's tables and figures above
//
// Every sweep (fig9, fig10, fig11, ablate, study, serve, cluster, xval,
// chaos) runs its grid of independent simulation points on the internal/study
// worker pool; -parallel bounds the pool (default GOMAXPROCS) and the
// output is byte-identical at every width. -json switches the sweep
// commands to machine-readable output with a stable field order; -stats
// stream runs serve/cluster with fixed-memory streaming latency stats;
// -backend selects the serve/cluster execution backend (cycle-level
// Dolly instances, the calibrated analytic model, or hybrid cycle + CPU
// soft-path spill).
//
// -windows N turns on the simulated-time flight recorder for serve and
// cluster: the run's span is split into N windows and every result
// carries a per-window telemetry series (internal/telemetry) — counters,
// per-worker busy time, queue high-water mark and p50/p99 sojourn per
// window. -out FILE redirects stdout to FILE; `report -in FILE` loads a
// saved run (full -json document, bare series array, or CSV) and prints
// per-window tables plus worst-window summaries, and `report -csv`
// re-emits the loaded series as CSV.
//
// `duetsim daemon` turns the simulator into a live service: an HTTP
// front door (POST /v1/jobs, GET /metrics) that maps wall-clock arrivals
// onto the simulated timeline and pushes them through the real
// scheduler; `duetsim loadgen` benchmarks it. See README for endpoints
// and flags.
//
// Absolute numbers come from this repository's cycle-level models; the
// paper's own numbers are printed alongside where published. See
// EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"duet/internal/accel"
	"duet/internal/apps"
	"duet/internal/area"
	"duet/internal/cluster"
	"duet/internal/faults"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/telemetry"
	"duet/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "smaller workloads (faster, less stable numbers)")
	seed := flag.Int64("seed", 1, "serve/cluster: arrival-process seed")
	jobsFlag := flag.String("jobs", "240", "serve/cluster/xval: offered jobs; suffixes and scientific notation accepted (250M, 1e9, 2.5k)")
	efpgas := flag.Int("efpgas", 2, "serve/cluster: number of eFPGAs (per shard)")
	shards := flag.Int("shards", 4, "cluster: number of Duet replicas")
	parallel := flag.Int("parallel", 0, "study-pool width for sweep commands; 0 = GOMAXPROCS, output identical at every width")
	jsonOut := flag.Bool("json", false, "machine-readable output (stable field order) for sweep commands")
	statsMode := flag.String("stats", "exact", "serve/cluster latency stats: exact (per-job ledgers) or stream (fixed-memory digest)")
	backend := flag.String("backend", "cycle", "serve/cluster execution backend: cycle (Dolly instance), model (analytic fast path), hybrid (cycle + CPU soft-path spill)")
	softCPUs := flag.Int("softcpus", 0, "serve/cluster: CPU soft-path workers per replica (hybrid backend defaults to 1)")
	windows := flag.Int("windows", 0, "serve/cluster: record a flight-recorder series over N simulated-time windows (0 = off)")
	progress := flag.Bool("progress", false, "serve/cluster: print progress lines (jobs done, sim time, live heap) to stderr every 2s")
	lookahead := flag.Int("lookahead", 0, "cluster: streaming hand-off lookahead per shard for the stateful front ends — arrivals the router may run ahead of a shard (0 = default 4096; results identical at any bound)")
	scenario := flag.String("scenario", "all", "chaos: named fault scenario (see chaos -list) or all")
	chaosList := flag.Bool("list", false, "chaos: print the named scenarios and exit")
	outPath := flag.String("out", "", "redirect stdout to `file` (report reads such files back with -in)")
	inPath := flag.String("in", "", "report: load the series from `file` (default stdin)")
	csvOut := flag.Bool("csv", false, "report: re-emit the loaded series as CSV instead of tables")
	tolerance := flag.Float64("tolerance", workload.XValTolerance, "xval: maximum model-vs-cycle p50/p99 relative error before failing")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the executed commands to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the commands to `file`")
	listen := flag.String("listen", ":8080", "daemon: HTTP listen address")
	policy := flag.String("policy", "fifo", "daemon: scheduling policy (fifo|sjf|affinity|hybrid)")
	queueCap := flag.Int("queuecap", 0, "daemon: admission-queue bound (0 = default 64)")
	maxInflight := flag.Int("maxinflight", 0, "daemon: outstanding-job bound, 503 past it (0 = 4x queuecap)")
	timescale := flag.Float64("timescale", 1, "daemon: simulated seconds advanced per wall-clock second")
	windowMS := flag.Float64("windowms", 250, "daemon: telemetry window width in simulated milliseconds")
	wedgeProb := flag.Float64("wedgeprob", 0, "daemon: per-reprogram wedge probability (0 = no fault plan)")
	retries := flag.Int("retries", 2, "daemon: retry budget for wedge victims (with -wedgeprob)")
	faultSeed := flag.Int64("faultseed", 1, "daemon: fault-plan seed (with -wedgeprob)")
	repairDelay := flag.Int64("repairdelay", 0, "chaos/daemon: repair wedged fabrics after ~N simulated microseconds, with backoff (0 = quarantine is permanent)")
	domainsSpec := flag.String("domains", "", "chaos/daemon: correlated failure domains, e.g. 'rack0=0+1@4000-9000;feedA=2@1000-2000~0.8'")
	target := flag.String("target", "http://localhost:8080", "loadgen: daemon base URL")
	lgMode := flag.String("mode", "closed", "loadgen: closed (lockstep workers) or open (paced arrivals)")
	concurrency := flag.Int("concurrency", 8, "loadgen: closed-loop workers / open-loop in-flight cap")
	rate := flag.Float64("rate", 200, "loadgen: open-loop arrival rate in requests/s")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: run length")
	requests := flag.Int("requests", 0, "loadgen: total request cap (0 = duration-bound)")
	appsSpec := flag.String("apps", "", "loadgen: comma-separated app mix (default: the daemon's catalog)")
	tenantsSpec := flag.String("tenants", "", "loadgen: weighted tenant mix, e.g. alpha:3,beta:1")
	lgTimeout := flag.Duration("timeout", 30*time.Second, "loadgen: per-request timeout")
	flag.Parse()
	// Accept flags after command words too (`duetsim cluster -shards 4`):
	// re-parse whenever a flag-like token follows a command. Flags apply
	// globally, wherever they appear.
	var cmds []string
	for args := flag.Args(); len(args) > 0; {
		// A lone "-" is not a flag (Parse would leave it unconsumed and
		// loop forever); let it fall through as an unknown command.
		if strings.HasPrefix(args[0], "-") && args[0] != "-" {
			if err := flag.CommandLine.Parse(args); err != nil {
				os.Exit(2)
			}
			args = flag.Args()
			continue
		}
		cmds = append(cmds, args[0])
		args = args[1:]
	}
	if len(cmds) == 0 {
		usage()
		os.Exit(2)
	}
	mode, err := sched.StatsModeByName(*statsMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: %v\n", err)
		os.Exit(2)
	}
	jobs, err := parseJobs(*jobsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: -jobs: %v\n", err)
		os.Exit(2)
	}
	beMode, err := workload.BackendModeByName(*backend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: %v\n", err)
		os.Exit(2)
	}
	// -json promises one parseable document on stdout, so it pairs with
	// exactly one sweep command; the text-only commands and multi-command
	// runs would interleave tables or concatenate documents.
	if *jsonOut {
		if len(cmds) != 1 {
			fmt.Fprintln(os.Stderr, "duetsim: -json takes exactly one command")
			os.Exit(2)
		}
		switch cmds[0] {
		case "fig9", "fig10", "fig11", "ablate", "ablations", "study", "serve", "cluster", "xval", "chaos", "loadgen":
		default:
			fmt.Fprintf(os.Stderr, "duetsim: -json is not supported with %q; use a sweep command (fig9|fig10|fig11|ablate|study|serve|cluster|xval|chaos|loadgen)\n", cmds[0])
			os.Exit(2)
		}
	}
	// -out redirects everything the commands print — tables, -json
	// documents, CSV — while diagnostics stay on stderr. Reassigning
	// os.Stdout covers every print path below without threading a writer
	// through each command.
	closeOut := func() error { return nil }
	if *outPath != "" {
		// os.Create truncates -out before any command runs, so `-out F
		// report -in F` would destroy the very file report is about to
		// read. Refuse the overlap instead of silently emptying the input.
		if *inPath != "" && samePath(*outPath, *inPath) {
			fmt.Fprintf(os.Stderr, "duetsim: -out %q would truncate -in %q before report reads it; use a different output path\n", *outPath, *inPath)
			os.Exit(2)
		}
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duetsim: -out: %v\n", err)
			os.Exit(1)
		}
		os.Stdout = f
		closeOut = f.Close
	}
	// Profiling wraps only the command runs (flag parsing and usage errors
	// are excluded), so kernel regressions can be profiled straight from
	// the CLI: duetsim -cpuprofile cpu.out cluster; go tool pprof cpu.out
	// Profiles are flushed on every exit path, including command errors.
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: %v\n", err)
		os.Exit(1)
	}
	code := 0
loop:
	for _, cmd := range cmds {
		switch cmd {
		case "table1":
			table1()
		case "table2":
			table2()
		case "fig9":
			fig9(*parallel, *jsonOut)
		case "fig10":
			fig10(*parallel, *jsonOut)
		case "fig11":
			fig11(*parallel, *jsonOut)
		case "fig12":
			fig12(*quick)
		case "ablate", "ablations":
			ablations(*parallel, *jsonOut)
		case "study":
			studyCmd(*parallel, *quick, *jsonOut)
		case "serve":
			serve(*parallel, *seed, jobs, *efpgas, mode, beMode, *softCPUs, *windows, *progress, *jsonOut)
		case "cluster":
			if err := clusterCmd(*parallel, *seed, jobs, *efpgas, *shards, mode, beMode, *softCPUs, *windows, *progress, *lookahead, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "cluster: %v\n", err)
				code = 1
				break loop
			}
		case "report":
			if err := reportCmd(*inPath, *csvOut); err != nil {
				fmt.Fprintf(os.Stderr, "report: %v\n", err)
				code = 1
				break loop
			}
		case "daemon":
			if err := daemonCmd(daemonOpts{
				listen: *listen, backend: beMode, efpgas: *efpgas, softCPUs: *softCPUs,
				policy: *policy, queueCap: *queueCap, maxInflight: *maxInflight,
				timescale: *timescale, windowMS: *windowMS,
				wedgeProb: *wedgeProb, retries: *retries, faultSeed: *faultSeed,
				repairDelayUS: *repairDelay, domains: *domainsSpec,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "daemon: %v\n", err)
				code = 1
				break loop
			}
		case "loadgen":
			if err := loadgenCmd(loadgenOpts{
				target: *target, mode: *lgMode, concurrency: *concurrency, rateHz: *rate,
				duration: *duration, requests: *requests, apps: *appsSpec,
				tenants: *tenantsSpec, seed: *seed, timeout: *lgTimeout, jsonOut: *jsonOut,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				code = 1
				break loop
			}
		case "xval":
			if !xval(*parallel, *seed, jobs, *efpgas, mode, *tolerance, *jsonOut) {
				code = 1
				break loop
			}
		case "chaos":
			if err := chaosCmd(*parallel, *scenario, *chaosList, *repairDelay, *domainsSpec, beMode, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				code = 1
				if errors.Is(err, errUnknownScenario) {
					code = 2
				}
				break loop
			}
		case "all":
			table1()
			table2()
			fig9(*parallel, false)
			fig10(*parallel, false)
			fig11(*parallel, false)
			fig12(*quick)
		default:
			fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
			usage()
			code = 2
			break loop
		}
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if err := closeOut(); err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: -out: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if jsonFailed && code == 0 {
		code = 1
	}
	if code != 0 {
		os.Exit(code)
	}
}

// parseJobs parses the -jobs count: a plain integer, an integer or
// decimal with a scale suffix (2k, 250M, 1G, 1B — case-insensitive,
// B and G both a billion), or scientific notation (1e9, 2.5e7). The
// value must come out a positive whole number of jobs.
func parseJobs(s string) (int, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	if n := len(t); n > 0 {
		switch t[n-1] {
		case 'k', 'K':
			mult, t = 1e3, t[:n-1]
		case 'm', 'M':
			mult, t = 1e6, t[:n-1]
		case 'g', 'G', 'b', 'B':
			mult, t = 1e9, t[:n-1]
		}
	}
	var jobs int64
	if n, err := strconv.ParseInt(t, 10, 64); err == nil {
		if n != 0 && (n > math.MaxInt64/mult || n < math.MinInt64/mult) {
			return 0, fmt.Errorf("job count %q overflows", s)
		}
		jobs = n * mult
	} else {
		f, ferr := strconv.ParseFloat(t, 64)
		if ferr != nil {
			return 0, fmt.Errorf("cannot parse job count %q", s)
		}
		f *= float64(mult)
		if f != math.Trunc(f) {
			return 0, fmt.Errorf("job count %q is not a whole number of jobs", s)
		}
		if f >= math.MaxInt64 || f <= math.MinInt64 {
			return 0, fmt.Errorf("job count %q overflows", s)
		}
		jobs = int64(f)
	}
	if jobs <= 0 {
		return 0, fmt.Errorf("job count %q is not positive", s)
	}
	if jobs > math.MaxInt {
		return 0, fmt.Errorf("job count %q overflows", s)
	}
	return int(jobs), nil
}

// startProgress starts the -progress reporter: a background ticker
// printing a stderr line every 2 s with jobs delivered, the percentage
// of the expected total, the simulated-time high-water mark and the
// live heap. Returns the Progress sink to wire into run configs and a
// stop function that prints one final line; when off, both are no-ops
// (a nil *cluster.Progress disables every tap on the hot path).
func startProgress(enabled bool, total int) (*cluster.Progress, func()) {
	if !enabled {
		return nil, func() {}
	}
	p := &cluster.Progress{}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				printProgress(p, total)
			}
		}
	}()
	return p, func() {
		once.Do(func() {
			close(done)
			printProgress(p, total)
		})
	}
}

func printProgress(p *cluster.Progress, total int) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	jobs := p.Jobs()
	pct := ""
	if total > 0 {
		pct = fmt.Sprintf(" (%.1f%%)", 100*float64(jobs)/float64(total))
	}
	fmt.Fprintf(os.Stderr, "progress: %d jobs%s, sim %v, heap %d MB\n",
		jobs, pct, p.SimAt(), ms.HeapAlloc>>20)
}

// samePath reports whether two paths name the same file: equal after
// cleaning, or resolving (via Stat) to the same inode — so "./x" vs "x"
// and symlinked spellings are both caught. Stat failures (e.g. the
// output does not exist yet) fall back to the lexical comparison.
func samePath(a, b string) bool {
	if filepath.Clean(a) == filepath.Clean(b) {
		return true
	}
	ia, errA := os.Stat(a)
	ib, errB := os.Stat(b)
	return errA == nil && errB == nil && os.SameFile(ia, ib)
}

// startProfiles begins CPU profiling and returns a flush function that
// stops the CPU profile and writes the heap profile. Empty paths disable
// the respective profile.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: duetsim [-quick] [-seed N] [-jobs N|250M|1e9] [-efpgas N] [-shards N] [-parallel N] [-json] [-stats exact|stream] [-backend cycle|model|hybrid] [-softcpus N] [-windows N] [-progress] [-lookahead N] [-scenario S] [-out F] [-in F] [-csv] [-tolerance F] [-cpuprofile F] [-memprofile F] {table1|table2|fig9|fig10|fig11|fig12|ablate|study|serve|cluster|xval|chaos|report|daemon|loadgen|all}...")
	fmt.Fprintln(os.Stderr, "  daemon flags: [-listen A] [-policy P] [-queuecap N] [-maxinflight N] [-timescale F] [-windowms F] [-backend ...] [-efpgas N] [-softcpus N] [-wedgeprob F] [-retries N] [-faultseed N] [-repairdelay N] [-domains S]")
	fmt.Fprintln(os.Stderr, "  chaos flags: [-scenario S|all] [-list] [-repairdelay N] [-domains S] [-parallel N] [-backend cycle|model] [-json]")
	fmt.Fprintln(os.Stderr, "  loadgen flags: [-target URL] [-mode closed|open] [-concurrency N] [-rate F] [-duration D] [-requests N] [-apps A,B] [-tenants a:3,b:1] [-timeout D] [-seed N] [-json]")
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

// jsonFailed records a marshal failure so main can exit nonzero after
// the profile flush (no os.Exit here: profiles are flushed on every
// exit path, including command errors).
var jsonFailed bool

// emitJSON prints one machine-readable document for a command. Field
// order tracks struct declaration order and enums marshal as their
// String names, so the bytes are stable per (flags, seed) — the contract
// the CI determinism job diffs across -parallel widths.
func emitJSON(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: -json: %v\n", err)
		jsonFailed = true
		return
	}
	os.Stdout.Write(append(b, '\n'))
}

func table1() {
	header("Table I: Area and Typical Frequency of Dolly Components (published data + linear scaling model)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Component\tTechnology\tArea (mm2)\tFreq (MHz)\tScaled Area*\tScaled Freq*")
	for _, c := range area.TableI {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.0f\t%.2f\t%.0f\n",
			c.Name, c.Technology, c.AreaMM2, c.FreqMHz, c.ScaledArea, c.ScaledFreq)
	}
	w.Flush()
	fmt.Println("* scaled to 45 nm with a linear MOSFET scaling model")
}

func table2() {
	header("Table II: Clock Frequency and Area of Soft Accelerators (synthesis cost model vs paper)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tFmax model\tFmax paper\tNormArea model\tNormArea paper\tCLB model\tCLB paper\tBRAM model\tBRAM paper")
	reports := accel.TableII()
	for i, p := range accel.PaperTableII {
		m := reports[i]
		fmt.Fprintf(w, "%s\t%.0f MHz\t%.0f MHz\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			p.Name, m.FmaxMHz, p.FmaxMHz, m.NormArea, p.NormArea, m.CLBUtil, p.CLBUtil, m.BRAMUtil, p.BRAMUtil)
	}
	w.Flush()
	fmt.Println("(Yosys/VTR/Catapult replaced by the calibrated cost model in internal/efpga/synth.go)")
}

var fig9Freqs = []float64{100, 200, 500}

func fig9(parallel int, jsonOut bool) {
	rows := workload.Fig9P(parallel, fig9Freqs)
	if jsonOut {
		emitJSON(struct {
			Fig9 []workload.Fig9Row `json:"fig9"`
		}{rows})
		return
	}
	printFig9(rows)
}

func printFig9(rows []workload.Fig9Row) {
	header("Fig. 9: CPU-eFPGA Communication Latency (Dolly-P1M1, single transaction; lower is better)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mechanism\teFPGA MHz\tTotal\tNoC\tFastLogic\tSlowLogic\tCDC")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%v\t%v\t%v\t%v\t%v\n",
			r.Mechanism, r.FreqMHz, r.Total,
			r.Breakdown[sim.CatNoC], r.Breakdown[sim.CatFast],
			r.Breakdown[sim.CatSlow], r.Breakdown[sim.CatCDC])
	}
	w.Flush()
	fmt.Println("Paper: proxy cuts CPU-pull latency 42-82%, eFPGA-pull 13-43%; shadow regs cut 50-80%.")
}

var fig10Freqs = []float64{20, 50, 100, 200, 500}

func fig10(parallel int, jsonOut bool) {
	rows := workload.Fig10P(parallel, fig10Freqs)
	if jsonOut {
		emitJSON(struct {
			Fig10 []workload.Fig10Row `json:"fig10"`
		}{rows})
		return
	}
	printFig10(rows, fig10Freqs)
}

func printFig10(rows []workload.Fig10Row, freqs []float64) {
	header("Fig. 10: Processor-eFPGA Bandwidth vs eFPGA Clock (512 quad-words; higher is better)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Mechanism")
	for _, f := range freqs {
		fmt.Fprintf(w, "\t%.0f MHz", f)
	}
	fmt.Fprintln(w)
	// Rows arrive mechanism-major in frequency order (the study grid).
	for m := workload.Mechanism(0); m < workload.NumMechanisms; m++ {
		fmt.Fprintf(w, "%s", m)
		for i := range freqs {
			fmt.Fprintf(w, "\t%.0f MB/s", rows[int(m)*len(freqs)+i].MBps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("Paper peaks: eFPGA pull w/ proxy 558 MB/s (>=100MHz), CPU pull 201, shadow regs 213, normal regs 121 @500MHz.")
}

var fig11Counts = []int{1, 2, 4, 8, 16}

func fig11(parallel int, jsonOut bool) {
	rows := workload.Fig11P(parallel, fig11Counts)
	if jsonOut {
		emitJSON(struct {
			Fig11 []workload.Fig11Row `json:"fig11"`
		}{rows})
		return
	}
	printFig11(rows, fig11Counts)
}

func printFig11(rows []workload.Fig11Row, counts []int) {
	header("Fig. 11: Per-Processor Bandwidth vs Contending Processors (eFPGA @500MHz)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Series")
	for _, n := range counts {
		fmt.Fprintf(w, "\t%d procs", n)
	}
	fmt.Fprintln(w)
	for k := workload.ContentionKind(0); k < workload.NumContentionKinds; k++ {
		fmt.Fprintf(w, "%s", k)
		for i := range counts {
			fmt.Fprintf(w, "\t%.0f MB/s", rows[int(k)*len(counts)+i].PerProcMBps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("Paper: shadow registers sustain ~8 processors; normal registers only ~2.")
}

// studyCmd sweeps every figure and ablation grid through one study pool
// and reports the combined results — the machine-readable regeneration
// target the CI determinism job diffs across -parallel widths.
func studyCmd(parallel int, quick, jsonOut bool) {
	fig9F, fig10F := []float64{100, 500}, []float64{50, 200}
	counts := []int{1, 4, 8}
	windows, stages := []int{1, 2, 4, 8}, []int{2, 3, 4}
	if quick {
		fig9F, fig10F = []float64{100}, []float64{100}
		counts = []int{1, 8}
		windows, stages = []int{1, 8}, []int{2, 4}
	}
	doc := struct {
		Fig9     []workload.Fig9Row      `json:"fig9"`
		Fig10    []workload.Fig10Row     `json:"fig10"`
		Fig11    []workload.Fig11Row     `json:"fig11"`
		Ablation workload.AblationResult `json:"ablation"`
	}{
		Fig9:     workload.Fig9P(parallel, fig9F),
		Fig10:    workload.Fig10P(parallel, fig10F),
		Fig11:    workload.Fig11P(parallel, counts),
		Ablation: workload.Ablation(parallel, windows, stages, 100),
	}
	if jsonOut {
		emitJSON(doc)
		return
	}
	printFig9(doc.Fig9)
	printFig10(doc.Fig10, fig10F)
	printFig11(doc.Fig11, counts)
	printAblation(doc.Ablation)
}

func fig12(quick bool) {
	header("Fig. 12: Application Benchmark Speedup and ADP (normalized to processor-only)")
	benches := apps.All()
	if quick {
		benches = benches[:7] // single-and-4-core benchmarks only
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tSpeedup Duet\tSpeedup FPSoC\tADP Duet\tADP FPSoC\tCPU runtime\tcheck")
	var rows []apps.Fig12Row
	for _, b := range benches {
		r := apps.RunOne(b)
		rows = append(rows, r)
		status := "ok"
		if r.Err != nil {
			status = r.Err.Error()
		}
		fmt.Fprintf(w, "%s\t%.2fx\t%.2fx\t%.2f\t%.2f\t%v\t%s\n",
			r.Name, r.SpeedupDuet, r.SpeedupFPSoC, r.ADPDuet, r.ADPFPSoC, r.CPURuntime, status)
		w.Flush()
	}
	sd, sf, ad, af := apps.Geomeans(rows)
	fmt.Printf("\nGeomean: Duet %.2fx, FPSoC %.2fx; ADP Duet %.2f, FPSoC %.2f\n", sd, sf, ad, af)
	fmt.Println("Paper geomeans: Duet 4.53x, FPSoC 2.14x; ADP Duet 0.61, FPSoC 1.23.")
}

// servePolicies is the study's policy axis: the three classic policies,
// plus the hybrid spill policy when the replica has CPU soft-path
// workers for it to spill to.
func servePolicies(beMode workload.BackendMode) []sched.Policy {
	ps := []sched.Policy{sched.FIFO, sched.SJF, sched.Affinity}
	if beMode == workload.BackendHybrid {
		ps = append(ps, sched.Hybrid)
	}
	return ps
}

func serve(parallel int, seed int64, jobs, efpgas int, mode sched.StatsMode, beMode workload.BackendMode, softCPUs, windows int, progress, jsonOut bool) {
	policies := servePolicies(beMode)
	prog, stopProgress := startProgress(progress, jobs*len(policies))
	defer stopProgress()
	var cfgs []workload.ServeConfig
	for _, p := range policies {
		cfgs = append(cfgs, workload.ServeConfig{
			Policy: p, Seed: seed, Jobs: jobs, EFPGAs: efpgas, Stats: mode,
			Backend: beMode, SoftCPUs: softCPUs, Windows: windows,
			Progress: prog,
		})
	}
	results := workload.ServeStudy(parallel, cfgs)
	stopProgress()
	if jsonOut {
		emitJSON(struct {
			Serve []workload.ServeResult `json:"serve"`
		}{results})
		return
	}
	header(fmt.Sprintf("Serve: multi-tenant accelerator-as-a-service (%d jobs, %d eFPGAs, seed %d, %s stats, %s backend)",
		jobs, efpgas, seed, mode, beMode))
	fmt.Printf("App mix:")
	for _, a := range workload.ServeApps {
		fmt.Printf(" %s", a.Name)
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tCompleted\tRejected\tThroughput\tp50\tp99\tMean wait\tReconfigs\tMissed DL\tFabric util")
	for _, r := range results {
		util := ""
		for i, f := range r.Fabrics {
			if i > 0 {
				util += " "
			}
			util += fmt.Sprintf("%.0f%%", 100*f.Utilization)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%.2f jobs/ms\t%v\t%v\t%v\t%d\t%d\t%s\n",
			r.Policy, r.Completed, r.Offered, r.Rejected, r.ThroughputPerMS,
			r.P50, r.P99, r.MeanWait, r.Reconfigs, r.DeadlineMisses, util)
	}
	w.Flush()
	fmt.Println("Reuse-aware placement avoids reprogramming; output is byte-identical per seed.")
	if windows > 0 {
		fmt.Println("\nFlight recorder (worst windows per policy):")
		for _, r := range results {
			printWindowSummary(fmt.Sprintf("%v", r.Policy), r.Windows)
		}
	}
}

// clusterRow is the machine-readable projection of a ClusterResult: the
// merged stats plus per-shard job counts, without the per-shard raw
// sample arrays.
type clusterRow struct {
	FrontEnd  cluster.FrontEnd     `json:"front_end"`
	Policy    sched.Policy         `json:"policy"`
	Backend   workload.BackendMode `json:"backend"`
	Shards    int                  `json:"shards"`
	Offered   int                  `json:"offered"`
	Merged    sched.Stats          `json:"merged"`
	ShardJobs []int                `json:"shard_jobs"`

	// Windows is the merged flight-recorder series (present only under
	// -windows); `duetsim report` extracts these arrays back out of the
	// document.
	Windows []telemetry.WindowRow `json:"windows,omitempty"`
}

// scalingRow is one step of the cluster throughput-scaling sweep.
type scalingRow struct {
	Shards          int      `json:"shards"`
	ThroughputPerMS float64  `json:"throughput_per_ms"`
	P99             sim.Time `json:"p99"`
	Speedup         float64  `json:"speedup"`
}

func toClusterRow(r workload.ClusterResult) clusterRow {
	row := clusterRow{
		FrontEnd: r.FrontEnd, Policy: r.Policy, Backend: r.Backend, Shards: r.Shards,
		Offered: r.Offered, Merged: r.Merged, Windows: r.Windows,
	}
	for _, s := range r.PerShard {
		row.ShardJobs = append(row.ShardJobs, s.Stats.Completed)
	}
	return row
}

func clusterCmd(parallel int, seed int64, jobs, efpgas, shards int, mode sched.StatsMode, beMode workload.BackendMode, softCPUs, windows int, progress bool, lookahead int, jsonOut bool) error {
	if shards <= 0 {
		shards = 1
	}
	// The front-end x policy table: one independent cluster per cell,
	// fanned out on the study pool (each cell spawns its own per-shard
	// goroutines inside its slot).
	// The flight recorder rides on the table cells only; the scaling
	// sweep repeats the same scenario at growing shard counts, so its
	// windows would only duplicate the table's series.
	var cfgs []workload.ClusterConfig
	for fe := cluster.FrontEnd(0); fe < cluster.NumFrontEnds; fe++ {
		for _, p := range servePolicies(beMode) {
			cfgs = append(cfgs, workload.ClusterConfig{
				ServeConfig: workload.ServeConfig{
					Policy: p, Seed: seed, Jobs: jobs, EFPGAs: efpgas, Stats: mode,
					Backend: beMode, SoftCPUs: softCPUs, Windows: windows,
				},
				Shards:   shards,
				FrontEnd: fe,
				Handoff:  lookahead,
			})
		}
	}
	// The scaling sweep drives a saturating offered load (5us mean gap,
	// deep admission queue): at the default gap one shard already keeps
	// up with arrivals, so added capacity would only show up in latency.
	var scaleCfgs []workload.ClusterConfig
	for sh := 1; sh <= shards; sh *= 2 {
		scaleCfgs = append(scaleCfgs, workload.ClusterConfig{
			ServeConfig: workload.ServeConfig{
				Policy: sched.Affinity, Seed: seed, Jobs: jobs, EFPGAs: efpgas,
				MeanGapUS: 5, QueueCap: 1024, Stats: mode,
				Backend: beMode, SoftCPUs: softCPUs,
			},
			Shards:   sh,
			FrontEnd: cluster.LeastOutstanding,
			Handoff:  lookahead,
		})
	}
	// The Progress sink tallies arrival deliveries across every study
	// point (hedge duplicates can push the count slightly past the
	// nominal total); it never influences results.
	prog, stopProgress := startProgress(progress, jobs*(len(cfgs)+len(scaleCfgs)))
	defer stopProgress()
	for i := range cfgs {
		cfgs[i].ServeConfig.Progress = prog
	}
	for i := range scaleCfgs {
		scaleCfgs[i].ServeConfig.Progress = prog
	}
	table, err := workload.ClusterStudy(parallel, cfgs)
	if err != nil {
		return err
	}
	scaling, err := workload.ClusterStudy(parallel, scaleCfgs)
	if err != nil {
		return err
	}
	stopProgress()
	base := scaling[0].Merged.ThroughputPerMS
	var scaleRows []scalingRow
	for _, r := range scaling {
		scaleRows = append(scaleRows, scalingRow{
			Shards: r.Shards, ThroughputPerMS: r.Merged.ThroughputPerMS,
			P99: r.Merged.P99, Speedup: r.Merged.ThroughputPerMS / base,
		})
	}

	if jsonOut {
		var rows []clusterRow
		for _, r := range table {
			rows = append(rows, toClusterRow(r))
		}
		emitJSON(struct {
			Cluster []clusterRow `json:"cluster"`
			Scaling []scalingRow `json:"scaling"`
		}{rows, scaleRows})
		return nil
	}

	header(fmt.Sprintf("Cluster: sharded serve farm (%d jobs, %d shards x %d eFPGAs, seed %d, %s stats, %s backend)",
		jobs, shards, efpgas, seed, mode, beMode))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Front end\tPolicy\tCompleted\tRejected\tThroughput\tp50\tp99\tMean wait\tReconfigs\tMissed DL\tShard jobs")
	for _, r := range table {
		perShard := ""
		for i, s := range r.PerShard {
			if i > 0 {
				perShard += "/"
			}
			perShard += fmt.Sprintf("%d", s.Stats.Completed)
		}
		m := r.Merged
		fmt.Fprintf(w, "%s\t%s\t%d/%d\t%d\t%.2f jobs/ms\t%v\t%v\t%v\t%d\t%d\t%s\n",
			r.FrontEnd, r.Policy, m.Completed, r.Offered, m.Rejected, m.ThroughputPerMS,
			m.P50, m.P99, m.MeanWait, m.Reconfigs, m.DeadlineMisses, perShard)
	}
	w.Flush()

	fmt.Println("\nThroughput scaling under saturating load (5us mean gap; affinity scheduling, least-outstanding front end):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Shards\tThroughput\tp99\tSpeedup")
	for _, r := range scaleRows {
		fmt.Fprintf(w, "%d\t%.2f jobs/ms\t%v\t%.2fx\n", r.Shards, r.ThroughputPerMS, r.P99, r.Speedup)
	}
	w.Flush()
	fmt.Println("Per (seed, shards, front end, policy) the table is byte-identical across runs;")
	fmt.Println("a 1-shard cluster reproduces `duetsim serve` exactly.")
	if windows > 0 {
		fmt.Println("\nFlight recorder (worst windows per table cell):")
		for _, r := range table {
			printWindowSummary(fmt.Sprintf("%v/%v", r.FrontEnd, r.Policy), r.Windows)
		}
	}
	return nil
}

// printWindowSummary prints one labeled Summarize line for a recorded
// window series — the text-mode face of the flight recorder.
func printWindowSummary(label string, rows []telemetry.WindowRow) {
	s := telemetry.Summarize(rows)
	if s.Windows == 0 {
		fmt.Printf("  %s: no windows recorded\n", label)
		return
	}
	fmt.Printf("  %s: %d windows x %v; util mean %.0f%% peak %.0f%% (w%d); peak p99 %v (w%d); peak reconfigs %d (w%d); queue max %d; rejects %d; spills %d\n",
		label, s.Windows, s.Width, 100*s.MeanUtilization, 100*s.PeakUtilization, s.PeakUtilWindow,
		s.PeakP99, s.PeakP99Window, s.PeakReprograms, s.PeakReprogramsWin, s.QueueMax, s.Rejects, s.Spills)
}

// reportCmd loads a saved window series — a full -json study document, a
// bare series array, or report's own CSV — and prints each found series
// as a per-window table with a worst-window summary. -csv re-emits the
// series (exactly one must be present) in the stable CSV column order.
func reportCmd(inPath string, csvOut bool) error {
	var data []byte
	var err error
	if inPath == "" {
		if data, err = io.ReadAll(os.Stdin); err != nil {
			return fmt.Errorf("reading stdin: %w", err)
		}
	} else if data, err = os.ReadFile(inPath); err != nil {
		return err
	}
	found, err := telemetry.LoadSeries(data)
	if err != nil {
		return err
	}
	if csvOut {
		if len(found) != 1 {
			paths := make([]string, len(found))
			for i, fs := range found {
				paths[i] = fs.Path
			}
			return fmt.Errorf("-csv needs exactly one series, document has %d (%s)", len(found), strings.Join(paths, ", "))
		}
		return telemetry.WriteCSV(os.Stdout, found[0].Rows)
	}
	for _, fs := range found {
		label := fs.Path
		if label == "" {
			label = "series"
		}
		header(fmt.Sprintf("Flight recorder: %s", label))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "Window\tStart\tArrivals\tDone\tFail\tRej\tReprog\tSpill\tQmax\tUtil\tp50\tp99")
		for _, r := range fs.Rows {
			fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f%%\t%v\t%v\n",
				r.Window, r.Start, r.Arrivals, r.Completions, r.Failures, r.Rejects,
				r.Reprograms, r.Spills, r.QueueMax, 100*r.Utilization, r.P50, r.P99)
		}
		w.Flush()
		fmt.Println()
		printWindowSummary("summary", fs.Rows)
	}
	return nil
}

// xval runs the backend cross-validation study: the serve grid on the
// cycle-level backend and on the analytic model backend, compared field
// by field. Returns false (after printing the offending rows) when any
// p50/p99 relative error exceeds the tolerance or the accounting
// counters diverge — the CI gate for the model backend's calibration.
func xval(parallel int, seed int64, jobs, efpgas int, mode sched.StatsMode, tolerance float64, jsonOut bool) bool {
	var cfgs []workload.ServeConfig
	for _, p := range []sched.Policy{sched.FIFO, sched.SJF, sched.Affinity} {
		cfgs = append(cfgs, workload.ServeConfig{
			Policy: p, Seed: seed, Jobs: jobs, EFPGAs: efpgas, Stats: mode,
		})
	}
	// The hybrid row gets a soft-path worker on both sides (hybrid Dolly
	// vs analytic replica), so the gate covers the CPU spill path too.
	cfgs = append(cfgs, workload.ServeConfig{
		Policy: sched.Hybrid, Seed: seed, Jobs: jobs, EFPGAs: efpgas, Stats: mode, SoftCPUs: 1,
	})
	rows := workload.CrossValidate(parallel, cfgs)
	ok := true
	for _, r := range rows {
		if !r.CountersMatch || r.P50RelErr > tolerance || r.P99RelErr > tolerance {
			ok = false
		}
	}
	if jsonOut {
		emitJSON(struct {
			XVal      []workload.XValRow `json:"xval"`
			Tolerance float64            `json:"tolerance"`
			Pass      bool               `json:"pass"`
		}{rows, tolerance, ok})
		return ok
	}
	header(fmt.Sprintf("XVal: model-vs-cycle backend cross-validation (%d jobs, %d eFPGAs, seed %d, %s stats, tolerance %.2f%%)",
		jobs, efpgas, seed, mode, 100*tolerance))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tCycle p50\tModel p50\tp50 err\tCycle p99\tModel p99\tp99 err\tCounters")
	for _, r := range rows {
		counters := "exact"
		if !r.CountersMatch {
			counters = "DIVERGED"
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%.4f%%\t%v\t%v\t%.4f%%\t%s\n",
			r.Policy, r.Cycle.P50, r.Model.P50, 100*r.P50RelErr,
			r.Cycle.P99, r.Model.P99, 100*r.P99RelErr, counters)
	}
	w.Flush()
	if ok {
		fmt.Println("PASS: the analytic model backend reproduces the cycle-level backend within tolerance.")
	} else {
		fmt.Printf("FAIL: model-vs-cycle divergence exceeds the %.2f%% tolerance.\n", 100*tolerance)
	}
	return ok
}

// errUnknownScenario marks a -scenario value that names no chaos
// scenario; main maps it to exit code 2 (usage error, not a run
// failure) after printing the valid names.
var errUnknownScenario = errors.New("unknown chaos scenario")

// chaosCmd runs the named fault scenarios of the deterministic chaos
// harness (internal/workload/chaos.go) and prints their outcome records.
// -scenario picks one scenario or "all"; -list enumerates the names;
// -repairdelay/-domains override each scenario's fault plan; -backend
// selects the execution backend (the fault plan injects below the
// Backend seam, so cycle and model runs produce identical outcomes —
// the property the golden tests and the CI chaos-smoke job pin).
func chaosCmd(parallel int, scenario string, list bool, repairDelayUS int64, domainsSpec string, beMode workload.BackendMode, jsonOut bool) error {
	names := workload.ChaosScenarioNames()
	if list {
		if jsonOut {
			emitJSON(struct {
				Scenarios []string `json:"scenarios"`
			}{names})
			return nil
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	if scenario != "all" {
		if !slices.Contains(names, scenario) {
			return fmt.Errorf("%w %q (have %s)", errUnknownScenario, scenario, strings.Join(names, ", "))
		}
		names = []string{scenario}
	}
	ov := workload.ChaosOverride{RepairDelay: sim.Time(repairDelayUS) * sim.US}
	if strings.TrimSpace(domainsSpec) != "" {
		doms, err := faults.ParseDomains(domainsSpec)
		if err != nil {
			return err
		}
		ov.Domains = doms
	}
	results, err := workload.ChaosStudyOverride(parallel, names, beMode, ov)
	if err != nil {
		return err
	}
	if jsonOut {
		emitJSON(struct {
			Chaos []workload.ChaosResult `json:"chaos"`
		}{results})
		return nil
	}
	header(fmt.Sprintf("Chaos: deterministic fault scenarios (%s backend)", beMode))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Scenario\tShards\tCompleted\tTimedOut\tUnavail\tWedges\tRetries\tQuar\tRepairs\tRerouted\tHedged\tGoodput\tAvail\tp99")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%d/%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%v\n",
			r.Scenario, r.Shards, r.Completed, r.Offered, r.TimedOut, r.Unavailable,
			r.Wedges, r.Retries, r.Quarantined, r.Repairs, r.Rerouted, r.Hedged,
			r.Goodput, r.Availability, r.P99)
	}
	w.Flush()
	fmt.Println("Outcomes are byte-identical per scenario at any -parallel width and across -backend cycle|model.")
	return nil
}

// pdesRow is the machine-readable speculative-PDES ablation. Unlike the
// study-pool sweeps its runtimes are not run-to-run stable (the PDES
// scheduler's timing wobbles a little across processes), so it rides in
// `ablate` output but is deliberately excluded from the `study` document
// the CI determinism job diffs.
type pdesRow struct {
	ConservativePS int64   `json:"conservative_ps"`
	SpeculativePS  int64   `json:"speculative_ps"`
	Speedup        float64 `json:"speedup"`
	SpecReleased   uint64  `json:"spec_released"`
	Squashed       uint64  `json:"squashed"`
	Error          string  `json:"error,omitempty"`
}

func runPDESAblation() pdesRow {
	cfg := apps.PDESSpecConfig{Cores: 8, Population: 6, Horizon: 1200, MinDelay: 1, Seed: 31}
	cons, _ := apps.RunPDESSpec(cfg)
	cfg.Speculate = true
	spec, sch := apps.RunPDESSpec(cfg)
	if cons.Err != nil || spec.Err != nil {
		return pdesRow{Error: fmt.Sprintf("%v %v", cons.Err, spec.Err)}
	}
	return pdesRow{
		ConservativePS: int64(cons.Runtime),
		SpeculativePS:  int64(spec.Runtime),
		Speedup:        float64(cons.Runtime) / float64(spec.Runtime),
		SpecReleased:   sch.SpecReleased,
		Squashed:       sch.Squashed,
	}
}

func ablations(parallel int, jsonOut bool) {
	res := workload.Ablation(parallel, nil, nil, 100)
	pdes := runPDESAblation()
	if jsonOut {
		emitJSON(struct {
			Ablation workload.AblationResult `json:"ablation"`
			PDES     pdesRow                 `json:"speculative_pdes"`
		}{res, pdes})
		return
	}
	header("Ablations: design choices behind the headline results")
	printAblation(res)
	fmt.Println("Speculative PDES scheduler (paper §III-B2 extension; 8 cores, lookahead 1):")
	if pdes.Error != "" {
		fmt.Printf("  error: %s\n", pdes.Error)
		return
	}
	fmt.Printf("  conservative %v, speculative %v (%.2fx; %d speculative releases, %d squashes)\n",
		sim.Time(pdes.ConservativePS), sim.Time(pdes.SpeculativePS), pdes.Speedup, pdes.SpecReleased, pdes.Squashed)
}

func printAblation(res workload.AblationResult) {
	fmt.Println("Proxy Cache in-flight window (eFPGA pull @100MHz; paper: the ceiling is set")
	fmt.Println("by the proxy's concurrent request capacity):")
	for _, r := range res.HubWindow {
		fmt.Printf("  %d outstanding: %6.0f MB/s\n", r.Outstanding, r.MBps)
	}
	fmt.Println("CDC synchronizer depth (normal-register write @100MHz; paper uses 2 stages):")
	for _, r := range res.SyncDepth {
		fmt.Printf("  %d stages: %v\n", r.Stages, r.Latency)
	}
}
