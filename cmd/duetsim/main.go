// Command duetsim regenerates the tables and figures of "Duet: Creating
// Harmony between Processors and Embedded FPGAs" (HPCA 2023) from live
// simulation:
//
//	duetsim table1          # area/frequency of Dolly hard components
//	duetsim table2          # soft accelerator synthesis results
//	duetsim fig9            # CPU-eFPGA communication latency breakdown
//	duetsim fig10           # single-processor bandwidth vs eFPGA clock
//	duetsim fig11           # per-processor bandwidth vs contention
//	duetsim fig12           # application speedups and ADP
//	duetsim serve           # multi-tenant accelerator-as-a-service study
//	duetsim cluster         # sharded serve farm across N Duet replicas
//	duetsim all             # the paper's tables and figures above
//
// Absolute numbers come from this repository's cycle-level models; the
// paper's own numbers are printed alongside where published. See
// EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"duet/internal/accel"
	"duet/internal/apps"
	"duet/internal/area"
	"duet/internal/cluster"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "smaller workloads (faster, less stable numbers)")
	seed := flag.Int64("seed", 1, "serve/cluster: arrival-process seed")
	jobs := flag.Int("jobs", 240, "serve/cluster: offered jobs")
	efpgas := flag.Int("efpgas", 2, "serve/cluster: number of eFPGAs (per shard)")
	shards := flag.Int("shards", 4, "cluster: number of Duet replicas")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the executed commands to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the commands to `file`")
	flag.Parse()
	// Accept flags after command words too (`duetsim cluster -shards 4`):
	// re-parse whenever a flag-like token follows a command. Flags apply
	// globally, wherever they appear.
	var cmds []string
	for args := flag.Args(); len(args) > 0; {
		// A lone "-" is not a flag (Parse would leave it unconsumed and
		// loop forever); let it fall through as an unknown command.
		if strings.HasPrefix(args[0], "-") && args[0] != "-" {
			if err := flag.CommandLine.Parse(args); err != nil {
				os.Exit(2)
			}
			args = flag.Args()
			continue
		}
		cmds = append(cmds, args[0])
		args = args[1:]
	}
	if len(cmds) == 0 {
		usage()
		os.Exit(2)
	}
	// Profiling wraps only the command runs (flag parsing and usage errors
	// are excluded), so kernel regressions can be profiled straight from
	// the CLI: duetsim -cpuprofile cpu.out cluster; go tool pprof cpu.out
	// Profiles are flushed on every exit path, including command errors.
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: %v\n", err)
		os.Exit(1)
	}
	code := 0
loop:
	for _, cmd := range cmds {
		switch cmd {
		case "table1":
			table1()
		case "table2":
			table2()
		case "fig9":
			fig9()
		case "fig10":
			fig10()
		case "fig11":
			fig11()
		case "fig12":
			fig12(*quick)
		case "ablations":
			ablations()
		case "serve":
			serve(*seed, *jobs, *efpgas)
		case "cluster":
			if err := clusterStudy(*seed, *jobs, *efpgas, *shards); err != nil {
				fmt.Fprintf(os.Stderr, "cluster: %v\n", err)
				code = 1
				break loop
			}
		case "all":
			table1()
			table2()
			fig9()
			fig10()
			fig11()
			fig12(*quick)
		default:
			fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
			usage()
			code = 2
			break loop
		}
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "duetsim: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if code != 0 {
		os.Exit(code)
	}
}

// startProfiles begins CPU profiling and returns a flush function that
// stops the CPU profile and writes the heap profile. Empty paths disable
// the respective profile.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: duetsim [-quick] [-seed N] [-jobs N] [-efpgas N] [-shards N] [-cpuprofile F] [-memprofile F] {table1|table2|fig9|fig10|fig11|fig12|ablations|serve|cluster|all}...")
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func table1() {
	header("Table I: Area and Typical Frequency of Dolly Components (published data + linear scaling model)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Component\tTechnology\tArea (mm2)\tFreq (MHz)\tScaled Area*\tScaled Freq*")
	for _, c := range area.TableI {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.0f\t%.2f\t%.0f\n",
			c.Name, c.Technology, c.AreaMM2, c.FreqMHz, c.ScaledArea, c.ScaledFreq)
	}
	w.Flush()
	fmt.Println("* scaled to 45 nm with a linear MOSFET scaling model")
}

func table2() {
	header("Table II: Clock Frequency and Area of Soft Accelerators (synthesis cost model vs paper)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tFmax model\tFmax paper\tNormArea model\tNormArea paper\tCLB model\tCLB paper\tBRAM model\tBRAM paper")
	reports := accel.TableII()
	for i, p := range accel.PaperTableII {
		m := reports[i]
		fmt.Fprintf(w, "%s\t%.0f MHz\t%.0f MHz\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			p.Name, m.FmaxMHz, p.FmaxMHz, m.NormArea, p.NormArea, m.CLBUtil, p.CLBUtil, m.BRAMUtil, p.BRAMUtil)
	}
	w.Flush()
	fmt.Println("(Yosys/VTR/Catapult replaced by the calibrated cost model in internal/efpga/synth.go)")
}

func fig9() {
	header("Fig. 9: CPU-eFPGA Communication Latency (Dolly-P1M1, single transaction; lower is better)")
	freqs := []float64{100, 200, 500}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mechanism\teFPGA MHz\tTotal\tNoC\tFastLogic\tSlowLogic\tCDC")
	for m := workload.Mechanism(0); m < workload.NumMechanisms; m++ {
		for _, f := range freqs {
			r := workload.MeasureLatency(m, f)
			fmt.Fprintf(w, "%s\t%.0f\t%v\t%v\t%v\t%v\t%v\n",
				r.Mechanism, r.FreqMHz, r.Total,
				r.Breakdown[sim.CatNoC], r.Breakdown[sim.CatFast],
				r.Breakdown[sim.CatSlow], r.Breakdown[sim.CatCDC])
		}
	}
	w.Flush()
	fmt.Println("Paper: proxy cuts CPU-pull latency 42-82%, eFPGA-pull 13-43%; shadow regs cut 50-80%.")
}

func fig10() {
	header("Fig. 10: Processor-eFPGA Bandwidth vs eFPGA Clock (512 quad-words; higher is better)")
	freqs := []float64{20, 50, 100, 200, 500}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Mechanism")
	for _, f := range freqs {
		fmt.Fprintf(w, "\t%.0f MHz", f)
	}
	fmt.Fprintln(w)
	for m := workload.Mechanism(0); m < workload.NumMechanisms; m++ {
		fmt.Fprintf(w, "%s", m)
		for _, f := range freqs {
			r := workload.MeasureBandwidth(m, f)
			fmt.Fprintf(w, "\t%.0f MB/s", r.MBps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("Paper peaks: eFPGA pull w/ proxy 558 MB/s (>=100MHz), CPU pull 201, shadow regs 213, normal regs 121 @500MHz.")
}

func fig11() {
	header("Fig. 11: Per-Processor Bandwidth vs Contending Processors (eFPGA @500MHz)")
	counts := []int{1, 2, 4, 8, 16}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Series")
	for _, n := range counts {
		fmt.Fprintf(w, "\t%d procs", n)
	}
	fmt.Fprintln(w)
	for k := workload.ContentionKind(0); k < workload.NumContentionKinds; k++ {
		fmt.Fprintf(w, "%s", k)
		for _, n := range counts {
			r := workload.MeasureContention(k, n)
			fmt.Fprintf(w, "\t%.0f MB/s", r.PerProcMBps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("Paper: shadow registers sustain ~8 processors; normal registers only ~2.")
}

func fig12(quick bool) {
	header("Fig. 12: Application Benchmark Speedup and ADP (normalized to processor-only)")
	benches := apps.All()
	if quick {
		benches = benches[:7] // single-and-4-core benchmarks only
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tSpeedup Duet\tSpeedup FPSoC\tADP Duet\tADP FPSoC\tCPU runtime\tcheck")
	var rows []apps.Fig12Row
	for _, b := range benches {
		r := apps.RunOne(b)
		rows = append(rows, r)
		status := "ok"
		if r.Err != nil {
			status = r.Err.Error()
		}
		fmt.Fprintf(w, "%s\t%.2fx\t%.2fx\t%.2f\t%.2f\t%v\t%s\n",
			r.Name, r.SpeedupDuet, r.SpeedupFPSoC, r.ADPDuet, r.ADPFPSoC, r.CPURuntime, status)
		w.Flush()
	}
	sd, sf, ad, af := apps.Geomeans(rows)
	fmt.Printf("\nGeomean: Duet %.2fx, FPSoC %.2fx; ADP Duet %.2f, FPSoC %.2f\n", sd, sf, ad, af)
	fmt.Println("Paper geomeans: Duet 4.53x, FPSoC 2.14x; ADP Duet 0.61, FPSoC 1.23.")
}

func serve(seed int64, jobs, efpgas int) {
	header(fmt.Sprintf("Serve: multi-tenant accelerator-as-a-service (%d jobs, %d eFPGAs, seed %d)", jobs, efpgas, seed))
	fmt.Printf("App mix:")
	for _, a := range workload.ServeApps {
		fmt.Printf(" %s", a.Name)
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tCompleted\tRejected\tThroughput\tp50\tp99\tMean wait\tReconfigs\tMissed DL\tFabric util")
	for p := sched.Policy(0); p < sched.NumPolicies; p++ {
		r := workload.Serve(workload.ServeConfig{Policy: p, Seed: seed, Jobs: jobs, EFPGAs: efpgas})
		util := ""
		for i, f := range r.Fabrics {
			if i > 0 {
				util += " "
			}
			util += fmt.Sprintf("%.0f%%", 100*f.Utilization)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%.2f jobs/ms\t%v\t%v\t%v\t%d\t%d\t%s\n",
			r.Policy, r.Completed, r.Offered, r.Rejected, r.ThroughputPerMS,
			r.P50, r.P99, r.MeanWait, r.Reconfigs, r.DeadlineMisses, util)
	}
	w.Flush()
	fmt.Println("Reuse-aware placement avoids reprogramming; output is byte-identical per seed.")
}

func clusterStudy(seed int64, jobs, efpgas, shards int) error {
	header(fmt.Sprintf("Cluster: sharded serve farm (%d jobs, %d shards x %d eFPGAs, seed %d)",
		jobs, shards, efpgas, seed))
	run := func(sh int, fe cluster.FrontEnd, p sched.Policy, gapUS float64, queueCap int) (workload.ClusterResult, error) {
		return workload.ServeCluster(workload.ClusterConfig{
			ServeConfig: workload.ServeConfig{Policy: p, Seed: seed, Jobs: jobs, EFPGAs: efpgas, MeanGapUS: gapUS, QueueCap: queueCap},
			Shards:      sh,
			FrontEnd:    fe,
		})
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Front end\tPolicy\tCompleted\tRejected\tThroughput\tp50\tp99\tMean wait\tReconfigs\tMissed DL\tShard jobs")
	for fe := cluster.FrontEnd(0); fe < cluster.NumFrontEnds; fe++ {
		for p := sched.Policy(0); p < sched.NumPolicies; p++ {
			r, err := run(shards, fe, p, 0, 0)
			if err != nil {
				return err
			}
			perShard := ""
			for i, s := range r.PerShard {
				if i > 0 {
					perShard += "/"
				}
				perShard += fmt.Sprintf("%d", s.Stats.Completed)
			}
			m := r.Merged
			fmt.Fprintf(w, "%s\t%s\t%d/%d\t%d\t%.2f jobs/ms\t%v\t%v\t%v\t%d\t%d\t%s\n",
				r.FrontEnd, r.Policy, m.Completed, r.Offered, m.Rejected, m.ThroughputPerMS,
				m.P50, m.P99, m.MeanWait, m.Reconfigs, m.DeadlineMisses, perShard)
		}
	}
	w.Flush()

	// The scaling sweep drives a saturating offered load (5us mean gap,
	// deep admission queue): at the default gap one shard already keeps
	// up with arrivals, so added capacity would only show up in latency.
	fmt.Println("\nThroughput scaling under saturating load (5us mean gap; affinity scheduling, least-outstanding front end):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Shards\tThroughput\tp99\tSpeedup")
	var base float64
	for sh := 1; sh <= shards; sh *= 2 {
		r, err := run(sh, cluster.LeastOutstanding, sched.Affinity, 5, 1024)
		if err != nil {
			return err
		}
		if sh == 1 {
			base = r.Merged.ThroughputPerMS
		}
		fmt.Fprintf(w, "%d\t%.2f jobs/ms\t%v\t%.2fx\n",
			sh, r.Merged.ThroughputPerMS, r.Merged.P99, r.Merged.ThroughputPerMS/base)
	}
	w.Flush()
	fmt.Println("Per (seed, shards, front end, policy) the table is byte-identical across runs;")
	fmt.Println("a 1-shard cluster reproduces `duetsim serve` exactly.")
	return nil
}

func ablations() {
	header("Ablations: design choices behind the headline results")
	fmt.Println("Proxy Cache in-flight window (eFPGA pull @100MHz; paper: the ceiling is set")
	fmt.Println("by the proxy's concurrent request capacity):")
	for _, w := range []int{1, 2, 4, 8} {
		fmt.Printf("  %d outstanding: %6.0f MB/s\n", w, workload.MeasureHubWindow(w, 100))
	}
	fmt.Println("CDC synchronizer depth (normal-register write @100MHz; paper uses 2 stages):")
	for _, st := range []int{2, 3, 4} {
		fmt.Printf("  %d stages: %v\n", st, workload.MeasureSyncStagesLatency(st, 100))
	}
	fmt.Println("Speculative PDES scheduler (paper §III-B2 extension; 8 cores, lookahead 1):")
	cfg := apps.PDESSpecConfig{Cores: 8, Population: 6, Horizon: 1200, MinDelay: 1, Seed: 31}
	cons, _ := apps.RunPDESSpec(cfg)
	cfg.Speculate = true
	spec, sched := apps.RunPDESSpec(cfg)
	if cons.Err != nil || spec.Err != nil {
		fmt.Printf("  error: %v %v\n", cons.Err, spec.Err)
		return
	}
	fmt.Printf("  conservative %v, speculative %v (%.2fx; %d speculative releases, %d squashes)\n",
		cons.Runtime, spec.Runtime, float64(cons.Runtime)/float64(spec.Runtime), sched.SpecReleased, sched.Squashed)
}
