// Command benchsnap turns `go test -bench` output into a committed,
// stable-key JSON snapshot (BENCH_duetsim.json) and gates regressions
// against it — the repo's committed perf trajectory.
//
//	go test -bench ... | benchsnap -out BENCH_duetsim.json   # refresh the snapshot
//	go test -bench ... | benchsnap -check BENCH_duetsim.json # fail on >30% ns/op regression
//
// The snapshot maps benchmark name (GOMAXPROCS suffix stripped, so the
// key is machine-shape independent) to its measured ns/op and iteration
// count. Keys marshal sorted, so refreshing the snapshot produces a
// minimal diff. -check compares the piped run against the snapshot: a
// benchmark missing from the run, or slower than the snapshot by more
// than -tolerance (default 0.30), fails the gate. New benchmarks not yet
// in the snapshot are reported but pass — they gate only once committed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one benchmark's snapshot record.
type Entry struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// Snapshot is the on-disk form: a name-to-entry map (sorted keys) under
// a versioned envelope so the format can grow fields without breaking
// old gates.
type Snapshot struct {
	Note       string           `json:"note"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

const snapshotNote = "regenerate with scripts/bench.sh; CI gates ns/op against this file (scripts/bench.sh check)"

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkServeModel1M-8   1   123456789 ns/op   16 B/op ...
//
// The -N GOMAXPROCS suffix is stripped from the captured name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

func parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchsnap: %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchsnap: %q: %w", sc.Text(), err)
		}
		// Repeated names (e.g. -count > 1): keep the fastest run, the
		// stablest estimate of the code's actual cost under CI noise.
		if prev, ok := out[m[1]]; !ok || ns < prev.NsPerOp {
			out[m[1]] = Entry{Iterations: iters, NsPerOp: ns}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchsnap: no benchmark result lines on input (pipe `go test -bench` output)")
	}
	return out, nil
}

func main() {
	outPath := flag.String("out", "", "write the snapshot of the piped run to `file`")
	checkPath := flag.String("check", "", "compare the piped run against snapshot `file` and fail on regression")
	tolerance := flag.Float64("tolerance", 0.30, "maximum allowed ns/op regression vs the snapshot (0.30 = +30%)")
	flag.Parse()
	if (*outPath == "") == (*checkPath == "") {
		fmt.Fprintln(os.Stderr, "benchsnap: exactly one of -out or -check is required")
		os.Exit(2)
	}
	got, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	if *outPath != "" {
		b, err := json.MarshalIndent(Snapshot{Note: snapshotNote, Benchmarks: got}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchsnap: wrote %d benchmarks to %s\n", len(got), *outPath)
		return
	}
	data, err := os.ReadFile(*checkPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: parsing %s: %v\n", *checkPath, err)
		os.Exit(1)
	}
	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		base := snap.Benchmarks[name]
		cur, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %s: in snapshot but missing from this run\n", name)
			failed = true
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		verdict := "ok  "
		if ratio > 1+*tolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: %.0f ns/op vs snapshot %.0f (%+.1f%%, gate +%.0f%%)\n",
			verdict, name, cur.NsPerOp, base.NsPerOp, 100*(ratio-1), 100**tolerance)
	}
	for name := range got {
		if _, ok := snap.Benchmarks[name]; !ok {
			fmt.Printf("new  %s: %.0f ns/op (not in snapshot; refresh to gate it)\n", name, got[name].NsPerOp)
		}
	}
	if failed {
		fmt.Printf("benchsnap: regression gate FAILED (tolerance +%.0f%%)\n", 100**tolerance)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: %d benchmarks within +%.0f%% of %s\n", len(names), 100**tolerance, *checkPath)
}
