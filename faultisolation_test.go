package duet

import (
	"testing"

	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// buggyAccel is examples/faultisolation's accelerator: it stores a
// marker byte through its Proxy Cache, then issues a load that arrives
// corrupted (parity fault injected by the host), and finally hangs
// forever on an empty FIFO.
type buggyAccel struct{ addr uint64 }

func (a *buggyAccel) Start(env *efpga.Env) {
	env.Eng.Go("buggy", func(t *sim.Thread) {
		env.Regs.PopFPGA(t, 0) // wait for go
		var buf [8]byte
		buf[0] = 0x77
		if err := env.Mem[0].Store(t, a.addr, buf[:]); err != nil {
			return
		}
		env.Regs.PushCPU(t, 1, 1)
		env.Regs.PopFPGA(t, 0) // wait for the second go
		// This request arrives corrupted (parity fault injected by the
		// host), after which the accelerator never responds again.
		env.Mem[0].Load(t, a.addr, 8)
		env.Regs.PopFPGA(t, 0) // hangs forever
	})
}

// TestFaultIsolationExample is examples/faultisolation promoted to a
// tier-1 regression: the Adapter's exception containment (§II-B, §II-E)
// against a buggy accelerator that emits a corrupted memory request and
// then hangs. The system must latch the parity error code, deactivate
// the Memory Hub, complete the otherwise-deadlocking FIFO read with
// bogus data via the watchdog, and keep the accelerator's dirty line
// reachable through the Proxy Cache.
func TestFaultIsolationExample(t *testing.T) {
	sys := New(Config{
		Cores: 1, MemHubs: 1, Style: StyleDuet,
		RegSpecs: []core.SoftRegSpec{
			{Kind: core.RegFIFOToFPGA},
			{Kind: core.RegFIFOToCPU},
		},
	})
	addr := sys.Alloc(64)
	bs := efpga.Synthesize(efpga.Design{Name: "buggy", LUTLogic: 80, RegBits: 64, PipelineDepth: 3},
		func() efpga.Accelerator { return &buggyAccel{addr: addr} })
	if err := sys.InstallAccelerator(bs); err != nil {
		t.Fatal(err)
	}

	var stored, pulled uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(MgrRegAddr(core.RegTimeout), 20000) // 20us watchdog
		EnableHub(p, 0, false, false, false)
		p.MMIOWrite64(SoftRegAddr(0), 1)      // go
		stored = p.MMIORead64(SoftRegAddr(1)) // accelerator's store done
		sys.Adapter.Hub(0).InjectParityFaults(1)
		p.MMIOWrite64(SoftRegAddr(0), 1) // make it issue the bad load

		// This read would hang on the dead accelerator; the watchdog
		// completes it with bogus data instead of halting the core.
		_ = p.MMIORead64(SoftRegAddr(1))

		// The coherence protocol survived: the accelerator's line is
		// still served by the (deactivated hub's) Proxy Cache.
		pulled = p.Load64(addr)
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatalf("coherence broken after exception: %v", err)
	}
	if stored != 1 {
		t.Fatalf("accelerator store handshake = %d, want 1", stored)
	}
	// Golden latched code: the corrupted request latches parity before
	// the watchdog's timeout can fire — the first exception wins.
	if code := sys.Adapter.ErrCode(); code != core.ErrParity {
		t.Fatalf("latched error code = %d, want %d (parity)", code, core.ErrParity)
	}
	if sys.Adapter.Hub(0).Enabled() {
		t.Fatal("hub still enabled after exception")
	}
	if pulled != 0x77 {
		t.Fatalf("CPU pull of the accelerator's line = %#x, want 0x77 (proxy-cache line unreachable)", pulled)
	}
}
