package study

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrdersResultsByPoint(t *testing.T) {
	for _, parallel := range []int{1, 2, 4, 16, 0} {
		got := Run(parallel, 50, func(i int) int {
			// Finish out of order on purpose: late points sleep less.
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
			return i * i
		})
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: point %d = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestRunMatchesSequentialExactly(t *testing.T) {
	point := func(i int) [2]int { return [2]int{i, 3 * i} }
	seq := Run(1, 33, point)
	for _, parallel := range []int{2, 3, 8} {
		if got := Run(parallel, 33, point); !reflect.DeepEqual(got, seq) {
			t.Fatalf("parallel=%d diverged from sequential", parallel)
		}
	}
}

func TestRunBoundsWorkers(t *testing.T) {
	var live, peak atomic.Int64
	Run(3, 24, func(i int) int {
		n := live.Add(1)
		defer live.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		return i
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent points with parallel=3", p)
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("Run with 0 points = %v, want nil", got)
	}
}

func TestRunPanicPropagatesLowestIndex(t *testing.T) {
	// Points 3, 7 and 11 all panic; the lowest index must win — wrapped
	// the same way at every pool width, so even failures are
	// interleaving-free.
	for _, parallel := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallel=%d: panic did not propagate", parallel)
				}
				if msg := r.(error).Error(); !strings.Contains(msg, "point 3") {
					t.Fatalf("parallel=%d: propagated panic = %q, want point 3's", parallel, msg)
				}
			}()
			Run(parallel, 16, func(i int) int {
				if i%4 == 3 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

func TestMap(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	got := Map(2, items, func(s string) int { return len(s) })
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Map = %v, want %v", got, want)
	}
}

func TestParallelism(t *testing.T) {
	if Parallelism(5) != 5 {
		t.Fatal("explicit width not honored")
	}
	if Parallelism(0) < 1 || Parallelism(-1) < 1 {
		t.Fatal("defaulted width not positive")
	}
}
