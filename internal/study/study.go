// Package study is the deterministic parallel experiment runner behind
// every figure, ablation, and sweep this repository regenerates. A sweep
// is a grid of independent points — each point constructs, drains, and
// summarizes a complete simulated System of its own — so points can run
// concurrently on a bounded worker pool with results merged in
// point-index order.
//
// Determinism contract (the same one internal/cluster proves per shard):
// the output of Run is byte-identical to the sequential run regardless of
// worker count or goroutine interleaving, because
//
//  1. every point builds its own sim.Engine and touches no state shared
//     with other points (no package-level knobs: the one historical
//     offender, core.SyncStagesOverride, was replaced by a per-system
//     Config field when this package was introduced);
//  2. results land in a slice slot owned by the point's index, never in
//     an order-dependent accumulator; and
//  3. panics are re-raised for the lowest-indexed failing point after
//     the pool drains, so even failure output is interleaving-free.
//
// Points must not communicate; a point that needs another point's result
// belongs in a second sweep over the first sweep's output.
package study

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism resolves a worker-count knob: values <= 0 select
// GOMAXPROCS (the CLI's -parallel default), anything else is used as
// given.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes points 0..n-1 on min(parallel, n) workers and returns
// their results indexed by point. parallel <= 0 means GOMAXPROCS;
// parallel == 1 runs the points sequentially on the caller's goroutine
// (the baseline the golden tests compare every other width against).
// If any point panics, every point still runs, and Run then re-panics
// with an error naming the lowest-indexed failing point and wrapping its
// panic value — identical behavior at every pool width, so even the
// failure path is interleaving-free.
func Run[R any](parallel, n int, point func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	out := make([]R, n)
	panics := make([]any, n)
	runPoint := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = fmt.Errorf("study: point %d panicked: %v", i, r)
			}
		}()
		out[i] = point(i)
	}

	parallel = Parallelism(parallel)
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			runPoint(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runPoint(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return out
}

// Map runs fn over every item on the pool and returns the results in
// item order — Run for sweeps whose grid is already materialized as a
// slice of point descriptions.
func Map[P, R any](parallel int, items []P, fn func(P) R) []R {
	return Run(parallel, len(items), func(i int) R { return fn(items[i]) })
}
