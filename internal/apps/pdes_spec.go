package apps

import (
	"container/heap"
	"fmt"
	"sort"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/sim"
)

// PDESSpecConfig sizes the speculative-scheduler extension study.
type PDESSpecConfig struct {
	Cores      int
	Population int
	Horizon    uint64
	MinDelay   uint64 // tight lookahead: where speculation pays
	Entities   int    // entity-record count (small values force conflicts/squashes)
	Seed       uint64
	Speculate  bool
}

// specChildOf is the PHOLD child rule with a configurable minimum delay;
// with MinDelay=1 the conservative window nearly serializes, which is the
// regime the speculative scheduler attacks.
func specChildOf(ev uint64, minDelay, horizon uint64) (uint64, bool) {
	ts := accel.PDESEventTS(ev)
	id := uint32(ev)
	nid := id*2654435761 + 97
	nts := ts + minDelay + uint64(nid>>8)%8
	if nts > horizon {
		return 0, false
	}
	return accel.PDESEvent(nts, nid), true
}

func specEntityOf(entities int) func(uint32) uint32 {
	return func(payload uint32) uint32 { return payload % uint32(entities) }
}

// specApply is the order-sensitive entity update: final records depend on
// the per-entity execution order, so a mis-speculation that was not rolled
// back would corrupt the result.
func specApply(old uint64, ev uint64) uint64 {
	return old*31 + accel.PDESEventTS(ev) + uint64(uint32(ev)&0xff)
}

// refPDESSpec replays the deterministic event tree in full-word order and
// returns the final entity records plus the event count.
func refPDESSpec(cfg PDESSpecConfig, initial []uint64) (map[uint32]uint64, uint64) {
	var all []uint64
	h := &u64Heap{}
	for _, e := range initial {
		heap.Push(h, e)
	}
	for h.Len() > 0 {
		ev := heap.Pop(h).(uint64)
		all = append(all, ev)
		if ch, ok := specChildOf(ev, cfg.MinDelay, cfg.Horizon); ok {
			heap.Push(h, ch)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	records := make(map[uint32]uint64)
	entity := specEntityOf(cfg.Entities)
	for _, ev := range all {
		e := entity(uint32(ev))
		records[e] = specApply(records[e], ev)
	}
	return records, uint64(len(all))
}

// RunPDESSpec executes the speculative-scheduler extension (Duet style
// only): the same workload runs under the conservative policy
// (Speculate=false) and the speculative one, both entity-serialized, and
// both verified against the sequential reference.
func RunPDESSpec(cfg PDESSpecConfig) (Result, *accel.PDESSpec) {
	res := Result{Name: fmt.Sprintf("pdes-spec/%d", cfg.Cores), Variant: VariantDuet}
	if cfg.Entities == 0 {
		cfg.Entities = 256
	}
	entity := specEntityOf(cfg.Entities)
	regs := []core.SoftRegSpec{{Kind: core.RegFIFOToFPGA, Depth: 16}}
	for i := 0; i < cfg.Cores; i++ {
		regs = append(regs, core.SoftRegSpec{Kind: core.RegFIFOToCPU})
	}
	regs = append(regs, core.SoftRegSpec{Kind: core.RegPlain}) // entity base
	sys := duet.New(duet.Config{Cores: cfg.Cores, MemHubs: 1, Style: duet.StyleDuet, RegSpecs: regs})

	rng := newRNG(cfg.Seed)
	initial := make([]uint64, cfg.Population)
	for i := range initial {
		initial[i] = accel.PDESEvent(uint64(rng.intn(16)), uint32(rng.next()))
	}
	wantRecords, wantCount := refPDESSpec(cfg, initial)

	entityBase := sys.Alloc(256 * 16)
	sched := &accel.PDESSpec{
		Cores: cfg.Cores, MinDelay: cfg.MinDelay,
		Speculate: cfg.Speculate, EntityOf: entity,
	}
	bs := accel.NewPDESSpecBitstream(sched)
	if err := sys.InstallAccelerator(bs); err != nil {
		res.Err = err
		return res, sched
	}

	starts := make([]sim.Time, cfg.Cores)
	ends := make([]sim.Time, cfg.Cores)
	readyFlag := sys.Alloc(64)
	for c := 0; c < cfg.Cores; c++ {
		c := c
		sys.Cores[c].Run("pdes-spec", func(p cpu.Proc) {
			if c == 0 {
				p.MMIOWrite64(duet.MgrRegAddr(core.RegTimeout), 3_000_000)
				duet.EnableHub(p, 0, false, false, false)
				p.MMIOWrite64(duet.SoftRegAddr(accel.PDESDataBaseReg(cfg.Cores)), entityBase)
				for _, e := range initial {
					p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpPush, 0, e))
				}
				p.Store64(readyFlag, 1)
			} else {
				for p.Load64(readyFlag) == 0 {
					p.Exec(50)
				}
			}
			starts[c] = p.Now()
			for {
				p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpReq, c, 0))
				ev := p.MMIORead64(duet.SoftRegAddr(accel.PDESEventReg0 + c))
				if ev == accel.PDESIdle {
					break
				}
				// Process: an order-sensitive update of the entity record.
				slot := entityBase + uint64(entity(uint32(ev)))*16
				old := p.Load64(slot)
				p.Exec(40)
				p.Store64(slot, specApply(old, ev))
				if child, ok := specChildOf(ev, cfg.MinDelay, cfg.Horizon); ok {
					p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpPush, c, child))
				}
				p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpDone, c, 0))
			}
			ends[c] = p.Now()
		})
	}
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res, sched
	}
	res.Runtime = span(starts, ends)

	if sched.Committed != wantCount {
		res.Err = fmt.Errorf("pdes-spec: committed %d events, want %d (squashed %d)", sched.Committed, wantCount, sched.Squashed)
		return res, sched
	}
	for e, want := range wantRecords {
		if got := sys.ReadMem64(entityBase + uint64(e)*16); got != want {
			res.Err = fmt.Errorf("pdes-spec: entity %d record %#x, want %#x (rollback broken)", e, got, want)
			return res, sched
		}
	}
	return res, sched
}
