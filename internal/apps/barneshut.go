package apps

import (
	"fmt"
	"math"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/sim"
)

// BHConfig sizes the Barnes-Hut benchmark.
type BHConfig struct {
	Particles int
	Theta     float64
	Seed      uint64
}

// DefaultBHConfig returns the Fig. 12 configuration (P4M1).
func DefaultBHConfig() BHConfig { return BHConfig{Particles: 96, Theta: 0.5, Seed: 21} }

// bhCores is fixed by the paper's instance (P4M1).
const bhCores = 4

// Octree node (host-side build; flattened into simulated memory).
type bhNode struct {
	cx, cy, cz, mass float64 // center of mass
	width            float64
	kids             [8]int32 // -1 = none
	body             int32    // leaf body index, -1 for internal nodes
}

type bhBody struct{ x, y, z, m float64 }

// bhCell is a node's spatial extent during tree construction.
type bhCell struct{ x, y, z, w float64 }

// buildOctree builds the Barnes-Hut octree in Go (tree construction is
// host setup; the measured kernel is force calculation, as in Listing 1).
func buildOctree(bodies []bhBody) []bhNode {
	nodes := []bhNode{{width: 1.0, body: -1}}
	for i := range nodes[0].kids {
		nodes[0].kids[i] = -1
	}
	cells := []bhCell{{0.5, 0.5, 0.5, 1.0}}

	var insert func(n int, b int32, bo bhBody)
	insert = func(n int, b int32, bo bhBody) {
		nd := &nodes[n]
		if nd.mass == 0 && nd.body == -1 && isLeafEmpty(nd) {
			// Empty leaf: take the body.
			nd.body = b
			nd.cx, nd.cy, nd.cz, nd.mass = bo.x, bo.y, bo.z, bo.m
			return
		}
		if nd.body >= 0 {
			// Occupied leaf: split.
			old := nd.body
			oldBody := bhBody{nd.cx, nd.cy, nd.cz, nd.mass}
			nd.body = -1
			nd.cx, nd.cy, nd.cz, nd.mass = 0, 0, 0, 0
			insertChild(&nodes, &cells, n, old, oldBody, insert)
		}
		insertChild(&nodes, &cells, n, b, bo, insert)
	}
	for i, b := range bodies {
		insert(0, int32(i), b)
	}
	// Compute centers of mass bottom-up (recursion).
	var com func(n int) (m, mx, my, mz float64)
	com = func(n int) (m, mx, my, mz float64) {
		nd := &nodes[n]
		if nd.body >= 0 {
			return nd.mass, nd.cx * nd.mass, nd.cy * nd.mass, nd.cz * nd.mass
		}
		for _, k := range nd.kids {
			if k < 0 {
				continue
			}
			km, kx, ky, kz := com(int(k))
			m += km
			mx += kx
			my += ky
			mz += kz
		}
		if m > 0 {
			nd.mass = m
			nd.cx, nd.cy, nd.cz = mx/m, my/m, mz/m
		}
		return m, mx, my, mz
	}
	com(0)
	return nodes
}

func isLeafEmpty(nd *bhNode) bool {
	for _, k := range nd.kids {
		if k >= 0 {
			return false
		}
	}
	return true
}

func insertChild(nodes *[]bhNode, cells *[]bhCell, n int, b int32, bo bhBody,
	insert func(int, int32, bhBody)) {
	c := (*cells)[n]
	oct := 0
	if bo.x >= c.x {
		oct |= 1
	}
	if bo.y >= c.y {
		oct |= 2
	}
	if bo.z >= c.z {
		oct |= 4
	}
	if (*nodes)[n].kids[oct] < 0 {
		w := c.w / 2
		nx, ny, nz := c.x-w/2, c.y-w/2, c.z-w/2
		if oct&1 != 0 {
			nx = c.x + w/2
		}
		if oct&2 != 0 {
			ny = c.y + w/2
		}
		if oct&4 != 0 {
			nz = c.z + w/2
		}
		nn := bhNode{width: w, body: -1}
		for i := range nn.kids {
			nn.kids[i] = -1
		}
		*nodes = append(*nodes, nn)
		*cells = append(*cells, bhCell{nx, ny, nz, w})
		(*nodes)[n].kids[oct] = int32(len(*nodes) - 1)
	}
	insert(int((*nodes)[n].kids[oct]), b, bo)
}

// CPU floating-point costs (in-order core with a private FPU): the
// opening test uses the squared-distance trick (no sqrt/div); the force
// evaluation pays sqrt + div + multiply-adds.
const (
	bhDistCycles  = 35  // dx,dy,dz + squares + sums
	bhTestCycles  = 8   // width^2 vs theta^2*d^2 compare
	bhForceCycles = 150 // double-precision fsqrt + fdiv (iterative on Ariane) + 3 fmul + 3 fmac
)

// refBHForces computes reference forces with the exact traversal the
// simulated kernels use, so results compare exactly.
func refBHForces(bodies []bhBody, nodes []bhNode, theta float64) [][3]float64 {
	out := make([][3]float64, len(bodies))
	th2 := theta * theta
	var walk func(p int, n int)
	walk = func(p int, n int) {
		nd := &nodes[n]
		if nd.mass == 0 {
			return
		}
		if nd.body >= 0 {
			if int(nd.body) != p {
				fx, fy, fz := accel.BHForce(bodies[p].x, bodies[p].y, bodies[p].z, bodies[p].m,
					nd.cx, nd.cy, nd.cz, nd.mass)
				out[p][0] += fx
				out[p][1] += fy
				out[p][2] += fz
			}
			return
		}
		dx, dy, dz := nd.cx-bodies[p].x, nd.cy-bodies[p].y, nd.cz-bodies[p].z
		d2 := dx*dx + dy*dy + dz*dz + accel.BHSoftening
		if nd.width*nd.width < th2*d2 {
			fx, fy, fz := accel.BHForce(bodies[p].x, bodies[p].y, bodies[p].z, bodies[p].m,
				nd.cx, nd.cy, nd.cz, nd.mass)
			out[p][0] += fx
			out[p][1] += fy
			out[p][2] += fz
			return
		}
		for _, k := range nd.kids {
			if k >= 0 {
				walk(p, int(k))
			}
		}
	}
	for p := range bodies {
		walk(p, 0)
	}
	return out
}

// RunBarnesHut executes the Barnes-Hut benchmark (P4M1, fine-grained).
func RunBarnesHut(v Variant, cfg BHConfig) Result {
	res := Result{Name: "barnes-hut", Variant: v}
	style := duet.StyleCPUOnly
	switch v {
	case VariantDuet:
		style = duet.StyleDuet
	case VariantFPSoC:
		style = duet.StyleFPSoC
	}
	regs := []core.SoftRegSpec{
		{Kind: core.RegFIFOToFPGA},                           // BHWork0Reg
		{Kind: core.RegFIFOToFPGA},                           // BHWork1Reg
		{Kind: core.RegFIFOToCPU}, {Kind: core.RegFIFOToCPU}, // per-core results
		{Kind: core.RegFIFOToCPU}, {Kind: core.RegFIFOToCPU},
		{Kind: core.RegPlain}, // BHPartBaseReg
		{Kind: core.RegPlain}, // BHNodeBaseReg
	}
	sysCfg := duet.Config{Cores: bhCores, Style: style, RegSpecs: regs}
	if v == VariantCPU {
		sysCfg.RegSpecs = nil
	} else {
		sysCfg.MemHubs = 1
	}
	sys := duet.New(sysCfg)

	rng := newRNG(cfg.Seed)
	bodies := make([]bhBody, cfg.Particles)
	for i := range bodies {
		bodies[i] = bhBody{rng.float(), rng.float(), rng.float(), 1e3 + rng.float()*1e5}
	}
	nodes := buildOctree(bodies)

	// Flatten into simulated memory: body geometry (32B each), node
	// geometry (32B each), node metadata (width + kids + leaf body).
	partBase := sys.Alloc(len(bodies) * accel.BHBodyBytes)
	nodeGeom := sys.Alloc(len(nodes) * accel.BHBodyBytes)
	nodeWidth := sys.Alloc(len(nodes) * 8)
	nodeKids := sys.Alloc(len(nodes) * 32)
	nodeBody := sys.Alloc(len(nodes) * 4)
	forces := sys.Alloc(len(bodies) * 24)
	for i, b := range bodies {
		base := partBase + uint64(i*accel.BHBodyBytes)
		sys.Dom.DRAM.Write64(base, math.Float64bits(b.x))
		sys.Dom.DRAM.Write64(base+8, math.Float64bits(b.y))
		sys.Dom.DRAM.Write64(base+16, math.Float64bits(b.z))
		sys.Dom.DRAM.Write64(base+24, math.Float64bits(b.m))
	}
	for i, nd := range nodes {
		g := nodeGeom + uint64(i*accel.BHBodyBytes)
		sys.Dom.DRAM.Write64(g, math.Float64bits(nd.cx))
		sys.Dom.DRAM.Write64(g+8, math.Float64bits(nd.cy))
		sys.Dom.DRAM.Write64(g+16, math.Float64bits(nd.cz))
		sys.Dom.DRAM.Write64(g+24, math.Float64bits(nd.mass))
		sys.Dom.DRAM.Write64(nodeWidth+uint64(i*8), math.Float64bits(nd.width))
		for k := 0; k < 8; k++ {
			sys.Dom.DRAM.Write32(nodeKids+uint64(i*32+k*4), uint32(nd.kids[k]))
		}
		sys.Dom.DRAM.Write32(nodeBody+uint64(i*4), uint32(nd.body))
	}

	var efpgaMM2 float64
	if v != VariantCPU {
		bs := accel.NewBarnesHutBitstream(bhCores)
		efpgaMM2 = bs.Report.AreaMM2
		if err := sys.InstallAccelerator(bs); err != nil {
			res.Err = err
			return res
		}
	}

	th2bits := cfg.Theta * cfg.Theta
	starts := make([]sim.Time, bhCores)
	ends := make([]sim.Time, bhCores)
	for c := 0; c < bhCores; c++ {
		c := c
		sys.Cores[c].Run("bh", func(p cpu.Proc) {
			if v != VariantCPU && c == 0 {
				duet.EnableHub(p, 0, false, false, false)
				p.MMIOWrite64(duet.SoftRegAddr(accel.BHPartBaseReg), partBase)
				p.MMIOWrite64(duet.SoftRegAddr(accel.BHNodeBaseReg), nodeGeom)
			}
			if v != VariantCPU {
				// Wait for core 0's setup: the plain shadow register
				// carries the node base as the ready flag.
				for p.MMIORead64(duet.SoftRegAddr(accel.BHNodeBaseReg)) != nodeGeom {
					p.Exec(50)
				}
			}
			if c == 0 {
				warm(p, nodeGeom, len(nodes)*accel.BHBodyBytes)
				warm(p, nodeWidth, len(nodes)*8)
				warm(p, nodeKids, len(nodes)*32)
				warm(p, nodeBody, len(nodes)*4)
				warm(p, partBase, len(bodies)*accel.BHBodyBytes)
			}
			starts[c] = p.Now()
			// Particles are striped across the cores.
			for i := c; i < len(bodies); i += bhCores {
				px := math.Float64frombits(p.Load64(partBase + uint64(i*32)))
				py := math.Float64frombits(p.Load64(partBase + uint64(i*32) + 8))
				pz := math.Float64frombits(p.Load64(partBase + uint64(i*32) + 16))
				pm := math.Float64frombits(p.Load64(partBase + uint64(i*32) + 24))
				var fx, fy, fz float64
				if v != VariantCPU {
					p.MMIOWrite64(duet.SoftRegAddr(accel.BHWorkReg(c)), accel.BHPack(accel.BHOpSetParticle, c, uint32(i)))
				}
				// Iterative DFS matching refBHForces' order.
				stack := []int32{0}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					// Load node geometry (2 lines) and width.
					ncx := math.Float64frombits(p.Load64(nodeGeom + uint64(n)*32))
					ncy := math.Float64frombits(p.Load64(nodeGeom + uint64(n)*32 + 8))
					ncz := math.Float64frombits(p.Load64(nodeGeom + uint64(n)*32 + 16))
					nm := math.Float64frombits(p.Load64(nodeGeom + uint64(n)*32 + 24))
					if nm == 0 {
						continue
					}
					leaf := int32(p.Load32(nodeBody + uint64(n)*4))
					if leaf >= 0 {
						if int(leaf) != i {
							if v == VariantCPU {
								p.Exec(bhDistCycles + bhForceCycles)
								gx, gy, gz := accel.BHForce(px, py, pz, pm, ncx, ncy, ncz, nm)
								fx += gx
								fy += gy
								fz += gz
							} else {
								p.MMIOWrite64(duet.SoftRegAddr(accel.BHWorkReg(c)), accel.BHPack(accel.BHOpCalc, c, uint32(leaf)))
							}
						}
						continue
					}
					w := math.Float64frombits(p.Load64(nodeWidth + uint64(n)*8))
					dx, dy, dz := ncx-px, ncy-py, ncz-pz
					d2 := dx*dx + dy*dy + dz*dz + accel.BHSoftening
					p.Exec(bhDistCycles + bhTestCycles)
					if w*w < th2bits*d2 {
						if v == VariantCPU {
							p.Exec(bhForceCycles)
							gx, gy, gz := accel.BHForce(px, py, pz, pm, ncx, ncy, ncz, nm)
							fx += gx
							fy += gy
							fz += gz
						} else {
							p.MMIOWrite64(duet.SoftRegAddr(accel.BHWorkReg(c)), accel.BHPack(accel.BHOpApprox, c, uint32(n)))
						}
						continue
					}
					// Push children in reverse so traversal order matches
					// the recursive reference.
					for k := 7; k >= 0; k-- {
						kid := int32(p.Load32(nodeKids + uint64(n)*32 + uint64(k*4)))
						if kid >= 0 {
							stack = append(stack, kid)
						}
					}
				}
				if v != VariantCPU {
					p.MMIOWrite64(duet.SoftRegAddr(accel.BHWorkReg(c)), accel.BHPack(accel.BHOpFlush, c, 0))
					fx = math.Float64frombits(p.MMIORead64(duet.SoftRegAddr(accel.BHResultReg0 + c)))
					fy = math.Float64frombits(p.MMIORead64(duet.SoftRegAddr(accel.BHResultReg0 + c)))
					fz = math.Float64frombits(p.MMIORead64(duet.SoftRegAddr(accel.BHResultReg0 + c)))
				}
				p.Store64(forces+uint64(i*24), math.Float64bits(fx))
				p.Store64(forces+uint64(i*24+8), math.Float64bits(fy))
				p.Store64(forces+uint64(i*24+16), math.Float64bits(fz))
			}
			ends[c] = p.Now()
		})
	}
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res
	}
	res.Runtime = span(starts, ends)

	want := refBHForces(bodies, nodes, cfg.Theta)
	for i := range bodies {
		gx := math.Float64frombits(sys.ReadMem64(forces + uint64(i*24)))
		gy := math.Float64frombits(sys.ReadMem64(forces + uint64(i*24+8)))
		gz := math.Float64frombits(sys.ReadMem64(forces + uint64(i*24+16)))
		if !closeF(gx, want[i][0]) || !closeF(gy, want[i][1]) || !closeF(gz, want[i][2]) {
			res.Err = fmt.Errorf("barnes-hut: force[%d] = (%g,%g,%g), want (%g,%g,%g)",
				i, gx, gy, gz, want[i][0], want[i][1], want[i][2])
			return res
		}
	}
	res.AreaMM2 = systemArea(v, bhCores, 1, efpgaMM2)
	return res
}

func closeF(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// span reports the wall time from the earliest start to the latest end.
func span(starts, ends []sim.Time) sim.Time {
	var lo, hi sim.Time
	for i := range starts {
		if i == 0 || starts[i] < lo {
			lo = starts[i]
		}
		if ends[i] > hi {
			hi = ends[i]
		}
	}
	return hi - lo
}
