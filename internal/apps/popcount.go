package apps

import (
	"fmt"
	"math/bits"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
)

// PopcountConfig sizes the popcount benchmark.
type PopcountConfig struct {
	Vectors int
	Seed    uint64
}

// DefaultPopcountConfig returns the Fig. 12 configuration.
func DefaultPopcountConfig() PopcountConfig { return PopcountConfig{Vectors: 96, Seed: 5} }

// RunPopcount executes the popcount benchmark (P1M1, fine-grained): the
// processor-only baseline uses a byte look-up algorithm (the Ariane has
// no BitManip extension, paper §V-D) with the table in real simulated
// memory.
func RunPopcount(v Variant, cfg PopcountConfig) Result {
	res := Result{Name: "popcount", Variant: v}
	style := duet.StyleCPUOnly
	switch v {
	case VariantDuet:
		style = duet.StyleDuet
	case VariantFPSoC:
		style = duet.StyleFPSoC
	}
	memHubs := 1
	sysCfg := duet.Config{Cores: 1, Style: style, RegSpecs: []core.SoftRegSpec{
		{Kind: core.RegFIFOToFPGA}, // PopCmdReg
		{Kind: core.RegFIFOToCPU},  // PopResultReg
	}}
	if v == VariantCPU {
		sysCfg.RegSpecs = nil
	} else {
		sysCfg.MemHubs = memHubs
	}
	sys := duet.New(sysCfg)

	rng := newRNG(cfg.Seed)
	vecs := sys.Alloc(cfg.Vectors * accel.PopVectorBytes)
	counts := sys.Alloc(cfg.Vectors * 8)
	want := make([]int, cfg.Vectors)
	for i := 0; i < cfg.Vectors; i++ {
		for w := 0; w < accel.PopVectorBytes/8; w++ {
			val := rng.next()
			sys.Dom.DRAM.Write64(vecs+uint64(i*accel.PopVectorBytes+w*8), val)
			want[i] += bits.OnesCount64(val)
		}
	}
	// Byte-popcount lookup table (256 x 4B) for the software baseline.
	table := sys.Alloc(256 * 4)
	for b := 0; b < 256; b++ {
		sys.Dom.DRAM.Write32(table+uint64(b*4), uint32(bits.OnesCount8(uint8(b))))
	}

	var efpgaMM2 float64
	if v != VariantCPU {
		bs := accel.NewPopcountBitstream()
		efpgaMM2 = bs.Report.AreaMM2
		if err := sys.InstallAccelerator(bs); err != nil {
			res.Err = err
			return res
		}
	}

	sys.Cores[0].Run("popcount", func(p cpu.Proc) {
		if v != VariantCPU {
			duet.EnableHub(p, 0, false, false, false)
		}
		// Warm caches before the measured region (paper §V-A).
		warm(p, vecs, cfg.Vectors*accel.PopVectorBytes)
		warm(p, table, 256*4)
		start := p.Now()
		for i := 0; i < cfg.Vectors; i++ {
			addr := vecs + uint64(i*accel.PopVectorBytes)
			var count uint64
			if v == VariantCPU {
				for w := 0; w < accel.PopVectorBytes/8; w++ {
					word := p.Load64(addr + uint64(w*8))
					for b := 0; b < 8; b++ {
						p.Exec(4) // shift, mask, index scale, address add
						count += uint64(p.Load32(table + uint64(word>>(8*b)&0xff)*4))
						p.Exec(2) // accumulate + loop bookkeeping
					}
				}
			} else {
				p.MMIOWrite64(duet.SoftRegAddr(accel.PopCmdReg), addr)
				count = p.MMIORead64(duet.SoftRegAddr(accel.PopResultReg))
			}
			p.Store64(counts+uint64(i*8), count)
		}
		res.Runtime = p.Now() - start
	})
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res
	}
	for i := range want {
		if got := sys.ReadMem64(counts + uint64(i*8)); got != uint64(want[i]) {
			res.Err = fmt.Errorf("popcount[%d] = %d, want %d", i, got, want[i])
			return res
		}
	}
	res.AreaMM2 = systemArea(v, 1, memHubs, efpgaMM2)
	return res
}
