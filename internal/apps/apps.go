// Package apps implements the seven application benchmarks of the paper's
// evaluation (§V-D), each in three variants: the processor-only baseline
// (real code over the simulated memory system, including MCS locks and
// barriers where the paper's baselines use them), the Duet version, and
// the FPSoC baseline (same accelerator, slow-domain FPGA-side cache,
// normal registers). Every run checks functional correctness against a
// host-computed reference before reporting time.
package apps

import (
	"fmt"

	"duet/internal/area"
	"duet/internal/cpu"
	"duet/internal/sim"
)

// Variant selects the system organization a benchmark runs on.
type Variant int

// Benchmark variants.
const (
	VariantCPU Variant = iota
	VariantDuet
	VariantFPSoC
)

func (v Variant) String() string {
	return [...]string{"CPU", "Duet", "FPSoC"}[v]
}

// Result is one benchmark execution.
type Result struct {
	Name    string
	Variant Variant
	Runtime sim.Time // measured kernel region
	AreaMM2 float64  // total silicon area of the configuration
	Err     error    // functional check outcome
}

// Benchmark describes one column of Fig. 12.
type Benchmark struct {
	Name     string
	Paradigm string // "FG" (fine-grained) or "HA" (hardware augmentation)
	Instance string // Dolly instance, e.g. "P1M2"
	Run      func(v Variant) Result
}

// All returns the paper's benchmark set in Fig. 12 order. The sizes are
// scaled for simulation speed; Sizes in the bench harness can override.
func All() []Benchmark {
	return []Benchmark{
		{Name: "tangent", Paradigm: "FG", Instance: "P1M0", Run: func(v Variant) Result { return RunTangent(v, DefaultTangentConfig()) }},
		{Name: "popcount", Paradigm: "FG", Instance: "P1M1", Run: func(v Variant) Result { return RunPopcount(v, DefaultPopcountConfig()) }},
		{Name: "sort/32", Paradigm: "FG", Instance: "P1M2", Run: func(v Variant) Result { return RunSort(v, SortConfig{N: 32, Rounds: 6, Seed: 7}) }},
		{Name: "sort/64", Paradigm: "FG", Instance: "P1M2", Run: func(v Variant) Result { return RunSort(v, SortConfig{N: 64, Rounds: 5, Seed: 8}) }},
		{Name: "sort/128", Paradigm: "FG", Instance: "P1M2", Run: func(v Variant) Result { return RunSort(v, SortConfig{N: 128, Rounds: 4, Seed: 9}) }},
		{Name: "dijkstra", Paradigm: "FG", Instance: "P1M1", Run: func(v Variant) Result { return RunDijkstra(v, DefaultDijkstraConfig()) }},
		{Name: "barnes-hut", Paradigm: "FG", Instance: "P4M1", Run: func(v Variant) Result { return RunBarnesHut(v, DefaultBHConfig()) }},
		{Name: "pdes/4", Paradigm: "HA", Instance: "P4M1", Run: func(v Variant) Result {
			return RunPDES(v, PDESConfig{Cores: 4, Population: 48, Horizon: 400, Seed: 11})
		}},
		{Name: "pdes/8", Paradigm: "HA", Instance: "P8M1", Run: func(v Variant) Result {
			return RunPDES(v, PDESConfig{Cores: 8, Population: 48, Horizon: 400, Seed: 11})
		}},
		{Name: "pdes/16", Paradigm: "HA", Instance: "P16M1", Run: func(v Variant) Result {
			return RunPDES(v, PDESConfig{Cores: 16, Population: 48, Horizon: 400, Seed: 11})
		}},
		{Name: "bfs/4", Paradigm: "HA", Instance: "P4M0", Run: func(v Variant) Result { return RunBFS(v, BFSConfig{Cores: 4, Nodes: 768, AvgDegree: 4, Seed: 13}) }},
		{Name: "bfs/8", Paradigm: "HA", Instance: "P8M0", Run: func(v Variant) Result { return RunBFS(v, BFSConfig{Cores: 8, Nodes: 768, AvgDegree: 4, Seed: 13}) }},
		{Name: "bfs/16", Paradigm: "HA", Instance: "P16M0", Run: func(v Variant) Result { return RunBFS(v, BFSConfig{Cores: 16, Nodes: 768, AvgDegree: 4, Seed: 13}) }},
	}
}

// Fig12Row is one benchmark column of Fig. 12.
type Fig12Row struct {
	Name         string
	SpeedupDuet  float64
	SpeedupFPSoC float64
	ADPDuet      float64
	ADPFPSoC     float64
	CPURuntime   sim.Time
	DuetRuntime  sim.Time
	FPSoCRuntime sim.Time
	Err          error
}

// Fig12 runs every benchmark in all three variants and computes
// normalized speedup and area-delay product.
func Fig12() []Fig12Row {
	var rows []Fig12Row
	for _, b := range All() {
		rows = append(rows, RunOne(b))
	}
	return rows
}

// RunOne executes one benchmark across the three variants.
func RunOne(b Benchmark) Fig12Row {
	cpuRes := b.Run(VariantCPU)
	duetRes := b.Run(VariantDuet)
	fpsocRes := b.Run(VariantFPSoC)
	row := Fig12Row{
		Name:         b.Name,
		CPURuntime:   cpuRes.Runtime,
		DuetRuntime:  duetRes.Runtime,
		FPSoCRuntime: fpsocRes.Runtime,
	}
	for _, r := range []Result{cpuRes, duetRes, fpsocRes} {
		if r.Err != nil && row.Err == nil {
			row.Err = fmt.Errorf("%s/%s: %w", b.Name, r.Variant, r.Err)
		}
	}
	if duetRes.Runtime > 0 {
		row.SpeedupDuet = float64(cpuRes.Runtime) / float64(duetRes.Runtime)
	}
	if fpsocRes.Runtime > 0 {
		row.SpeedupFPSoC = float64(cpuRes.Runtime) / float64(fpsocRes.Runtime)
	}
	base := float64(cpuRes.Runtime)
	row.ADPDuet = area.ADP(duetRes.AreaMM2, float64(duetRes.Runtime), cpuRes.AreaMM2, base)
	row.ADPFPSoC = area.ADP(fpsocRes.AreaMM2, float64(fpsocRes.Runtime), cpuRes.AreaMM2, base)
	return row
}

// Geomeans summarizes Fig. 12 (speedup and ADP geometric means).
func Geomeans(rows []Fig12Row) (spDuet, spFPSoC, adpDuet, adpFPSoC float64) {
	var a, b, c, d []float64
	for _, r := range rows {
		a = append(a, r.SpeedupDuet)
		b = append(b, r.SpeedupFPSoC)
		c = append(c, r.ADPDuet)
		d = append(d, r.ADPFPSoC)
	}
	return area.Geomean(a), area.Geomean(b), area.Geomean(c), area.Geomean(d)
}

// systemArea assembles the configuration's silicon area.
func systemArea(v Variant, cores, memHubs int, efpgaMM2 float64) float64 {
	switch v {
	case VariantCPU:
		return area.SystemArea{Cores: cores}.Total()
	case VariantFPSoC:
		// The FPSoC adds only the FPGA silicon on top of the baseline
		// (paper §V-D).
		return area.SystemArea{Cores: cores, EFPGAMM2: efpgaMM2}.Total()
	default:
		tiles := 0
		if memHubs > 0 {
			tiles = 1 + (memHubs - 1)
		} else {
			tiles = 1
		}
		return area.SystemArea{
			Cores: cores, MemHubs: memHubs, HasCtrl: true,
			AdapterTiles: tiles, EFPGAMM2: efpgaMM2,
		}.Total()
	}
}

// warm pre-touches a memory range through the core, warming its caches
// before the measured region (the paper gives processor-only baselines a
// warm cache, §V-A; the soft accelerators always start cold).
func warm(p cpu.Proc, base uint64, bytes int) {
	for off := 0; off < bytes; off += 16 {
		p.Load64((base + uint64(off)) &^ 7)
	}
}

// xorshift is the deterministic PRNG used by all workload generators.
type xorshift uint64

func newRNG(seed uint64) *xorshift {
	x := xorshift(seed*2654435761 + 1)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) intn(n int) int {
	return int(x.next() % uint64(n))
}

func (x *xorshift) float() float64 {
	return float64(x.next()%(1<<53)) / (1 << 53)
}
