package apps

import (
	"testing"
)

// Every benchmark must produce functionally correct results in all three
// variants — the accelerated versions compute real answers through the
// simulated adapter, not just timings.

func checkAll(t *testing.T, name string, run func(v Variant) Result) (cpu, duet, fpsoc Result) {
	t.Helper()
	cpu = run(VariantCPU)
	if cpu.Err != nil {
		t.Fatalf("%s/CPU: %v", name, cpu.Err)
	}
	duet = run(VariantDuet)
	if duet.Err != nil {
		t.Fatalf("%s/Duet: %v", name, duet.Err)
	}
	fpsoc = run(VariantFPSoC)
	if fpsoc.Err != nil {
		t.Fatalf("%s/FPSoC: %v", name, fpsoc.Err)
	}
	if cpu.Runtime <= 0 || duet.Runtime <= 0 || fpsoc.Runtime <= 0 {
		t.Fatalf("%s: zero runtime (cpu=%v duet=%v fpsoc=%v)", name, cpu.Runtime, duet.Runtime, fpsoc.Runtime)
	}
	sd := float64(cpu.Runtime) / float64(duet.Runtime)
	sf := float64(cpu.Runtime) / float64(fpsoc.Runtime)
	t.Logf("%-10s cpu=%8v duet=%8v (%.2fx) fpsoc=%8v (%.2fx)", name, cpu.Runtime, duet.Runtime, sd, fpsoc.Runtime, sf)
	return cpu, duet, fpsoc
}

func TestTangentAllVariants(t *testing.T) {
	cfg := TangentConfig{Calls: 64, Seed: 3}
	_, duet, fpsoc := checkAll(t, "tangent", func(v Variant) Result { return RunTangent(v, cfg) })
	if duet.Runtime >= fpsoc.Runtime {
		t.Errorf("tangent: Duet (%v) not faster than FPSoC (%v)", duet.Runtime, fpsoc.Runtime)
	}
}

func TestPopcountAllVariants(t *testing.T) {
	cfg := PopcountConfig{Vectors: 24, Seed: 5}
	cpu, duet, _ := checkAll(t, "popcount", func(v Variant) Result { return RunPopcount(v, cfg) })
	if duet.Runtime >= cpu.Runtime {
		t.Errorf("popcount: no speedup (duet %v vs cpu %v)", duet.Runtime, cpu.Runtime)
	}
}

func TestSortAllVariants(t *testing.T) {
	for _, n := range []int{32, 64, 128} {
		cfg := SortConfig{N: n, Rounds: 2, Seed: uint64(n)}
		cpu, duet, fpsoc := checkAll(t, "sort", func(v Variant) Result { return RunSort(v, cfg) })
		if duet.Runtime >= cpu.Runtime {
			t.Errorf("sort/%d: no speedup", n)
		}
		if duet.Runtime >= fpsoc.Runtime {
			t.Errorf("sort/%d: Duet not faster than FPSoC", n)
		}
	}
}

func TestDijkstraAllVariants(t *testing.T) {
	cfg := DijkstraConfig{Nodes: 64, AvgDegree: 4, Seed: 17}
	checkAll(t, "dijkstra", func(v Variant) Result { return RunDijkstra(v, cfg) })
}

func TestBarnesHutAllVariants(t *testing.T) {
	cfg := BHConfig{Particles: 32, Theta: 0.5, Seed: 21}
	cpu, duet, _ := checkAll(t, "barnes-hut", func(v Variant) Result { return RunBarnesHut(v, cfg) })
	if duet.Runtime >= cpu.Runtime {
		t.Errorf("barnes-hut: no speedup")
	}
}

func TestPDESAllVariants(t *testing.T) {
	cfg := PDESConfig{Cores: 4, Population: 16, Horizon: 150, Seed: 11}
	cpu, duet, _ := checkAll(t, "pdes/4", func(v Variant) Result { return RunPDES(v, cfg) })
	if duet.Runtime >= cpu.Runtime {
		t.Errorf("pdes: no speedup")
	}
}

func TestBFSAllVariants(t *testing.T) {
	cfg := BFSConfig{Cores: 4, Nodes: 128, AvgDegree: 4, Seed: 13}
	cpu, duet, _ := checkAll(t, "bfs/4", func(v Variant) Result { return RunBFS(v, cfg) })
	if duet.Runtime >= cpu.Runtime {
		t.Errorf("bfs: no speedup")
	}
}

// TestFig12Shape runs a reduced Fig. 12 and validates the paper's
// qualitative claims: Duet beats FPSoC on every benchmark, sort and BFS
// dominate the speedups, and the BFS baseline degrades with core count
// (the superlinear scaling effect of §V-D).
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig.12 sweep in -short mode")
	}
	sortRow := RunOne(Benchmark{Name: "sort/64", Run: func(v Variant) Result {
		return RunSort(v, SortConfig{N: 64, Rounds: 3, Seed: 8})
	}})
	if sortRow.Err != nil {
		t.Fatal(sortRow.Err)
	}
	if sortRow.SpeedupDuet < 4 {
		t.Errorf("sort/64 Duet speedup %.1fx, want >4x (paper 12.9x)", sortRow.SpeedupDuet)
	}
	if sortRow.SpeedupDuet <= sortRow.SpeedupFPSoC {
		t.Errorf("sort/64: FPSoC (%.1fx) not below Duet (%.1fx)", sortRow.SpeedupFPSoC, sortRow.SpeedupDuet)
	}

	// BFS baseline degradation: CPU runtime should not improve from 4 to
	// 8 cores (lock contention), while Duet keeps scaling.
	bfs4 := RunBFS(VariantCPU, BFSConfig{Cores: 4, Nodes: 384, AvgDegree: 4, Seed: 13})
	bfs8 := RunBFS(VariantCPU, BFSConfig{Cores: 8, Nodes: 384, AvgDegree: 4, Seed: 13})
	if bfs4.Err != nil || bfs8.Err != nil {
		t.Fatalf("bfs baseline: %v %v", bfs4.Err, bfs8.Err)
	}
	t.Logf("bfs CPU baseline: 4 cores %v, 8 cores %v", bfs4.Runtime, bfs8.Runtime)
	if float64(bfs8.Runtime) < 0.9*float64(bfs4.Runtime) {
		t.Errorf("bfs CPU baseline improved substantially from 4 to 8 cores (%v -> %v); paper reports degradation",
			bfs4.Runtime, bfs8.Runtime)
	}
	d4 := RunBFS(VariantDuet, BFSConfig{Cores: 4, Nodes: 384, AvgDegree: 4, Seed: 13})
	d8 := RunBFS(VariantDuet, BFSConfig{Cores: 8, Nodes: 384, AvgDegree: 4, Seed: 13})
	if d4.Err != nil || d8.Err != nil {
		t.Fatalf("bfs duet: %v %v", d4.Err, d8.Err)
	}
	t.Logf("bfs Duet: 4 cores %v, 8 cores %v", d4.Runtime, d8.Runtime)
	if d8.Runtime >= d4.Runtime {
		t.Errorf("bfs Duet did not scale from 4 to 8 cores (%v -> %v)", d4.Runtime, d8.Runtime)
	}
}
