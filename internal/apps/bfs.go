package apps

import (
	"fmt"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/sim"
)

// BFSConfig sizes the breadth-first search benchmark.
type BFSConfig struct {
	Cores     int
	Nodes     int
	AvgDegree int
	Seed      uint64
	// UseMCS switches the baseline's queue lock from the naive
	// test-and-set spinlock to an MCS queue lock (ablation).
	UseMCS bool
}

// refBFS computes reference levels (distance from the root) in Go.
func refBFS(g csr, root int) []uint32 {
	n := len(g.rowptr) - 1
	level := make([]uint32, n)
	for i := range level {
		level[i] = distInf
	}
	level[root] = 0
	frontier := []uint32{uint32(root)}
	for l := uint32(1); len(frontier) > 0; l++ {
		var next []uint32
		for _, u := range frontier {
			for e := g.rowptr[u]; e < g.rowptr[u+1]; e++ {
				v := g.cols[e]
				if level[v] == distInf {
					level[v] = l
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return level
}

// RunBFS executes the BFS benchmark (P{4,8,16}M0, hardware augmentation):
// the baseline's software frontier queues are guarded by an MCS lock with
// barrier-synchronized levels; Duet replaces them with the eFPGA-emulated
// lock-free queues (paper §V-D).
func RunBFS(v Variant, cfg BFSConfig) Result {
	res := Result{Name: fmt.Sprintf("bfs/%d", cfg.Cores), Variant: v}
	style := duet.StyleCPUOnly
	switch v {
	case VariantDuet:
		style = duet.StyleDuet
	case VariantFPSoC:
		style = duet.StyleFPSoC
	}
	regs := []core.SoftRegSpec{{Kind: core.RegFIFOToFPGA, Depth: 16}}
	for i := 0; i < cfg.Cores; i++ {
		regs = append(regs, core.SoftRegSpec{Kind: core.RegFIFOToCPU})
	}
	sysCfg := duet.Config{Cores: cfg.Cores, Style: style, RegSpecs: regs}
	if v == VariantCPU {
		sysCfg.RegSpecs = nil
	} else {
		sysCfg.MemHubs = 0
	}
	sys := duet.New(sysCfg)

	g := genGraph(cfg.Nodes, cfg.AvgDegree, cfg.Seed, true)
	n := cfg.Nodes
	rowptr := sys.Alloc(len(g.rowptr) * 4)
	cols := sys.Alloc(len(g.cols) * 4)
	level := sys.Alloc(n * 4)
	visited := sys.Alloc(n * 8)
	for i, x := range g.rowptr {
		sys.Dom.DRAM.Write32(rowptr+uint64(i*4), x)
	}
	for i, x := range g.cols {
		sys.Dom.DRAM.Write32(cols+uint64(i*4), x)
	}
	for i := 0; i < n; i++ {
		sys.Dom.DRAM.Write32(level+uint64(i*4), distInf)
	}
	// Root: node 0, level 0, pre-visited.
	sys.Dom.DRAM.Write32(level, 0)
	sys.Dom.DRAM.Write64(visited, 1)

	// Baseline-only shared state.
	curQ := sys.Alloc(n * 4)
	nextQ := sys.Alloc(n * 4)
	counters := sys.Alloc(64) // [curHead, curCount, nextTail]
	lockTail := sys.Alloc(64)
	nodesBase := sys.Alloc(cfg.Cores * cpu.MCSNodeBytes)
	barrier := sys.Alloc(cpu.BarrierBytes)
	levelVar := sys.Alloc(64)
	readyFlag := sys.Alloc(64)
	if v == VariantCPU {
		sys.Dom.DRAM.Write32(curQ, 0) // frontier = {root}
		sys.Dom.DRAM.Write64(counters+8, 1)
		sys.Dom.DRAM.Write64(levelVar, 1)
	}

	var efpgaMM2 float64
	if v != VariantCPU {
		bs := accel.NewBFSBitstream(cfg.Cores)
		efpgaMM2 = bs.Report.AreaMM2
		if err := sys.InstallAccelerator(bs); err != nil {
			res.Err = err
			return res
		}
	}

	starts := make([]sim.Time, cfg.Cores)
	ends := make([]sim.Time, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		c := c
		sys.Cores[c].Run("bfs", func(p cpu.Proc) {
			if v != VariantCPU {
				if c == 0 {
					p.MMIOWrite64(duet.MgrRegAddr(core.RegTimeout), 3_000_000)
					// Seed the next frontier with the root, then let the
					// widget promote it at the first level transition.
					p.MMIOWrite64(duet.SoftRegAddr(accel.BFSCmdReg), accel.BFSPackCmd(accel.BFSOpEnq, 0, 0))
					p.Store64(readyFlag, 1)
				} else {
					for p.Load64(readyFlag) == 0 {
						p.Exec(50)
					}
				}
				warm(p, rowptr+uint64(c), 4) // first touch staggers naturally
				starts[c] = p.Now()
				curLevel := uint64(1)
				for {
					p.MMIOWrite64(duet.SoftRegAddr(accel.BFSCmdReg), accel.BFSPackCmd(accel.BFSOpReq, c, 0))
					w := p.MMIORead64(duet.SoftRegAddr(accel.BFSWorkReg0 + c))
					if w == accel.BFSDone {
						break
					}
					if w&accel.BFSLevelMark != 0 {
						// The widget's level counter: frontier k's nodes
						// discover level-k neighbours.
						curLevel = (w >> 32) & 0xffff
						continue
					}
					u := uint32(w)
					s := p.Load32(rowptr + uint64(u)*4)
					e := p.Load32(rowptr + uint64(u)*4 + 4)
					for i := s; i < e; i++ {
						vv := p.Load32(cols + uint64(i)*4)
						p.Exec(2)
						if p.AmoSwap64(visited+uint64(vv)*8, 1) == 0 {
							p.Store32(level+uint64(vv)*4, uint32(curLevel))
							p.MMIOWrite64(duet.SoftRegAddr(accel.BFSCmdReg), accel.BFSPackCmd(accel.BFSOpEnq, c, vv))
						}
					}
					p.MMIOWrite64(duet.SoftRegAddr(accel.BFSCmdReg), accel.BFSPackCmd(accel.BFSOpDone, c, 0))
				}
				ends[c] = p.Now()
				return
			}

			// Processor-only baseline: lock-protected software queues with
			// barrier-synchronized levels.
			node := nodesBase + uint64(c*cpu.MCSNodeBytes)
			lock := func() {
				if cfg.UseMCS {
					cpu.MCSAcquire(p, lockTail, node)
				} else {
					cpu.TASAcquire(p, lockTail)
				}
			}
			unlock := func() {
				if cfg.UseMCS {
					cpu.MCSRelease(p, lockTail, node)
				} else {
					cpu.TASRelease(p, lockTail)
				}
			}
			sense := uint64(0)
			if c == 0 {
				warm(p, rowptr, len(g.rowptr)*4)
				warm(p, cols, len(g.cols)*4)
			}
			starts[c] = p.Now()
			for {
				lvl := p.Load64(levelVar)
				for {
					// Pop a node from the current frontier under the lock.
					lock()
					head := p.Load64(counters)
					count := p.Load64(counters + 8)
					var u uint32
					got := false
					p.Exec(2)
					if head < count {
						p.Store64(counters, head+1)
						got = true
					}
					unlock()
					if !got {
						break
					}
					u = p.Load32(curQ + uint64(head)*4)
					s := p.Load32(rowptr + uint64(u)*4)
					e := p.Load32(rowptr + uint64(u)*4 + 4)
					for i := s; i < e; i++ {
						vv := p.Load32(cols + uint64(i)*4)
						p.Exec(2)
						if p.AmoSwap64(visited+uint64(vv)*8, 1) == 0 {
							p.Store32(level+uint64(vv)*4, uint32(lvl))
							lock()
							tail := p.Load64(counters + 16)
							p.Store32(nextQ+tail*4, vv)
							p.Store64(counters+16, tail+1)
							unlock()
						}
					}
				}
				// Level complete: barrier, swap, barrier.
				sense ^= 1
				cpu.BarrierWait(p, barrier, cfg.Cores, sense)
				if c == 0 {
					tail := p.Load64(counters + 16)
					for i := uint64(0); i < tail; i++ {
						p.Store32(curQ+i*4, p.Load32(nextQ+i*4))
					}
					p.Store64(counters, 0)
					p.Store64(counters+8, tail)
					p.Store64(counters+16, 0)
					p.Store64(levelVar, lvl+1)
				}
				sense ^= 1
				cpu.BarrierWait(p, barrier, cfg.Cores, sense)
				if p.Load64(counters+8) == 0 {
					break
				}
			}
			ends[c] = p.Now()
		})
	}
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res
	}
	res.Runtime = span(starts, ends)

	want := refBFS(g, 0)
	for i := 0; i < n; i++ {
		if got := sys.ReadMem32(level + uint64(i*4)); got != want[i] {
			res.Err = fmt.Errorf("bfs/%d: level[%d]=%d, want %d", cfg.Cores, i, got, want[i])
			return res
		}
	}
	res.AreaMM2 = systemArea(v, cfg.Cores, 0, efpgaMM2)
	return res
}
