package apps

import (
	"fmt"
	"sort"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
)

// SortConfig sizes the sort benchmark.
type SortConfig struct {
	N      int // array size: 32, 64 or 128 (paper Table II)
	Rounds int // arrays sorted per run
	Seed   uint64
}

// RunSort executes the sort benchmark (P1M2, fine-grained): the
// accelerator streams one array in through Memory Hub 0 and the sorted
// result out through Memory Hub 1; the processor-only baseline runs an
// in-memory quicksort over the same arrays.
func RunSort(v Variant, cfg SortConfig) Result {
	res := Result{Name: fmt.Sprintf("sort/%d", cfg.N), Variant: v}
	style := duet.StyleCPUOnly
	switch v {
	case VariantDuet:
		style = duet.StyleDuet
	case VariantFPSoC:
		style = duet.StyleFPSoC
	}
	memHubs := 2
	sysCfg := duet.Config{Cores: 1, Style: style, RegSpecs: []core.SoftRegSpec{
		{Kind: core.RegPlain},      // SortSrcReg
		{Kind: core.RegPlain},      // SortDstReg
		{Kind: core.RegFIFOToFPGA}, // SortCmdReg
		{Kind: core.RegFIFOToCPU},  // SortDoneReg
	}}
	if v == VariantCPU {
		sysCfg.RegSpecs = nil
	} else {
		sysCfg.MemHubs = memHubs
	}
	sys := duet.New(sysCfg)

	rng := newRNG(cfg.Seed)
	inputs := make([][]uint32, cfg.Rounds)
	srcs := make([]uint64, cfg.Rounds)
	dsts := make([]uint64, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		inputs[r] = make([]uint32, cfg.N)
		srcs[r] = sys.Alloc(cfg.N * 4)
		dsts[r] = sys.Alloc(cfg.N * 4)
		for i := range inputs[r] {
			inputs[r][i] = uint32(rng.next())
			sys.Dom.DRAM.Write32(srcs[r]+uint64(i*4), inputs[r][i])
		}
	}

	var efpgaMM2 float64
	if v != VariantCPU {
		bs := accel.NewSortBitstream(cfg.N)
		efpgaMM2 = bs.Report.AreaMM2
		if err := sys.InstallAccelerator(bs); err != nil {
			res.Err = err
			return res
		}
	}

	sys.Cores[0].Run("sort", func(p cpu.Proc) {
		if v != VariantCPU {
			duet.EnableHub(p, 0, false, false, false)
			duet.EnableHub(p, 1, false, false, false)
		}
		// Warm caches before the measured region (paper §V-A).
		for r := 0; r < cfg.Rounds; r++ {
			warm(p, srcs[r], cfg.N*4)
			warm(p, dsts[r], cfg.N*4)
		}
		start := p.Now()
		for r := 0; r < cfg.Rounds; r++ {
			if v == VariantCPU {
				quicksort32(p, srcs[r], 0, cfg.N-1)
				// The baseline sorts in place; copy to dst for a uniform check.
				for i := 0; i < cfg.N; i++ {
					p.Store32(dsts[r]+uint64(i*4), p.Load32(srcs[r]+uint64(i*4)))
				}
			} else {
				p.MMIOWrite64(duet.SoftRegAddr(accel.SortSrcReg), srcs[r])
				p.MMIOWrite64(duet.SoftRegAddr(accel.SortDstReg), dsts[r])
				p.MMIOWrite64(duet.SoftRegAddr(accel.SortCmdReg), uint64(cfg.N))
				if p.MMIORead64(duet.SoftRegAddr(accel.SortDoneReg)) != uint64(cfg.N) {
					return
				}
			}
		}
		res.Runtime = p.Now() - start
	})
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res
	}
	for r := 0; r < cfg.Rounds; r++ {
		want := append([]uint32(nil), inputs[r]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got := sys.ReadMem32(dsts[r] + uint64(i*4)); got != want[i] {
				res.Err = fmt.Errorf("sort/%d round %d: [%d]=%d, want %d", cfg.N, r, i, got, want[i])
				return res
			}
		}
	}
	res.AreaMM2 = systemArea(v, 1, memHubs, efpgaMM2)
	return res
}

// qsortCmpCycles models the C-library qsort comparator convention: an
// indirect call through a function pointer per comparison (register
// save/restore, call, compare body, return, branch) on the in-order core.
const qsortCmpCycles = 24

// quicksort32 is the processor-only baseline: a real in-memory qsort
// (Hoare partition, comparator-call convention) issuing loads, stores and
// compare cycles.
func quicksort32(p cpu.Proc, base uint64, lo, hi int) {
	for lo < hi {
		pivot := p.Load32(base + uint64((lo+hi)/2*4))
		i, j := lo, hi
		for i <= j {
			for {
				vi := p.Load32(base + uint64(i*4))
				p.Exec(qsortCmpCycles)
				if vi >= pivot {
					break
				}
				i++
			}
			for {
				vj := p.Load32(base + uint64(j*4))
				p.Exec(qsortCmpCycles)
				if vj <= pivot {
					break
				}
				j--
			}
			if i <= j {
				vi := p.Load32(base + uint64(i*4))
				vj := p.Load32(base + uint64(j*4))
				p.Store32(base+uint64(i*4), vj)
				p.Store32(base+uint64(j*4), vi)
				p.Exec(2)
				i++
				j--
			}
		}
		// Recurse into the smaller side; iterate on the larger.
		if j-lo < hi-i {
			quicksort32(p, base, lo, j)
			lo = i
		} else {
			quicksort32(p, base, i, hi)
			hi = j
		}
	}
}
