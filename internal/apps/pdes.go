package apps

import (
	"container/heap"
	"fmt"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/sim"
)

// PDESConfig sizes the parallel discrete event simulation benchmark.
//
// The workload is a PHOLD-style synthetic DES (the standard PDES
// benchmark): every processed event spawns one child event a bounded
// delay in the future until the horizon. The paper simulated a digital
// circuit; PHOLD exercises the identical scheduler/synchronization
// behaviour — the property being measured — while keeping the event
// population deterministic regardless of processing order (documented in
// DESIGN.md).
type PDESConfig struct {
	Cores      int
	Population int    // initial event count
	Horizon    uint64 // simulation end time
	Seed       uint64
}

// pdesLookahead is the conservative window (the minimum event delay).
const pdesLookahead = 8

// pdesChildOf derives the (deterministic) child event of ev: the child's
// identity and timestamp depend only on ev, so the total event population
// is independent of processing order.
func pdesChildOf(ev uint64, horizon uint64) (uint64, bool) {
	ts := accel.PDESEventTS(ev)
	id := uint32(ev)
	nid := id*2654435761 + 12345
	jitter := uint64(nid>>8) % pdesLookahead
	nts := ts + pdesLookahead + jitter
	if nts > horizon {
		return 0, false
	}
	return accel.PDESEvent(nts, nid), true
}

// pdesInitial builds the deterministic initial event population.
func pdesInitial(cfg PDESConfig) []uint64 {
	rng := newRNG(cfg.Seed)
	evs := make([]uint64, cfg.Population)
	for i := range evs {
		evs[i] = accel.PDESEvent(uint64(rng.intn(4*pdesLookahead)), uint32(rng.next()))
	}
	return evs
}

// refPDESCount counts the total events processed by a sequential
// reference run (order-independent: the event tree is deterministic).
func refPDESCount(cfg PDESConfig) uint64 {
	h := &u64Heap{}
	for _, e := range pdesInitial(cfg) {
		heap.Push(h, e)
	}
	count := uint64(0)
	for h.Len() > 0 {
		ev := heap.Pop(h).(uint64)
		count++
		if child, ok := pdesChildOf(ev, cfg.Horizon); ok {
			heap.Push(h, child)
		}
	}
	return count
}

// pdesWorkCycles is the per-event computation (state update, RNG, output).
const pdesWorkCycles = 60

// RunPDES executes the PDES benchmark (P{4,8,16}M1, hardware
// augmentation): the baseline shares a real in-memory event heap guarded
// by an MCS lock with a conservative release window; Duet replaces the
// locked heap with the eFPGA-emulated task scheduler (paper §III-B2).
func RunPDES(v Variant, cfg PDESConfig) Result {
	res := Result{Name: fmt.Sprintf("pdes/%d", cfg.Cores), Variant: v}
	style := duet.StyleCPUOnly
	switch v {
	case VariantDuet:
		style = duet.StyleDuet
	case VariantFPSoC:
		style = duet.StyleFPSoC
	}
	regs := []core.SoftRegSpec{{Kind: core.RegFIFOToFPGA, Depth: 16}}
	for i := 0; i < cfg.Cores; i++ {
		regs = append(regs, core.SoftRegSpec{Kind: core.RegFIFOToCPU})
	}
	regs = append(regs, core.SoftRegSpec{Kind: core.RegPlain}) // event-data base
	sysCfg := duet.Config{Cores: cfg.Cores, Style: style, RegSpecs: regs}
	if v == VariantCPU {
		sysCfg.RegSpecs = nil
	} else {
		sysCfg.MemHubs = 1
	}
	sys := duet.New(sysCfg)

	initial := pdesInitial(cfg)
	wantCount := refPDESCount(cfg)

	// Shared state for both variants: per-entity scratch records touched
	// by event processing, and a processed-events counter. The scheduler
	// fetches per-event data records from eventData.
	entityBase := sys.Alloc(256 * 8)
	eventData := sys.Alloc(256 * 16)
	processedCtr := sys.Alloc(64)

	// Baseline-only state.
	heapBase := sys.Alloc(8 + int(wantCount+8)*8)
	lockTail := sys.Alloc(64)
	nodesBase := sys.Alloc(cfg.Cores * cpu.MCSNodeBytes)
	outstBase := sys.Alloc(cfg.Cores * 8) // per-core in-flight timestamp+1 (0 = idle)
	activeCtr := sys.Alloc(64)            // events in heap + in flight

	var efpgaMM2 float64
	if v != VariantCPU {
		bs := accel.NewPDESBitstream(cfg.Cores, pdesLookahead)
		efpgaMM2 = bs.Report.AreaMM2
		if err := sys.InstallAccelerator(bs); err != nil {
			res.Err = err
			return res
		}
	} else {
		// Preload the software event queue and counters.
		sys.Dom.DRAM.Write64(heapBase, uint64(len(initial)))
		sorted := append([]uint64(nil), initial...)
		heapify(sorted)
		for i, e := range sorted {
			sys.Dom.DRAM.Write64(heapBase+8+uint64(i*8), e)
		}
		sys.Dom.DRAM.Write64(activeCtr, uint64(len(initial)))
	}

	process := func(p cpu.Proc, ev uint64) {
		p.Exec(pdesWorkCycles)
		slot := entityBase + uint64(uint32(ev)%256)*8
		cnt := p.Load64(slot)
		p.Store64(slot, cnt+1)
		p.AmoAdd64(processedCtr, 1)
	}

	starts := make([]sim.Time, cfg.Cores)
	ends := make([]sim.Time, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		c := c
		sys.Cores[c].Run("pdes", func(p cpu.Proc) {
			if v != VariantCPU {
				if c == 0 {
					p.MMIOWrite64(duet.MgrRegAddr(core.RegTimeout), 3_000_000)
					duet.EnableHub(p, 0, false, false, false)
					p.MMIOWrite64(duet.SoftRegAddr(accel.PDESDataBaseReg(cfg.Cores)), eventData)
					for _, e := range initial {
						p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpPush, 0, e))
					}
					// Release the other cores via the entity scratch area.
					p.Store64(entityBase+255*8, 1)
				} else {
					for p.Load64(entityBase+255*8) == 0 {
						p.Exec(50)
					}
				}
				starts[c] = p.Now()
				for {
					p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpReq, c, 0))
					ev := p.MMIORead64(duet.SoftRegAddr(accel.PDESEventReg0 + c))
					if ev == accel.PDESIdle {
						break
					}
					process(p, ev)
					if child, ok := pdesChildOf(ev, cfg.Horizon); ok {
						p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpPush, c, child))
					}
					p.MMIOWrite64(duet.SoftRegAddr(accel.PDESCmdReg), accel.PDESPackCmd(accel.PDESOpDone, c, 0))
				}
				ends[c] = p.Now()
				return
			}

			// Processor-only baseline: MCS-locked shared heap with a
			// conservative release window.
			node := nodesBase + uint64(c*cpu.MCSNodeBytes)
			starts[c] = p.Now()
			for {
				if p.Load64(activeCtr) == 0 {
					break
				}
				cpu.MCSAcquire(p, lockTail, node)
				var ev uint64
				got := false
				if HeapLen(p, heapBase) > 0 {
					top := HeapPeek(p, heapBase)
					ts := accel.PDESEventTS(top)
					// Conservative window: the event is safe only within
					// lookahead of every in-flight event.
					safe := true
					for o := 0; o < cfg.Cores; o++ {
						ots := p.Load64(outstBase + uint64(o*8))
						p.Exec(2)
						if ots != 0 && ts > (ots-1)+pdesLookahead {
							safe = false
							break
						}
					}
					if safe {
						ev = HeapPop(p, heapBase)
						p.Store64(outstBase+uint64(c*8), accel.PDESEventTS(ev)+1)
						got = true
					}
				}
				cpu.MCSRelease(p, lockTail, node)
				if !got {
					p.Exec(20)
					continue
				}
				process(p, ev)
				child, ok := pdesChildOf(ev, cfg.Horizon)
				cpu.MCSAcquire(p, lockTail, node)
				if ok {
					HeapPush(p, heapBase, child)
				} else {
					// Tree leaf: one fewer live event.
					p.Store64(activeCtr, p.Load64(activeCtr)-1)
				}
				p.Store64(outstBase+uint64(c*8), 0)
				cpu.MCSRelease(p, lockTail, node)
			}
			ends[c] = p.Now()
		})
	}
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res
	}
	res.Runtime = span(starts, ends)

	if got := sys.ReadMem64(processedCtr); got != wantCount {
		res.Err = fmt.Errorf("pdes/%d: processed %d events, want %d", cfg.Cores, got, wantCount)
		return res
	}
	res.AreaMM2 = systemArea(v, cfg.Cores, 1, efpgaMM2)
	return res
}

// heapify orders a slice as a binary min-heap.
func heapify(vs []uint64) {
	h := u64Heap(nil)
	for _, v := range vs {
		heap.Push(&h, v)
	}
	copy(vs, h)
}
