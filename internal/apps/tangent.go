package apps

import (
	"fmt"
	"math"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
)

// TangentConfig sizes the tangent benchmark.
type TangentConfig struct {
	Calls int
	Seed  uint64
}

// DefaultTangentConfig returns the Fig. 12 configuration.
func DefaultTangentConfig() TangentConfig { return TangentConfig{Calls: 192, Seed: 3} }

// tanSWCycles is the cost of a software (libm-style) tangent on the
// in-order core: argument reduction plus polynomial evaluation.
const tanSWCycles = 110

// RunTangent executes the tangent benchmark (P1M0, fine-grained).
func RunTangent(v Variant, cfg TangentConfig) Result {
	res := Result{Name: "tangent", Variant: v}
	rng := newRNG(cfg.Seed)
	xs := make([]float64, cfg.Calls)
	for i := range xs {
		xs[i] = rng.float()*2.4 - 1.2
	}

	style := duet.StyleCPUOnly
	switch v {
	case VariantDuet:
		style = duet.StyleDuet
	case VariantFPSoC:
		style = duet.StyleFPSoC
	}
	memHubs := 0
	regs := []core.SoftRegSpec{
		{Kind: core.RegFIFOToFPGA}, // TanArgReg
		{Kind: core.RegFIFOToCPU},  // TanResultReg
	}
	sysCfg := duet.Config{Cores: 1, Style: style, RegSpecs: regs}
	if v == VariantCPU {
		sysCfg.RegSpecs = nil
	} else {
		sysCfg.MemHubs = memHubs
	}
	sys := duet.New(sysCfg)

	in := sys.Alloc(cfg.Calls * 8)
	out := sys.Alloc(cfg.Calls * 8)
	for i, x := range xs {
		sys.Dom.DRAM.Write64(in+uint64(i*8), math.Float64bits(x))
	}

	var efpgaMM2 float64
	if v != VariantCPU {
		bs := accel.NewTangentBitstream()
		efpgaMM2 = bs.Report.AreaMM2
		if err := sys.InstallAccelerator(bs); err != nil {
			res.Err = err
			return res
		}
	}

	sys.Cores[0].Run("tangent", func(p cpu.Proc) {
		warm(p, in, cfg.Calls*8)
		warm(p, out, cfg.Calls*8)
		start := p.Now()
		for i := 0; i < cfg.Calls; i++ {
			bits := p.Load64(in + uint64(i*8))
			var y uint64
			if v == VariantCPU {
				p.Exec(tanSWCycles)
				y = math.Float64bits(math.Tan(math.Float64frombits(bits)))
			} else {
				p.MMIOWrite64(duet.SoftRegAddr(accel.TanArgReg), bits)
				y = p.MMIORead64(duet.SoftRegAddr(accel.TanResultReg))
			}
			p.Store64(out+uint64(i*8), y)
		}
		res.Runtime = p.Now() - start
	})
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res
	}

	// Functional check: CPU results must equal libm; accelerator results
	// must equal the PWL model and stay within the 0.3% error bound.
	for i, x := range xs {
		got := math.Float64frombits(sys.ReadMem64(out + uint64(i*8)))
		exact := math.Tan(x)
		if v == VariantCPU {
			if got != exact {
				res.Err = fmt.Errorf("tangent[%d]: sw result %v != %v", i, got, exact)
				return res
			}
			continue
		}
		if got != accel.PWLTan(x) {
			res.Err = fmt.Errorf("tangent[%d]: accel result diverges from PWL model", i)
			return res
		}
		if relErr := math.Abs(got-exact) / math.Max(math.Abs(exact), 1e-6); relErr > 0.003 {
			res.Err = fmt.Errorf("tangent[%d]: PWL error %.4f%% exceeds 0.3%%", i, relErr*100)
			return res
		}
	}
	res.AreaMM2 = systemArea(v, 1, memHubs, efpgaMM2)
	return res
}
