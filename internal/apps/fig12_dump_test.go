package apps

import "testing"

// TestDumpFig12 prints the full-size Fig. 12 sweep (skipped in -short).
func TestDumpFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	rows := Fig12()
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
			continue
		}
		t.Logf("%-10s duet=%6.2fx fpsoc=%6.2fx adpD=%5.2f adpF=%5.2f (cpu=%v)",
			r.Name, r.SpeedupDuet, r.SpeedupFPSoC, r.ADPDuet, r.ADPFPSoC, r.CPURuntime)
	}
	sd, sf, ad, af := Geomeans(rows)
	t.Logf("GEOMEAN: duet=%.2fx fpsoc=%.2fx adpDuet=%.2f adpFPSoC=%.2f (paper: 4.53x / 2.14x / 0.61 / 1.23)", sd, sf, ad, af)
}
