package apps

import (
	"container/heap"
	"fmt"

	"duet"
	"duet/internal/accel"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/sim"
)

// DijkstraConfig sizes the shortest-path benchmark.
type DijkstraConfig struct {
	Nodes     int
	AvgDegree int
	Queries   int // SSSP queries from different sources
	Seed      uint64
}

// DefaultDijkstraConfig returns the Fig. 12 configuration.
func DefaultDijkstraConfig() DijkstraConfig {
	return DijkstraConfig{Nodes: 160, AvgDegree: 4, Queries: 3, Seed: 17}
}

// csr is a directed weighted graph in compressed sparse row form.
type csr struct {
	rowptr  []uint32
	cols    []uint32
	weights []uint32
}

func genGraph(nodes, avgDegree int, seed uint64, undirected bool) csr {
	rng := newRNG(seed)
	adj := make([][][2]uint32, nodes)
	addEdge := func(u, v, w int) {
		adj[u] = append(adj[u], [2]uint32{uint32(v), uint32(w)})
		if undirected {
			adj[v] = append(adj[v], [2]uint32{uint32(u), uint32(w)})
		}
	}
	// Spanning edges keep the graph connected from node 0.
	for v := 1; v < nodes; v++ {
		addEdge(rng.intn(v), v, rng.intn(62)+1)
	}
	extra := nodes * (avgDegree - 1)
	if undirected {
		extra /= 2
	}
	for e := 0; e < extra; e++ {
		u, v := rng.intn(nodes), rng.intn(nodes)
		if u != v {
			addEdge(u, v, rng.intn(62)+1)
		}
	}
	g := csr{rowptr: make([]uint32, nodes+1)}
	for u := 0; u < nodes; u++ {
		g.rowptr[u+1] = g.rowptr[u] + uint32(len(adj[u]))
		for _, e := range adj[u] {
			g.cols = append(g.cols, e[0])
			g.weights = append(g.weights, e[1])
		}
	}
	return g
}

const distInf = uint32(0x3fffffff)

// refDijkstra computes the reference distances in Go.
func refDijkstra(g csr, src int) []uint32 {
	n := len(g.rowptr) - 1
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = distInf
	}
	dist[src] = 0
	pq := &u64Heap{uint64(src)}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(uint64)
		d, u := uint32(it>>32), uint32(it)
		if d > dist[u] {
			continue
		}
		for e := g.rowptr[u]; e < g.rowptr[u+1]; e++ {
			v, w := g.cols[e], g.weights[e]
			if nd := d + w; nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, uint64(nd)<<32|uint64(v))
			}
		}
	}
	return dist
}

type u64Heap []uint64

func (h u64Heap) Len() int            { return len(h) }
func (h u64Heap) Less(i, j int) bool  { return h[i] < h[j] }
func (h u64Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *u64Heap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *u64Heap) Pop() interface{} {
	old := *h
	v := old[len(old)-1]
	*h = old[:len(old)-1]
	return v
}

// RunDijkstra executes the shortest-path benchmark (P1M1, fine-grained):
// a sequence of SSSP queries over a shared graph. The baseline runs the
// whole algorithm in software with a real in-memory binary heap; Duet
// offloads each query to the eFPGA engine, whose soft cache retains graph
// data across consecutive queries ("data locality between consecutive
// calls", §V-D) and whose distance writes stay coherently visible to the
// processor, which consumes each result with a checksum pass.
func RunDijkstra(v Variant, cfg DijkstraConfig) Result {
	res := Result{Name: "dijkstra", Variant: v}
	if cfg.Queries == 0 {
		cfg.Queries = 3
	}
	style := duet.StyleCPUOnly
	switch v {
	case VariantDuet:
		style = duet.StyleDuet
	case VariantFPSoC:
		style = duet.StyleFPSoC
	}
	memHubs := 1
	sysCfg := duet.Config{Cores: 1, Style: style, RegSpecs: []core.SoftRegSpec{
		{Kind: core.RegPlain}, {Kind: core.RegPlain}, {Kind: core.RegPlain}, {Kind: core.RegPlain},
		{Kind: core.RegFIFOToFPGA}, // DijQueryReg
		{Kind: core.RegFIFOToCPU},  // DijDoneReg
	}}
	if v == VariantCPU {
		sysCfg.RegSpecs = nil
	} else {
		sysCfg.MemHubs = memHubs
	}
	sys := duet.New(sysCfg)

	g := genGraph(cfg.Nodes, cfg.AvgDegree, cfg.Seed, false)
	n := cfg.Nodes
	rowptr := sys.Alloc(len(g.rowptr) * 4)
	cols := sys.Alloc(len(g.cols) * 4)
	weights := sys.Alloc(len(g.weights) * 4)
	dist := sys.Alloc(n * 4)
	visited := sys.Alloc(n * 8)
	heapBase := sys.Alloc(8 + 4*n*8)
	sums := sys.Alloc(cfg.Queries * 8)

	for i, x := range g.rowptr {
		sys.Dom.DRAM.Write32(rowptr+uint64(i*4), x)
	}
	for i := range g.cols {
		sys.Dom.DRAM.Write32(cols+uint64(i*4), g.cols[i])
		sys.Dom.DRAM.Write32(weights+uint64(i*4), g.weights[i])
	}

	sources := make([]uint32, cfg.Queries)
	srcRNG := newRNG(cfg.Seed + 99)
	for q := range sources {
		sources[q] = uint32(srcRNG.intn(n))
	}

	var efpgaMM2 float64
	if v != VariantCPU {
		bs := accel.NewDijkstraBitstream(v == VariantDuet)
		efpgaMM2 = bs.Report.AreaMM2
		if err := sys.InstallAccelerator(bs); err != nil {
			res.Err = err
			return res
		}
	}

	sys.Cores[0].Run("dijkstra", func(p cpu.Proc) {
		if v != VariantCPU {
			// fwdInv on: the soft cache must observe invalidations when
			// the processor re-initializes the distance array.
			duet.EnableHub(p, 0, true, false, false)
			p.MMIOWrite64(duet.SoftRegAddr(accel.DijRowPtrReg), rowptr)
			p.MMIOWrite64(duet.SoftRegAddr(accel.DijColsReg), cols)
			p.MMIOWrite64(duet.SoftRegAddr(accel.DijWeightReg), weights)
			p.MMIOWrite64(duet.SoftRegAddr(accel.DijDistReg), dist)
		}
		// Warm caches (paper §V-A).
		warm(p, rowptr, len(g.rowptr)*4)
		warm(p, cols, len(g.cols)*4)
		warm(p, weights, len(g.weights)*4)
		var elapsed int64
		for q := 0; q < cfg.Queries; q++ {
			qStart := p.Now()
			src := sources[q]
			// (Re-)initialize the distance array.
			for i := 0; i < n; i++ {
				p.Store32(dist+uint64(i*4), distInf)
			}
			p.Store32(dist+uint64(src)*4, 0)
			if v == VariantCPU {
				for i := 0; i < n; i++ {
					p.Store64(visited+uint64(i*8), 0)
				}
				p.Store64(heapBase, 0)
				HeapPush(p, heapBase, uint64(src)) // (dist=0)<<32 | src
				for HeapLen(p, heapBase) > 0 {
					item := HeapPop(p, heapBase)
					d, u := uint32(item>>32), uint32(item)
					if p.Load64(visited+uint64(u)*8) != 0 {
						p.Exec(2)
						continue
					}
					p.Store64(visited+uint64(u)*8, 1)
					s := p.Load32(rowptr + uint64(u)*4)
					e := p.Load32(rowptr + uint64(u)*4 + 4)
					for i := s; i < e; i++ {
						vv := p.Load32(cols + uint64(i)*4)
						w := p.Load32(weights + uint64(i)*4)
						p.Exec(2)
						nd := d + w
						dv := p.Load32(dist + uint64(vv)*4)
						p.Exec(2)
						if nd < dv {
							p.Store32(dist+uint64(vv)*4, nd)
							HeapPush(p, heapBase, uint64(nd)<<32|uint64(vv))
						}
					}
				}
			} else {
				p.MMIOWrite64(duet.SoftRegAddr(accel.DijQueryReg), uint64(n)<<32|uint64(src))
				if p.MMIORead64(duet.SoftRegAddr(accel.DijDoneReg)) == ^uint64(0) {
					return
				}
			}
			elapsed += int64(p.Now() - qStart)
			// Consume the result (outside the measured kernel, as the
			// paper measures the algorithm): checksum the distances.
			var sum uint64
			for i := 0; i < n; i++ {
				sum += uint64(p.Load32(dist + uint64(i*4)))
				p.Exec(1)
			}
			p.Store64(sums+uint64(q*8), sum)
		}
		res.Runtime = sim.Time(elapsed)
	})
	if _, err := sys.RunChecked(); err != nil {
		res.Err = err
		return res
	}
	for q := 0; q < cfg.Queries; q++ {
		want := refDijkstra(g, int(sources[q]))
		var wantSum uint64
		for _, d := range want {
			wantSum += uint64(d)
		}
		if got := sys.ReadMem64(sums + uint64(q*8)); got != wantSum {
			res.Err = fmt.Errorf("dijkstra: query %d checksum %d, want %d", q, got, wantSum)
			return res
		}
	}
	// The final query's full distance vector must match exactly.
	want := refDijkstra(g, int(sources[cfg.Queries-1]))
	for i := 0; i < n; i++ {
		if got := sys.ReadMem32(dist + uint64(i*4)); got != want[i] {
			res.Err = fmt.Errorf("dijkstra: dist[%d]=%d, want %d", i, got, want[i])
			return res
		}
	}
	res.AreaMM2 = systemArea(v, 1, memHubs, efpgaMM2)
	return res
}
