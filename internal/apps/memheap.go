package apps

import "duet/internal/cpu"

// MemHeap is a binary min-heap of uint64 keys living in simulated memory,
// used by the processor-only baselines (Dijkstra's priority queue, the
// PDES event queue). Every sift step issues real loads, stores and
// compare cycles through the core, so queue costs emerge from the memory
// system rather than being modelled analytically.
//
// Layout: [len (8B)][data... (8B each)].

// HeapLen reads the heap's element count.
func HeapLen(p cpu.Proc, base uint64) uint64 {
	return p.Load64(base)
}

// HeapPush inserts v.
func HeapPush(p cpu.Proc, base uint64, v uint64) {
	n := p.Load64(base)
	p.Store64(base+8+n*8, v)
	i := n
	for i > 0 {
		parent := (i - 1) / 2
		pv := p.Load64(base + 8 + parent*8)
		p.Exec(2) // compare + branch
		if pv <= v {
			break
		}
		p.Store64(base+8+i*8, pv)
		i = parent
	}
	p.Store64(base+8+i*8, v)
	p.Store64(base, n+1)
}

// HeapPop removes and returns the minimum. The caller must ensure the
// heap is non-empty.
func HeapPop(p cpu.Proc, base uint64) uint64 {
	n := p.Load64(base)
	min := p.Load64(base + 8)
	last := p.Load64(base + 8 + (n-1)*8)
	n--
	p.Store64(base, n)
	if n == 0 {
		return min
	}
	// Sift the last element down from the root.
	i := uint64(0)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		sv := last
		if l < n {
			lv := p.Load64(base + 8 + l*8)
			p.Exec(2)
			if lv < sv {
				small, sv = l, lv
			}
		}
		if r < n {
			rv := p.Load64(base + 8 + r*8)
			p.Exec(2)
			if rv < sv {
				small, sv = r, rv
			}
		}
		if small == i {
			break
		}
		p.Store64(base+8+i*8, sv)
		i = small
	}
	p.Store64(base+8+i*8, last)
	return min
}

// HeapPeek reads the minimum without removing it.
func HeapPeek(p cpu.Proc, base uint64) uint64 {
	return p.Load64(base + 8)
}
