package apps

import "testing"

// TestPDESSpecCorrectness verifies the speculative scheduler extension:
// exact commit counts and bit-exact (order-sensitive) entity records under
// rollback, for both policies across core counts.
func TestPDESSpecCorrectness(t *testing.T) {
	for _, spec := range []bool{false, true} {
		for _, cores := range []int{2, 4, 8} {
			cfg := PDESSpecConfig{Cores: cores, Population: 16, Horizon: 120, MinDelay: 1, Seed: 31, Speculate: spec}
			res, sched := RunPDESSpec(cfg)
			if res.Err != nil {
				t.Fatalf("spec=%v cores=%d: %v", spec, cores, res.Err)
			}
			t.Logf("spec=%-5v cores=%d runtime=%v released=%d specRel=%d squashed=%d committed=%d",
				spec, cores, res.Runtime, sched.Released, sched.SpecReleased, sched.Squashed, sched.Committed)
			if !spec && sched.SpecReleased != 0 {
				t.Fatal("conservative mode released speculatively")
			}
		}
	}
}

// TestPDESSpecWins shows the extension's point: with a tight lookahead the
// speculative scheduler outperforms the conservative one, and it actually
// speculates (and survives squashes).
func TestPDESSpecWins(t *testing.T) {
	cfg := PDESSpecConfig{Cores: 8, Population: 6, Horizon: 1200, MinDelay: 1, Seed: 31}
	cons, _ := RunPDESSpec(cfg)
	cfg.Speculate = true
	spec, sched := RunPDESSpec(cfg)
	if cons.Err != nil || spec.Err != nil {
		t.Fatalf("%v / %v", cons.Err, spec.Err)
	}
	t.Logf("conservative=%v speculative=%v (%.2fx), specReleased=%d squashed=%d",
		cons.Runtime, spec.Runtime, float64(cons.Runtime)/float64(spec.Runtime), sched.SpecReleased, sched.Squashed)
	if sched.SpecReleased == 0 {
		t.Fatal("scheduler never speculated")
	}
	if spec.Runtime >= cons.Runtime {
		t.Errorf("speculation did not pay: %v vs %v", spec.Runtime, cons.Runtime)
	}
}

// TestPDESSpecForcedSquashes shrinks the entity space so speculative
// events collide constantly; rollbacks must still converge to the exact
// sequential result.
func TestPDESSpecForcedSquashes(t *testing.T) {
	cfg := PDESSpecConfig{Cores: 8, Population: 12, Horizon: 300, MinDelay: 1, Entities: 4, Seed: 77, Speculate: true}
	res, sched := RunPDESSpec(cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	t.Logf("forced squashes: specRel=%d squashed=%d committed=%d runtime=%v",
		sched.SpecReleased, sched.Squashed, sched.Committed, res.Runtime)
	if sched.Squashed == 0 {
		t.Error("entity space of 4 produced no squashes (rollback path not exercised)")
	}
}
