package model

import (
	"fmt"

	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
)

// DefaultCPUSlowdown is the calibrated soft-path slowdown: how much
// longer an application takes on the processor than on its fabric
// accelerator. It is the paper's Fig. 12 geometric-mean Duet speedup
// over the processor-only baseline (4.53x across the nine benchmark
// accelerators), inverted into a service-time multiplier.
const DefaultCPUSlowdown = 4.53

// CPUServiceTime is the soft path's analytic occupancy: the App's
// fabric service time stretched by the calibrated slowdown. Shared by
// the CPU backend's dispatch and every placement estimate, so the
// hybrid policy's spill decision prices exactly what dispatch charges.
func CPUServiceTime(app *sched.App, inputSize int, slowdown float64) sim.Time {
	return sim.Time(slowdown * float64(app.Cycles(inputSize)) * float64(app.Period()))
}

// FabricParams describes one analytic fabric worker.
type FabricParams struct {
	Name string
	Cap  efpga.Resources
	// Hubs is the modeled adapter's Memory Hub count (reprogram cost
	// charges one feature-switch round per hub, before and after).
	Hubs int
	// FastPeriod is the fast-domain clock period the hub toggles and
	// programming stream are charged at (params.CPUClockPS on Dolly).
	FastPeriod sim.Time
	// InitFreqMHz is the fabric clock before the first configuration.
	InitFreqMHz float64
}

// Fabric is the calibrated analytic fabric backend: it charges the same
// App service and reprogramming model as the cycle-level adapter path
// (sched.ReprogramCost, shared with sched.CycleBackend term for term)
// without any Dolly machinery behind it. Reprogramming dispatch mirrors
// the cycle path's event shape too — an intermediate settle-end event
// that then schedules the service completion — so even same-instant
// completion ordering matches the adapter chain.
type Fabric struct {
	tl Timeline
	p  FabricParams

	period   sim.Time // current fabric clock period
	resident string
	images   map[string]*efpga.Bitstream

	settle int64
	done   func(*sched.Job, error)

	// One job is in flight per worker, so the pending app rides in a
	// field and both callbacks stay closure-free.
	pendingApp *sched.App
	serveFn    func(any)
	finishFn   func(any)
}

// NewFabric builds an analytic fabric worker.
func NewFabric(tl Timeline, p FabricParams) *Fabric {
	if p.InitFreqMHz <= 0 {
		p.InitFreqMHz = 100
	}
	if p.Cap == (efpga.Resources{}) {
		p.Cap = efpga.DefaultFabricCap
	}
	b := &Fabric{
		tl:     tl,
		p:      p,
		period: sim.Time(1e6/p.InitFreqMHz + 0.5),
		images: make(map[string]*efpga.Bitstream),
	}
	b.serveFn = func(a any) { b.serve(a.(*sched.Job)) }
	b.finishFn = func(a any) { b.done(a.(*sched.Job), nil) }
	return b
}

// Kind reports BackendModel.
func (b *Fabric) Kind() sched.BackendKind { return sched.BackendModel }

// Name is the worker's display name.
func (b *Fabric) Name() string { return b.p.Name }

// Capacity is the modeled reconfigurable budget.
func (b *Fabric) Capacity() efpga.Resources { return b.p.Cap }

// Register adds a bitstream to the modeled image library, with the same
// duplicate-name guard as efpga.Fabric.Register.
func (b *Fabric) Register(bs *efpga.Bitstream) error {
	if ex, ok := b.images[bs.Name]; ok {
		if ex == bs {
			return nil
		}
		return fmt.Errorf("model: bitstream name %q already registered with a different image", bs.Name)
	}
	b.images[bs.Name] = bs
	return nil
}

// Resident reports the modeled installed bitstream name.
func (b *Fabric) Resident() string { return b.resident }

// Scrub discards the modeled resident bitstream (the repair process's
// probationary re-reprogram; see sched.Scrubber) — the next placement
// pays the full reconfiguration cost, like the cycle backend's Scrub.
func (b *Fabric) Scrub() { b.resident = "" }

// Bind attaches the scheduler's settle time and completion callback.
func (b *Fabric) Bind(settleCycles int64, done func(*sched.Job, error)) {
	b.settle = settleCycles
	b.done = done
}

// ServiceTime is the catalog occupancy at the app's Fmax.
func (b *Fabric) ServiceTime(app *sched.App, inputSize int) sim.Time {
	return sim.Time(app.Cycles(inputSize)) * app.Period()
}

// ReconfigCost is the analytic reprogram charge (zero when resident).
func (b *Fabric) ReconfigCost(app *sched.App) sim.Time {
	if b.resident == app.BS.Name {
		return 0
	}
	return sched.ReprogramCost(app, b.p.Hubs, b.p.FastPeriod, b.settle, b.settlePeriod(app))
}

// settlePeriod is the fabric period the configuration settle runs at:
// the app's once its Fmax takes over, the current period otherwise.
func (b *Fabric) settlePeriod(app *sched.App) sim.Time {
	if app.BS.FmaxMHz > 0 {
		return app.Period()
	}
	return b.period
}

// Dispatch occupies the worker with job j: a reprogram charge when the
// app is not resident, then the service time.
func (b *Fabric) Dispatch(j *sched.Job, app *sched.App) {
	if b.resident == j.App {
		b.pendingApp = app
		b.serve(j)
		return
	}
	if !app.BS.Res.Fits(b.p.Cap) {
		b.done(j, fmt.Errorf("sched: bitstream %q exceeds fabric %q capacity", j.App, b.p.Name))
		return
	}
	if _, ok := b.images[j.App]; !ok {
		b.done(j, fmt.Errorf("sched: bitstream %q not registered on fabric %q", j.App, b.p.Name))
		return
	}
	j.Reprogrammed = true
	cost := sched.ReprogramCost(app, b.p.Hubs, b.p.FastPeriod, b.settle, b.settlePeriod(app))
	b.resident = j.App
	if app.BS.FmaxMHz > 0 {
		b.period = app.Period()
	}
	b.pendingApp = app
	b.tl.AfterArg(cost, b.serveFn, j)
}

// serve charges the service time at the current fabric clock.
func (b *Fabric) serve(j *sched.Job) {
	app := b.pendingApp
	if app.BS.FmaxMHz > 0 {
		b.period = app.Period()
	}
	b.tl.AfterArg(sim.Time(app.Cycles(j.InputSize))*b.period, b.finishFn, j)
}

// CPU is the processor soft-path fallback backend: jobs execute as
// software at a calibrated slowdown over their fabric service time, with
// no bitstream, no capacity bound and no reconfiguration. The Hybrid
// placement policy spills onto CPU workers when every fitting fabric is
// busy and the soft path's modeled completion beats waiting.
type CPU struct {
	tl       Timeline
	name     string
	slowdown float64

	done     func(*sched.Job, error)
	finishFn func(any)
}

// NewCPU builds a soft-path worker (slowdown <= 0 selects the
// calibrated default).
func NewCPU(tl Timeline, name string, slowdown float64) *CPU {
	if slowdown <= 0 {
		slowdown = DefaultCPUSlowdown
	}
	b := &CPU{tl: tl, name: name, slowdown: slowdown}
	b.finishFn = func(a any) { b.done(a.(*sched.Job), nil) }
	return b
}

// Kind reports BackendCPU.
func (b *CPU) Kind() sched.BackendKind { return sched.BackendCPU }

// Name is the worker's display name.
func (b *CPU) Name() string { return b.name }

// Capacity is unbounded: any bitstream's software fallback "fits".
func (b *CPU) Capacity() efpga.Resources { return sched.UnboundedResources }

// Register accepts every app (the soft path needs no image).
func (b *CPU) Register(*efpga.Bitstream) error { return nil }

// Resident reports no configuration state.
func (b *CPU) Resident() string { return "" }

// Bind attaches the completion callback (the settle time is a fabric
// concept; the soft path ignores it).
func (b *CPU) Bind(_ int64, done func(*sched.Job, error)) { b.done = done }

// ServiceTime is the calibrated soft-path occupancy.
func (b *CPU) ServiceTime(app *sched.App, inputSize int) sim.Time {
	return CPUServiceTime(app, inputSize, b.slowdown)
}

// ReconfigCost is zero: there is nothing to configure.
func (b *CPU) ReconfigCost(*sched.App) sim.Time { return 0 }

// Dispatch occupies the worker for the slowed-down service time.
func (b *CPU) Dispatch(j *sched.Job, app *sched.App) {
	b.tl.AfterArg(CPUServiceTime(app, j.InputSize, b.slowdown), b.finishFn, j)
}
