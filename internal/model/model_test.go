package model_test

import (
	"reflect"
	"testing"

	"duet"
	"duet/internal/efpga"
	"duet/internal/model"
	"duet/internal/sched"
	"duet/internal/sim"
)

type stubAccel struct{}

func (stubAccel) Start(*efpga.Env) {}

func mkBitstream(name string, res efpga.Resources, fmax float64, imageLen int) *efpga.Bitstream {
	bs := &efpga.Bitstream{
		Name: name, Res: res, FmaxMHz: fmax,
		Image:   make([]byte, imageLen),
		Factory: func() efpga.Accelerator { return stubAccel{} },
	}
	bs.CRC = bs.Checksum()
	return bs
}

// TestReprogramCostMatchesCycleChain pins the shared analytic formula to
// the cycle backend's actual event chain: a job that forces a reprogram
// on a real adapter must finish exactly ReprogramCost + service after
// dispatch.
func TestReprogramCostMatchesCycleChain(t *testing.T) {
	for _, hubs := range []int{1, 2, 4} {
		sys := duet.New(duet.Config{Cores: 1, MemHubs: hubs, EFPGAs: 1, Style: duet.StyleDuet})
		sch := sys.Scheduler(sched.Config{Policy: sched.FIFO})
		bs := mkBitstream("app", efpga.Resources{LUTs: 100}, 250, 640)
		app := sched.App{BS: bs, FixedCycles: 1000, CyclesPerItem: 2}
		if err := sch.RegisterApp(app); err != nil {
			t.Fatal(err)
		}
		j := &sched.Job{App: "app", InputSize: 33}
		sch.Submit(j)
		sys.Run()
		if !j.Reprogrammed || j.Err != nil {
			t.Fatalf("hubs=%d: job not served via reprogram: %+v", hubs, j)
		}
		app.Finalize()
		want := sched.ReprogramCost(&app, hubs, 1000, sch.Config().SettleCycles, app.Period()) +
			sim.Time(app.Cycles(33))*app.Period()
		if got := j.Service(); got != want {
			t.Fatalf("hubs=%d: cycle chain served in %v, analytic formula says %v", hubs, got, want)
		}
	}
}

// catalogs must price identically on every backend: the model fabric's
// ServiceTime and ReconfigCost must equal the cycle backend's.
func TestBackendEstimatesAgree(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 2, EFPGAs: 1, Style: duet.StyleDuet})
	cyc := sched.NewCycleBackend(sys.Eng, sys.Adapters[0], sys.Fabrics[0])
	mdl := model.NewFabric(&model.Events{}, model.FabricParams{
		Name: "efpga0", Hubs: 2, FastPeriod: 1000, InitFreqMHz: 100,
	})
	cyc.Bind(1024, nil)
	mdl.Bind(1024, nil)
	bs := mkBitstream("app", efpga.Resources{LUTs: 100}, 330, 1024)
	app := sched.App{BS: bs, FixedCycles: 500, CyclesPerItem: 3}
	app.Finalize()
	if got, want := mdl.ServiceTime(&app, 77), cyc.ServiceTime(&app, 77); got != want {
		t.Fatalf("service estimates diverge: model %v, cycle %v", got, want)
	}
	if got, want := mdl.ReconfigCost(&app), cyc.ReconfigCost(&app); got != want {
		t.Fatalf("reconfig estimates diverge: model %v, cycle %v", got, want)
	}
}

// TestCPUBackendServes: a scheduler over one CPU soft-path worker runs
// every job at the calibrated slowdown, with no reconfigurations.
func TestCPUBackendServes(t *testing.T) {
	ev := &model.Events{}
	cpu := model.NewCPU(ev, "cpu0", 4)
	sch := sched.New(ev, []sched.Backend{cpu}, sched.Config{Policy: sched.FIFO})
	bs := mkBitstream("app", efpga.Resources{LUTs: 100}, 100, 64) // 100 MHz: 10ns cycle
	if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 100, CyclesPerItem: 0}); err != nil {
		t.Fatal(err)
	}
	j := &sched.Job{App: "app"}
	sch.Submit(j)
	ev.Drain()
	// 100 cycles * 10ns * 4x slowdown = 4us.
	if want := sim.Time(4 * sim.US); j.Service() != want {
		t.Fatalf("soft-path service = %v, want %v", j.Service(), want)
	}
	st := sch.Stats()
	if st.Completed != 1 || st.Reconfigs != 0 || j.Reprogrammed {
		t.Fatalf("soft path accounted wrong: %+v job %+v", st, j)
	}
	if st.Fabrics[0].Name != "cpu0" {
		t.Fatalf("worker name %q", st.Fabrics[0].Name)
	}
}

// TestHybridSpill: under the Hybrid policy, a saturating burst spills
// onto the CPU worker once waiting for the busy fabric is modeled to
// lose, while a light load stays entirely on the fabric.
func TestHybridSpill(t *testing.T) {
	build := func() (*model.Events, *sched.Scheduler) {
		ev := &model.Events{}
		fab := model.NewFabric(ev, model.FabricParams{Name: "efpga0", Hubs: 1, FastPeriod: 1000, InitFreqMHz: 100})
		cpu := model.NewCPU(ev, "cpu0", 4)
		sch := sched.New(ev, []sched.Backend{fab, cpu}, sched.Config{Policy: sched.Hybrid, QueueCap: 64})
		bs := mkBitstream("app", efpga.Resources{LUTs: 100}, 100, 64)
		if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 100_000, CyclesPerItem: 0}); err != nil {
			t.Fatal(err)
		}
		return ev, sch
	}

	// Light load: one job at a time; the fabric takes everything.
	ev, sch := build()
	for i := 0; i < 3; i++ {
		sch.Submit(&sched.Job{App: "app"})
		ev.Drain()
	}
	st := sch.Stats()
	if st.Fabrics[0].Jobs != 3 || st.Fabrics[1].Jobs != 0 {
		t.Fatalf("light load spilled: fabric=%d cpu=%d", st.Fabrics[0].Jobs, st.Fabrics[1].Jobs)
	}

	// Burst: 8 jobs at once. The fabric serves the head; with 4x
	// slowdown a CPU run beats waiting behind several queued jobs, so
	// the tail spills.
	ev, sch = build()
	for i := 0; i < 8; i++ {
		sch.Submit(&sched.Job{App: "app"})
	}
	ev.Drain()
	st = sch.Stats()
	if st.Completed != 8 {
		t.Fatalf("completed %d of 8", st.Completed)
	}
	if st.Fabrics[1].Jobs == 0 {
		t.Fatal("saturating burst never spilled to the CPU soft path")
	}
	if st.Fabrics[0].Jobs == 0 {
		t.Fatal("hybrid abandoned the fabric entirely")
	}
}

// TestHybridOversizedBitstreamTakesSoftPath: a bitstream no fabric can
// hold is admitted and served by the CPU worker — the software fallback
// the spill policy guarantees.
func TestHybridOversizedBitstreamTakesSoftPath(t *testing.T) {
	ev := &model.Events{}
	fab := model.NewFabric(ev, model.FabricParams{
		Name: "efpga0", Cap: efpga.Resources{LUTs: 10, FFs: 10, BRAMKb: 1, DSPs: 1},
		Hubs: 1, FastPeriod: 1000, InitFreqMHz: 100,
	})
	cpu := model.NewCPU(ev, "cpu0", 0)
	sch := sched.New(ev, []sched.Backend{fab, cpu}, sched.Config{Policy: sched.Hybrid})
	bs := mkBitstream("huge", efpga.Resources{LUTs: 1 << 30}, 100, 64)
	if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 100, CyclesPerItem: 1}); err != nil {
		t.Fatal(err)
	}
	j := &sched.Job{App: "huge", InputSize: 16}
	if !sch.Submit(j) {
		t.Fatal("oversized-for-fabric job rejected despite the soft path")
	}
	ev.Drain()
	if j.Err != nil || j.Finish == 0 {
		t.Fatalf("soft-path fallback failed: %+v", j)
	}
	st := sch.Stats()
	if st.Fabrics[1].Jobs != 1 || st.Fabrics[0].Jobs != 0 {
		t.Fatalf("oversized job placed wrong: %+v", st.Fabrics)
	}
}

// TestMixedFidelityScheduler: one scheduler over a cycle-level worker
// AND an analytic model worker on the same engine — the decoupling the
// Backend interface buys. Two identical jobs submitted back to back land
// one per worker and finish at the same instant, since both backends
// charge the same reprogram + service model.
func TestMixedFidelityScheduler(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, EFPGAs: 1, Style: duet.StyleDuet})
	backends := append(
		sched.CycleBackends(sys.Eng, sys.Adapters, sys.Fabrics),
		model.NewFabric(sys.Eng, model.FabricParams{Name: "model0", Hubs: 1, FastPeriod: 1000, InitFreqMHz: 100}),
	)
	sch := sched.New(sys.Eng, backends, sched.Config{Policy: sched.FIFO})
	bs := mkBitstream("app", efpga.Resources{LUTs: 100}, 200, 320)
	if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 5000, CyclesPerItem: 1}); err != nil {
		t.Fatal(err)
	}
	j1, j2 := &sched.Job{App: "app", InputSize: 64}, &sched.Job{App: "app", InputSize: 64}
	sch.Submit(j1)
	sch.Submit(j2)
	sys.Run()
	st := sch.Stats()
	if st.Completed != 2 || st.Fabrics[0].Jobs != 1 || st.Fabrics[1].Jobs != 1 {
		t.Fatalf("mixed pool placement off: %+v", st.Fabrics)
	}
	if j1.Finish != j2.Finish || j1.Service() != j2.Service() {
		t.Fatalf("cycle worker served in %v, model worker in %v — cost models diverge",
			j1.Service(), j2.Service())
	}
}

// TestEventsOrdering: the analytic timeline must run same-instant
// callbacks in scheduling order and interleave RunUntil boundaries the
// way the engine orders pre-scheduled arrivals against completions.
func TestEventsOrdering(t *testing.T) {
	ev := &model.Events{}
	var got []int
	rec := func(a any) { got = append(got, a.(int)) }
	ev.AfterArg(10, rec, 1)
	ev.AfterArg(5, rec, 2)
	ev.AfterArg(10, rec, 3) // same instant as 1: scheduling order
	ev.AfterArg(7, rec, 4)
	ev.RunUntil(10) // strictly-before: 2 (t=5), 4 (t=7) only
	if ev.Now() != 10 {
		t.Fatalf("RunUntil left now=%v", ev.Now())
	}
	if !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("RunUntil ran %v", got)
	}
	ev.Drain()
	if !reflect.DeepEqual(got, []int{2, 4, 1, 3}) {
		t.Fatalf("Drain order %v", got)
	}
	if ev.Now() != 10 {
		t.Fatalf("Drain left now=%v", ev.Now())
	}
}
