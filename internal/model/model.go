// Package model implements calibrated analytic execution backends for
// the accelerator-as-a-service scheduler — the fast path of the
// capacity-planning story. A model backend charges exactly the same App
// service and reprogramming model as the cycle-level adapter path
// (sched.ReprogramCost is shared, term for term, with the adapter's
// quiesce → program → resume → settle event chain) but with no Dolly
// instance behind it: no NoC, no coherence domain, no cores, no MMIO.
//
// Crucially the scheduler itself is NOT reimplemented: a model replica
// runs the real sched.Scheduler — the same admission queue, policies and
// statistics code — over model backends, driven by a tiny analytic
// event timeline (Events) instead of the full discrete-event engine.
// Semantics therefore match the cycle-level path by construction; what
// changes is the cost per job, which drops from the engine's
// calendar-and-heap machinery to a handful of arithmetic operations.
// That is what makes 100M-job streaming-stats studies practical (see
// PERF.md for measured model-vs-cycle speedups).
//
// The package also provides the CPU soft-path fallback backend: jobs
// execute as software at a calibrated slowdown, with no bitstream and no
// reconfiguration cost. The sched.Hybrid policy spills onto CPU workers
// when every fitting fabric is busy and the modeled soft-path completion
// beats waiting — the dynamic hardware/software partitioning scenario.
package model

import (
	"fmt"

	"duet/internal/cluster"
	"duet/internal/efpga"
	"duet/internal/params"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/telemetry"
)

// Timeline is the scheduling surface a model backend needs: current
// time plus deferred-callback scheduling. Both the package's analytic
// Events timeline and the full *sim.Engine satisfy it, so model
// backends can ride in an engine-backed scheduler (mixed-fidelity
// pools, the hybrid CPU spill) or in a pure analytic replica.
type Timeline interface {
	Now() sim.Time
	AfterArg(d sim.Time, fn func(any), arg any)
}

// Events is the analytic event timeline: an unsorted slice of pending
// callbacks popped by linear min-scan over (time, scheduling order). It
// is the engine-free substrate model replicas run the real scheduler on.
// The pending set never outgrows the worker count (one completion chain
// per busy worker), so a scan of a handful of entries beats any heap —
// scheduling is a bare append and popping is a few comparisons, with
// none of the full engine's calendar bookkeeping.
type Events struct {
	now sim.Time
	seq uint64
	h   []ev
}

type ev struct {
	at  sim.Time
	seq uint64
	fn  func(any)
	arg any
}

// Now reports the current simulated time.
func (e *Events) Now() sim.Time { return e.now }

// AfterArg schedules fn(arg) d after the current instant. Same-instant
// callbacks run in scheduling order, matching the engine's bucket
// semantics.
func (e *Events) AfterArg(d sim.Time, fn func(any), arg any) {
	e.h = append(e.h, ev{at: e.now + d, seq: e.seq, fn: fn, arg: arg})
	e.seq++
}

// next reports the index of the earliest pending callback: smallest
// time, scheduling order breaking ties.
func (e *Events) next() int {
	m := 0
	for i := 1; i < len(e.h); i++ {
		if e.h[i].at < e.h[m].at || (e.h[i].at == e.h[m].at && e.h[i].seq < e.h[m].seq) {
			m = i
		}
	}
	return m
}

// popAt removes and runs pending callback m (an index from next).
func (e *Events) popAt(m int) {
	top := e.h[m]
	n := len(e.h) - 1
	e.h[m] = e.h[n]
	e.h[n] = ev{} // drop the stale fn/arg references
	e.h = e.h[:n]
	e.now = top.at
	top.fn(top.arg)
}

// RunUntil runs every callback strictly before t, then advances the
// timeline to t. Events at exactly t stay pending: a submission at t is
// processed before completions at t, matching the engine's ordering of
// pre-scheduled arrivals against run-time completions.
func (e *Events) RunUntil(t sim.Time) {
	for len(e.h) > 0 {
		m := e.next()
		if e.h[m].at >= t {
			break
		}
		e.popAt(m)
	}
	if t > e.now {
		e.now = t
	}
}

// Drain runs every pending callback to exhaustion.
func (e *Events) Drain() {
	for len(e.h) > 0 {
		e.popAt(e.next())
	}
}

// Config parameterizes one analytic serve replica — the model-backend
// mirror of a cycle-level Dolly serve system.
type Config struct {
	EFPGAs   int // analytic fabric workers (default 1)
	SoftCPUs int // CPU soft-path workers appended after the fabrics
	MemHubs  int // memory hubs per (modeled) adapter, for reprogram cost

	Policy       sched.Policy
	QueueCap     int
	SettleCycles int64
	Stats        sched.StatsMode

	// FPGAFreqMHz is the initial fabric clock (defaults to 100 MHz,
	// matching duet.Config); each app's Fmax takes over on first
	// configuration, exactly as on the cycle path.
	FPGAFreqMHz float64
	// FabricCap is the per-fabric capacity (defaults to
	// efpga.DefaultFabricCap, matching duet.Config).
	FabricCap efpga.Resources
	// CPUSlowdown scales App service times on the soft path (defaults to
	// DefaultCPUSlowdown).
	CPUSlowdown float64

	// DiscardSamples skips Play's exact-mode per-job harvest (Sojourns
	// and the wait/service sums) — for single-replica callers that read
	// Stats only. Cluster shards must leave it false: Merge pools the
	// raw samples for exact quantiles.
	DiscardSamples bool

	// Wrap, when set, decorates each backend before the scheduler sees
	// it — the fault-injection seam (internal/faults plugs in here). It
	// receives the replica's timeline, the backend's worker index, and
	// the undecorated backend.
	Wrap func(tl Timeline, worker int, be sched.Backend) sched.Backend
	// Faults is the scheduler-side fault configuration (retry budget,
	// deadline enforcement, downtime windows). The zero value changes
	// nothing.
	Faults sched.FaultConfig
}

// Replica is an analytic serve shard: the real sched.Scheduler over
// model backends on an Events timeline. It implements cluster.Replica,
// so model shards drop into any cluster — alone, or mixed with
// cycle-level shards in a heterogeneous farm.
type Replica struct {
	ev      *Events
	sch     *sched.Scheduler
	discard bool
	rec     *telemetry.Recorder
}

// NewReplica builds an analytic replica with cfg's worker pool.
func NewReplica(cfg Config) *Replica {
	if cfg.EFPGAs <= 0 {
		cfg.EFPGAs = 1
	}
	if cfg.FPGAFreqMHz == 0 {
		cfg.FPGAFreqMHz = 100
	}
	if cfg.FabricCap == (efpga.Resources{}) {
		cfg.FabricCap = efpga.DefaultFabricCap
	}
	if cfg.CPUSlowdown <= 0 {
		cfg.CPUSlowdown = DefaultCPUSlowdown
	}
	ev := &Events{}
	var backends []sched.Backend
	for i := 0; i < cfg.EFPGAs; i++ {
		backends = append(backends, NewFabric(ev, FabricParams{
			Name:        fmt.Sprintf("efpga%d", i),
			Cap:         cfg.FabricCap,
			Hubs:        cfg.MemHubs,
			FastPeriod:  params.CPUClockPS,
			InitFreqMHz: cfg.FPGAFreqMHz,
		}))
	}
	for i := 0; i < cfg.SoftCPUs; i++ {
		backends = append(backends, NewCPU(ev, fmt.Sprintf("cpu%d", i), cfg.CPUSlowdown))
	}
	if cfg.Wrap != nil {
		for i, be := range backends {
			backends[i] = cfg.Wrap(ev, i, be)
		}
	}
	sch := sched.New(ev, backends, sched.Config{
		Policy: cfg.Policy, QueueCap: cfg.QueueCap,
		SettleCycles: cfg.SettleCycles, Stats: cfg.Stats,
		Faults: cfg.Faults,
	})
	return &Replica{ev: ev, sch: sch, discard: cfg.DiscardSamples}
}

// Scheduler exposes the replica's scheduler (catalog registration,
// direct submission, stats).
func (r *Replica) Scheduler() *sched.Scheduler { return r.sch }

// SetRecorder attaches a windowed flight recorder: Play installs it as
// the scheduler's observer before any submission and hands it back in
// ShardResult.Windows — the same wiring as cluster.EngineReplica.Rec,
// so the cycle and model paths instrument identically.
func (r *Replica) SetRecorder(rec *telemetry.Recorder) { r.rec = rec }

// Events exposes the replica's analytic timeline, for live feeders (the
// daemon's clock bridge) that advance simulated time incrementally
// instead of playing a pre-materialized stream.
func (r *Replica) Events() *Events { return r.ev }

// RegisterApp adds an application to the replica's catalog.
func (r *Replica) RegisterApp(app sched.App) error { return r.sch.RegisterApp(app) }

// Predict exposes the catalog model for front-end routing.
func (r *Replica) Predict(app string, inputSize int) (sim.Time, bool) {
	return r.sch.Predict(app, inputSize)
}

// Workers reports the replica's worker count.
func (r *Replica) Workers() int { return r.sch.Workers() }

// Play runs the shard over its assigned arrivals (the stream indices in
// mine; nil plays the whole stream). Unlike an engine replica it never
// materializes arrival events: the timeline advances to each assigned
// arrival, running due completions on the way, and submits the stream's
// own Job record in place — no per-job allocation at all.
func (r *Replica) Play(stream []cluster.Arrival, mine []int32) (cluster.ShardResult, error) {
	var sr cluster.ShardResult
	r.beginHarvest(&sr)
	play := func(a *cluster.Arrival) {
		r.ev.RunUntil(a.At)
		r.sch.Submit(&a.Job)
	}
	if mine == nil {
		for i := range stream {
			play(&stream[i])
		}
	} else {
		for _, i := range mine {
			play(&stream[i])
		}
	}
	r.ev.Drain()
	r.endHarvest(&sr)
	return sr, nil
}

// PlayStream is Play's pull-based variant: the shard consumes its
// assigned arrivals from the feed as they are produced — same RunUntil
// fusion, same results — with no materialized stream behind it. In
// streaming-stats mode retired job records are recycled through a
// freelist (the scheduler keeps no reference after OnResult fires), so
// a billion-job run allocates O(in-flight) job records, not O(jobs).
func (r *Replica) PlayStream(feed cluster.ArrivalFeed) (cluster.ShardResult, error) {
	var sr cluster.ShardResult
	r.beginHarvest(&sr)
	streaming := r.sch.Config().Stats == sched.StatsStreaming
	var free []*sched.Job
	if streaming {
		r.sch.OnResult = func(j *sched.Job) { free = append(free, j) }
	}
	var a cluster.Arrival
	for feed.Next(&a) {
		r.ev.RunUntil(a.At)
		var j *sched.Job
		if n := len(free); n > 0 {
			j, free = free[n-1], free[:n-1]
		} else {
			j = new(sched.Job)
		}
		*j = a.Job
		if !r.sch.Submit(j) && streaming && j.Err == nil {
			// Queue-full bounce: never admitted, never retired, no
			// reference kept — recycle directly. Refusals with an error
			// were retired and already recycled via OnResult.
			free = append(free, j)
		}
	}
	r.ev.Drain()
	r.endHarvest(&sr)
	return sr, nil
}

// beginHarvest wires the flight recorder and, in exact mode, the
// per-job OnResult drain hook into sr before any submission.
func (r *Replica) beginHarvest(sr *cluster.ShardResult) {
	if r.rec != nil {
		r.sch.SetObserver(r.rec)
		sr.Windows = r.rec
	}
	if !r.discard && r.sch.Config().Stats != sched.StatsStreaming {
		r.sch.OnResult = func(j *sched.Job) {
			if j.Err != nil {
				return
			}
			sr.Sojourns = append(sr.Sojourns, j.Sojourn())
			sr.WaitSum += j.Wait()
			sr.ServiceSum += j.Service()
		}
	}
}

// endHarvest reads the scheduler's aggregates back after the run.
func (r *Replica) endHarvest(sr *cluster.ShardResult) {
	sr.Stats = r.sch.Stats()
	if d, waits, services, ok := r.sch.SojournDigest(); ok {
		sr.Digest = d
		sr.WaitSum, sr.ServiceSum = waits, services
	}
}
