// Package cache provides the set-associative tag/data array shared by
// every cache model in the repository (private L2, L3 shards, Proxy Cache,
// soft caches). It is purely structural: replacement, lookup and victim
// selection, with no timing and no protocol.
package cache

import (
	"fmt"

	"duet/internal/mem"
)

// Way holds one cache line and its metadata. The State field is owned by
// the protocol layer (coherence package); the array only distinguishes
// valid from invalid.
type Way struct {
	Valid bool
	Tag   uint64 // full line address (tag+index combined, for simplicity)
	Data  mem.Line
	State int // protocol-defined
	Dirty bool
	VPN   uint64 // virtual page number (Proxy Cache reverse mapping); 0 if unused
	lru   uint64 // last-touch stamp
}

// Array is a set-associative array of cache lines indexed by physical line
// address. Line storage is one flat slice, allocated on first access: a
// constructed-but-untouched array (the common case for the serve/cluster
// studies, which build full Dolly systems whose caches carry no traffic)
// costs nothing, and a live one is a single contiguous block.
type Array struct {
	sets  int
	ways  int
	lines []Way // flat sets*ways storage; nil until first access
	stamp uint64
	// Hits/Misses count Lookup outcomes for statistics.
	Hits, Misses uint64
}

// NewArray builds an array with the given total capacity in bytes and
// associativity. Capacity must be a multiple of ways*LineBytes and the set
// count must be a power of two.
func NewArray(capacityBytes, ways int) *Array {
	if capacityBytes <= 0 || ways <= 0 {
		panic("cache: bad geometry")
	}
	linesTotal := capacityBytes / mem.LineBytes
	sets := linesTotal / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", sets))
	}
	return &Array{sets: sets, ways: ways}
}

// Sets reports the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways reports the associativity.
func (a *Array) Ways() int { return a.ways }

func (a *Array) setOf(lineAddr uint64) []Way {
	if a.lines == nil {
		a.lines = make([]Way, a.sets*a.ways)
	}
	idx := int((lineAddr/mem.LineBytes)%uint64(a.sets)) * a.ways
	return a.lines[idx : idx+a.ways]
}

// Lookup finds the way holding lineAddr, touching LRU state on hit. It
// returns nil on miss.
func (a *Array) Lookup(lineAddr uint64) *Way {
	set := a.setOf(lineAddr)
	for i := range set {
		if set[i].Valid && set[i].Tag == lineAddr {
			a.stamp++
			set[i].lru = a.stamp
			a.Hits++
			return &set[i]
		}
	}
	a.Misses++
	return nil
}

// Peek finds the way holding lineAddr without touching LRU or counters.
func (a *Array) Peek(lineAddr uint64) *Way {
	set := a.setOf(lineAddr)
	for i := range set {
		if set[i].Valid && set[i].Tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// Set returns the ways of the set lineAddr maps to. Protocol layers use it
// to pick victims subject to their own constraints (e.g. skipping lines
// with in-flight transactions).
func (a *Array) Set(lineAddr uint64) []Way {
	return a.setOf(lineAddr)
}

// Victim returns the way to fill for lineAddr: an invalid way if one
// exists, otherwise the least-recently-used way (which the caller must
// evict first). The returned way is not modified.
func (a *Array) Victim(lineAddr uint64) *Way {
	set := a.setOf(lineAddr)
	var lru *Way
	for i := range set {
		if !set[i].Valid {
			return &set[i]
		}
		if lru == nil || set[i].lru < lru.lru {
			lru = &set[i]
		}
	}
	return lru
}

// Less reports whether w was touched less recently than o (i.e. is the
// better LRU victim).
func (w *Way) Less(o *Way) bool { return w.lru < o.lru }

// Install fills a way with the given line, marking it valid and most
// recently used, and returns it. The caller must have evicted any valid
// victim beforehand (Install panics on a valid way with a different tag).
func (a *Array) Install(w *Way, lineAddr uint64, data mem.Line, state int) *Way {
	if w.Valid && w.Tag != lineAddr {
		panic("cache: installing over a live line; evict first")
	}
	a.stamp++
	*w = Way{Valid: true, Tag: lineAddr, Data: data, State: state, lru: a.stamp}
	return w
}

// Invalidate clears the way.
func (a *Array) Invalidate(w *Way) { *w = Way{} }

// ForEach calls fn for every valid line.
func (a *Array) ForEach(fn func(*Way)) {
	for i := range a.lines {
		if a.lines[i].Valid {
			fn(&a.lines[i])
		}
	}
}

// CountValid reports the number of valid lines.
func (a *Array) CountValid() int {
	n := 0
	a.ForEach(func(*Way) { n++ })
	return n
}
