package cache

import (
	"testing"
	"testing/quick"

	"duet/internal/mem"
)

func TestLookupInstall(t *testing.T) {
	a := NewArray(1024, 4) // 64 lines, 16 sets
	if a.Lookup(0x100) != nil {
		t.Fatal("hit in empty cache")
	}
	var d mem.Line
	d[0] = 0x55
	w := a.Victim(0x100)
	a.Install(w, 0x100, d, 2)
	got := a.Lookup(0x100)
	if got == nil || got.Data[0] != 0x55 || got.State != 2 {
		t.Fatalf("lookup after install: %+v", got)
	}
	if a.Hits != 1 || a.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", a.Hits, a.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	a := NewArray(4*mem.LineBytes, 4) // one set, 4 ways
	addr := func(i int) uint64 { return uint64(i) * mem.LineBytes * uint64(a.Sets()) }
	for i := 0; i < 4; i++ {
		w := a.Victim(addr(i))
		a.Install(w, addr(i), mem.Line{}, 1)
	}
	// Touch 0 so that 1 becomes LRU.
	a.Lookup(addr(0))
	v := a.Victim(addr(9))
	if !v.Valid || v.Tag != addr(1) {
		t.Fatalf("victim = %+v, want tag %#x", v, addr(1))
	}
	// Install over a valid way must panic without prior invalidation.
	defer func() {
		if recover() == nil {
			t.Fatal("install over live line did not panic")
		}
	}()
	a.Install(v, addr(9), mem.Line{}, 1)
}

func TestInvalidate(t *testing.T) {
	a := NewArray(1024, 4)
	w := a.Victim(0x40)
	a.Install(w, 0x40, mem.Line{}, 1)
	a.Invalidate(w)
	if a.Lookup(0x40) != nil {
		t.Fatal("hit after invalidate")
	}
	if a.CountValid() != 0 {
		t.Fatal("valid count after invalidate")
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	a := NewArray(4*mem.LineBytes, 4)
	addr := func(i int) uint64 { return uint64(i) * mem.LineBytes }
	for i := 0; i < 4; i++ {
		a.Install(a.Victim(addr(i)), addr(i), mem.Line{}, 1)
	}
	a.Peek(addr(0)) // must NOT refresh LRU
	v := a.Victim(addr(9))
	if v.Tag != addr(0) {
		t.Fatalf("peek refreshed LRU; victim=%#x", v.Tag)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	NewArray(3*mem.LineBytes, 1)
}

// Property: after installing a random set of distinct lines into a large
// enough array, every one of them is found with its own data.
func TestPropertyInstallAll(t *testing.T) {
	f := func(seed uint8) bool {
		a := NewArray(64*1024, 4)
		n := int(seed)%64 + 1
		for i := 0; i < n; i++ {
			addr := uint64(i) * mem.LineBytes
			var d mem.Line
			d[0] = byte(i)
			w := a.Victim(addr)
			if w.Valid {
				a.Invalidate(w)
			}
			a.Install(w, addr, d, 1)
		}
		for i := 0; i < n; i++ {
			w := a.Peek(uint64(i) * mem.LineBytes)
			if w == nil || w.Data[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
