package telemetry

import (
	"fmt"
	"io"

	"duet/internal/sim"
)

// This file renders a Recorder in Prometheus text exposition format
// (version 0.0.4) — the `/metrics` face of the flight recorder. The
// daemon scrapes straight from its scheduler's recorder; nothing here is
// daemon-specific, so batch studies can dump the same exposition.
//
// Output is deterministic: fixed metric order, worker columns in index
// order, floats in the same shortest-round-trip form as the JSON series.

// promWriter accumulates exposition lines with a sticky first error, so
// WriteProm stays a straight-line list of metrics.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) metric(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, value string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %s\n", name, labels, value)
}

func (p *promWriter) intSample(name, labels string, v int64) {
	p.sample(name, labels, fmt.Sprintf("%d", v))
}

func (p *promWriter) floatSample(name, labels string, v float64) {
	p.sample(name, labels, formatFloat(v))
}

// WriteProm writes the recorder's state as Prometheus metrics under the
// given namespace prefix (e.g. "duetsim"): run-wide counters, per-worker
// busy seconds, the simulated horizon, and latest-window gauges —
// utilization of the newest window and p50/p99 sojourn of the newest
// window that completed any job. A nil recorder writes nothing.
func WriteProm(w io.Writer, ns string, r *Recorder) error {
	if r == nil {
		return nil
	}
	rows := r.Series()
	s := Summarize(rows)
	p := &promWriter{w: w}

	counters := []struct {
		name, help string
		value      int
	}{
		{"arrivals_total", "Jobs offered to the scheduler.", s.Arrivals},
		{"completions_total", "Jobs completed.", s.Completions},
		{"failures_total", "Jobs failed (unknown app, capacity, programming error).", s.Failures},
		{"rejects_total", "Jobs bounced by the full admission queue.", s.Rejects},
		{"reprograms_total", "Fabric reconfigurations triggered by placement.", s.Reprograms},
		{"spills_total", "Jobs spilled to the CPU soft path.", s.Spills},
		{"wedges_total", "Reprograms that wedged (fabric quarantined).", s.Wedges},
		{"retries_total", "Wedge-victim jobs re-queued within their retry budget.", s.Retries},
		{"timeouts_total", "Queued jobs dropped past their deadline.", s.Timeouts},
		{"quarantines_total", "Workers removed from service by wedged reprograms.", s.Quarantines},
		{"repairs_total", "Quarantined workers returned to service on probation.", s.Repairs},
		{"probation_failures_total", "Probationary re-reprograms that wedged again.", s.ProbationFails},
		{"goodput_total", "Completions that met their deadline.", s.Goodput},
	}
	for _, c := range counters {
		name := ns + "_" + c.name
		p.metric(name, c.help, "counter")
		p.intSample(name, "", int64(c.value))
	}

	name0 := ns + "_quarantine_seconds_total"
	p.metric(name0, "Simulated time repaired workers spent quarantined.", "counter")
	p.floatSample(name0, "", s.QuarantineTime.Seconds())

	name := ns + "_queue_depth_max"
	p.metric(name, "Run-wide admission-queue high-water mark.", "gauge")
	p.intSample(name, "", int64(s.QueueMax))

	name = ns + "_horizon_seconds"
	p.metric(name, "Latest observed simulated instant.", "gauge")
	p.floatSample(name, "", r.Horizon().Seconds())

	name = ns + "_window_width_seconds"
	p.metric(name, "Flight-recorder window width (simulated time).", "gauge")
	p.floatSample(name, "", r.Width().Seconds())

	name = ns + "_windows"
	p.metric(name, "Flight-recorder windows recorded so far.", "gauge")
	p.intSample(name, "", int64(len(rows)))

	// Per-worker busy time, summed over every window. Worker index order
	// is the scheduler's; kind labels fabric-class vs soft-path columns.
	name = ns + "_worker_busy_seconds_total"
	p.metric(name, "Cumulative worker occupancy (simulated seconds).", "counter")
	busy := make([]sim.Time, len(r.kinds))
	for _, row := range rows {
		for k, b := range row.Busy {
			busy[k] += b
		}
	}
	for k, b := range busy {
		p.floatSample(name, fmt.Sprintf("{worker=\"%d\",kind=\"%s\"}", k, r.kinds[k]), b.Seconds())
	}

	if len(rows) > 0 {
		name = ns + "_window_utilization"
		p.metric(name, "Worker utilization of the newest window.", "gauge")
		p.floatSample(name, "", rows[len(rows)-1].Utilization)

		// Quantiles come from the newest window with completions: the
		// newest window is often still filling, and an empty digest would
		// report zero latency instead of the last known service level.
		for i := len(rows) - 1; i >= 0; i-- {
			if rows[i].Completions == 0 {
				continue
			}
			name = ns + "_window_sojourn_seconds"
			p.metric(name, "Sojourn latency of the newest window with completions.", "gauge")
			p.floatSample(name, "{quantile=\"0.5\"}", rows[i].P50.Seconds())
			p.floatSample(name, "{quantile=\"0.99\"}", rows[i].P99.Seconds())
			break
		}
	}
	return p.err
}
