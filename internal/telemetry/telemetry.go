// Package telemetry is the simulated-time-windowed flight recorder for
// the accelerator-as-a-service scheduler: the sensor layer that turns
// the serve/cluster studies' end-of-run aggregates into time-resolved
// series a production control loop (an SLO autoscaler, a capacity
// planner) can reason over.
//
// A Recorder implements sched.Observer, so it hangs off the shared
// sched.Scheduler code paths below the Backend seam — the cycle-level
// adapter path and the analytic model path feed it identically, which
// is what lets `duetsim xval`-style cross-validation extend to
// per-window quantiles. Every observation is bucketed by simulated
// time into fixed-width windows: window i covers
// [i*Width, (i+1)*Width). Per window the recorder keeps
//
//   - counters: arrivals, completions, failures, queue rejects,
//     reprograms and soft-path spills (both counted at the dispatch
//     instant), and the admission queue's depth high-water mark;
//   - per-worker busy time, with occupancy intervals split exactly
//     across the window boundaries they span;
//   - a sched.Digest over the sojourns of jobs *finishing* in the
//     window, for per-window p50/p99 at the digest's documented
//     relative value error.
//
// Memory is O(windows): the window table grows with the simulated
// horizon, never with the job count (the digests are fixed-memory, the
// counters are scalars). Because windows are keyed by absolute
// simulated time and every cluster shard simulates the same global
// timeline, per-shard window series align index for index, and Merge
// combines them exactly — counters add, busy columns concatenate in
// shard order, digests merge elementwise — mirroring the end-of-run
// digest merge in cluster.Merge. The merged series is therefore as
// deterministic as the shards themselves: byte-identical per (seed,
// shards, front end, policy) at any study-pool width.
package telemetry

import (
	"fmt"

	"duet/internal/sched"
	"duet/internal/sim"
)

// Recorder is the windowed flight recorder. Create one per scheduler
// with NewRecorder and attach it with sched.Scheduler.SetObserver
// before the first Submit. The zero Recorder is not usable: the window
// width must be fixed up front so shard series align.
type Recorder struct {
	width sim.Time
	kinds []sched.BackendKind
	wins  []window

	// hasFabric records whether any observed worker is fabric-class. A
	// BackendCPU dispatch is a soft-path *spill* only when there is a
	// fabric to spill from; on a pure-CPU pool every placement is just
	// normal service and must not be counted as a spill.
	hasFabric bool

	// horizon is the run's latest observed simulated instant (arrival,
	// dispatch, retire, or busy-interval end — whichever is latest), the
	// clamp for the final window's End and utilization denominator in
	// Series. Live feeders extend it explicitly through ExtendHorizon so
	// idle tail time is accounted too.
	horizon sim.Time
}

// window is one simulated-time bucket of the recorder.
type window struct {
	arrivals    int
	completions int
	failures    int
	rejects     int
	reprograms  int
	spills      int
	wedges      int
	retries     int
	timeouts    int
	quarantines int
	repairs     int
	probFails   int
	quarTime    sim.Time // quarantine time repaid by repairs landing in this window
	misses      int      // completions past their deadline (goodput = completions - misses)
	queueMax    int
	busy        []sim.Time // per worker, indexed like kinds
	sojourns    sched.Digest
}

// NewRecorder builds a recorder over windows of the given width (must
// be positive). kinds is the scheduler's worker-kind vector
// (sched.Scheduler.WorkerKinds), worker-index order: it sizes the
// per-window busy columns and tells fabric-class occupancy from
// soft-path occupancy in the emitted series.
func NewRecorder(width sim.Time, kinds []sched.BackendKind) *Recorder {
	if width <= 0 {
		panic("telemetry: window width must be positive")
	}
	r := &Recorder{width: width, kinds: append([]sched.BackendKind(nil), kinds...)}
	for _, k := range r.kinds {
		if k != sched.BackendCPU {
			r.hasFabric = true
		}
	}
	return r
}

// Width reports the window width.
func (r *Recorder) Width() sim.Time { return r.width }

// Horizon reports the run's latest observed simulated instant — the end
// of the recorded timeline, which clamps the final window in Series.
func (r *Recorder) Horizon() sim.Time { return r.horizon }

// ExtendHorizon advances the run horizon to at, materializing the
// window covering it, without recording any event. A live feeder (the
// daemon's clock bridge) calls it as wall time passes so windows with no
// activity still appear — with zero counters and zero utilization —
// instead of the series freezing at the last event. Instants at or
// before the current horizon are no-ops.
func (r *Recorder) ExtendHorizon(at sim.Time) {
	if at <= r.horizon {
		return
	}
	// at is an exclusive end: the last covered instant is at-1, so a
	// horizon landing exactly on a window boundary does not materialize
	// an empty window beyond it.
	r.win(at - 1)
	r.horizon = at
}

// note advances the horizon to an observed instant.
func (r *Recorder) note(at sim.Time) {
	if at > r.horizon {
		r.horizon = at
	}
}

// Workers reports the number of per-window busy columns (the observed
// scheduler's worker count; after Merge, the sum over shards).
func (r *Recorder) Workers() int { return len(r.kinds) }

// Windows reports the number of windows touched so far — the recorder's
// memory scale.
func (r *Recorder) Windows() int { return len(r.wins) }

// win returns the window covering instant at, growing the dense table
// as the simulated horizon extends.
func (r *Recorder) win(at sim.Time) *window {
	if at < 0 {
		at = 0
	}
	i := int(int64(at) / int64(r.width))
	if i >= len(r.wins) {
		r.wins = append(r.wins, make([]window, i+1-len(r.wins))...)
	}
	w := &r.wins[i]
	if w.busy == nil && len(r.kinds) > 0 {
		w.busy = make([]sim.Time, len(r.kinds))
	}
	return w
}

var _ sched.Observer = (*Recorder)(nil)

// ObserveArrival counts the offer in its submit window and advances the
// window's queue-depth high-water mark.
func (r *Recorder) ObserveArrival(at sim.Time, queueDepth int) {
	w := r.win(at)
	r.note(at)
	w.arrivals++
	if queueDepth > w.queueMax {
		w.queueMax = queueDepth
	}
}

// ObserveReject counts a queue bounce in its submit window.
func (r *Recorder) ObserveReject(at sim.Time) {
	r.win(at).rejects++
	r.note(at)
}

// ObserveDispatch counts reprograms and soft-path spills in the
// dispatch instant's window (the reprogram flow the dispatch schedules
// extends past the instant; it is attributed to the window it started
// in). A BackendCPU dispatch counts as a spill only when the observed
// scheduler has fabric-class workers: on a pure soft-path pool there is
// no fabric to spill from, so CPU placements are ordinary service.
func (r *Recorder) ObserveDispatch(at sim.Time, worker int, kind sched.BackendKind, reprogrammed bool) {
	w := r.win(at)
	r.note(at)
	if reprogrammed {
		w.reprograms++
	}
	if kind == sched.BackendCPU && r.hasFabric {
		w.spills++
	}
}

// ObserveRetire counts the job in its finish window and folds its
// sojourn into that window's digest (failures are counted but
// contribute no sojourn sample, matching sched.Stats). Completions past
// their deadline are additionally counted as misses, so the series
// carries per-window goodput — the availability signal under faults.
func (r *Recorder) ObserveRetire(j *sched.Job) {
	w := r.win(j.Finish)
	r.note(j.Finish)
	if j.Err != nil {
		w.failures++
		return
	}
	w.completions++
	if j.MissedDeadline() {
		w.misses++
	}
	w.sojourns.Add(j.Sojourn())
}

// ObserveBusy splits the occupancy interval [from, to) exactly across
// the windows it spans, so per-window utilization is an integral, not a
// sample.
func (r *Recorder) ObserveBusy(worker int, from, to sim.Time) {
	if from < 0 {
		from = 0
	}
	r.note(to)
	for from < to {
		w := r.win(from)
		end := (from/r.width + 1) * r.width
		if end > to {
			end = to
		}
		w.busy[worker] += end - from
		from = end
	}
}

// ObserveWedge counts a wedged reprogram in its detection window.
func (r *Recorder) ObserveWedge(at sim.Time, worker int) {
	r.win(at).wedges++
	r.note(at)
}

// ObserveRetry counts a wedge-victim re-queue in its window.
func (r *Recorder) ObserveRetry(at sim.Time) {
	r.win(at).retries++
	r.note(at)
}

// ObserveTimeout counts a deadline-dropped queued job in its window.
func (r *Recorder) ObserveTimeout(at sim.Time) {
	r.win(at).timeouts++
	r.note(at)
}

// ObserveQuarantine counts a worker lost to a wedged reprogram in the
// window it was quarantined in.
func (r *Recorder) ObserveQuarantine(at sim.Time, worker int) {
	r.win(at).quarantines++
	r.note(at)
}

// ObserveRepair counts a repaired worker in the window its repair landed
// in, and attributes the whole quarantine stretch it ends to that window
// (time-in-quarantine is booked at repayment, like a latency sample).
func (r *Recorder) ObserveRepair(at sim.Time, worker int, quarantined sim.Time) {
	w := r.win(at)
	r.note(at)
	w.repairs++
	w.quarTime += quarantined
}

// ObserveProbationFail counts a repaired worker's probationary
// re-reprogram wedging again, in its detection window.
func (r *Recorder) ObserveProbationFail(at sim.Time, worker int) {
	r.win(at).probFails++
	r.note(at)
}

// Merge combines per-shard recorders into one fresh cluster-wide
// recorder; nil inputs are skipped and a nil result means no input
// carried telemetry. Window i of the result is the exact combination of
// every input's window i: counters add, queue high-water marks take the
// maximum (per-shard queues are independent; the mark reports the worst
// single queue), busy columns concatenate in input order (shard 0's
// workers first), and sojourn digests merge elementwise — so the merged
// series equals what one recorder observing every shard would have
// recorded, up to the queue-mark convention. All inputs must share one
// window width; the inputs are not modified.
func Merge(rs ...*Recorder) (*Recorder, error) {
	var live []*Recorder
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil, nil
	}
	width := live[0].width
	var kinds []sched.BackendKind
	maxWins := 0
	for _, r := range live {
		if r.width != width {
			return nil, fmt.Errorf("telemetry: window width mismatch (%v vs %v)", r.width, width)
		}
		kinds = append(kinds, r.kinds...)
		if len(r.wins) > maxWins {
			maxWins = len(r.wins)
		}
	}
	m := NewRecorder(width, kinds)
	m.wins = make([]window, maxWins)
	off := 0
	for _, r := range live {
		// The merged horizon is the latest shard horizon — exactly what
		// one recorder observing every shard would have noted.
		if r.horizon > m.horizon {
			m.horizon = r.horizon
		}
		for i := range r.wins {
			src, dst := &r.wins[i], &m.wins[i]
			dst.arrivals += src.arrivals
			dst.completions += src.completions
			dst.failures += src.failures
			dst.rejects += src.rejects
			dst.reprograms += src.reprograms
			dst.spills += src.spills
			dst.wedges += src.wedges
			dst.retries += src.retries
			dst.timeouts += src.timeouts
			dst.quarantines += src.quarantines
			dst.repairs += src.repairs
			dst.probFails += src.probFails
			dst.quarTime += src.quarTime
			dst.misses += src.misses
			if src.queueMax > dst.queueMax {
				dst.queueMax = src.queueMax
			}
			if src.busy != nil {
				if dst.busy == nil {
					dst.busy = make([]sim.Time, len(kinds))
				}
				copy(dst.busy[off:off+len(r.kinds)], src.busy)
			}
			dst.sojourns.Merge(&src.sojourns)
		}
		off += len(r.kinds)
	}
	return m, nil
}
