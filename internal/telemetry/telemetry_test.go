package telemetry

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"duet/internal/sched"
	"duet/internal/sim"
)

func kinds(ks ...sched.BackendKind) []sched.BackendKind { return ks }

func TestNewRecorderRejectsBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder(0) did not panic")
		}
	}()
	NewRecorder(0, nil)
}

// TestRecorderWindowing: observations must land in the window covering
// their simulated instant, and the dense table must cover every window
// up to the latest touched one.
func TestRecorderWindowing(t *testing.T) {
	r := NewRecorder(100, kinds(sched.BackendCycle))
	r.ObserveArrival(0, 3)
	r.ObserveArrival(99, 5)  // same window, deeper queue
	r.ObserveArrival(100, 1) // next window starts exactly at the edge
	r.ObserveReject(250)
	r.ObserveDispatch(310, 0, sched.BackendCycle, true)
	r.ObserveDispatch(310, 0, sched.BackendCPU, false)
	r.ObserveRetire(&sched.Job{Submit: 330, Finish: 450}) // sojourn 120: inside the digest's exact region
	if got := r.Windows(); got != 5 {
		t.Fatalf("Windows() = %d, want 5", got)
	}
	rows := r.Series()
	if rows[0].Arrivals != 2 || rows[0].QueueMax != 5 {
		t.Fatalf("window 0 = %+v, want 2 arrivals, queue max 5", rows[0])
	}
	if rows[1].Arrivals != 1 {
		t.Fatalf("window 1 arrivals = %d, want 1", rows[1].Arrivals)
	}
	if rows[2].Rejects != 1 {
		t.Fatalf("window 2 rejects = %d, want 1", rows[2].Rejects)
	}
	if rows[3].Reprograms != 1 || rows[3].Spills != 1 {
		t.Fatalf("window 3 = %+v, want 1 reprogram, 1 spill", rows[3])
	}
	if rows[4].Completions != 1 || rows[4].P50 != 120 {
		t.Fatalf("window 4 = %+v, want 1 completion, p50 120", rows[4])
	}
	for i, row := range rows {
		wantEnd := sim.Time(i+1) * 100
		if i == len(rows)-1 {
			wantEnd = 450 // the run horizon (the retire at 450) clamps the last window
		}
		if row.Window != i || row.Start != sim.Time(i)*100 || row.End != wantEnd {
			t.Fatalf("row %d has span [%v, %v), want [%v, %v)", i, row.Start, row.End, sim.Time(i)*100, wantEnd)
		}
	}
}

// TestSeriesHorizonClamp: regression for the last-window utilization
// bug — a run ending mid-window must report End at the horizon and
// compute utilization over the covered span, not the full window width.
func TestSeriesHorizonClamp(t *testing.T) {
	r := NewRecorder(100, kinds(sched.BackendModel))
	// One worker busy for the whole run, which ends at 250: windows 0 and
	// 1 are fully covered, window 2 only to its midpoint.
	r.ObserveBusy(0, 0, 250)
	r.ObserveRetire(&sched.Job{Submit: 0, Finish: 250})
	if got := r.Horizon(); got != 250 {
		t.Fatalf("Horizon() = %v, want 250", got)
	}
	rows := r.Series()
	if len(rows) != 3 {
		t.Fatalf("%d windows, want 3", len(rows))
	}
	last := rows[2]
	if last.Start != 200 || last.End != 250 {
		t.Fatalf("last window spans [%v, %v), want [200, 250)", last.Start, last.End)
	}
	// 50 busy over a 50-wide covered span: fully utilized, not 50%.
	if last.Utilization != 1.0 {
		t.Fatalf("last window utilization = %v, want 1.0", last.Utilization)
	}
	for i := 0; i < 2; i++ {
		if rows[i].End != sim.Time(i+1)*100 || rows[i].Utilization != 1.0 {
			t.Fatalf("window %d = [%v, %v) util %v, want full window fully utilized",
				i, rows[i].Start, rows[i].End, rows[i].Utilization)
		}
	}
}

// TestMergeHorizon: the merged recorder's horizon must be the latest
// shard horizon, and the merged series' last window must clamp to it.
func TestMergeHorizon(t *testing.T) {
	a := NewRecorder(100, kinds(sched.BackendModel))
	b := NewRecorder(100, kinds(sched.BackendModel))
	a.ObserveRetire(&sched.Job{Submit: 0, Finish: 120})
	b.ObserveRetire(&sched.Job{Submit: 0, Finish: 180})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Horizon(); got != 180 {
		t.Fatalf("merged horizon = %v, want 180", got)
	}
	rows := m.Series()
	if got := rows[len(rows)-1].End; got != 180 {
		t.Fatalf("merged last window End = %v, want 180", got)
	}
}

// TestExtendHorizon: a live feeder extending the horizon must
// materialize idle windows (zero counters, zero utilization) and move
// the clamp, without recording any event.
func TestExtendHorizon(t *testing.T) {
	r := NewRecorder(100, kinds(sched.BackendModel))
	r.ObserveArrival(10, 1)
	r.ExtendHorizon(350)
	if got := r.Horizon(); got != 350 {
		t.Fatalf("Horizon() = %v, want 350", got)
	}
	rows := r.Series()
	if len(rows) != 4 {
		t.Fatalf("%d windows, want 4 (idle tail materialized)", len(rows))
	}
	for i := 1; i < 4; i++ {
		if rows[i].Arrivals != 0 || rows[i].Utilization != 0 {
			t.Fatalf("idle window %d = %+v", i, rows[i])
		}
	}
	if rows[3].End != 350 {
		t.Fatalf("last window End = %v, want 350", rows[3].End)
	}
	// Extending backwards is a no-op.
	r.ExtendHorizon(200)
	if got := r.Horizon(); got != 350 {
		t.Fatalf("Horizon() after backwards extend = %v, want 350", got)
	}
}

// TestSpillRequiresFabric: regression for the spill miscount — CPU
// dispatches only count as spills when the observed scheduler has
// fabric-class workers; a pure soft-path pool has nothing to spill from.
func TestSpillRequiresFabric(t *testing.T) {
	pure := NewRecorder(100, kinds(sched.BackendCPU, sched.BackendCPU))
	pure.ObserveDispatch(10, 0, sched.BackendCPU, false)
	if got := pure.Series()[0].Spills; got != 0 {
		t.Fatalf("pure-CPU pool recorded %d spills, want 0", got)
	}
	mixed := NewRecorder(100, kinds(sched.BackendCycle, sched.BackendCPU))
	mixed.ObserveDispatch(10, 1, sched.BackendCPU, false)
	mixed.ObserveDispatch(10, 0, sched.BackendCycle, false)
	if got := mixed.Series()[0].Spills; got != 1 {
		t.Fatalf("mixed pool recorded %d spills, want 1", got)
	}
}

// TestRecorderBusySplit: an occupancy interval spanning window edges
// must be split exactly — per-window busy sums to the interval length
// and no window's share exceeds its width.
func TestRecorderBusySplit(t *testing.T) {
	r := NewRecorder(100, kinds(sched.BackendCycle, sched.BackendCPU))
	r.ObserveBusy(0, 50, 320) // 50 in w0, 100 in w1, 100 in w2, 20 in w3
	r.ObserveBusy(1, 0, 100)  // exactly w0
	rows := r.Series()
	want := [][]sim.Time{{50, 100}, {100, 0}, {100, 0}, {20, 0}}
	for i, w := range want {
		if !reflect.DeepEqual(rows[i].Busy, w) {
			t.Fatalf("window %d busy = %v, want %v", i, rows[i].Busy, w)
		}
	}
	if rows[0].BusyCPU != 100 {
		t.Fatalf("window 0 busy_cpu = %v, want 100 (worker 1 is the CPU)", rows[0].BusyCPU)
	}
	var total sim.Time
	for _, row := range rows {
		total += row.BusyTotal
	}
	if total != 270+100 {
		t.Fatalf("total busy %v, want 370", total)
	}
	// Utilization: window 1 has one of two workers fully busy.
	if rows[1].Utilization != 0.5 {
		t.Fatalf("window 1 utilization = %v, want 0.5", rows[1].Utilization)
	}
}

// TestRecorderMerge: merging shard recorders must add counters, take
// the queue high-water max, concatenate busy columns in shard order and
// merge the digests — and must not mutate its inputs.
func TestRecorderMerge(t *testing.T) {
	a := NewRecorder(100, kinds(sched.BackendCycle))
	b := NewRecorder(100, kinds(sched.BackendCycle, sched.BackendCPU))
	a.ObserveArrival(10, 4)
	a.ObserveBusy(0, 0, 60)
	a.ObserveRetire(&sched.Job{Submit: 0, Finish: 80})
	b.ObserveArrival(20, 2)
	b.ObserveBusy(1, 50, 150)
	b.ObserveRetire(&sched.Job{Submit: 20, Finish: 180})
	aRows, bRows := a.Series(), b.Series()

	m, err := Merge(a, nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers() != 3 {
		t.Fatalf("merged workers = %d, want 3", m.Workers())
	}
	rows := m.Series()
	if rows[0].Arrivals != 2 || rows[0].QueueMax != 4 || rows[0].Completions != 1 {
		t.Fatalf("merged window 0 = %+v", rows[0])
	}
	if want := []sim.Time{60, 0, 50}; !reflect.DeepEqual(rows[0].Busy, want) {
		t.Fatalf("merged window 0 busy = %v, want %v", rows[0].Busy, want)
	}
	if rows[1].Completions != 1 || rows[1].P50 != 160 {
		t.Fatalf("merged window 1 = %+v, want b's completion (sojourn 160)", rows[1])
	}
	// Inputs untouched.
	if !reflect.DeepEqual(a.Series(), aRows) || !reflect.DeepEqual(b.Series(), bRows) {
		t.Fatal("Merge mutated an input recorder")
	}

	if _, err := Merge(a, NewRecorder(50, nil)); err == nil {
		t.Fatal("width mismatch not rejected")
	}
	if m, err := Merge(nil, nil); m != nil || err != nil {
		t.Fatalf("all-nil merge = (%v, %v), want (nil, nil)", m, err)
	}
}

// TestMergeEqualsUnshardedRecorder: a recorder observing a whole stream
// must equal the merge of recorders observing any split of it (modulo
// the busy-column concatenation, exercised here with one worker per
// shard mapped onto distinct columns).
func TestMergeEqualsUnshardedRecorder(t *testing.T) {
	whole := NewRecorder(1000, kinds(sched.BackendCycle, sched.BackendCycle))
	s0 := NewRecorder(1000, kinds(sched.BackendCycle))
	s1 := NewRecorder(1000, kinds(sched.BackendCycle))
	shards := []*Recorder{s0, s1}
	for i := 0; i < 500; i++ {
		at := sim.Time(i * 37 % 10000)
		s := shards[i%2]
		whole.ObserveArrival(at, i%7)
		s.ObserveArrival(at, i%7)
		whole.ObserveBusy(i%2, at, at+29)
		s.ObserveBusy(0, at, at+29)
		j := &sched.Job{Submit: at, Finish: at + sim.Time(100+i)}
		whole.ObserveRetire(j)
		s.ObserveRetire(j)
	}
	m, err := Merge(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	mr, wr := m.Series(), whole.Series()
	if len(mr) != len(wr) {
		t.Fatalf("merged %d windows, whole %d", len(mr), len(wr))
	}
	for i := range mr {
		got, want := mr[i], wr[i]
		// Busy columns are permuted (shard concatenation vs round-robin
		// worker choice); compare the totals and everything else.
		got.Busy, want.Busy = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d: merged %+v != whole %+v", i, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	rows := []WindowRow{
		{Window: 0, Start: 0, End: 100, Arrivals: 5, Rejects: 1, QueueMax: 3, Utilization: 0.5, P99: 40, Reprograms: 2},
		{Window: 1, Start: 100, End: 200, Arrivals: 3, Completions: 6, QueueMax: 9, Utilization: 0.9, P99: 70, Reprograms: 2},
		{Window: 2, Start: 200, End: 300, Spills: 4, Utilization: 0.1, P99: 70},
	}
	s := Summarize(rows)
	if s.Windows != 3 || s.Width != 100 || s.Arrivals != 8 || s.Completions != 6 ||
		s.Rejects != 1 || s.Spills != 4 || s.QueueMax != 9 {
		t.Fatalf("summary totals = %+v", s)
	}
	if s.PeakUtilization != 0.9 || s.PeakUtilWindow != 1 {
		t.Fatalf("peak util = %v (w%d)", s.PeakUtilization, s.PeakUtilWindow)
	}
	if s.PeakP99 != 70 || s.PeakP99Window != 1 { // tie goes to the earliest window
		t.Fatalf("peak p99 = %v (w%d), want 70 (w1)", s.PeakP99, s.PeakP99Window)
	}
	if s.PeakReprograms != 2 || s.PeakReprogramsWin != 0 {
		t.Fatalf("peak reprograms = %d (w%d), want 2 (w0)", s.PeakReprograms, s.PeakReprogramsWin)
	}
}

// TestCSVRoundTrip: WriteCSV then ParseCSV must reproduce the rows
// (minus the JSON-only per-worker busy vector).
func TestCSVRoundTrip(t *testing.T) {
	r := NewRecorder(100, kinds(sched.BackendCycle, sched.BackendCPU))
	r.ObserveArrival(10, 2)
	r.ObserveBusy(0, 0, 150)
	r.ObserveBusy(1, 40, 90)
	r.ObserveRetire(&sched.Job{Submit: 10, Finish: 130})
	rows := r.Series()
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		rows[i].Busy = nil
	}
	if !reflect.DeepEqual(back, rows) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, rows)
	}
	if _, err := ParseCSV("not,a,series\n"); err == nil {
		t.Fatal("bogus CSV parsed")
	}
}

// TestLoadSeries: the loader must sniff all three on-disk forms and pull
// every windows array out of a nested -json document in sorted-path
// order, under both key spellings.
func TestLoadSeries(t *testing.T) {
	rows := []WindowRow{{Window: 0, End: 100, Arrivals: 2, Busy: []sim.Time{30}}}
	asJSON, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	for _, form := range []string{sb.String(), string(asJSON)} {
		found, err := LoadSeries([]byte(form))
		if err != nil {
			t.Fatalf("load %q form: %v", form[:10], err)
		}
		if len(found) != 1 || found[0].Path != "" || len(found[0].Rows) != 1 {
			t.Fatalf("load %q form: found %+v", form[:10], found)
		}
	}

	doc := []byte(`{
		"serve": [ {"Policy": "fifo", "Windows": ` + string(asJSON) + `} ],
		"cluster": [ {"windows": ` + string(asJSON) + `}, {"windows": ` + string(asJSON) + `} ]
	}`)
	found, err := LoadSeries(doc)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(found))
	for i, fs := range found {
		paths[i] = fs.Path
		if len(fs.Rows) != 1 || fs.Rows[0].Arrivals != 2 {
			t.Fatalf("series %s rows = %+v", fs.Path, fs.Rows)
		}
	}
	want := []string{"cluster[0].windows", "cluster[1].windows", "serve[0].Windows"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}

	if _, err := LoadSeries([]byte(`{"no": "series"}`)); err == nil {
		t.Fatal("document without windows arrays loaded")
	}
	if _, err := LoadSeries([]byte(`!garbage`)); err == nil {
		t.Fatal("garbage loaded")
	}
}
