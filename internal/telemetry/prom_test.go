package telemetry

import (
	"strings"
	"testing"

	"duet/internal/sched"
)

// TestWritePromGolden pins the full exposition for a small deterministic
// run: the daemon's /metrics golden-scrape test reuses the same
// recorder-side determinism this asserts.
func TestWritePromGolden(t *testing.T) {
	r := NewRecorder(100, kinds(sched.BackendCycle, sched.BackendCPU))
	r.ObserveArrival(10, 1)
	r.ObserveArrival(20, 2)
	r.ObserveDispatch(20, 1, sched.BackendCPU, false)
	r.ObserveDispatch(30, 0, sched.BackendCycle, true)
	r.ObserveBusy(0, 30, 180)
	r.ObserveBusy(1, 20, 120)
	r.ObserveRetire(&sched.Job{Submit: 20, Finish: 120})
	r.ObserveRetire(&sched.Job{Submit: 10, Finish: 180})
	r.ObserveReject(150)

	var b strings.Builder
	if err := WriteProm(&b, "duetsim", r); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	const want = `# HELP duetsim_arrivals_total Jobs offered to the scheduler.
# TYPE duetsim_arrivals_total counter
duetsim_arrivals_total 2
# HELP duetsim_completions_total Jobs completed.
# TYPE duetsim_completions_total counter
duetsim_completions_total 2
# HELP duetsim_failures_total Jobs failed (unknown app, capacity, programming error).
# TYPE duetsim_failures_total counter
duetsim_failures_total 0
# HELP duetsim_rejects_total Jobs bounced by the full admission queue.
# TYPE duetsim_rejects_total counter
duetsim_rejects_total 1
# HELP duetsim_reprograms_total Fabric reconfigurations triggered by placement.
# TYPE duetsim_reprograms_total counter
duetsim_reprograms_total 1
# HELP duetsim_spills_total Jobs spilled to the CPU soft path.
# TYPE duetsim_spills_total counter
duetsim_spills_total 1
# HELP duetsim_wedges_total Reprograms that wedged (fabric quarantined).
# TYPE duetsim_wedges_total counter
duetsim_wedges_total 0
# HELP duetsim_retries_total Wedge-victim jobs re-queued within their retry budget.
# TYPE duetsim_retries_total counter
duetsim_retries_total 0
# HELP duetsim_timeouts_total Queued jobs dropped past their deadline.
# TYPE duetsim_timeouts_total counter
duetsim_timeouts_total 0
# HELP duetsim_quarantines_total Workers removed from service by wedged reprograms.
# TYPE duetsim_quarantines_total counter
duetsim_quarantines_total 0
# HELP duetsim_repairs_total Quarantined workers returned to service on probation.
# TYPE duetsim_repairs_total counter
duetsim_repairs_total 0
# HELP duetsim_probation_failures_total Probationary re-reprograms that wedged again.
# TYPE duetsim_probation_failures_total counter
duetsim_probation_failures_total 0
# HELP duetsim_goodput_total Completions that met their deadline.
# TYPE duetsim_goodput_total counter
duetsim_goodput_total 2
# HELP duetsim_quarantine_seconds_total Simulated time repaired workers spent quarantined.
# TYPE duetsim_quarantine_seconds_total counter
duetsim_quarantine_seconds_total 0
# HELP duetsim_queue_depth_max Run-wide admission-queue high-water mark.
# TYPE duetsim_queue_depth_max gauge
duetsim_queue_depth_max 2
# HELP duetsim_horizon_seconds Latest observed simulated instant.
# TYPE duetsim_horizon_seconds gauge
duetsim_horizon_seconds 1.8e-10
# HELP duetsim_window_width_seconds Flight-recorder window width (simulated time).
# TYPE duetsim_window_width_seconds gauge
duetsim_window_width_seconds 1e-10
# HELP duetsim_windows Flight-recorder windows recorded so far.
# TYPE duetsim_windows gauge
duetsim_windows 2
# HELP duetsim_worker_busy_seconds_total Cumulative worker occupancy (simulated seconds).
# TYPE duetsim_worker_busy_seconds_total counter
duetsim_worker_busy_seconds_total{worker="0",kind="cycle"} 1.5e-10
duetsim_worker_busy_seconds_total{worker="1",kind="cpu"} 1e-10
# HELP duetsim_window_utilization Worker utilization of the newest window.
# TYPE duetsim_window_utilization gauge
duetsim_window_utilization 0.625
# HELP duetsim_window_sojourn_seconds Sojourn latency of the newest window with completions.
# TYPE duetsim_window_sojourn_seconds gauge
duetsim_window_sojourn_seconds{quantile="0.5"} 1e-10
duetsim_window_sojourn_seconds{quantile="0.99"} 1.7e-10
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePromNil: a nil recorder (e.g. telemetry disabled) writes
// nothing rather than erroring.
func TestWritePromNil(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, "duetsim", nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil recorder wrote %q", b.String())
	}
}
