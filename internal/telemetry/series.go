package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"duet/internal/sched"
	"duet/internal/sim"
)

// WindowRow is one window of the emitted series — the machine-readable
// snapshot behind `duetsim -windows` and the `report` subcommand. Field
// (and JSON key) order is part of the determinism contract: the CI
// windows-determinism job diffs these bytes across study-pool widths.
type WindowRow struct {
	Window      int      `json:"window"`
	Start       sim.Time `json:"start"`
	End         sim.Time `json:"end"`
	Arrivals    int      `json:"arrivals"`
	Completions int      `json:"completions"`
	Failures    int      `json:"failures"`
	Rejects     int      `json:"rejects"`
	Reprograms  int      `json:"reprograms"`
	Spills      int      `json:"spills"`
	// Fault-path counters (see sched/faults.go) and the goodput split:
	// Goodput is the completions that met their deadline, DeadlineMisses
	// the ones that did not. All omit when zero, so a fault-free run's
	// series keeps its pre-fault shape.
	Wedges      int `json:"wedges,omitempty"`
	Retries     int `json:"retries,omitempty"`
	Timeouts    int `json:"timeouts,omitempty"`
	Quarantines int `json:"quarantines,omitempty"`
	// Recovery counters: repairs landing in the window, probationary
	// re-reprograms that wedged again, and the quarantine time the
	// window's repairs repaid (booked at the repair instant).
	Repairs        int        `json:"repairs,omitempty"`
	ProbationFails int        `json:"probation_fails,omitempty"`
	QuarantineTime sim.Time   `json:"quarantine_time,omitempty"`
	DeadlineMisses int        `json:"deadline_misses,omitempty"`
	Goodput        int        `json:"goodput,omitempty"`
	QueueMax       int        `json:"queue_max"`
	Busy           []sim.Time `json:"busy_per_worker"`
	BusyCPU        sim.Time   `json:"busy_cpu"`
	BusyTotal      sim.Time   `json:"busy_total"`
	Utilization    float64    `json:"utilization"`
	P50            sim.Time   `json:"p50"`
	P99            sim.Time   `json:"p99"`
}

// Series snapshots the recorder as one row per window, in window order
// — every touched window, including idle ones between the first and
// last. Utilization is total busy time over the window's whole worker
// capacity (workers x span); BusyCPU splits out the soft-path share of
// BusyTotal, the fabric-vs-CPU pressure signal.
//
// The final window is clamped to the run horizon: when the run ends
// mid-window its End is the horizon, not the full window edge, and its
// utilization denominator is the covered span — a run that keeps every
// worker busy right up to its last completion reports 100%, not the
// fraction of an arbitrary window width it happened to end inside.
func (r *Recorder) Series() []WindowRow {
	rows := make([]WindowRow, len(r.wins))
	for i := range r.wins {
		w := &r.wins[i]
		end := sim.Time(i+1) * r.width
		// Only the last window can extend past the horizon (the horizon
		// is at least the instant that materialized the last window, so
		// it is never below any window's start; the floor is defensive).
		if end > r.horizon {
			end = r.horizon
			if start := sim.Time(i) * r.width; end < start {
				end = start
			}
		}
		row := WindowRow{
			Window:         i,
			Start:          sim.Time(i) * r.width,
			End:            end,
			Arrivals:       w.arrivals,
			Completions:    w.completions,
			Failures:       w.failures,
			Rejects:        w.rejects,
			Reprograms:     w.reprograms,
			Spills:         w.spills,
			Wedges:         w.wedges,
			Retries:        w.retries,
			Timeouts:       w.timeouts,
			Quarantines:    w.quarantines,
			Repairs:        w.repairs,
			ProbationFails: w.probFails,
			QuarantineTime: w.quarTime,
			DeadlineMisses: w.misses,
			Goodput:        w.completions - w.misses,
			QueueMax:       w.queueMax,
			Busy:           make([]sim.Time, len(r.kinds)),
			P50:            w.sojourns.Quantile(50),
			P99:            w.sojourns.Quantile(99),
		}
		copy(row.Busy, w.busy)
		for k, b := range row.Busy {
			row.BusyTotal += b
			if r.kinds[k] == sched.BackendCPU {
				row.BusyCPU += b
			}
		}
		if span := end - row.Start; span > 0 && len(r.kinds) > 0 {
			row.Utilization = float64(row.BusyTotal) / (float64(span) * float64(len(r.kinds)))
		}
		rows[i] = row
	}
	return rows
}

// Summary condenses a window series to the numbers a capacity planner
// asks for first: run-wide totals plus the worst windows — peak-window
// p99, the worst reconfig-rate window, the utilization peak and mean,
// and the deepest queue high-water mark.
type Summary struct {
	Windows int
	Width   sim.Time

	Arrivals, Completions, Failures, Rejects, Reprograms, Spills int
	Wedges, Retries, Timeouts, Quarantines                       int
	Repairs, ProbationFails                                      int
	QuarantineTime                                               sim.Time
	DeadlineMisses, Goodput                                      int
	QueueMax                                                     int

	// Availability is the served fraction of offered work — completions
	// over arrivals (1 when nothing was offered); Goodput above narrows
	// it to completions that also met their deadline.
	Availability float64

	MeanUtilization float64
	PeakUtilization float64
	PeakUtilWindow  int

	PeakP99       sim.Time
	PeakP99Window int

	PeakReprograms    int
	PeakReprogramsWin int
}

// Summarize reduces rows to a Summary. Empty input yields the zero
// Summary. Ties go to the earliest window.
func Summarize(rows []WindowRow) Summary {
	var s Summary
	if len(rows) == 0 {
		return s
	}
	s.Windows = len(rows)
	s.Width = rows[0].End - rows[0].Start
	for _, r := range rows {
		s.Arrivals += r.Arrivals
		s.Completions += r.Completions
		s.Failures += r.Failures
		s.Rejects += r.Rejects
		s.Reprograms += r.Reprograms
		s.Spills += r.Spills
		s.Wedges += r.Wedges
		s.Retries += r.Retries
		s.Timeouts += r.Timeouts
		s.Quarantines += r.Quarantines
		s.Repairs += r.Repairs
		s.ProbationFails += r.ProbationFails
		s.QuarantineTime += r.QuarantineTime
		s.DeadlineMisses += r.DeadlineMisses
		s.Goodput += r.Goodput
		if r.QueueMax > s.QueueMax {
			s.QueueMax = r.QueueMax
		}
		s.MeanUtilization += r.Utilization
		if r.Utilization > s.PeakUtilization {
			s.PeakUtilization = r.Utilization
			s.PeakUtilWindow = r.Window
		}
		if r.P99 > s.PeakP99 {
			s.PeakP99 = r.P99
			s.PeakP99Window = r.Window
		}
		if r.Reprograms > s.PeakReprograms {
			s.PeakReprograms = r.Reprograms
			s.PeakReprogramsWin = r.Window
		}
	}
	s.MeanUtilization /= float64(len(rows))
	s.Availability = 1
	if s.Arrivals > 0 {
		s.Availability = float64(s.Completions) / float64(s.Arrivals)
	}
	return s
}

// CSVHeader is the column order of the CSV series form. The per-worker
// busy vector is JSON-only; CSV carries the totals.
const CSVHeader = "window,start,end,arrivals,completions,failures,rejects,reprograms,spills,wedges,retries,timeouts,quarantines,repairs,probation_fails,quarantine_time,deadline_misses,goodput,queue_max,busy_cpu,busy_total,utilization,p50,p99"

// formatFloat renders a float shortest-round-trip — byte-stable for
// equal values, the same contract encoding/json gives the JSON form.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WriteCSV emits the series in the stable column order of CSVHeader.
func WriteCSV(w io.Writer, rows []WindowRow) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d\n",
			r.Window, int64(r.Start), int64(r.End), r.Arrivals, r.Completions, r.Failures,
			r.Rejects, r.Reprograms, r.Spills, r.Wedges, r.Retries, r.Timeouts, r.Quarantines,
			r.Repairs, r.ProbationFails, int64(r.QuarantineTime),
			r.DeadlineMisses, r.Goodput, r.QueueMax, int64(r.BusyCPU), int64(r.BusyTotal),
			formatFloat(r.Utilization), int64(r.P50), int64(r.P99))
		if err != nil {
			return err
		}
	}
	return nil
}

// ParseCSV reads a series back from its CSV form. The per-worker busy
// vector is not present in CSV and comes back nil.
func ParseCSV(data string) ([]WindowRow, error) {
	lines := strings.Split(strings.TrimRight(data, "\n"), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != CSVHeader {
		return nil, fmt.Errorf("telemetry: not a window-series CSV (want header %q)", CSVHeader)
	}
	rows := make([]WindowRow, 0, len(lines)-1)
	for ln, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 24 {
			return nil, fmt.Errorf("telemetry: CSV line %d has %d fields, want 24", ln+2, len(f))
		}
		var r WindowRow
		var err error
		ints := []struct {
			dst *int
			src string
		}{
			{&r.Window, f[0]}, {&r.Arrivals, f[3]}, {&r.Completions, f[4]},
			{&r.Failures, f[5]}, {&r.Rejects, f[6]}, {&r.Reprograms, f[7]},
			{&r.Spills, f[8]}, {&r.Wedges, f[9]}, {&r.Retries, f[10]},
			{&r.Timeouts, f[11]}, {&r.Quarantines, f[12]}, {&r.Repairs, f[13]},
			{&r.ProbationFails, f[14]}, {&r.DeadlineMisses, f[16]},
			{&r.Goodput, f[17]}, {&r.QueueMax, f[18]},
		}
		for _, c := range ints {
			if *c.dst, err = strconv.Atoi(c.src); err != nil {
				return nil, fmt.Errorf("telemetry: CSV line %d: %w", ln+2, err)
			}
		}
		times := []struct {
			dst *sim.Time
			src string
		}{
			{&r.Start, f[1]}, {&r.End, f[2]}, {&r.QuarantineTime, f[15]},
			{&r.BusyCPU, f[19]}, {&r.BusyTotal, f[20]}, {&r.P50, f[22]}, {&r.P99, f[23]},
		}
		for _, c := range times {
			v, err := strconv.ParseInt(c.src, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: CSV line %d: %w", ln+2, err)
			}
			*c.dst = sim.Time(v)
		}
		if r.Utilization, err = strconv.ParseFloat(f[21], 64); err != nil {
			return nil, fmt.Errorf("telemetry: CSV line %d: %w", ln+2, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// FoundSeries is one window series located inside a loaded document,
// labeled with the JSON path it was found at ("" for a bare series).
type FoundSeries struct {
	Path string
	Rows []WindowRow
}

// LoadSeries parses a saved series in any form `duetsim` emits: a CSV
// file (report -csv), a bare JSON array of window rows, or a full
// `-json` study document in which every `"windows"`/`"Windows"` array —
// at any nesting depth — is extracted, in deterministic (sorted-path)
// order.
func LoadSeries(data []byte) ([]FoundSeries, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, CSVHeader) {
		rows, err := ParseCSV(trimmed)
		if err != nil {
			return nil, err
		}
		return []FoundSeries{{Rows: rows}}, nil
	}
	if strings.HasPrefix(trimmed, "[") {
		var rows []WindowRow
		if err := json.Unmarshal(data, &rows); err != nil {
			return nil, fmt.Errorf("telemetry: parsing series array: %w", err)
		}
		return []FoundSeries{{Rows: rows}}, nil
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("telemetry: input is neither a window-series CSV nor JSON: %w", err)
	}
	var found []FoundSeries
	extractSeries(doc, "", &found)
	if len(found) == 0 {
		return nil, fmt.Errorf("telemetry: no \"windows\" series found in document (was the run missing -windows?)")
	}
	return found, nil
}

// extractSeries walks a decoded JSON document depth-first with sorted
// map keys (map iteration order must not leak into output order) and
// collects every "windows" key (any case — study structs emit
// "Windows", CLI rows emit "windows") whose value round-trips into
// []WindowRow.
func extractSeries(v any, path string, out *[]FoundSeries) {
	switch n := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(n))
		for k := range n {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := path + "." + k
			if path == "" {
				p = k
			}
			if strings.EqualFold(k, "windows") {
				if rows, ok := reparseRows(n[k]); ok {
					*out = append(*out, FoundSeries{Path: p, Rows: rows})
					continue
				}
			}
			extractSeries(n[k], p, out)
		}
	case []any:
		for i, e := range n {
			extractSeries(e, fmt.Sprintf("%s[%d]", path, i), out)
		}
	}
}

// reparseRows round-trips a decoded JSON value into window rows.
func reparseRows(v any) ([]WindowRow, bool) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	var rows []WindowRow
	if err := json.Unmarshal(b, &rows); err != nil || len(rows) == 0 {
		return nil, false
	}
	return rows, true
}
