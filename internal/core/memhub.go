package core

import (
	"fmt"

	"duet/internal/cdc"
	"duet/internal/coherence"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/mmu"
	"duet/internal/params"
	"duet/internal/sim"
)

// Hub request/response kinds.
const (
	hkLoad = iota
	hkStore
	hkAmo
)

const (
	hrData = iota
	hrStoreAck
	hrAmo
	hrInv
	hrErr
)

type hubReq struct {
	seq       uint64
	kind      int
	va        uint64
	size      int
	data      []byte
	amoOp     int
	operand   uint64
	operand2  uint64
	parityBad bool
	tx        *sim.TX
}

type hubResp struct {
	kind int
	seq  uint64
	data []byte
	old  uint64
	pa   uint64
	vpn  uint64
}

// MemHub is one Duet Memory Hub (paper §II-B): exception handler, feature
// switches, TLB and Proxy Cache, plus the async FIFOs to the fabric. In
// FPSoC mode the hub's logic runs in the slow clock domain and the
// FPGA-side cache is a CDC-bridged slow cache (the §V-D baseline).
type MemHub struct {
	a    *Adapter
	idx  int
	tile int

	proxy *coherence.PCache
	tlb   *mmu.TLB

	// Feature switches (MMIO-configurable).
	enabled     bool
	fwdInv      bool
	atomics     bool
	virtMode    bool
	killOnFault bool

	in      *cdc.Fifo
	inPush  *cdc.Pusher
	out     *cdc.Fifo
	outPush *cdc.Pusher

	outstanding    int
	maxOutstanding int
	slotCond       *sim.Cond

	tlbCond  *sim.Cond
	faultVA  uint64
	faulting bool

	parityFaults int // fault injection: next n requests arrive corrupted

	port *Port

	// Stats.
	Reqs, Loads, Stores, Amos, Errs, Invs uint64
}

func newMemHub(a *Adapter, idx, tile int, cacheID int) *MemHub {
	h := &MemHub{
		a:              a,
		idx:            idx,
		tile:           tile,
		tlb:            mmu.NewTLB(16),
		maxOutstanding: params.HubOutstanding,
	}
	h.slotCond = sim.NewCond(a.eng)
	h.tlbCond = sim.NewCond(a.eng)

	cfg := coherence.PCacheConfig{
		Name: fmt.Sprintf("adapter%d.hub%d.proxy", a.ID, idx),
		ID:   cacheID, Tile: tile,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: params.L2MSHRs,
		OnLineLost: func(line, vpn uint64) { h.onLineLost(line, vpn) },
	}
	if a.fpsoc {
		// FPSoC organization: the FPGA-side cache participates in
		// coherence from the slow clock domain (Fig. 4 "soft-only").
		cfg.HitCycles = params.SlowCacheTagCycles
		cfg.MissIssueCycles = 1
		cfg.FillCycles = params.SlowCacheProtoCycles
		cfg.FwdCycles = params.SlowCacheFwdCycles
		cfg.MSHRs = 1
		h.proxy = a.dom.NewSlowCache(cfg, a.fabric.Clock())
	} else {
		cfg.Clk = a.fastClk
		cfg.Cat = sim.CatFast
		cfg.HitCycles = params.L2HitCycles
		cfg.MissIssueCycles = params.L2MissIssue
		cfg.FillCycles = params.L2FillCycles
		cfg.FwdCycles = params.ProxyFwdCycles
		h.proxy = a.dom.NewCache(cfg)
		h.in = cdc.NewFifo(a.eng, cfg.Name+".in", a.fabric.Clock(), a.fastClk, params.FifoDepth, a.syncStages)
		h.inPush = cdc.NewPusher(a.eng, h.in)
		h.out = cdc.NewFifo(a.eng, cfg.Name+".out", a.fastClk, a.fabric.Clock(), params.FifoDepth, a.syncStages)
		h.outPush = cdc.NewPusher(a.eng, h.out)
		a.eng.Go(cfg.Name+".serve", h.serve)
	}
	h.port = &Port{hub: h, results: make(map[uint64]*hubResp), cond: sim.NewCond(a.eng)}
	if !a.fpsoc {
		a.eng.Go(cfg.Name+".pump", h.port.pump)
	}
	return h
}

// Proxy exposes the hub's FPGA-side cache (for tests and checkers).
func (h *MemHub) Proxy() *coherence.PCache { return h.proxy }

// TLB exposes the hub's TLB (for the kernel handler via MMIO, and tests).
func (h *MemHub) TLB() *mmu.TLB { return h.tlb }

// Port returns the fabric-side memory interface.
func (h *MemHub) Port() *Port { return h.port }

// Enabled reports the hub's activation state.
func (h *MemHub) Enabled() bool { return h.enabled }

// onLineLost pushes an invalidation into the FPGA-bound stream (without
// waiting for any acknowledgement — the Proxy Cache novelty, §II-C).
func (h *MemHub) onLineLost(line, vpnTag uint64) {
	if !h.fwdInv {
		return
	}
	h.Invs++
	resp := &hubResp{kind: hrInv, pa: line, vpn: vpnTag}
	if h.a.fpsoc {
		// Same-domain delivery: the slow cache and soft cache share the
		// fabric clock.
		if h.port.invSink != nil {
			h.port.invSink(line, vpnTag)
		}
		return
	}
	h.outPush.Push(resp, nil)
}

// serve is the Duet-mode fast-domain service loop.
func (h *MemHub) serve(t *sim.Thread) {
	for {
		v, tx := h.in.PopBlocking(t)
		r := v.(*hubReq)
		before := h.a.eng.Now()
		t.SleepCycles(h.a.fastClk, params.HubIngressCycles)
		tx.Add(sim.CatFast, h.a.eng.Now()-before)
		h.process(t, r, tx)
	}
}

// process validates, translates and issues one request. It may block on a
// TLB fault or on the outstanding-request limit; requests behind it wait
// (in-order hub front end).
func (h *MemHub) process(t *sim.Thread, r *hubReq, tx *sim.TX) {
	if !h.enabled {
		h.Errs++
		h.respond(&hubResp{kind: hrErr, seq: r.seq}, tx)
		return
	}
	if r.parityBad {
		h.a.RaiseException(ErrParity)
		h.Errs++
		h.respond(&hubResp{kind: hrErr, seq: r.seq}, tx)
		return
	}
	h.Reqs++
	pa := r.va
	vpnTag := uint64(0)
	if h.virtMode {
		vpnTag = mmu.VPN(r.va) + 1
		for {
			p, hit := h.tlb.Lookup(r.va)
			if hit {
				pa = p
				break
			}
			// Page fault: interrupt the kernel and wait (paper §II-D).
			h.faultVA = r.va
			h.faulting = true
			h.a.irq.RaiseIRQ(cpu.IRQ{Cause: IRQTLBFault, Info: r.va, Source: h})
			for h.faulting && h.enabled {
				h.tlbCond.Wait(t)
			}
			if !h.enabled {
				h.Errs++
				h.respond(&hubResp{kind: hrErr, seq: r.seq}, tx)
				return
			}
		}
	}
	if r.kind == hkAmo && !h.atomics {
		h.Errs++
		h.respond(&hubResp{kind: hrErr, seq: r.seq}, tx)
		return
	}
	for h.outstanding >= h.maxOutstanding {
		h.slotCond.Wait(t)
	}
	h.outstanding++
	h.issue(r, pa, vpnTag, tx)
}

func (h *MemHub) issue(r *hubReq, pa, vpnTag uint64, tx *sim.TX) {
	release := func() {
		h.outstanding--
		h.slotCond.Broadcast()
	}
	switch r.kind {
	case hkLoad:
		h.Loads++
		h.proxy.LoadAsync(pa, r.size, vpnTag, tx, func(data []byte) {
			release()
			h.respond(&hubResp{kind: hrData, seq: r.seq, data: data}, tx)
		})
	case hkStore:
		h.Stores++
		h.proxy.StoreAsync(pa, r.data, vpnTag, tx, func() {
			release()
			h.respond(&hubResp{kind: hrStoreAck, seq: r.seq}, tx)
		})
	case hkAmo:
		h.Amos++
		h.proxy.AmoAsync(coherence.AmoOp(r.amoOp), pa, r.size, r.operand, r.operand2, tx, func(old uint64) {
			release()
			h.respond(&hubResp{kind: hrAmo, seq: r.seq, old: old}, tx)
		})
	}
}

func (h *MemHub) respond(r *hubResp, tx *sim.TX) {
	if h.a.fpsoc {
		h.port.deliver(r)
		return
	}
	h.outPush.Push(r, tx)
}

// ResolveFault is called (via MMIO or directly by a kernel handler) after
// installing a missing translation; the hub retries the faulting access.
func (h *MemHub) ResolveFault() {
	h.faulting = false
	h.tlbCond.Broadcast()
}

// KillAccelerator is the kernel's response to an invalid access: the hub
// is deactivated and the fault wait is released (paper §II-D: "kills the
// accelerator if the page access is deemed invalid").
func (h *MemHub) KillAccelerator() {
	h.enabled = false
	h.faulting = false
	h.a.RaiseExceptionCode(ErrKilled, false)
	h.tlbCond.Broadcast()
}

// InjectParityFaults corrupts the next n fabric requests (fault-injection
// hook for the exception-containment tests).
func (h *MemHub) InjectParityFaults(n int) { h.parityFaults += n }

// SetMaxOutstanding reconfigures the hub's in-flight request window (the
// Proxy Cache capacity that bounds Fig. 10's bandwidth ceiling); used by
// the ablation benchmarks.
func (h *MemHub) SetMaxOutstanding(n int) {
	if n < 1 {
		n = 1
	}
	h.maxOutstanding = n
	h.slotCond.Broadcast()
}

// deactivate stops accepting eFPGA requests; the Proxy Cache remains
// functional so in-flight coherence completes (paper §II-B).
func (h *MemHub) deactivate() {
	h.enabled = false
	h.tlbCond.Broadcast()
	h.slotCond.Broadcast()
}

// --- fabric-side port (efpga.MemIntf) --------------------------------------

// Port is the fabric-side memory interface of a Memory Hub.
type Port struct {
	hub     *MemHub
	seq     uint64
	results map[uint64]*hubResp
	cond    *sim.Cond
	invSink func(pa, vpn uint64)

	// pendingTX tags the next issued request for latency attribution
	// (synthetic benchmarks only).
	pendingTX *sim.TX
}

// TagNext attributes the next issued request's latency to tx (used by the
// Fig. 9 latency probes).
func (p *Port) TagNext(tx *sim.TX) { p.pendingTX = tx }

var _ efpga.MemIntf = (*Port)(nil)

// pump drains hub responses into the fabric domain in stream order
// (Duet mode only; FPSoC delivers directly).
func (p *Port) pump(t *sim.Thread) {
	for {
		v, _ := p.hub.out.PopBlocking(t)
		p.deliver(v.(*hubResp))
	}
}

func (p *Port) deliver(r *hubResp) {
	if r.kind == hrInv {
		if p.invSink != nil {
			p.invSink(r.pa, r.vpn)
		}
		return
	}
	p.results[r.seq] = r
	p.cond.Broadcast()
}

// SetInvSink registers the soft cache's invalidation listener.
func (p *Port) SetInvSink(fn func(pa, vpn uint64)) { p.invSink = fn }

func (p *Port) nextReq(kind int, va uint64, size int) *hubReq {
	p.seq++
	r := &hubReq{seq: p.seq, kind: kind, va: va, size: size, tx: p.pendingTX}
	p.pendingTX = nil
	if p.hub.parityFaults > 0 {
		p.hub.parityFaults--
		r.parityBad = true
	}
	return r
}

// send issues a request toward the hub; one slow cycle of issue cost.
func (p *Port) send(t *sim.Thread, r *hubReq) {
	t.SleepCycles(p.hub.a.fabric.Clock(), 1)
	if p.hub.a.fpsoc {
		// Direct slow-domain path: translation and cache access run on
		// the caller's thread.
		p.hub.process(t, r, r.tx)
		return
	}
	p.hub.inPush.Push(r, r.tx)
}

// LoadAsync issues a load and returns its handle.
func (p *Port) LoadAsync(t *sim.Thread, va uint64, size int) uint64 {
	r := p.nextReq(hkLoad, va, size)
	p.send(t, r)
	return r.seq
}

// StoreAsync issues a store (<= 8 bytes) and returns its handle.
func (p *Port) StoreAsync(t *sim.Thread, va uint64, data []byte) uint64 {
	if len(data) > params.HubStoreBytes {
		panic(fmt.Sprintf("memhub: store of %d bytes exceeds the %d-byte hub limit", len(data), params.HubStoreBytes))
	}
	r := p.nextReq(hkStore, va, len(data))
	r.data = append([]byte(nil), data...)
	p.send(t, r)
	return r.seq
}

// Await blocks until the handle completes, returning data (loads) or nil.
func (p *Port) Await(t *sim.Thread, handle uint64) ([]byte, error) {
	for p.results[handle] == nil {
		p.cond.Wait(t)
	}
	r := p.results[handle]
	delete(p.results, handle)
	if r.kind == hrErr {
		return nil, fmt.Errorf("memhub: request failed (hub deactivated or access killed)")
	}
	if r.kind == hrAmo {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(r.old >> (8 * i))
		}
		return b, nil
	}
	return r.data, nil
}

// Load performs a blocking load of size bytes at va.
func (p *Port) Load(t *sim.Thread, va uint64, size int) ([]byte, error) {
	return p.Await(t, p.LoadAsync(t, va, size))
}

// LoadLine performs a blocking 16-byte line load.
func (p *Port) LoadLine(t *sim.Thread, va uint64) ([]byte, error) {
	return p.Load(t, va&^uint64(params.LineBytes-1), params.LineBytes)
}

// Store performs a blocking store.
func (p *Port) Store(t *sim.Thread, va uint64, data []byte) error {
	_, err := p.Await(t, p.StoreAsync(t, va, data))
	return err
}

// Amo performs a blocking atomic; op is a coherence.AmoOp value.
func (p *Port) Amo(t *sim.Thread, op int, va uint64, size int, operand, operand2 uint64) (uint64, error) {
	r := p.nextReq(hkAmo, va, size)
	r.amoOp = op
	r.operand, r.operand2 = operand, operand2
	p.send(t, r)
	b, err := p.Await(t, r.seq)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
