package core

import (
	"duet/internal/params"
)

// fpgaMgr is the FPGA Manager (paper §II-E): programming engine with
// integrity checks, programmable clock generator, and status/exception
// registers.
type fpgaMgr struct {
	a      *Adapter
	status uint64
	clkKHz uint64
}

func newFPGAMgr(a *Adapter) *fpgaMgr {
	return &fpgaMgr{a: a, status: StatusIdle, clkKHz: uint64(a.fabric.Clock().FreqMHz() * 1000)}
}

func (m *fpgaMgr) access(op *inflight, off uint64, write bool, val uint64) {
	a := m.a
	switch off {
	case RegCtrl:
		if write {
			if val&1 != 0 { // clear error
				a.ClearError()
				if m.status == StatusError {
					m.status = StatusIdle
				}
			}
			if val&2 != 0 { // reset accelerator: re-instantiate from the image
				if bs := a.fabric.Current(); bs != nil {
					if err := a.fabric.Configure(bs); err == nil {
						a.startAccel()
					}
				}
			}
		}
		a.afterFast(1, op.tx, func() { a.complete(op, 0, false) })
	case RegClkKHz:
		if write {
			m.clkKHz = val
			a.fabric.SetFreqMHz(float64(val) / 1000.0)
		}
		a.afterFast(1, op.tx, func() { a.complete(op, m.clkKHz, false) })
	case RegProgram:
		if !write {
			a.complete(op, 0, true)
			return
		}
		m.program(op, int(val))
	case RegStatus:
		a.afterFast(1, op.tx, func() { a.complete(op, m.status|a.errCode<<8, false) })
	case RegTimeout:
		if write {
			a.timeoutCycles = int64(val)
		}
		a.afterFast(1, op.tx, func() { a.complete(op, uint64(a.timeoutCycles), false) })
	default:
		a.complete(op, 0, true)
	}
}

// program runs the programming engine: it requires all Memory Hubs to be
// deactivated (paper §II-B), streams the configuration image into the
// configuration memory, verifies its integrity, and starts the
// accelerator on success.
func (m *fpgaMgr) program(op *inflight, bitstreamID int) {
	a := m.a
	for _, h := range a.hubs {
		if h.enabled {
			m.status = StatusError
			a.RaiseExceptionCode(ErrProgram, false)
			a.complete(op, 0, true)
			return
		}
	}
	bs, err := a.fabric.BitstreamByID(bitstreamID)
	if err != nil {
		m.status = StatusError
		a.RaiseExceptionCode(ErrProgram, false)
		a.complete(op, 0, true)
		return
	}
	m.status = StatusProgramming
	// The MMIO write completes immediately; programming proceeds in the
	// background (software polls RegStatus).
	a.afterFast(1, op.tx, func() { a.complete(op, 0, false) })

	// Stream the image at one configuration word (16B) per fast cycle.
	cycles := int64(len(bs.Image)+params.LineBytes-1) / params.LineBytes
	a.eng.After(a.fastClk.Cycles(cycles), func() {
		if err := a.fabric.Configure(bs); err != nil {
			m.status = StatusError
			a.RaiseExceptionCode(ErrProgram, false)
			return
		}
		m.status = StatusReady
		a.startAccel()
	})
}
