package core

import (
	"fmt"

	"duet/internal/efpga"
	"duet/internal/params"
)

// fpgaMgr is the FPGA Manager (paper §II-E): programming engine with
// integrity checks, programmable clock generator, and status/exception
// registers.
type fpgaMgr struct {
	a      *Adapter
	status uint64
	clkKHz uint64
}

func newFPGAMgr(a *Adapter) *fpgaMgr {
	return &fpgaMgr{a: a, status: StatusIdle, clkKHz: uint64(a.fabric.Clock().FreqMHz() * 1000)}
}

func (m *fpgaMgr) access(op *inflight, off uint64, write bool, val uint64) {
	a := m.a
	switch off {
	case RegCtrl:
		if write {
			if val&1 != 0 { // clear error
				a.ClearError()
				if m.status == StatusError {
					m.status = StatusIdle
				}
			}
			if val&2 != 0 { // reset accelerator: re-instantiate from the image
				if bs := a.fabric.Current(); bs != nil {
					if err := a.fabric.Configure(bs); err == nil {
						a.startAccel()
					}
				}
			}
		}
		a.afterFast(1, op.tx, func() { a.complete(op, 0, false) })
	case RegClkKHz:
		if write {
			m.clkKHz = val
			a.fabric.SetFreqMHz(float64(val) / 1000.0)
		}
		a.afterFast(1, op.tx, func() { a.complete(op, m.clkKHz, false) })
	case RegProgram:
		if !write {
			a.complete(op, 0, true)
			return
		}
		m.program(op, int(val))
	case RegStatus:
		a.afterFast(1, op.tx, func() { a.complete(op, m.status|a.errCode<<8, false) })
	case RegTimeout:
		if write {
			a.timeoutCycles = int64(val)
		}
		a.afterFast(1, op.tx, func() { a.complete(op, uint64(a.timeoutCycles), false) })
	default:
		a.complete(op, 0, true)
	}
}

// checkPreconditions validates the programming preconditions: all Memory
// Hubs deactivated (paper §II-B) and a registered bitstream id. On
// violation it latches the error state and returns a non-nil error.
func (m *fpgaMgr) checkPreconditions(bitstreamID int) (*efpga.Bitstream, error) {
	a := m.a
	if m.status == StatusProgramming {
		// A stream is in flight (possibly started by the other entry
		// point — MMIO RegProgram vs ProgramAsync). Reject without
		// disturbing its status.
		return nil, fmt.Errorf("core: programming engine busy")
	}
	for _, h := range a.hubs {
		if h.enabled {
			m.status = StatusError
			a.RaiseExceptionCode(ErrProgram, false)
			return nil, fmt.Errorf("core: programming requires all memory hubs deactivated")
		}
	}
	bs, err := a.fabric.BitstreamByID(bitstreamID)
	if err != nil {
		m.status = StatusError
		a.RaiseExceptionCode(ErrProgram, false)
		return nil, err
	}
	return bs, nil
}

// stream runs the programming engine proper: it streams the configuration
// image into the configuration memory at one configuration word (16B) per
// fast cycle, verifies its integrity, and starts the accelerator on
// success. done is invoked exactly once — with nil after the accelerator
// has (re)started, or with the configuration error.
func (m *fpgaMgr) stream(bs *efpga.Bitstream, done func(error)) {
	a := m.a
	m.status = StatusProgramming
	cycles := int64(len(bs.Image)+params.LineBytes-1) / params.LineBytes
	a.eng.After(a.fastClk.Cycles(cycles), func() {
		if err := a.fabric.Configure(bs); err != nil {
			m.status = StatusError
			a.RaiseExceptionCode(ErrProgram, false)
			done(err)
			return
		}
		m.status = StatusReady
		a.startAccel()
		done(nil)
	})
}

// program runs the MMIO flow of the programming engine.
func (m *fpgaMgr) program(op *inflight, bitstreamID int) {
	a := m.a
	bs, err := m.checkPreconditions(bitstreamID)
	if err != nil {
		a.complete(op, 0, true)
		return
	}
	// The MMIO write completes immediately; programming proceeds in the
	// background (software polls RegStatus).
	a.afterFast(1, op.tx, func() { a.complete(op, 0, false) })
	m.stream(bs, func(error) {})
}

// ProgramAsync drives the programming engine without an MMIO requester —
// the scheduler's path. Preconditions and streaming cost are identical to
// the RegProgram flow; done fires with nil once the accelerator has
// restarted (the startAccel completion notification) or with the error.
func (a *Adapter) ProgramAsync(bitstreamID int, done func(error)) {
	bs, err := a.mgr.checkPreconditions(bitstreamID)
	if err != nil {
		done(err)
		return
	}
	a.mgr.stream(bs, done)
}
