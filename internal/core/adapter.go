// Package core implements the paper's primary contribution: the Duet
// Adapter (paper §II), which integrates embedded FPGAs as first-class,
// cache-coherent citizens on the NoC. Each adapter comprises one Control
// Hub (FPGA manager + Soft Register Interface with Shadow Registers) and
// one or more Memory Hubs (exception handler, feature switches, TLB, and
// Proxy Cache).
//
// The same package also builds the FPSoC baseline of §V-D by re-clocking
// the FPGA-side cache into the slow domain and downgrading all shadow
// registers to normal registers.
package core

import (
	"fmt"

	"duet/internal/coherence"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/mmio"
	"duet/internal/mmu"
	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sim"
)

// Error codes latched by the exception handler.
const (
	ErrNone    uint64 = 0
	ErrTimeout uint64 = 1
	ErrParity  uint64 = 2
	ErrKilled  uint64 = 3
	ErrProgram uint64 = 4
)

// IRQTLBFault is the cause string of Memory Hub page-fault interrupts.
const IRQTLBFault = "duet-tlb-fault"

// MMIO address map (offsets from the adapter's base address).
const (
	// AdapterStride separates the MMIO windows of successive adapters.
	AdapterStride uint64 = 1 << 24

	// FPGA manager registers.
	RegCtrl    uint64 = 0x00 // write: bit0 clear error, bit1 reset accelerator
	RegClkKHz  uint64 = 0x08 // write: eFPGA clock frequency in kHz
	RegProgram uint64 = 0x10 // write: bitstream id -> start programming
	RegStatus  uint64 = 0x18 // read: status | errCode<<8
	RegTimeout uint64 = 0x20 // write: watchdog limit in fast cycles

	// Feature switches, per hub: base + hub*0x100 + switch offset.
	switchBase   uint64 = 0x1000
	switchStride uint64 = 0x100
	SwEnable     uint64 = 0x00
	SwFwdInv     uint64 = 0x08
	SwAtomics    uint64 = 0x10
	SwVirtMode   uint64 = 0x18
	SwWriteAlloc uint64 = 0x20

	// TLB management window, per hub: base + hub*0x100 + offset.
	tlbBase    uint64 = 0x4000
	TLBVPN     uint64 = 0x00 // write: staging VPN
	TLBPPN     uint64 = 0x08 // write: staging PPN
	TLBInstall uint64 = 0x10 // write: install staged mapping + resume
	TLBKill    uint64 = 0x18 // write: kill the faulting accelerator
	TLBFaultVA uint64 = 0x20 // read: faulting virtual address
	TLBFlush   uint64 = 0x28 // write: flush the hub TLB

	// Soft registers: base + softRegBase + i*8.
	softRegBase uint64 = 0x8000
)

// Programming engine status values (low byte of RegStatus).
const (
	StatusIdle uint64 = iota
	StatusProgramming
	StatusReady
	StatusError
)

// AdapterConfig configures one Duet Adapter.
type AdapterConfig struct {
	ID       int
	CtrlTile int   // C-tile: control hub (+ hub 0 when HubTiles[0] == CtrlTile)
	HubTiles []int // one Memory Hub per entry (may be empty: M0 instances)
	// CacheIDBase assigns the proxy caches' globally unique IDs
	// (CacheIDBase + hub index).
	CacheIDBase int
	RegSpecs    []SoftRegSpec
	// FPSoC selects the baseline organization of §V-D.
	FPSoC bool
	// IRQ receives TLB-fault interrupts (normally core 0).
	IRQ IRQSink
	// SyncStages sets the synchronizer depth of this adapter's CDC FIFOs
	// (ablation knob; 0 selects the paper's design point,
	// params.SyncStages = 2). Per-adapter so concurrent systems can sweep
	// it independently — never a package-level override.
	SyncStages int
}

// IRQSink receives interrupts raised by the adapter.
type IRQSink interface {
	RaiseIRQ(irq cpu.IRQ)
}

// inflight is one MMIO operation moving through the control hub. Soft
// register accesses participate in the ordering engine: responses to the
// same source are released strictly in arrival order (paper Fig. 6c), so
// a shadowed access behind a pending normal access stalls. Blocked
// CPU-bound FIFO reads are data-dependent waits, not pending endpoint
// operations: once parked they stop gating later operations (otherwise a
// kernel trap handler could never service the device the read waits on).
type inflight struct {
	req       *mmio.Req
	tx        *sim.TX
	done      bool
	sent      bool
	queued    bool // participates in the per-source ordering queue
	dequeued  bool // removed from the queue while parked; respond directly
	data      uint64
	err       bool
	stash     uint64 // stalled FPGA-bound FIFO write payload
	normalSeq uint64
	parked    bool // blocked on accelerator data (CPU-bound FIFO read)
}

// Adapter is one Duet Adapter instance.
type Adapter struct {
	ID     int
	eng    *sim.Engine
	mesh   *noc.Mesh
	dom    *coherence.Domain
	fabric *efpga.Fabric

	fastClk    *sim.Clock
	ctrlTile   int
	base       uint64
	fpsoc      bool
	syncStages int

	hubs []*MemHub
	regs *regFile
	mgr  *fpgaMgr
	irq  IRQSink

	ctrlEnabled   bool
	errCode       uint64
	timeoutCycles int64

	// Ordering engine state (per requesting source tile, soft register
	// accesses only).
	queues        map[int][]*inflight
	intakeFree    sim.Time
	seqCtr        uint64
	pendingNormal map[uint64]*inflight

	// decodeFn is the one decode callback for the whole adapter; onMMIO
	// schedules it with the in-flight op as the event argument, so the
	// per-operation intake path allocates no closure.
	decodeFn func(any)

	// TLB window staging registers, per hub.
	stageVPN []uint64
	stagePPN []uint64

	// OnAccelStart, when set, is invoked each time the configured
	// accelerator is (re)started: after the programming engine completes
	// (both the MMIO RegProgram flow and ProgramAsync), after a
	// control-register reset, and on StartAccelerator. It is the
	// adapter-wide start notification; ProgramAsync's done callback fires
	// right after the same instant for that one flow.
	OnAccelStart func(bs *efpga.Bitstream)

	// Stats.
	MMIOOps, Timeouts, Exceptions uint64
}

// NewAdapter builds and wires a Duet Adapter.
func NewAdapter(eng *sim.Engine, mesh *noc.Mesh, dom *coherence.Domain, fabric *efpga.Fabric, cfg AdapterConfig) *Adapter {
	a := &Adapter{
		ID:            cfg.ID,
		eng:           eng,
		mesh:          mesh,
		dom:           dom,
		fabric:        fabric,
		fastClk:       mesh.Clock(),
		ctrlTile:      cfg.CtrlTile,
		base:          BaseAddr(cfg.ID),
		fpsoc:         cfg.FPSoC,
		syncStages:    cfg.SyncStages,
		irq:           cfg.IRQ,
		ctrlEnabled:   true,
		timeoutCycles: params.DefaultTimeoutCycles,
		queues:        make(map[int][]*inflight),
		pendingNormal: make(map[uint64]*inflight),
	}
	if a.syncStages <= 0 {
		a.syncStages = params.SyncStages
	}
	a.decodeFn = func(x any) { a.decode(x.(*inflight)) }
	for i, tile := range cfg.HubTiles {
		a.hubs = append(a.hubs, newMemHub(a, i, tile, cfg.CacheIDBase+i))
	}
	a.stageVPN = make([]uint64, len(a.hubs))
	a.stagePPN = make([]uint64, len(a.hubs))
	specs := cfg.RegSpecs
	if len(specs) == 0 {
		specs = []SoftRegSpec{{Kind: RegNormal}}
	}
	a.regs = newRegFile(a, specs, cfg.FPSoC)
	a.mgr = newFPGAMgr(a)
	mesh.Register(cfg.CtrlTile, noc.VNMMIOReq, a.onMMIO)
	return a
}

// BaseAddr returns the MMIO base address of adapter id.
func BaseAddr(id int) uint64 { return params.MMIOBase + uint64(id)*AdapterStride }

// Owns reports whether addr falls in this adapter's MMIO window.
func (a *Adapter) Owns(addr uint64) bool {
	return addr >= a.base && addr < a.base+AdapterStride
}

// Hub returns memory hub i.
func (a *Adapter) Hub(i int) *MemHub { return a.hubs[i] }

// Hubs returns all memory hubs.
func (a *Adapter) Hubs() []*MemHub { return a.hubs }

// Regs returns the soft register file (the accelerator-side interface).
func (a *Adapter) Regs() efpga.RegIntf { return a.regs }

// Fabric returns the attached eFPGA.
func (a *Adapter) Fabric() *efpga.Fabric { return a.fabric }

// ErrCode reports the latched exception code.
func (a *Adapter) ErrCode() uint64 { return a.errCode }

// CtrlTile reports the control hub's NoC tile.
func (a *Adapter) CtrlTile() int { return a.ctrlTile }

func (a *Adapter) nextSeq() uint64 {
	a.seqCtr++
	return a.seqCtr
}

// afterFast runs fn after n fast cycles, attributing latency to tx.
func (a *Adapter) afterFast(n int64, tx *sim.TX, fn func()) {
	now := a.eng.Now()
	at := a.fastClk.EdgesAfter(now, n)
	tx.Add(sim.CatFast, at-now)
	a.eng.At(at, fn)
}

// --- MMIO front end and ordering engine ------------------------------------

func (a *Adapter) onMMIO(m *noc.Msg) {
	req := m.Payload.(*mmio.Req)
	a.MMIOOps++
	op := &inflight{req: req, tx: m.TX}
	// Serialized intake: the control hub decodes one operation per cycle.
	start := a.fastClk.NextEdge(a.eng.Now())
	if start < a.intakeFree {
		start = a.intakeFree
	}
	a.intakeFree = start + a.fastClk.Cycles(params.CtrlHubDecode)
	dt := a.intakeFree - a.eng.Now()
	m.TX.Add(sim.CatFast, dt)
	a.eng.AtArg(a.intakeFree, a.decodeFn, op)
}

func (a *Adapter) decode(op *inflight) {
	if !a.ctrlEnabled {
		// Deactivated control hub: bogus data, system not halted (§II-E).
		a.complete(op, 0xdead, true)
		return
	}
	off := op.req.Addr - a.base
	write := op.req.Write
	val := op.req.Data
	switch {
	case off < switchBase:
		a.mgr.access(op, off, write, val)
	case off >= switchBase && off < tlbBase:
		hub := int((off - switchBase) / switchStride)
		a.switchAccess(op, hub, (off-switchBase)%switchStride, write, val)
	case off >= tlbBase && off < softRegBase:
		hub := int((off - tlbBase) / switchStride)
		a.tlbAccess(op, hub, (off-tlbBase)%switchStride, write, val)
	default:
		// Soft register accesses enter the per-source ordering queue.
		op.queued = true
		a.queues[op.req.SrcTile] = append(a.queues[op.req.SrcTile], op)
		reg := int((off - softRegBase) / 8)
		a.regs.cpuAccess(op, reg, write, val, op.tx)
		a.drain(op.req.SrcTile)
	}
}

// park marks an op as blocked on accelerator data; it stops gating later
// same-source operations.
func (a *Adapter) park(op *inflight) {
	op.parked = true
	a.drain(op.req.SrcTile)
}

func (a *Adapter) switchAccess(op *inflight, hub int, sw uint64, write bool, val uint64) {
	if hub >= len(a.hubs) {
		a.complete(op, 0, true)
		return
	}
	h := a.hubs[hub]
	get := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	var cur uint64
	switch sw {
	case SwEnable:
		if write {
			if val != 0 {
				h.enabled = true
			} else {
				h.deactivate()
			}
		}
		cur = get(h.enabled)
	case SwFwdInv:
		if write {
			h.fwdInv = val != 0
		}
		cur = get(h.fwdInv)
	case SwAtomics:
		if write {
			h.atomics = val != 0
		}
		cur = get(h.atomics)
	case SwVirtMode:
		if write {
			h.virtMode = val != 0
		}
		cur = get(h.virtMode)
	case SwWriteAlloc:
		// Write-allocate is the default; 0 selects write-no-allocate.
		if write {
			h.proxy.SetWriteNoAllocate(val == 0)
		}
		cur = get(!h.proxy.WriteNoAllocate())
	default:
		a.complete(op, 0, true)
		return
	}
	a.afterFast(1, op.tx, func() { a.complete(op, cur, false) })
}

func (a *Adapter) tlbAccess(op *inflight, hub int, off uint64, write bool, val uint64) {
	if hub >= len(a.hubs) {
		a.complete(op, 0, true)
		return
	}
	h := a.hubs[hub]
	var out uint64
	switch off {
	case TLBVPN:
		if write {
			a.stageVPN[hub] = val
		}
		out = a.stageVPN[hub]
	case TLBPPN:
		if write {
			a.stagePPN[hub] = val
		}
		out = a.stagePPN[hub]
	case TLBInstall:
		if write {
			h.tlb.Insert(a.stageVPN[hub], a.stagePPN[hub])
			h.ResolveFault()
		}
	case TLBKill:
		if write {
			h.KillAccelerator()
		}
	case TLBFaultVA:
		out = h.faultVA
	case TLBFlush:
		if write {
			h.tlb.Flush()
		}
	default:
		a.complete(op, 0, true)
		return
	}
	a.afterFast(params.TLBLookupCycles, op.tx, func() { a.complete(op, out, false) })
}

// complete marks an operation finished. Soft register responses to one
// source are released strictly in that source's arrival order; other
// device registers (manager, switches, TLB window) respond directly.
func (a *Adapter) complete(op *inflight, data uint64, err bool) {
	if op.done {
		return // already timed out
	}
	op.done = true
	op.data = data
	op.err = err
	if !op.queued || op.dequeued {
		a.send(op)
		return
	}
	a.drain(op.req.SrcTile)
}

func (a *Adapter) drain(src int) {
	q := a.queues[src]
	for len(q) > 0 {
		op := q[0]
		if op.done {
			q = q[1:]
			a.send(op)
			continue
		}
		if op.parked {
			// Data-blocked read: respond later, directly.
			op.dequeued = true
			q = q[1:]
			continue
		}
		break
	}
	a.queues[src] = q
}

func (a *Adapter) send(op *inflight) {
	if op.sent {
		return
	}
	op.sent = true
	resp := &mmio.Resp{SeqID: op.req.SeqID, Data: op.data, Err: op.err}
	a.mesh.Send(&noc.Msg{
		Src: a.ctrlTile, Dst: op.req.SrcTile, VN: noc.VNMMIOResp,
		Bytes: mmio.RespBytes, Payload: resp, TX: op.tx,
	})
}

// watchdog arms the exception handler's timeout for a pending operation.
// On expiry the exception is raised and the stalled operation completes
// with bogus data so the processor is not halted (paper §II-E).
func (a *Adapter) watchdog(op *inflight) {
	limit := a.timeoutCycles
	a.eng.After(a.fastClk.Cycles(limit), func() {
		if op.done {
			return
		}
		a.Timeouts++
		a.RaiseException(ErrTimeout)
		if op.normalSeq != 0 {
			delete(a.pendingNormal, op.normalSeq)
		}
		a.complete(op, 0xdead, true)
	})
}

// RaiseException latches an error code and deactivates all Memory Hubs in
// the adapter (paper §II-B); pending MMIO operations complete with bogus
// data so the system is not halted.
func (a *Adapter) RaiseException(code uint64) {
	a.RaiseExceptionCode(code, true)
}

// RaiseExceptionCode optionally skips hub deactivation (used by
// KillAccelerator, which deactivates only the faulting hub).
func (a *Adapter) RaiseExceptionCode(code uint64, deactivateHubs bool) {
	a.Exceptions++
	if a.errCode == ErrNone {
		a.errCode = code
	}
	if deactivateHubs {
		for _, h := range a.hubs {
			h.deactivate()
		}
	}
	// In-flight MMIO operations are left to complete normally (or via
	// their own watchdogs): the exception only stops the eFPGA-facing
	// paths, it never halts the processors.
}

// ClearError resets the latched error code (hubs must be re-enabled
// individually through their feature switches).
func (a *Adapter) ClearError() { a.errCode = ErrNone }

// startAccel instantiates a fresh environment and starts the configured
// accelerator.
func (a *Adapter) startAccel() {
	acc := a.fabric.Accel()
	if acc == nil {
		return
	}
	env := &efpga.Env{
		Eng:     a.eng,
		Clk:     a.fabric.Clock(),
		Scratch: a.fabric.Scratch,
		Regs:    a.regs,
	}
	for _, h := range a.hubs {
		env.Mem = append(env.Mem, h.port)
	}
	acc.Start(env)
	if a.OnAccelStart != nil {
		a.OnAccelStart(a.fabric.Current())
	}
}

// Resident reports the bitstream currently configured on the attached
// fabric (nil if unprogrammed) — the scheduler's residency query.
func (a *Adapter) Resident() *efpga.Bitstream { return a.fabric.Current() }

// FastClock returns the adapter's fast-domain clock.
func (a *Adapter) FastClock() *sim.Clock { return a.fastClk }

// QuiesceHubs deactivates every Memory Hub — the driver-side precondition
// of the programming engine (paper §II-B) — and returns a bitmask of the
// hubs that were enabled, suitable for a faithful ResumeHubs restore.
// In-flight coherence completes; new fabric requests fail until resumed.
func (a *Adapter) QuiesceHubs() uint64 {
	var mask uint64
	for i, h := range a.hubs {
		if h.enabled {
			mask |= 1 << i
		}
		h.deactivate()
	}
	return mask
}

// ResumeHubs sets each Memory Hub's enable switch to the corresponding
// mask bit (bits past the hub count are ignored); all other feature
// switches keep their previously programmed values. Pass the mask
// QuiesceHubs returned to restore the pre-quiesce state, or an all-ones
// mask to grant every hub.
func (a *Adapter) ResumeHubs(mask uint64) {
	for i, h := range a.hubs {
		if mask&(1<<i) != 0 {
			h.enabled = true
		} else {
			// Disable through deactivate so threads parked on the hub's
			// conditions are woken to observe the change, matching every
			// other disable path.
			h.deactivate()
		}
	}
}

// StartAccelerator is the test/app-facing way to start a directly
// configured accelerator (bypassing the MMIO programming engine).
func (a *Adapter) StartAccelerator() { a.startAccel() }

// --- MMU kernel-handler helper ---------------------------------------------

// KernelTLBHandler returns an IRQ handler that resolves Memory Hub page
// faults against the given page table over MMIO (the paper's kernel-level
// interrupt handler, §II-D). Unmapped addresses kill the accelerator.
func (a *Adapter) KernelTLBHandler(pt *mmu.PageTable) func(p cpu.Proc, irq cpu.IRQ) {
	return func(p cpu.Proc, irq cpu.IRQ) {
		if irq.Cause != IRQTLBFault {
			return
		}
		hub, ok := irq.Source.(*MemHub)
		if !ok || hub.a != a {
			return // another adapter's fault
		}
		idx := uint64(hub.idx)
		va := irq.Info
		ppn, mapped := pt.Lookup(mmu.VPN(va))
		base := a.base + tlbBase + idx*switchStride
		if !mapped {
			p.MMIOWrite64(base+TLBKill, 1)
			return
		}
		p.MMIOWrite64(base+TLBVPN, mmu.VPN(va))
		p.MMIOWrite64(base+TLBPPN, ppn)
		p.MMIOWrite64(base+TLBInstall, 1)
	}
}

var _ = fmt.Sprintf // keep fmt for debug builds
