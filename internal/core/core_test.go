// Tests for the Duet Adapter's driver-facing contracts: the programming
// engine's busy guard across its two entry points (MMIO RegProgram and
// ProgramAsync), the Memory Hub quiesce/resume mask semantics the
// scheduler's reprogramming flow leans on, residency tracking across
// reprograms, and the wedged outcome of the bounded programming poll.
// The package is exercised through a built System, as a driver would.
package core_test

import (
	"strings"
	"testing"

	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// inert is an accelerator that spawns nothing.
type inert struct{}

func (inert) Start(*efpga.Env) {}

// slowBitstream hand-builds a bitstream whose configuration image streams
// for about bytes/16 fast cycles — long enough to observe the engine
// mid-flight.
func slowBitstream(name string, bytes int) *efpga.Bitstream {
	bs := &efpga.Bitstream{
		Name:    name,
		Image:   make([]byte, bytes),
		Factory: func() efpga.Accelerator { return inert{} },
	}
	bs.CRC = bs.Checksum()
	return bs
}

func quickBitstream(name string) *efpga.Bitstream {
	return efpga.Synthesize(efpga.Design{Name: name, LUTLogic: 20, PipelineDepth: 2},
		func() efpga.Accelerator { return inert{} })
}

// TestRegProgramRejectedWhileProgramAsyncStreams: the MMIO RegProgram
// flow must bounce off an in-flight ProgramAsync stream without
// disturbing it — the busy guard seen from the MMIO side.
func TestRegProgramRejectedWhileProgramAsyncStreams(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, Style: duet.StyleDuet})
	big := slowBitstream("big", 1<<20)
	small := quickBitstream("small")
	bigID := sys.Fabric.MustRegister(big)
	smallID := sys.Fabric.MustRegister(small)

	var asyncErr error
	asyncDone := false
	sys.Adapter.ProgramAsync(bigID, func(err error) { asyncDone = true; asyncErr = err })

	var midStatus uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		// Lands while the big image is still streaming (~65k fast cycles).
		p.MMIOWrite64(duet.MgrRegAddr(core.RegProgram), uint64(smallID))
		midStatus = p.MMIORead64(duet.MgrRegAddr(core.RegStatus)) & 0xff
	})
	sys.Run()

	if midStatus != core.StatusProgramming {
		t.Fatalf("status during stream = %d, want programming (%d)", midStatus, core.StatusProgramming)
	}
	if !asyncDone || asyncErr != nil {
		t.Fatalf("first flow: done=%v err=%v", asyncDone, asyncErr)
	}
	if cur := sys.Fabric.Current(); cur != big {
		t.Fatalf("resident = %v, want %q (rejected RegProgram must not steal the engine)", cur, big.Name)
	}
}

// TestProgramAsyncRejectedWhileRegProgramStreams: the busy guard seen
// from the other side — ProgramAsync must fail fast while the MMIO flow
// owns the engine, and report the busy error through its callback.
func TestProgramAsyncRejectedWhileRegProgramStreams(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, Style: duet.StyleDuet})
	big := slowBitstream("big", 1<<20)
	small := quickBitstream("small")
	bigID := sys.Fabric.MustRegister(big)
	smallID := sys.Fabric.MustRegister(small)

	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(duet.MgrRegAddr(core.RegProgram), uint64(bigID))
	})
	var asyncErr error
	asyncCalled := false
	// 1us: past the MMIO round trip that starts the stream, well before
	// the ~megabyte image finishes streaming.
	sys.Eng.After(1*sim.US, func() {
		sys.Adapter.ProgramAsync(smallID, func(err error) { asyncCalled = true; asyncErr = err })
	})
	sys.Run()

	if !asyncCalled || asyncErr == nil {
		t.Fatalf("concurrent ProgramAsync: called=%v err=%v, want busy rejection", asyncCalled, asyncErr)
	}
	if !strings.Contains(asyncErr.Error(), "busy") {
		t.Fatalf("rejection error = %v, want engine-busy", asyncErr)
	}
	if cur := sys.Fabric.Current(); cur != big {
		t.Fatalf("resident = %v, want %q", cur, big.Name)
	}
}

// TestProgramAsyncRequiresQuiescedHubs: an enabled Memory Hub must fail
// the preconditions (paper §II-B), latch ErrProgram, and leave the
// engine reusable after ClearError + quiesce.
func TestProgramAsyncRequiresQuiescedHubs(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 2, Style: duet.StyleDuet})
	bs := quickBitstream("guarded")
	id := sys.Fabric.MustRegister(bs)

	sys.Adapter.ResumeHubs(1 << 1) // hub 1 enabled: preconditions violated
	var err1 error
	sys.Adapter.ProgramAsync(id, func(err error) { err1 = err })
	if err1 == nil {
		t.Fatal("programming succeeded with an enabled memory hub")
	}
	if code := sys.Adapter.ErrCode(); code != core.ErrProgram {
		t.Fatalf("latched error = %d, want ErrProgram (%d)", code, core.ErrProgram)
	}

	sys.Adapter.ClearError()
	sys.Adapter.QuiesceHubs()
	var err2 error
	sys.Adapter.ProgramAsync(id, func(err error) { err2 = err })
	sys.Run()
	if err2 != nil {
		t.Fatalf("programming after quiesce failed: %v", err2)
	}
	if sys.Fabric.Current() != bs {
		t.Fatal("bitstream not configured after recovery")
	}
}

// TestQuiesceResumeMaskSemantics: QuiesceHubs returns exactly the set of
// previously enabled hubs; ResumeHubs applies its mask bit-for-bit,
// ignores bits past the hub count, and a double quiesce reports nothing
// enabled.
func TestQuiesceResumeMaskSemantics(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 3, Style: duet.StyleDuet})
	ad := sys.Adapter
	enabled := func() (m uint64) {
		for i, h := range ad.Hubs() {
			if h.Enabled() {
				m |= 1 << i
			}
		}
		return m
	}

	if got := ad.QuiesceHubs(); got != 0 {
		t.Fatalf("quiesce of untouched adapter = %#b, want 0", got)
	}

	// Enable hubs 0 and 2 the way a driver would, over MMIO.
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		duet.EnableHub(p, 0, false, false, false)
		duet.EnableHub(p, 2, true, true, false)
	})
	sys.Run()
	if got := enabled(); got != 0b101 {
		t.Fatalf("enabled after MMIO = %#b, want 0b101", got)
	}

	saved := ad.QuiesceHubs()
	if saved != 0b101 {
		t.Fatalf("quiesce mask = %#b, want 0b101", saved)
	}
	if got := enabled(); got != 0 {
		t.Fatalf("hubs still enabled after quiesce: %#b", got)
	}
	if again := ad.QuiesceHubs(); again != 0 {
		t.Fatalf("double quiesce = %#b, want 0", again)
	}

	// Faithful restore, with garbage bits past the hub count ignored.
	ad.ResumeHubs(saved | 1<<63 | 1<<7)
	if got := enabled(); got != 0b101 {
		t.Fatalf("restore = %#b, want 0b101", got)
	}
	// A partial mask disables what it omits.
	ad.ResumeHubs(0b010)
	if got := enabled(); got != 0b010 {
		t.Fatalf("partial resume = %#b, want 0b010", got)
	}
	// The scheduler's grant-everything mask.
	ad.ResumeHubs(^uint64(0))
	if got := enabled(); got != 0b111 {
		t.Fatalf("resume all = %#b, want 0b111", got)
	}
	ad.ResumeHubs(0)
	if got := enabled(); got != 0 {
		t.Fatalf("resume none = %#b, want 0", got)
	}
}

// TestResidentTracksReprogramming: Resident reports nil before any
// configuration and follows the installed bitstream across ProgramAsync
// reprograms — the query the scheduler's reuse-aware placement trusts.
func TestResidentTracksReprogramming(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, Style: duet.StyleDuet})
	a := quickBitstream("appA")
	b := quickBitstream("appB")
	idA := sys.Fabric.MustRegister(a)
	idB := sys.Fabric.MustRegister(b)

	if got := sys.Adapter.Resident(); got != nil {
		t.Fatalf("resident before configuration = %v, want nil", got)
	}
	sys.Adapter.ProgramAsync(idA, func(err error) {
		if err != nil {
			t.Errorf("program appA: %v", err)
		}
	})
	sys.Run()
	if got := sys.Adapter.Resident(); got != a {
		t.Fatalf("resident = %v, want appA", got)
	}
	sys.Adapter.ProgramAsync(idB, func(err error) {
		if err != nil {
			t.Errorf("reprogram appB: %v", err)
		}
	})
	sys.Run()
	if got := sys.Adapter.Resident(); got != b {
		t.Fatalf("resident after reprogram = %v, want appB", got)
	}
}

// TestBoundedPollReportsWedged: a glacial configuration image keeps the
// engine in StatusProgramming past the host's poll bound; the bounded
// poll must give up with the distinct wedged outcome (never hanging the
// host), further programming attempts during the wedge must bounce off
// the busy guard, and the background stream must still complete.
func TestBoundedPollReportsWedged(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, Style: duet.StyleDuet})
	glacial := slowBitstream("glacial", 16<<20)
	small := quickBitstream("small")
	glacialID := sys.Fabric.MustRegister(glacial)
	smallID := sys.Fabric.MustRegister(small)

	var st duet.ProgStatus
	var wedgedStatus uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		st = duet.ProgramStatus(p, glacialID)
		// Still streaming after the poll bound: the engine is visibly
		// busy, and a retry with another image is rejected.
		wedgedStatus = p.MMIORead64(duet.MgrRegAddr(core.RegStatus)) & 0xff
		p.MMIOWrite64(duet.MgrRegAddr(core.RegProgram), uint64(smallID))
	})
	sys.Run()

	if st != duet.ProgWedged {
		t.Fatalf("poll status = %v, want %v", st, duet.ProgWedged)
	}
	if wedgedStatus != core.StatusProgramming {
		t.Fatalf("status after wedged poll = %d, want programming (%d)", wedgedStatus, core.StatusProgramming)
	}
	if cur := sys.Fabric.Current(); cur != glacial {
		t.Fatalf("resident = %v, want the glacial image (stream must finish in the background)", cur)
	}
}
