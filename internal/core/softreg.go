package core

import (
	"fmt"

	"duet/internal/cdc"
	"duet/internal/efpga"
	"duet/internal/params"
	"duet/internal/sim"
)

// RegKind enumerates soft register configurations (paper §II-F).
type RegKind int

// Soft register kinds. RegNormal is a plain in-fabric register (every
// access round-trips into the slow domain); the other four are Shadow
// Register types living in the fast clock domain.
const (
	RegNormal     RegKind = iota
	RegPlain              // plain shadow register: keeps the last value
	RegFIFOToFPGA         // FPGA-bound FIFO: CPU writes, accelerator pops
	RegFIFOToCPU          // CPU-bound FIFO: accelerator pushes, CPU reads (blocking)
	RegTokenFIFO          // dataless, non-blocking CPU-bound FIFO (try_join)
)

func (k RegKind) String() string {
	return [...]string{"normal", "plain", "fifo->fpga", "fifo->cpu", "token"}[k]
}

// SoftRegSpec configures one soft register.
type SoftRegSpec struct {
	Kind  RegKind
	Depth int // FIFO depth; 0 selects the default
}

// Fabric-bound (down) message kinds.
type dkind int

const (
	dPlainSync dkind = iota
	dFifoData
	dNormalOp
	dCPUCredit
)

type dmsg struct {
	kind  dkind
	reg   int
	val   uint64
	seq   uint64
	write bool
}

// CPU-bound (up) message kinds.
type ukind int

const (
	uPlainSync ukind = iota
	uCPUPush
	uTokenPush
	uNormalResp
	uFPGACredit
)

type umsg struct {
	kind ukind
	reg  int
	val  uint64
	seq  uint64
}

// regFile is the Soft Register Interface: the fast-domain half lives in
// the Control Hub, the slow-domain half is emulated in the fabric. It
// implements efpga.RegIntf for the accelerator side.
//
// In FPSoC mode every register is downgraded to a normal register: all
// state lives in the slow domain and every CPU access round-trips through
// the CDC FIFOs — the baseline of §V-D.
type regFile struct {
	a     *Adapter
	specs []SoftRegSpec
	fpsoc bool

	// Fast-domain state.
	fastVals   []uint64 // plain shadow copies
	cpuQ       [][]uint64
	tokens     []int
	fpgaCredit []int
	fpgaWait   [][]*inflight // ops stalled on FPGA-bound FIFO credit
	readWait   [][]*inflight // CPU reads blocked on empty CPU-bound FIFO

	// Slow-domain (fabric) state.
	slowVals   []uint64
	fabricQ    [][]uint64
	fabricCond []*sim.Cond
	cpuCredit  []int
	creditCond *sim.Cond
	claimed    []bool
	normalQ    [][]*efpga.NormalOp
	normalCond []*sim.Cond
	// FPSoC mode: CPU-bound queues live slow-side; blocked reads park here.
	slowCPUQ   [][]uint64
	slowTokens []int
	slowWait   [][]*inflight

	down     *cdc.Fifo
	downPush *cdc.Pusher
	up       *cdc.Fifo
	upPush   *cdc.Pusher
}

func newRegFile(a *Adapter, specs []SoftRegSpec, fpsoc bool) *regFile {
	n := len(specs)
	rf := &regFile{
		a:     a,
		specs: specs,
		fpsoc: fpsoc,

		fastVals:   make([]uint64, n),
		cpuQ:       make([][]uint64, n),
		tokens:     make([]int, n),
		fpgaCredit: make([]int, n),
		fpgaWait:   make([][]*inflight, n),
		readWait:   make([][]*inflight, n),

		slowVals:   make([]uint64, n),
		fabricQ:    make([][]uint64, n),
		fabricCond: make([]*sim.Cond, n),
		cpuCredit:  make([]int, n),
		creditCond: sim.NewCond(a.eng),
		claimed:    make([]bool, n),
		normalQ:    make([][]*efpga.NormalOp, n),
		normalCond: make([]*sim.Cond, n),
		slowCPUQ:   make([][]uint64, n),
		slowTokens: make([]int, n),
		slowWait:   make([][]*inflight, n),
	}
	for i := range specs {
		if specs[i].Depth <= 0 {
			specs[i].Depth = params.FifoDepth
		}
		rf.specs[i] = specs[i]
		rf.fpgaCredit[i] = specs[i].Depth
		rf.cpuCredit[i] = specs[i].Depth
		rf.fabricCond[i] = sim.NewCond(a.eng)
		rf.normalCond[i] = sim.NewCond(a.eng)
	}
	slow := a.fabric.Clock()
	fast := a.fastClk
	rf.down = cdc.NewFifo(a.eng, "ctrl.down", fast, slow, params.FifoDepth, a.syncStages)
	rf.downPush = cdc.NewPusher(a.eng, rf.down)
	rf.up = cdc.NewFifo(a.eng, "ctrl.up", slow, fast, params.FifoDepth, a.syncStages)
	rf.upPush = cdc.NewPusher(a.eng, rf.up)

	a.eng.Go("ctrl.fabric-engine", rf.fabricEngine)
	a.eng.Go("ctrl.up-pump", rf.upPump)
	return rf
}

// --- CPU (fast/MMIO) side -------------------------------------------------

// cpuAccess handles a decoded MMIO soft register access. The inflight op
// is completed (possibly later) by the register machinery; the adapter's
// ordering engine releases responses in arrival order.
func (rf *regFile) cpuAccess(op *inflight, reg int, write bool, val uint64, tx *sim.TX) {
	if reg < 0 || reg >= len(rf.specs) {
		rf.a.complete(op, 0, true)
		return
	}
	if rf.fpsoc {
		rf.sendNormal(op, reg, write, val, tx)
		return
	}
	switch rf.specs[reg].Kind {
	case RegNormal:
		rf.sendNormal(op, reg, write, val, tx)
	case RegPlain:
		rf.a.afterFast(params.ShadowRegCycles, tx, func() {
			if write {
				rf.fastVals[reg] = val
				// The forward into the fabric is off the critical path
				// (the ack does not wait for it): untagged.
				rf.downPush.Push(&dmsg{kind: dPlainSync, reg: reg, val: val}, nil)
				rf.a.complete(op, 0, false)
			} else {
				rf.a.complete(op, rf.fastVals[reg], false)
			}
		})
	case RegFIFOToFPGA:
		if !write {
			// Reads of an FPGA-bound FIFO report the available credit.
			rf.a.afterFast(params.ShadowRegCycles, tx, func() {
				rf.a.complete(op, uint64(rf.fpgaCredit[reg]), false)
			})
			return
		}
		rf.a.afterFast(params.ShadowRegCycles, tx, func() {
			if rf.fpgaCredit[reg] > 0 {
				rf.pushFPGAData(op, reg, val, tx)
			} else {
				// Stall until the accelerator pops (credit returns); the
				// watchdog prevents a hung accelerator from blocking the
				// processor forever.
				op.stash = val
				rf.fpgaWait[reg] = append(rf.fpgaWait[reg], op)
				rf.a.watchdog(op)
			}
		})
	case RegFIFOToCPU:
		if write {
			rf.a.complete(op, 0, true)
			return
		}
		rf.a.afterFast(params.ShadowRegCycles, tx, func() {
			if q := rf.cpuQ[reg]; len(q) > 0 {
				rf.cpuQ[reg] = q[1:]
				rf.downPush.Push(&dmsg{kind: dCPUCredit, reg: reg}, nil)
				rf.a.complete(op, q[0], false)
			} else {
				// Blocking read: park with a watchdog. Parked reads stop
				// gating later same-source operations.
				rf.readWait[reg] = append(rf.readWait[reg], op)
				rf.a.park(op)
				rf.a.watchdog(op)
			}
		})
	case RegTokenFIFO:
		if write {
			rf.a.complete(op, 0, true)
			return
		}
		rf.a.afterFast(params.ShadowRegCycles, tx, func() {
			if rf.tokens[reg] > 0 {
				rf.tokens[reg]--
				rf.downPush.Push(&dmsg{kind: dCPUCredit, reg: reg}, nil)
				rf.a.complete(op, 1, false)
			} else {
				rf.a.complete(op, 0, false) // empty: non-blocking
			}
		})
	}
}

func (rf *regFile) pushFPGAData(op *inflight, reg int, val uint64, tx *sim.TX) {
	rf.fpgaCredit[reg]--
	// Data crosses the CDC after the ack: off the critical path.
	rf.downPush.Push(&dmsg{kind: dFifoData, reg: reg, val: val}, nil)
	rf.a.complete(op, 0, false)
	_ = tx
}

func (rf *regFile) sendNormal(op *inflight, reg int, write bool, val uint64, tx *sim.TX) {
	seq := rf.a.nextSeq()
	op.normalSeq = seq
	rf.a.pendingNormal[seq] = op
	rf.downPush.Push(&dmsg{kind: dNormalOp, reg: reg, val: val, seq: seq, write: write}, tx)
	rf.a.watchdog(op)
}

// --- fabric (slow) side ---------------------------------------------------

// fabricEngine is the slow-domain service loop of the Soft Register
// Interface.
func (rf *regFile) fabricEngine(t *sim.Thread) {
	for {
		v, tx := rf.down.PopBlocking(t)
		// The engine retires at most one fabric-bound message per slow
		// cycle (single-ported soft register interface).
		t.SleepCycles(rf.a.fabric.Clock(), 1)
		m := v.(*dmsg)
		switch m.kind {
		case dPlainSync:
			rf.slowVals[m.reg] = m.val
		case dFifoData:
			rf.fabricQ[m.reg] = append(rf.fabricQ[m.reg], m.val)
			rf.fabricCond[m.reg].Broadcast()
		case dCPUCredit:
			rf.cpuCredit[m.reg]++
			rf.creditCond.Broadcast()
		case dNormalOp:
			rf.handleNormal(t, m, tx)
		}
	}
}

func (rf *regFile) handleNormal(t *sim.Thread, m *dmsg, tx *sim.TX) {
	before := rf.a.eng.Now()
	t.SleepCycles(rf.a.fabric.Clock(), params.SoftRegCycles)
	tx.Add(sim.CatSlow, rf.a.eng.Now()-before)

	if rf.claimed[m.reg] {
		rf.normalQ[m.reg] = append(rf.normalQ[m.reg], &efpga.NormalOp{
			Reg: m.reg, Write: m.write, Value: m.val, Seq: m.seq,
		})
		rf.normalCond[m.reg].Broadcast()
		return
	}
	if rf.fpsoc {
		// FPSoC downgrade: emulate the FIFO semantics in the slow domain.
		switch rf.specs[m.reg].Kind {
		case RegFIFOToFPGA:
			if m.write {
				rf.fabricQ[m.reg] = append(rf.fabricQ[m.reg], m.val)
				rf.fabricCond[m.reg].Broadcast()
				rf.upPush.Push(&umsg{kind: uNormalResp, seq: m.seq}, tx)
				return
			}
			rf.upPush.Push(&umsg{kind: uNormalResp, seq: m.seq, val: uint64(len(rf.fabricQ[m.reg]))}, tx)
			return
		case RegFIFOToCPU:
			if !m.write {
				if q := rf.slowCPUQ[m.reg]; len(q) > 0 {
					rf.slowCPUQ[m.reg] = q[1:]
					rf.upPush.Push(&umsg{kind: uNormalResp, seq: m.seq, val: q[0]}, tx)
					return
				}
				op := rf.a.pendingNormal[m.seq]
				if op != nil {
					rf.slowWait[m.reg] = append(rf.slowWait[m.reg], op)
					rf.a.park(op)
				}
				return // completed on a later push (or times out)
			}
			rf.upPush.Push(&umsg{kind: uNormalResp, seq: m.seq}, tx)
			return
		case RegTokenFIFO:
			if !m.write {
				val := uint64(0)
				if rf.slowTokens[m.reg] > 0 {
					rf.slowTokens[m.reg]--
					val = 1
				}
				rf.upPush.Push(&umsg{kind: uNormalResp, seq: m.seq, val: val}, tx)
				return
			}
		}
	}
	// Default normal register semantics: a plain value in the fabric.
	if m.write {
		rf.slowVals[m.reg] = m.val
		rf.upPush.Push(&umsg{kind: uNormalResp, seq: m.seq}, tx)
	} else {
		rf.upPush.Push(&umsg{kind: uNormalResp, seq: m.seq, val: rf.slowVals[m.reg]}, tx)
	}
}

// upPump drains fabric→hub traffic in the fast domain.
func (rf *regFile) upPump(t *sim.Thread) {
	for {
		v, tx := rf.up.PopBlocking(t)
		m := v.(*umsg)
		switch m.kind {
		case uPlainSync:
			rf.fastVals[m.reg] = m.val
		case uNormalResp:
			op := rf.a.pendingNormal[m.seq]
			if op == nil || op.done {
				continue // timed out earlier; drop
			}
			delete(rf.a.pendingNormal, m.seq)
			rf.a.complete(op, m.val, false)
		case uCPUPush:
			// Skip waiters already completed by the timeout watchdog.
			for len(rf.readWait[m.reg]) > 0 && rf.readWait[m.reg][0].done {
				rf.readWait[m.reg] = rf.readWait[m.reg][1:]
			}
			if w := rf.readWait[m.reg]; len(w) > 0 {
				rf.readWait[m.reg] = w[1:]
				rf.downPush.Push(&dmsg{kind: dCPUCredit, reg: m.reg}, nil)
				rf.a.complete(w[0], m.val, false)
			} else {
				rf.cpuQ[m.reg] = append(rf.cpuQ[m.reg], m.val)
			}
		case uTokenPush:
			rf.tokens[m.reg]++
		case uFPGACredit:
			rf.fpgaCredit[m.reg]++
			for len(rf.fpgaWait[m.reg]) > 0 && rf.fpgaWait[m.reg][0].done {
				rf.fpgaWait[m.reg] = rf.fpgaWait[m.reg][1:]
			}
			if w := rf.fpgaWait[m.reg]; len(w) > 0 && rf.fpgaCredit[m.reg] > 0 {
				rf.fpgaWait[m.reg] = w[1:]
				rf.pushFPGAData(w[0], m.reg, w[0].stash, tx)
			}
		}
	}
}

// --- accelerator-facing API (efpga.RegIntf) --------------------------------

var _ efpga.RegIntf = (*regFile)(nil)

// ReadPlain returns the fabric copy of plain shadow register i.
func (rf *regFile) ReadPlain(i int) uint64 { return rf.slowVals[i] }

// WritePlain updates the fabric copy and synchronizes the fast shadow.
func (rf *regFile) WritePlain(t *sim.Thread, i int, v uint64) {
	rf.slowVals[i] = v
	t.SleepCycles(rf.a.fabric.Clock(), 1)
	rf.upPush.Push(&umsg{kind: uPlainSync, reg: i, val: v}, nil)
}

// PopFPGA pops FPGA-bound FIFO i, blocking until data arrives.
func (rf *regFile) PopFPGA(t *sim.Thread, i int) uint64 {
	for len(rf.fabricQ[i]) == 0 {
		rf.fabricCond[i].Wait(t)
	}
	v := rf.fabricQ[i][0]
	rf.fabricQ[i] = rf.fabricQ[i][1:]
	t.SleepCycles(rf.a.fabric.Clock(), 1)
	if !rf.fpsoc {
		rf.upPush.Push(&umsg{kind: uFPGACredit, reg: i}, nil)
	}
	return v
}

// TryPopFPGA pops without blocking.
func (rf *regFile) TryPopFPGA(i int) (uint64, bool) {
	if len(rf.fabricQ[i]) == 0 {
		return 0, false
	}
	v := rf.fabricQ[i][0]
	rf.fabricQ[i] = rf.fabricQ[i][1:]
	if !rf.fpsoc {
		rf.upPush.Push(&umsg{kind: uFPGACredit, reg: i}, nil)
	}
	return v, true
}

// PushCPU pushes into CPU-bound FIFO i, blocking on credits.
func (rf *regFile) PushCPU(t *sim.Thread, i int, v uint64) {
	if rf.fpsoc {
		t.SleepCycles(rf.a.fabric.Clock(), 1)
		// Skip waiters that already timed out.
		for len(rf.slowWait[i]) > 0 && rf.slowWait[i][0].done {
			rf.slowWait[i] = rf.slowWait[i][1:]
		}
		if w := rf.slowWait[i]; len(w) > 0 {
			rf.slowWait[i] = w[1:]
			// The up pump resolves and clears the pending entry.
			rf.upPush.Push(&umsg{kind: uNormalResp, seq: w[0].normalSeq, val: v}, nil)
			return
		}
		rf.slowCPUQ[i] = append(rf.slowCPUQ[i], v)
		return
	}
	for rf.cpuCredit[i] <= 0 {
		rf.creditCond.Wait(t)
	}
	rf.cpuCredit[i]--
	t.SleepCycles(rf.a.fabric.Clock(), 1)
	rf.upPush.Push(&umsg{kind: uCPUPush, reg: i, val: v}, nil)
}

// PushToken pushes a token into token FIFO i.
func (rf *regFile) PushToken(t *sim.Thread, i int) {
	if rf.fpsoc {
		t.SleepCycles(rf.a.fabric.Clock(), 1)
		rf.slowTokens[i]++
		return
	}
	for rf.cpuCredit[i] <= 0 {
		rf.creditCond.Wait(t)
	}
	rf.cpuCredit[i]--
	t.SleepCycles(rf.a.fabric.Clock(), 1)
	rf.upPush.Push(&umsg{kind: uTokenPush, reg: i}, nil)
}

// Claim routes normal-register traffic on register i to the accelerator.
func (rf *regFile) Claim(i int) { rf.claimed[i] = true }

// WaitOp blocks until a normal-register op arrives on claimed register i.
func (rf *regFile) WaitOp(t *sim.Thread, i int) *efpga.NormalOp {
	for len(rf.normalQ[i]) == 0 {
		rf.normalCond[i].Wait(t)
	}
	op := rf.normalQ[i][0]
	rf.normalQ[i] = rf.normalQ[i][1:]
	return op
}

// Complete answers a claimed normal-register op.
func (rf *regFile) Complete(op *efpga.NormalOp, val uint64) {
	rf.upPush.Push(&umsg{kind: uNormalResp, seq: op.Seq, val: val}, nil)
}

func (rf *regFile) String() string {
	return fmt.Sprintf("regfile(%d regs, fpsoc=%v)", len(rf.specs), rf.fpsoc)
}
