package sim

import "fmt"

// Clock describes a periodic clock with rising edges at Phase + k*Period
// for k >= 0. Clocks are pure arithmetic: they do not schedule anything by
// themselves. Components align their activity to clock edges.
type Clock struct {
	Name   string
	Period Time // picoseconds per cycle; must be > 0
	Phase  Time // time of edge 0
}

// NewClock returns a clock with the given name and period and phase 0.
func NewClock(name string, period Time) *Clock {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	return &Clock{Name: name, Period: period}
}

// ClockMHz returns a clock whose frequency is the given number of MHz.
// The period is rounded to the nearest picosecond.
func ClockMHz(name string, mhz float64) *Clock {
	if mhz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	p := Time(1e6/mhz + 0.5)
	if p <= 0 {
		p = 1
	}
	return NewClock(name, p)
}

// FreqMHz reports the clock frequency in MHz.
func (c *Clock) FreqMHz() float64 { return 1e6 / float64(c.Period) }

func (c *Clock) String() string {
	return fmt.Sprintf("%s(%.1fMHz)", c.Name, c.FreqMHz())
}

// EdgeAt reports the time of rising edge number n.
func (c *Clock) EdgeAt(n int64) Time {
	return c.Phase + Time(n)*c.Period
}

// NextEdge reports the earliest rising edge at or after t.
func (c *Clock) NextEdge(t Time) Time {
	if t <= c.Phase {
		return c.Phase
	}
	d := t - c.Phase
	n := d / c.Period
	if d%c.Period != 0 {
		n++
	}
	return c.Phase + n*c.Period
}

// EdgeAfter reports the earliest rising edge strictly after t.
func (c *Clock) EdgeAfter(t Time) Time {
	e := c.NextEdge(t)
	if e == t {
		e += c.Period
	}
	return e
}

// EdgesAfter reports the time n rising edges strictly after t (n >= 1
// behaves like repeated EdgeAfter; n == 0 returns NextEdge(t)).
func (c *Clock) EdgesAfter(t Time, n int64) Time {
	if n <= 0 {
		return c.NextEdge(t)
	}
	return c.EdgeAfter(t) + Time(n-1)*c.Period
}

// Cycles reports the duration of n cycles.
func (c *Clock) Cycles(n int64) Time { return Time(n) * c.Period }
