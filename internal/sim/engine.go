// Package sim provides the deterministic discrete-event simulation kernel
// used by every hardware model in this repository.
//
// Time is measured in integer picoseconds (Time). Components schedule
// callbacks on an Engine; clocked components derive edge times from Clock.
// Sequential "programs" (processor software, behavioural accelerator models)
// run as Threads: goroutines that are resumed one at a time by the engine,
// which keeps the simulation fully deterministic while letting benchmark
// code be written as ordinary straight-line Go.
//
// The event queue is a calendar of per-timestamp buckets ordered by a
// hand-rolled 4-ary heap of bucket handles. Because clocked models schedule
// almost everything on clock-edge-aligned timestamps shared by many
// components, the common enqueue/dequeue is an O(1) append/advance on an
// existing bucket; the heap only sees distinct timestamps. Events are stored
// by value and callbacks are passed as (func(any), arg) pairs, so the
// schedule-and-run path performs no per-event allocation. See PERF.md for
// the layout and the determinism invariants.
package sim

import (
	"fmt"
)

// Time is simulated time in picoseconds.
type Time int64

// Convenient time units.
const (
	PS Time = 1
	NS Time = 1000
	US Time = 1000 * 1000
	MS Time = 1000 * 1000 * 1000
)

// Forever is a time later than any realistic simulation instant.
const Forever Time = 1 << 62

func (t Time) String() string {
	switch {
	case t >= MS:
		return fmt.Sprintf("%.3fms", float64(t)/float64(MS))
	case t >= US:
		return fmt.Sprintf("%.3fus", float64(t)/float64(US))
	case t >= NS:
		return fmt.Sprintf("%.3fns", float64(t)/float64(NS))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(NS) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// event is one scheduled callback, stored by value inside its timestamp's
// bucket. The kernel allocates nothing per event: fn is a long-lived
// function value and arg a caller-owned pointer (or the plain func() for
// events scheduled through At/After, which boxes allocation-free).
type event struct {
	pri int32
	fn  func(any)
	arg any
}

// call0 adapts a plain func() callback to the (fn, arg) event form.
func call0(a any) { a.(func())() }

// bucket holds every queued event of one timestamp. Events at equal
// (at, pri) run in scheduling order; the slice is kept sorted by priority
// (stable in scheduling order) over the unpopped tail [head:], which is a
// no-op append for the default priority 0.
type bucket struct {
	at   Time
	head int // next event to pop
	evs  []event
}

// Event is a pre-built schedulable record. Components that repeatedly
// schedule the same callback (thread wakeups, FIFO drains) build one Event
// up front and pass it to Engine.AtEvent, so the hot path rebuilds no
// closures. Scheduling copies the record; one Event may be pending at
// several times at once.
type Event struct {
	Pri int32
	Fn  func(any)
	Arg any
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine or NewEngineCap.
type Engine struct {
	now     Time
	stopped bool
	pending int

	buckets []bucket       // bucket arena; heap and byTime hold indices into it
	free    []int32        // released arena slots available for reuse
	heap    []int32        // 4-ary min-heap of live bucket indices, keyed by at
	byTime  map[Time]int32 // live buckets by timestamp

	// threads tracks live Threads so Run can detect a deadlock in which
	// every thread is parked but no events remain.
	liveThreads int

	// pool holds idle coroutine workers for reuse by Go; see worker.
	pool []*worker
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return NewEngineCap(0) }

// NewEngineCap returns an empty engine pre-sized for roughly capHint
// concurrently queued events, so large models reach steady state without
// growing the queue's arena, heap, or calendar index mid-run.
func NewEngineCap(capHint int) *Engine {
	e := &Engine{}
	if capHint > 0 {
		// Clocked models put several events in each bucket; a quarter of
		// the event capacity is a conservative distinct-timestamp estimate.
		nb := capHint/4 + 1
		e.buckets = make([]bucket, 0, nb)
		e.free = make([]int32, 0, nb)
		e.heap = make([]int32, 0, nb)
		e.byTime = make(map[Time]int32, nb)
	} else {
		e.byTime = make(map[Time]int32)
	}
	return e
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) {
	e.at(t, 0, call0, fn)
}

// AtPri schedules fn at time t with an explicit priority. Lower priorities
// run first among events at the same instant; same-priority events run in
// scheduling order.
func (e *Engine) AtPri(t Time, pri int32, fn func()) {
	e.at(t, pri, call0, fn)
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	e.at(e.now+d, 0, call0, fn)
}

// AtArg schedules fn(arg) at absolute time t. With a long-lived fn and a
// pointer-shaped arg this schedules without allocating, so per-message hot
// paths (NoC delivery, MMIO decode, job completion) avoid closure churn.
func (e *Engine) AtArg(t Time, fn func(any), arg any) {
	e.at(t, 0, fn, arg)
}

// AfterArg schedules fn(arg) d picoseconds from now; see AtArg.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) {
	e.at(e.now+d, 0, fn, arg)
}

// AtEvent schedules the pre-built record ev at absolute time t. The record
// is copied, never retained, so it can be rescheduled freely — the
// allocation-free path behind thread wakeups and condition broadcasts.
func (e *Engine) AtEvent(t Time, ev *Event) {
	e.at(t, ev.Pri, ev.Fn, ev.Arg)
}

// at enqueues one event. The fast path — a timestamp that already has a
// bucket, default priority — is a map hit plus an append.
func (e *Engine) at(t Time, pri int32, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.pending++
	if bi, ok := e.byTime[t]; ok {
		b := &e.buckets[bi]
		b.evs = append(b.evs, event{pri: pri, fn: fn, arg: arg})
		// Restore (pri, scheduling-order) order over the unpopped tail.
		// Appends at the default priority terminate immediately.
		for i := len(b.evs) - 1; i > b.head && b.evs[i-1].pri > pri; i-- {
			b.evs[i-1], b.evs[i] = b.evs[i], b.evs[i-1]
		}
		return
	}
	var bi int32
	if n := len(e.free); n > 0 {
		bi = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.buckets = append(e.buckets, bucket{})
		bi = int32(len(e.buckets) - 1)
	}
	b := &e.buckets[bi]
	b.at = t
	b.head = 0
	b.evs = append(b.evs[:0], event{pri: pri, fn: fn, arg: arg})
	e.byTime[t] = bi
	e.heapPush(bi)
}

// Stop makes the current Run call return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// step pops and executes the earliest queued event. Callers guarantee the
// queue is non-empty. The "time went backwards" guard holds for every
// execution path (Run and RunUntil alike): it is the kernel's core
// determinism invariant.
func (e *Engine) step() {
	bi := e.heap[0]
	b := &e.buckets[bi]
	if b.at < e.now {
		panic("sim: event time went backwards")
	}
	e.now = b.at
	ev := b.evs[b.head]
	b.evs[b.head] = event{} // release the callback and payload promptly
	b.head++
	if b.head == len(b.evs) {
		// Bucket drained: drop it from the calendar before running the
		// callback, so a callback scheduling at this same instant starts a
		// fresh bucket (which becomes the heap top again, preserving order).
		delete(e.byTime, b.at)
		b.at = -1
		b.head = 0
		b.evs = b.evs[:0]
		e.heapPopTop()
		e.free = append(e.free, bi)
	}
	e.pending--
	ev.fn(ev.arg)
}

// Run executes events until the queue drains, Stop is called, or the event
// budget maxEvents is exhausted (0 means no budget). It returns the number
// of events executed.
func (e *Engine) Run(maxEvents int) int {
	e.stopped = false
	n := 0
	for len(e.heap) > 0 && !e.stopped {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		e.step()
		n++
	}
	e.reapWorkers()
	return n
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns the number executed.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for len(e.heap) > 0 && !e.stopped {
		if e.buckets[e.heap[0]].at > deadline {
			break
		}
		e.step()
		n++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	e.reapWorkers()
	return n
}

// RunBefore executes events with timestamps strictly before deadline,
// then advances the clock to deadline. Events at exactly deadline stay
// queued — the streaming submission contract: work injected at deadline
// (outside any event) precedes every already-queued callback at that
// same instant, exactly as a pre-scheduled arrival event would by bucket
// insertion order. Unlike Run and RunUntil it does not reap pooled
// worker coroutines, so a caller fusing a long submission stream into
// the run keeps the coroutine pool warm between arrivals; the final
// drain (Run) reaps as usual.
func (e *Engine) RunBefore(deadline Time) int {
	e.stopped = false
	n := 0
	for len(e.heap) > 0 && !e.stopped {
		if e.buckets[e.heap[0]].at >= deadline {
			break
		}
		e.step()
		n++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return n
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.pending }

// --- 4-ary heap of bucket handles, keyed by bucket timestamp ---------------
//
// Timestamps in the heap are distinct (byTime guarantees one live bucket
// per instant), so ordering needs no tie-break. 4-ary halves the tree depth
// of a binary heap and keeps the sift loops free of interface dispatch.

func (e *Engine) heapPush(bi int32) {
	e.heap = append(e.heap, bi)
	i := len(e.heap) - 1
	at := e.buckets[bi].at
	for i > 0 {
		p := (i - 1) / 4
		if e.buckets[e.heap[p]].at <= at {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = bi
}

// heapPopTop removes the minimum (the current top bucket handle).
func (e *Engine) heapPopTop() {
	n := len(e.heap) - 1
	moved := e.heap[n]
	e.heap = e.heap[:n]
	if n == 0 {
		return
	}
	at := e.buckets[moved].at
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m, mAt := c, e.buckets[e.heap[c]].at
		for j := c + 1; j < end; j++ {
			if a := e.buckets[e.heap[j]].at; a < mAt {
				m, mAt = j, a
			}
		}
		if mAt >= at {
			break
		}
		e.heap[i] = e.heap[m]
		i = m
	}
	e.heap[i] = moved
}
