// Package sim provides the deterministic discrete-event simulation kernel
// used by every hardware model in this repository.
//
// Time is measured in integer picoseconds (Time). Components schedule
// callbacks on an Engine; clocked components derive edge times from Clock.
// Sequential "programs" (processor software, behavioural accelerator models)
// run as Threads: goroutines that are resumed one at a time by the engine,
// which keeps the simulation fully deterministic while letting benchmark
// code be written as ordinary straight-line Go.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in picoseconds.
type Time int64

// Convenient time units.
const (
	PS Time = 1
	NS Time = 1000
	US Time = 1000 * 1000
	MS Time = 1000 * 1000 * 1000
)

// Forever is a time later than any realistic simulation instant.
const Forever Time = 1 << 62

func (t Time) String() string {
	switch {
	case t >= MS:
		return fmt.Sprintf("%.3fms", float64(t)/float64(MS))
	case t >= US:
		return fmt.Sprintf("%.3fus", float64(t)/float64(US))
	case t >= NS:
		return fmt.Sprintf("%.3fns", float64(t)/float64(NS))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(NS) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

type event struct {
	at  Time
	pri int32
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool

	// threads tracks live Threads so Run can detect a deadlock in which
	// every thread is parked but no events remain.
	liveThreads int
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) {
	e.at(t, 0, fn)
}

// AtPri schedules fn at time t with an explicit priority. Lower priorities
// run first among events at the same instant; same-priority events run in
// scheduling order.
func (e *Engine) AtPri(t Time, pri int32, fn func()) {
	e.at(t, pri, fn)
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	e.at(e.now+d, 0, fn)
}

func (e *Engine) at(t Time, pri int32, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, pri: pri, seq: e.seq, fn: fn})
}

// Stop makes the current Run call return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, Stop is called, or the event
// budget maxEvents is exhausted (0 means no budget). It returns the number
// of events executed.
func (e *Engine) Run(maxEvents int) int {
	e.stopped = false
	n := 0
	for len(e.events) > 0 && !e.stopped {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("sim: event time went backwards")
		}
		e.now = ev.at
		ev.fn()
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns the number executed.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return n
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
