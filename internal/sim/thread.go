package sim

import "fmt"

// Thread is a deterministic coroutine: a goroutine that the engine resumes
// one at a time. At any instant at most one thread (or event callback) is
// executing, so models need no locking and simulations are reproducible.
//
// Thread code interacts with simulated time only through the blocking
// methods (Sleep, WaitUntil, park via Cond/queues). All wakeups are routed
// through the event queue, never delivered inline, which preserves the
// single-runner invariant.
type Thread struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	parked bool
	done   bool
}

// Go spawns fn as a new simulation thread named name. The thread begins
// running at the current simulation time (via a scheduled event).
func (e *Engine) Go(name string, fn func(*Thread)) *Thread {
	t := &Thread{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		parked: true,
	}
	e.liveThreads++
	go func() {
		<-t.resume
		fn(t)
		t.done = true
		t.eng.liveThreads--
		t.yield <- struct{}{}
	}()
	e.At(e.now, t.dispatch)
	return t
}

// dispatch resumes the thread from engine context and blocks until it parks
// again or finishes. Spurious dispatches of a running or finished thread are
// ignored.
func (t *Thread) dispatch() {
	if !t.parked || t.done {
		return
	}
	t.parked = false
	t.resume <- struct{}{}
	<-t.yield
}

// park suspends the thread until the next dispatch. Must be called from the
// thread's own goroutine.
func (t *Thread) park() {
	t.parked = true
	t.yield <- struct{}{}
	<-t.resume
}

// Name reports the thread's name.
func (t *Thread) Name() string { return t.name }

// Engine reports the engine this thread runs on.
func (t *Thread) Engine() *Engine { return t.eng }

// Now reports the current simulation time.
func (t *Thread) Now() Time { return t.eng.Now() }

// Done reports whether the thread function has returned.
func (t *Thread) Done() bool { return t.done }

// WaitUntil suspends the thread until absolute time tm.
func (t *Thread) WaitUntil(tm Time) {
	if tm < t.eng.now {
		panic(fmt.Sprintf("sim: thread %s waiting for past time %v (now %v)", t.name, tm, t.eng.now))
	}
	if tm == t.eng.now {
		return
	}
	t.eng.At(tm, t.dispatch)
	t.park()
}

// Sleep suspends the thread for duration d.
func (t *Thread) Sleep(d Time) { t.WaitUntil(t.eng.now + d) }

// SleepCycles suspends the thread for n rising edges of clk: the thread
// resumes at the n-th edge strictly after the current time. n <= 0 aligns
// to the next edge at or after now.
func (t *Thread) SleepCycles(clk *Clock, n int64) {
	t.WaitUntil(clk.EdgesAfter(t.eng.now, n))
}

// AlignTo suspends the thread until the next rising edge of clk at or after
// the current time.
func (t *Thread) AlignTo(clk *Clock) { t.WaitUntil(clk.NextEdge(t.eng.now)) }

// LiveThreads reports the number of spawned threads that have not finished.
// A nonzero value after Run returns usually means the model deadlocked.
func (e *Engine) LiveThreads() int { return e.liveThreads }

// Cond is a wait queue for threads. Waiters are woken in FIFO order, always
// via the event queue (never inline), at the simulation time of the signal.
type Cond struct {
	eng     *Engine
	waiters []*Thread
}

// NewCond returns a condition bound to engine e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait suspends t until a Signal or Broadcast wakes it. As with sync.Cond,
// callers should re-check their predicate in a loop.
func (c *Cond) Wait(t *Thread) {
	c.waiters = append(c.waiters, t)
	t.park()
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	t := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.At(c.eng.now, t.dispatch)
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, t := range ws {
		tt := t
		c.eng.At(c.eng.now, tt.dispatch)
	}
}

// Waiters reports the number of threads currently waiting.
func (c *Cond) Waiters() int { return len(c.waiters) }
