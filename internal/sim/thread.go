package sim

import "fmt"

// Thread is a deterministic coroutine: a goroutine that the engine resumes
// one at a time. At any instant at most one thread (or event callback) is
// executing, so models need no locking and simulations are reproducible.
//
// Thread code interacts with simulated time only through the blocking
// methods (Sleep, WaitUntil, park via Cond/queues). All wakeups are routed
// through the event queue, never delivered inline, which preserves the
// single-runner invariant. Every wakeup reschedules the thread's pre-built
// wake record, so parking and waking allocate nothing.
type Thread struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	parked bool
	done   bool
	wake   Event // pre-built dispatch record; see Engine.AtEvent
}

// dispatchThread is the shared trampoline behind every thread wakeup event.
func dispatchThread(a any) { a.(*Thread).dispatch() }

// worker is a pooled coroutine: a goroutine and its channel pair, reused
// across finished threads so models that spawn threads per transaction
// (e.g. the coherence homes) pay the goroutine and channel setup once.
// All pool accesses happen in simulation context — at most one thread or
// callback runs at a time — so the pool needs no locking, and every
// cross-goroutine access is ordered by the resume/yield handoffs.
type worker struct {
	resume chan struct{}
	yield  chan struct{}
	t      *Thread // thread to run next; nil tells the loop to exit
	fn     func(*Thread)
}

func (w *worker) loop(e *Engine) {
	for {
		<-w.resume
		if w.t == nil {
			return // reaped: the engine drained its queue
		}
		t, fn := w.t, w.fn
		w.t, w.fn = nil, nil
		fn(t)
		t.done = true
		e.liveThreads--
		e.pool = append(e.pool, w)
		t.yield <- struct{}{}
	}
}

// Go spawns fn as a new simulation thread named name. The thread begins
// running at the current simulation time (via a scheduled event).
func (e *Engine) Go(name string, fn func(*Thread)) *Thread {
	var w *worker
	if n := len(e.pool); n > 0 {
		w = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
	} else {
		w = &worker{
			resume: make(chan struct{}),
			yield:  make(chan struct{}),
		}
		go w.loop(e)
	}
	t := &Thread{
		eng:    e,
		name:   name,
		resume: w.resume,
		yield:  w.yield,
		parked: true,
	}
	t.wake = Event{Fn: dispatchThread, Arg: t}
	w.t, w.fn = t, fn
	e.liveThreads++
	e.AtEvent(e.now, &t.wake)
	return t
}

// reapWorkers shuts down the idle pooled coroutines. Run and RunUntil call
// it on every return — however the run ended — so a discarded engine leaks
// no goroutines and pooling never outlives the run that benefited from it
// (workers of deadlocked threads are mid-function and stay, exactly like
// the unpooled design). Spawns after the reap simply start fresh workers.
func (e *Engine) reapWorkers() {
	for i, w := range e.pool {
		w.resume <- struct{}{} // w.t == nil: the loop exits
		e.pool[i] = nil
	}
	e.pool = e.pool[:0]
}

// dispatch resumes the thread from engine context and blocks until it parks
// again or finishes. Spurious dispatches of a running or finished thread are
// ignored.
func (t *Thread) dispatch() {
	if !t.parked || t.done {
		return
	}
	t.parked = false
	t.resume <- struct{}{}
	<-t.yield
}

// park suspends the thread until the next dispatch. Must be called from the
// thread's own goroutine.
func (t *Thread) park() {
	t.parked = true
	t.yield <- struct{}{}
	<-t.resume
}

// Park suspends the thread until another component wakes it (Wake, a Cond
// signal, or a timed wakeup). As with Cond.Wait, callers re-check their
// predicate in a loop: dispatches may be spurious. Must be called from the
// thread's own goroutine.
func (t *Thread) Park() { t.park() }

// Wake schedules a dispatch of t at the current instant if t is parked —
// the allocation-free single-waiter completion path (a Cond degenerates to
// this when exactly one thread can be waiting). Must be called from engine
// context. Wakes delivered while t is running are dropped, matching the
// Cond contract that only parked threads are woken.
func (t *Thread) Wake() {
	if t.parked && !t.done {
		t.eng.AtEvent(t.eng.now, &t.wake)
	}
}

// Name reports the thread's name.
func (t *Thread) Name() string { return t.name }

// Engine reports the engine this thread runs on.
func (t *Thread) Engine() *Engine { return t.eng }

// Now reports the current simulation time.
func (t *Thread) Now() Time { return t.eng.Now() }

// Done reports whether the thread function has returned.
func (t *Thread) Done() bool { return t.done }

// WaitUntil suspends the thread until absolute time tm.
func (t *Thread) WaitUntil(tm Time) {
	if tm < t.eng.now {
		panic(fmt.Sprintf("sim: thread %s waiting for past time %v (now %v)", t.name, tm, t.eng.now))
	}
	if tm == t.eng.now {
		return
	}
	t.eng.AtEvent(tm, &t.wake)
	t.park()
}

// Sleep suspends the thread for duration d.
func (t *Thread) Sleep(d Time) { t.WaitUntil(t.eng.now + d) }

// SleepCycles suspends the thread for n rising edges of clk: the thread
// resumes at the n-th edge strictly after the current time. n <= 0 aligns
// to the next edge at or after now.
func (t *Thread) SleepCycles(clk *Clock, n int64) {
	t.WaitUntil(clk.EdgesAfter(t.eng.now, n))
}

// AlignTo suspends the thread until the next rising edge of clk at or after
// the current time.
func (t *Thread) AlignTo(clk *Clock) { t.WaitUntil(clk.NextEdge(t.eng.now)) }

// LiveThreads reports the number of spawned threads that have not finished.
// A nonzero value after Run returns usually means the model deadlocked.
func (e *Engine) LiveThreads() int { return e.liveThreads }

// Cond is a wait queue for threads. Waiters are woken in FIFO order, always
// via the event queue (never inline), at the simulation time of the signal.
type Cond struct {
	eng     *Engine
	waiters []*Thread
	bcast   Event // pre-built deferred-broadcast record for BroadcastAt
}

// condBroadcast is the trampoline behind Cond.BroadcastAt events.
func condBroadcast(a any) { a.(*Cond).Broadcast() }

// NewCond returns a condition bound to engine e.
func NewCond(e *Engine) *Cond {
	c := &Cond{eng: e}
	c.bcast = Event{Fn: condBroadcast, Arg: c}
	return c
}

// Wait suspends t until a Signal or Broadcast wakes it. As with sync.Cond,
// callers should re-check their predicate in a loop.
func (c *Cond) Wait(t *Thread) {
	c.waiters = append(c.waiters, t)
	t.park()
}

// Signal wakes the oldest waiter, if any. Removal shifts the FIFO in
// place (rather than re-slicing) so the queue's capacity is kept and the
// wait/signal steady state allocates nothing.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	t := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	c.eng.AtEvent(c.eng.now, &t.wake)
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() {
	for _, t := range c.waiters {
		c.eng.AtEvent(c.eng.now, &t.wake)
	}
	clear(c.waiters)
	c.waiters = c.waiters[:0]
}

// BroadcastAt schedules a Broadcast at absolute time tm by rescheduling the
// condition's pre-built record: the deferred-wakeup idiom (CDC visibility,
// credit return) without a per-call closure. Waiters are collected when the
// broadcast fires, not when it is scheduled.
func (c *Cond) BroadcastAt(tm Time) {
	c.eng.AtEvent(tm, &c.bcast)
}

// Waiters reports the number of threads currently waiting.
func (c *Cond) Waiters() int { return len(c.waiters) }
