package sim

import (
	"container/heap"
	"testing"
)

// refEvent / refHeap reimplement the kernel's pre-calendar event queue — a
// container/heap of boxed events totally ordered by (at, pri, seq) — as the
// ordering oracle for FuzzEventOrder.
type refEvent struct {
	at  Time
	pri int32
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// fuzzOp is one decoded fuzz instruction: a root event at base+dt with the
// given priority which, when it runs, schedules a child childDt after its
// own execution time (childDt < 0 means no child). Children exercise
// nested scheduling, including the schedule-at-now-while-draining path.
type fuzzOp struct {
	dt      Time
	pri     int32
	childDt Time // -1: no child
}

func decodeFuzzOps(data []byte) []fuzzOp {
	var ops []fuzzOp
	for i := 0; i+2 < len(data) && len(ops) < 512; i += 3 {
		op := fuzzOp{
			dt:      Time(data[i]) * 100,
			pri:     int32(int8(data[i+1])),
			childDt: -1,
		}
		if data[i+2]%2 == 0 {
			op.childDt = Time(data[i+2]) * 50
		}
		ops = append(ops, op)
	}
	return ops
}

// runKernelOrder plays ops through the real engine and records execution
// order by event id (roots get their op index; the i-th op's child gets
// len(ops)+i).
func runKernelOrder(ops []fuzzOp) []int {
	e := NewEngine()
	var got []int
	base := e.Now() + 10*NS
	for i, op := range ops {
		i, op := i, op
		childID := len(ops) + i
		e.AtPri(base+op.dt, op.pri, func() {
			got = append(got, i)
			if op.childDt >= 0 {
				e.At(e.Now()+op.childDt, func() { got = append(got, childID) })
			}
		})
	}
	e.Run(0)
	return got
}

// runReferenceOrder plays the same ops through the container/heap oracle,
// mirroring the engine's semantics (seq assigned in scheduling order,
// children scheduled at pop time).
func runReferenceOrder(ops []fuzzOp) []int {
	var h refHeap
	var seq uint64
	var want []int
	base := Time(10 * NS)
	for i, op := range ops {
		seq++
		heap.Push(&h, &refEvent{at: base + op.dt, pri: op.pri, seq: seq, id: i})
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(*refEvent)
		want = append(want, ev.id)
		if ev.id < len(ops) {
			if op := ops[ev.id]; op.childDt >= 0 {
				seq++
				heap.Push(&h, &refEvent{at: ev.at + op.childDt, pri: 0, seq: seq, id: len(ops) + ev.id})
			}
		}
	}
	return want
}

// FuzzEventOrder drives the calendar-bucket queue and the reference
// container/heap with the same (at, pri) stream — including same-instant
// ties, negative priorities, and nested scheduling — and requires
// identical pop order. This is the determinism contract every golden-seed
// result in this repository rests on.
func FuzzEventOrder(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 1, 0, 0, 1})          // same-instant FIFO ties
	f.Add([]byte{5, 0x80, 3, 5, 0x7f, 1, 5, 0, 2})    // pri extremes on one instant
	f.Add([]byte{9, 1, 0, 9, 0xff, 0, 9, 2, 0, 9, 0}) // children landing mid-drain
	f.Add([]byte{200, 0, 1, 100, 0, 1, 0, 0, 1, 50, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzOps(data)
		got := runKernelOrder(ops)
		want := runReferenceOrder(ops)
		if len(got) != len(want) {
			t.Fatalf("executed %d events, reference executed %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pop order diverges at %d: kernel %v, reference %v", i, got, want)
			}
		}
	})
}
