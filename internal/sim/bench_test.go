package sim

import "testing"

// BenchmarkEngineSchedule measures the bare schedule-and-run path: a wave
// of events over a handful of near-future timestamps, drained to empty.
// The acceptance bar is 0 allocs/op — the queue stores events by value and
// reuses its buckets, so steady state never touches the heap allocator.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngineCap(1024)
	fn := func() {}
	warm := func() {
		for k := 0; k < 256; k++ {
			e.At(e.Now()+Time(k%8)*NS, fn)
		}
		e.Run(0)
	}
	warm() // reach steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 256; k++ {
			e.At(e.Now()+Time(k%8)*NS, fn)
		}
		e.Run(0)
	}
	b.ReportMetric(256, "events/op")
}

// BenchmarkEngineClockTicks models the kernel's dominant production load:
// many clocked components rescheduling themselves edge to edge on two
// clock domains, so almost every enqueue lands in an existing clock-edge
// bucket (the calendar fast path).
func BenchmarkEngineClockTicks(b *testing.B) {
	const components = 32
	e := NewEngineCap(components)
	fast := NewClock("fast", 1400)  // ~714 MHz processor domain
	slow := NewClock("slow", 10000) // 100 MHz eFPGA domain
	ticks := 0
	budget := 0
	var fns [components]func()
	for i := 0; i < components; i++ {
		clk := fast
		if i%4 == 0 {
			clk = slow
		}
		c := clk
		var self func()
		self = func() {
			ticks++
			if ticks < budget {
				e.At(c.EdgeAfter(e.Now()), self)
			}
		}
		fns[i] = self
	}
	prime := func(n int) {
		ticks, budget = 0, n
		for _, fn := range fns {
			e.At(e.Now(), fn)
		}
		e.Run(0)
	}
	prime(components) // steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prime(1024)
	}
	b.ReportMetric(1024, "ticks/op")
}

// BenchmarkThreadPingPong measures the thread wakeup path: two coroutine
// threads handing control back and forth through a pair of conditions.
// Each round trip is two parks, two wakeup events, and four goroutine
// handoffs; the scheduling side of it must not allocate.
func BenchmarkThreadPingPong(b *testing.B) {
	const rounds = 512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		ping, pong := NewCond(e), NewCond(e)
		turn := 0
		e.Go("ping", func(t *Thread) {
			for k := 0; k < rounds; k++ {
				for turn != 0 {
					ping.Wait(t)
				}
				turn = 1
				pong.Signal()
			}
		})
		e.Go("pong", func(t *Thread) {
			for k := 0; k < rounds; k++ {
				for turn != 1 {
					pong.Wait(t)
				}
				turn = 0
				ping.Signal()
			}
		})
		e.Run(0)
	}
	b.ReportMetric(rounds, "roundtrips/op")
}

// BenchmarkEngineSameInstantBurst measures the O(1) same-instant path:
// bursts of events all landing on one timestamp (the shape Cond.Broadcast
// and back-to-back NoC ejections produce).
func BenchmarkEngineSameInstantBurst(b *testing.B) {
	e := NewEngineCap(512)
	fn := func() {}
	burst := func() {
		at := e.Now() + NS
		for k := 0; k < 256; k++ {
			e.At(at, fn)
		}
		e.Run(0)
	}
	burst()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst()
	}
	b.ReportMetric(256, "events/op")
}
