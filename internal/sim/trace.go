package sim

// Category labels a slice of a transaction's lifetime for the latency
// breakdowns reported in the paper's Fig. 9.
type Category int

// Latency categories, matching the paper's breakdown.
const (
	CatNoC  Category = iota // network-on-chip transit
	CatFast                 // cache/hub logic in the fast (processor) clock domain
	CatSlow                 // cache/register logic in the slow (eFPGA) clock domain
	CatCDC                  // clock-domain-crossing overhead (synchronizers + edge alignment)
	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatNoC:
		return "NoC"
	case CatFast:
		return "FastLogic"
	case CatSlow:
		return "SlowLogic"
	case CatCDC:
		return "CDC"
	}
	return "?"
}

// TX accumulates a per-category latency breakdown for one tagged
// transaction. Components that process a tagged message attribute the time
// they consume with Add. A nil *TX is valid and ignores all calls, so
// models can attribute unconditionally.
type TX struct {
	Parts [NumCategories]Time
	Start Time
	End   Time
}

// NewTX returns a transaction record starting now.
func NewTX(now Time) *TX { return &TX{Start: now} }

// Add attributes duration d to category cat. Safe on nil receivers.
func (tx *TX) Add(cat Category, d Time) {
	if tx == nil || d <= 0 {
		return
	}
	tx.Parts[cat] += d
}

// Finish records the completion time. Safe on nil receivers.
func (tx *TX) Finish(now Time) {
	if tx == nil {
		return
	}
	tx.End = now
}

// Total reports the end-to-end latency (End - Start).
func (tx *TX) Total() Time {
	if tx == nil {
		return 0
	}
	return tx.End - tx.Start
}

// Unattributed reports latency not covered by any category (queueing and
// other waits the models did not classify).
func (tx *TX) Unattributed() Time {
	if tx == nil {
		return 0
	}
	s := tx.Total()
	for _, p := range tx.Parts {
		s -= p
	}
	return s
}
