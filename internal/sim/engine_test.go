package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*NS, func() { got = append(got, 3) })
	e.At(10*NS, func() { got = append(got, 1) })
	e.At(20*NS, func() { got = append(got, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*NS {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*NS, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEnginePriority(t *testing.T) {
	e := NewEngine()
	var got []string
	e.AtPri(5*NS, 1, func() { got = append(got, "low") })
	e.AtPri(5*NS, 0, func() { got = append(got, "high") })
	e.Run(0)
	if got[0] != "high" || got[1] != "low" {
		t.Fatalf("priority order = %v", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	n := 0
	var rec func()
	rec = func() {
		n++
		if n < 100 {
			e.After(1*NS, rec)
		}
	}
	e.After(0, rec)
	e.Run(0)
	if n != 100 {
		t.Fatalf("n = %d, want 100", n)
	}
	if e.Now() != 99*NS {
		t.Fatalf("Now = %v, want 99ns", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*NS, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*NS, func() {})
	})
	e.Run(0)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10*NS, func() { ran++ })
	e.At(20*NS, func() { ran++ })
	e.At(30*NS, func() { ran++ })
	n := e.RunUntil(20 * NS)
	if n != 2 || ran != 2 {
		t.Fatalf("RunUntil ran %d events, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 20*NS {
		t.Fatalf("Now = %v, want 20ns", e.Now())
	}
	// Deadline with no events advances time.
	e2 := NewEngine()
	e2.RunUntil(42 * NS)
	if e2.Now() != 42*NS {
		t.Fatalf("empty RunUntil Now = %v", e2.Now())
	}
}

// TestRunBefore pins the strictly-before contract that distinguishes
// RunBefore from the inclusive RunUntil: events at exactly the deadline
// stay pending — the streaming cluster path depends on it so a
// submission at t still precedes completions at t, matching the
// pre-scheduled arrival ordering of the materialized path.
func TestRunBefore(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10*NS, func() { ran++ })
	e.At(20*NS, func() { ran++ })
	e.At(30*NS, func() { ran++ })
	if n := e.RunBefore(20 * NS); n != 1 || ran != 1 {
		t.Fatalf("RunBefore(20ns) ran %d events (n=%d), want 1", ran, n)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (the 20ns event must stay queued)", e.Pending())
	}
	if e.Now() != 20*NS {
		t.Fatalf("Now = %v, want 20ns", e.Now())
	}
	// The held-back event runs on the next call past it.
	if n := e.RunBefore(21 * NS); n != 1 || ran != 2 {
		t.Fatalf("second RunBefore ran %d events (n=%d), want 1", ran, n)
	}
	// Deadline with no events advances time, like RunUntil.
	e2 := NewEngine()
	e2.RunBefore(42 * NS)
	if e2.Now() != 42*NS {
		t.Fatalf("empty RunBefore Now = %v", e2.Now())
	}
}

// TestRunUntilTimeWentBackwardsPanics is the regression test for the
// RunUntil pop path missing the "event time went backwards" invariant
// check that Run always had. The invariant cannot be violated through the
// public API (scheduling in the past panics at enqueue), so the test
// corrupts a queued bucket's timestamp directly.
func TestRunUntilTimeWentBackwardsPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*NS, func() {})
	e.At(20*NS, func() {})
	e.RunUntil(10 * NS) // now = 10ns; the 20ns event stays queued
	e.buckets[e.heap[0]].at = 5 * NS
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil executed an event behind the current time without panicking")
		}
	}()
	e.RunUntil(30 * NS)
}

// TestRunTimeWentBackwardsPanics pins the same guard on the Run path.
func TestRunTimeWentBackwardsPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*NS, func() {})
	e.At(20*NS, func() {})
	e.Run(1)
	e.buckets[e.heap[0]].at = 5 * NS
	defer func() {
		if recover() == nil {
			t.Fatal("Run executed an event behind the current time without panicking")
		}
	}()
	e.Run(0)
}

// TestRunBudgetResumesMidBucket pins that a budgeted Run which halts
// partway through a same-instant bucket resumes exactly where it left off.
func TestRunBudgetResumesMidBucket(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 6; i++ {
		i := i
		e.At(5*NS, func() { got = append(got, i) })
	}
	if n := e.Run(2); n != 2 {
		t.Fatalf("ran %d, want 2", n)
	}
	if e.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", e.Pending())
	}
	e.Run(0)
	for i := 0; i < 6; i++ {
		if got[i] != i {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestNewEngineCap(t *testing.T) {
	e := NewEngineCap(1024)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(Time(i%10)*NS, func() { got = append(got, i) })
	}
	e.Run(0)
	if len(got) != 100 {
		t.Fatalf("ran %d events, want 100", len(got))
	}
	// Same-instant events stay FIFO; instants run in time order.
	for i := 1; i < len(got); i++ {
		if got[i]%10 == got[i-1]%10 && got[i] < got[i-1] {
			t.Fatalf("same-instant FIFO violated: %v", got)
		}
	}
}

func TestAtArgAndAtEvent(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(a any) { got = append(got, *a.(*int)) }
	one, two, three := 1, 2, 3
	ev := Event{Fn: record, Arg: &three}
	e.AtArg(20*NS, record, &two)
	e.AfterArg(10*NS, record, &one)
	e.AtEvent(30*NS, &ev)
	e.AtEvent(40*NS, &ev) // records reschedule freely
	e.Run(0)
	want := []int{1, 2, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestAtEventPriority checks AtEvent honors the record's priority against
// plain same-instant events.
func TestAtEventPriority(t *testing.T) {
	e := NewEngine()
	var got []string
	ev := Event{Pri: -1, Fn: func(any) { got = append(got, "early") }}
	e.At(5*NS, func() { got = append(got, "normal") })
	e.AtEvent(5*NS, &ev)
	e.Run(0)
	if len(got) != 2 || got[0] != "early" || got[1] != "normal" {
		t.Fatalf("order = %v", got)
	}
}

// TestParkWake exercises the single-waiter blocking idiom the blocking
// cache wrappers use: the thread parks in a predicate loop and the
// completion callback wakes it directly.
func TestParkWake(t *testing.T) {
	e := NewEngine()
	done := false
	var wokeAt Time
	th := e.Go("waiter", func(th *Thread) {
		for !done {
			th.Park()
		}
		wokeAt = th.Now()
	})
	e.At(30*NS, func() {
		done = true
		th.Wake()
	})
	e.Run(0)
	if wokeAt != 30*NS {
		t.Fatalf("woke at %v, want 30ns", wokeAt)
	}
	if e.LiveThreads() != 0 {
		t.Fatalf("live threads = %d, want 0", e.LiveThreads())
	}
}

// TestWakeOfFinishedThreadDropped pins that Wake is a no-op on a thread
// whose function has returned: no dispatch is scheduled, nothing panics.
func TestWakeOfFinishedThreadDropped(t *testing.T) {
	e := NewEngine()
	var trace []Time
	th := e.Go("sleeper", func(th *Thread) {
		th.Sleep(50 * NS)
		trace = append(trace, th.Now())
	})
	e.At(60*NS, func() { th.Wake() })
	e.Run(0)
	if len(trace) != 1 || trace[0] != 50*NS {
		t.Fatalf("trace = %v, want [50ns]", trace)
	}
	if e.LiveThreads() != 0 {
		t.Fatalf("live threads = %d", e.LiveThreads())
	}
}

func TestCondBroadcastAt(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Go("w", func(th *Thread) {
			c.Wait(th)
			woke = append(woke, th.Now())
		})
	}
	c.BroadcastAt(25 * NS)
	e.Run(0)
	if len(woke) != 3 {
		t.Fatalf("woke %d threads, want 3", len(woke))
	}
	for _, at := range woke {
		if at != 25*NS {
			t.Fatalf("woke at %v, want 25ns", at)
		}
	}
	if e.LiveThreads() != 0 {
		t.Fatal("threads leaked")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1*NS, func() { ran++; e.Stop() })
	e.At(2*NS, func() { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Fatalf("Stop did not halt the engine: ran=%d", ran)
	}
}

func TestClockEdges(t *testing.T) {
	c := NewClock("fast", 1000) // 1 GHz
	cases := []struct {
		at   Time
		next Time
	}{
		{0, 0}, {1, 1000}, {999, 1000}, {1000, 1000}, {1001, 2000},
	}
	for _, cse := range cases {
		if got := c.NextEdge(cse.at); got != cse.next {
			t.Errorf("NextEdge(%d) = %d, want %d", cse.at, got, cse.next)
		}
	}
	if c.EdgeAfter(1000) != 2000 {
		t.Errorf("EdgeAfter(1000) = %d", c.EdgeAfter(1000))
	}
	if c.EdgeAfter(1) != 1000 {
		t.Errorf("EdgeAfter(1) = %d", c.EdgeAfter(1))
	}
	if c.EdgesAfter(0, 3) != 3000 {
		t.Errorf("EdgesAfter(0,3) = %d", c.EdgesAfter(0, 3))
	}
}

func TestClockMHz(t *testing.T) {
	c := ClockMHz("efpga", 100)
	if c.Period != 10000 {
		t.Fatalf("100MHz period = %dps, want 10000", c.Period)
	}
	if f := c.FreqMHz(); f < 99.9 || f > 100.1 {
		t.Fatalf("FreqMHz = %f", f)
	}
	c2 := ClockMHz("odd", 282)
	if f := c2.FreqMHz(); f < 281 || f > 283 {
		t.Fatalf("282MHz round-trip = %f", f)
	}
}

func TestClockPhase(t *testing.T) {
	c := &Clock{Name: "p", Period: 1000, Phase: 300}
	if c.NextEdge(0) != 300 {
		t.Fatalf("NextEdge(0) = %d", c.NextEdge(0))
	}
	if c.NextEdge(301) != 1300 {
		t.Fatalf("NextEdge(301) = %d", c.NextEdge(301))
	}
	if c.EdgeAt(2) != 2300 {
		t.Fatalf("EdgeAt(2) = %d", c.EdgeAt(2))
	}
}

// Property: NextEdge always returns an edge (multiple of period plus phase)
// that is >= the query time and < query + period.
func TestClockNextEdgeProperty(t *testing.T) {
	f := func(periodRaw uint16, atRaw uint32) bool {
		period := Time(periodRaw%5000) + 1
		c := NewClock("q", period)
		at := Time(atRaw % 1000000)
		e := c.NextEdge(at)
		if e < at || e >= at+period {
			return false
		}
		return e%period == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadBasic(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Go("worker", func(th *Thread) {
		trace = append(trace, th.Now())
		th.Sleep(5 * NS)
		trace = append(trace, th.Now())
		th.Sleep(10 * NS)
		trace = append(trace, th.Now())
	})
	e.Run(0)
	want := []Time{0, 5 * NS, 15 * NS}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.LiveThreads() != 0 {
		t.Fatalf("live threads = %d", e.LiveThreads())
	}
}

func TestThreadInterleavingDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 4; i++ {
			name := string(rune('a' + i))
			d := Time(i+1) * NS
			e.Go(name, func(th *Thread) {
				for k := 0; k < 3; k++ {
					th.Sleep(d)
					log = append(log, name)
				}
			})
		}
		e.Run(0)
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("nondeterministic length")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("nondeterministic interleaving: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestThreadSleepCycles(t *testing.T) {
	e := NewEngine()
	clk := NewClock("c", 10*NS)
	var at Time
	e.Go("t", func(th *Thread) {
		th.Sleep(3 * NS) // now at 3ns, mid-cycle
		th.SleepCycles(clk, 2)
		at = th.Now()
	})
	e.Run(0)
	// Edges at 0,10,20,...; 2 edges strictly after 3ns -> 20ns.
	if at != 20*NS {
		t.Fatalf("SleepCycles landed at %v, want 20ns", at)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var woke []string
	for _, n := range []string{"x", "y", "z"} {
		n := n
		e.Go(n, func(th *Thread) {
			c.Wait(th)
			woke = append(woke, n)
		})
	}
	e.At(10*NS, func() { c.Signal() })
	e.At(20*NS, func() { c.Broadcast() })
	e.Run(0)
	if len(woke) != 3 || woke[0] != "x" {
		t.Fatalf("woke = %v", woke)
	}
	if e.LiveThreads() != 0 {
		t.Fatalf("threads leaked")
	}
}

func TestCondFIFOOrder(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var woke []int
	for i := 0; i < 8; i++ {
		i := i
		e.Go("w", func(th *Thread) {
			c.Wait(th)
			woke = append(woke, i)
		})
	}
	e.At(1*NS, func() {
		for i := 0; i < 8; i++ {
			c.Signal()
		}
	})
	e.Run(0)
	for i := range woke {
		if woke[i] != i {
			t.Fatalf("wake order = %v", woke)
		}
	}
}

func TestDeadlockedThreadDetectable(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Go("stuck", func(th *Thread) { c.Wait(th) })
	e.Run(0)
	if e.LiveThreads() != 1 {
		t.Fatalf("expected 1 live (deadlocked) thread, got %d", e.LiveThreads())
	}
	// Wake it so the goroutine exits cleanly.
	c.Broadcast()
	e.Run(0)
	if e.LiveThreads() != 0 {
		t.Fatal("thread did not drain")
	}
}

func TestTXBreakdown(t *testing.T) {
	tx := NewTX(100 * NS)
	tx.Add(CatNoC, 10*NS)
	tx.Add(CatFast, 5*NS)
	tx.Add(CatCDC, 0) // ignored
	tx.Finish(130 * NS)
	if tx.Total() != 30*NS {
		t.Fatalf("total = %v", tx.Total())
	}
	if tx.Unattributed() != 15*NS {
		t.Fatalf("unattributed = %v", tx.Unattributed())
	}
	// nil-safety
	var nilTX *TX
	nilTX.Add(CatSlow, NS)
	nilTX.Finish(0)
	if nilTX.Total() != 0 || nilTX.Unattributed() != 0 {
		t.Fatal("nil TX not inert")
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:       "500ps",
		1500:      "1.500ns",
		2500 * NS: "2.500us",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}
