//go:build !race

package workload

// raceEnabled reports whether the race detector is compiled in; the
// capacity-scale tests skip under it (its shadow heap and 10-20x
// slowdown make memory and runtime bounds meaningless).
const raceEnabled = false
