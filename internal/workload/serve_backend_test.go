package workload

import (
	"reflect"
	"testing"

	"duet/internal/cluster"
	"duet/internal/sched"
	"duet/internal/sim"
)

// TestModelBackendMatchesCycleServe is the backend-equivalence golden:
// the serve study run on the analytic model backend must reproduce the
// cycle-level backend's statistics on the golden config — identical
// throughput, utilization and accounting counters, identical exact
// quantiles — across every classic policy and several seeds. The model
// path shares the scheduler and the cost formulas with the cycle path,
// so agreement is exact, not approximate.
func TestModelBackendMatchesCycleServe(t *testing.T) {
	for p := sched.Policy(0); p < sched.NumPolicies; p++ {
		for _, seed := range []int64{1, 7, 42} {
			cfg := ServeConfig{Policy: p, Jobs: 240, Seed: seed}
			cycle := Serve(cfg)
			cfg.Backend = BackendModel
			mdl := Serve(cfg)
			cycle.Backend = mdl.Backend // the mode tag is the one allowed difference
			if !reflect.DeepEqual(cycle, mdl) {
				t.Fatalf("policy %v seed %d: model backend diverged from cycle:\ncycle: %+v\nmodel: %+v",
					p, seed, cycle.Stats, mdl.Stats)
			}
		}
	}
}

// TestModelBackendStreamingQuantiles runs the same comparison in
// streaming-stats mode: counters still match exactly; p50/p99 come from
// each side's digest and must agree within the digest's documented
// relative error.
func TestModelBackendStreamingQuantiles(t *testing.T) {
	cfg := ServeConfig{Policy: sched.FIFO, Jobs: 2000, Seed: 3, Stats: sched.StatsStreaming}
	cycle := Serve(cfg)
	cfg.Backend = BackendModel
	mdl := Serve(cfg)
	if cycle.Completed != mdl.Completed || cycle.Rejected != mdl.Rejected ||
		cycle.Reconfigs != mdl.Reconfigs || cycle.Makespan != mdl.Makespan {
		t.Fatalf("streaming counters diverged:\ncycle: %+v\nmodel: %+v", cycle.Stats, mdl.Stats)
	}
	for _, q := range []struct {
		name   string
		cy, md sim.Time
	}{{"p50", cycle.P50, mdl.P50}, {"p99", cycle.P99, mdl.P99}} {
		lo := q.cy - sim.Time(float64(q.cy)*sched.DigestRelError) - 1
		hi := q.cy + sim.Time(float64(q.cy)*sched.DigestRelError) + 1
		if q.md < lo || q.md > hi {
			t.Fatalf("%s: model %v outside cycle %v ± digest bound", q.name, q.md, q.cy)
		}
	}
}

// TestModelBackendMatchesCycleCluster extends the equivalence to the
// sharded farm: an all-model cluster reproduces the all-cycle cluster
// exactly under every front end.
func TestModelBackendMatchesCycleCluster(t *testing.T) {
	for fe := cluster.FrontEnd(0); fe < cluster.NumFrontEnds; fe++ {
		cfg := ClusterConfig{
			ServeConfig: ServeConfig{Policy: sched.Affinity, Jobs: 120, Seed: 7},
			Shards:      3,
			FrontEnd:    fe,
		}
		cycle, err := ServeCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backend = BackendModel
		mdl, err := ServeCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cycle.Backend = mdl.Backend
		if !reflect.DeepEqual(cycle, mdl) {
			t.Fatalf("front end %v: model cluster diverged from cycle:\ncycle: %+v\nmodel: %+v",
				fe, cycle.Merged, mdl.Merged)
		}
	}
}

// TestCrossValidate exercises the duetsim xval study: on the golden
// config every policy must agree within the documented tolerance (the
// shared-code design makes the observed error 0).
func TestCrossValidate(t *testing.T) {
	var cfgs []ServeConfig
	for p := sched.Policy(0); p < sched.NumPolicies; p++ {
		cfgs = append(cfgs, ServeConfig{Policy: p})
	}
	// A hybrid row with a real soft-path pool on both sides (hybrid
	// Dolly vs analytic replica) cross-validates the CPU spill path.
	cfgs = append(cfgs, ServeConfig{Policy: sched.Hybrid, EFPGAs: 1, SoftCPUs: 1, MeanGapUS: 8, QueueCap: 1024})
	for _, row := range CrossValidate(0, cfgs) {
		if !row.CountersMatch {
			t.Fatalf("policy %v: counters diverge:\ncycle: %+v\nmodel: %+v", row.Policy, row.Cycle.Stats, row.Model.Stats)
		}
		if row.P50RelErr > XValTolerance || row.P99RelErr > XValTolerance {
			t.Fatalf("policy %v: quantile error p50=%.4f p99=%.4f exceeds tolerance %.4f",
				row.Policy, row.P50RelErr, row.P99RelErr, XValTolerance)
		}
	}
}

// TestHybridServeSpills: the hybrid backend under the Hybrid policy on a
// saturating load completes everything, uses the soft path, and clears
// the offered jobs faster than the fabric-only run that would otherwise
// queue unboundedly.
func TestHybridServeSpills(t *testing.T) {
	base := ServeConfig{Policy: sched.Affinity, Jobs: 320, Seed: 1, MeanGapUS: 5, QueueCap: 1024}
	fabricOnly := Serve(base)

	hybrid := base
	hybrid.Policy = sched.Hybrid
	hybrid.Backend = BackendHybrid
	hybrid.SoftCPUs = 2
	r := Serve(hybrid)
	if r.Completed != hybrid.Jobs {
		t.Fatalf("hybrid completed %d of %d", r.Completed, hybrid.Jobs)
	}
	soft := 0
	for _, f := range r.Fabrics[len(r.Fabrics)-hybrid.SoftCPUs:] {
		soft += f.Jobs
	}
	if soft == 0 {
		t.Fatal("saturating load never used the soft path")
	}
	if r.Makespan >= fabricOnly.Makespan {
		t.Fatalf("soft-path spill did not help: hybrid makespan %v vs fabric-only %v",
			r.Makespan, fabricOnly.Makespan)
	}
	t.Logf("hybrid: %d of %d jobs on the soft path, makespan %v vs fabric-only %v",
		soft, hybrid.Jobs, r.Makespan, fabricOnly.Makespan)
}

// TestHeterogeneousClusterShards: a cluster mixing cycle and model
// shards with different fabric counts runs deterministically, completes
// the stream, and routes by per-shard capacity.
func TestHeterogeneousClusterShards(t *testing.T) {
	cfg := ClusterConfig{
		ServeConfig: ServeConfig{Policy: sched.Affinity, Jobs: 200, Seed: 5, MeanGapUS: 8, QueueCap: 1024},
		Shards:      3,
		FrontEnd:    cluster.LeastOutstanding,
		ShardSpecs: []ShardSpec{
			{Backend: BackendCycle, EFPGAs: 1},
			{Backend: BackendModel, EFPGAs: 4},
			{Backend: BackendHybrid, EFPGAs: 1, SoftCPUs: 1, Policy: sched.Hybrid, SetPolicy: true},
		},
	}
	r1, err := ServeCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ServeCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("heterogeneous cluster runs diverged")
	}
	if r1.Merged.Completed+r1.Merged.Failed+r1.Merged.Rejected != r1.Offered {
		t.Fatalf("accounted %d of %d", r1.Merged.Completed+r1.Merged.Failed, r1.Offered)
	}
	if r1.PerShard[1].Assigned <= r1.PerShard[0].Assigned {
		t.Fatalf("4-fabric model shard got %d jobs vs 1-fabric cycle shard's %d",
			r1.PerShard[1].Assigned, r1.PerShard[0].Assigned)
	}
}

// TestBackendModeNames pins the flag surface of -backend.
func TestBackendModeNames(t *testing.T) {
	for m := BackendMode(0); m < NumBackendModes; m++ {
		got, err := BackendModeByName(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: %v %v", m, got, err)
		}
	}
	if _, err := BackendModeByName("quantum"); err == nil {
		t.Fatal("bogus backend name parsed")
	}
}
