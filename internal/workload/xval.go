package workload

import (
	"math"

	"duet/internal/sched"
	"duet/internal/sim"
)

// This file implements the backend cross-validation study behind
// `duetsim xval`: the golden serve configuration run on the cycle-level
// backend and on internal/model's analytic fast path, compared field by
// field. The model backend drives the same scheduler code over the same
// cost formulas, so the expectation is exact agreement; the documented
// tolerance below exists to absorb the one legitimate divergence class —
// same-instant event-ordering ties, which can reorder two completions
// that land on the same picosecond — and the streaming digest's
// quantile error when the comparison runs in streaming mode.

// XValTolerance is the documented bound on the model-vs-cycle relative
// error of the p50/p99 sojourn quantiles (also the CI gate): the
// streaming digest's <0.8% relative value error plus slack for
// same-instant ordering ties. Exact-mode runs are expected to agree to
// 0 error.
const XValTolerance = 0.01

// XValRow is one cross-validation point: a serve config run on both
// backends, with the relative quantile errors.
type XValRow struct {
	Policy sched.Policy
	Cycle  ServeResult
	Model  ServeResult

	// P50RelErr and P99RelErr are |model - cycle| / cycle (0 when the
	// cycle value is 0).
	P50RelErr float64
	P99RelErr float64
	// CountersMatch reports whether the job-accounting counters —
	// completed, failed, rejected, reconfigs, deadline misses, makespan,
	// and the fault-path counters (wedges, retries, quarantines,
	// timeouts, unavailable, repairs, probation failures, quarantine
	// time) — agree exactly.
	CountersMatch bool
}

// relErr is |a-b| / |b|, 0 when b is 0.
func relErr(a, b sim.Time) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(a-b)) / math.Abs(float64(b))
}

// CrossValidate runs each config on the cycle-level backend and on the
// model backend and reports the per-config comparison. The configs'
// Backend field is overridden per side; a config with SoftCPUs gets the
// same soft-path pool on both sides (hybrid Dolly vs analytic replica),
// so the CPU spill path is cross-validated too.
func CrossValidate(parallel int, cfgs []ServeConfig) []XValRow {
	both := make([]ServeConfig, 0, 2*len(cfgs))
	for _, cfg := range cfgs {
		cycle, mdl := cfg, cfg
		cycle.Backend = BackendCycle
		if cfg.SoftCPUs > 0 {
			cycle.Backend = BackendHybrid
		}
		mdl.Backend = BackendModel
		both = append(both, cycle, mdl)
	}
	results := ServeStudy(parallel, both)
	rows := make([]XValRow, len(cfgs))
	for i := range cfgs {
		cy, md := results[2*i], results[2*i+1]
		rows[i] = XValRow{
			Policy:    cfgs[i].Policy,
			Cycle:     cy,
			Model:     md,
			P50RelErr: relErr(md.P50, cy.P50),
			P99RelErr: relErr(md.P99, cy.P99),
			CountersMatch: cy.Completed == md.Completed &&
				cy.Failed == md.Failed &&
				cy.Rejected == md.Rejected &&
				cy.Reconfigs == md.Reconfigs &&
				cy.DeadlineMisses == md.DeadlineMisses &&
				cy.Makespan == md.Makespan &&
				cy.TimedOut == md.TimedOut &&
				cy.Unavailable == md.Unavailable &&
				cy.Wedges == md.Wedges &&
				cy.Retries == md.Retries &&
				cy.Quarantined == md.Quarantined &&
				cy.Repairs == md.Repairs &&
				cy.ProbationFails == md.ProbationFails &&
				cy.QuarantineTime == md.QuarantineTime,
		}
	}
	return rows
}
