package workload

import (
	"encoding/json"
	"fmt"

	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/sim"
	"duet/internal/study"

	"duet/internal/efpga"
)

// ContentionKind names the four series of Fig. 11.
type ContentionKind int

// Contention series.
const (
	NormalRegWrite ContentionKind = iota
	NormalRegRead
	ShadowRegWrite
	ShadowRegRead
	NumContentionKinds
)

func (k ContentionKind) String() string {
	return [...]string{
		"Normal Reg. Write",
		"Normal Reg. Read",
		"Shadow Reg. Write (This Work)",
		"Shadow Reg. Read (This Work)",
	}[k]
}

// MarshalJSON encodes the series as its String name for machine-readable
// study output.
func (k ContentionKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Fig11Row is one point of Fig. 11: per-processor bandwidth with n
// processors contending on the same soft register (eFPGA at 500 MHz).
type Fig11Row struct {
	Kind        ContentionKind
	Procs       int
	PerProcMBps float64
}

const contentionOpsPerProc = 200

// MeasureContention runs the contention probe for one series and one
// processor count.
func MeasureContention(kind ContentionKind, procs int) Fig11Row {
	regKind := core.RegNormal
	if kind == ShadowRegWrite || kind == ShadowRegRead {
		regKind = core.RegPlain
	}
	sys := duet.New(duet.Config{
		Cores: procs, MemHubs: 1, Style: duet.StyleDuet,
		RegSpecs:    []core.SoftRegSpec{{Kind: regKind}},
		FPGAFreqMHz: 500,
	})
	bs := efpga.Synthesize(efpga.Design{Name: "regfile", LUTLogic: 64, RegBits: 64, PipelineDepth: 2},
		func() efpga.Accelerator { return accelNop{} })
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		panic(err)
	}
	sys.Fabric.SetFreqMHz(500)
	sys.Adapter.StartAccelerator()

	addr := duet.SoftRegAddr(0)
	write := kind == NormalRegWrite || kind == ShadowRegWrite
	elapsed := make([]sim.Time, procs)
	for i := 0; i < procs; i++ {
		i := i
		sys.Cores[i].Run(fmt.Sprintf("contend%d", i), func(p cpu.Proc) {
			p.Exec(int64(10 * i)) // stagger starts slightly
			start := p.Now()
			for k := 0; k < contentionOpsPerProc; k++ {
				p.Exec(2)
				if write {
					p.MMIOWrite64(addr, uint64(k))
				} else {
					p.MMIORead64(addr)
				}
			}
			elapsed[i] = p.Now() - start
		})
	}
	sys.Run()

	// Per-processor bandwidth: each processor's own op stream over its
	// own elapsed time, averaged.
	total := 0.0
	for _, e := range elapsed {
		total += bytesPerSecMB(contentionOpsPerProc*8, e)
	}
	return Fig11Row{Kind: kind, Procs: procs, PerProcMBps: total / float64(procs)}
}

// Fig11 regenerates the contention study on a default-width study pool.
func Fig11(counts []int) []Fig11Row { return Fig11P(0, counts) }

// Fig11P regenerates Fig. 11 on a parallel-wide study pool (<= 0 selects
// GOMAXPROCS); rows are identical for every pool width.
func Fig11P(parallel int, counts []int) []Fig11Row {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	return study.Run(parallel, int(NumContentionKinds)*len(counts), func(i int) Fig11Row {
		return MeasureContention(ContentionKind(i/len(counts)), counts[i%len(counts)])
	})
}

type accelNop struct{}

func (accelNop) Start(*efpga.Env) {}
