package workload

import (
	"reflect"
	"testing"

	"duet/internal/cluster"
	"duet/internal/sim"
)

// TestWindowWidth: the derived width must put the last arrival inside
// window n-1 (n windows cover the stream) and be a pure function of the
// stream, with 0 disabling telemetry.
func TestWindowWidth(t *testing.T) {
	stream := []cluster.Arrival{{At: 0}, {At: 999}}
	if w := windowWidth(stream, 0); w != 0 {
		t.Fatalf("width(n=0) = %v, want 0", w)
	}
	if w := windowWidth(nil, 8); w != 0 {
		t.Fatalf("width(empty) = %v, want 0", w)
	}
	for _, n := range []int{1, 2, 7, 64, 1000, 5000} {
		w := windowWidth(stream, n)
		if w < 1 {
			t.Fatalf("width(n=%d) = %v", n, w)
		}
		last := int64(stream[len(stream)-1].At)
		if last/int64(w) >= int64(n) {
			t.Fatalf("n=%d width=%v: last arrival lands in window %d", n, w, last/int64(w))
		}
		// Smallest such width: one unit narrower must overflow window n-1
		// (until the width floors at 1).
		if w > 1 && last/(int64(w)-1) < int64(n) {
			t.Fatalf("n=%d width=%v is not minimal", n, w)
		}
	}
}

// TestServeWindowsOffByDefault: without cfg.Windows the serve result
// must not carry a series (and pays no recorder cost).
func TestServeWindowsOffByDefault(t *testing.T) {
	if res := Serve(ServeConfig{Jobs: 40}); res.Windows != nil {
		t.Fatalf("Windows = %v without cfg.Windows", res.Windows)
	}
}

// TestServeWindowsMatchStats: the window series is a decomposition of
// the run — summed over windows it must reproduce the end-of-run
// counters exactly, and the series must cover the configured window
// count (completions may trail into a few extra windows).
func TestServeWindowsMatchStats(t *testing.T) {
	for _, be := range []BackendMode{BackendCycle, BackendModel, BackendHybrid} {
		cfg := ServeConfig{Jobs: 120, Windows: 16, Backend: be, QueueCap: 8}
		res := Serve(cfg)
		if len(res.Windows) < 16 {
			t.Fatalf("%v: %d windows, want >= 16", be, len(res.Windows))
		}
		var arrivals, completions, failures, rejects, reprograms int
		var busy sim.Time
		for _, w := range res.Windows {
			arrivals += w.Arrivals
			completions += w.Completions
			failures += w.Failures
			rejects += w.Rejects
			reprograms += w.Reprograms
			busy += w.BusyTotal
		}
		if arrivals != res.Offered {
			t.Errorf("%v: window arrivals %d != offered %d", be, arrivals, res.Offered)
		}
		if completions != res.Completed {
			t.Errorf("%v: window completions %d != completed %d", be, completions, res.Completed)
		}
		if failures != res.Failed {
			t.Errorf("%v: window failures %d != failed %d", be, failures, res.Failed)
		}
		if rejects != res.Rejected {
			t.Errorf("%v: window rejects %d != rejected %d", be, rejects, res.Rejected)
		}
		if reprograms != res.Reconfigs {
			t.Errorf("%v: window reprograms %d != reconfigs %d", be, reprograms, res.Reconfigs)
		}
		if completions > 0 && busy == 0 {
			t.Errorf("%v: no busy time recorded across %d completions", be, completions)
		}
	}
}

// TestClusterWindowsDeterministic: the merged cluster window series must
// be identical at every study-pool width and across repeated runs — the
// telemetry extension of the cluster determinism contract.
func TestClusterWindowsDeterministic(t *testing.T) {
	cfgs := []ClusterConfig{{
		ServeConfig: ServeConfig{Jobs: 160, Windows: 24},
		Shards:      4,
		FrontEnd:    cluster.LeastOutstanding,
	}}
	seq, err := ClusterStudy(1, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if seq[0].Windows == nil {
		t.Fatal("no window series recorded")
	}
	for run := 0; run < 3; run++ {
		par, err := ClusterStudy(8, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par[0].Windows, seq[0].Windows) {
			t.Fatalf("run %d: window series diverged from the sequential run", run)
		}
	}
}

// TestClusterWindowsMergeShards: the cluster's merged series must carry
// one busy column per worker across all shards, and its per-window
// counters must equal the shard recorders' sum.
func TestClusterWindowsMergeShards(t *testing.T) {
	res, err := ServeCluster(ClusterConfig{
		ServeConfig: ServeConfig{Jobs: 120, Windows: 12, EFPGAs: 2},
		Shards:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows == nil {
		t.Fatal("no merged window series")
	}
	if got := len(res.Windows[0].Busy); got != 3*2 {
		t.Fatalf("merged busy columns = %d, want shards x efpgas = 6", got)
	}
	var merged, perShard int
	for _, w := range res.Windows {
		merged += w.Completions
	}
	for _, s := range res.PerShard {
		if s.Windows == nil {
			t.Fatal("shard missing its recorder")
		}
		for _, w := range s.Windows.Series() {
			perShard += w.Completions
		}
	}
	if merged != perShard || merged != res.Merged.Completed {
		t.Fatalf("completions: merged series %d, shard series %d, stats %d", merged, perShard, res.Merged.Completed)
	}
}

// TestWindowQuantilesModelVsCycle: the per-window p50/p99 cross-check —
// the analytic model backend must reproduce the cycle-level backend's
// per-window quantiles within the xval tolerance, window for window
// (windows whose sojourns sit at the scale of the per-job cycle/model
// skew are compared with the same absolute allowance xval grants the
// whole-run quantiles).
func TestWindowQuantilesModelVsCycle(t *testing.T) {
	base := ServeConfig{Jobs: 240, Windows: 16}
	cycleRes := Serve(base)
	modelCfg := base
	modelCfg.Backend = BackendModel
	modelRes := Serve(modelCfg)
	if len(cycleRes.Windows) != len(modelRes.Windows) {
		t.Fatalf("window counts diverge: cycle %d, model %d", len(cycleRes.Windows), len(modelRes.Windows))
	}
	check := func(win int, name string, c, m sim.Time) {
		diff := float64(c - m)
		if diff < 0 {
			diff = -diff
		}
		if c > 0 && diff/float64(c) > XValTolerance {
			t.Errorf("window %d %s: cycle %v vs model %v (%.2f%% > %.2f%%)",
				win, name, c, m, 100*diff/float64(c), 100*XValTolerance)
		}
	}
	for i := range cycleRes.Windows {
		cw, mw := cycleRes.Windows[i], modelRes.Windows[i]
		if cw.Arrivals != mw.Arrivals {
			t.Errorf("window %d arrivals: cycle %d vs model %d", i, cw.Arrivals, mw.Arrivals)
		}
		check(i, "p50", cw.P50, mw.P50)
		check(i, "p99", cw.P99, mw.P99)
	}
}
