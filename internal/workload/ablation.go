package workload

import (
	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// MeasureHubWindow is the ablation behind Fig. 10's bandwidth ceiling: it
// reruns the eFPGA-pull transfer with the Proxy Cache's in-flight request
// window forced to `outstanding` and reports MB/s. The paper attributes
// the peak bandwidth to "the number of concurrent, in-flight memory
// requests supported by the Proxy Cache" (§V-C); this measures exactly
// that sensitivity.
func MeasureHubWindow(outstanding int, freqMHz float64) float64 {
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 1, Style: duet.StyleDuet,
		RegSpecs: bwSpecs(false), FPGAFreqMHz: freqMHz,
	})
	acc := &bwAccel{}
	bs := efpga.Synthesize(efpga.Design{Name: "scratchpad", LUTLogic: 200, RAMKb: 32, RegBits: 256, PipelineDepth: 3},
		func() efpga.Accelerator { return acc })
	sys.Fabric.Register(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		panic(err)
	}
	sys.Fabric.SetFreqMHz(freqMHz)
	sys.Adapter.Hub(0).SetMaxOutstanding(outstanding)
	sys.Adapter.StartAccelerator()

	bufA := sys.Alloc(xferBytes)
	bufB := sys.Alloc(xferBytes)
	sys.Cores[0].Run("bw", func(p cpu.Proc) {
		duet.EnableHub(p, 0, false, false, false)
		for i := 0; i < xferWords; i++ {
			p.Store64(bufA+uint64(i*8), uint64(i))
		}
		p.MMIOWrite64(duet.SoftRegAddr(bwRegBaseA), bufA)
		p.MMIOWrite64(duet.SoftRegAddr(bwRegBaseB), bufB)
		p.Fence()
		p.MMIORead64(duet.SoftRegAddr(bwRegWake))
	})
	sys.Run()
	return bytesPerSecMB(xferBytes, acc.pullLeg)
}

// MeasureSyncStagesLatency is the CDC-depth ablation: the normal-register
// round trip with the paper's 2-stage synchronizers versus deeper chains.
// Deeper synchronizers harden against metastability at a direct cost on
// every crossing; this quantifies the trade the paper's §IV design point
// makes. (The FIFO depth itself is held constant.)
func MeasureSyncStagesLatency(stages int, freqMHz float64) sim.Time {
	core.SyncStagesOverride = stages
	defer func() { core.SyncStagesOverride = 0 }()
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 0, Style: duet.StyleDuet,
		RegSpecs:    []core.SoftRegSpec{{Kind: core.RegNormal}},
		FPGAFreqMHz: freqMHz,
	})
	bs := efpga.Synthesize(efpga.Design{Name: "reg", LUTLogic: 40, PipelineDepth: 2},
		func() efpga.Accelerator { return accelNop{} })
	sys.Fabric.Register(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		panic(err)
	}
	sys.Fabric.SetFreqMHz(freqMHz)
	sys.Adapter.StartAccelerator()

	var lat sim.Time
	sys.Cores[0].Run("probe", func(p cpu.Proc) {
		p.Exec(100)
		start := p.Now()
		p.MMIOWrite64(duet.SoftRegAddr(0), 1)
		lat = p.Now() - start
	})
	sys.Run()
	return lat
}
