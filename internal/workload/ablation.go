package workload

import (
	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
	"duet/internal/study"
)

// HubWindowRow is one point of the Proxy Cache in-flight window ablation.
type HubWindowRow struct {
	Outstanding int
	FreqMHz     float64
	MBps        float64
}

// SyncDepthRow is one point of the CDC synchronizer depth ablation.
type SyncDepthRow struct {
	Stages  int
	FreqMHz float64
	Latency sim.Time
}

// AblationResult bundles both sweeps of `duetsim ablate`.
type AblationResult struct {
	HubWindow []HubWindowRow
	SyncDepth []SyncDepthRow
}

// Ablation runs the hub-window and synchronizer-depth ablations as one
// flat grid on a parallel-wide study pool (<= 0 selects GOMAXPROCS).
// Empty windows/stages select the defaults behind `duetsim ablate`.
// Each point is an independent System — the synchronizer depth travels
// through duet.Config.SyncStages, not a package global — so the result
// is identical for every pool width.
func Ablation(parallel int, windows, stages []int, freqMHz float64) AblationResult {
	if len(windows) == 0 {
		windows = []int{1, 2, 4, 8}
	}
	if len(stages) == 0 {
		stages = []int{2, 3, 4}
	}
	if freqMHz <= 0 {
		freqMHz = 100
	}
	type point struct {
		hub HubWindowRow
		cdc SyncDepthRow
	}
	pts := study.Run(parallel, len(windows)+len(stages), func(i int) point {
		if i < len(windows) {
			w := windows[i]
			return point{hub: HubWindowRow{Outstanding: w, FreqMHz: freqMHz, MBps: MeasureHubWindow(w, freqMHz)}}
		}
		st := stages[i-len(windows)]
		return point{cdc: SyncDepthRow{Stages: st, FreqMHz: freqMHz, Latency: MeasureSyncStagesLatency(st, freqMHz)}}
	})
	res := AblationResult{}
	for _, p := range pts[:len(windows)] {
		res.HubWindow = append(res.HubWindow, p.hub)
	}
	for _, p := range pts[len(windows):] {
		res.SyncDepth = append(res.SyncDepth, p.cdc)
	}
	return res
}

// MeasureHubWindow is the ablation behind Fig. 10's bandwidth ceiling: it
// reruns the eFPGA-pull transfer with the Proxy Cache's in-flight request
// window forced to `outstanding` and reports MB/s. The paper attributes
// the peak bandwidth to "the number of concurrent, in-flight memory
// requests supported by the Proxy Cache" (§V-C); this measures exactly
// that sensitivity.
func MeasureHubWindow(outstanding int, freqMHz float64) float64 {
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 1, Style: duet.StyleDuet,
		RegSpecs: bwSpecs(false), FPGAFreqMHz: freqMHz,
	})
	acc := &bwAccel{}
	bs := efpga.Synthesize(efpga.Design{Name: "scratchpad", LUTLogic: 200, RAMKb: 32, RegBits: 256, PipelineDepth: 3},
		func() efpga.Accelerator { return acc })
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		panic(err)
	}
	sys.Fabric.SetFreqMHz(freqMHz)
	sys.Adapter.Hub(0).SetMaxOutstanding(outstanding)
	sys.Adapter.StartAccelerator()

	bufA := sys.Alloc(xferBytes)
	bufB := sys.Alloc(xferBytes)
	sys.Cores[0].Run("bw", func(p cpu.Proc) {
		duet.EnableHub(p, 0, false, false, false)
		for i := 0; i < xferWords; i++ {
			p.Store64(bufA+uint64(i*8), uint64(i))
		}
		p.MMIOWrite64(duet.SoftRegAddr(bwRegBaseA), bufA)
		p.MMIOWrite64(duet.SoftRegAddr(bwRegBaseB), bufB)
		p.Fence()
		p.MMIORead64(duet.SoftRegAddr(bwRegWake))
	})
	sys.Run()
	return bytesPerSecMB(xferBytes, acc.pullLeg)
}

// MeasureSyncStagesLatency is the CDC-depth ablation: the normal-register
// round trip with the paper's 2-stage synchronizers versus deeper chains.
// Deeper synchronizers harden against metastability at a direct cost on
// every crossing; this quantifies the trade the paper's §IV design point
// makes. (The FIFO depth itself is held constant.)
func MeasureSyncStagesLatency(stages int, freqMHz float64) sim.Time {
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 0, Style: duet.StyleDuet,
		RegSpecs:    []core.SoftRegSpec{{Kind: core.RegNormal}},
		FPGAFreqMHz: freqMHz,
		SyncStages:  stages,
	})
	bs := efpga.Synthesize(efpga.Design{Name: "reg", LUTLogic: 40, PipelineDepth: 2},
		func() efpga.Accelerator { return accelNop{} })
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		panic(err)
	}
	sys.Fabric.SetFreqMHz(freqMHz)
	sys.Adapter.StartAccelerator()

	var lat sim.Time
	sys.Cores[0].Run("probe", func(p cpu.Proc) {
		p.Exec(100)
		start := p.Now()
		p.MMIOWrite64(duet.SoftRegAddr(0), 1)
		lat = p.Now() - start
	})
	sys.Run()
	return lat
}
