package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// chaosJSON renders a scenario outcome exactly as the golden files and
// `duetsim -json chaos` do.
func chaosJSON(t *testing.T, cr ChaosResult) []byte {
	t.Helper()
	b, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestChaosGolden pins every named scenario's full outcome — counters,
// quantiles, and the fault-telemetry window series — against a golden
// file. Regenerate with UPDATE_GOLDEN=1 after an intentional change.
func TestChaosGolden(t *testing.T) {
	for _, name := range ChaosScenarioNames() {
		t.Run(name, func(t *testing.T) {
			cr, err := RunChaos(name, BackendModel)
			if err != nil {
				t.Fatal(err)
			}
			got := chaosJSON(t, cr)
			path := filepath.Join("testdata", "chaos_"+name+".golden.json")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
			}
			if string(got) != string(want) {
				t.Errorf("scenario %s diverged from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestChaosFaultActivity asserts each scenario actually exercises its
// fault class — a scenario that injects nothing would make the golden
// test vacuous.
func TestChaosFaultActivity(t *testing.T) {
	checks := map[string]func(ChaosResult) error{
		"wedge-storm": func(c ChaosResult) error {
			if c.Wedges == 0 || c.Retries == 0 || c.Quarantined == 0 {
				return fmt.Errorf("expected wedges/retries/quarantines, got %d/%d/%d", c.Wedges, c.Retries, c.Quarantined)
			}
			return nil
		},
		"shard-crash-rejoin": func(c ChaosResult) error {
			if c.Rerouted == 0 || c.Hedged == 0 {
				return fmt.Errorf("expected reroutes and hedges, got %d/%d", c.Rerouted, c.Hedged)
			}
			return nil
		},
		"deadline-burst": func(c ChaosResult) error {
			if c.TimedOut == 0 {
				return fmt.Errorf("expected timed-out jobs, got 0")
			}
			return nil
		},
		"quarantine-heal": func(c ChaosResult) error {
			if c.Wedges == 0 || c.Repairs == 0 {
				return fmt.Errorf("expected wedges and repairs, got %d/%d", c.Wedges, c.Repairs)
			}
			if c.QuarantineTime == 0 {
				return fmt.Errorf("repairs repaid no quarantine time")
			}
			return nil
		},
		"rack-outage": func(c ChaosResult) error {
			// The health-weighted front end steers around the down domain,
			// so nothing needs rerouting; the hedge pass still fires for
			// arrivals placed on the rack just ahead of its crash.
			if c.Hedged == 0 {
				return fmt.Errorf("expected hedged duplicates ahead of the domain crash, got 0")
			}
			return nil
		},
		"flapping-fabric": func(c ChaosResult) error {
			if c.Repairs < 2 || c.ProbationFails < 1 {
				return fmt.Errorf("expected repeated repairs with probation failures, got %d/%d", c.Repairs, c.ProbationFails)
			}
			return nil
		},
	}
	for _, name := range ChaosScenarioNames() {
		cr, err := RunChaos(name, BackendModel)
		if err != nil {
			t.Fatal(err)
		}
		if err := checks[name](cr); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if cr.Completed == 0 {
			t.Errorf("%s: no job completed", name)
		}
	}
}

// TestChaosBackendsAgree is the cross-backend half of the chaos
// contract: under an identical fault plan, the cycle-level and analytic
// model backends report byte-identical scenario outcomes — the same
// wedges, quarantines, retries, timeouts, reroutes, and the same
// latency quantiles, because the injection seam sits below the shared
// sched.Backend interface.
func TestChaosBackendsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-backend chaos runs are not short")
	}
	for _, name := range ChaosScenarioNames() {
		t.Run(name, func(t *testing.T) {
			model, err := RunChaos(name, BackendModel)
			if err != nil {
				t.Fatal(err)
			}
			cycle, err := RunChaos(name, BackendCycle)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(model, cycle) {
				t.Errorf("cycle and model outcomes diverge:\n--- model ---\n%s\n--- cycle ---\n%s",
					chaosJSON(t, model), chaosJSON(t, cycle))
			}
		})
	}
}

// TestChaosStudyWidthInvariant runs the full scenario set at several
// study-pool widths and requires byte-identical outcomes — the chaos
// face of the repo-wide `-parallel` determinism contract.
func TestChaosStudyWidthInvariant(t *testing.T) {
	names := ChaosScenarioNames()
	base, err := ChaosStudy(1, names, BackendModel)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{2, 8} {
		got, err := ChaosStudy(width, names, BackendModel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("outcomes at width %d diverge from width 1", width)
		}
	}
}
