package workload

import (
	"reflect"
	"testing"

	"duet/internal/sched"
)

// TestServeDeterministic: two identical seeded runs must be
// indistinguishable — the acceptance bar for `duetsim serve` is
// byte-identical output per seed.
func TestServeDeterministic(t *testing.T) {
	cfg := ServeConfig{Policy: sched.Affinity, Jobs: 80, Seed: 42}
	r1 := Serve(cfg)
	r2 := Serve(cfg)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("identical seeded runs diverged:\n%+v\n%+v", r1, r2)
	}
	if r1.Completed != cfg.Jobs {
		t.Fatalf("completed %d of %d offered jobs", r1.Completed, cfg.Jobs)
	}
}

// TestServePoliciesDiffer: the reuse-aware policy must reprogram less
// than naive FIFO on the same arrival stream, and every policy must
// account for the full offered load.
func TestServePoliciesDiffer(t *testing.T) {
	var results []ServeResult
	for p := sched.Policy(0); p < sched.NumPolicies; p++ {
		r := Serve(ServeConfig{Policy: p, Jobs: 120, Seed: 3})
		results = append(results, r)
		if got := r.Completed + r.Failed + r.Rejected; got != r.Offered {
			t.Fatalf("%v: %d accounted of %d offered", p, got, r.Offered)
		}
		if len(r.Fabrics) != 2 {
			t.Fatalf("%v: %d fabrics, want 2", p, len(r.Fabrics))
		}
		for _, f := range r.Fabrics {
			if f.Utilization < 0 || f.Utilization > 1 {
				t.Fatalf("%v: utilization %v out of range", p, f.Utilization)
			}
		}
	}
	if aff, fifo := results[sched.Affinity].Reconfigs, results[sched.FIFO].Reconfigs; aff >= fifo {
		t.Fatalf("affinity reconfigs (%d) not below fifo (%d)", aff, fifo)
	}
}
