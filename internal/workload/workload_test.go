package workload

import (
	"testing"

	"duet/internal/sim"
)

// TestFig9Shapes verifies the paper's headline latency claims (§V-C):
//   - Shadow Registers and the Proxy Cache (CPU pull) have latencies
//     independent of the eFPGA clock;
//   - the Proxy Cache cuts CPU-pull latency by 42-82% and eFPGA-pull
//     latency by 13-43%;
//   - Shadow Registers cut register latency by 50-80%.
func TestFig9Shapes(t *testing.T) {
	freqs := []float64{100, 200, 500}
	get := func(m Mechanism) map[float64]Fig9Row {
		out := map[float64]Fig9Row{}
		for _, f := range freqs {
			out[f] = MeasureLatency(m, f)
		}
		return out
	}
	shadow := get(ShadowReg)
	normal := get(NormalReg)
	cpuProxy := get(CPUPullProxy)
	cpuSlow := get(CPUPullSlow)
	fpgaProxy := get(FPGAPullProxy)
	fpgaSlow := get(FPGAPullSlow)

	// Frequency-independence of the fast-domain mechanisms.
	if d := relSpread(shadow[100].Total, shadow[500].Total); d > 0.10 {
		t.Errorf("shadow reg latency varies %.0f%% with eFPGA clock (want ~constant): 100MHz=%v 500MHz=%v",
			d*100, shadow[100].Total, shadow[500].Total)
	}
	if d := relSpread(cpuProxy[100].Total, cpuProxy[500].Total); d > 0.10 {
		t.Errorf("CPU-pull proxy latency varies %.0f%% with eFPGA clock: %v vs %v",
			d*100, cpuProxy[100].Total, cpuProxy[500].Total)
	}

	// Slow mechanisms degrade as the eFPGA slows.
	if normal[100].Total <= normal[500].Total {
		t.Errorf("normal reg latency not increasing as eFPGA slows: %v vs %v", normal[100].Total, normal[500].Total)
	}
	if cpuSlow[100].Total <= cpuSlow[500].Total {
		t.Errorf("slow-cache CPU pull not increasing as eFPGA slows")
	}

	// Reduction bands.
	for _, f := range freqs {
		red := reduction(cpuProxy[f].Total, cpuSlow[f].Total)
		if red < 0.25 || red > 0.90 {
			t.Errorf("CPU pull reduction at %vMHz = %.0f%% (paper: 42-82%%)", f, red*100)
		}
		red = reduction(fpgaProxy[f].Total, fpgaSlow[f].Total)
		if red < 0.05 || red > 0.55 {
			t.Errorf("eFPGA pull reduction at %vMHz = %.0f%% (paper: 13-43%% over 20-500MHz)", f, red*100)
		}
		red = reduction(shadow[f].Total, normal[f].Total)
		if red < 0.35 || red > 0.90 {
			t.Errorf("shadow reg reduction at %vMHz = %.0f%% (paper: 50-80%%)", f, red*100)
		}
	}

	// Breakdown sanity: slow mechanisms must show slow-domain and CDC
	// time; shadow regs must not.
	if shadow[100].Breakdown[sim.CatSlow] != 0 {
		t.Errorf("shadow reg breakdown contains slow-domain time")
	}
	if normal[100].Breakdown[sim.CatSlow] == 0 || normal[100].Breakdown[sim.CatCDC] == 0 {
		t.Errorf("normal reg breakdown missing slow/CDC time: %+v", normal[100].Breakdown)
	}
	if cpuSlow[100].Breakdown[sim.CatCDC] == 0 {
		t.Errorf("slow-cache pull breakdown missing CDC time")
	}
	for _, f := range freqs {
		t.Logf("f=%3.0fMHz shadow=%6v normal=%6v cpuP=%6v cpuS=%6v fpgaP=%6v fpgaS=%6v",
			f, shadow[f].Total, normal[f].Total, cpuProxy[f].Total, cpuSlow[f].Total, fpgaProxy[f].Total, fpgaSlow[f].Total)
	}
}

func relSpread(a, b sim.Time) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 0
	}
	return float64(hi-lo) / float64(hi)
}

func reduction(fast, slow sim.Time) float64 {
	if slow == 0 {
		return 0
	}
	return 1 - float64(fast)/float64(slow)
}

// TestFig10Shapes verifies the bandwidth study's qualitative results:
// the Proxy Cache dominates the slow cache everywhere and saturates at
// low-to-mid eFPGA frequencies; Shadow Registers beat normal registers
// and saturate early; eFPGA pulls exceed CPU pulls (8-byte store limit).
func TestFig10Shapes(t *testing.T) {
	freqs := []float64{20, 100, 500}
	bw := func(m Mechanism) map[float64]float64 {
		out := map[float64]float64{}
		for _, f := range freqs {
			out[f] = MeasureBandwidth(m, f).MBps
		}
		return out
	}
	fpgaP := bw(FPGAPullProxy)
	fpgaS := bw(FPGAPullSlow)
	cpuP := bw(CPUPullProxy)
	cpuS := bw(CPUPullSlow)
	shadow := bw(ShadowReg)
	normal := bw(NormalReg)

	for _, f := range freqs {
		if fpgaP[f] <= fpgaS[f] {
			t.Errorf("eFPGA pull: proxy (%.0f) not above slow cache (%.0f) at %vMHz", fpgaP[f], fpgaS[f], f)
		}
		if cpuP[f] <= cpuS[f] {
			t.Errorf("CPU pull: proxy (%.0f) not above slow cache (%.0f) at %vMHz", cpuP[f], cpuS[f], f)
		}
		if shadow[f] <= normal[f] {
			t.Errorf("shadow regs (%.0f) not above normal regs (%.0f) at %vMHz", shadow[f], normal[f], f)
		}
		if fpgaP[f] <= cpuP[f] {
			t.Errorf("eFPGA pull (%.0f) not above CPU pull (%.0f) at %vMHz (8B store limit)", fpgaP[f], cpuP[f], f)
		}
	}
	// Proxy saturates by 100MHz: within 10% of its 500MHz value.
	if rel := relSpread(sim.Time(fpgaP[100]*1000), sim.Time(fpgaP[500]*1000)); rel > 0.10 {
		t.Errorf("proxy eFPGA pull not saturated at 100MHz: %.0f vs %.0f", fpgaP[100], fpgaP[500])
	}
	// The slow cache keeps gaining with frequency (it is clock-bound).
	if fpgaS[500] <= fpgaS[20]*1.5 {
		t.Errorf("slow cache bandwidth not clock-bound: %.0f @20MHz vs %.0f @500MHz", fpgaS[20], fpgaS[500])
	}
	// Largest proxy/slow gap occurs at a low-mid frequency and is large.
	gap100 := fpgaP[100] / fpgaS[100]
	gap500 := fpgaP[500] / fpgaS[500]
	if gap100 <= gap500 {
		t.Errorf("bandwidth gap not larger at 100MHz (%.1fx) than 500MHz (%.1fx)", gap100, gap500)
	}
	if gap100 < 2.0 {
		t.Errorf("peak bandwidth gap only %.1fx (paper: up to 9.5x)", gap100)
	}
	for _, f := range freqs {
		t.Logf("f=%3.0fMHz: normal=%5.0f shadow=%5.0f cpuP=%5.0f cpuS=%5.0f fpgaP=%5.0f fpgaS=%5.0f MB/s",
			f, normal[f], shadow[f], cpuP[f], cpuS[f], fpgaP[f], fpgaS[f])
	}
}

// TestFig11Shapes verifies the contention study: shadow registers sustain
// per-processor bandwidth to ~8 processors; normal registers collapse
// after ~2.
func TestFig11Shapes(t *testing.T) {
	counts := []int{1, 2, 8}
	per := func(k ContentionKind) map[int]float64 {
		out := map[int]float64{}
		for _, n := range counts {
			out[n] = MeasureContention(k, n).PerProcMBps
		}
		return out
	}
	sw := per(ShadowRegWrite)
	nw := per(NormalRegWrite)

	// Shadow: stable to 8 procs (>=60% of solo bandwidth).
	if sw[8] < 0.6*sw[1] {
		t.Errorf("shadow write per-proc bandwidth collapsed at 8 procs: %.0f vs solo %.0f", sw[8], sw[1])
	}
	// Normal: collapsed at 8 procs (<60% of solo).
	if nw[8] >= 0.6*nw[1] {
		t.Errorf("normal write per-proc bandwidth did not degrade at 8 procs: %.0f vs solo %.0f", nw[8], nw[1])
	}
	// Shadow beats normal at every count.
	for _, n := range counts {
		if sw[n] <= nw[n] {
			t.Errorf("shadow (%.0f) not above normal (%.0f) at %d procs", sw[n], nw[n], n)
		}
	}
	t.Logf("per-proc MB/s: shadow %v, normal %v", sw, nw)
}
