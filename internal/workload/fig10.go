package workload

import (
	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
	"duet/internal/study"
)

// Fig10Row is one point of Fig. 10: a mechanism's sustained bandwidth at
// one eFPGA frequency.
type Fig10Row struct {
	Mechanism Mechanism
	FreqMHz   float64
	MBps      float64
}

// The bandwidth study passes 512 quad-words (4 KB) from the processor to
// the eFPGA and back (paper §V-C).
const (
	xferWords = 512
	xferBytes = xferWords * 8
)

// Bandwidth-study soft register layout.
const (
	bwRegData  = 0 // register-mechanism data register (FIFO or normal)
	bwRegData2 = 1 // CPU-bound side
	bwRegBaseA = 2 // plain: source buffer base
	bwRegBaseB = 3 // plain: destination buffer base
	bwRegWake  = 4 // normal, claimed: blocking "go" read
)

func bwSpecs(shadow bool) []core.SoftRegSpec {
	kindW, kindR := core.RegNormal, core.RegNormal
	if shadow {
		kindW, kindR = core.RegFIFOToFPGA, core.RegFIFOToCPU
	}
	return []core.SoftRegSpec{
		{Kind: kindW, Depth: 8},
		{Kind: kindR, Depth: 8},
		{Kind: core.RegPlain},
		{Kind: core.RegPlain},
		{Kind: core.RegNormal},
	}
}

// bwAccel is the eFPGA side of the bandwidth study: a scratchpad memory
// plus a soft controller (paper Fig. 3).
type bwAccel struct {
	shadowRegs bool
	// measured legs
	pullLeg, pushLeg sim.Time
}

func (a *bwAccel) Start(env *efpga.Env) {
	if a.shadowRegs {
		env.Eng.Go("bw.regs", func(t *sim.Thread) {
			for i := 0; i < xferWords; i++ {
				env.Regs.PopFPGA(t, bwRegData)
			}
			for i := 0; i < xferWords; i++ {
				env.Regs.PushCPU(t, bwRegData2, uint64(i))
			}
		})
		return
	}
	env.Regs.Claim(bwRegWake)
	env.Eng.Go("bw.mem", func(t *sim.Thread) {
		op := env.Regs.WaitOp(t, bwRegWake)
		baseA := env.Regs.ReadPlain(bwRegBaseA)
		baseB := env.Regs.ReadPlain(bwRegBaseB)
		port := env.Mem[0]

		// Pull leg: load the whole array into the scratchpad, one line
		// per request, pipelined up to the hub's MSHR window.
		start := t.Now()
		const window = 8
		var handles []uint64
		await := func(n int) {
			for len(handles) > n {
				b, err := port.Await(t, handles[0])
				if err != nil {
					return
				}
				_ = b
				handles = handles[1:]
			}
		}
		for off := 0; off < xferBytes; off += 16 {
			handles = append(handles, port.LoadAsync(t, baseA+uint64(off), 16))
			await(window)
		}
		await(0)
		a.pullLeg = t.Now() - start

		// Push leg: store the array back, 8 bytes per request (the hub
		// store-width limit), pipelined.
		start = t.Now()
		var buf [8]byte
		for off := 0; off < xferBytes; off += 8 {
			handles = append(handles, port.StoreAsync(t, baseB+uint64(off), buf[:]))
			await(window)
		}
		await(0)
		a.pushLeg = t.Now() - start

		// Unblock the processor by acknowledging its blocked read.
		env.Regs.Complete(op, 1)
	})
}

// MeasureBandwidth runs one mechanism at one frequency and reports MB/s.
func MeasureBandwidth(mech Mechanism, freqMHz float64) Fig10Row {
	style := duet.StyleDuet
	if mech == CPUPullSlow || mech == FPGAPullSlow {
		style = duet.StyleFPSoC
	}
	shadow := mech == ShadowReg
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 1, Style: style,
		RegSpecs: bwSpecs(shadow), FPGAFreqMHz: freqMHz,
	})
	acc := &bwAccel{shadowRegs: mech == ShadowReg || mech == NormalReg}
	bs := efpga.Synthesize(efpga.Design{Name: "scratchpad", LUTLogic: 200, RAMKb: 32, RegBits: 256, PipelineDepth: 3},
		func() efpga.Accelerator { return acc })
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		panic(err)
	}
	sys.Fabric.SetFreqMHz(freqMHz)
	sys.Adapter.StartAccelerator()

	bufA := sys.Alloc(xferBytes)
	bufB := sys.Alloc(xferBytes)
	var mbps float64
	var cpuLoadLeg sim.Time

	sys.Cores[0].Run("bw", func(p cpu.Proc) {
		duet.EnableHub(p, 0, false, false, false)
		switch mech {
		case NormalReg, ShadowReg:
			// Register transfer: one integer per loop iteration, out then
			// back (paper §V-C).
			start := p.Now()
			for i := 0; i < xferWords; i++ {
				p.Exec(4)
				p.MMIOWrite64(duet.SoftRegAddr(bwRegData), uint64(i))
			}
			for i := 0; i < xferWords; i++ {
				p.Exec(4)
				p.MMIORead64(duet.SoftRegAddr(bwRegData2))
			}
			elapsed := p.Now() - start
			mbps = bytesPerSecMB(2*xferBytes, elapsed)
		default:
			// Shared-memory transfer.
			for i := 0; i < xferWords; i++ {
				p.Store64(bufA+uint64(i*8), uint64(i)|0xab00000000)
			}
			p.MMIOWrite64(duet.SoftRegAddr(bwRegBaseA), bufA)
			p.MMIOWrite64(duet.SoftRegAddr(bwRegBaseB), bufB)
			p.Fence()
			p.MMIORead64(duet.SoftRegAddr(bwRegWake)) // awaken eFPGA; block
			start := p.Now()
			for i := 0; i < xferWords; i++ {
				p.Exec(2)
				p.Load64(bufB + uint64(i*8))
			}
			cpuLoadLeg = p.Now() - start
		}
	})
	sys.Run()

	switch mech {
	case FPGAPullProxy, FPGAPullSlow:
		mbps = bytesPerSecMB(xferBytes, acc.pullLeg)
	case CPUPullProxy, CPUPullSlow:
		mbps = bytesPerSecMB(xferBytes, acc.pushLeg+cpuLoadLeg)
	}
	return Fig10Row{Mechanism: mech, FreqMHz: freqMHz, MBps: mbps}
}

// Fig10 regenerates the bandwidth study on a default-width study pool.
func Fig10(freqs []float64) []Fig10Row { return Fig10P(0, freqs) }

// Fig10P regenerates Fig. 10 on a parallel-wide study pool (<= 0 selects
// GOMAXPROCS); rows are identical for every pool width.
func Fig10P(parallel int, freqs []float64) []Fig10Row {
	if len(freqs) == 0 {
		freqs = []float64{20, 50, 100, 200, 500}
	}
	return study.Run(parallel, int(NumMechanisms)*len(freqs), func(i int) Fig10Row {
		return MeasureBandwidth(Mechanism(i/len(freqs)), freqs[i%len(freqs)])
	})
}

func bytesPerSecMB(bytes int, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}
