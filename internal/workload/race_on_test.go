//go:build race

package workload

// raceEnabled mirrors race_off_test.go under -race builds.
const raceEnabled = true
