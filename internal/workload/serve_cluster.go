package workload

import (
	"fmt"

	"duet/internal/cluster"
	"duet/internal/sched"
	"duet/internal/study"
)

// This file implements the sharded study behind `duetsim cluster`: the
// Serve arrival stream dispatched across N independent Dolly replicas
// (each a complete System with its own engine, adapters, fabrics and
// scheduler) by a deterministic front end. It is the scale axis past one
// System: per (seed, shards, front end, policy) the merged result is
// byte-identical across runs regardless of goroutine interleaving, and a
// 1-shard cluster reproduces workload.Serve exactly.

// ClusterConfig parameterizes one sharded serve run. The embedded
// ServeConfig describes each replica (eFPGAs, hubs, scheduler policy) and
// the shared arrival stream (jobs, seed, mean gap).
type ClusterConfig struct {
	ServeConfig
	Shards   int              // independent replicas (default 2)
	FrontEnd cluster.FrontEnd // arrival-routing policy
}

// ClusterResult is the outcome of one sharded serve run.
type ClusterResult struct {
	Policy   sched.Policy
	FrontEnd cluster.FrontEnd
	Shards   int
	Offered  int
	Merged   sched.Stats // exact-quantile merge across shards
	PerShard []cluster.ShardResult
}

// ServeCluster plays the seeded open-loop workload through a sharded
// serve farm and reports the merged statistics.
func ServeCluster(cfg ClusterConfig) (ClusterResult, error) {
	cfg.ServeConfig = cfg.ServeConfig.withDefaults()
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	res, err := cluster.Run(cluster.Config{
		Shards:   cfg.Shards,
		FrontEnd: cfg.FrontEnd,
		Seed:     cfg.Seed,
		// The serve replica draws nothing locally (arrivals are
		// pre-generated, accelerators are inert stubs), so the derived
		// per-shard seed is accepted but unused.
		NewReplica: func(shard int, seed int64) (*cluster.Replica, error) {
			sys, sch, err := newServeSystem(cfg.ServeConfig)
			if err != nil {
				return nil, err
			}
			return &cluster.Replica{
				Eng: sys.Eng,
				Sch: sch,
				Run: func() error {
					_, err := sys.RunChecked()
					return err
				},
			}, nil
		},
	}, serveArrivals(cfg.ServeConfig))
	if err != nil {
		return ClusterResult{}, err
	}
	return ClusterResult{
		Policy:   cfg.Policy,
		FrontEnd: res.FrontEnd,
		Shards:   res.Shards,
		Offered:  res.Offered,
		Merged:   res.Merged,
		PerShard: res.PerShard,
	}, nil
}

// ClusterStudy runs one ServeCluster per config on a parallel-wide study
// pool (<= 0 selects GOMAXPROCS), results in config order. Each point
// spawns its own shard goroutines inside its pool slot; the first error
// by config order wins, matching the sequential run.
func ClusterStudy(parallel int, cfgs []ClusterConfig) ([]ClusterResult, error) {
	type out struct {
		res ClusterResult
		err error
	}
	pts := study.Map(parallel, cfgs, func(c ClusterConfig) out {
		r, err := ServeCluster(c)
		return out{r, err}
	})
	results := make([]ClusterResult, len(pts))
	for i, p := range pts {
		if p.err != nil {
			return nil, fmt.Errorf("cluster study point %d: %w", i, p.err)
		}
		results[i] = p.res
	}
	return results, nil
}
