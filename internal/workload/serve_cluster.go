package workload

import (
	"fmt"

	"duet/internal/cluster"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/study"
	"duet/internal/telemetry"
)

// This file implements the sharded study behind `duetsim cluster`: the
// Serve arrival stream dispatched across N independent serve replicas by
// a deterministic front end. It is the scale axis past one System: per
// (seed, shards, front end, policy, backend, shard specs) the merged
// result is byte-identical across runs regardless of goroutine
// interleaving, and a 1-shard cluster reproduces workload.Serve exactly.
//
// Shards need not be replicas of one another: ShardSpecs gives each
// shard its own backend mode, fabric count and soft-CPU pool, and the
// front ends route by each shard's own catalog model — a heterogeneous
// serve farm (e.g. cycle-level shards fronting a model-backend overflow
// tier, or big and small fabric pools side by side).

// ShardSpec overrides one shard's build in a heterogeneous cluster.
// Backend is absolute (its zero value is BackendCycle); the other
// zero-valued fields inherit the cluster's base ServeConfig.
type ShardSpec struct {
	Backend  BackendMode
	EFPGAs   int
	SoftCPUs int
	Policy   sched.Policy // effective only when SetPolicy is true
	// SetPolicy marks Policy as an override (sched.FIFO is a valid
	// policy and the zero value, so presence needs an explicit flag).
	SetPolicy bool
}

// ClusterConfig parameterizes one sharded serve run. The embedded
// ServeConfig describes each replica (eFPGAs, hubs, scheduler policy,
// execution backend) and the shared arrival stream (jobs, seed, mean
// gap); ShardSpecs, when non-empty, overrides per-shard builds.
type ClusterConfig struct {
	ServeConfig
	Shards   int              // independent replicas (default 2)
	FrontEnd cluster.FrontEnd // arrival-routing policy

	// ShardSpecs makes the cluster heterogeneous: spec i overrides shard
	// i's backend/fabric-count/soft-CPU/policy configuration. Must be
	// empty or exactly Shards long.
	ShardSpecs []ShardSpec

	// Handoff bounds the streaming pipeline's per-shard hand-off buffer
	// under the stateful front ends (see cluster.Config.Handoff); <= 0
	// selects cluster.DefaultHandoff. Memory/overlap knob only — results
	// are identical at every bound.
	Handoff int
}

// ClusterResult is the outcome of one sharded serve run.
type ClusterResult struct {
	Policy   sched.Policy
	Backend  BackendMode
	FrontEnd cluster.FrontEnd
	Shards   int
	Offered  int
	Merged   sched.Stats // exact-quantile merge across shards
	PerShard []cluster.ShardResult

	// Rerouted and Hedged count the front end's fault-pass actions
	// (zero without a fault plan; omitted from JSON to keep fault-free
	// study output byte-identical to earlier releases).
	Rerouted int `json:",omitempty"`
	Hedged   int `json:",omitempty"`

	// Windows is the cluster-wide flight-recorder series (nil unless
	// ServeConfig.Windows > 0): per-shard recorders merged exactly in
	// shard order, then snapshotted one row per window.
	Windows []telemetry.WindowRow `json:"Windows,omitempty"`
}

// shardConfig resolves shard i's ServeConfig under cfg's specs.
func (cfg ClusterConfig) shardConfig(shard int) ServeConfig {
	sc := cfg.ServeConfig
	if len(cfg.ShardSpecs) == 0 {
		return sc
	}
	spec := cfg.ShardSpecs[shard]
	sc.Backend = spec.Backend
	if spec.EFPGAs > 0 {
		sc.EFPGAs = spec.EFPGAs
	}
	if spec.SoftCPUs > 0 {
		sc.SoftCPUs = spec.SoftCPUs
	}
	if spec.SetPolicy {
		sc.Policy = spec.Policy
	}
	return sc.withDefaults()
}

// ServeCluster plays the seeded open-loop workload through a sharded
// serve farm and reports the merged statistics. The arrival stream is
// consumed straight from the generator through cluster.RunSource —
// never materialized — so a billion-job study runs at the same peak
// memory as a million-job one. Results are byte-identical to the
// materialized path (ServeClusterOver over Arrivals), which property
// tests pin.
func ServeCluster(cfg ClusterConfig) (ClusterResult, error) {
	var err error
	if cfg, err = cfg.normalized(); err != nil {
		return ClusterResult{}, err
	}
	src := NewArrivalSource(cfg.ServeConfig)
	var width sim.Time
	if cfg.Windows > 0 {
		// Closed-form span from the generator (one extra O(1)-memory
		// pass), not stream[len-1].At — same value, no stream.
		width = spanWidth(src.Span(), cfg.Windows)
	}
	res, err := cluster.RunSource(cfg.clusterConfig(width), src)
	if err != nil {
		return ClusterResult{}, err
	}
	return cfg.result(res), nil
}

// ServeClusterOver is ServeCluster over a caller-provided materialized
// arrival stream (see Arrivals) — benchmarks use it to keep stream
// generation outside their timed region, and the equivalence tests use
// it as the reference the streaming path must reproduce byte for byte.
// The stream is consumed by the run: replicas write job outcomes into
// it, so callers must generate a fresh stream per run.
func ServeClusterOver(cfg ClusterConfig, stream []cluster.Arrival) (ClusterResult, error) {
	var err error
	if cfg, err = cfg.normalized(); err != nil {
		return ClusterResult{}, err
	}
	// One width for every shard, derived from the shared stream, so the
	// per-shard window series align index for index in the merge.
	res, err := cluster.Run(cfg.clusterConfig(windowWidth(stream, cfg.Windows)), stream)
	if err != nil {
		return ClusterResult{}, err
	}
	return cfg.result(res), nil
}

// normalized applies defaults and validates the shard-spec shape.
func (cfg ClusterConfig) normalized() (ClusterConfig, error) {
	cfg.ServeConfig = cfg.ServeConfig.withDefaults()
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if len(cfg.ShardSpecs) != 0 && len(cfg.ShardSpecs) != cfg.Shards {
		return cfg, fmt.Errorf("workload: %d shard specs for %d shards", len(cfg.ShardSpecs), cfg.Shards)
	}
	return cfg, nil
}

// clusterConfig renders the cluster-level run config; width is the
// telemetry window width every shard must share.
func (cfg ClusterConfig) clusterConfig(width sim.Time) cluster.Config {
	ccfg := cluster.Config{
		Shards:   cfg.Shards,
		FrontEnd: cfg.FrontEnd,
		Seed:     cfg.Seed,
		Handoff:  cfg.Handoff,
		Progress: cfg.ServeConfig.Progress,
		// The serve replica draws nothing locally (arrivals are
		// pre-generated, accelerators are inert stubs), so the derived
		// per-shard seed is accepted but unused.
		NewReplica: func(shard int, seed int64) (cluster.Replica, error) {
			return newServeReplica(cfg.shardConfig(shard), shard, true, true, width)
		},
	}
	if cfg.Faults != nil {
		// The front end routes against each shard's *effective* outage
		// schedule — its own windows merged with its failure domains' — so
		// a domain event reroutes and hedges like any direct shard crash.
		ccfg.Faults = &cluster.FaultSpec{
			ShardDown:   cfg.Faults.EffectiveShardDown(cfg.Shards),
			Hedge:       cfg.Faults.Hedge,
			RecoverHold: cfg.Faults.RecoverHold,
		}
	}
	return ccfg
}

// result maps a cluster-level result onto the study's record shape.
func (cfg ClusterConfig) result(res cluster.Result) ClusterResult {
	cr := ClusterResult{
		Policy:   cfg.Policy,
		Backend:  cfg.Backend,
		FrontEnd: res.FrontEnd,
		Shards:   res.Shards,
		Offered:  res.Offered,
		Merged:   res.Merged,
		PerShard: res.PerShard,
		Rerouted: res.Rerouted,
		Hedged:   res.Hedged,
	}
	if res.Windows != nil {
		cr.Windows = res.Windows.Series()
	}
	return cr
}

// ClusterStudy runs one ServeCluster per config on a parallel-wide study
// pool (<= 0 selects GOMAXPROCS), results in config order. Each point
// spawns its own shard goroutines inside its pool slot; the first error
// by config order wins, matching the sequential run.
func ClusterStudy(parallel int, cfgs []ClusterConfig) ([]ClusterResult, error) {
	type out struct {
		res ClusterResult
		err error
	}
	pts := study.Map(parallel, cfgs, func(c ClusterConfig) out {
		r, err := ServeCluster(c)
		return out{r, err}
	})
	results := make([]ClusterResult, len(pts))
	for i, p := range pts {
		if p.err != nil {
			return nil, fmt.Errorf("cluster study point %d: %w", i, p.err)
		}
		results[i] = p.res
	}
	return results, nil
}
