package workload

import (
	"fmt"

	"duet/internal/cluster"
	"duet/internal/sched"
	"duet/internal/study"
	"duet/internal/telemetry"
)

// This file implements the sharded study behind `duetsim cluster`: the
// Serve arrival stream dispatched across N independent serve replicas by
// a deterministic front end. It is the scale axis past one System: per
// (seed, shards, front end, policy, backend, shard specs) the merged
// result is byte-identical across runs regardless of goroutine
// interleaving, and a 1-shard cluster reproduces workload.Serve exactly.
//
// Shards need not be replicas of one another: ShardSpecs gives each
// shard its own backend mode, fabric count and soft-CPU pool, and the
// front ends route by each shard's own catalog model — a heterogeneous
// serve farm (e.g. cycle-level shards fronting a model-backend overflow
// tier, or big and small fabric pools side by side).

// ShardSpec overrides one shard's build in a heterogeneous cluster.
// Backend is absolute (its zero value is BackendCycle); the other
// zero-valued fields inherit the cluster's base ServeConfig.
type ShardSpec struct {
	Backend  BackendMode
	EFPGAs   int
	SoftCPUs int
	Policy   sched.Policy // effective only when SetPolicy is true
	// SetPolicy marks Policy as an override (sched.FIFO is a valid
	// policy and the zero value, so presence needs an explicit flag).
	SetPolicy bool
}

// ClusterConfig parameterizes one sharded serve run. The embedded
// ServeConfig describes each replica (eFPGAs, hubs, scheduler policy,
// execution backend) and the shared arrival stream (jobs, seed, mean
// gap); ShardSpecs, when non-empty, overrides per-shard builds.
type ClusterConfig struct {
	ServeConfig
	Shards   int              // independent replicas (default 2)
	FrontEnd cluster.FrontEnd // arrival-routing policy

	// ShardSpecs makes the cluster heterogeneous: spec i overrides shard
	// i's backend/fabric-count/soft-CPU/policy configuration. Must be
	// empty or exactly Shards long.
	ShardSpecs []ShardSpec
}

// ClusterResult is the outcome of one sharded serve run.
type ClusterResult struct {
	Policy   sched.Policy
	Backend  BackendMode
	FrontEnd cluster.FrontEnd
	Shards   int
	Offered  int
	Merged   sched.Stats // exact-quantile merge across shards
	PerShard []cluster.ShardResult

	// Rerouted and Hedged count the front end's fault-pass actions
	// (zero without a fault plan; omitted from JSON to keep fault-free
	// study output byte-identical to earlier releases).
	Rerouted int `json:",omitempty"`
	Hedged   int `json:",omitempty"`

	// Windows is the cluster-wide flight-recorder series (nil unless
	// ServeConfig.Windows > 0): per-shard recorders merged exactly in
	// shard order, then snapshotted one row per window.
	Windows []telemetry.WindowRow `json:"Windows,omitempty"`
}

// shardConfig resolves shard i's ServeConfig under cfg's specs.
func (cfg ClusterConfig) shardConfig(shard int) ServeConfig {
	sc := cfg.ServeConfig
	if len(cfg.ShardSpecs) == 0 {
		return sc
	}
	spec := cfg.ShardSpecs[shard]
	sc.Backend = spec.Backend
	if spec.EFPGAs > 0 {
		sc.EFPGAs = spec.EFPGAs
	}
	if spec.SoftCPUs > 0 {
		sc.SoftCPUs = spec.SoftCPUs
	}
	if spec.SetPolicy {
		sc.Policy = spec.Policy
	}
	return sc.withDefaults()
}

// ServeCluster plays the seeded open-loop workload through a sharded
// serve farm and reports the merged statistics.
func ServeCluster(cfg ClusterConfig) (ClusterResult, error) {
	return ServeClusterOver(cfg, serveArrivals(cfg.ServeConfig.withDefaults()))
}

// ServeClusterOver is ServeCluster over a caller-provided arrival stream
// (see Arrivals) — benchmarks use it to keep stream generation outside
// their timed region. The stream is consumed by the run: replicas write
// job outcomes into it, so callers must generate a fresh stream per run.
func ServeClusterOver(cfg ClusterConfig, stream []cluster.Arrival) (ClusterResult, error) {
	cfg.ServeConfig = cfg.ServeConfig.withDefaults()
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if len(cfg.ShardSpecs) != 0 && len(cfg.ShardSpecs) != cfg.Shards {
		return ClusterResult{}, fmt.Errorf("workload: %d shard specs for %d shards", len(cfg.ShardSpecs), cfg.Shards)
	}
	// One width for every shard, derived from the shared stream, so the
	// per-shard window series align index for index in the merge.
	width := windowWidth(stream, cfg.Windows)
	ccfg := cluster.Config{
		Shards:   cfg.Shards,
		FrontEnd: cfg.FrontEnd,
		Seed:     cfg.Seed,
		// The serve replica draws nothing locally (arrivals are
		// pre-generated, accelerators are inert stubs), so the derived
		// per-shard seed is accepted but unused.
		NewReplica: func(shard int, seed int64) (cluster.Replica, error) {
			return newServeReplica(cfg.shardConfig(shard), shard, true, true, width)
		},
	}
	if cfg.Faults != nil {
		// The front end routes against each shard's *effective* outage
		// schedule — its own windows merged with its failure domains' — so
		// a domain event reroutes and hedges like any direct shard crash.
		ccfg.Faults = &cluster.FaultSpec{
			ShardDown:   cfg.Faults.EffectiveShardDown(cfg.Shards),
			Hedge:       cfg.Faults.Hedge,
			RecoverHold: cfg.Faults.RecoverHold,
		}
	}
	res, err := cluster.Run(ccfg, stream)
	if err != nil {
		return ClusterResult{}, err
	}
	cr := ClusterResult{
		Policy:   cfg.Policy,
		Backend:  cfg.Backend,
		FrontEnd: res.FrontEnd,
		Shards:   res.Shards,
		Offered:  res.Offered,
		Merged:   res.Merged,
		PerShard: res.PerShard,
		Rerouted: res.Rerouted,
		Hedged:   res.Hedged,
	}
	if res.Windows != nil {
		cr.Windows = res.Windows.Series()
	}
	return cr, nil
}

// ClusterStudy runs one ServeCluster per config on a parallel-wide study
// pool (<= 0 selects GOMAXPROCS), results in config order. Each point
// spawns its own shard goroutines inside its pool slot; the first error
// by config order wins, matching the sequential run.
func ClusterStudy(parallel int, cfgs []ClusterConfig) ([]ClusterResult, error) {
	type out struct {
		res ClusterResult
		err error
	}
	pts := study.Map(parallel, cfgs, func(c ClusterConfig) out {
		r, err := ServeCluster(c)
		return out{r, err}
	})
	results := make([]ClusterResult, len(pts))
	for i, p := range pts {
		if p.err != nil {
			return nil, fmt.Errorf("cluster study point %d: %w", i, p.err)
		}
		results[i] = p.res
	}
	return results, nil
}
