package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"duet/internal/cluster"
	"duet/internal/sched"
)

// statsTable renders a stats summary the way the duetsim tables do —
// the byte-identity contract is on formatted output, not just struct
// equality, so the golden tests compare both.
func statsTable(st sched.Stats) string {
	s := fmt.Sprintf("%d/%d/%d tput=%.4f p50=%v p99=%v wait=%v svc=%v rc=%d dl=%d",
		st.Completed, st.Failed, st.Rejected, st.ThroughputPerMS,
		st.P50, st.P99, st.MeanWait, st.MeanService, st.Reconfigs, st.DeadlineMisses)
	for _, f := range st.Fabrics {
		s += fmt.Sprintf(" %s=%d/%d/%.4f", f.Name, f.Jobs, f.Reconfigs, f.Utilization)
	}
	return s
}

// TestServeClusterDeterministic: repeated multi-shard runs at one seed
// must be byte-identical — merged stats, per-shard stats, and raw sojourn
// samples — despite the goroutine-per-replica execution.
func TestServeClusterDeterministic(t *testing.T) {
	for fe := cluster.FrontEnd(0); fe < cluster.NumFrontEnds; fe++ {
		t.Run(fe.String(), func(t *testing.T) {
			cfg := ClusterConfig{
				ServeConfig: ServeConfig{Policy: sched.Affinity, Jobs: 90, Seed: 7},
				Shards:      3,
				FrontEnd:    fe,
			}
			r1, err1 := ServeCluster(cfg)
			r2, err2 := ServeCluster(cfg)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("identical seeded cluster runs diverged:\n%+v\n%+v", r1, r2)
			}
			if got, want := statsTable(r1.Merged), statsTable(r2.Merged); got != want {
				t.Fatalf("stats tables differ:\n%s\n%s", got, want)
			}
			if got := r1.Merged.Completed + r1.Merged.Failed + r1.Merged.Rejected; got != r1.Offered {
				t.Fatalf("accounted %d of %d offered", got, r1.Offered)
			}
		})
	}
}

// TestServeClusterSingleShardMatchesServe guards the "identical per
// seed" contract in serve.go from the other side: a 1-shard cluster must
// reproduce the single-System Serve run exactly — same merged stats,
// byte-identical table — under every front end (with one shard they all
// route identically).
func TestServeClusterSingleShardMatchesServe(t *testing.T) {
	base := ServeConfig{Policy: sched.SJF, Jobs: 80, Seed: 42}
	want := Serve(base)
	for fe := cluster.FrontEnd(0); fe < cluster.NumFrontEnds; fe++ {
		r, err := ServeCluster(ClusterConfig{ServeConfig: base, Shards: 1, FrontEnd: fe})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Merged, want.Stats) {
			t.Fatalf("%v: 1-shard cluster diverged from Serve:\n%+v\n%+v", fe, r.Merged, want.Stats)
		}
		if got, wantS := statsTable(r.Merged), statsTable(want.Stats); got != wantS {
			t.Fatalf("%v: tables differ:\n%s\n%s", fe, got, wantS)
		}
		if r.PerShard[0].Assigned != base.Jobs {
			t.Fatalf("%v: shard 0 assigned %d of %d", fe, r.PerShard[0].Assigned, base.Jobs)
		}
	}
}

// TestServeArrivalsGolden pins the arrival generator: the stream for the
// default seed is part of the serve/cluster determinism contract, so an
// accidental change to draw order or distribution parameters must fail
// loudly, not shift every downstream number silently.
func TestServeArrivalsGolden(t *testing.T) {
	arrivals := serveArrivals(ServeConfig{}.withDefaults())
	if len(arrivals) != 240 {
		t.Fatalf("default stream has %d arrivals", len(arrivals))
	}
	h := fnv.New64a()
	for _, a := range arrivals {
		binary.Write(h, binary.LittleEndian, int64(a.At))
		h.Write([]byte(a.Job.App))
		binary.Write(h, binary.LittleEndian, int64(a.Job.InputSize))
		binary.Write(h, binary.LittleEndian, int64(a.Job.Priority))
		binary.Write(h, binary.LittleEndian, int64(a.Job.Deadline))
	}
	const golden = uint64(0x9e2f398c9687650c) // seed 1, 240 jobs, 25us mean gap
	if got := h.Sum64(); got != golden {
		t.Fatalf("arrival stream hash = %#x, want %#x (generator behaviour changed)", got, golden)
	}
}

// TestServeClusterThroughputScaling: on an offered load that saturates
// one System, four shards must deliver more than twice the job
// throughput — the acceptance bar for the sharded serve farm.
func TestServeClusterThroughputScaling(t *testing.T) {
	cfg := ServeConfig{Policy: sched.Affinity, Jobs: 320, Seed: 1, MeanGapUS: 5, QueueCap: 1024}
	base := Serve(cfg)
	r, err := ServeCluster(ClusterConfig{ServeConfig: cfg, Shards: 4, FrontEnd: cluster.LeastOutstanding})
	if err != nil {
		t.Fatal(err)
	}
	if base.Completed != cfg.Jobs || r.Merged.Completed != cfg.Jobs {
		t.Fatalf("completed: 1-shard %d, 4-shard %d of %d", base.Completed, r.Merged.Completed, cfg.Jobs)
	}
	scale := r.Merged.ThroughputPerMS / base.ThroughputPerMS
	if scale <= 2 {
		t.Fatalf("4-shard throughput %.2f jobs/ms is only %.2fx the 1-shard %.2f jobs/ms",
			r.Merged.ThroughputPerMS, scale, base.ThroughputPerMS)
	}
	t.Logf("throughput: 1 shard %.2f jobs/ms, 4 shards %.2f jobs/ms (%.2fx)",
		base.ThroughputPerMS, r.Merged.ThroughputPerMS, scale)
}
