package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"duet/internal/cluster"
	"duet/internal/faults"
	"duet/internal/sched"
	"duet/internal/sim"
)

// referenceArrivals is an independent re-implementation of the serve
// arrival process — the draw order and distributions written out by
// hand, not routed through ArrivalSource — so the property test below
// checks the generator against a second implementation rather than
// against itself (serveArrivals materializes *from* the source).
func referenceArrivals(cfg ServeConfig) []cluster.Arrival {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var at sim.Time
	out := make([]cluster.Arrival, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		at += sim.Time(rng.ExpFloat64() * cfg.MeanGapUS * float64(sim.US))
		j := sched.Job{
			App:       ServeApps[rng.Intn(len(ServeApps))].Name,
			InputSize: 64 + rng.Intn(2048),
			Priority:  rng.Intn(4),
		}
		j.Deadline = at + sim.Time((0.2+0.6*rng.ExpFloat64())*float64(sim.MS))
		out = append(out, cluster.Arrival{At: at, Job: j})
	}
	return out
}

// arrivalStreamHash is the FNV-1a stream digest the golden test pins
// (TestServeArrivalsGolden) applied to an arbitrary stream.
func arrivalStreamHash(arrivals []cluster.Arrival) uint64 {
	h := fnv.New64a()
	for _, a := range arrivals {
		binary.Write(h, binary.LittleEndian, int64(a.At))
		h.Write([]byte(a.Job.App))
		binary.Write(h, binary.LittleEndian, int64(a.Job.InputSize))
		binary.Write(h, binary.LittleEndian, int64(a.Job.Priority))
		binary.Write(h, binary.LittleEndian, int64(a.Job.Deadline))
	}
	return h.Sum64()
}

// TestArrivalSourceMatchesMaterialized is the streaming generator's
// property test: across a (seed, jobs, mean gap) grid the O(1)-memory
// ArrivalSource must yield exactly the stream the materialized path
// produces — per-arrival equality and equal FNV-1a stream hashes —
// with Len, Span and Clone agreeing on the same stream.
func TestArrivalSourceMatchesMaterialized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1 << 40} {
		for _, jobs := range []int{1, 13, 240, 1500} {
			for _, gap := range []float64{5, 25, 400} {
				t.Run(fmt.Sprintf("seed=%d/jobs=%d/gap=%g", seed, jobs, gap), func(t *testing.T) {
					cfg := ServeConfig{Seed: seed, Jobs: jobs, MeanGapUS: gap}
					want := referenceArrivals(cfg)
					if mat := serveArrivals(cfg.withDefaults()); !reflect.DeepEqual(mat, want) {
						t.Fatal("serveArrivals diverged from the reference draw sequence")
					}
					src := NewArrivalSource(cfg)
					if src.Len() != jobs {
						t.Fatalf("Len = %d, want %d", src.Len(), jobs)
					}
					got := make([]cluster.Arrival, 0, jobs)
					var a cluster.Arrival
					for src.Next(&a) {
						got = append(got, a)
					}
					if src.Next(&a) {
						t.Fatal("Next yielded an arrival past exhaustion")
					}
					if len(got) != len(want) {
						t.Fatalf("source yielded %d arrivals, want %d", len(got), len(want))
					}
					for i := range want {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("arrival %d: got %+v, want %+v", i, got[i], want[i])
						}
					}
					if gh, wh := arrivalStreamHash(got), arrivalStreamHash(want); gh != wh {
						t.Fatalf("stream hash %#x, want %#x", gh, wh)
					}
					if span := NewArrivalSource(cfg).Span(); span != want[len(want)-1].At {
						t.Fatalf("Span = %v, want last arrival %v", span, want[len(want)-1].At)
					}
					// Clone must restart from the first arrival even when the
					// original is mid-stream — the per-shard parallel
					// generation in cluster.RunSource depends on it.
					half := NewArrivalSource(cfg)
					for i := 0; i < jobs/2; i++ {
						half.Next(&a)
					}
					clone := half.Clone()
					for i := range want {
						if !clone.Next(&a) || !reflect.DeepEqual(a, want[i]) {
							t.Fatalf("clone arrival %d diverged", i)
						}
					}
				})
			}
		}
	}
}

// TestServeClusterStreamingMatchesMaterialized pins the tentpole's
// equivalence claim end to end: ServeCluster (streaming pipeline, no
// materialized stream) must reproduce ServeClusterOver (the sequential
// pre-pass over a materialized stream) exactly — full ClusterResult
// DeepEqual, including per-shard samples, fault-pass counts and
// telemetry — across front ends, stats modes, backends, fault plans
// and hand-off bounds.
func TestServeClusterStreamingMatchesMaterialized(t *testing.T) {
	crash := &faults.Plan{
		Seed:      11,
		ShardDown: [][]sched.Downtime{nil, {{From: 1 * sim.MS, To: 4 * sim.MS}}},
		Hedge:     300 * sim.US,
	}
	rack := &faults.Plan{
		Seed: 17,
		Domains: []faults.Domain{{
			Name: "rack0", Shards: []int{0, 1},
			Down: []sched.Downtime{{From: 1 * sim.MS, To: 3 * sim.MS}},
		}},
		Hedge:       300 * sim.US,
		RecoverHold: 1 * sim.MS,
	}
	var cases []ClusterConfig
	for fe := cluster.FrontEnd(0); fe < cluster.NumFrontEnds; fe++ {
		for _, stats := range []sched.StatsMode{sched.StatsExact, sched.StatsStreaming} {
			cases = append(cases, ClusterConfig{
				ServeConfig: ServeConfig{
					Policy: sched.Affinity, Jobs: 150, Seed: 7, Stats: stats,
					Backend: BackendModel,
				},
				Shards: 3, FrontEnd: fe,
			})
		}
		// Reroute + hedge under every front end, with telemetry on.
		cases = append(cases, ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.SJF, Jobs: 200, Seed: 11, Windows: 4,
				Backend: BackendModel, Faults: crash,
			},
			Shards: 3, FrontEnd: fe,
		})
	}
	cases = append(cases,
		// Correlated-domain outage on the health-weighted front end.
		ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.Affinity, Jobs: 200, Seed: 17,
				Backend: BackendModel, Faults: rack,
			},
			Shards: 4, FrontEnd: cluster.HealthWeighted,
		},
		// Cycle-level and hybrid backends through the engine replica.
		ClusterConfig{
			ServeConfig: ServeConfig{Policy: sched.FIFO, Jobs: 90, Seed: 42},
			Shards:      2, FrontEnd: cluster.HashApp,
		},
		ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.Hybrid, Jobs: 90, Seed: 42,
				Backend: BackendHybrid, SoftCPUs: 1,
			},
			Shards: 2, FrontEnd: cluster.LeastOutstanding,
		},
		// A tiny hand-off bound must change nothing but overlap.
		ClusterConfig{
			ServeConfig: ServeConfig{Policy: sched.Affinity, Jobs: 150, Seed: 7, Backend: BackendModel},
			Shards:      3, FrontEnd: cluster.LeastOutstanding, Handoff: 1,
		},
	)
	for _, cfg := range cases {
		name := fmt.Sprintf("%v/%v/%v", cfg.FrontEnd, cfg.Backend, cfg.Stats)
		if cfg.Faults != nil {
			name += "/faults"
		}
		if cfg.Handoff > 0 {
			name += fmt.Sprintf("/handoff=%d", cfg.Handoff)
		}
		t.Run(name, func(t *testing.T) {
			want, err := ServeClusterOver(cfg, Arrivals(cfg.ServeConfig))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ServeCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("streaming result diverged from materialized:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestStreamingClusterFlatHeap is the capacity regression gate: a
// 10M-job model-backend streaming-stats cluster run must hold its peak
// live heap under a flat bound — far below the >1 GB a materialized
// []Arrival stream of that length would pin — proving peak memory no
// longer scales with the job count.
func TestStreamingClusterFlatHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-job capacity run; skipped with -short")
	}
	if raceEnabled {
		t.Skip("memory bound is meaningless under the race detector's shadow heap")
	}
	const jobs = 10_000_000
	runtime.GC()
	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peak.Load()
			if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample()
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	res, err := ServeCluster(ClusterConfig{
		ServeConfig: ServeConfig{
			Policy: sched.FIFO, Jobs: jobs, Seed: 1, MeanGapUS: 30,
			QueueCap: 4096, Stats: sched.StatsStreaming, Backend: BackendModel,
		},
		Shards: 4, FrontEnd: cluster.RoundRobin,
	})
	close(done)
	<-sampled
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Merged.Completed + res.Merged.Failed + res.Merged.Rejected; got != jobs {
		t.Fatalf("accounted %d of %d offered", got, jobs)
	}
	const bound = 64 << 20
	if p := peak.Load(); p > bound {
		t.Fatalf("peak heap %d MB exceeds the flat %d MB bound", p>>20, bound>>20)
	}
	t.Logf("10M jobs: peak heap %.1f MB (bound %d MB), completed %d",
		float64(peak.Load())/(1<<20), bound>>20, res.Merged.Completed)
}
