// Package workload implements the paper's synthetic benchmarks: the
// CPU–eFPGA communication latency study (Fig. 9), the single-processor
// bandwidth study (Fig. 10), and the multi-processor contention study
// (Fig. 11). All three run on Dolly-P1M1 / PpM1 instances built through
// the public duet API, with the eFPGA emulating a simple scratchpad
// memory (paper §V-C).
package workload

import (
	"encoding/json"

	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/mem"
	"duet/internal/params"
	"duet/internal/sim"
	"duet/internal/study"
)

// Mechanism names the six communication mechanisms of Fig. 9/10.
type Mechanism int

// Communication mechanisms (paper §V-C).
const (
	NormalReg Mechanism = iota
	ShadowReg
	CPUPullProxy
	CPUPullSlow
	FPGAPullProxy
	FPGAPullSlow
	NumMechanisms
)

func (m Mechanism) String() string {
	return [...]string{
		"Normal Reg.",
		"Shadow Reg. (This Work)",
		"CPU Pull w/ Proxy Cache (This Work)",
		"CPU Pull w/ Slow Cache",
		"eFPGA Pull w/ Proxy Cache (This Work)",
		"eFPGA Pull w/ Slow Cache",
	}[m]
}

// MarshalJSON encodes the mechanism as its String name for
// machine-readable study output.
func (m Mechanism) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// Fig9Row is one bar of Fig. 9: a mechanism's round-trip latency at one
// eFPGA frequency, broken into the paper's four categories.
type Fig9Row struct {
	Mechanism Mechanism
	FreqMHz   float64
	Total     sim.Time
	Breakdown [sim.NumCategories]sim.Time
}

// latency-study soft register layout.
const (
	regToFPGA = 0 // FPGA-bound FIFO (shadow) / staging (normal)
	regToCPU  = 1 // CPU-bound FIFO (shadow)
	regNormA  = 2 // plain in-fabric register
	regNormB  = 3 // plain in-fabric register
	regCmd    = 4 // FPGA-bound FIFO: commands to the accelerator
	regDone   = 5 // CPU-bound FIFO: completion signals
)

func latencySpecs() []core.SoftRegSpec {
	return []core.SoftRegSpec{
		{Kind: core.RegFIFOToFPGA},
		{Kind: core.RegFIFOToCPU},
		{Kind: core.RegNormal},
		{Kind: core.RegNormal},
		{Kind: core.RegFIFOToFPGA},
		{Kind: core.RegFIFOToCPU},
	}
}

// lineHomedAt finds a line address >= start homed at the wanted tile.
func lineHomedAt(sys *duet.System, start uint64, tile int) uint64 {
	for a := start &^ (params.LineBytes - 1); ; a += params.LineBytes {
		if sys.Dom.HomeOf(a) == tile {
			return a
		}
	}
}

// fig9Accel drives the eFPGA side of the latency probes. Commands arrive
// on regCmd: 1 = store a value to addrX (making the proxy the owner),
// 2 = load addrY once (the tagged eFPGA-pull probe).
type fig9Accel struct {
	addrX, addrY uint64
	pullTX       *sim.TX
	pullDone     func(total sim.Time)
}

func (a *fig9Accel) Start(env *efpga.Env) {
	env.Eng.Go("fig9accel", func(t *sim.Thread) {
		// Prestage one value in the CPU-bound FIFO so shadow reads hit.
		env.Regs.PushCPU(t, regToCPU, 42)
		for {
			cmd := env.Regs.PopFPGA(t, regCmd)
			switch cmd {
			case 1:
				var buf [8]byte
				buf[0] = 0x5a
				if err := env.Mem[0].Store(t, a.addrX, buf[:]); err != nil {
					return
				}
				env.Regs.PushCPU(t, regDone, 1)
			case 2:
				port := env.Mem[0].(*core.Port)
				port.TagNext(a.pullTX)
				start := t.Now()
				if _, err := env.Mem[0].Load(t, a.addrY, 8); err != nil {
					return
				}
				a.pullDone(t.Now() - start)
				env.Regs.PushCPU(t, regDone, 1)
			}
		}
	})
}

func buildLatencySystem(style duet.Style, freqMHz float64) (*duet.System, *fig9Accel) {
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 1, Style: style,
		RegSpecs: latencySpecs(), FPGAFreqMHz: freqMHz,
	})
	acc := &fig9Accel{}
	// Pull targets: X (CPU pulls from the proxy) homed at the adapter
	// tile; Y (eFPGA pulls from the CPU's L2) homed at the core tile.
	acc.addrX = lineHomedAt(sys, sys.Alloc(4096), sys.Adapter.CtrlTile())
	acc.addrY = lineHomedAt(sys, sys.Alloc(4096), 0)
	bs := efpga.Synthesize(efpga.Design{Name: "scratchpad", LUTLogic: 200, RAMKb: 32, RegBits: 256, PipelineDepth: 3},
		func() efpga.Accelerator { return acc })
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		panic(err)
	}
	sys.Fabric.SetFreqMHz(freqMHz) // override the bitstream Fmax cap: this study sweeps the clock
	sys.Adapter.StartAccelerator()
	return sys, acc
}

// MeasureLatency runs the single-transaction round-trip latency probe for
// one mechanism at one eFPGA frequency.
func MeasureLatency(mech Mechanism, freqMHz float64) Fig9Row {
	style := duet.StyleDuet
	if mech == CPUPullSlow || mech == FPGAPullSlow {
		style = duet.StyleFPSoC
	}
	sys, acc := buildLatencySystem(style, freqMHz)
	row := Fig9Row{Mechanism: mech, FreqMHz: freqMHz}

	wtx := sim.NewTX(0)
	rtx := sim.NewTX(0)
	var total sim.Time

	sys.Cores[0].Run("probe", func(p cpu.Proc) {
		duet.EnableHub(p, 0, false, false, false)
		switch mech {
		case NormalReg:
			p.Exec(200) // settle
			start := p.Now()
			sys.Cores[0].TagNextMMIO(wtx)
			p.MMIOWrite64(duet.SoftRegAddr(regNormA), 7)
			sys.Cores[0].TagNextMMIO(rtx)
			p.MMIORead64(duet.SoftRegAddr(regNormB))
			total = p.Now() - start
		case ShadowReg:
			// The CPU-bound FIFO was prestaged by the accelerator; wait
			// for the prestage to cross the CDC.
			p.Exec(2000)
			start := p.Now()
			sys.Cores[0].TagNextMMIO(wtx)
			p.MMIOWrite64(duet.SoftRegAddr(regToFPGA), 7)
			sys.Cores[0].TagNextMMIO(rtx)
			p.MMIORead64(duet.SoftRegAddr(regToCPU))
			total = p.Now() - start
		case CPUPullProxy, CPUPullSlow:
			p.MMIOWrite64(duet.SoftRegAddr(regCmd), 1) // accel stores to X
			p.MMIORead64(duet.SoftRegAddr(regDone))
			p.Exec(100)
			start := p.Now()
			sys.Cores[0].TagNextLoad(rtx)
			p.Load64(acc.addrX)
			total = p.Now() - start
		case FPGAPullProxy, FPGAPullSlow:
			p.Store64(acc.addrY, 0xbeef) // CPU's L2 takes M
			acc.pullTX = rtx
			acc.pullDone = func(d sim.Time) { total = d }
			p.MMIOWrite64(duet.SoftRegAddr(regCmd), 2)
			p.MMIORead64(duet.SoftRegAddr(regDone))
		}
	})
	sys.Run()

	row.Total = total
	for c := sim.Category(0); c < sim.NumCategories; c++ {
		row.Breakdown[c] = wtx.Parts[c] + rtx.Parts[c]
	}
	// Clamp attribution to the measured total (issue overlap can
	// double-count the odd cycle).
	var attr sim.Time
	for _, v := range row.Breakdown {
		attr += v
	}
	if attr > row.Total && attr > 0 {
		scale := float64(row.Total) / float64(attr)
		for c := range row.Breakdown {
			row.Breakdown[c] = sim.Time(float64(row.Breakdown[c]) * scale)
		}
	}
	return row
}

// Fig9 regenerates the latency study across mechanisms and frequencies
// on a default-width (GOMAXPROCS) study pool.
func Fig9(freqs []float64) []Fig9Row { return Fig9P(0, freqs) }

// Fig9P regenerates Fig. 9 on a parallel-wide study pool (<= 0 selects
// GOMAXPROCS). Every (mechanism, frequency) cell simulates a complete
// independent System, so the rows are identical for every pool width.
func Fig9P(parallel int, freqs []float64) []Fig9Row {
	if len(freqs) == 0 {
		freqs = []float64{100, 200, 500}
	}
	return study.Run(parallel, int(NumMechanisms)*len(freqs), func(i int) Fig9Row {
		return MeasureLatency(Mechanism(i/len(freqs)), freqs[i%len(freqs)])
	})
}

// lineOf truncates an address to its cache line.
func lineOf(addr uint64) uint64 { return addr &^ (mem.LineBytes - 1) }
