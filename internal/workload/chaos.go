package workload

import (
	"fmt"

	"duet/internal/cluster"
	"duet/internal/faults"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/study"
	"duet/internal/telemetry"
)

// This file is the deterministic chaos harness behind `duetsim chaos`:
// named fault scenarios — a seeded workload plus a seeded fault plan —
// each reducing to a small, fully deterministic outcome record. The
// scenarios are the repo's availability regression surface: their JSON
// outcomes are pinned as golden files, byte-identical at any study-pool
// width and across the cycle and model execution backends (the fault
// plan injects below the Backend seam, so both fail identically).

// ChaosResult is the outcome of one chaos scenario run — the merged
// cluster statistics reduced to the availability story. Field order is
// part of the golden-file contract.
type ChaosResult struct {
	Scenario string
	Shards   int
	Offered  int // arrivals offered, hedged duplicates included

	Completed int
	Failed    int
	Rejected  int

	// Failure sub-classes and fault-path counters (see sched.Stats).
	TimedOut    int
	Unavailable int
	Wedges      int
	Retries     int
	Quarantined int
	// Recovery counters (omitted when zero, so pre-recovery goldens keep
	// their bytes): repairs returning wedged fabrics to service, their
	// probationary failures, and the total time repaired fabrics spent
	// quarantined.
	Repairs        int      `json:",omitempty"`
	ProbationFails int      `json:",omitempty"`
	QuarantineTime sim.Time `json:",omitempty"`

	// Front-end fault-pass actions.
	Rerouted int
	Hedged   int

	DeadlineMisses int
	Goodput        int     // completions that met their deadline
	Availability   float64 // completed / offered

	P50      sim.Time
	P99      sim.Time
	Makespan sim.Time

	// Windows is the scenario's fault-telemetry series: per-window
	// wedge/retry/timeout/quarantine counts, goodput and utilization.
	Windows []telemetry.WindowRow `json:",omitempty"`
}

// ChaosScenarioNames lists the named scenarios in their canonical order.
func ChaosScenarioNames() []string {
	return []string{
		"wedge-storm", "shard-crash-rejoin", "deadline-burst",
		"quarantine-heal", "rack-outage", "flapping-fabric",
	}
}

// chaosConfig materializes a named scenario: workload and fault plan,
// with the execution backend left to the runner.
func chaosConfig(name string) (ClusterConfig, error) {
	switch name {
	case "wedge-storm":
		// Every fourth reprogram wedges its fabric; victims get two
		// retries and the Hybrid policy steers follow-on traffic to the
		// surviving fabrics and the CPU soft path as quarantines mount.
		return ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.Hybrid, EFPGAs: 2, SoftCPUs: 1,
				Jobs: 500, Seed: 7, MeanGapUS: 40, Windows: 6,
				Faults: &faults.Plan{Seed: 7, WedgeProb: 0.08, MaxRetries: 2},
			},
			Shards: 2, FrontEnd: cluster.RoundRobin,
		}, nil
	case "shard-crash-rejoin":
		// Shard 1 crashes mid-run and rejoins: queued jobs die, arrivals
		// reroute to healthy shards, and arrivals just ahead of the crash
		// are hedged onto a backup.
		return ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.Affinity, EFPGAs: 2,
				Jobs: 600, Seed: 11, MeanGapUS: 25, Windows: 6,
				Faults: &faults.Plan{
					Seed:      11,
					ShardDown: [][]sched.Downtime{nil, {{From: 4 * sim.MS, To: 9 * sim.MS}}},
					Hedge:     300 * sim.US,
				},
			},
			Shards: 3, FrontEnd: cluster.RoundRobin,
		}, nil
	case "deadline-burst":
		// An overload burst with deadline enforcement on: the queue
		// backs up and stale jobs are dropped as timed-out instead of
		// serving past their deadline.
		return ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.SJF, EFPGAs: 2,
				Jobs: 400, Seed: 3, MeanGapUS: 4, Windows: 6,
				Faults: &faults.Plan{Seed: 3, EnforceDeadlines: true},
			},
			Shards: 2, FrontEnd: cluster.RoundRobin,
		}, nil
	case "quarantine-heal":
		// Wedged fabrics come back: quarantine is transient under a
		// repair process, so the pool degrades, heals, and keeps serving
		// instead of ratcheting down to permanent losses.
		return ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.Affinity, EFPGAs: 2,
				Jobs: 500, Seed: 13, MeanGapUS: 40, Windows: 6,
				Faults: &faults.Plan{
					Seed: 13, WedgeProb: 0.12, MaxRetries: 2,
					RepairDelay: 500 * sim.US,
				},
			},
			Shards: 2, FrontEnd: cluster.RoundRobin,
		}, nil
	case "rack-outage":
		// A whole rack (shards 0 and 1) goes dark mid-run: the
		// health-weighted front end steers around the domain, and the
		// recovery hold ramps traffic back after the rejoin instead of
		// slamming the returning shards.
		return ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.Affinity, EFPGAs: 2,
				Jobs: 600, Seed: 17, MeanGapUS: 25, Windows: 6,
				Faults: &faults.Plan{
					Seed: 17,
					Domains: []faults.Domain{{
						Name: "rack0", Shards: []int{0, 1},
						Down: []sched.Downtime{{From: 3 * sim.MS, To: 8 * sim.MS}},
					}},
					Hedge:       300 * sim.US,
					RecoverHold: 2 * sim.MS,
				},
			},
			Shards: 4, FrontEnd: cluster.HealthWeighted,
		}, nil
	case "flapping-fabric":
		// One fabric wedges on every reprogram: each repair's probationary
		// re-reprogram wedges again, backoff stretches successive repair
		// delays, and the other fabric carries the shard meanwhile.
		return ClusterConfig{
			ServeConfig: ServeConfig{
				Policy: sched.Affinity, EFPGAs: 2,
				Jobs: 400, Seed: 23, MeanGapUS: 30, Windows: 6,
				Faults: &faults.Plan{
					Seed: 23, WedgeProbs: []float64{0.9, 0}, MaxRetries: 3,
					RepairDelay: 200 * sim.US,
				},
			},
			Shards: 2, FrontEnd: cluster.RoundRobin,
		}, nil
	}
	return ClusterConfig{}, fmt.Errorf("workload: unknown chaos scenario %q (have %v)", name, ChaosScenarioNames())
}

// ChaosOverride adjusts a named scenario's fault plan from the command
// line — the `duetsim chaos -repairdelay/-domains` knobs. The zero
// override changes nothing, so default runs keep their golden outcomes.
type ChaosOverride struct {
	// RepairDelay, when positive, installs (or retunes) the plan's repair
	// process: wedged fabrics return to service after seeded backoff
	// delays derived from it.
	RepairDelay sim.Time
	// Domains, when non-empty, replaces the plan's correlated failure
	// domains (see faults.ParseDomains for the flag syntax).
	Domains []faults.Domain
}

func (ov ChaosOverride) apply(plan *faults.Plan) {
	if ov.RepairDelay > 0 {
		plan.RepairDelay = ov.RepairDelay
	}
	if len(ov.Domains) > 0 {
		plan.Domains = ov.Domains
	}
}

// RunChaos plays one named scenario on the given execution backend and
// reduces it to its outcome record. Cycle-class backends are promoted to
// BackendHybrid when the scenario carries soft-path workers, so the
// worker pool matches the model variant exactly.
func RunChaos(name string, backend BackendMode) (ChaosResult, error) {
	return RunChaosOverride(name, backend, ChaosOverride{})
}

// RunChaosOverride is RunChaos with the scenario's fault plan adjusted
// by ov before the run.
func RunChaosOverride(name string, backend BackendMode, ov ChaosOverride) (ChaosResult, error) {
	cfg, err := chaosConfig(name)
	if err != nil {
		return ChaosResult{}, err
	}
	ov.apply(cfg.Faults)
	switch {
	case backend == BackendModel:
		cfg.Backend = BackendModel
	case cfg.SoftCPUs > 0:
		cfg.Backend = BackendHybrid
	default:
		cfg.Backend = BackendCycle
	}
	res, err := ServeCluster(cfg)
	if err != nil {
		return ChaosResult{}, err
	}
	m := res.Merged
	cr := ChaosResult{
		Scenario: name,
		Shards:   res.Shards,
		Offered:  res.Offered,

		Completed: m.Completed,
		Failed:    m.Failed,
		Rejected:  m.Rejected,

		TimedOut:       m.TimedOut,
		Unavailable:    m.Unavailable,
		Wedges:         m.Wedges,
		Retries:        m.Retries,
		Quarantined:    m.Quarantined,
		Repairs:        m.Repairs,
		ProbationFails: m.ProbationFails,
		QuarantineTime: m.QuarantineTime,

		Rerouted: res.Rerouted,
		Hedged:   res.Hedged,

		DeadlineMisses: m.DeadlineMisses,
		Goodput:        m.Completed - m.DeadlineMisses,

		P50:      m.P50,
		P99:      m.P99,
		Makespan: m.Makespan,

		Windows: res.Windows,
	}
	if res.Offered > 0 {
		cr.Availability = float64(m.Completed) / float64(res.Offered)
	}
	return cr, nil
}

// ChaosStudy runs the named scenarios on a parallel-wide study pool
// (<= 0 selects GOMAXPROCS), results in name order — the sweep behind
// `duetsim chaos -scenario all`. Pool width never changes the outcomes:
// each scenario is an independent deterministic cluster run.
func ChaosStudy(parallel int, names []string, backend BackendMode) ([]ChaosResult, error) {
	return ChaosStudyOverride(parallel, names, backend, ChaosOverride{})
}

// ChaosStudyOverride is ChaosStudy with every scenario's fault plan
// adjusted by ov before its run.
func ChaosStudyOverride(parallel int, names []string, backend BackendMode, ov ChaosOverride) ([]ChaosResult, error) {
	type out struct {
		res ChaosResult
		err error
	}
	pts := study.Map(parallel, names, func(n string) out {
		r, err := RunChaosOverride(n, backend, ov)
		return out{r, err}
	})
	results := make([]ChaosResult, len(pts))
	for i, p := range pts {
		if p.err != nil {
			return nil, p.err
		}
		results[i] = p.res
	}
	return results, nil
}
