package workload

import (
	"fmt"
	"reflect"
	"testing"

	"duet/internal/cluster"
	"duet/internal/sched"
	"duet/internal/sim"
)

// These tests pin the study runner's determinism contract at the
// workload level: a sweep's output must be byte-identical to the
// -parallel 1 (sequential) run at every pool width. CI runs them under
// -race, which is what turns "byte-identical" into "and provably not by
// luck": any shared mutable state between points would trip the
// detector.

func TestFig9ParallelGolden(t *testing.T) {
	freqs := []float64{100, 500}
	seq := Fig9P(1, freqs)
	for _, parallel := range []int{2, 8} {
		par := Fig9P(parallel, freqs)
		if got, want := fmt.Sprintf("%#v", par), fmt.Sprintf("%#v", seq); got != want {
			t.Fatalf("-parallel %d diverged from sequential:\n%s\n%s", parallel, got, want)
		}
	}
	if len(seq) != int(NumMechanisms)*len(freqs) {
		t.Fatalf("grid size %d, want %d", len(seq), int(NumMechanisms)*len(freqs))
	}
	// Row order is the sequential nesting: mechanism-major, frequency-minor.
	for i, r := range seq {
		if r.Mechanism != Mechanism(i/len(freqs)) || r.FreqMHz != freqs[i%len(freqs)] {
			t.Fatalf("row %d is (%v, %v): grid order broken", i, r.Mechanism, r.FreqMHz)
		}
	}
}

func TestAblationParallelGolden(t *testing.T) {
	windows, stages := []int{1, 4}, []int{2, 4}
	seq := Ablation(1, windows, stages, 100)
	for _, parallel := range []int{3, 8} {
		par := Ablation(parallel, windows, stages, 100)
		if got, want := fmt.Sprintf("%#v", par), fmt.Sprintf("%#v", seq); got != want {
			t.Fatalf("-parallel %d diverged from sequential:\n%s\n%s", parallel, got, want)
		}
	}
	if len(seq.HubWindow) != 2 || len(seq.SyncDepth) != 2 {
		t.Fatalf("sweep shape off: %+v", seq)
	}
	// Deeper synchronizers must cost latency; a wider window must not
	// lose bandwidth — the sweeps stay physically meaningful when run
	// concurrently.
	if seq.SyncDepth[1].Latency <= seq.SyncDepth[0].Latency {
		t.Fatalf("4-stage CDC (%v) not slower than 2-stage (%v)",
			seq.SyncDepth[1].Latency, seq.SyncDepth[0].Latency)
	}
	if seq.HubWindow[1].MBps <= seq.HubWindow[0].MBps {
		t.Fatalf("4-outstanding window (%v MB/s) not above 1-outstanding (%v MB/s)",
			seq.HubWindow[1].MBps, seq.HubWindow[0].MBps)
	}
}

func TestClusterStudyParallelGolden(t *testing.T) {
	var cfgs []ClusterConfig
	for _, fe := range []cluster.FrontEnd{cluster.HashApp, cluster.RoundRobin, cluster.LeastOutstanding} {
		cfgs = append(cfgs, ClusterConfig{
			ServeConfig: ServeConfig{Policy: sched.Affinity, Jobs: 60, Seed: 11},
			Shards:      2,
			FrontEnd:    fe,
		})
	}
	seq, err := ClusterStudy(1, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{3, 8} {
		par, err := ClusterStudy(parallel, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		// Exact-mode results hold no pointers (Digest is nil), so the
		// formatted dump is a faithful byte-identity probe.
		if got, want := fmt.Sprintf("%+v", par), fmt.Sprintf("%+v", seq); got != want {
			t.Fatalf("-parallel %d cluster study diverged from sequential:\n%s\n%s", parallel, got, want)
		}
	}
}

// TestServeStudyParallelGolden: the serve policy sweep behind `duetsim
// serve` through the pool, against its sequential self and against the
// direct Serve calls.
func TestServeStudyParallelGolden(t *testing.T) {
	var cfgs []ServeConfig
	for p := sched.Policy(0); p < sched.NumPolicies; p++ {
		cfgs = append(cfgs, ServeConfig{Policy: p, Jobs: 60, Seed: 5})
	}
	seq := ServeStudy(1, cfgs)
	par := ServeStudy(4, cfgs)
	if got, want := fmt.Sprintf("%+v", par), fmt.Sprintf("%+v", seq); got != want {
		t.Fatalf("parallel serve study diverged:\n%s\n%s", got, want)
	}
	for i, cfg := range cfgs {
		if direct := Serve(cfg); !reflect.DeepEqual(direct, seq[i]) {
			t.Fatalf("study row %d diverged from direct Serve:\n%+v\n%+v", i, seq[i], direct)
		}
	}
}

// TestServeClusterStreamingMatchesExact: a streaming-stats cluster run
// must agree with the exact run on every counter, sum, and fabric stat,
// and place P50/P99 within the digest's documented bound — while
// retaining no raw samples on any shard.
func TestServeClusterStreamingMatchesExact(t *testing.T) {
	base := ServeConfig{Policy: sched.Affinity, Jobs: 120, Seed: 7}
	mk := func(mode sched.StatsMode) ClusterResult {
		cfg := base
		cfg.Stats = mode
		r, err := ServeCluster(ClusterConfig{ServeConfig: cfg, Shards: 3, FrontEnd: cluster.LeastOutstanding})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	exact := mk(sched.StatsExact)
	stream := mk(sched.StatsStreaming)

	for i, s := range stream.PerShard {
		if s.Sojourns != nil {
			t.Fatalf("streaming shard %d retained %d raw sojourn samples", i, len(s.Sojourns))
		}
		if s.Digest == nil {
			t.Fatalf("streaming shard %d has no digest", i)
		}
	}
	e, s := exact.Merged, stream.Merged
	if s.Completed != e.Completed || s.Failed != e.Failed || s.Rejected != e.Rejected ||
		s.Reconfigs != e.Reconfigs || s.DeadlineMisses != e.DeadlineMisses ||
		s.Makespan != e.Makespan || s.ThroughputPerMS != e.ThroughputPerMS ||
		s.MeanWait != e.MeanWait || s.MeanService != e.MeanService {
		t.Fatalf("streaming merge diverged beyond quantiles:\nstream %+v\nexact  %+v", s, e)
	}
	for _, q := range []struct {
		name      string
		got, want sim.Time
	}{{"p50", s.P50, e.P50}, {"p99", s.P99, e.P99}} {
		if q.got < q.want || q.got > q.want+sim.Time(float64(q.want)*sched.DigestRelError)+1 {
			t.Errorf("%s: streaming %v vs exact %v outside the %.2f%% bound",
				q.name, q.got, q.want, 100*sched.DigestRelError)
		}
	}
	if fmt.Sprintf("%+v", s.Fabrics) != fmt.Sprintf("%+v", e.Fabrics) {
		t.Fatalf("fabric stats diverged:\n%+v\n%+v", s.Fabrics, e.Fabrics)
	}
	// Determinism holds in streaming mode too: repeat and DeepEqual
	// (which follows the digest pointers into their bucket tables).
	if again := mk(sched.StatsStreaming); !reflect.DeepEqual(again, stream) {
		t.Fatal("repeated streaming cluster runs diverged")
	}
}

// TestStreamingStatsMemoryFlat: doubling the offered jobs must grow
// exact mode's per-shard sample memory linearly while the streaming
// digest's footprint stays flat (and within its documented bound) — the
// property that lets serve-scale runs go to millions of jobs.
func TestStreamingStatsMemoryFlat(t *testing.T) {
	run := func(jobs int, mode sched.StatsMode) (sampleBytes, digestBytes int) {
		r, err := ServeCluster(ClusterConfig{
			ServeConfig: ServeConfig{Policy: sched.FIFO, Jobs: jobs, Seed: 1, MeanGapUS: 30, QueueCap: 4096, Stats: mode},
			Shards:      2,
			FrontEnd:    cluster.RoundRobin,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range r.PerShard {
			sampleBytes += 8 * len(s.Sojourns)
			if s.Digest != nil {
				digestBytes += s.Digest.MemoryBytes()
			}
		}
		return
	}
	exact1, _ := run(20_000, sched.StatsExact)
	exact2, _ := run(40_000, sched.StatsExact)
	_, stream1 := run(20_000, sched.StatsStreaming)
	_, stream2 := run(40_000, sched.StatsStreaming)

	if exact2 < exact1*2-16 {
		t.Fatalf("exact sample memory not linear: %d B at 20k, %d B at 40k", exact1, exact2)
	}
	// The digest's lazy table may reach a few buckets further when a
	// longer run sees a larger max sojourn, but it must stay within its
	// hard bound and essentially flat while exact memory doubles.
	if grew := stream2 - stream1; grew > 1024 {
		t.Fatalf("streaming digest memory grew %d B with job count (%d -> %d B)", grew, stream1, stream2)
	}
	if bound := 2 * 8 * sched.DigestMaxBuckets; stream2 > bound {
		t.Fatalf("digest memory %d B exceeds the documented bound %d B", stream2, bound)
	}
	t.Logf("per-shard stats memory: exact %d->%d B, streaming %d->%d B", exact1, exact2, stream1, stream2)
}
