package workload

import (
	"testing"

	"duet/internal/faults"
	"duet/internal/sched"
	"duet/internal/sim"
)

// TestCrossValidateUnderFaults extends the xval gate below the fault
// seam: under an identical fault plan, the cycle-level and analytic
// backends must report the same wedge, quarantine, retry, timeout and
// unavailability decisions exactly — the fault draws are counted hashes
// of the shared dispatch sequence, so any divergence is a seam bug, not
// tolerance noise.
func TestCrossValidateUnderFaults(t *testing.T) {
	cases := []struct {
		name string
		cfg  ServeConfig
		// wants name the counters the scenario must actually move, so a
		// passing comparison can't be vacuous.
		wants func(t *testing.T, s sched.Stats)
	}{
		{
			name: "wedges-and-retries",
			cfg: ServeConfig{
				Policy: sched.Affinity, Jobs: 300, MeanGapUS: 40,
				Faults: &faults.Plan{Seed: 5, WedgeProb: 0.1, MaxRetries: 2},
			},
			wants: func(t *testing.T, s sched.Stats) {
				if s.Wedges == 0 || s.Quarantined == 0 {
					t.Errorf("plan injected no wedges (wedges=%d quarantined=%d)", s.Wedges, s.Quarantined)
				}
			},
		},
		{
			name: "wedges-with-hybrid-spill",
			cfg: ServeConfig{
				Policy: sched.Hybrid, SoftCPUs: 1, Jobs: 300, MeanGapUS: 40, QueueCap: 1024,
				Faults: &faults.Plan{Seed: 9, WedgeProb: 0.15, MaxRetries: 1},
			},
			wants: func(t *testing.T, s sched.Stats) {
				if s.Wedges == 0 {
					t.Errorf("plan injected no wedges")
				}
			},
		},
		{
			name: "deadline-enforcement",
			cfg: ServeConfig{
				Policy: sched.SJF, Jobs: 300, MeanGapUS: 4, QueueCap: 1024,
				Faults: &faults.Plan{Seed: 3, EnforceDeadlines: true},
			},
			wants: func(t *testing.T, s sched.Stats) {
				if s.TimedOut == 0 {
					t.Errorf("overload enforced no deadlines")
				}
			},
		},
		{
			name: "downtime-window",
			cfg: ServeConfig{
				Policy: sched.FIFO, Jobs: 300, MeanGapUS: 10, QueueCap: 1024,
				Faults: &faults.Plan{
					Seed:      4,
					ShardDown: [][]sched.Downtime{{{From: 200 * sim.US, To: 1200 * sim.US}}},
				},
			},
			wants: func(t *testing.T, s sched.Stats) {
				if s.Unavailable == 0 {
					t.Errorf("downtime window refused nothing")
				}
			},
		},
		{
			name: "service-blowups",
			cfg: ServeConfig{
				Policy: sched.Affinity, Jobs: 300, MeanGapUS: 40,
				Faults: &faults.Plan{Seed: 8, BlowupProb: 0.1, BlowupFactor: 5},
			},
			wants: func(t *testing.T, s sched.Stats) {
				if s.DeadlineMisses == 0 {
					t.Errorf("blowups missed no deadlines")
				}
			},
		},
		{
			name: "wedge-repair-cycle",
			cfg: ServeConfig{
				Policy: sched.Affinity, Jobs: 400, MeanGapUS: 40,
				Faults: &faults.Plan{
					Seed: 13, WedgeProb: 0.15, MaxRetries: 2,
					RepairDelay: 400 * sim.US,
				},
			},
			wants: func(t *testing.T, s sched.Stats) {
				if s.Repairs == 0 || s.QuarantineTime == 0 {
					t.Errorf("repair process returned nothing to service (repairs=%d quarantine=%v)", s.Repairs, s.QuarantineTime)
				}
			},
		},
		{
			name: "domain-downtime",
			cfg: ServeConfig{
				Policy: sched.FIFO, Jobs: 300, MeanGapUS: 10, QueueCap: 1024,
				Faults: &faults.Plan{
					Seed: 6,
					Domains: []faults.Domain{{
						Name: "rack", Shards: []int{0},
						Down: []sched.Downtime{{From: 200 * sim.US, To: 1200 * sim.US}},
					}},
				},
			},
			wants: func(t *testing.T, s sched.Stats) {
				if s.Unavailable == 0 {
					t.Errorf("domain window refused nothing")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows := CrossValidate(0, []ServeConfig{tc.cfg})
			row := rows[0]
			if !row.CountersMatch {
				t.Fatalf("counters diverge under fault plan:\ncycle: %+v\nmodel: %+v", row.Cycle.Stats, row.Model.Stats)
			}
			if row.P50RelErr > XValTolerance || row.P99RelErr > XValTolerance {
				t.Fatalf("quantile error p50=%.4f p99=%.4f exceeds tolerance %.4f",
					row.P50RelErr, row.P99RelErr, XValTolerance)
			}
			tc.wants(t, row.Model.Stats)
		})
	}
}
