package workload

import (
	"math/rand"

	"duet/internal/cluster"
	"duet/internal/sched"
	"duet/internal/sim"
)

// ArrivalSource is the serve study's arrival process as an O(1)-memory
// online generator: the exact draw sequence of serveArrivals (exponential
// gaps, uniform app choice, uniform input sizes, loose exponential
// deadline slack — in that order, per job, off one math/rand stream
// seeded with cfg.Seed), yielded one arrival at a time instead of
// materialized as an O(jobs) slice. The pinned FNV-1a stream hash and
// every golden output are therefore unchanged: the bytes a study sees
// are identical whether the stream is materialized or pulled from here.
//
// It implements cluster.Source, so cluster.RunSource can fan a
// billion-job study across shards with peak memory independent of the
// job count.
type ArrivalSource struct {
	cfg ServeConfig // defaults applied
	rng *rand.Rand
	i   int
	at  sim.Time
}

// NewArrivalSource returns the arrival generator for cfg (defaults
// applied, like Arrivals).
func NewArrivalSource(cfg ServeConfig) *ArrivalSource {
	cfg = cfg.withDefaults()
	return &ArrivalSource{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next draws the next arrival into *a; false once Jobs have been yielded.
func (s *ArrivalSource) Next(a *cluster.Arrival) bool {
	if s.i >= s.cfg.Jobs {
		return false
	}
	s.i++
	s.at += sim.Time(s.rng.ExpFloat64() * s.cfg.MeanGapUS * float64(sim.US))
	j := sched.Job{
		App:       ServeApps[s.rng.Intn(len(ServeApps))].Name,
		InputSize: 64 + s.rng.Intn(2048),
		Priority:  s.rng.Intn(4),
	}
	j.Deadline = s.at + sim.Time((0.2+0.6*s.rng.ExpFloat64())*float64(sim.MS))
	a.At, a.Job = s.at, j
	return true
}

// Len reports the total number of arrivals the stream will yield.
func (s *ArrivalSource) Len() int { return s.cfg.Jobs }

// Clone returns an independent generator restarted at the first arrival —
// cluster.RunSource's per-shard filtered generation depends on it.
func (s *ArrivalSource) Clone() cluster.Source { return NewArrivalSource(s.cfg) }

// Span reports the stream's final arrival instant — the closed-form
// input to the telemetry window-width derivation — by draining a private
// clone in O(1) memory. It costs one extra generation pass, paid only
// when a run turns the flight recorder on (Windows > 0).
func (s *ArrivalSource) Span() sim.Time {
	c := NewArrivalSource(s.cfg)
	var a cluster.Arrival
	for c.Next(&a) {
	}
	return c.at
}
