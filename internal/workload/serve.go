package workload

import (
	"encoding/json"
	"fmt"

	"duet"
	"duet/internal/accel"
	"duet/internal/cluster"
	"duet/internal/efpga"
	"duet/internal/faults"
	"duet/internal/model"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/study"
	"duet/internal/telemetry"
)

// This file implements the accelerator-as-a-service study behind
// `duetsim serve`: an open-loop, seeded arrival process over the paper's
// application accelerators, played through internal/sched on a serve
// replica. The arrival stream is a deterministic function of the seed,
// so repeated runs at the same seed produce identical results under
// every policy and execution backend.

// BackendMode selects the execution backend a serve replica runs on.
type BackendMode int

// Backend modes.
const (
	// BackendCycle is the cycle-level path: a full Dolly instance
	// (cores, NoC, coherence, adapters) with sched.CycleBackend workers.
	BackendCycle BackendMode = iota
	// BackendModel is internal/model's calibrated analytic fast path:
	// the same scheduler and the same App service/reprogram charges with
	// no Dolly instance and no event engine behind them.
	BackendModel
	// BackendHybrid is the cycle-level path plus CPU soft-path fallback
	// workers (SoftCPUs of them) the scheduler can spill to — pair it
	// with sched.Hybrid for the dynamic hardware/software partitioning
	// scenario.
	BackendHybrid
	NumBackendModes
)

func (m BackendMode) String() string {
	names := [...]string{"cycle", "model", "hybrid"}
	if m < 0 || int(m) >= len(names) {
		return "unknown"
	}
	return names[m]
}

// MarshalJSON encodes the mode as its String name for machine-readable
// study output.
func (m BackendMode) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// BackendModeByName parses a backend mode as printed by String.
func BackendModeByName(name string) (BackendMode, error) {
	for m := BackendMode(0); m < NumBackendModes; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown backend %q", name)
}

// ServeConfig parameterizes one serve run.
type ServeConfig struct {
	Policy    sched.Policy
	EFPGAs    int     // fabrics to serve across (default 2)
	MemHubs   int     // memory hubs per adapter (default 1)
	Jobs      int     // offered jobs (default 240)
	Seed      int64   // arrival-process seed (default 1)
	MeanGapUS float64 // mean inter-arrival gap in microseconds (default 25)
	QueueCap  int     // admission-queue bound (default sched's 64)

	// Stats selects the scheduler's aggregation mode: exact per-job
	// ledgers (default) or fixed-memory streaming digests for
	// million-job runs (see sched.StatsMode).
	Stats sched.StatsMode

	// Backend selects the execution backend (default BackendCycle; the
	// cycle and model backends produce matching statistics — see the
	// cross-validation study in xval.go).
	Backend BackendMode
	// SoftCPUs is the number of CPU soft-path workers appended after the
	// fabrics (hybrid and model backends; defaults to 1 under
	// BackendHybrid).
	SoftCPUs int
	// CPUSlowdown calibrates the soft path (defaults to
	// model.DefaultCPUSlowdown, the paper's Fig. 12 geomean speedup).
	CPUSlowdown float64

	// Faults, when non-nil, is the run's deterministic fault plan: the
	// backend wrappers and scheduler fault config are installed on every
	// replica (internal/faults). A non-nil but empty plan still installs
	// the injection seam — inert, which is what the fault-free overhead
	// benchmark measures. Nil leaves the stack exactly as before.
	Faults *faults.Plan

	// Windows, when positive, turns on the windowed flight recorder:
	// the arrival stream's span is divided into Windows fixed-width
	// simulated-time buckets and every replica records per-window
	// telemetry (internal/telemetry). Completions landing after the
	// last arrival extend the series a few windows past Windows. The
	// width is a pure function of (seed, jobs, mean gap, Windows), so
	// shard series align and the recorded series inherits the study's
	// determinism contract. 0 disables telemetry.
	Windows int

	// Progress, when set, receives coarse jobs-done counts and the
	// simulated-time high-water mark as the run consumes its arrival
	// stream — the sensor behind `duetsim -progress`. Nil (the default)
	// disables all updates; the field never affects results.
	Progress *cluster.Progress
}

// ServeResult is the outcome of one serve run.
type ServeResult struct {
	Policy  sched.Policy
	Backend BackendMode
	Offered int
	sched.Stats

	// Windows is the flight-recorder series (nil unless
	// ServeConfig.Windows > 0).
	Windows []telemetry.WindowRow `json:"Windows,omitempty"`
}

// serveStub is the inert fabric-side model behind each catalog bitstream:
// the scheduler models service time analytically, so the accelerator
// spawns no behavioural threads.
type serveStub struct{}

func (serveStub) Start(*efpga.Env) {}

// ServeApp is one entry of the multi-tenant catalog: a Table II
// accelerator plus its per-job cycle model (fixed setup + cycles per
// input item on the fabric clock at the bitstream's Fmax).
type ServeApp struct {
	Name    string
	Fixed   int64
	PerItem int64
}

// ServeApps is the serve study's application mix.
var ServeApps = []ServeApp{
	{"Tangent", 32, 1},
	{"Popcount", 64, 4},
	{"Sort (32)", 96, 6},
	{"Dijkstra", 128, 10},
	{"BFS", 64, 3},
}

// withDefaults returns cfg with the study's default parameters applied.
func (cfg ServeConfig) withDefaults() ServeConfig {
	if cfg.EFPGAs <= 0 {
		cfg.EFPGAs = 2
	}
	if cfg.MemHubs <= 0 {
		cfg.MemHubs = 1
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 240
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MeanGapUS <= 0 {
		cfg.MeanGapUS = 25
	}
	if cfg.Backend == BackendHybrid && cfg.SoftCPUs <= 0 {
		cfg.SoftCPUs = 1
	}
	return cfg
}

// RegisterServeApps installs the full serve catalog on a scheduler —
// the same apps batch serve studies run, so the daemon's live catalog
// matches the offline one.
func RegisterServeApps(sch *sched.Scheduler) error { return registerServeApps(sch) }

// registerServeApps installs the full serve catalog on a scheduler.
func registerServeApps(sch *sched.Scheduler) error {
	for _, a := range ServeApps {
		bs := accel.Synthesize(a.Name, func() efpga.Accelerator { return serveStub{} })
		if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: a.Fixed, CyclesPerItem: a.PerItem}); err != nil {
			return err
		}
	}
	return nil
}

// newServeReplica builds one serve replica for cfg's backend mode:
// a cycle-level Dolly instance, the analytic model replica, or a hybrid
// Dolly + CPU-soft-path pool. cfg must have defaults applied. shard is
// the replica's cluster shard index (0 for single-replica runs) — the
// fault plan's draw site and outage-schedule key. checked selects
// RunChecked (coherence validation) for engine-backed replicas; harvest
// keeps the exact-mode per-job samples (cluster shards need them for
// exact merged quantiles; single-replica Serve reads Stats only and
// skips the duplicate O(jobs) copy). windowWidth, when positive,
// attaches a flight recorder over windows of that width — every shard
// of one run must get the same width so its series merge.
func newServeReplica(cfg ServeConfig, shard int, checked, harvest bool, windowWidth sim.Time) (cluster.Replica, error) {
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = faults.NewInjector(cfg.Faults, shard)
	}
	if cfg.Backend == BackendModel {
		mcfg := model.Config{
			EFPGAs: cfg.EFPGAs, SoftCPUs: cfg.SoftCPUs, MemHubs: cfg.MemHubs,
			Policy: cfg.Policy, QueueCap: cfg.QueueCap, Stats: cfg.Stats,
			CPUSlowdown: cfg.CPUSlowdown, DiscardSamples: !harvest,
		}
		if inj != nil {
			mcfg.Wrap = func(tl model.Timeline, worker int, be sched.Backend) sched.Backend {
				return inj.Wrap(tl, worker, be)
			}
			mcfg.Faults = cfg.Faults.FaultConfig(shard)
		}
		rep := model.NewReplica(mcfg)
		if err := registerServeApps(rep.Scheduler()); err != nil {
			return nil, err
		}
		if windowWidth > 0 {
			rep.SetRecorder(telemetry.NewRecorder(windowWidth, rep.Scheduler().WorkerKinds()))
		}
		return rep, nil
	}
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: cfg.MemHubs, EFPGAs: cfg.EFPGAs, Style: duet.StyleDuet,
	})
	var soft []sched.Backend
	if cfg.Backend == BackendHybrid {
		for i := 0; i < cfg.SoftCPUs; i++ {
			soft = append(soft, model.NewCPU(sys.Eng, fmt.Sprintf("cpu%d", i), cfg.CPUSlowdown))
		}
	}
	scfg := sched.Config{
		Policy: cfg.Policy, QueueCap: cfg.QueueCap, Stats: cfg.Stats,
	}
	var wrap func(worker int, be sched.Backend) sched.Backend
	if inj != nil {
		scfg.Faults = cfg.Faults.FaultConfig(shard)
		wrap = func(worker int, be sched.Backend) sched.Backend {
			return inj.Wrap(sys.Eng, worker, be)
		}
	}
	sch := sys.SchedulerWrapped(scfg, wrap, soft...)
	if err := registerServeApps(sch); err != nil {
		return nil, err
	}
	run := func() error {
		sys.Run()
		return nil
	}
	if checked {
		run = func() error {
			_, err := sys.RunChecked()
			return err
		}
	}
	rep := &cluster.EngineReplica{Eng: sys.Eng, Sch: sch, Run: run, DiscardSamples: !harvest}
	if windowWidth > 0 {
		rep.Rec = telemetry.NewRecorder(windowWidth, sch.WorkerKinds())
	}
	return rep, nil
}

// spanWidth derives the flight recorder's window width from the arrival
// stream's final instant: the smallest width at which n windows cover
// every arrival (ceil((last+1)/n)). The span is a pure function of the
// serve config, so the width — and with it the window keying of every
// shard — is too. Streaming runs compute last with ArrivalSource.Span
// (O(1) memory); materialized runs read stream[len-1].At — identical
// values, so both paths key windows the same way.
func spanWidth(last sim.Time, n int) sim.Time {
	if n <= 0 {
		return 0
	}
	w := (int64(last) + int64(n)) / int64(n)
	if w < 1 {
		w = 1
	}
	return sim.Time(w)
}

// windowWidth is spanWidth over a materialized stream. Zero (telemetry
// off) when n <= 0 or the stream is empty.
func windowWidth(stream []cluster.Arrival, n int) sim.Time {
	if n <= 0 || len(stream) == 0 {
		return 0
	}
	return spanWidth(stream[len(stream)-1].At, n) // arrivals are generated in ascending order
}

// Arrivals generates cfg's open-loop arrival stream (defaults applied) —
// the exact stream Serve and ServeCluster play. Exported so benchmarks
// and studies can pre-generate the stream outside their timed region.
func Arrivals(cfg ServeConfig) []cluster.Arrival {
	return serveArrivals(cfg.withDefaults())
}

// serveArrivals materializes the study's open-loop arrival stream from
// ArrivalSource — the single home of the draw sequence, so the
// materialized and streaming paths are the same stream by construction
// (a property test pins it). cfg must have defaults applied.
func serveArrivals(cfg ServeConfig) []cluster.Arrival {
	src := NewArrivalSource(cfg)
	arrivals := make([]cluster.Arrival, 0, cfg.Jobs)
	var a cluster.Arrival
	for src.Next(&a) {
		arrivals = append(arrivals, a)
	}
	return arrivals
}

// Serve plays a seeded open-loop workload through the scheduler and
// reports its statistics. The arrival stream is pulled straight from
// the generator — never materialized — so memory stays flat at any job
// count.
func Serve(cfg ServeConfig) ServeResult {
	cfg = cfg.withDefaults()
	src := NewArrivalSource(cfg)
	var width sim.Time
	if cfg.Windows > 0 {
		width = spanWidth(src.Span(), cfg.Windows)
	}
	rep, err := newServeReplica(cfg, 0, false, false, width)
	if err != nil {
		panic(err)
	}
	sr, err := rep.PlayStream(cluster.NewSourceFeed(src, cfg.Progress))
	if err != nil {
		panic(err)
	}
	res := ServeResult{Policy: cfg.Policy, Backend: cfg.Backend, Offered: cfg.Jobs, Stats: sr.Stats}
	if sr.Windows != nil {
		res.Windows = sr.Windows.Series()
	}
	return res
}

// ServeStudy runs one Serve per config on a parallel-wide study pool
// (<= 0 selects GOMAXPROCS), results in config order — the sweep behind
// `duetsim serve`'s policy table.
func ServeStudy(parallel int, cfgs []ServeConfig) []ServeResult {
	return study.Map(parallel, cfgs, Serve)
}
