package workload

import (
	"math/rand"

	"duet"
	"duet/internal/accel"
	"duet/internal/cluster"
	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/study"
)

// This file implements the accelerator-as-a-service study behind
// `duetsim serve`: an open-loop, seeded arrival process over the paper's
// application accelerators, played through internal/sched on a
// multi-eFPGA Dolly instance. The arrival stream is a deterministic
// function of the seed, so repeated runs at the same seed produce
// identical results under every policy.

// ServeConfig parameterizes one serve run.
type ServeConfig struct {
	Policy    sched.Policy
	EFPGAs    int     // fabrics to serve across (default 2)
	MemHubs   int     // memory hubs per adapter (default 1)
	Jobs      int     // offered jobs (default 240)
	Seed      int64   // arrival-process seed (default 1)
	MeanGapUS float64 // mean inter-arrival gap in microseconds (default 25)
	QueueCap  int     // admission-queue bound (default sched's 64)

	// Stats selects the scheduler's aggregation mode: exact per-job
	// ledgers (default) or fixed-memory streaming digests for
	// million-job runs (see sched.StatsMode).
	Stats sched.StatsMode
}

// ServeResult is the outcome of one serve run.
type ServeResult struct {
	Policy  sched.Policy
	Offered int
	sched.Stats
}

// serveStub is the inert fabric-side model behind each catalog bitstream:
// the scheduler models service time analytically, so the accelerator
// spawns no behavioural threads.
type serveStub struct{}

func (serveStub) Start(*efpga.Env) {}

// ServeApp is one entry of the multi-tenant catalog: a Table II
// accelerator plus its per-job cycle model (fixed setup + cycles per
// input item on the fabric clock at the bitstream's Fmax).
type ServeApp struct {
	Name    string
	Fixed   int64
	PerItem int64
}

// ServeApps is the serve study's application mix.
var ServeApps = []ServeApp{
	{"Tangent", 32, 1},
	{"Popcount", 64, 4},
	{"Sort (32)", 96, 6},
	{"Dijkstra", 128, 10},
	{"BFS", 64, 3},
}

// withDefaults returns cfg with the study's default parameters applied.
func (cfg ServeConfig) withDefaults() ServeConfig {
	if cfg.EFPGAs <= 0 {
		cfg.EFPGAs = 2
	}
	if cfg.MemHubs <= 0 {
		cfg.MemHubs = 1
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 240
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MeanGapUS <= 0 {
		cfg.MeanGapUS = 25
	}
	return cfg
}

// newServeSystem builds one Dolly instance with the full serve catalog
// registered — a single-shard serve replica. cfg must have defaults
// applied.
func newServeSystem(cfg ServeConfig) (*duet.System, *sched.Scheduler, error) {
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: cfg.MemHubs, EFPGAs: cfg.EFPGAs, Style: duet.StyleDuet,
	})
	sch := sys.Scheduler(sched.Config{Policy: cfg.Policy, QueueCap: cfg.QueueCap, Stats: cfg.Stats})
	for _, a := range ServeApps {
		bs := accel.Synthesize(a.Name, func() efpga.Accelerator { return serveStub{} })
		if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: a.Fixed, CyclesPerItem: a.PerItem}); err != nil {
			return nil, nil, err
		}
	}
	return sys, sch, nil
}

// serveArrivals generates the study's open-loop arrival stream:
// exponential gaps, uniform app choice, uniform input sizes, and a loose
// exponential deadline slack. All draws happen here, in submission order,
// so the stream is a pure function of cfg — the root of both Serve's and
// ServeCluster's determinism contracts. cfg must have defaults applied.
func serveArrivals(cfg ServeConfig) []cluster.Arrival {
	rng := rand.New(rand.NewSource(cfg.Seed))
	at := sim.Time(0)
	arrivals := make([]cluster.Arrival, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		at += sim.Time(rng.ExpFloat64() * cfg.MeanGapUS * float64(sim.US))
		j := sched.Job{
			App:       ServeApps[rng.Intn(len(ServeApps))].Name,
			InputSize: 64 + rng.Intn(2048),
			Priority:  rng.Intn(4),
		}
		j.Deadline = at + sim.Time((0.2+0.6*rng.ExpFloat64())*float64(sim.MS))
		arrivals = append(arrivals, cluster.Arrival{At: at, Job: j})
	}
	return arrivals
}

// Serve plays a seeded open-loop workload through the scheduler and
// reports its statistics.
func Serve(cfg ServeConfig) ServeResult {
	cfg = cfg.withDefaults()
	sys, sch, err := newServeSystem(cfg)
	if err != nil {
		panic(err)
	}
	submit := func(a any) { sch.Submit(a.(*sched.Job)) }
	for _, a := range serveArrivals(cfg) {
		job := a.Job
		sys.Eng.AtArg(a.At, submit, &job)
	}
	sys.Run()
	return ServeResult{Policy: cfg.Policy, Offered: cfg.Jobs, Stats: sch.Stats()}
}

// ServeStudy runs one Serve per config on a parallel-wide study pool
// (<= 0 selects GOMAXPROCS), results in config order — the sweep behind
// `duetsim serve`'s policy table.
func ServeStudy(parallel int, cfgs []ServeConfig) []ServeResult {
	return study.Map(parallel, cfgs, Serve)
}
