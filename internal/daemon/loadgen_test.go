package daemon

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"duet/internal/workload"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("alpha:3, beta:1,gamma")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantShare{{"alpha", 3}, {"beta", 1}, {"gamma", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseTenants = %+v, want %+v", got, want)
	}
	if got, err := ParseTenants("  "); err != nil || got != nil {
		t.Fatalf("blank spec = %+v, %v", got, err)
	}
	for _, bad := range []string{":3", "a:0", "a:x", "a:-1", ","} {
		if _, err := ParseTenants(bad); err == nil {
			t.Fatalf("ParseTenants(%q) did not fail", bad)
		}
	}
}

// newLiveServer boots a wall-clock daemon with a running ticker — the
// configuration the loadgen actually benchmarks.
func newLiveServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := NewServer(Config{Backend: workload.BackendModel, EFPGAs: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go s.RunTicker(time.Millisecond, stop)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		close(stop)
	})
	return ts
}

// TestLoadgenClosed: a short closed-loop run against a live daemon
// completes jobs with no errors and reports coherent numbers.
func TestLoadgenClosed(t *testing.T) {
	ts := newLiveServer(t)
	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Target:      ts.URL,
		Mode:        "closed",
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Tenants:     []TenantShare{{"alpha", 3}, {"beta", 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("closed loop completed nothing: %+v", rep)
	}
	if rep.OtherErrors != 0 || rep.Failed != 0 {
		t.Fatalf("closed loop hit errors: %+v", rep)
	}
	if rep.Completed > rep.Sent {
		t.Fatalf("completed %d > sent %d", rep.Completed, rep.Sent)
	}
	if rep.WallP50 <= 0 || rep.WallP99 < rep.WallP50 {
		t.Fatalf("incoherent latency aggregates: %+v", rep)
	}
}

// TestLoadgenOpen: the open-loop pacer submits on its own schedule and
// the Jobs cap stops it early.
func TestLoadgenOpen(t *testing.T) {
	ts := newLiveServer(t)
	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Target:      ts.URL,
		Mode:        "open",
		Concurrency: 8,
		RateHz:      2000,
		Duration:    2 * time.Second,
		Jobs:        25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 25 {
		t.Fatalf("open loop sent %d, want the 25-job cap", rep.Sent)
	}
	if rep.Completed == 0 {
		t.Fatalf("open loop completed nothing: %+v", rep)
	}
}

// TestLoadgenRejectsBadConfig: mode and target validation fail fast.
func TestLoadgenRejectsBadConfig(t *testing.T) {
	if _, err := RunLoadgen(context.Background(), LoadgenConfig{Target: "http://x", Mode: "sideways"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := RunLoadgen(context.Background(), LoadgenConfig{}); err == nil {
		t.Fatal("missing target accepted")
	}
}
