package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"duet/internal/workload"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("alpha:3, beta:1,gamma")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantShare{{"alpha", 3}, {"beta", 1}, {"gamma", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseTenants = %+v, want %+v", got, want)
	}
	if got, err := ParseTenants("  "); err != nil || got != nil {
		t.Fatalf("blank spec = %+v, %v", got, err)
	}
	for _, bad := range []string{":3", "a:0", "a:x", "a:-1", ","} {
		if _, err := ParseTenants(bad); err == nil {
			t.Fatalf("ParseTenants(%q) did not fail", bad)
		}
	}
}

// newLiveServer boots a wall-clock daemon with a running ticker — the
// configuration the loadgen actually benchmarks.
func newLiveServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := NewServer(Config{Backend: workload.BackendModel, EFPGAs: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go s.RunTicker(time.Millisecond, stop)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		close(stop)
	})
	return ts
}

// TestLoadgenClosed: a short closed-loop run against a live daemon
// completes jobs with no errors and reports coherent numbers.
func TestLoadgenClosed(t *testing.T) {
	ts := newLiveServer(t)
	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Target:      ts.URL,
		Mode:        "closed",
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Tenants:     []TenantShare{{"alpha", 3}, {"beta", 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("closed loop completed nothing: %+v", rep)
	}
	if rep.OtherErrors != 0 || rep.Failed != 0 {
		t.Fatalf("closed loop hit errors: %+v", rep)
	}
	if rep.Completed > rep.Sent {
		t.Fatalf("completed %d > sent %d", rep.Completed, rep.Sent)
	}
	if rep.WallP50 <= 0 || rep.WallP99 < rep.WallP50 {
		t.Fatalf("incoherent latency aggregates: %+v", rep)
	}
}

// TestLoadgenOpen: the open-loop pacer submits on its own schedule and
// the Jobs cap stops it early.
func TestLoadgenOpen(t *testing.T) {
	ts := newLiveServer(t)
	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Target:      ts.URL,
		Mode:        "open",
		Concurrency: 8,
		RateHz:      2000,
		Duration:    2 * time.Second,
		Jobs:        25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 25 {
		t.Fatalf("open loop sent %d, want the 25-job cap", rep.Sent)
	}
	if rep.Completed == 0 {
		t.Fatalf("open loop completed nothing: %+v", rep)
	}
}

// TestRetryDelay pins the Retry-After handling: the server's hint wins
// (capped), and missing or malformed headers fall back to the
// deterministic per-attempt ramp.
func TestRetryDelay(t *testing.T) {
	cases := []struct {
		header  string
		attempt int
		want    time.Duration
	}{
		{"1", 0, time.Second},
		{" 1 ", 0, time.Second},
		{"0", 0, 0},
		{"30", 0, loadgenRetryCap},
		{"", 0, 50 * time.Millisecond},
		{"", 1, 100 * time.Millisecond},
		{"", 100, loadgenRetryCap},
		{"soon", 0, 50 * time.Millisecond},
		{"-2", 2, 150 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := retryDelay(tc.header, tc.attempt); got != tc.want {
			t.Errorf("retryDelay(%q, %d) = %v, want %v", tc.header, tc.attempt, got, tc.want)
		}
	}
}

// TestLoadgenRetriesBackpressure: a server that bounces every first
// attempt with 429 + Retry-After sees the generator resubmit within
// its budget — every job retries exactly once, completes on the second
// try, and nothing is filed as rejected.
func TestLoadgenRetriesBackpressure(t *testing.T) {
	var submits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "admission queue full", http.StatusTooManyRequests)
			return
		}
		_ = json.NewEncoder(w).Encode(Result{Status: "ok"})
	}))
	t.Cleanup(ts.Close)
	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Target:      ts.URL,
		Mode:        "closed",
		Concurrency: 1,
		Duration:    5 * time.Second,
		Jobs:        10,
		Apps:        []string{"Tangent"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried != 10 || rep.Completed != 10 || rep.Rejected429 != 0 {
		t.Fatalf("want 10 retried / 10 completed / 0 rejected, got %+v", rep)
	}
}

// TestLoadgenRetryBudgetExhausts: a server that always bounces burns
// the full budget (maxAttempts-1 retries per job) and files the final
// 429 as rejected.
func TestLoadgenRetryBudgetExhausts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "admission queue full", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Target:      ts.URL,
		Mode:        "closed",
		Concurrency: 1,
		Duration:    5 * time.Second,
		Jobs:        4,
		Apps:        []string{"Tangent"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRetried := 4 * (loadgenMaxAttempts - 1)
	if rep.Retried != wantRetried || rep.Rejected429 != 4 || rep.Completed != 0 {
		t.Fatalf("want %d retried / 4 rejected / 0 completed, got %+v", wantRetried, rep)
	}
}

// TestLoadgenRejectsBadConfig: mode and target validation fail fast.
func TestLoadgenRejectsBadConfig(t *testing.T) {
	if _, err := RunLoadgen(context.Background(), LoadgenConfig{Target: "http://x", Mode: "sideways"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := RunLoadgen(context.Background(), LoadgenConfig{}); err == nil {
		t.Fatal("missing target accepted")
	}
}
