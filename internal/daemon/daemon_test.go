package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"duet/internal/sim"
	"duet/internal/workload"
)

// newTestServer builds a model-backend server on a fake clock. The
// returned server only advances simulated time on Tick/Submit/Lookup
// calls, so every test below is deterministic — no sleeps, no races.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *FakeClock) {
	t.Helper()
	clock := &FakeClock{}
	cfg := Config{Backend: workload.BackendModel, EFPGAs: 1, Clock: clock}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func postJob(t *testing.T, url string, req JobRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRoundTrip: async admit → pending → advance the clock → completed,
// with sane simulated latencies — the whole ingest path over real HTTP.
func TestRoundTrip(t *testing.T) {
	s, clock := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 64, Tenant: "alpha", Wait: false})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	acc := decodeJSON[map[string]any](t, resp)
	id := uint64(acc["id"].(float64))

	get := func() Result {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup status %d, want 200", resp.StatusCode)
		}
		return decodeJSON[Result](t, resp)
	}
	if res := get(); res.Status != "pending" {
		t.Fatalf("before any clock advance: status %q, want pending", res.Status)
	}

	clock.Advance(time.Second)
	s.Tick()
	res := get()
	if res.Status != "ok" {
		t.Fatalf("after advance: status %q (%s), want ok", res.Status, res.Error)
	}
	if res.Tenant != "alpha" || res.App != "Tangent" {
		t.Fatalf("result lost identity: %+v", res)
	}
	if res.SojournUS <= 0 || res.ServiceUS <= 0 || res.SojournUS < res.ServiceUS {
		t.Fatalf("implausible latencies: %+v", res)
	}

	// Unknown ids are 404, bad ids 400.
	if resp, _ := http.Get(ts.URL + "/v1/jobs/999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/zzz"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d, want 400", resp.StatusCode)
	}
}

// TestSyncWait: a wait=true submission blocks until the simulated
// timeline reaches the job's finish, then delivers the final Result.
func TestSyncWait(t *testing.T) {
	s, clock := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan Result, 1)
	go func() {
		resp := postJob(t, ts.URL, JobRequest{App: "Popcount", InputSize: 32, Wait: true})
		done <- decodeJSON[Result](t, resp)
	}()

	// The job cannot finish while the clock stands still: keep nudging
	// the clock so that, once the submission lands, the next Tick
	// retires it and unblocks the waiter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case res := <-done:
			if res.Status != "ok" {
				t.Fatalf("sync result %+v", res)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("sync submission never completed")
		}
		clock.Advance(10 * time.Millisecond)
		s.Tick()
		time.Sleep(time.Millisecond)
	}
}

// TestQueueFull: with one worker and a 2-deep queue, the 4th concurrent
// submission bounces with 429 and a Retry-After hint, and the reject
// shows up in the telemetry counters.
func TestQueueFull(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.QueueCap = 2
		c.MaxOutstanding = 100
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No clock advance between submissions: the first occupies the lone
	// worker, the next two fill the queue.
	for i := 0; i < 3; i++ {
		resp := postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 8, Wait: false})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 8, Wait: false})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without a usable Retry-After (%q)", ra)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "duetsim_rejects_total 1\n") {
		t.Fatalf("queue bounce missing from metrics:\n%s", buf.String())
	}
}

// TestOverload: the outstanding-job bound turns submissions away with
// 503 before the scheduler sees them.
func TestOverload(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.QueueCap = 64
		c.MaxOutstanding = 2
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp := postJob(t, ts.URL, JobRequest{App: "BFS", InputSize: 8, Wait: false})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postJob(t, ts.URL, JobRequest{App: "BFS", InputSize: 8, Wait: false})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-bound submission: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestUnknownApp: submission failures surface as 400 with the
// scheduler's error, and count as failures, not completions.
func TestUnknownApp(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, JobRequest{App: "nope", Wait: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown app: status %d, want 400", resp.StatusCode)
	}
	body := decodeJSON[map[string]string](t, resp)
	if !strings.Contains(body["error"], "unknown app") {
		t.Fatalf("unknown app error %q", body["error"])
	}
	if st := s.Stats(); st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("stats after failed submit: %+v", st)
	}
}

// TestGracefulDrain: Drain retires every admitted job (sync waiters
// included), refuses new work with 503, and lands the telemetry horizon
// on the end of the drained timeline.
func TestGracefulDrain(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.QueueCap = 64 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []uint64
	for i := 0; i < 8; i++ {
		resp := postJob(t, ts.URL, JobRequest{App: "Dijkstra", InputSize: 16, Wait: false})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, resp.StatusCode)
		}
		acc := decodeJSON[map[string]any](t, resp)
		ids = append(ids, uint64(acc["id"].(float64)))
	}
	syncDone := make(chan Result, 1)
	go func() {
		resp := postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 8, Wait: true})
		syncDone <- decodeJSON[Result](t, resp)
	}()
	// Ensure the sync submission is in before draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		_ = s.WriteMetrics(&buf)
		if strings.Contains(buf.String(), "duetsim_arrivals_total 9\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sync submission never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	s.Drain()
	for _, id := range ids {
		res, ok := s.Lookup(id)
		if !ok || res.Status != "ok" {
			t.Fatalf("job %d after drain: ok=%v res=%+v", id, ok, res)
		}
	}
	select {
	case res := <-syncDone:
		if res.Status != "ok" {
			t.Fatalf("sync waiter after drain: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync waiter did not unblock on drain")
	}
	resp := postJob(t, ts.URL, JobRequest{App: "Tangent", Wait: false})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission: status %d, want 503", resp.StatusCode)
	}
	if st := s.Stats(); st.Completed != 9 {
		t.Fatalf("completed %d after drain, want 9", st.Completed)
	}
}

// TestMetricsScrape: a fixed fake-clock scenario yields a deterministic
// exposition — the counter and gauge lines match exactly, and two
// scrapes at the same instant are byte-identical.
func TestMetricsScrape(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) { c.WindowWidth = 250 * sim.MS })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := postJob(t, ts.URL, JobRequest{App: "Popcount", InputSize: 64, Wait: false})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
		clock.Advance(250 * time.Millisecond)
		s.Tick()
	}
	clock.Advance(250 * time.Millisecond)
	s.Tick()

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics content type %q", ct)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	got := scrape()
	for _, want := range []string{
		"duetsim_arrivals_total 3\n",
		"duetsim_completions_total 3\n",
		"duetsim_failures_total 0\n",
		"duetsim_rejects_total 0\n",
		"duetsim_spills_total 0\n",
		"duetsim_horizon_seconds 1\n", // 4 x 250ms wall at timescale 1
		"duetsim_windows 4\n",
		"duetsim_admitted_total 3\n",
		"duetsim_outstanding_jobs 0\n",
		"duetsim_queue_len 0\n",
		"duetsim_draining 0\n",
		`duetsim_window_sojourn_seconds{quantile="0.5"}`,
		`duetsim_worker_busy_seconds_total{worker="0",kind="model"}`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("metrics missing %q:\n%s", want, got)
		}
	}
	if again := scrape(); again != got {
		t.Fatalf("scrape not deterministic at a fixed instant:\n--- first ---\n%s--- second ---\n%s", got, again)
	}
}

// TestTimescale: the clock bridge multiplies wall time by the timescale
// — 2x means one wall second covers two simulated seconds of windows.
func TestTimescale(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) {
		c.Timescale = 2
		c.WindowWidth = 250 * sim.MS
	})
	clock.Advance(time.Second)
	s.Tick()
	rows := s.Series()
	if len(rows) == 0 {
		t.Fatal("no windows after advancing the clock")
	}
	if end := rows[len(rows)-1].End; end != 2000*sim.MS {
		t.Fatalf("horizon after 1s wall at 2x = %v, want 2s simulated", end)
	}
}

// TestDrainIdempotent: draining an idle server twice is safe.
func TestDrainIdempotent(t *testing.T) {
	s, _ := newTestServer(t, nil)
	s.Drain()
	s.Drain()
	if !s.Draining() {
		t.Fatal("server not draining after Drain")
	}
}

// BenchmarkDaemonSubmit measures the ingest path alone (admission,
// bookkeeping, scheduler submit) with a fake clock — the per-request
// overhead the daemon adds over batch serve's direct Submit loop.
func BenchmarkDaemonSubmit(b *testing.B) {
	clock := &FakeClock{}
	s, err := NewServer(Config{
		Backend: workload.BackendModel, EFPGAs: 2, Clock: clock,
		MaxOutstanding: 1 << 30, QueueCap: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock.Advance(25 * time.Microsecond)
		out := s.Submit(JobRequest{App: "Tangent", InputSize: 64})
		if out.Code != Admitted {
			b.Fatalf("submission %d: code %d", i, out.Code)
		}
	}
}
