package daemon

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"duet/internal/faults"
	"duet/internal/sched"
	"duet/internal/sim"
)

func getHealth(t *testing.T, url string) (int, Health) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	code := resp.StatusCode
	return code, decodeJSON[Health](t, resp)
}

// TestHealthzHealthy: a fault-free server reports the full pool healthy
// with zero fault counters — the readiness baseline.
func TestHealthzHealthy(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", code)
	}
	want := Health{Status: "healthy", Workers: 1, HealthyWorkers: 1}
	if h != want {
		t.Fatalf("healthz payload %+v, want %+v", h, want)
	}
}

// TestHealthzDegradesOnWedge is the fault e2e on a fake clock: a
// certain-wedge plan quarantines fabric after fabric as jobs arrive, the
// payload walks healthy → degraded → down, a fully degraded pool turns
// submissions and readiness into 503s, and /metrics carries the fault
// counters the whole way.
func TestHealthzDegradesOnWedge(t *testing.T) {
	s, clock := newTestServer(t, func(cfg *Config) {
		cfg.EFPGAs = 2
		// Every reprogram wedges; no retry budget, so each victim fails
		// after quarantining its fabric.
		cfg.Faults = &faults.Plan{Seed: 1, WedgeProb: 1}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, h := getHealth(t, ts.URL); code != http.StatusOK || h.Status != "healthy" {
		t.Fatalf("fresh pool: healthz %d %+v, want 200 healthy", code, h)
	}

	// First job: its reprogram wedges fabric 0 (detection charges 50µs of
	// simulated time, so advance well past it).
	resp := postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 64, Wait: false})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	clock.Advance(time.Second)
	s.Tick()

	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("degraded healthz status %d, want 200", code)
	}
	want := Health{Status: "degraded", Workers: 2, HealthyWorkers: 1, WedgedFabrics: 1}
	if h != want {
		t.Fatalf("after first wedge: %+v, want %+v", h, want)
	}

	// Second job wedges the remaining fabric: fully degraded.
	resp = postJob(t, ts.URL, JobRequest{App: "Popcount", InputSize: 64, Wait: false})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	clock.Advance(time.Second)
	s.Tick()

	code, h = getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("down healthz status %d, want 503", code)
	}
	want = Health{Status: "down", Workers: 2, HealthyWorkers: 0, WedgedFabrics: 2}
	if h != want {
		t.Fatalf("after second wedge: %+v, want %+v", h, want)
	}

	// A fully degraded pool refuses new work with 503 before the
	// scheduler ever sees it.
	resp = postJob(t, ts.URL, JobRequest{App: "BFS", InputSize: 64, Wait: false})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on dead pool status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// The wedges flow into /metrics as fault counters and gauges.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	for _, wantLine := range []string{
		"duetsim_wedges_total 2\n",
		"duetsim_quarantines_total 2\n",
		"duetsim_healthy_workers 0\n",
		"duetsim_wedged_fabrics 2\n",
		"duetsim_shard_down 0\n",
	} {
		if !strings.Contains(got, wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}
}

// TestHealthzRecoversAfterRepair: with a repair delay in the plan,
// quarantine is transient — the payload walks healthy → degraded on the
// wedge, then back to healthy once the repair fires, and /metrics books
// the repair and the repaid quarantine time.
func TestHealthzRecoversAfterRepair(t *testing.T) {
	s, clock := newTestServer(t, func(cfg *Config) {
		cfg.EFPGAs = 2
		// The first reprogram wedges its fabric deterministically; the
		// repair process returns it after ~100ms of simulated time (the
		// probationary reprogram draws a fresh wedge decision, so use a
		// seed whose repair draw survives probation).
		cfg.Faults = &faults.Plan{
			Seed: 1, WedgeProb: 1, WedgeProbs: []float64{1, 0},
			RepairDelay: 100 * sim.MS,
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 64, Wait: false})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	clock.Advance(time.Millisecond)
	s.Tick()

	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK || h.Status != "degraded" || h.WedgedFabrics != 1 {
		t.Fatalf("after wedge: healthz %d %+v, want 200 degraded/1 wedged", code, h)
	}

	// Ride past the repair delay (backoff jitter keeps it under 150ms of
	// simulated time for the first repair): the fabric rejoins on
	// probation and readiness recovers.
	clock.Advance(time.Second)
	s.Tick()
	code, h = getHealth(t, ts.URL)
	if code != http.StatusOK || h.Status != "healthy" || h.WedgedFabrics != 0 {
		t.Fatalf("after repair: healthz %d %+v, want 200 healthy/0 wedged", code, h)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	for _, wantLine := range []string{
		"duetsim_wedges_total 1\n",
		"duetsim_repairs_total 1\n",
		"duetsim_healthy_workers 2\n",
	} {
		if !strings.Contains(got, wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}
	if strings.Contains(got, "duetsim_quarantine_seconds_total 0\n") {
		t.Error("repair repaid no quarantine time")
	}
}

// TestHealthzDownWindow: a scheduled outage window flips readiness to
// down (503) for exactly the window's simulated span, refusing
// submissions inside it, and recovers on rejoin.
func TestHealthzDownWindow(t *testing.T) {
	s, clock := newTestServer(t, func(cfg *Config) {
		// Down for simulated [1s, 2s) — at timescale 1, wall seconds 1..2.
		cfg.Faults = &faults.Plan{
			Seed:      1,
			ShardDown: [][]sched.Downtime{{{From: 1000 * sim.MS, To: 2000 * sim.MS}}},
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, h := getHealth(t, ts.URL); code != http.StatusOK || h.Status != "healthy" {
		t.Fatalf("before window: healthz %d %+v, want 200 healthy", code, h)
	}

	clock.Advance(1500 * time.Millisecond)
	s.Tick()
	code, h := getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable || h.Status != "down" || h.DeadShards != 1 {
		t.Fatalf("inside window: healthz %d %+v, want 503 down/1 dead shard", code, h)
	}
	resp := postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 64, Wait: false})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit inside window status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	clock.Advance(1 * time.Second)
	s.Tick()
	code, h = getHealth(t, ts.URL)
	if code != http.StatusOK || h.Status != "healthy" || h.DeadShards != 0 {
		t.Fatalf("after rejoin: healthz %d %+v, want 200 healthy", code, h)
	}
	resp = postJob(t, ts.URL, JobRequest{App: "Tangent", InputSize: 64, Wait: false})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after rejoin status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHealthzDrainingKeepsShape: draining shows through the readiness
// payload (still 200: the instance answers, it just admits nothing).
func TestHealthzDrainingKeepsShape(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Drain()
	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK || h.Status != "draining" {
		t.Fatalf("draining healthz %d %+v, want 200 draining", code, h)
	}
}
