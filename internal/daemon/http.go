package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/jobs      submit a JobRequest; sync (wait, default) or async
//	GET  /v1/jobs/{id} poll an async job's Result
//	GET  /v1/apps      list the registered application catalog
//	GET  /metrics      Prometheus text exposition (recorder + daemon gauges)
//	GET  /healthz      readiness: healthy/degraded/down/draining plus
//	                   wedged-fabric and dead-shard counts; 503 when down
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/apps", s.handleApps)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// retryAfter renders a Retry-After header value: whole seconds, rounded
// up, at least 1 (zero means "retry immediately" to most clients, which
// defeats the backoff).
func retryAfter(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req := JobRequest{Wait: true} // sync response unless the body opts out
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	out := s.Submit(req)
	switch out.Code {
	case BadRequest:
		httpError(w, http.StatusBadRequest, out.Err.Error())
	case QueueFull:
		w.Header().Set("Retry-After", retryAfter(out.Retry))
		httpError(w, http.StatusTooManyRequests, "admission queue full")
	case Overloaded:
		w.Header().Set("Retry-After", retryAfter(out.Retry))
		httpError(w, http.StatusServiceUnavailable, "overloaded: outstanding-job bound reached")
	case Draining:
		w.Header().Set("Retry-After", retryAfter(out.Retry))
		httpError(w, http.StatusServiceUnavailable, "draining: server is shutting down")
	case Unavailable:
		w.Header().Set("Retry-After", retryAfter(out.Retry))
		httpError(w, http.StatusServiceUnavailable, "unavailable: no healthy worker in the pool")
	case Admitted:
		if !req.Wait {
			writeJSON(w, http.StatusAccepted, map[string]any{"id": out.ID, "status": "pending"})
			return
		}
		select {
		case <-out.Done:
			res, ok := s.Lookup(out.ID)
			if !ok { // evicted between retire and lookup (tiny ResultCap)
				httpError(w, http.StatusInternalServerError, "result evicted before delivery")
				return
			}
			writeJSON(w, http.StatusOK, res)
		case <-r.Context().Done():
			// Client gone; the job still runs to retirement.
		}
	default:
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("unhandled admit code %d", out.Code))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id: "+err.Error())
		return
	}
	res, ok := s.Lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleApps(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"apps": s.Apps()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Status == "down" {
		// Fully degraded: readiness probes must fail the instance.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
