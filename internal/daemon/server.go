package daemon

import (
	"fmt"
	"io"
	"sync"
	"time"

	duet "duet"
	"duet/internal/faults"
	"duet/internal/model"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/telemetry"
	"duet/internal/workload"
)

// Config parameterizes one daemon server. The zero value (with defaults
// applied by NewServer) is a 2-eFPGA analytic-model pool at timescale 1
// — one simulated second per wall second.
type Config struct {
	// Backend selects the execution backend: workload.BackendModel
	// (default, analytic fast path), BackendCycle (full Dolly instance),
	// or BackendHybrid (cycle fabrics + CPU soft-path workers).
	Backend workload.BackendMode

	EFPGAs      int          // fabric workers (default 2)
	SoftCPUs    int          // soft-path workers (hybrid default 1)
	MemHubs     int          // memory hubs per adapter (default 1)
	Policy      sched.Policy // placement policy
	QueueCap    int          // bounded admission queue (default 64)
	CPUSlowdown float64      // soft-path slowdown factor (model default)

	// Timescale is the exchange rate of the clock bridge: simulated
	// seconds advanced per wall-clock second (default 1). Above 1 the
	// simulated service gets faster than real time; below 1, slower —
	// useful to stretch microsecond-scale service into humanly observable
	// latencies.
	Timescale float64

	// WindowWidth is the telemetry flight-recorder window in simulated
	// time (default 250ms). Recorder memory is O(simulated horizon /
	// WindowWidth); at timescale 1 the default costs ~4 windows per wall
	// second.
	WindowWidth sim.Time

	// MaxOutstanding bounds admitted-but-unfinished jobs (default
	// 4*QueueCap). At the bound new submissions get Overloaded (HTTP 503)
	// before they ever reach the scheduler — backpressure for sync
	// waiters the bounded queue alone cannot give, since queued jobs
	// dispatch as soon as a worker frees.
	MaxOutstanding int

	// ResultCap bounds retained finished results for GET /v1/jobs/{id}
	// (default 16384, evicted oldest-first).
	ResultCap int

	// Faults, when non-nil, installs the deterministic fault-injection
	// seam on the daemon's pool (internal/faults): wedge-on-reprogram
	// quarantines, service blowups, retry budgets, deadline enforcement
	// and downtime windows, all in simulated time. The daemon is a
	// single-shard stack, so the plan's shard-0 schedule applies.
	Faults *faults.Plan

	// Clock is the wall-time source (default NewWallClock). Tests inject
	// a *FakeClock here.
	Clock Clock

	// Namespace prefixes every exposed metric (default "duetsim").
	Namespace string
}

// liveTimeline is the seam the daemon drives simulated time through:
// both *model.Events and the cycle engine advance to a target instant
// (running everything due on the way) and drain to quiescence.
type liveTimeline interface {
	sched.Timeline
	RunUntil(sim.Time)
	Drain()
}

// engineTimeline adapts *sim.Engine (whose RunUntil returns an event
// count) to the liveTimeline seam.
type engineTimeline struct{ eng *sim.Engine }

func (t engineTimeline) Now() sim.Time        { return t.eng.Now() }
func (t engineTimeline) RunUntil(at sim.Time) { t.eng.RunUntil(at) }
func (t engineTimeline) Drain()               { t.eng.Run(0) }
func (t engineTimeline) AfterArg(d sim.Time, fn func(any), arg any) {
	t.eng.AfterArg(d, fn, arg)
}

// Server is the live ingest front end. One mutex guards the timeline,
// the scheduler, and the result tables: the simulated timeline only
// advances while it is held, so scheduler callbacks (OnResult, observer
// hooks) always run under it. HTTP handlers are thin shims over the
// exported methods, which are all safe for concurrent use.
type Server struct {
	cfg   Config
	clock Clock

	mu          sync.Mutex
	tl          liveTimeline
	sch         *sched.Scheduler
	rec         *telemetry.Recorder
	byJob       map[*sched.Job]*entry
	byID        map[uint64]*entry
	order       []uint64 // finished ids, oldest first (ResultCap eviction)
	nextID      uint64
	outstanding int
	draining    bool
	admitted    uint64
}

// entry tracks one accepted job from admission to retirement.
type entry struct {
	id     uint64
	app    string
	tenant string
	job    *sched.Job
	done   chan struct{} // closed at retirement, after res is final
	res    Result
}

// JobRequest is the POST /v1/jobs body. Wait selects the response mode:
// true (the decode default) blocks until the job retires and returns its
// Result; false returns 202 with the id for a later GET /v1/jobs/{id}.
type JobRequest struct {
	App        string `json:"app"`
	InputSize  int    `json:"input_size"`
	Priority   int    `json:"priority"`
	DeadlineUS int64  `json:"deadline_us"` // relative to arrival; 0 = none
	Tenant     string `json:"tenant"`
	Wait       bool   `json:"wait"`
}

// Result is a job's externally visible outcome. Times are simulated
// microseconds; Status is "pending", "ok", or "failed".
type Result struct {
	ID           uint64  `json:"id"`
	App          string  `json:"app"`
	Tenant       string  `json:"tenant,omitempty"`
	Status       string  `json:"status"`
	Error        string  `json:"error,omitempty"`
	SubmitUS     float64 `json:"submit_us"`
	WaitUS       float64 `json:"wait_us,omitempty"`
	ServiceUS    float64 `json:"service_us,omitempty"`
	SojournUS    float64 `json:"sojourn_us,omitempty"`
	Worker       int     `json:"worker"`
	Reprogrammed bool    `json:"reprogrammed,omitempty"`
}

// AdmitCode classifies a Submit outcome.
type AdmitCode int

// Submit outcomes.
const (
	// Admitted: the job is queued or running; Done closes at retirement.
	Admitted AdmitCode = iota
	// BadRequest: the scheduler failed the job at submission (unknown
	// app, oversized bitstream); Err carries the cause.
	BadRequest
	// QueueFull: the bounded admission queue bounced the job (HTTP 429).
	QueueFull
	// Overloaded: MaxOutstanding reached (HTTP 503).
	Overloaded
	// Draining: the server is shutting down and admits nothing (HTTP 503).
	Draining
	// Unavailable: the pool is fully degraded — every worker quarantined
	// by wedged reprograms, or the shard is inside a scheduled outage
	// window — and no new job could be placed (HTTP 503).
	Unavailable
)

// SubmitOutcome is Submit's result. Retry is the advisory wall-clock
// backoff for QueueFull/Overloaded/Draining.
type SubmitOutcome struct {
	Code  AdmitCode
	ID    uint64
	Done  <-chan struct{}
	Err   error
	Retry time.Duration
}

// NewServer builds a server over a fresh scheduler pool with the full
// serve catalog registered. Stats aggregation is always streaming: a
// daemon runs indefinitely, so O(jobs) exact ledgers are off the table.
func NewServer(cfg Config) (*Server, error) {
	if cfg.EFPGAs <= 0 {
		cfg.EFPGAs = 2
	}
	if cfg.MemHubs <= 0 {
		cfg.MemHubs = 1
	}
	if cfg.Backend == workload.BackendHybrid && cfg.SoftCPUs <= 0 {
		cfg.SoftCPUs = 1
	}
	if cfg.Timescale <= 0 {
		cfg.Timescale = 1
	}
	if cfg.WindowWidth <= 0 {
		cfg.WindowWidth = 250 * sim.MS
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4 * cfg.QueueCap
	}
	if cfg.ResultCap <= 0 {
		cfg.ResultCap = 16384
	}
	if cfg.Namespace == "" {
		cfg.Namespace = "duetsim"
	}
	if cfg.Clock == nil {
		cfg.Clock = NewWallClock()
	}

	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = faults.NewInjector(cfg.Faults, 0)
	}
	var tl liveTimeline
	var sch *sched.Scheduler
	switch cfg.Backend {
	case workload.BackendModel:
		mcfg := model.Config{
			EFPGAs: cfg.EFPGAs, SoftCPUs: cfg.SoftCPUs, MemHubs: cfg.MemHubs,
			Policy: cfg.Policy, QueueCap: cfg.QueueCap, Stats: sched.StatsStreaming,
			CPUSlowdown: cfg.CPUSlowdown,
		}
		if inj != nil {
			mcfg.Wrap = func(tl model.Timeline, worker int, be sched.Backend) sched.Backend {
				return inj.Wrap(tl, worker, be)
			}
			mcfg.Faults = cfg.Faults.FaultConfig(0)
		}
		rep := model.NewReplica(mcfg)
		sch = rep.Scheduler()
		tl = rep.Events()
	case workload.BackendCycle, workload.BackendHybrid:
		sys := duet.New(duet.Config{
			Cores: 1, MemHubs: cfg.MemHubs, EFPGAs: cfg.EFPGAs, Style: duet.StyleDuet,
		})
		var soft []sched.Backend
		if cfg.Backend == workload.BackendHybrid {
			for i := 0; i < cfg.SoftCPUs; i++ {
				soft = append(soft, model.NewCPU(sys.Eng, fmt.Sprintf("cpu%d", i), cfg.CPUSlowdown))
			}
		}
		scfg := sched.Config{
			Policy: cfg.Policy, QueueCap: cfg.QueueCap, Stats: sched.StatsStreaming,
		}
		var wrap func(worker int, be sched.Backend) sched.Backend
		if inj != nil {
			scfg.Faults = cfg.Faults.FaultConfig(0)
			wrap = func(worker int, be sched.Backend) sched.Backend {
				return inj.Wrap(sys.Eng, worker, be)
			}
		}
		sch = sys.SchedulerWrapped(scfg, wrap, soft...)
		tl = engineTimeline{sys.Eng}
	default:
		return nil, fmt.Errorf("daemon: unknown backend mode %v", cfg.Backend)
	}
	if err := workload.RegisterServeApps(sch); err != nil {
		return nil, err
	}
	rec := telemetry.NewRecorder(cfg.WindowWidth, sch.WorkerKinds())
	sch.SetObserver(rec)
	s := &Server{
		cfg:   cfg,
		clock: cfg.Clock,
		tl:    tl,
		sch:   sch,
		rec:   rec,
		byJob: make(map[*sched.Job]*entry),
		byID:  make(map[uint64]*entry),
	}
	sch.OnResult = s.onResult
	return s, nil
}

// simNow maps the clock's elapsed wall time onto the simulated timeline.
func (s *Server) simNow() sim.Time {
	return sim.Time(float64(s.clock.Elapsed().Nanoseconds()) * s.cfg.Timescale * float64(sim.NS))
}

// advanceLocked runs the simulated timeline up to the clock's current
// instant, retiring everything due on the way, and extends the telemetry
// horizon so idle wall time shows up as idle windows. Callers hold s.mu.
func (s *Server) advanceLocked() {
	if t := s.simNow(); t > s.tl.Now() {
		s.tl.RunUntil(t)
	}
	s.rec.ExtendHorizon(s.tl.Now())
}

// onResult is the scheduler's OnResult hook. The timeline only advances
// under s.mu, so it always runs with the lock held.
func (s *Server) onResult(j *sched.Job) {
	e, ok := s.byJob[j]
	if !ok {
		return
	}
	delete(s.byJob, j)
	s.outstanding--
	e.res = Result{
		ID:       e.id,
		App:      e.app,
		Tenant:   e.tenant,
		Status:   "ok",
		SubmitUS: float64(j.Submit) / float64(sim.US),
		Worker:   j.Fabric,
	}
	if j.Err != nil {
		e.res.Status = "failed"
		e.res.Error = j.Err.Error()
	} else {
		e.res.WaitUS = float64(j.Wait()) / float64(sim.US)
		e.res.ServiceUS = float64(j.Service()) / float64(sim.US)
		e.res.SojournUS = float64(j.Sojourn()) / float64(sim.US)
		e.res.Reprogrammed = j.Reprogrammed
	}
	close(e.done)
	s.order = append(s.order, e.id)
	if n := len(s.order) - s.cfg.ResultCap; n > 0 {
		for _, id := range s.order[:n] {
			delete(s.byID, id)
		}
		s.order = s.order[n:]
	}
}

// Submit offers a job at the clock's current instant. The admission
// ladder: draining and overload are checked before the scheduler ever
// sees the job; then the scheduler itself fails it (BadRequest) or
// bounces it off the bounded queue (QueueFull).
func (s *Server) Submit(req JobRequest) SubmitOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	if s.draining {
		return SubmitOutcome{Code: Draining, Retry: time.Second}
	}
	if s.outstanding >= s.cfg.MaxOutstanding {
		return SubmitOutcome{Code: Overloaded, Retry: s.retryLocked()}
	}
	if s.sch.HealthyWorkers() == 0 || s.sch.DownAt(s.tl.Now()) {
		return SubmitOutcome{Code: Unavailable, Retry: time.Second}
	}
	j := &sched.Job{App: req.App, InputSize: req.InputSize, Priority: req.Priority}
	if req.DeadlineUS > 0 {
		j.Deadline = s.tl.Now() + sim.Time(req.DeadlineUS)*sim.US
	}
	s.nextID++
	e := &entry{id: s.nextID, app: req.App, tenant: req.Tenant, job: j, done: make(chan struct{})}
	s.byJob[j] = e
	s.byID[e.id] = e
	s.outstanding++
	if !s.sch.Submit(j) {
		if j.Err != nil {
			// Failed at submission: the synchronous retire already ran
			// onResult, so the entry is finalized and queryable.
			return SubmitOutcome{Code: BadRequest, ID: e.id, Done: e.done, Err: j.Err}
		}
		// Queue bounce: the scheduler never retires rejected jobs, so
		// unwind the registration here.
		delete(s.byJob, j)
		delete(s.byID, e.id)
		s.outstanding--
		return SubmitOutcome{Code: QueueFull, Retry: s.retryLocked()}
	}
	s.admitted++
	return SubmitOutcome{Code: Admitted, ID: e.id, Done: e.done}
}

// retryLocked estimates the wall-clock wait until the backlog clears
// enough to retry: queue depth (+1 for the caller) served at the mean
// observed service time across the pool, converted through the
// timescale. Before any completion it assumes a generic 100µs service.
func (s *Server) retryLocked() time.Duration {
	mean := s.sch.Stats().MeanService
	if mean <= 0 {
		mean = 100 * sim.US
	}
	workers := s.sch.Workers()
	if workers < 1 {
		workers = 1
	}
	simWait := mean * sim.Time(s.sch.QueueLen()+1) / sim.Time(workers)
	return time.Duration(simWait.Seconds() / s.cfg.Timescale * float64(time.Second))
}

// Tick advances the simulated timeline to the clock's current instant.
// The daemon's ticker goroutine calls it continuously in wall-clock
// mode; fake-clock tests call it after each Advance.
func (s *Server) Tick() {
	s.mu.Lock()
	s.advanceLocked()
	s.mu.Unlock()
}

// RunTicker calls Tick every interval until stop is closed — the
// heartbeat that retires jobs even when no requests arrive. It blocks;
// run it in a goroutine.
func (s *Server) RunTicker(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.Tick()
		}
	}
}

// Drain stops admitting (new submissions get Draining) and fast-forwards
// the simulated timeline to quiescence, retiring every queued and
// in-flight job — deterministic graceful shutdown: nothing admitted is
// ever dropped, sync waiters all unblock, and the flight recorder's
// horizon lands exactly on the last retirement.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	s.advanceLocked()
	s.tl.Drain()
	s.rec.ExtendHorizon(s.tl.Now())
}

// Health is the /healthz readiness payload: the pool's degradation
// state under the fault model. Status is "healthy", "degraded" (some
// fabric quarantined but service continues), "down" (no healthy worker,
// or the shard is inside a scheduled outage window), or "draining".
type Health struct {
	Status         string `json:"status"`
	Workers        int    `json:"workers"`
	HealthyWorkers int    `json:"healthy_workers"`
	WedgedFabrics  int    `json:"wedged_fabrics"`
	DeadShards     int    `json:"dead_shards"`
}

// Health snapshots the readiness state at the clock's current instant.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	h := Health{
		Workers:        s.sch.Workers(),
		HealthyWorkers: s.sch.HealthyWorkers(),
		WedgedFabrics:  s.sch.QuarantinedWorkers(),
	}
	if s.sch.DownAt(s.tl.Now()) {
		h.DeadShards = 1
	}
	switch {
	case h.HealthyWorkers == 0 || h.DeadShards > 0:
		h.Status = "down"
	case s.draining:
		h.Status = "draining"
	case h.WedgedFabrics > 0:
		h.Status = "degraded"
	default:
		h.Status = "healthy"
	}
	return h
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Lookup reports the result of job id: ok is false for unknown (or
// evicted) ids; a not-yet-retired job comes back with Status "pending".
func (s *Server) Lookup(id uint64) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	e, ok := s.byID[id]
	if !ok {
		return Result{}, false
	}
	select {
	case <-e.done:
		return e.res, true
	default:
		return Result{
			ID: e.id, App: e.app, Tenant: e.tenant, Status: "pending",
			SubmitUS: float64(e.job.Submit) / float64(sim.US),
		}, true
	}
}

// Apps lists the registered application catalog.
func (s *Server) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sch.Apps()
}

// Stats snapshots the scheduler's aggregate statistics (streaming mode:
// O(1) to read).
func (s *Server) Stats() sched.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	return s.sch.Stats()
}

// Series snapshots the telemetry window series.
func (s *Server) Series() []telemetry.WindowRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	return s.rec.Series()
}

// WriteMetrics writes the Prometheus exposition: the flight recorder's
// metrics followed by the daemon's own admission gauges. Handlers write
// into a buffer so the lock is never held across a slow client.
func (s *Server) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	if err := telemetry.WriteProm(w, s.cfg.Namespace, s.rec); err != nil {
		return err
	}
	ns := s.cfg.Namespace
	gauges := []struct {
		name, help string
		value      int64
	}{
		{"admitted_total", "Jobs admitted past the daemon's ingress checks.", int64(s.admitted)},
		{"outstanding_jobs", "Admitted jobs not yet retired.", int64(s.outstanding)},
		{"queue_len", "Current admission-queue depth.", int64(s.sch.QueueLen())},
		{"draining", "1 while the server is draining for shutdown.", b2i(s.draining)},
		{"healthy_workers", "Workers still accepting placements.", int64(s.sch.HealthyWorkers())},
		{"wedged_fabrics", "Fabrics quarantined by wedged reprograms.", int64(s.sch.QuarantinedWorkers())},
		{"shard_down", "1 while the pool is inside a scheduled outage window.", b2i(s.sch.DownAt(s.tl.Now()))},
	}
	for _, g := range gauges {
		typ := "gauge"
		if g.name == "admitted_total" {
			typ = "counter"
		}
		name := ns + "_" + g.name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			name, g.help, name, typ, name, g.value); err != nil {
			return err
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
