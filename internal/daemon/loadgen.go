package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TenantShare is one slice of the loadgen's tenant mix.
type TenantShare struct {
	Name   string
	Weight int
}

// ParseTenants parses a tenant-mix spec like "alpha:3,beta:1" (weights
// default to 1 when omitted, as in "alpha,beta").
func ParseTenants(spec string) ([]TenantShare, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []TenantShare
	for _, part := range strings.Split(spec, ",") {
		name, ws, hasW := strings.Cut(strings.TrimSpace(part), ":")
		if name == "" {
			return nil, fmt.Errorf("daemon: empty tenant name in %q", spec)
		}
		w := 1
		if hasW {
			v, err := strconv.Atoi(ws)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("daemon: bad tenant weight %q in %q", ws, spec)
			}
			w = v
		}
		out = append(out, TenantShare{Name: name, Weight: w})
	}
	return out, nil
}

// LoadgenConfig parameterizes one load-generation run against a daemon.
type LoadgenConfig struct {
	Target string // base URL, e.g. "http://localhost:8080"

	// Mode: "closed" (default) keeps Concurrency workers in lockstep —
	// each submits, waits for the sync response, submits again — so
	// offered load adapts to service speed. "open" submits on an
	// exponential-gap arrival process at RateHz regardless of completions
	// (in-flight bounded at Concurrency), so overload and backpressure
	// actually show.
	Mode        string
	Concurrency int           // closed: worker count; open: in-flight cap (default 8)
	RateHz      float64       // open-loop arrival rate (default 200)
	Duration    time.Duration // run length (default 5s)
	Jobs        int           // optional total submission cap; 0 = Duration only

	Apps      []string      // app mix, uniform; empty = fetch the daemon's catalog
	InputSize int           // per-job input size (default 64)
	Tenants   []TenantShare // weighted tenant mix; empty = single "loadgen" tenant
	Seed      int64         // app/tenant/gap randomness seed (default 1)
	Timeout   time.Duration // per-request client timeout (default 30s)
}

// LoadgenReport is a run's final tally. Latencies are wall-clock,
// measured around the whole sync HTTP round trip, over 200 responses.
type LoadgenReport struct {
	Mode    string        `json:"mode"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Sent           int `json:"sent"`
	Completed      int `json:"completed"`
	Failed         int `json:"failed"`
	Rejected429    int `json:"rejected_429"`
	Unavailable503 int `json:"unavailable_503"`
	OtherErrors    int `json:"other_errors"`
	// Retried counts backpressure retries: 429/503 responses whose
	// Retry-After hint the generator honored before resubmitting. The
	// 429/503 tallies above count only submissions that stayed rejected
	// after the retry budget.
	Retried int `json:"retried"`

	ThroughputHz float64       `json:"throughput_hz"`
	WallMean     time.Duration `json:"wall_mean_ns"`
	WallP50      time.Duration `json:"wall_p50_ns"`
	WallP95      time.Duration `json:"wall_p95_ns"`
	WallP99      time.Duration `json:"wall_p99_ns"`
}

// loadgen is one run's shared state; counters and the rng are guarded by
// mu (workers touch them between requests, never during).
type loadgen struct {
	cfg    LoadgenConfig
	client *http.Client

	mu  sync.Mutex
	rng *rand.Rand
	lat []time.Duration
	rep LoadgenReport
}

// RunLoadgen drives a daemon at cfg's load until Duration (or the Jobs
// cap, or ctx cancellation) and reports the tally. The report reflects
// every request that completed, including those cut off mid-flight by
// the deadline.
func RunLoadgen(ctx context.Context, cfg LoadgenConfig) (LoadgenReport, error) {
	if cfg.Target == "" {
		return LoadgenReport{}, fmt.Errorf("daemon: loadgen needs a target URL")
	}
	if cfg.Mode == "" {
		cfg.Mode = "closed"
	}
	if cfg.Mode != "closed" && cfg.Mode != "open" {
		return LoadgenReport{}, fmt.Errorf("daemon: unknown loadgen mode %q (want closed or open)", cfg.Mode)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.RateHz <= 0 {
		cfg.RateHz = 200
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.InputSize <= 0 {
		cfg.InputSize = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []TenantShare{{Name: "loadgen", Weight: 1}}
	}
	g := &loadgen{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if len(g.cfg.Apps) == 0 {
		apps, err := g.fetchApps(ctx)
		if err != nil {
			return LoadgenReport{}, err
		}
		g.cfg.Apps = apps
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	if cfg.Mode == "closed" {
		g.runClosed(ctx)
	} else {
		g.runOpen(ctx)
	}
	g.rep.Mode = cfg.Mode
	g.rep.Elapsed = time.Since(start)
	g.finish()
	return g.rep, nil
}

// fetchApps pulls the daemon's catalog so the default mix matches
// whatever the server actually serves.
func (g *loadgen) fetchApps(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.cfg.Target+"/v1/apps", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("daemon: fetching app catalog: %w", err)
	}
	defer resp.Body.Close()
	var body struct {
		Apps []string `json:"apps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("daemon: decoding app catalog: %w", err)
	}
	if len(body.Apps) == 0 {
		return nil, fmt.Errorf("daemon: target serves no apps")
	}
	return body.Apps, nil
}

// take claims one submission slot against the Jobs cap.
func (g *loadgen) take() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.Jobs > 0 && g.rep.Sent >= g.cfg.Jobs {
		return false
	}
	g.rep.Sent++
	return true
}

// pick draws the next request's app and tenant from the seeded mix.
func (g *loadgen) pick() (app, tenant string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	app = g.cfg.Apps[g.rng.Intn(len(g.cfg.Apps))]
	total := 0
	for _, t := range g.cfg.Tenants {
		total += t.Weight
	}
	n := g.rng.Intn(total)
	for _, t := range g.cfg.Tenants {
		if n -= t.Weight; n < 0 {
			return app, t.Name
		}
	}
	return app, g.cfg.Tenants[0].Name
}

// expGap draws the next open-loop inter-arrival gap.
func (g *loadgen) expGap() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return time.Duration(g.rng.ExpFloat64() / g.cfg.RateHz * float64(time.Second))
}

// runClosed keeps Concurrency sequential submitters busy until the
// deadline or the Jobs cap.
func (g *loadgen) runClosed(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil && g.take() {
				g.submit(ctx)
			}
		}()
	}
	wg.Wait()
}

// runOpen paces submissions at RateHz with exponential gaps, spawning
// each into a goroutine bounded by the Concurrency in-flight cap (a full
// cap delays arrivals — the generator degrades to partly closed rather
// than growing unbounded goroutines).
func (g *loadgen) runOpen(ctx context.Context) {
	var wg sync.WaitGroup
	slots := make(chan struct{}, g.cfg.Concurrency)
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
	for {
		timer.Reset(g.expGap())
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-timer.C:
		}
		if !g.take() {
			wg.Wait()
			return
		}
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			g.untake()
			wg.Wait()
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			g.submit(ctx)
		}()
	}
}

// untake returns an unused submission slot (arrival cancelled before
// its request went out).
func (g *loadgen) untake() {
	g.mu.Lock()
	g.rep.Sent--
	g.mu.Unlock()
}

// Backpressure-retry budget: a 429/503 response is resubmitted up to
// loadgenMaxAttempts total tries, honoring the server's Retry-After
// hint capped at loadgenRetryCap (so a pathological hint can't stall a
// worker for the whole run).
const (
	loadgenMaxAttempts = 3
	loadgenRetryCap    = 2 * time.Second
)

// retryDelay turns a 429/503 response's Retry-After header into a
// bounded wait. Missing or malformed headers fall back to a
// deterministic per-attempt ramp (50ms, 100ms, ...), so behavior does
// not depend on server cooperation.
func retryDelay(header string, attempt int) time.Duration {
	if sec, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && sec >= 0 {
		return min(time.Duration(sec)*time.Second, loadgenRetryCap)
	}
	return min(time.Duration(attempt+1)*50*time.Millisecond, loadgenRetryCap)
}

// submit performs one sync job submission — retrying bounced (429/503)
// attempts per the Retry-After hint — and files the final outcome.
func (g *loadgen) submit(ctx context.Context) {
	app, tenant := g.pick()
	body, _ := json.Marshal(JobRequest{App: app, InputSize: g.cfg.InputSize, Tenant: tenant, Wait: true})
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.cfg.Target+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			g.file(0, 0, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		start := time.Now()
		resp, err := g.client.Do(req)
		if err != nil {
			g.file(0, 0, err)
			return
		}
		var res Result
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&res)
		} else {
			_, _ = io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && err != nil {
			g.file(resp.StatusCode, 0, err)
			return
		}
		elapsed := time.Since(start)
		if resp.StatusCode == http.StatusOK && res.Status == "failed" {
			g.mu.Lock()
			g.rep.Failed++
			g.mu.Unlock()
			return
		}
		backpressured := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !backpressured || attempt+1 >= loadgenMaxAttempts {
			g.file(resp.StatusCode, elapsed, nil)
			return
		}
		g.mu.Lock()
		g.rep.Retried++
		g.mu.Unlock()
		t := time.NewTimer(retryDelay(resp.Header.Get("Retry-After"), attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			g.file(0, 0, ctx.Err())
			return
		case <-t.C:
		}
	}
}

// file classifies one finished request into the report.
func (g *loadgen) file(status int, elapsed time.Duration, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case err != nil:
		// Deadline-cancelled requests at the end of the run are part of
		// normal shutdown, not errors.
		if isCancelled(err) {
			g.rep.Sent--
			return
		}
		g.rep.OtherErrors++
	case status == http.StatusOK:
		g.rep.Completed++
		g.lat = append(g.lat, elapsed)
	case status == http.StatusTooManyRequests:
		g.rep.Rejected429++
	case status == http.StatusServiceUnavailable:
		g.rep.Unavailable503++
	default:
		g.rep.OtherErrors++
	}
}

// isCancelled reports whether err is a context cancellation/deadline
// surfacing through the HTTP client.
func isCancelled(err error) bool {
	s := err.Error()
	return strings.Contains(s, context.Canceled.Error()) ||
		strings.Contains(s, context.DeadlineExceeded.Error())
}

// finish computes the latency aggregates.
func (g *loadgen) finish() {
	if len(g.lat) == 0 {
		return
	}
	sort.Slice(g.lat, func(i, j int) bool { return g.lat[i] < g.lat[j] })
	var sum time.Duration
	for _, d := range g.lat {
		sum += d
	}
	g.rep.WallMean = sum / time.Duration(len(g.lat))
	g.rep.WallP50 = latPercentile(g.lat, 50)
	g.rep.WallP95 = latPercentile(g.lat, 95)
	g.rep.WallP99 = latPercentile(g.lat, 99)
	if s := g.rep.Elapsed.Seconds(); s > 0 {
		g.rep.ThroughputHz = float64(g.rep.Completed) / s
	}
}

// latPercentile is the nearest-rank percentile of a sorted sample.
func latPercentile(sorted []time.Duration, p float64) time.Duration {
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
