// Package daemon is the live HTTP front door over the serving
// simulator: it accepts real concurrent requests, maps their wall-clock
// arrival instants onto the simulated timeline through a monotonic
// clock bridge, pushes them through the real sched.Scheduler (cycle,
// model, or hybrid backend — the same admission queue and placement
// policies every batch study runs), and reports per-job outcomes and
// Prometheus metrics fed from the telemetry flight recorder.
//
// The simulated timeline only ever advances under the server's lock, at
// instants derived from the Clock — so with a FakeClock the whole
// daemon, scheduler included, is deterministic, and the e2e tests replay
// exact schedules without sleeping.
package daemon

import (
	"sync"
	"time"
)

// Clock is the daemon's monotonic wall-time source: Elapsed reports the
// time since the clock started, and must never go backwards. The server
// multiplies it by the configured timescale to get the simulated "now"
// that arrivals are stamped with.
type Clock interface {
	Elapsed() time.Duration
}

// wallClock reads the process monotonic clock.
type wallClock struct{ start time.Time }

// NewWallClock returns a Clock anchored at the current instant. Go's
// time.Time carries a monotonic reading, so Elapsed is immune to
// wall-clock steps (NTP, suspend/resume adjustments).
func NewWallClock() Clock { return wallClock{start: time.Now()} }

func (c wallClock) Elapsed() time.Duration { return time.Since(c.start) }

// FakeClock is a manually advanced Clock for deterministic tests: time
// stands still until Advance is called. The zero FakeClock starts at
// elapsed zero and is ready to use.
type FakeClock struct {
	mu sync.Mutex
	d  time.Duration
}

// Elapsed reports the accumulated advanced time.
func (c *FakeClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.d
}

// Advance moves the clock forward by d (monotonic: d must be
// non-negative). It only moves the clock — callers pair it with
// Server.Tick to run the simulated timeline up to the new instant.
func (c *FakeClock) Advance(d time.Duration) {
	if d < 0 {
		panic("daemon: FakeClock cannot go backwards")
	}
	c.mu.Lock()
	c.d += d
	c.mu.Unlock()
}
