// Package params centralizes the timing and geometry constants of the
// simulated Dolly platform (paper §IV-V). Values are chosen to match the
// published configuration where the paper states it (clock frequencies,
// cache sizes, line size, synchronizer depth) and calibrated to land the
// paper's measured communication latencies where it does not (per-stage
// pipeline costs).
package params

import "duet/internal/sim"

// Clock configuration (paper §V-A: cores and cache system at 1 GHz).
const (
	// CPUClockPS is the fast (processor/NoC/cache) clock period.
	CPUClockPS sim.Time = 1000 // 1 GHz
)

// Cache geometry (paper §IV).
const (
	LineBytes = 16 // P-Mesh cacheline size; also NoC flit payload width

	L1DBytes = 8 * 1024
	L1DWays  = 4

	L2Bytes = 8 * 1024
	L2Ways  = 4

	L3ShardBytes = 64 * 1024
	L3Ways       = 4

	// L2MSHRs bounds in-flight misses per private cache; it also caps the
	// Proxy Cache's concurrent memory requests (paper §V-C: the bandwidth
	// upper bound is set by the NoC and "the number of concurrent,
	// in-flight memory requests supported by the Proxy Cache").
	L2MSHRs = 4
)

// Core timing (Ariane: 6-stage, single-issue, in-order).
const (
	L1HitCycles   = 1
	L2HitCycles   = 4 // L1 miss, L2 tag+data, return
	L2MissIssue   = 2 // L2 lookup + request formation
	L2FillCycles  = 2 // fill + forward to core
	StoreL2Cycles = 4 // write-through L1 -> L2 store commit (hit)
)

// Home / L3 shard timing.
const (
	DirLookupCycles = 3
	L3DataCycles    = 2
	HomeRespCycles  = 1
	DRAMLatency     = 90 * sim.NS
)

// NoC timing (2D mesh, XY routing, 16-byte links).
const (
	RouterCycles = 2 // per-hop router pipeline
	LinkCycles   = 1 // per-hop wire traversal
	EjectCycles  = 1 // network interface ejection
	FlitBytes    = LineBytes
)

// Clock-domain crossing (paper §IV: dual-clock RAMs with Gray-coded,
// 2-stage synchronizers).
const (
	SyncStages = 2
	FifoDepth  = 8
)

// Duet Adapter timing (fast domain).
const (
	HubIngressCycles = 1 // eFPGA request pickup -> proxy cache front-end
	HubEgressCycles  = 1 // proxy response -> FPGA-bound FIFO push
	ProxyFwdCycles   = 3 // fwd/inv handling inside the proxy cache
	CtrlHubDecode    = 1 // MMIO decode at the control hub
	ShadowRegCycles  = 2 // shadow register access (fast domain)
	TLBLookupCycles  = 1
)

// Slow-domain (eFPGA-emulated) logic costs, in slow-clock cycles. The
// paper argues platform-protocol soft caches need "sophisticated control
// logic ... higher access latency" (§II-C); the slow-cache baseline pays
// these per-message protocol processing costs in the slow domain.
const (
	SoftRegCycles        = 4 // soft register read/write handling in the fabric
	SoftCacheHitCycles   = 2 // soft cache tag+data access
	SlowCacheTagCycles   = 2 // slow-cache (baseline) front-side tag+data
	SlowCacheProtoCycles = 3 // slow-cache miss/fill processing
	SlowCacheFwdCycles   = 8 // slow-cache coherence forward (inv/downgrade) handling
)

// Memory hub / accelerator interface.
const (
	// HubOutstanding caps concurrent eFPGA memory requests in flight at
	// the Proxy Cache (paper §V-C: peak bandwidth is set by the NoC and
	// the proxy's in-flight request capacity; the P-Mesh-derived proxy
	// sustains two outstanding misses).
	HubOutstanding = 2

	// HubStoreBytes is the maximum store payload per eFPGA request: the
	// Dolly L2 "only supports stores up to 8 Bytes, so the eFPGA must send
	// two requests to store one cacheline" (paper §V-C).
	HubStoreBytes = 8

	// DefaultTimeoutCycles is the exception handler's default watchdog
	// limit (fast cycles) for eFPGA responses.
	DefaultTimeoutCycles = 200000
)

// MMIO.
const (
	// MMIOBase marks the start of the memory-mapped I/O region; physical
	// addresses at or above it are routed to devices, not memory.
	MMIOBase uint64 = 0xF000_0000_0000
)
