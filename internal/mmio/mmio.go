// Package mmio defines the memory-mapped I/O messages exchanged between
// processor cores and on-chip devices (the Duet Control Hubs, TLB windows,
// and feature-switch registers) over the NoC's MMIO virtual networks.
//
// Cores issue at most one outstanding MMIO operation and block until the
// response arrives — the strict I/O ordering model whose cost the Shadow
// Registers attack (paper §II-F).
package mmio

// Req is a core→device MMIO request.
type Req struct {
	Addr    uint64
	Write   bool
	Size    int // 4 or 8
	Data    uint64
	SrcTile int
	SeqID   uint64
}

// Resp is a device→core MMIO response.
type Resp struct {
	SeqID uint64
	Data  uint64
	Err   bool // device deactivated / bad address: bogus data returned
}

// Payload sizes for NoC serialization.
const (
	ReqBytes  = 16
	RespBytes = 12
)

// Router maps an MMIO address to the NoC tile of the owning device. The
// boolean reports whether any device claims the address.
type Router func(addr uint64) (tile int, ok bool)
