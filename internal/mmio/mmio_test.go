// Tests for the MMIO address map contracts: the System router that
// steers requests to the owning adapter's control-hub tile, the
// "device driver" address helpers (SoftRegAddrOn, HubSwitchAddrOn,
// MgrRegAddrOn, TLBRegAddr), the disjointness of the per-adapter
// sub-windows, and the device-side decode of in-range, out-of-range and
// unknown addresses.
package mmio_test

import (
	"testing"

	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/params"
)

// TestRouterSteersToOwningAdapter: every helper-produced address of
// adapter a must route to adapter a's control-hub tile, and addresses
// outside every window must be unclaimed.
func TestRouterSteersToOwningAdapter(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 2, MemHubs: 2, EFPGAs: 2, Style: duet.StyleDuet})
	route := sys.MMIORouter()
	if route == nil {
		t.Fatal("no router on an eFPGA system")
	}
	for a, ad := range sys.Adapters {
		want := ad.CtrlTile()
		addrs := map[string]uint64{
			"soft reg":   duet.SoftRegAddrOn(a, 5),
			"hub switch": duet.HubSwitchAddrOn(a, 1, core.SwAtomics),
			"mgr reg":    duet.MgrRegAddrOn(a, core.RegStatus),
			"base":       core.BaseAddr(a),
		}
		for what, addr := range addrs {
			tile, ok := route(addr)
			if !ok || tile != want {
				t.Fatalf("adapter %d %s %#x routed to (%d,%v), want tile %d", a, what, addr, tile, ok, want)
			}
			if own := ad.Owns(addr); !own {
				t.Fatalf("adapter %d does not own its %s address %#x", a, what, addr)
			}
			if other := sys.Adapters[1-a]; other.Owns(addr) {
				t.Fatalf("adapter %d claims adapter %d's %s address %#x", 1-a, a, what, addr)
			}
		}
	}
	// TLBRegAddr is the adapter-0 helper.
	if tile, ok := route(duet.TLBRegAddr(1, core.TLBVPN)); !ok || tile != sys.Adapters[0].CtrlTile() {
		t.Fatalf("TLB window routed to (%d,%v)", tile, ok)
	}

	// Out of range: below the MMIO base, address zero, and one adapter
	// past the last configured window.
	for _, addr := range []uint64{0, params.MMIOBase - 8, core.BaseAddr(2)} {
		if tile, ok := route(addr); ok {
			t.Fatalf("unclaimed address %#x routed to tile %d", addr, tile)
		}
	}

	// CPU-only systems expose no MMIO devices at all.
	if r := duet.New(duet.Config{Cores: 1, Style: duet.StyleCPUOnly}).MMIORouter(); r != nil {
		t.Fatal("CPU-only system has a router")
	}
}

// TestWindowLayoutDisjoint: the manager, feature-switch, TLB and soft
// register sub-windows must tile the adapter window without overlap for
// every in-range index, and the helper arithmetic must stay inside the
// adapter stride (no silent bleed into the next adapter's window).
func TestWindowLayoutDisjoint(t *testing.T) {
	switchBase := duet.HubSwitchAddrOn(0, 0, 0) - core.BaseAddr(0) // 0x1000
	tlbBase := duet.TLBRegAddr(0, 0) - core.BaseAddr(0)            // 0x4000
	softBase := duet.SoftRegAddrOn(0, 0) - core.BaseAddr(0)        // 0x8000
	if switchBase != 0x1000 || tlbBase != 0x4000 || softBase != 0x8000 {
		t.Fatalf("window bases = %#x %#x %#x", switchBase, tlbBase, softBase)
	}

	// Manager registers live below the switch window.
	for _, reg := range []uint64{core.RegCtrl, core.RegClkKHz, core.RegProgram, core.RegStatus, core.RegTimeout} {
		if off := duet.MgrRegAddrOn(0, reg) - core.BaseAddr(0); off >= switchBase {
			t.Fatalf("mgr reg %#x lands at %#x inside the switch window", reg, off)
		}
	}

	// Feature switches: 0x100 per hub; hubs 0..47 stay below the TLB
	// window. Hub 48 is the documented aliasing boundary: its switch
	// address IS the TLB window base, which is why the decoder bounds the
	// hub index against the configured hub count.
	for hub := 0; hub < 48; hub++ {
		if a := duet.HubSwitchAddrOn(0, hub, core.SwWriteAlloc); a >= duet.TLBRegAddr(0, 0) {
			t.Fatalf("hub %d switch window reaches the TLB window (%#x)", hub, a)
		}
	}
	if duet.HubSwitchAddrOn(0, 48, 0) != duet.TLBRegAddr(0, 0) {
		t.Fatal("hub-48 switch address no longer marks the TLB window boundary")
	}

	// TLB windows: hubs 0..63 stay below the soft registers; hub 64 is
	// that boundary's alias.
	for hub := 0; hub < 64; hub++ {
		if a := duet.TLBRegAddr(hub, core.TLBFlush); a >= duet.SoftRegAddr(0) {
			t.Fatalf("hub %d TLB window reaches the soft registers (%#x)", hub, a)
		}
	}
	if duet.TLBRegAddr(64, 0) != duet.SoftRegAddr(0) {
		t.Fatal("hub-64 TLB address no longer marks the soft-register boundary")
	}

	// Soft registers fill the rest of the stride; the largest in-window
	// index must not reach adapter 1's base.
	maxReg := int((core.AdapterStride - softBase) / 8)
	if a := duet.SoftRegAddrOn(0, maxReg-1); a >= core.BaseAddr(1) {
		t.Fatalf("soft reg %d bleeds into adapter 1 (%#x)", maxReg-1, a)
	}
	if a := duet.SoftRegAddrOn(0, maxReg); a != core.BaseAddr(1) {
		t.Fatalf("soft reg %d = %#x, want adapter 1's base (boundary shifted)", maxReg, a)
	}
}

// TestDecodeRoundTrips: in-range device registers must read back what
// was written, through the full core -> NoC -> control-hub decode path.
func TestDecodeRoundTrips(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, Style: duet.StyleDuet})
	type rt struct {
		name        string
		addr        uint64
		write, want uint64
	}
	var got []uint64
	cases := []rt{
		{"RegTimeout", duet.MgrRegAddrOn(0, core.RegTimeout), 7777, 7777},
		{"RegClkKHz", duet.MgrRegAddrOn(0, core.RegClkKHz), 250000, 250000},
		{"SwAtomics", duet.HubSwitchAddrOn(0, 0, core.SwAtomics), 1, 1},
		{"SwVirtMode", duet.HubSwitchAddrOn(0, 0, core.SwVirtMode), 1, 1},
		{"SwEnable", duet.HubSwitchAddrOn(0, 0, core.SwEnable), 1, 1},
		{"TLBVPN", duet.TLBRegAddr(0, core.TLBVPN), 0x123, 0x123},
		{"TLBPPN", duet.TLBRegAddr(0, core.TLBPPN), 0x456, 0x456},
	}
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		for _, c := range cases {
			p.MMIOWrite64(c.addr, c.write)
			got = append(got, p.MMIORead64(c.addr))
		}
	})
	sys.Run()
	for i, c := range cases {
		if got[i] != c.want {
			t.Fatalf("%s round trip = %d, want %d", c.name, got[i], c.want)
		}
	}
	if mhz := sys.Fabric.Clock().FreqMHz(); mhz != 250 {
		t.Fatalf("RegClkKHz write left the fabric at %v MHz, want 250", mhz)
	}
}

// TestDecodeOutOfRange: reads of unknown offsets, write-only registers,
// and hub indices past the configured hub count must complete with bogus
// data (the paper's never-halt-the-processor rule) without latching an
// exception or wedging the control hub.
func TestDecodeOutOfRange(t *testing.T) {
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, Style: duet.StyleDuet})
	probes := []struct {
		name string
		addr uint64
	}{
		{"switch on absent hub 1", duet.HubSwitchAddrOn(0, 1, core.SwEnable)},
		{"TLB on absent hub 1", duet.TLBRegAddr(1, core.TLBVPN)},
		{"unknown switch offset", duet.HubSwitchAddrOn(0, 0, 0x28)},
		{"unknown TLB offset", duet.TLBRegAddr(0, 0x38)},
		{"unknown mgr offset", duet.MgrRegAddrOn(0, 0x28)},
		{"read of RegProgram", duet.MgrRegAddrOn(0, core.RegProgram)},
	}
	results := map[string]uint64{}
	var after uint64
	done := false
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		for _, pr := range probes {
			results[pr.name] = p.MMIORead64(pr.addr)
		}
		// The control hub must still decode real registers afterwards.
		p.MMIOWrite64(duet.MgrRegAddrOn(0, core.RegTimeout), 4242)
		after = p.MMIORead64(duet.MgrRegAddrOn(0, core.RegTimeout))
		done = true
	})
	sys.Run()
	if !done {
		t.Fatal("host wedged on an out-of-range access")
	}
	for name, v := range results {
		if v != 0 {
			t.Fatalf("%s returned %#x, want bogus 0", name, v)
		}
	}
	if after != 4242 {
		t.Fatalf("control hub broken after bad accesses: timeout reads %d", after)
	}
	if code := sys.Adapter.ErrCode(); code != core.ErrNone {
		t.Fatalf("bad addresses latched error %d; decode errors are not device exceptions", code)
	}
}
