package efpga

import (
	"testing"

	"duet/internal/sim"
)

type nopAccel struct{}

func (nopAccel) Start(*Env) {}

func testBitstream(name string, regions int) *Bitstream {
	return Synthesize(Design{
		Name:          name,
		LUTLogic:      regions * 60,
		RegBits:       regions * 80,
		PipelineDepth: 4,
	}, func() Accelerator { return nopAccel{} })
}

func TestConfigureSuccess(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "f0", Resources{LUTs: 10000, FFs: 20000, BRAMKb: 4096, DSPs: 64})
	bs := testBitstream("acc", 4)
	if err := f.Configure(bs); err != nil {
		t.Fatalf("configure: %v", err)
	}
	if f.Current() != bs || f.Accel() == nil || f.Generation != 1 {
		t.Fatal("fabric state not updated")
	}
}

// TestRegisterDuplicateGuard: re-registering the same bitstream returns
// its existing id (idempotent), while a different bitstream under an
// already-taken name is rejected — by-name lookups must stay unambiguous.
func TestRegisterDuplicateGuard(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "f0", Resources{LUTs: 10000, FFs: 20000, BRAMKb: 4096, DSPs: 64})
	bs := testBitstream("acc", 4)
	id, err := f.Register(bs)
	if err != nil {
		t.Fatalf("first register: %v", err)
	}
	again, err := f.Register(bs)
	if err != nil || again != id {
		t.Fatalf("re-register returned (%d, %v), want (%d, nil)", again, err, id)
	}
	if got, ok := f.IDByName("acc"); !ok || got != id {
		t.Fatalf("IDByName after double register = (%d, %v)", got, ok)
	}
	impostor := testBitstream("acc", 2)
	if _, err := f.Register(impostor); err == nil {
		t.Fatal("distinct bitstream under a duplicate name was accepted")
	}
	if other, err := f.Register(testBitstream("other", 4)); err != nil || other != id+1 {
		t.Fatalf("fresh name after rejection: (%d, %v)", other, err)
	}
	if f.MustRegister(bs) != id {
		t.Fatal("MustRegister not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister accepted a conflicting duplicate")
		}
	}()
	f.MustRegister(testBitstream("acc", 3))
}

func TestConfigureRejectsCorruptBitstream(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "f0", Resources{LUTs: 10000, FFs: 20000, BRAMKb: 4096, DSPs: 64})
	bs := testBitstream("acc", 4)
	bs.Corrupt()
	if err := f.Configure(bs); err == nil {
		t.Fatal("corrupted bitstream accepted")
	}
	if f.Current() != nil {
		t.Fatal("fabric configured despite integrity failure")
	}
}

func TestConfigureRejectsOversizedDesign(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "tiny", Resources{LUTs: 100, FFs: 100, BRAMKb: 32, DSPs: 1})
	bs := testBitstream("big", 50)
	if err := f.Configure(bs); err == nil {
		t.Fatal("oversized bitstream accepted")
	}
}

func TestClockGenerator(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "f0", Resources{LUTs: 1000, FFs: 2000, BRAMKb: 128, DSPs: 8})
	f.SetFreqMHz(250)
	if p := f.Clock().Period; p != 4000 {
		t.Fatalf("250MHz period = %dps", p)
	}
	// Reprogramming mid-simulation re-aligns the phase.
	eng.At(12345*sim.PS, func() { f.SetFreqMHz(500) })
	eng.Run(0)
	if f.Clock().Phase != 12345 || f.Clock().Period != 2000 {
		t.Fatalf("clock after reprogram: phase=%d period=%d", f.Clock().Phase, f.Clock().Period)
	}
}

func TestConfigureCapsClockAtFmax(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "f0", Resources{LUTs: 100000, FFs: 200000, BRAMKb: 65536, DSPs: 512})
	f.SetFreqMHz(500)
	bs := Synthesize(Design{Name: "slowdesign", LUTLogic: 100, PipelineDepth: 12}, func() Accelerator { return nopAccel{} })
	if err := f.Configure(bs); err != nil {
		t.Fatal(err)
	}
	if got := f.Clock().FreqMHz(); got > bs.FmaxMHz+1 {
		t.Fatalf("clock %.1fMHz exceeds Fmax %.1fMHz", got, bs.FmaxMHz)
	}
}

func TestSynthesisModelMonotonicity(t *testing.T) {
	small := testBitstream("small", 2)
	big := testBitstream("big", 20)
	if big.Report.AreaMM2 <= small.Report.AreaMM2 {
		t.Fatal("area not monotone in design size")
	}
	deep := Synthesize(Design{Name: "deep", LUTLogic: 100, PipelineDepth: 20}, func() Accelerator { return nopAccel{} })
	shallow := Synthesize(Design{Name: "shallow", LUTLogic: 100, PipelineDepth: 2}, func() Accelerator { return nopAccel{} })
	if deep.FmaxMHz >= shallow.FmaxMHz {
		t.Fatal("Fmax not monotone in pipeline depth")
	}
}

func TestMemBoundDesignUtilizationShape(t *testing.T) {
	// A BRAM-heavy design must show high BRAM utilization and low CLB
	// utilization (the sort accelerators' signature in Table II).
	bs := Synthesize(Design{Name: "membound", LUTLogic: 200, RAMKb: 512, PipelineDepth: 5, MemBound: true},
		func() Accelerator { return nopAccel{} })
	r := bs.Report
	if r.BRAMUtil < 0.5 {
		t.Fatalf("BRAM util %.2f too low for mem-bound design", r.BRAMUtil)
	}
	if r.CLBUtil > r.BRAMUtil {
		t.Fatalf("CLB util %.2f exceeds BRAM util %.2f", r.CLBUtil, r.BRAMUtil)
	}
}

func TestScratchpad(t *testing.T) {
	s := NewScratchpad(256)
	s.Write64(16, 0xdeadbeef)
	if s.Read64(16) != 0xdeadbeef {
		t.Fatal("scratchpad readback")
	}
	s.Write(0, []byte{1, 2, 3})
	if got := s.Read(0, 3); got[0] != 1 || got[2] != 3 {
		t.Fatal("byte rw")
	}
	if s.Size() != 256 {
		t.Fatal("size")
	}
}

func TestResourcesFits(t *testing.T) {
	capacity := Resources{LUTs: 100, FFs: 100, BRAMKb: 64, DSPs: 4}
	if !(Resources{LUTs: 100, FFs: 50, BRAMKb: 64, DSPs: 4}).Fits(capacity) {
		t.Fatal("exact fit rejected")
	}
	if (Resources{LUTs: 101}).Fits(capacity) {
		t.Fatal("overflow accepted")
	}
}
