package efpga

import (
	"fmt"
	"math"
)

// Design is a structural description of an accelerator datapath: the
// quantities a synthesis flow would extract from RTL or HLS output. The
// cost model below maps a Design to resources, area and Fmax.
//
// This replaces the paper's Yosys + VTR + Catapult flow (which cannot run
// here); the per-accelerator Designs in internal/accel are calibrated so
// the model reproduces the paper's Table II, and the Table II harness
// prints model and paper values side by side.
type Design struct {
	Name string

	// Datapath primitives.
	Adders      int // word-width add/sub units
	Multipliers int // mapped to DSPs when available
	Comparators int // compare-exchange / branch units
	FPUnits     int // floating-point pipelines (LUT-heavy)
	LUTLogic    int // residual random logic, in LUT6 equivalents

	// Storage.
	RegBits int // pipeline/state registers
	RAMKb   int // block RAM kilobits

	// PipelineDepth is the number of logic levels on the critical path.
	PipelineDepth int
	// MemBound marks designs whose critical path is BRAM-limited.
	MemBound bool
	// MinRegions provisions a larger fabric than the minimal fit (real
	// eFPGAs come in fixed sizes; routability and placement slack demand
	// headroom beyond raw resource counts).
	MinRegions int
}

// Report is the synthesis result for one design (the rows of Table II).
type Report struct {
	Name      string
	FmaxMHz   float64
	AreaMM2   float64 // total eFPGA silicon area provisioned (45 nm)
	NormArea  float64 // AreaMM2 / (1x Ariane + 1x P-Mesh socket)
	CLBUtil   float64
	BRAMUtil  float64
	Res       Resources
	FabricCap Resources
}

// Cost-model constants, calibrated against Table II. The fabric is
// organized in "regions": 8 CLB tiles (10 fracturable LUT6 + 20 FFs each)
// plus one 32 Kb BRAM tile and half a DSP tile, mirroring the
// k6_frac_N10_frac_chain_mem32K_40nm architecture used in the paper.
const (
	lutsPerCLBTile   = 10
	ffsPerCLBTile    = 20
	clbTilesPerRgn   = 8
	bramKbPerRgn     = 32
	dspsPerRgn       = 0.5
	regionAreaMM2    = 0.196 // 45nm, incl. configuration + routing overhead
	packingEff       = 0.80  // achievable LUT packing before routability fails
	baseAreaMM2      = 2.66  // 1x Ariane (1.56) + 1x P-Mesh socket (1.10), Table I
	lutDelayNS       = 0.45  // per-level LUT+routing delay in the fabric
	fixedPathNS      = 1.1   // clock-to-out + setup + global routing
	bramPenaltyNS    = 1.0   // extra path through BRAM for memory-bound designs
	lutsPerAdder     = 36    // 32-bit carry-chain adder in LUT6s
	lutsPerCmp       = 24
	lutsPerFPUnit    = 640 // single-precision FP pipeline
	lutsPerMultLogic = 300 // multiplier cost when DSPs are exhausted
)

// Resources computes the design's resource demand.
func (d Design) Resources() Resources {
	luts := d.Adders*lutsPerAdder + d.Comparators*lutsPerCmp + d.FPUnits*lutsPerFPUnit + d.LUTLogic
	return Resources{
		LUTs:   luts,
		FFs:    d.RegBits,
		BRAMKb: d.RAMKb,
		DSPs:   d.Multipliers,
	}
}

// Synthesize runs the cost model: it sizes a minimal fabric for the
// design, computes utilization and area, estimates Fmax, and returns the
// bitstream plus report.
func Synthesize(d Design, factory func() Accelerator) *Bitstream {
	res := d.Resources()

	// Regions needed per resource type.
	lutRegions := float64(res.LUTs) / (packingEff * lutsPerCLBTile * clbTilesPerRgn)
	ffRegions := float64(res.FFs) / (ffsPerCLBTile * clbTilesPerRgn)
	bramRegions := float64(res.BRAMKb) / bramKbPerRgn
	dspRegions := float64(res.DSPs) / dspsPerRgn
	regions := int(math.Ceil(math.Max(math.Max(lutRegions, ffRegions), math.Max(bramRegions, dspRegions))))
	if regions < d.MinRegions {
		regions = d.MinRegions
	}
	if regions < 1 {
		regions = 1
	}

	capacity := Resources{
		LUTs:   regions * clbTilesPerRgn * lutsPerCLBTile,
		FFs:    regions * clbTilesPerRgn * ffsPerCLBTile,
		BRAMKb: regions * bramKbPerRgn,
		DSPs:   int(math.Ceil(float64(regions) * dspsPerRgn)),
	}

	// Fmax from the critical-path model.
	path := fixedPathNS + float64(d.PipelineDepth)*lutDelayNS
	if d.MemBound {
		path += bramPenaltyNS
	}
	fmax := 1000.0 / path

	area := float64(regions) * regionAreaMM2
	clbUtil := float64(res.LUTs) / (packingEff * float64(capacity.LUTs))
	if u := float64(res.FFs) / float64(capacity.FFs); u > clbUtil {
		clbUtil = u
	}
	if clbUtil > 1 {
		clbUtil = 1
	}
	bramUtil := float64(res.BRAMKb) / float64(capacity.BRAMKb)

	rep := Report{
		Name:      d.Name,
		FmaxMHz:   round1(fmax),
		AreaMM2:   area,
		NormArea:  round2(area / baseAreaMM2),
		CLBUtil:   round2(clbUtil),
		BRAMUtil:  round2(bramUtil),
		Res:       res,
		FabricCap: capacity,
	}

	// The configuration image covers every region's configuration bits.
	img := make([]byte, regions*64)
	for i := range img {
		img[i] = byte(i*131 + len(d.Name))
	}
	bs := &Bitstream{
		Name:    d.Name,
		Res:     res,
		FmaxMHz: rep.FmaxMHz,
		Image:   img,
		Factory: factory,
		Report:  rep,
	}
	bs.CRC = bs.Checksum()
	return bs
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
func round2(v float64) float64 { return math.Round(v*100) / 100 }

func (r Report) String() string {
	return fmt.Sprintf("%-12s Fmax=%6.1fMHz area=%6.2fmm2 norm=%5.2f CLB=%4.2f BRAM=%4.2f",
		r.Name, r.FmaxMHz, r.AreaMM2, r.NormArea, r.CLBUtil, r.BRAMUtil)
}
