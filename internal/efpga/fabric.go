// Package efpga models the embedded FPGA fabrics of Duet (paper §IV): an
// island-style fabric (in Dolly built with PRGA) with CLBs, block RAMs and
// hard multipliers, a configuration memory loaded by the Control Hub's
// programming engine, a software-programmable clock generator, and a
// non-coherent scratchpad.
//
// The synthesis flow (Yosys + VTR + Catapult HLS in the paper) is replaced
// by a deterministic cost model (see synth.go) calibrated against the
// paper's Table II; DESIGN.md documents the substitution.
package efpga

import (
	"fmt"
	"hash/crc32"

	"duet/internal/sim"
)

// Resources describes reconfigurable resource quantities: six-input LUTs,
// flip-flops, block-RAM kilobits, and hard multiplier (DSP) blocks.
type Resources struct {
	LUTs   int
	FFs    int
	BRAMKb int
	DSPs   int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUTs + o.LUTs, r.FFs + o.FFs, r.BRAMKb + o.BRAMKb, r.DSPs + o.DSPs}
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	return r.LUTs <= c.LUTs && r.FFs <= c.FFs && r.BRAMKb <= c.BRAMKb && r.DSPs <= c.DSPs
}

// Accelerator is an eFPGA-emulated soft accelerator: fine-grained
// accelerators and hardware-augmentation widgets alike (paper §II-A). Its
// Start method spawns the accelerator's behavioural threads against the
// environment the adapter provides.
type Accelerator interface {
	Start(env *Env)
}

// Env is defined by the adapter (internal/core) and passed to accelerators
// at configuration time; it is declared here as an interface to avoid a
// dependency cycle.
type Env struct {
	Eng     *sim.Engine
	Clk     *sim.Clock // the generated eFPGA clock
	Scratch *Scratchpad
	// Regs and Mem are adapter-owned facades; typed as interfaces to keep
	// efpga free of adapter dependencies.
	Regs RegIntf
	Mem  []MemIntf
}

// RegIntf is the fabric-side soft-register interface (implemented by the
// Control Hub's register file).
type RegIntf interface {
	// ReadPlain returns the fabric copy of plain shadow register i.
	ReadPlain(i int) uint64
	// WritePlain updates the fabric copy and synchronizes the shadow.
	WritePlain(t *sim.Thread, i int, v uint64)
	// PopFPGA pops the fabric side of FPGA-bound FIFO i (blocking).
	PopFPGA(t *sim.Thread, i int) uint64
	// TryPopFPGA pops without blocking.
	TryPopFPGA(i int) (uint64, bool)
	// PushCPU pushes into CPU-bound FIFO i (blocking on credits).
	PushCPU(t *sim.Thread, i int, v uint64)
	// PushToken pushes a token into token FIFO i (blocking on credits).
	PushToken(t *sim.Thread, i int)
	// Claim routes normal-register operations on register i to the
	// accelerator (device-controller emulation, e.g. a barrier register).
	Claim(i int)
	// WaitOp blocks until a normal-register operation arrives on a
	// claimed register.
	WaitOp(t *sim.Thread, i int) *NormalOp
	// Complete answers a claimed normal-register operation.
	Complete(op *NormalOp, val uint64)
}

// NormalOp is a processor access to a claimed normal soft register,
// delivered to the accelerator for explicit servicing.
type NormalOp struct {
	Reg   int
	Write bool
	Value uint64
	Seq   uint64
}

// MemIntf is the fabric-side memory interface of one Memory Hub. All
// addresses are virtual when the hub's TLB is enabled, physical otherwise.
// Stores are limited to 8 bytes (paper §V-C). Errors report a deactivated
// hub (exception containment) or a killed translation.
type MemIntf interface {
	Load(t *sim.Thread, va uint64, size int) ([]byte, error)
	LoadLine(t *sim.Thread, va uint64) ([]byte, error)
	Store(t *sim.Thread, va uint64, data []byte) error
	Amo(t *sim.Thread, op int, va uint64, size int, operand, operand2 uint64) (uint64, error)

	// Async pipelined interface (MSHR-limited): issue returns a handle;
	// Await blocks until that handle completes.
	LoadAsync(t *sim.Thread, va uint64, size int) uint64
	StoreAsync(t *sim.Thread, va uint64, data []byte) uint64
	Await(t *sim.Thread, handle uint64) ([]byte, error)
	// SetInvSink registers the soft cache's invalidation listener; the
	// hub delivers proxy-pushed invalidations in stream order.
	SetInvSink(func(pa, vpn uint64))
}

// Bitstream is a synthesized accelerator configuration.
type Bitstream struct {
	Name    string
	Res     Resources
	FmaxMHz float64
	Image   []byte
	CRC     uint32
	Factory func() Accelerator

	// Report carries the synthesis cost model's output (Table II).
	Report Report
}

// Checksum computes the CRC of the image; a Bitstream is intact when
// Checksum() == CRC.
func (b *Bitstream) Checksum() uint32 { return crc32.ChecksumIEEE(b.Image) }

// Corrupt flips a byte of the image (fault-injection helper).
func (b *Bitstream) Corrupt() {
	if len(b.Image) > 0 {
		b.Image[len(b.Image)/2] ^= 0xff
	}
}

// Fabric is one embedded FPGA: capacity, configuration state and the
// generated clock.
type Fabric struct {
	Name string
	Cap  Resources

	eng *sim.Engine
	clk *sim.Clock // generated eFPGA clock (mutable frequency)

	bitstreams []*Bitstream
	current    *Bitstream
	accel      Accelerator
	Scratch    *Scratchpad

	// Generation counts successful configurations.
	Generation int
}

// NewFabric creates a fabric with the given capacity. The clock starts at
// 100 MHz until reprogrammed.
func NewFabric(eng *sim.Engine, name string, capacity Resources) *Fabric {
	return &Fabric{
		Name:    name,
		Cap:     capacity,
		eng:     eng,
		clk:     sim.ClockMHz(name+".clk", 100),
		Scratch: NewScratchpad(64 * 1024),
	}
}

// Clock returns the fabric's generated clock. Its frequency may change on
// SetFreqMHz; components must re-derive edges from it each time.
func (f *Fabric) Clock() *sim.Clock { return f.clk }

// SetFreqMHz reprograms the clock generator. The new period takes effect
// at the current instant (edges re-align from now), modelling the
// programmable divider/PLL of the FPGA manager (paper §II-E).
func (f *Fabric) SetFreqMHz(mhz float64) {
	if mhz <= 0 {
		panic("efpga: bad frequency")
	}
	f.clk.Period = sim.Time(1e6/mhz + 0.5)
	f.clk.Phase = f.eng.Now()
}

// DefaultFabricCap is the generous capacity used when a fabric is built
// without an explicit resource budget: big enough for every Table II
// design, so capacity checks bind only when a configuration asks for a
// tighter budget.
var DefaultFabricCap = Resources{LUTs: 1 << 20, FFs: 1 << 21, BRAMKb: 1 << 16, DSPs: 1 << 12}

// Register adds a bitstream to the system image library and returns its
// id (used by the programming engine's MMIO interface). Registration is
// idempotent: re-registering the same bitstream returns its existing id.
// Registering a *different* bitstream under an already-taken name is an
// error — two images answering to one name would make every by-name
// lookup (IDByName, the scheduler's catalog) ambiguous.
func (f *Fabric) Register(b *Bitstream) (int, error) {
	for i, ex := range f.bitstreams {
		if ex.Name == b.Name {
			if ex == b {
				return i, nil
			}
			return 0, fmt.Errorf("efpga: bitstream name %q already registered with a different image", b.Name)
		}
	}
	f.bitstreams = append(f.bitstreams, b)
	return len(f.bitstreams) - 1, nil
}

// MustRegister is Register for the common fresh-fabric flow where a
// duplicate name is a programming error: it panics instead of returning
// one.
func (f *Fabric) MustRegister(b *Bitstream) int {
	id, err := f.Register(b)
	if err != nil {
		panic(err)
	}
	return id
}

// IDByName returns the id of the registered bitstream named name.
func (f *Fabric) IDByName(name string) (int, bool) {
	for i, b := range f.bitstreams {
		if b.Name == name {
			return i, true
		}
	}
	return 0, false
}

// BitstreamByID returns a registered bitstream.
func (f *Fabric) BitstreamByID(id int) (*Bitstream, error) {
	if id < 0 || id >= len(f.bitstreams) {
		return nil, fmt.Errorf("efpga: unknown bitstream id %d", id)
	}
	return f.bitstreams[id], nil
}

// Configure validates and installs a bitstream: CRC integrity check, then
// resource capacity check. On success the accelerator instance is created
// (but not started; the adapter starts it with a fresh Env).
func (f *Fabric) Configure(b *Bitstream) error {
	if b.Checksum() != b.CRC {
		return fmt.Errorf("efpga: bitstream %q integrity check failed", b.Name)
	}
	if !b.Res.Fits(f.Cap) {
		return fmt.Errorf("efpga: bitstream %q needs %+v, capacity %+v", b.Name, b.Res, f.Cap)
	}
	f.current = b
	f.accel = b.Factory()
	if b.FmaxMHz > 0 && f.clk.FreqMHz() > b.FmaxMHz {
		f.SetFreqMHz(b.FmaxMHz)
	}
	f.Generation++
	return nil
}

// Current reports the installed bitstream (nil if unprogrammed).
func (f *Fabric) Current() *Bitstream { return f.current }

// Accel reports the instantiated accelerator (nil if unprogrammed).
func (f *Fabric) Accel() Accelerator { return f.accel }

// Scratchpad is the eFPGA's non-coherent local memory (paper Fig. 3):
// BRAM-backed storage private to the accelerator, accessed in the slow
// clock domain with a fixed cycle cost charged by the caller.
type Scratchpad struct {
	size int
	data []byte // allocated on first access; untouched scratchpads are free
}

// NewScratchpad builds a scratchpad of the given size. Storage is
// allocated on first access, so systems whose accelerators never run
// (e.g. the serve/cluster studies' analytic jobs) never pay for it.
func NewScratchpad(size int) *Scratchpad {
	return &Scratchpad{size: size}
}

// Size reports the scratchpad capacity in bytes.
func (s *Scratchpad) Size() int { return s.size }

func (s *Scratchpad) buf() []byte {
	if s.data == nil {
		s.data = make([]byte, s.size)
	}
	return s.data
}

// Read64 loads a uint64 at offset off.
func (s *Scratchpad) Read64(off int) uint64 {
	b := s.buf()
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[off+i]) << (8 * i)
	}
	return v
}

// Write64 stores a uint64 at offset off.
func (s *Scratchpad) Write64(off int, v uint64) {
	b := s.buf()
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

// Read copies n bytes at off.
func (s *Scratchpad) Read(off, n int) []byte {
	out := make([]byte, n)
	copy(out, s.buf()[off:off+n])
	return out
}

// Write copies data to off.
func (s *Scratchpad) Write(off int, data []byte) {
	copy(s.buf()[off:], data)
}
