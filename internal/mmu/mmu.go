// Package mmu provides memory protection and virtualization for the Duet
// Memory Hubs (paper §II-D): a software-managed page table and the
// per-hub TLB. Application-specific fine-grained accelerators are
// restricted to virtual addresses; a TLB miss interrupts a processor,
// whose kernel handler either installs the translation over MMIO or kills
// the accelerator.
package mmu

// PageSize is the virtual memory page size.
const PageSize = 4096

// VPN returns the virtual page number of va.
func VPN(va uint64) uint64 { return va / PageSize }

// PageOff returns the offset of va within its page.
func PageOff(va uint64) uint64 { return va % PageSize }

// PageTable is the kernel's software page table (VPN -> PPN).
type PageTable struct {
	pages map[uint64]uint64
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{pages: make(map[uint64]uint64)}
}

// Map installs a translation for the page containing va to the page
// containing pa.
func (pt *PageTable) Map(va, pa uint64) {
	pt.pages[VPN(va)] = pa / PageSize
}

// Unmap removes the translation for va's page.
func (pt *PageTable) Unmap(va uint64) { delete(pt.pages, VPN(va)) }

// Translate returns the physical address for va, if mapped.
func (pt *PageTable) Translate(va uint64) (uint64, bool) {
	ppn, ok := pt.pages[VPN(va)]
	if !ok {
		return 0, false
	}
	return ppn*PageSize + PageOff(va), true
}

// Lookup returns the PPN for a VPN, if mapped.
func (pt *PageTable) Lookup(vpn uint64) (uint64, bool) {
	ppn, ok := pt.pages[vpn]
	return ppn, ok
}

type tlbEntry struct {
	vpn, ppn uint64
	stamp    uint64
}

// TLB is a small, fully-associative, LRU translation look-aside buffer.
type TLB struct {
	capacity int
	entries  []tlbEntry
	stamp    uint64

	Hits, Misses uint64
}

// NewTLB returns a TLB holding up to capacity translations.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 16
	}
	return &TLB{capacity: capacity}
}

// Lookup translates va; ok reports a hit.
func (t *TLB) Lookup(va uint64) (pa uint64, ok bool) {
	vpn := VPN(va)
	for i := range t.entries {
		if t.entries[i].vpn == vpn {
			t.stamp++
			t.entries[i].stamp = t.stamp
			t.Hits++
			return t.entries[i].ppn*PageSize + PageOff(va), true
		}
	}
	t.Misses++
	return 0, false
}

// Insert installs a translation, evicting the LRU entry if full.
func (t *TLB) Insert(vpn, ppn uint64) {
	t.stamp++
	for i := range t.entries {
		if t.entries[i].vpn == vpn {
			t.entries[i].ppn = ppn
			t.entries[i].stamp = t.stamp
			return
		}
	}
	if len(t.entries) < t.capacity {
		t.entries = append(t.entries, tlbEntry{vpn, ppn, t.stamp})
		return
	}
	lru := 0
	for i := range t.entries {
		if t.entries[i].stamp < t.entries[lru].stamp {
			lru = i
		}
	}
	t.entries[lru] = tlbEntry{vpn, ppn, t.stamp}
}

// Invalidate removes the translation for vpn, if present.
func (t *TLB) Invalidate(vpn uint64) {
	for i := range t.entries {
		if t.entries[i].vpn == vpn {
			t.entries[i] = t.entries[len(t.entries)-1]
			t.entries = t.entries[:len(t.entries)-1]
			return
		}
	}
}

// Flush removes all translations.
func (t *TLB) Flush() { t.entries = t.entries[:0] }

// Len reports the number of live entries.
func (t *TLB) Len() int { return len(t.entries) }
