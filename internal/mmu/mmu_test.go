package mmu

import (
	"testing"
	"testing/quick"
)

func TestPageTableTranslate(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x10000, 0x80000)
	pa, ok := pt.Translate(0x10123)
	if !ok || pa != 0x80123 {
		t.Fatalf("translate = %#x, %v", pa, ok)
	}
	if _, ok := pt.Translate(0x20000); ok {
		t.Fatal("unmapped VA translated")
	}
	pt.Unmap(0x10000)
	if _, ok := pt.Translate(0x10123); ok {
		t.Fatal("unmapped VA still translates")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if _, ok := tlb.Lookup(0x5000); ok {
		t.Fatal("hit in empty TLB")
	}
	tlb.Insert(VPN(0x5000), 0x99)
	pa, ok := tlb.Lookup(0x5678)
	if !ok || pa != 0x99*PageSize+0x678 {
		t.Fatalf("lookup = %#x, %v", pa, ok)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, 11)
	tlb.Insert(2, 22)
	tlb.Lookup(1 * PageSize) // touch 1; 2 becomes LRU
	tlb.Insert(3, 33)
	if _, ok := tlb.Lookup(2 * PageSize); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := tlb.Lookup(1 * PageSize); !ok {
		t.Fatal("MRU entry evicted")
	}
}

func TestTLBInvalidateFlush(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Insert(7, 70)
	tlb.Insert(8, 80)
	tlb.Invalidate(7)
	if _, ok := tlb.Lookup(7 * PageSize); ok {
		t.Fatal("invalidate failed")
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Fatal("flush failed")
	}
}

func TestTLBUpdateInPlace(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(5, 50)
	tlb.Insert(5, 51)
	if tlb.Len() != 1 {
		t.Fatalf("duplicate vpn entries: %d", tlb.Len())
	}
	pa, _ := tlb.Lookup(5 * PageSize)
	if pa != 51*PageSize {
		t.Fatalf("stale ppn after update: %#x", pa)
	}
}

// Property: TLB agrees with the page table for every address whose page
// was inserted and not evicted.
func TestTLBConsistencyProperty(t *testing.T) {
	f := func(vpns []uint16) bool {
		pt := NewPageTable()
		tlb := NewTLB(64)
		for i, v := range vpns {
			if i >= 64 {
				break
			}
			va := uint64(v) * PageSize
			pa := uint64(i+1) * PageSize
			pt.Map(va, pa)
			ppn, _ := pt.Lookup(VPN(va))
			tlb.Insert(VPN(va), ppn)
		}
		for i, v := range vpns {
			if i >= 64 {
				break
			}
			va := uint64(v)*PageSize + 42
			want, ok1 := pt.Translate(va)
			got, ok2 := tlb.Lookup(va)
			if ok1 != ok2 || (ok1 && want != got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
