package accel

import (
	"fmt"
	"math"

	"duet/internal/coherence"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// BarnesHut provides the two fine-grained force accelerators of the
// Barnes-Hut example (paper §III-A2, §V-D, P4M1): ApproxForce (low-order
// approximation against a cell's center of mass) and CalcForce (direct
// particle-particle force). The processors handle the dynamic control
// flow — tree traversal and the opening test — and stream force work
// items to the eFPGA; two pipelined units serve two cores each, and
// per-particle force accumulators live in fabric registers until the
// processor flushes them.
//
// Register layout:
//
//	0, 1: work FIFOs (FPGA-bound; unit 0 serves cores 0-1, unit 1 cores 2-3)
//	2..5: per-core result FIFOs (CPU-bound)
//	6: plain shadow: particles base address
//	7: plain shadow: nodes base address
type BarnesHut struct {
	Cores int
}

// BarnesHut register indices.
const (
	BHWork0Reg    = 0
	BHWork1Reg    = 1
	BHResultReg0  = 2 // + coreID
	BHPartBaseReg = 6
	BHNodeBaseReg = 7
	BHNumRegs     = 8
)

// Work item opcodes, packed as op | core<<4 | index<<16.
const (
	BHOpSetParticle = 1
	BHOpApprox      = 2
	BHOpCalc        = 3
	BHOpFlush       = 4
)

// BHPack packs a work item.
func BHPack(op, core int, index uint32) uint64 {
	return uint64(op) | uint64(core)<<4 | uint64(index)<<16
}

// BHBodyBytes is the in-memory footprint of one body record
// (x, y, z, mass as float64).
const BHBodyBytes = 32

// bhPipeCycles is the per-item datapath cost of the pipelined force units.
const bhPipeCycles = 2

// BHG is the gravitational constant used by all implementations.
const BHG = 6.674e-11

// BHSoftening avoids singularities at tiny separations.
const BHSoftening = 1e-9

// BHForce computes the gravitational force exerted on a body at (px,py,pz)
// with mass pm by a body/cell at (qx,qy,qz) with mass qm. Shared by the
// accelerator, the CPU baseline and the functional checks so all three
// compute bit-identical interactions.
func BHForce(px, py, pz, pm, qx, qy, qz, qm float64) (fx, fy, fz float64) {
	dx, dy, dz := qx-px, qy-py, qz-pz
	r2 := dx*dx + dy*dy + dz*dz + BHSoftening
	inv := 1 / math.Sqrt(r2)
	f := BHG * pm * qm * inv * inv * inv
	return f * dx, f * dy, f * dz
}

type bhAccum struct{ fx, fy, fz float64 }

// Start spawns the two force units.
func (a BarnesHut) Start(env *efpga.Env) {
	cores := a.Cores
	if cores == 0 {
		cores = 4
	}
	acc := make([]bhAccum, cores)
	px := make([]float64, cores)
	py := make([]float64, cores)
	pz := make([]float64, cores)
	pm := make([]float64, cores)

	// Each unit is a two-stage pipeline: stage 1 pops a work item and
	// issues its body loads; stage 2 awaits the loads and runs the force
	// datapath. One item's loads overlap the previous item's compute, so
	// unit throughput approaches the load bandwidth rather than the load
	// latency.
	type staged struct {
		op   int
		core int
		h1   uint64 // line-load handles (0 = no loads)
		h2   uint64
	}
	unit := func(unitIdx int, workReg int) {
		env.Eng.Go(fmt.Sprintf("bh.unit%d", unitIdx), func(t *sim.Thread) {
			port := env.Mem[0]
			var pipe []staged
			retire := func() bool {
				s := pipe[0]
				pipe = pipe[1:]
				var x, y, z, m float64
				if s.h1 != 0 {
					b1, err1 := port.Await(t, s.h1)
					b2, err2 := port.Await(t, s.h2)
					if err1 != nil || err2 != nil {
						return false
					}
					x = math.Float64frombits(coherence.Uint64At(b1[0:8]))
					y = math.Float64frombits(coherence.Uint64At(b1[8:16]))
					z = math.Float64frombits(coherence.Uint64At(b2[0:8]))
					m = math.Float64frombits(coherence.Uint64At(b2[8:16]))
				}
				c := s.core
				switch s.op {
				case BHOpSetParticle:
					px[c], py[c], pz[c], pm[c] = x, y, z, m
					acc[c] = bhAccum{}
				case BHOpApprox, BHOpCalc:
					t.SleepCycles(env.Clk, bhPipeCycles)
					fx, fy, fz := BHForce(px[c], py[c], pz[c], pm[c], x, y, z, m)
					acc[c].fx += fx
					acc[c].fy += fy
					acc[c].fz += fz
				case BHOpFlush:
					env.Regs.PushCPU(t, BHResultReg0+c, math.Float64bits(acc[c].fx))
					env.Regs.PushCPU(t, BHResultReg0+c, math.Float64bits(acc[c].fy))
					env.Regs.PushCPU(t, BHResultReg0+c, math.Float64bits(acc[c].fz))
				}
				return true
			}
			for {
				// Stage 1: accept the next item and issue its loads —
				// but a flush or set must wait for older same-core items,
				// so the pipeline drains when one is at the head.
				var item uint64
				if len(pipe) > 0 {
					var got bool
					item, got = env.Regs.TryPopFPGA(workReg)
					if !got {
						if !retire() {
							return
						}
						continue
					}
				} else {
					item = env.Regs.PopFPGA(t, workReg)
				}
				op := int(item & 0xf)
				c := int(item >> 4 & 0xfff)
				idx := uint32(item >> 16)
				s := staged{op: op, core: c}
				switch op {
				case BHOpSetParticle, BHOpCalc:
					addr := env.Regs.ReadPlain(BHPartBaseReg) + uint64(idx)*BHBodyBytes
					s.h1 = port.LoadAsync(t, addr, 16)
					s.h2 = port.LoadAsync(t, addr+16, 16)
				case BHOpApprox:
					addr := env.Regs.ReadPlain(BHNodeBaseReg) + uint64(idx)*BHBodyBytes
					s.h1 = port.LoadAsync(t, addr, 16)
					s.h2 = port.LoadAsync(t, addr+16, 16)
				}
				pipe = append(pipe, s)
				for len(pipe) >= 2 {
					if !retire() {
						return
					}
				}
			}
		})
	}
	unit(0, BHWork0Reg)
	unit(1, BHWork1Reg)
}

// BHWorkReg maps a core to its unit's work FIFO register.
func BHWorkReg(core int) int {
	if core < 2 {
		return BHWork0Reg
	}
	return BHWork1Reg
}

// NewBarnesHutBitstream synthesizes the Barnes-Hut force units.
func NewBarnesHutBitstream(cores int) *efpga.Bitstream {
	return Synthesize("Barnes-Hut", func() efpga.Accelerator { return BarnesHut{Cores: cores} })
}
