package accel

import (
	"duet/internal/efpga"
	"duet/internal/sim"
)

// BFS provides the hardware lock-free frontier queues for parallel
// breadth-first search (paper §V-D, P4/8/16-M0, hardware augmentation).
// The processors traverse the graph in barrier-synchronized steps; the
// widget holds the current and next frontiers in fabric BRAM, hands out
// nodes without any lock, and detects level completion (current frontier
// drained, no node still being processed, every core waiting), emitting
// level markers that double as the barrier.
//
// Register layout: 0 = command FIFO (FPGA-bound, shared), 1..N = per-core
// work FIFOs (CPU-bound).
type BFS struct {
	Cores int
}

// BFS register indices.
const (
	BFSCmdReg   = 0
	BFSWorkReg0 = 1 // + coreID
)

// Command opcodes, packed as op | core<<4 | node<<16.
const (
	BFSOpEnq  = 1 // add node to the next frontier
	BFSOpReq  = 2 // request work
	BFSOpDone = 3 // finished processing the last node
)

// Work-FIFO responses: either a node (low bit 0 after shifting) or one of
// the markers below.
const (
	// BFSLevelMark signals the end of a level; the new level number is in
	// the high bits.
	BFSLevelMark = uint64(1) << 62
	// BFSDone signals search completion.
	BFSDone = ^uint64(0)
)

// BFSPackCmd packs a widget command.
func BFSPackCmd(op, core int, node uint32) uint64 {
	return uint64(op) | uint64(core)<<4 | uint64(node)<<16
}

// queueOpCycles models the per-operation cost of the hardware queues.
const queueOpCycles = 1

// Start spawns the frontier-queue widget.
func (a BFS) Start(env *efpga.Env) {
	cores := a.Cores
	env.Eng.Go("bfs.queues", func(t *sim.Thread) {
		var current, next []uint32
		level := uint64(0)
		inFlight := 0
		var waiting []int

		serve := func() {
			for len(waiting) > 0 {
				if len(current) > 0 {
					n := current[0]
					current = current[1:]
					t.SleepCycles(env.Clk, queueOpCycles)
					c := waiting[0]
					waiting = waiting[1:]
					inFlight++
					env.Regs.PushCPU(t, BFSWorkReg0+c, uint64(n))
					continue
				}
				// Current frontier drained: the level ends only when no
				// node is still being processed and every core waits.
				if inFlight > 0 || len(waiting) < cores {
					return
				}
				current, next = next, nil
				level++
				if len(current) == 0 {
					for _, c := range waiting {
						env.Regs.PushCPU(t, BFSWorkReg0+c, BFSDone)
					}
					waiting = nil
					return
				}
				for _, c := range waiting {
					env.Regs.PushCPU(t, BFSWorkReg0+c, BFSLevelMark|level<<32)
				}
				// Cores re-request after the marker; keep them waiting.
				waiting = nil
			}
		}

		for {
			cmd := env.Regs.PopFPGA(t, BFSCmdReg)
			op := int(cmd & 0xf)
			c := int(cmd >> 4 & 0xfff)
			node := uint32(cmd >> 16)
			t.SleepCycles(env.Clk, queueOpCycles)
			switch op {
			case BFSOpEnq:
				next = append(next, node)
			case BFSOpReq:
				waiting = append(waiting, c)
			case BFSOpDone:
				inFlight--
			}
			serve()
		}
	})
}

// Seed preloads the initial frontier (level 0) before the search starts;
// called by the host program through an ENQ command for the root.

// NewBFSBitstream synthesizes the frontier-queue widget.
func NewBFSBitstream(cores int) *efpga.Bitstream {
	return Synthesize("BFS", func() efpga.Accelerator { return BFS{Cores: cores} })
}
