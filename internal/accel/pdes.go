package accel

import (
	"container/heap"

	"duet/internal/efpga"
	"duet/internal/sim"
)

// PDES is the hardware-augmentation task scheduler for parallel discrete
// event simulation (paper §III-B2, §V-D, P4/8/16-M1): a non-speculative,
// conservative event scheduler emulated in the eFPGA. Processors push new
// events and completion notices into an FPGA-bound FIFO; the scheduler
// maintains the global event queue in fabric BRAM and releases an event
// to a requesting processor only when it is causally safe — its timestamp
// within the lookahead window of every in-flight event.
//
// On every Push the scheduler fetches the event's data record from
// shared memory through its Memory Hub before enqueueing it ("the task
// scheduler fetches the event data from shared memory", §III-B2).
//
// Register layout: 0 = command FIFO (FPGA-bound, shared), 1..N = per-core
// event FIFOs (CPU-bound), N+1 = plain shadow: event-data base address
// (0 disables the fetch).
type PDES struct {
	Cores     int
	Lookahead uint64
}

// PDES register indices.
const (
	PDESCmdReg    = 0
	PDESEventReg0 = 1 // + coreID
)

// PDESDataBaseReg returns the register index of the event-data base for
// an n-core instance.
func PDESDataBaseReg(n int) int { return PDESEventReg0 + n }

// Command opcodes, packed as op | core<<4 | payload<<8.
const (
	PDESOpPush = 1 // payload = event word
	PDESOpDone = 2
	PDESOpReq  = 3
)

// PDESIdle is the sentinel released to processors when the simulation has
// drained.
const PDESIdle = ^uint64(0)

// PDESPackCmd packs a scheduler command; ev is the event word for Push.
func PDESPackCmd(op, core int, ev uint64) uint64 {
	return uint64(op) | uint64(core)<<4 | ev<<8
}

// PDESEvent packs an event: timestamp in the high 32 bits, payload (the
// PHOLD entity/lineage id) in the low 32.
func PDESEvent(ts uint64, payload uint32) uint64 { return ts<<32 | uint64(payload) }

// PDESEventTS extracts the timestamp.
func PDESEventTS(ev uint64) uint64 { return ev >> 32 }

type eventHeap []uint64

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i] < h[j] } // ts-major ordering
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// heapOpCycles models the hardware priority queue's per-operation cost.
const heapOpCycles = 2

// Start spawns the scheduler engine.
func (a PDES) Start(env *efpga.Env) {
	cores := a.Cores
	look := a.Lookahead
	if look == 0 {
		look = 8
	}
	env.Eng.Go("pdes.sched", func(t *sim.Thread) {
		var pq eventHeap
		outstanding := make(map[int]uint64) // core -> released event ts
		var waiting []int                   // cores with pending requests

		minOutstanding := func() (uint64, bool) {
			min, any := uint64(0), false
			for _, ts := range outstanding {
				if !any || ts < min {
					min, any = ts, true
				}
			}
			return min, any
		}
		// serve releases safe events to waiting cores; when the
		// simulation drains it releases the idle sentinel.
		serve := func() {
			for len(waiting) > 0 {
				if len(pq) == 0 {
					if len(outstanding) == 0 {
						for _, c := range waiting {
							env.Regs.PushCPU(t, PDESEventReg0+c, PDESIdle)
						}
						waiting = nil
					}
					return
				}
				ev := pq[0]
				ts := PDESEventTS(ev)
				if minTs, any := minOutstanding(); any && ts > minTs+look {
					return // not yet safe: wait for a Done
				}
				heap.Pop(&pq)
				t.SleepCycles(env.Clk, heapOpCycles)
				c := waiting[0]
				waiting = waiting[1:]
				outstanding[c] = ts
				env.Regs.PushCPU(t, PDESEventReg0+c, ev)
			}
		}

		for {
			cmd := env.Regs.PopFPGA(t, PDESCmdReg)
			op := int(cmd & 0xf)
			c := int(cmd >> 4 & 0xf)
			switch op {
			case PDESOpPush:
				ev := cmd >> 8
				// Fetch the event's data record before enqueueing.
				if base := env.Regs.ReadPlain(PDESDataBaseReg(cores)); base != 0 && len(env.Mem) > 0 {
					addr := base + uint64(uint32(ev)%256)*16
					if _, err := env.Mem[0].LoadLine(t, addr); err != nil {
						continue
					}
				}
				heap.Push(&pq, ev)
				t.SleepCycles(env.Clk, heapOpCycles)
			case PDESOpDone:
				delete(outstanding, c)
			case PDESOpReq:
				waiting = append(waiting, c)
			}
			serve()
		}
	})
	_ = cores
}

// NewPDESBitstream synthesizes the event scheduler.
func NewPDESBitstream(cores int, lookahead uint64) *efpga.Bitstream {
	return Synthesize("PDES", func() efpga.Accelerator { return PDES{Cores: cores, Lookahead: lookahead} })
}
