package accel

import (
	"container/heap"

	"duet/internal/efpga"
	"duet/internal/sim"
	"duet/internal/softcache"
)

// Dijkstra is the shortest-path accelerator (paper §V-D, P1M1,
// fine-grained; HLS-generated in the paper): a full single-source
// shortest-path engine whose priority queue lives in fabric BRAM and
// whose graph/distance traffic goes through a soft cache that exploits
// locality between consecutive invocations. In the FPSoC variant the
// FPGA-side cache is already hardened in the slow domain, so the soft
// cache is omitted and its fabric resources are saved — which is why
// FPSoC wins on ADP for this one benchmark (paper §V-D).
//
// Register layout: 0-3 = plain shadow (rowptr, cols, weights, dist
// bases), 4 = query FIFO (FPGA-bound: source | nodeCount<<32), 5 = done
// FIFO (CPU-bound: settled-node count).
type Dijkstra struct {
	// UseSoftCache enables the soft cache over the hub port.
	UseSoftCache bool
}

// Dijkstra register indices.
const (
	DijRowPtrReg = 0
	DijColsReg   = 1
	DijWeightReg = 2
	DijDistReg   = 3
	DijQueryReg  = 4
	DijDoneReg   = 5
)

// Per-operation datapath costs in eFPGA cycles. The HLS-generated engine
// is pipelined: one edge per initiation interval when the soft cache
// hits, with the cache accesses hidden inside the pipeline.
const (
	dijEdgeII     = 1 // per-edge initiation interval (cols+weight+dist+relax)
	dijHeapCycles = 1 // systolic BRAM priority queue (II=1)
)

type dijMem interface {
	load32(t *sim.Thread, va uint64) (uint32, error)
	store32(t *sim.Thread, va uint64, v uint32) error
}

type dijCached struct{ c *softcache.Cache }

func (d dijCached) load32(t *sim.Thread, va uint64) (uint32, error)  { return d.c.Load32(t, va) }
func (d dijCached) store32(t *sim.Thread, va uint64, v uint32) error { return d.c.Store32(t, va, v) }

type dijHeap []uint64

func (h dijHeap) Len() int            { return len(h) }
func (h dijHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h dijHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *dijHeap) Pop() interface{} {
	old := *h
	v := old[len(old)-1]
	*h = old[:len(old)-1]
	return v
}

// Start spawns the SSSP engine.
func (a Dijkstra) Start(env *efpga.Env) {
	env.Eng.Go("dijkstra", func(t *sim.Thread) {
		// Both variants front the memory path with an in-fabric cache:
		// Duet builds a soft cache from fabric resources; in the FPSoC
		// the re-clocked hard cache plays the same role (so it costs no
		// fabric resources, hence the smaller FPSoC bitstream). Hits are
		// hidden inside the pipelined datapath (HitCycles -1); misses pay
		// the full hub path.
		m := dijCached{softcache.New(env, env.Mem[0], softcache.Config{
			SizeBytes: 8192, Ways: 2, RAWForwarding: true, HitCycles: -1,
		})}
		for {
			q := env.Regs.PopFPGA(t, DijQueryReg)
			src := uint32(q)
			n := uint32(q >> 32)
			rowptr := env.Regs.ReadPlain(DijRowPtrReg)
			cols := env.Regs.ReadPlain(DijColsReg)
			weights := env.Regs.ReadPlain(DijWeightReg)
			dist := env.Regs.ReadPlain(DijDistReg)

			// The visited bitmap and priority queue live in fabric BRAM.
			visited := make([]bool, n)
			pq := dijHeap{uint64(src)} // (dist=0)<<32 | src
			settled := uint64(0)
			failed := false
			for len(pq) > 0 && !failed {
				t.SleepCycles(env.Clk, dijHeapCycles)
				it := heap.Pop(&pq).(uint64)
				d, u := uint32(it>>32), uint32(it)
				if visited[u] {
					continue
				}
				visited[u] = true
				settled++
				s, err1 := m.load32(t, rowptr+uint64(u)*4)
				e, err2 := m.load32(t, rowptr+uint64(u)*4+4)
				if err1 != nil || err2 != nil {
					failed = true
					break
				}
				for i := s; i < e; i++ {
					v, errV := m.load32(t, cols+uint64(i)*4)
					w, errW := m.load32(t, weights+uint64(i)*4)
					if errV != nil || errW != nil {
						failed = true
						break
					}
					t.SleepCycles(env.Clk, dijEdgeII)
					nd := d + w
					dv, errD := m.load32(t, dist+uint64(v)*4)
					if errD != nil {
						failed = true
						break
					}
					if nd < dv {
						if err := m.store32(t, dist+uint64(v)*4, nd); err != nil {
							failed = true
							break
						}
						t.SleepCycles(env.Clk, dijHeapCycles)
						heap.Push(&pq, uint64(nd)<<32|uint64(v))
					}
				}
			}
			if failed {
				env.Regs.PushCPU(t, DijDoneReg, ^uint64(0))
				continue
			}
			env.Regs.PushCPU(t, DijDoneReg, settled)
		}
	})
}

// NewDijkstraBitstream synthesizes the SSSP engine. The FPSoC variant
// (no soft cache) shrinks the design by the cache's resources.
func NewDijkstraBitstream(useSoftCache bool) *efpga.Bitstream {
	d := Designs["Dijkstra"]
	if !useSoftCache {
		// Drop the soft cache: tag/control logic and its BRAM.
		d.LUTLogic -= 300
		d.RAMKb -= 200
		d.RegBits -= 800
	}
	return efpga.Synthesize(d, func() efpga.Accelerator { return Dijkstra{UseSoftCache: useSoftCache} })
}
