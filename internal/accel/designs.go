// Package accel implements the seven soft accelerators of the paper's
// evaluation (§V-D): fine-grained accelerators (Tangent, Popcount, Sort,
// Dijkstra, Barnes-Hut) and hardware-augmentation widgets (the PDES event
// scheduler and the BFS lock-free queues).
//
// Each accelerator couples a behavioural model (a slow-clock-domain
// simulation thread that computes real results through the adapter's
// register and memory interfaces) with a structural Design whose synthesis
// through the cost model in internal/efpga reproduces the paper's Table II
// (Fmax, normalized area, CLB/BRAM utilization). The Designs are
// calibrated against the published table because the paper's Yosys/VTR/
// Catapult flow cannot run here; the Table II harness prints model and
// paper values side by side.
package accel

import "duet/internal/efpga"

// PaperTableII holds the published synthesis results (paper Table II).
type PaperRow struct {
	Name     string
	FmaxMHz  float64
	NormArea float64
	CLBUtil  float64
	BRAMUtil float64
}

// PaperTableII is Table II as published.
var PaperTableII = []PaperRow{
	{"Tangent", 282, 0.47, 0.84, 0},
	{"Popcount", 189, 2.77, 0.83, 0.56},
	{"Sort (32)", 228, 6.29, 0.30, 0.76},
	{"Sort (64)", 234, 8.10, 0.27, 0.92},
	{"Sort (128)", 228, 10.27, 0.27, 0.92},
	{"Dijkstra", 127, 1.94, 0.96, 0.31},
	{"Barnes-Hut", 85, 14.22, 0.99, 0.05},
	{"BFS", 208, 1.24, 0.61, 0.75},
	{"PDES", 126, 2.77, 0.47, 0.56},
}

// Designs maps accelerator names to their structural descriptions. The
// keys match PaperTableII names.
var Designs = map[string]efpga.Design{
	"Tangent": {
		Name: "Tangent", Adders: 4, Comparators: 4, LUTLogic: 150,
		RegBits: 700, PipelineDepth: 5, MinRegions: 7,
	},
	"Popcount": {
		Name: "Popcount", Adders: 20, LUTLogic: 1300,
		RegBits: 3000, RAMKb: 680, PipelineDepth: 7, MemBound: true,
		MinRegions: 38,
	},
	"Sort (32)": {
		Name: "Sort (32)", Comparators: 32, Adders: 8, LUTLogic: 600,
		RegBits: 4000, RAMKb: 2091, PipelineDepth: 5, MemBound: true,
		MinRegions: 86,
	},
	"Sort (64)": {
		Name: "Sort (64)", Comparators: 48, Adders: 8, LUTLogic: 460,
		RegBits: 5000, RAMKb: 3238, PipelineDepth: 5, MemBound: true,
		MinRegions: 110,
	},
	"Sort (128)": {
		Name: "Sort (128)", Comparators: 64, Adders: 12, LUTLogic: 450,
		RegBits: 6000, RAMKb: 4122, PipelineDepth: 5, MemBound: true,
		MinRegions: 140,
	},
	"Dijkstra": {
		Name: "Dijkstra", Adders: 12, Comparators: 10, LUTLogic: 990,
		RegBits: 2500, RAMKb: 268, PipelineDepth: 15,
	},
	"Barnes-Hut": {
		Name: "Barnes-Hut", FPUnits: 16, Adders: 30, LUTLogic: 900,
		RegBits: 20000, RAMKb: 309, PipelineDepth: 24,
	},
	"BFS": {
		Name: "BFS", Adders: 6, Comparators: 6, LUTLogic: 304,
		RegBits: 1200, RAMKb: 408, PipelineDepth: 6, MemBound: true,
		MinRegions: 17,
	},
	"PDES": {
		Name: "PDES", Adders: 10, Comparators: 12, LUTLogic: 495,
		RegBits: 2200, RAMKb: 681, PipelineDepth: 13, MemBound: true,
		MinRegions: 38,
	},
}

// Synthesize runs the cost model for a named design with the given
// accelerator factory.
func Synthesize(name string, factory func() efpga.Accelerator) *efpga.Bitstream {
	d, ok := Designs[name]
	if !ok {
		panic("accel: unknown design " + name)
	}
	return efpga.Synthesize(d, factory)
}

// TableII runs the cost model for every design and returns the reports in
// PaperTableII order.
func TableII() []efpga.Report {
	var out []efpga.Report
	for _, row := range PaperTableII {
		bs := Synthesize(row.Name, func() efpga.Accelerator { return nil })
		out = append(out, bs.Report)
	}
	return out
}
