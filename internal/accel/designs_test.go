package accel

import (
	"math"
	"testing"
)

// TestTableIICalibration checks that the synthesis cost model reproduces
// the paper's Table II within tolerance: Fmax within 10%, normalized area
// within 15%, utilizations within 0.12 absolute.
func TestTableIICalibration(t *testing.T) {
	reports := TableII()
	for i, want := range PaperTableII {
		got := reports[i]
		relErr := func(g, w float64) float64 {
			if w == 0 {
				return math.Abs(g - w)
			}
			return math.Abs(g-w) / w
		}
		if e := relErr(got.FmaxMHz, want.FmaxMHz); e > 0.10 {
			t.Errorf("%s: Fmax model=%.1f paper=%.1f (%.0f%% off)", want.Name, got.FmaxMHz, want.FmaxMHz, e*100)
		}
		if e := relErr(got.NormArea, want.NormArea); e > 0.15 {
			t.Errorf("%s: NormArea model=%.2f paper=%.2f (%.0f%% off)", want.Name, got.NormArea, want.NormArea, e*100)
		}
		if math.Abs(got.CLBUtil-want.CLBUtil) > 0.12 {
			t.Errorf("%s: CLB util model=%.2f paper=%.2f", want.Name, got.CLBUtil, want.CLBUtil)
		}
		if math.Abs(got.BRAMUtil-want.BRAMUtil) > 0.12 {
			t.Errorf("%s: BRAM util model=%.2f paper=%.2f", want.Name, got.BRAMUtil, want.BRAMUtil)
		}
		t.Logf("%-12s model: Fmax=%5.1f norm=%5.2f CLB=%.2f BRAM=%.2f | paper: %5.1f %5.2f %.2f %.2f",
			want.Name, got.FmaxMHz, got.NormArea, got.CLBUtil, got.BRAMUtil,
			want.FmaxMHz, want.NormArea, want.CLBUtil, want.BRAMUtil)
	}
}

// The soft accelerators run at 8-28% of the 1 GHz processor clock (§V-D).
func TestAcceleratorClockRatioBand(t *testing.T) {
	for _, r := range TableII() {
		ratio := r.FmaxMHz / 1000
		if ratio < 0.07 || ratio > 0.30 {
			t.Errorf("%s: Fmax %.0fMHz = %.0f%% of CPU clock, outside the paper's 8-28%% band",
				r.Name, r.FmaxMHz, ratio*100)
		}
	}
}
