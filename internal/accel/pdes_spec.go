package accel

import (
	"container/heap"

	"duet/internal/coherence"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// PDESSpec is the speculative task scheduler the paper sketches as an
// extension (§III-B2): "The task scheduler can support task speculation
// by fetching the cachelines that may be modified by a speculative event
// and storing versioned copies of them in its non-coherent memory. On a
// mis-speculation, the task scheduler rolls back the cachelines to the
// most up-to-date, non-speculative versions, then reschedules the
// mis-speculated events."
//
// Events carry an entity id (the cacheline they will modify). The
// scheduler serializes same-entity events, releases causally-safe events
// normally, and releases unsafe events *speculatively* after stashing the
// entity line's pre-image in the eFPGA scratchpad. A speculative event is
// squashed when a causally earlier same-entity event appears: the
// scheduler writes the pre-image back through its Memory Hub (coherently
// undoing the processor's update), discards the event's buffered children
// and reschedules it.
//
// Register layout matches PDES: 0 = command FIFO, 1..N = per-core event
// FIFOs, N+1 = plain shadow: entity-record base address.
type PDESSpec struct {
	Cores    int
	MinDelay uint64 // lookahead: no child is scheduled sooner than this
	// Speculate false runs the same scheduler with speculation disabled
	// (the conservative ablation baseline).
	Speculate bool
	// EntityOf maps an event payload to its entity id (must match the
	// processors' mapping).
	EntityOf func(payload uint32) uint32
	// Stats, readable after the run.
	Released, SpecReleased, Squashed, Committed uint64
}

type specRec struct {
	ev       uint64
	entity   uint32
	preimage []byte
	children []uint64
}

// Start spawns the speculative scheduler engine.
func (a *PDESSpec) Start(env *efpga.Env) {
	cores := a.Cores
	look := a.MinDelay
	if look == 0 {
		look = 1
	}
	entityOf := a.EntityOf
	if entityOf == nil {
		entityOf = func(p uint32) uint32 { return p % 256 }
	}
	env.Eng.Go("pdes.spec-sched", func(t *sim.Thread) {
		var pq eventHeap
		outstanding := make(map[int]uint64)  // core -> released event
		specByCore := make(map[int]*specRec) // core -> in-flight speculative record
		var pending []*specRec               // processed speculatively, awaiting commit
		var waiting []int

		entityAddr := func(e uint32) uint64 {
			return env.Regs.ReadPlain(PDESDataBaseReg(cores)) + uint64(e)*16
		}
		entityBusy := func(e uint32) bool {
			for _, ev := range outstanding {
				if entityOf(uint32(ev)) == e {
					return true
				}
			}
			for _, r := range pending {
				if r.entity == e {
					return true
				}
			}
			return false
		}
		// minHorizon is the smallest event word that can still appear
		// before rec would commit: queued events, in-flight events'
		// future children, re-schedulable pending records, and buffered
		// children.
		minHorizon := func(self *specRec) (uint64, bool) {
			min, any := uint64(0), false
			consider := func(ev uint64) {
				if !any || ev < min {
					min, any = ev, true
				}
			}
			if len(pq) > 0 {
				consider(pq[0])
			}
			for _, ev := range outstanding {
				consider(PDESEvent(PDESEventTS(ev)+look, 0))
			}
			for _, r := range pending {
				if r == self {
					continue
				}
				consider(r.ev)
				for _, ch := range r.children {
					consider(ch)
				}
			}
			return min, any
		}
		// isSafe uses the STRICT lookahead window (ts < o.ts + look): a
		// non-strict window admits an executed event that a future child
		// can tie on timestamp with a smaller event word, violating the
		// per-entity execution order.
		isSafe := func(ev uint64) bool {
			ts := PDESEventTS(ev)
			for _, o := range outstanding {
				if ts >= PDESEventTS(o)+look {
					return false
				}
			}
			for _, r := range pending {
				// A pending speculative record can still be squashed and
				// re-enter at its own timestamp, then spawn children from
				// r.ts + look upward.
				if r.ev < ev && ts >= PDESEventTS(r.ev)+look {
					return false
				}
			}
			return true
		}

		squash := func(r *specRec) {
			a.Squashed++
			// Roll back the entity line through the Memory Hub: the
			// coherence protocol propagates the undo to every cache.
			addr := entityAddr(r.entity)
			h1 := env.Mem[0].StoreAsync(t, addr, r.preimage[0:8])
			h2 := env.Mem[0].StoreAsync(t, addr+8, r.preimage[8:16])
			env.Mem[0].Await(t, h1)
			env.Mem[0].Await(t, h2)
			heap.Push(&pq, r.ev) // reschedule
			t.SleepCycles(env.Clk, heapOpCycles)
		}

		var evaluate func()
		evaluate = func() {
			// Squash any pending record contradicted by a known earlier
			// same-entity event, then commit records nothing can precede.
			for changed := true; changed; {
				changed = false
				for i := 0; i < len(pending); i++ {
					r := pending[i]
					conflicted := false
					for _, ev := range pq {
						if ev < r.ev && entityOf(uint32(ev)) == r.entity {
							conflicted = true
							break
						}
					}
					if !conflicted {
						for _, o := range pending {
							if o != r && o.ev < r.ev {
								for _, ch := range o.children {
									if ch < r.ev && entityOf(uint32(ch)) == r.entity {
										conflicted = true
										break
									}
								}
							}
						}
					}
					if conflicted {
						pending = append(pending[:i], pending[i+1:]...)
						squash(r)
						changed = true
						break
					}
					if min, any := minHorizon(r); !any || min > r.ev {
						// Nothing can precede it anymore: commit.
						pending = append(pending[:i], pending[i+1:]...)
						a.Committed++
						for _, ch := range r.children {
							heap.Push(&pq, ch)
						}
						changed = true
						break
					}
				}
			}
		}

		serve := func() {
			for len(waiting) > 0 {
				evaluate()
				if len(pq) == 0 {
					if len(outstanding) == 0 && len(pending) == 0 {
						for _, c := range waiting {
							env.Regs.PushCPU(t, PDESEventReg0+c, PDESIdle)
						}
						waiting = nil
					}
					return
				}
				ev := pq[0]
				e := entityOf(uint32(ev))
				if entityBusy(e) {
					return // same-entity serialization
				}
				safe := isSafe(ev)
				if !safe && !a.Speculate {
					return // conservative mode: wait for safety
				}
				heap.Pop(&pq)
				t.SleepCycles(env.Clk, heapOpCycles)
				c := waiting[0]
				waiting = waiting[1:]
				outstanding[c] = ev
				if safe {
					a.Released++
				} else {
					// Speculative release: stash the entity pre-image in
					// the version store BEFORE the processor can see the
					// event — under load a pipelined fetch could otherwise
					// fall behind the processor's store and capture the
					// post-event value, corrupting the rollback.
					a.SpecReleased++
					b, err := env.Mem[0].LoadLine(t, entityAddr(e))
					if err != nil {
						return
					}
					specByCore[c] = &specRec{ev: ev, entity: e, preimage: b}
				}
				env.Regs.PushCPU(t, PDESEventReg0+c, ev)
			}
		}

		for {
			cmd := env.Regs.PopFPGA(t, PDESCmdReg)
			op := int(cmd & 0xf)
			c := int(cmd >> 4 & 0xf)
			switch op {
			case PDESOpPush:
				ev := cmd >> 8
				if r := specByCore[c]; r != nil {
					// Children of a speculative event stay buffered until
					// it commits.
					r.children = append(r.children, ev)
				} else {
					heap.Push(&pq, ev)
					t.SleepCycles(env.Clk, heapOpCycles)
				}
			case PDESOpDone:
				if r := specByCore[c]; r != nil {
					delete(specByCore, c)
					pending = append(pending, r)
				} else {
					a.Committed++
				}
				delete(outstanding, c)
			case PDESOpReq:
				waiting = append(waiting, c)
			}
			serve()
		}
	})
	_ = coherence.AmoAdd // keep the import for the op constants' package
}

// NewPDESSpecBitstream synthesizes the speculative scheduler. It reuses
// the PDES design with extra BRAM for the version store.
func NewPDESSpecBitstream(a *PDESSpec) *efpga.Bitstream {
	d := Designs["PDES"]
	d.Name = "PDES-spec"
	d.RAMKb += 128 // versioned-copy store
	d.LUTLogic += 220
	return efpga.Synthesize(d, func() efpga.Accelerator { return a })
}
