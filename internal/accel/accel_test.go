package accel

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPWLTanErrorBound verifies the paper's accuracy claim for the
// tangent accelerator: maximum error 0.3% versus libm (§V-D), over the
// benchmark's input domain.
func TestPWLTanErrorBound(t *testing.T) {
	f := func(raw uint16) bool {
		x := (float64(raw)/65535.0)*2.8 - 1.4
		got := PWLTan(x)
		want := math.Tan(x)
		rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-6)
		return rel <= 0.003
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestPWLTanPeriodicity: range reduction must make the approximation
// periodic with period pi.
func TestPWLTanPeriodicity(t *testing.T) {
	for _, x := range []float64{0.3, -0.7, 1.1} {
		a := PWLTan(x)
		b := PWLTan(x + math.Pi)
		if math.Abs(a-b) > 1e-9*math.Max(math.Abs(a), 1) {
			t.Fatalf("PWLTan(%v)=%v but PWLTan(x+pi)=%v", x, a, b)
		}
	}
}

// TestBHForceProperties checks Newton's third law and the inverse-square
// falloff of the shared force kernel.
func TestBHForceProperties(t *testing.T) {
	fx1, fy1, fz1 := BHForce(0, 0, 0, 10, 1, 2, 3, 20)
	fx2, fy2, fz2 := BHForce(1, 2, 3, 20, 0, 0, 0, 10)
	if fx1 != -fx2 || fy1 != -fy2 || fz1 != -fz2 {
		t.Fatal("forces not equal and opposite")
	}
	// Doubling the distance quarters the magnitude (softening-negligible
	// at these scales).
	f1, _, _ := BHForce(0, 0, 0, 1e3, 1, 0, 0, 1e3)
	f2, _, _ := BHForce(0, 0, 0, 1e3, 2, 0, 0, 1e3)
	if ratio := f1 / f2; math.Abs(ratio-4) > 0.01 {
		t.Fatalf("inverse-square violated: ratio %v", ratio)
	}
}

// TestNetworkDepth checks the bitonic stage count for the paper's three
// network widths.
func TestNetworkDepth(t *testing.T) {
	want := map[int]int64{32: 15, 64: 21, 128: 28}
	for n, d := range want {
		if got := networkDepth(n); got != d {
			t.Fatalf("networkDepth(%d) = %d, want %d", n, got, d)
		}
	}
}

// TestPDESEventPacking round-trips event words.
func TestPDESEventPacking(t *testing.T) {
	f := func(ts uint32, payload uint32) bool {
		ev := PDESEvent(uint64(ts), payload)
		return PDESEventTS(ev) == uint64(ts) && uint32(ev) == payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Heap ordering is timestamp-major.
	if !(PDESEvent(5, 0xffffffff) < PDESEvent(6, 0)) {
		t.Fatal("event ordering not timestamp-major")
	}
}

// TestBHPackRoundTrip round-trips work items.
func TestBHPackRoundTrip(t *testing.T) {
	w := BHPack(BHOpApprox, 3, 12345)
	if int(w&0xf) != BHOpApprox || int(w>>4&0xfff) != 3 || uint32(w>>16) != 12345 {
		t.Fatalf("pack/unpack mismatch: %#x", w)
	}
}

// TestBFSPackRoundTrip round-trips widget commands.
func TestBFSPackRoundTrip(t *testing.T) {
	w := BFSPackCmd(BFSOpEnq, 7, 99999)
	if int(w&0xf) != BFSOpEnq || int(w>>4&0xfff) != 7 || uint32(w>>16) != 99999 {
		t.Fatalf("pack/unpack mismatch: %#x", w)
	}
}
