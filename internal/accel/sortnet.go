package accel

import (
	"fmt"
	"sort"

	"duet/internal/coherence"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// SortNet is a streaming sorting network for 32/64/128 four-byte integers
// (paper §V-D, P1M2, fine-grained; generated with SPIRAL in the paper).
// It reads the input array through Memory Hub 0 and writes the sorted
// array through Memory Hub 1, so slices of a larger array can be sorted
// back-to-back and merge-sorted by the processor.
//
// Register layout: 0 = source base (plain shadow), 1 = destination base
// (plain shadow), 2 = command FIFO (element count, FPGA-bound), 3 = done
// FIFO (CPU-bound).
type SortNet struct {
	// N is the network width in elements (32, 64 or 128).
	N int
}

// SortNet register indices.
const (
	SortSrcReg  = 0
	SortDstReg  = 1
	SortCmdReg  = 2
	SortDoneReg = 3
)

// networkDepth reports the compare-exchange stage count of a bitonic
// sorting network of width n: log2(n)*(log2(n)+1)/2.
func networkDepth(n int) int64 {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return int64(lg * (lg + 1) / 2)
}

// Start spawns the streaming sorter.
func (s SortNet) Start(env *efpga.Env) {
	env.Eng.Go(fmt.Sprintf("sort%d", s.N), func(t *sim.Thread) {
		in := env.Mem[0]
		out := env.Mem[1]
		for {
			n := int(env.Regs.PopFPGA(t, SortCmdReg))
			if n > s.N {
				n = s.N
			}
			src := env.Regs.ReadPlain(SortSrcReg)
			dst := env.Regs.ReadPlain(SortDstReg)

			// Stream in: one 16-byte line (4 elements) per request,
			// pipelined through the hub window.
			vals := make([]uint32, 0, n)
			var handles []uint64
			for off := 0; off < n*4; off += 16 {
				handles = append(handles, in.LoadAsync(t, src+uint64(off), 16))
			}
			failed := false
			for _, h := range handles {
				b, err := in.Await(t, h)
				if err != nil {
					failed = true
					continue
				}
				for i := 0; i+4 <= len(b) && len(vals) < n; i += 4 {
					vals = append(vals, uint32(coherence.Uint64At(b[i:i+4])))
				}
			}
			if failed {
				env.Regs.PushCPU(t, SortDoneReg, ^uint64(0))
				continue
			}

			// The network itself: elements traverse depth compare-exchange
			// stages, fully pipelined (one line of elements per cycle).
			t.SleepCycles(env.Clk, networkDepth(s.N)+int64(n/4))
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

			// Stream out: 8 bytes (two elements) per store — the hub
			// store-width limit halves the output rate (paper §V-C).
			handles = handles[:0]
			for i := 0; i < n; i += 2 {
				var buf [8]byte
				v := uint64(vals[i])
				if i+1 < n {
					v |= uint64(vals[i+1]) << 32
				}
				for k := range buf {
					buf[k] = byte(v >> (8 * k))
				}
				handles = append(handles, out.StoreAsync(t, dst+uint64(i*4), buf[:]))
			}
			for _, h := range handles {
				if _, err := out.Await(t, h); err != nil {
					failed = true
				}
			}
			if failed {
				env.Regs.PushCPU(t, SortDoneReg, ^uint64(0))
				continue
			}
			env.Regs.PushCPU(t, SortDoneReg, uint64(n))
		}
	})
}

// NewSortBitstream synthesizes a sorting network of width n (32/64/128).
func NewSortBitstream(n int) *efpga.Bitstream {
	name := fmt.Sprintf("Sort (%d)", n)
	return Synthesize(name, func() efpga.Accelerator { return SortNet{N: n} })
}
