package accel

import (
	"math/bits"

	"duet/internal/coherence"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// Popcount counts the ones in a 512-bit vector (paper §V-D, P1M1,
// fine-grained): the accelerator loads the vector from coherent memory
// through one Memory Hub and reduces it with an adder tree.
//
// Register layout: 0 = command FIFO (vector address), 1 = result FIFO.
type Popcount struct{}

// Popcount register indices.
const (
	PopCmdReg    = 0
	PopResultReg = 1
)

// PopVectorBytes is the input vector size (512 bits).
const PopVectorBytes = 64

// popReduceCycles is the adder-tree latency in eFPGA cycles.
const popReduceCycles = 2

// Start spawns the popcount unit.
func (Popcount) Start(env *efpga.Env) {
	env.Eng.Go("popcount", func(t *sim.Thread) {
		port := env.Mem[0]
		for {
			addr := env.Regs.PopFPGA(t, PopCmdReg)
			// Load the four lines of the vector, pipelined.
			var handles []uint64
			for off := 0; off < PopVectorBytes; off += 16 {
				handles = append(handles, port.LoadAsync(t, addr+uint64(off), 16))
			}
			count := 0
			failed := false
			for _, h := range handles {
				b, err := port.Await(t, h)
				if err != nil {
					failed = true
					continue
				}
				for i := 0; i+8 <= len(b); i += 8 {
					count += bits.OnesCount64(coherence.Uint64At(b[i : i+8]))
				}
			}
			t.SleepCycles(env.Clk, popReduceCycles)
			if failed {
				env.Regs.PushCPU(t, PopResultReg, ^uint64(0))
				continue
			}
			env.Regs.PushCPU(t, PopResultReg, uint64(count))
		}
	})
}

// NewPopcountBitstream synthesizes the popcount accelerator.
func NewPopcountBitstream() *efpga.Bitstream {
	return Synthesize("Popcount", func() efpga.Accelerator { return Popcount{} })
}
