package accel

import (
	"math"

	"duet/internal/efpga"
	"duet/internal/sim"
)

// Tangent is the floating-point tangent accelerator (paper §V-D, P1M0,
// fine-grained): a piece-wise linear approximation with a maximum error
// of 0.3% versus libm, synthesized from HLS in the paper. Arguments
// arrive through an FPGA-bound FIFO; results return through a CPU-bound
// FIFO.
//
// Register layout: 0 = argument FIFO (FPGA-bound), 1 = result FIFO
// (CPU-bound).
type Tangent struct{}

// Tangent register indices.
const (
	TanArgReg    = 0
	TanResultReg = 1
)

// tanSegments is the PWL table resolution over one period.
const tanSegments = 2048

// tanPipelineCycles is the datapath latency in eFPGA cycles (range
// reduction, table lookup, multiply-add).
const tanPipelineCycles = 5

// PWLTan evaluates the accelerator's piece-wise linear approximation —
// shared with tests so functional checks compare against the exact same
// function the hardware implements.
func PWLTan(x float64) float64 {
	// Range-reduce into (-pi/2, pi/2).
	r := math.Mod(x+math.Pi/2, math.Pi)
	if r < 0 {
		r += math.Pi
	}
	r -= math.Pi / 2
	// Clamp the asymptotic edges (the hardware saturates there).
	const edge = math.Pi/2 - 0.012
	if r > edge {
		r = edge
	}
	if r < -edge {
		r = -edge
	}
	// PWL interpolation between precomputed knots.
	step := 2 * edge / tanSegments
	k := math.Floor((r + edge) / step)
	if k >= tanSegments {
		k = tanSegments - 1
	}
	x0 := -edge + k*step
	y0, y1 := math.Tan(x0), math.Tan(x0+step)
	frac := (r - x0) / step
	return y0 + (y1-y0)*frac
}

// Start spawns the tangent pipeline.
func (Tangent) Start(env *efpga.Env) {
	env.Eng.Go("tangent", func(t *sim.Thread) {
		for {
			bits := env.Regs.PopFPGA(t, TanArgReg)
			x := math.Float64frombits(bits)
			t.SleepCycles(env.Clk, tanPipelineCycles)
			y := PWLTan(x)
			env.Regs.PushCPU(t, TanResultReg, math.Float64bits(y))
		}
	})
}

// NewTangentBitstream synthesizes the tangent accelerator.
func NewTangentBitstream() *efpga.Bitstream {
	return Synthesize("Tangent", func() efpga.Accelerator { return Tangent{} })
}
