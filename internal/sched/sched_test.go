package sched_test

import (
	"testing"

	"duet"
	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
)

// stubAccel is an inert fabric-side model: scheduler tests exercise
// placement and timing, not accelerator behaviour.
type stubAccel struct{}

func (stubAccel) Start(*efpga.Env) {}

// mkBitstream handcrafts a valid bitstream with the given name, resource
// demand and Fmax (image CRC is kept consistent).
func mkBitstream(name string, res efpga.Resources, fmax float64) *efpga.Bitstream {
	bs := &efpga.Bitstream{
		Name: name, Res: res, FmaxMHz: fmax,
		Image:   make([]byte, 64),
		Factory: func() efpga.Accelerator { return stubAccel{} },
	}
	bs.CRC = bs.Checksum()
	return bs
}

func newServeSystem(t *testing.T, efpgas int, cfg sched.Config) (*duet.System, *sched.Scheduler) {
	t.Helper()
	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, EFPGAs: efpgas, Style: duet.StyleDuet})
	return sys, sys.Scheduler(cfg)
}

func TestEmptyQueueDrain(t *testing.T) {
	sys, sch := newServeSystem(t, 2, sched.Config{Policy: sched.FIFO})
	sys.Run()
	st := sch.Stats()
	if st.Completed != 0 || st.Failed != 0 || st.Rejected != 0 || st.Reconfigs != 0 {
		t.Fatalf("idle scheduler accumulated stats: %+v", st)
	}
	if sch.QueueLen() != 0 {
		t.Fatalf("queue length = %d, want 0", sch.QueueLen())
	}
	if sys.Eng.Pending() != 0 {
		t.Fatalf("engine left %d pending events", sys.Eng.Pending())
	}
}

func TestOversizedBitstreamFailsGracefully(t *testing.T) {
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 1, EFPGAs: 2, Style: duet.StyleDuet,
		FabricCap: efpga.Resources{LUTs: 2000, FFs: 4000, BRAMKb: 64, DSPs: 4},
	})
	sch := sys.Scheduler(sched.Config{Policy: sched.FIFO})
	small := mkBitstream("small", efpga.Resources{LUTs: 100, FFs: 200}, 100)
	big := mkBitstream("big", efpga.Resources{LUTs: 100, FFs: 200, BRAMKb: 1 << 20}, 100)
	for _, bs := range []*efpga.Bitstream{small, big} {
		if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 100, CyclesPerItem: 1}); err != nil {
			t.Fatal(err)
		}
	}
	bigJob := &sched.Job{App: "big", InputSize: 10}
	if sch.Submit(bigJob) {
		t.Fatal("over-capacity job was admitted")
	}
	if bigJob.Err == nil {
		t.Fatal("over-capacity job has no error")
	}
	okJob := &sched.Job{App: "small", InputSize: 10}
	if !sch.Submit(okJob) {
		t.Fatal("fitting job was not admitted")
	}
	sys.Run()
	st := sch.Stats()
	if st.Completed != 1 || st.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 1/1", st.Completed, st.Failed)
	}
	if okJob.Finish == 0 {
		t.Fatal("fitting job never finished")
	}
}

func TestUnknownAppFails(t *testing.T) {
	sys, sch := newServeSystem(t, 1, sched.Config{})
	j := &sched.Job{App: "nonesuch"}
	if sch.Submit(j) || j.Err == nil {
		t.Fatalf("unknown app admitted (err=%v)", j.Err)
	}
	sys.Run()
}

// runAlternating submits A,B then B,A pairs and returns the total
// reconfiguration count under the given policy.
func runAlternating(t *testing.T, policy sched.Policy) sched.Stats {
	t.Helper()
	sys, sch := newServeSystem(t, 2, sched.Config{Policy: policy})
	// Equal-length jobs: neither fabric drains its own app's work early
	// and steals the other's, so reuse-aware placement never reprograms
	// after the initial installs (a work-conserving policy may steal —
	// and reprogram — when its resident app runs dry).
	a := mkBitstream("A", efpga.Resources{LUTs: 100}, 100)
	b := mkBitstream("B", efpga.Resources{LUTs: 100}, 100)
	for _, bs := range []*efpga.Bitstream{a, b} {
		if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 3000, CyclesPerItem: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range []string{"A", "B", "B", "A", "B", "A", "B", "A"} {
		if !sch.Submit(&sched.Job{App: app}) {
			t.Fatalf("job %q not admitted", app)
		}
	}
	sys.Run()
	st := sch.Stats()
	if st.Completed != 8 {
		t.Fatalf("policy %v completed %d/8 jobs", policy, st.Completed)
	}
	if sch.QueueLen() != 0 {
		t.Fatalf("policy %v left %d queued jobs", policy, sch.QueueLen())
	}
	return st
}

func TestAffinityAvoidsRedundantReprogramming(t *testing.T) {
	aff := runAlternating(t, sched.Affinity)
	fifo := runAlternating(t, sched.FIFO)
	// Two fabrics, two apps: reuse-aware placement programs each fabric
	// exactly once; naive FIFO flips bitstreams back and forth.
	if aff.Reconfigs != 2 {
		t.Fatalf("affinity reconfigs = %d, want 2", aff.Reconfigs)
	}
	if fifo.Reconfigs <= 2 {
		t.Fatalf("fifo reconfigs = %d, want > 2", fifo.Reconfigs)
	}
}

func TestBoundedQueueRejects(t *testing.T) {
	sys, sch := newServeSystem(t, 1, sched.Config{Policy: sched.FIFO, QueueCap: 2})
	a := mkBitstream("A", efpga.Resources{LUTs: 100}, 100)
	if err := sch.RegisterApp(sched.App{BS: a, FixedCycles: 1000, CyclesPerItem: 1}); err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 5; i++ {
		if sch.Submit(&sched.Job{App: "A"}) {
			admitted++
		}
	}
	// One job dispatches immediately, two wait in the bounded queue, the
	// remaining two bounce.
	if admitted != 3 || sch.Rejected != 2 {
		t.Fatalf("admitted=%d rejected=%d, want 3/2", admitted, sch.Rejected)
	}
	sys.Run()
	if st := sch.Stats(); st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
}

func TestStatsAccounting(t *testing.T) {
	sys, sch := newServeSystem(t, 1, sched.Config{Policy: sched.SJF})
	a := mkBitstream("A", efpga.Resources{LUTs: 100}, 100)
	if err := sch.RegisterApp(sched.App{BS: a, FixedCycles: 1000, CyclesPerItem: 2}); err != nil {
		t.Fatal(err)
	}
	j := &sched.Job{App: "A", InputSize: 500, Deadline: 1} // 1ps: must miss
	sch.Submit(j)
	sys.Run()
	st := sch.Stats()
	if st.Completed != 1 || st.DeadlineMisses != 1 {
		t.Fatalf("completed=%d misses=%d, want 1/1", st.Completed, st.DeadlineMisses)
	}
	if !j.Reprogrammed || j.Wait() != 0 || j.Service() <= 0 || j.Sojourn() != j.Finish-j.Submit {
		t.Fatalf("job accounting off: %+v", j)
	}
	if len(st.Fabrics) != 1 || st.Fabrics[0].Jobs != 1 || st.Fabrics[0].Reconfigs != 1 {
		t.Fatalf("fabric stats off: %+v", st.Fabrics)
	}
	if st.Fabrics[0].Utilization <= 0 || st.Fabrics[0].Utilization > 1 {
		t.Fatalf("utilization = %v", st.Fabrics[0].Utilization)
	}
}

func TestPolicyNames(t *testing.T) {
	for p := sched.Policy(0); p < sched.NumPolicies; p++ {
		got, err := sched.PolicyByName(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if sched.Policy(99).String() != "unknown" {
		t.Fatalf("out-of-range policy prints %q", sched.Policy(99).String())
	}
	if _, err := sched.PolicyByName("nonesuch"); err == nil {
		t.Fatal("bogus policy name parsed")
	}
}

// TestHeterogeneousCapacityPlacement: an admitted job must wait for a
// fabric that fits its bitstream, never be killed on a too-small one.
func TestHeterogeneousCapacityPlacement(t *testing.T) {
	sys, sch := newServeSystem(t, 2, sched.Config{Policy: sched.FIFO})
	sys.Fabrics[1].Cap = efpga.Resources{LUTs: 50, FFs: 50} // fabric 1 too small
	big := mkBitstream("big", efpga.Resources{LUTs: 1000}, 100)
	if err := sch.RegisterApp(sched.App{BS: big, FixedCycles: 1000, CyclesPerItem: 1}); err != nil {
		t.Fatal(err)
	}
	j1, j2 := &sched.Job{App: "big"}, &sched.Job{App: "big"}
	if !sch.Submit(j1) || !sch.Submit(j2) {
		t.Fatal("fitting jobs not admitted")
	}
	sys.Run()
	st := sch.Stats()
	if st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 2/0", st.Completed, st.Failed)
	}
	if st.Fabrics[0].Jobs != 2 || st.Fabrics[1].Jobs != 0 {
		t.Fatalf("placement = %d/%d jobs, want both on fabric 0", st.Fabrics[0].Jobs, st.Fabrics[1].Jobs)
	}
	if j2.Wait() <= 0 {
		t.Fatal("second job should have waited for the only fitting fabric")
	}
}

// TestProgrammingFailureRestoresHubs: a failed reprogram must restore the
// pre-quiesce hub state and leave the scheduler serviceable.
func TestProgrammingFailureRestoresHubs(t *testing.T) {
	sys, sch := newServeSystem(t, 1, sched.Config{Policy: sched.FIFO})
	good := mkBitstream("good", efpga.Resources{LUTs: 100}, 100)
	bad := mkBitstream("bad", efpga.Resources{LUTs: 100}, 100)
	for _, bs := range []*efpga.Bitstream{good, bad} {
		if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 1000, CyclesPerItem: 1}); err != nil {
			t.Fatal(err)
		}
	}
	bad.Image[0] ^= 0xff // stale CRC: Configure must reject it

	sch.Submit(&sched.Job{App: "good"}) // serves; scheduler grants the hub
	failing := &sched.Job{App: "bad"}
	sch.Submit(failing)
	sys.Run()
	if failing.Err == nil {
		t.Fatal("corrupted bitstream job did not fail")
	}
	// The failed job's fabric occupancy must be inside the reported
	// makespan: utilization stays a fraction.
	if u := sch.Stats().Fabrics[0].Utilization; u <= 0 || u > 1 {
		t.Fatalf("utilization = %v with a failure-tailed run", u)
	}
	if !sys.Adapter.Hub(0).Enabled() {
		t.Fatal("memory hub left quiesced after programming failure")
	}
	// The worker must still be serviceable.
	again := &sched.Job{App: "good"}
	sch.Submit(again)
	sys.Run()
	st := sch.Stats()
	if st.Completed != 2 || st.Failed != 1 || again.Finish == 0 {
		t.Fatalf("completed=%d failed=%d finish=%v after recovery", st.Completed, st.Failed, again.Finish)
	}
}

// TestPredictAndWorkers: the exported catalog model must match the
// occupancy SJF ranks by — FixedCycles + n*CyclesPerItem fabric cycles at
// the bitstream's Fmax — and reject unknown apps; Workers reports the
// eFPGA pool size the cluster front end plans against.
func TestPredictAndWorkers(t *testing.T) {
	sys, sch := newServeSystem(t, 3, sched.Config{Policy: sched.SJF})
	_ = sys
	if sch.Workers() != 3 {
		t.Fatalf("workers = %d, want 3", sch.Workers())
	}
	bs := mkBitstream("model", efpga.Resources{LUTs: 10}, 100) // 100 MHz -> 10ns period
	if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 50, CyclesPerItem: 2}); err != nil {
		t.Fatal(err)
	}
	est, ok := sch.Predict("model", 25)
	if !ok {
		t.Fatal("registered app not predictable")
	}
	// (50 + 25*2) cycles * 10ns = 1us.
	if want := sim.Time(1 * sim.US); est != want {
		t.Fatalf("predicted occupancy = %v, want %v", est, want)
	}
	if _, ok := sch.Predict("phantom", 1); ok {
		t.Fatal("unknown app predicted")
	}
}

// TestOnResultDrain: the result hook must fire once per completed or
// failed job at its finish instant, in completion order, and never for
// queue-capacity rejections.
func TestOnResultDrain(t *testing.T) {
	sys, sch := newServeSystem(t, 1, sched.Config{Policy: sched.FIFO, QueueCap: 1})
	bs := mkBitstream("drain", efpga.Resources{LUTs: 10}, 100)
	if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 1000, CyclesPerItem: 1}); err != nil {
		t.Fatal(err)
	}
	var drained []*sched.Job
	var finishes []sim.Time
	sch.OnResult = func(j *sched.Job) {
		drained = append(drained, j)
		finishes = append(finishes, sys.Eng.Now())
	}
	sch.Submit(&sched.Job{App: "drain", InputSize: 4})   // served immediately
	sch.Submit(&sched.Job{App: "phantom", InputSize: 4}) // fails at submit
	sch.Submit(&sched.Job{App: "drain", InputSize: 4})   // queued
	sch.Submit(&sched.Job{App: "drain", InputSize: 4})   // bounced: queue full
	sys.Run()
	if len(drained) != 3 {
		t.Fatalf("hook fired %d times, want 3 (2 completed + 1 failed, rejection silent)", len(drained))
	}
	if sch.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", sch.Rejected)
	}
	for i, j := range drained {
		if j.Finish != finishes[i] {
			t.Fatalf("hook %d fired at %v, job finished at %v", i, finishes[i], j.Finish)
		}
		if i > 0 && finishes[i] < finishes[i-1] {
			t.Fatalf("hook out of completion order: %v after %v", finishes[i], finishes[i-1])
		}
	}
	if len(sch.Completed) != 2 || len(sch.Failed) != 1 {
		t.Fatalf("ledgers: %d completed, %d failed", len(sch.Completed), len(sch.Failed))
	}
}
