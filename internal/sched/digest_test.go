package sched

import (
	"math/rand"
	"slices"
	"testing"

	"duet/internal/sim"
)

// TestDigestQuantileErrorBound: against exact nearest-rank percentiles of
// several deterministic distributions, the digest must return a value q
// with exact <= q <= exact*(1+DigestRelError) — the documented bound.
func TestDigestQuantileErrorBound(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) sim.Time{
		"uniform":     func(r *rand.Rand) sim.Time { return sim.Time(r.Int63n(5_000_000)) },
		"exponential": func(r *rand.Rand) sim.Time { return sim.Time(r.ExpFloat64() * 250_000) },
		"bimodal": func(r *rand.Rand) sim.Time {
			if r.Intn(10) == 0 {
				return sim.Time(10_000_000 + r.Int63n(1_000_000)) // slow tail
			}
			return sim.Time(20_000 + r.Int63n(5_000))
		},
		"tiny": func(r *rand.Rand) sim.Time { return sim.Time(r.Int63n(100)) }, // exact region
	}
	for name, draw := range distributions {
		r := rand.New(rand.NewSource(7))
		var d Digest
		samples := make([]sim.Time, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw(r)
			samples = append(samples, v)
			d.Add(v)
		}
		slices.Sort(samples)
		for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
			exact := PercentileSorted(samples, p)
			got := d.Quantile(p)
			if got < exact {
				t.Errorf("%s p%v: digest %v below exact %v", name, p, got, exact)
			}
			bound := exact + sim.Time(float64(exact)*DigestRelError) + 1
			if got > bound {
				t.Errorf("%s p%v: digest %v exceeds exact %v by more than the %.2f%% bound",
					name, p, got, exact, 100*DigestRelError)
			}
		}
	}
}

// TestDigestMergePartitionInvariance: a digest fed a stream must equal
// the merge of digests fed any partition of it, in any merge order —
// the property the cluster's per-shard merge rests on.
func TestDigestMergePartitionInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var whole Digest
	parts := make([]Digest, 4)
	for i := 0; i < 10000; i++ {
		v := sim.Time(r.ExpFloat64() * 300_000)
		whole.Add(v)
		parts[r.Intn(4)].Add(v)
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}, {2, 3, 1, 0}} {
		var merged Digest
		for _, i := range order {
			merged.Merge(&parts[i])
		}
		if merged.Count() != whole.Count() {
			t.Fatalf("order %v: merged count %d != %d", order, merged.Count(), whole.Count())
		}
		for _, p := range []float64{50, 99} {
			if merged.Quantile(p) != whole.Quantile(p) {
				t.Fatalf("order %v: merged p%v %v != whole %v", order, p, merged.Quantile(p), whole.Quantile(p))
			}
		}
	}
}

// TestDigestFixedMemory: the bucket table must stay within its
// documented bound no matter how many samples stream through, including
// extreme values.
func TestDigestFixedMemory(t *testing.T) {
	var d Digest
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200000; i++ {
		d.Add(sim.Time(r.Int63()))
	}
	d.Add(sim.Time(1<<63 - 1))
	d.Add(0)
	d.Add(-5) // clamped, not panicking
	if len(d.buckets) > DigestMaxBuckets {
		t.Fatalf("bucket table grew to %d entries, bound is %d", len(d.buckets), DigestMaxBuckets)
	}
	if d.Count() != 200003 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.neg != 1 {
		t.Fatalf("negative clamp count = %d, want 1", d.neg)
	}
}

// TestDigestSmallValuesExact: the unit-width region must reproduce exact
// nearest-rank percentiles with zero error.
func TestDigestSmallValuesExact(t *testing.T) {
	var d Digest
	samples := []sim.Time{3, 9, 9, 20, 41, 77, 100, 127}
	for _, v := range samples {
		d.Add(v)
	}
	sorted := slices.Clone(samples)
	slices.Sort(sorted)
	for _, p := range []float64{0, 10, 50, 90, 100} {
		if got, want := d.Quantile(p), PercentileSorted(sorted, p); got != want {
			t.Fatalf("p%v = %v, want exact %v", p, got, want)
		}
	}
}

// TestDigestSingleSample: with one sample every percentile names that
// sample — exactly in the unit region, within the documented relative
// bound above it (rank clamping must not underflow at p=0).
func TestDigestSingleSample(t *testing.T) {
	for _, v := range []sim.Time{0, 1, 127, 128, 1_000_000} {
		var d Digest
		d.Add(v)
		for _, p := range []float64{0, 1, 50, 99, 100} {
			got := d.Quantile(p)
			if got < v {
				t.Fatalf("sample %v p%v = %v, below the sample", v, p, got)
			}
			if bound := v + sim.Time(float64(v)*DigestRelError) + 1; got > bound {
				t.Fatalf("sample %v p%v = %v, beyond the %.2f%% bound", v, p, got, 100*DigestRelError)
			}
			if v < digestSubCount && got != v {
				t.Fatalf("sample %v (exact region) p%v = %v", v, p, got)
			}
		}
	}
}

// TestDigestMergeDisjointRanges: merging digests whose samples occupy
// disjoint value ranges must place low quantiles in the low range and
// high quantiles in the high range with exact rank accounting — the
// shape of a cluster merge where one shard is saturated and another
// idle.
func TestDigestMergeDisjointRanges(t *testing.T) {
	var low, high Digest
	for i := 0; i < 90; i++ {
		low.Add(sim.Time(i)) // exact region: 0..89
	}
	for i := 0; i < 10; i++ {
		high.Add(sim.Time(10_000_000 + i*1000)) // a far-away tail
	}
	var merged Digest
	merged.Merge(&low)
	merged.Merge(&high)
	if merged.Count() != 100 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	// Ranks 1..90 are the low range; nearest-rank p50 is rank 50 = 49.
	if got := merged.Quantile(50); got != 49 {
		t.Fatalf("p50 = %v, want 49", got)
	}
	if got := merged.Quantile(90); got != 89 {
		t.Fatalf("p90 = %v, want 89 (the top of the low range)", got)
	}
	// Rank 91+ crosses into the tail: p91 and p99 must land there.
	for _, p := range []float64{91, 99, 100} {
		if got := merged.Quantile(p); got < 10_000_000 {
			t.Fatalf("p%v = %v, want the high range", p, got)
		}
	}
	// The gap between the ranges contains no mass: no quantile may
	// fabricate a value strictly between the two clusters.
	for p := 1.0; p <= 100; p++ {
		got := merged.Quantile(p)
		if got > 89 && got < 10_000_000 {
			t.Fatalf("p%v = %v, inside the empty gap", p, got)
		}
	}
}

func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Quantile(50) != 0 || d.Count() != 0 {
		t.Fatal("empty digest not zero-valued")
	}
	d.Merge(nil) // must not panic
	var other Digest
	d.Merge(&other)
	if d.Count() != 0 {
		t.Fatal("merging empties changed the count")
	}
}

// TestDigestIndexRoundTrip: every bucket's representative value must map
// back to that bucket (the upper edge is inside the bucket), and indices
// must be monotone in the value.
func TestDigestIndexRoundTrip(t *testing.T) {
	for i := 0; i < DigestMaxBuckets; i++ {
		v := digestValue(i)
		if got := digestIndex(int64(v)); got != i {
			t.Fatalf("bucket %d: upper edge %d maps to bucket %d", i, v, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 127, 128, 129, 255, 256, 1000, 1 << 20, 1<<62 + 12345, 1<<63 - 1} {
		i := digestIndex(v)
		if i < prev {
			t.Fatalf("index not monotone at %d", v)
		}
		prev = i
	}
}

func TestStatsModeNames(t *testing.T) {
	for m := StatsMode(0); m < NumStatsModes; m++ {
		got, err := StatsModeByName(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v err %v", m, got, err)
		}
	}
	if _, err := StatsModeByName("nonesuch"); err == nil {
		t.Fatal("bogus stats mode parsed")
	}
}
