package sched

import (
	"fmt"
	"math"
	"slices"

	"duet/internal/sim"
)

// StatsMode selects how the scheduler aggregates per-job outcomes.
type StatsMode int

// Stats modes.
const (
	// StatsExact retains every completed/failed job in the Completed and
	// Failed ledgers and computes exact nearest-rank percentiles over the
	// full sojourn population — O(jobs) memory, the default.
	StatsExact StatsMode = iota
	// StatsStreaming folds each job into O(1) running aggregates at its
	// finish instant — counters, sums, makespan, and a fixed-memory
	// Digest for sojourn quantiles — and retains no per-job state. P50
	// and P99 then carry the digest's documented relative value error
	// (DigestRelError, <0.8%); every other Stats field stays exact.
	// The Completed and Failed ledgers remain empty; per-job harvesting
	// still works through OnResult.
	StatsStreaming
	NumStatsModes
)

func (m StatsMode) String() string {
	names := [...]string{"exact", "stream"}
	if m < 0 || int(m) >= len(names) {
		return "unknown"
	}
	return names[m]
}

// StatsModeByName parses a stats mode as printed by String.
func StatsModeByName(name string) (StatsMode, error) {
	for m := StatsMode(0); m < NumStatsModes; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown stats mode %q", name)
}

// aggregate is the streaming-mode replacement for the per-job ledgers:
// everything Stats needs, folded in at finish time in O(1) space.
type aggregate struct {
	completed, failed int
	deadlineMisses    int
	makespan          sim.Time
	waitSum           sim.Time
	serviceSum        sim.Time
	sojourns          Digest
}

func (g *aggregate) finish(j *Job) {
	if j.Finish > g.makespan {
		g.makespan = j.Finish
	}
	if j.Err != nil {
		g.failed++
		return
	}
	g.completed++
	g.waitSum += j.Wait()
	g.serviceSum += j.Service()
	if j.MissedDeadline() {
		g.deadlineMisses++
	}
	g.sojourns.Add(j.Sojourn())
}

// FabricStats summarizes one eFPGA's share of a scheduler run.
type FabricStats struct {
	Name        string
	Jobs        int
	Reconfigs   int
	Busy        sim.Time
	Utilization float64 // Busy / Makespan
}

// Stats summarizes a scheduler run.
type Stats struct {
	Completed, Failed, Rejected int
	Reconfigs                   int
	DeadlineMisses              int

	// Fault outcomes (zero on fault-free runs; see faults.go). TimedOut
	// and Unavailable are sub-classes of Failed — queued jobs dropped
	// past their deadline, and jobs killed or refused by shard outages
	// or full quarantine. Wedges counts wedged reprogram attempts,
	// Retries the victim re-queues they triggered, and Quarantined the
	// workers currently lost to them. Repairs counts quarantined workers
	// returned to service, ProbationFails the probationary re-reprograms
	// that wedged again, and QuarantineTime the total simulated time
	// repaired workers spent out of service.
	TimedOut       int
	Unavailable    int
	Wedges         int
	Retries        int
	Quarantined    int
	Repairs        int
	ProbationFails int
	QuarantineTime sim.Time

	Makespan        sim.Time // latest completion instant
	ThroughputPerMS float64  // completed jobs per simulated millisecond

	P50, P99    sim.Time // sojourn (submit-to-finish) latency percentiles
	MeanWait    sim.Time // mean admission-queue wait
	MeanService sim.Time // mean fabric occupancy

	Fabrics []FabricStats
}

// SojournDigest exposes the streaming-mode sojourn digest together with
// the exact wait/service sums it was accumulated alongside, so a front
// end (e.g. internal/cluster) can harvest per-shard statistics without
// re-accumulating a parallel copy per job. ok is false in exact mode.
// The digest is the scheduler's own: callers merge it or read quantiles,
// but must not Add to it.
func (s *Scheduler) SojournDigest() (d *Digest, waitSum, serviceSum sim.Time, ok bool) {
	if s.agg == nil {
		return nil, 0, 0, false
	}
	return &s.agg.sojourns, s.agg.waitSum, s.agg.serviceSum, true
}

// Stats computes the run summary at the current instant.
func (s *Scheduler) Stats() Stats {
	var st Stats
	if s.agg != nil {
		// Streaming mode: everything was folded in at finish time.
		g := s.agg
		st = Stats{
			Completed:      g.completed,
			Failed:         g.failed,
			Rejected:       s.Rejected,
			DeadlineMisses: g.deadlineMisses,
			Makespan:       g.makespan,
			P50:            g.sojourns.Quantile(50),
			P99:            g.sojourns.Quantile(99),
		}
		if g.completed > 0 {
			st.MeanWait = g.waitSum / sim.Time(g.completed)
			st.MeanService = g.serviceSum / sim.Time(g.completed)
			if st.Makespan > 0 {
				st.ThroughputPerMS = float64(g.completed) / (float64(st.Makespan) / float64(sim.MS))
			}
		}
		return s.fabricStats(st)
	}
	st = Stats{
		Completed: len(s.Completed),
		Failed:    len(s.Failed),
		Rejected:  s.Rejected,
	}
	sojourns := make([]sim.Time, 0, len(s.Completed))
	var waits, services sim.Time
	for _, j := range s.Completed {
		sojourns = append(sojourns, j.Sojourn())
		waits += j.Wait()
		services += j.Service()
		if j.Finish > st.Makespan {
			st.Makespan = j.Finish
		}
		if j.MissedDeadline() {
			st.DeadlineMisses++
		}
	}
	// Failed jobs occupy their fabric too (quiesce + failed stream), so
	// the makespan — the utilization and throughput denominator — must
	// cover their finish instants as well.
	for _, j := range s.Failed {
		if j.Finish > st.Makespan {
			st.Makespan = j.Finish
		}
	}
	if n := len(s.Completed); n > 0 {
		st.MeanWait = waits / sim.Time(n)
		st.MeanService = services / sim.Time(n)
		if st.Makespan > 0 {
			st.ThroughputPerMS = float64(n) / (float64(st.Makespan) / float64(sim.MS))
		}
	}
	// Sort the population once and take both ranks from it, instead of
	// copying + sorting per Percentile call.
	slices.Sort(sojourns)
	st.P50 = PercentileSorted(sojourns, 50)
	st.P99 = PercentileSorted(sojourns, 99)
	return s.fabricStats(st)
}

// fabricStats fills the per-worker tail of a run summary, plus the
// scheduler-resident fault counters (shared by both aggregation modes).
func (s *Scheduler) fabricStats(st Stats) Stats {
	st.TimedOut = s.timedOut
	st.Unavailable = s.unavailable
	st.Wedges = s.wedges
	st.Retries = s.retries
	st.Quarantined = s.nQuarantined
	st.Repairs = s.repairs
	st.ProbationFails = s.probationFails
	st.QuarantineTime = s.quarantineTime
	for _, w := range s.workers {
		fs := FabricStats{
			Name: w.be.Name(), Jobs: w.jobs, Reconfigs: w.reconfigs, Busy: w.busyTotal,
		}
		if st.Makespan > 0 {
			fs.Utilization = float64(w.busyTotal) / float64(st.Makespan)
		}
		st.Reconfigs += w.reconfigs
		st.Fabrics = append(st.Fabrics, fs)
	}
	return st
}

// Percentile returns the p-th percentile (nearest-rank) of durs; zero
// when durs is empty. durs is not modified. Callers taking several
// percentiles of one population should sort once with slices.Sort and
// use PercentileSorted instead.
func Percentile(durs []sim.Time, p float64) sim.Time {
	sorted := append([]sim.Time(nil), durs...)
	slices.Sort(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted returns the p-th percentile (nearest-rank) of an
// ascending-sorted population; zero when it is empty.
func PercentileSorted(sorted []sim.Time, p float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
