package sched

import (
	"math"
	"sort"

	"duet/internal/sim"
)

// FabricStats summarizes one eFPGA's share of a scheduler run.
type FabricStats struct {
	Name        string
	Jobs        int
	Reconfigs   int
	Busy        sim.Time
	Utilization float64 // Busy / Makespan
}

// Stats summarizes a scheduler run.
type Stats struct {
	Completed, Failed, Rejected int
	Reconfigs                   int
	DeadlineMisses              int

	Makespan        sim.Time // latest completion instant
	ThroughputPerMS float64  // completed jobs per simulated millisecond

	P50, P99    sim.Time // sojourn (submit-to-finish) latency percentiles
	MeanWait    sim.Time // mean admission-queue wait
	MeanService sim.Time // mean fabric occupancy

	Fabrics []FabricStats
}

// Stats computes the run summary at the current instant.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Completed: len(s.Completed),
		Failed:    len(s.Failed),
		Rejected:  s.Rejected,
	}
	sojourns := make([]sim.Time, 0, len(s.Completed))
	var waits, services sim.Time
	for _, j := range s.Completed {
		sojourns = append(sojourns, j.Sojourn())
		waits += j.Wait()
		services += j.Service()
		if j.Finish > st.Makespan {
			st.Makespan = j.Finish
		}
		if j.MissedDeadline() {
			st.DeadlineMisses++
		}
	}
	// Failed jobs occupy their fabric too (quiesce + failed stream), so
	// the makespan — the utilization and throughput denominator — must
	// cover their finish instants as well.
	for _, j := range s.Failed {
		if j.Finish > st.Makespan {
			st.Makespan = j.Finish
		}
	}
	if n := len(s.Completed); n > 0 {
		st.MeanWait = waits / sim.Time(n)
		st.MeanService = services / sim.Time(n)
		if st.Makespan > 0 {
			st.ThroughputPerMS = float64(n) / (float64(st.Makespan) / float64(sim.MS))
		}
	}
	st.P50 = Percentile(sojourns, 50)
	st.P99 = Percentile(sojourns, 99)
	for _, w := range s.workers {
		fs := FabricStats{
			Name: w.fab.Name, Jobs: w.jobs, Reconfigs: w.reconfigs, Busy: w.busyTotal,
		}
		if st.Makespan > 0 {
			fs.Utilization = float64(w.busyTotal) / float64(st.Makespan)
		}
		st.Reconfigs += w.reconfigs
		st.Fabrics = append(st.Fabrics, fs)
	}
	return st
}

// Percentile returns the p-th percentile (nearest-rank) of durs; zero
// when durs is empty. durs is not modified.
func Percentile(durs []sim.Time, p float64) sim.Time {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
