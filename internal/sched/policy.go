package sched

import (
	"encoding/json"
	"fmt"
)

// Policy selects how queued jobs are matched with idle eFPGAs.
type Policy int

// Scheduling policies.
const (
	// FIFO dispatches strictly in arrival order onto the lowest-numbered
	// idle fabric that fits the job, ignoring residency; the head of the
	// line is never overtaken.
	FIFO Policy = iota
	// SJF dispatches the queued job with the smallest predicted service
	// time (ties broken by higher priority, then arrival order),
	// preferring a fabric where its bitstream is already resident.
	SJF
	// Affinity is reuse-aware: it first dispatches jobs whose bitstream
	// is resident on an idle fabric (avoiding reprogramming entirely),
	// falling back to FIFO order when no resident match exists.
	Affinity
	NumPolicies
)

func (p Policy) String() string {
	names := [...]string{"fifo", "sjf", "affinity"}
	if p < 0 || int(p) >= len(names) {
		return "unknown"
	}
	return names[p]
}

// MarshalJSON encodes the policy as its String name, so machine-readable
// study output stays self-describing and stable across enum reorderings.
func (p Policy) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// PolicyByName parses a policy name as printed by String.
func PolicyByName(name string) (Policy, error) {
	for p := Policy(0); p < NumPolicies; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q", name)
}

// pick applies the configured policy: it returns the chosen idle worker
// and the queue index of the job to place, or (nil, -1) when nothing is
// placeable — the queue is empty, every worker is busy, or (with
// heterogeneous fabric capacities) every fabric the candidate fits is
// busy. Jobs are only ever paired with fabrics that can hold their
// bitstream, so an admitted job waits for a fitting fabric instead of
// being killed on a too-small one.
func (s *Scheduler) pick() (*worker, int) {
	if len(s.queue) == 0 {
		return nil, -1
	}
	var idle []*worker
	for _, w := range s.workers {
		if !w.busy {
			idle = append(idle, w)
		}
	}
	if len(idle) == 0 {
		return nil, -1
	}
	fitting := func(j *Job) []*worker {
		app := s.apps[j.App]
		var ws []*worker
		for _, w := range idle {
			if app.BS.Res.Fits(w.fab.Cap) {
				ws = append(ws, w)
			}
		}
		return ws
	}
	switch s.cfg.Policy {
	case SJF:
		best := -1
		var bestWs []*worker
		for i, j := range s.queue {
			ws := fitting(j)
			if len(ws) == 0 {
				continue
			}
			if best == -1 {
				best, bestWs = i, ws
				continue
			}
			di, db := s.predict(j), s.predict(s.queue[best])
			if di < db || (di == db && j.Priority > s.queue[best].Priority) {
				best, bestWs = i, ws
			}
		}
		if best == -1 {
			return nil, -1
		}
		return preferResident(bestWs, s.queue[best].App), best
	case Affinity:
		for i, j := range s.queue {
			for _, w := range idle {
				if w.resident() == j.App {
					return w, i
				}
			}
		}
		for i, j := range s.queue {
			if ws := fitting(j); len(ws) > 0 {
				return ws[0], i
			}
		}
		return nil, -1
	default: // FIFO: strict arrival order — the head waits for a fitting
		// fabric to free rather than being overtaken.
		ws := fitting(s.queue[0])
		if len(ws) == 0 {
			return nil, -1
		}
		return ws[0], 0
	}
}

// preferResident picks the first idle worker whose fabric already holds
// the named bitstream, defaulting to the lowest-numbered idle worker.
func preferResident(idle []*worker, app string) *worker {
	for _, w := range idle {
		if w.resident() == app {
			return w
		}
	}
	return idle[0]
}
