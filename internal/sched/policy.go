package sched

import (
	"encoding/json"
	"fmt"

	"duet/internal/sim"
)

// Policy selects how queued jobs are matched with idle workers.
type Policy int

// Scheduling policies.
const (
	// FIFO dispatches strictly in arrival order onto the lowest-numbered
	// idle worker that fits the job, ignoring residency; the head of the
	// line is never overtaken.
	FIFO Policy = iota
	// SJF dispatches the queued job with the smallest predicted service
	// time (ties broken by higher priority, then arrival order),
	// preferring a worker where its bitstream is already resident.
	SJF
	// Affinity is reuse-aware: it first dispatches jobs whose bitstream
	// is resident on an idle worker (avoiding reprogramming entirely),
	// falling back to FIFO order when no resident match exists.
	Affinity
	// Hybrid is the spill policy for mixed fabric/CPU pools: fabric
	// workers are placed reuse-aware (affinity first, then FIFO), and
	// when no fabric is free a job spills to an idle CPU soft-path
	// worker — but only if the modeled CPU completion beats waiting for
	// the earliest fabric (jobs whose bitstream fits no fabric at all
	// always take the soft path). Without CPU workers it degenerates to
	// a work-conserving affinity placement.
	Hybrid
	NumPolicies
)

func (p Policy) String() string {
	names := [...]string{"fifo", "sjf", "affinity", "hybrid"}
	if p < 0 || int(p) >= len(names) {
		return "unknown"
	}
	return names[p]
}

// MarshalJSON encodes the policy as its String name, so machine-readable
// study output stays self-describing and stable across enum reorderings.
func (p Policy) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// PolicyByName parses a policy name as printed by String.
func PolicyByName(name string) (Policy, error) {
	for p := Policy(0); p < NumPolicies; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q", name)
}

// pick applies the configured policy: it returns the chosen idle worker
// and the queue index of the job to place, or (nil, -1) when nothing is
// placeable — the queue is empty, every worker is busy, or (with
// heterogeneous capacities) every worker the candidate fits is busy.
// Jobs are only ever paired with workers that can hold their bitstream,
// so an admitted job waits for a fitting worker instead of being killed
// on a too-small one.
func (s *Scheduler) pick(now sim.Time) (*worker, int) {
	if len(s.queue) == 0 {
		return nil, -1
	}
	idle := s.idleScratch[:0]
	for _, w := range s.workers {
		if !w.busy {
			idle = append(idle, w)
		}
	}
	s.idleScratch = idle
	if len(idle) == 0 {
		return nil, -1
	}
	// firstFit returns the lowest-numbered idle policy-usable worker
	// that fits the job's bitstream; preferResident upgrades to a
	// resident match. Both skip CPU soft-path workers whenever fabric
	// workers exist — spill capacity belongs to the Hybrid policy alone.
	firstFit := func(j *Job) *worker {
		app := j.app
		for _, w := range idle {
			if !s.usable(w) {
				continue
			}
			if app.BS.Res.Fits(w.be.Capacity()) {
				return w
			}
		}
		return nil
	}
	preferResident := func(j *Job) *worker {
		app := j.app
		var first *worker
		for _, w := range idle {
			if !s.usable(w) || !app.BS.Res.Fits(w.be.Capacity()) {
				continue
			}
			if w.be.Resident() == j.App {
				return w
			}
			if first == nil {
				first = w
			}
		}
		return first
	}
	switch s.cfg.Policy {
	case SJF:
		best := -1
		for i, j := range s.queue {
			if firstFit(j) == nil {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			di, db := s.predict(j), s.predict(s.queue[best])
			if di < db || (di == db && j.Priority > s.queue[best].Priority) {
				best = i
			}
		}
		if best == -1 {
			return nil, -1
		}
		return preferResident(s.queue[best]), best
	case Affinity:
		for i, j := range s.queue {
			for _, w := range idle {
				if s.usable(w) && w.be.Resident() == j.App {
					return w, i
				}
			}
		}
		for i, j := range s.queue {
			if w := firstFit(j); w != nil {
				return w, i
			}
		}
		return nil, -1
	case Hybrid:
		return s.pickHybrid(idle, now)
	default: // FIFO: strict arrival order — the head waits for a fitting
		// worker to free rather than being overtaken.
		w := firstFit(s.queue[0])
		if w == nil {
			return nil, -1
		}
		return w, 0
	}
}

// pickHybrid is the Hybrid policy body: reuse-aware fabric placement
// first, then a modeled spill decision onto idle CPU soft-path workers.
func (s *Scheduler) pickHybrid(idle []*worker, now sim.Time) (*worker, int) {
	// Pass 1: bitstream affinity over idle fabric-class workers.
	for i, j := range s.queue {
		for _, w := range idle {
			if !w.quarantined && w.be.Kind() != BackendCPU && w.be.Resident() == j.App {
				return w, i
			}
		}
	}
	// Pass 2: FIFO order onto the lowest-numbered fitting idle fabric.
	for i, j := range s.queue {
		app := j.app
		for _, w := range idle {
			if !w.quarantined && w.be.Kind() != BackendCPU && app.BS.Res.Fits(w.be.Capacity()) {
				return w, i
			}
		}
	}
	// Pass 3: spill. Every fabric that could run a queued job is busy
	// (or too small), so walk the queue in order over a virtual copy of
	// the fabrics' modeled free times, charging each job ahead onto its
	// earliest fabric: a job spills to an idle CPU worker when the soft
	// path's completion beats its modeled fabric completion — including
	// the queue wait behind the jobs ahead of it — or when no fabric
	// fits its bitstream at all.
	var cpu *worker
	for _, w := range idle {
		if !w.quarantined && w.be.Kind() == BackendCPU {
			cpu = w
			break
		}
	}
	if cpu == nil {
		return nil, -1
	}
	free := s.estScratch[:0]
	for _, w := range s.workers {
		t := w.estFree
		if !w.busy || t < now {
			t = now
		}
		free = append(free, t)
	}
	s.estScratch = free
	for i, j := range s.queue {
		app := j.app
		best := -1
		for wi, w := range s.workers {
			// Quarantined fabrics never free up again: they are not a
			// wait-for option, so the spill decision ignores them.
			if w.quarantined || w.be.Kind() == BackendCPU || !app.BS.Res.Fits(w.be.Capacity()) {
				continue
			}
			if best == -1 || free[wi] < free[best] {
				best = wi
			}
		}
		cpuFinish := now + cpu.be.ServiceTime(app, j.InputSize)
		if best == -1 || cpuFinish < free[best]+s.predict(j) {
			return cpu, i
		}
		// Job i is modeled to wait for that fabric: charge it there so
		// later queue entries see the contention ahead of them.
		free[best] += s.predict(j)
	}
	return nil, -1
}
