package sched

import (
	"encoding/json"
	"fmt"

	"duet/internal/efpga"
	"duet/internal/sim"
)

// Timeline is the scheduler's scheduling surface: the current simulated
// time, plus deferred-callback scheduling for the repair process (see
// faults.go — a quarantined worker's return to service is the one
// scheduler-owned timeline event). sim.Engine implements it;
// internal/model substitutes a lightweight analytic timeline for
// engine-free fast-model runs.
type Timeline interface {
	Now() sim.Time
	// AfterArg schedules fn(arg) d after the current instant. Same-instant
	// callbacks run in scheduling order on every implementation, which is
	// what keeps cycle-backed and model-backed runs byte-identical.
	AfterArg(d sim.Time, fn func(any), arg any)
}

// BackendKind names an execution-backend implementation class.
type BackendKind int

// Backend kinds.
const (
	// BackendCycle is the cycle-level core.Adapter + efpga.Fabric
	// pairing: reprogramming runs through the adapter's real quiesce →
	// programming-engine → resume flow.
	BackendCycle BackendKind = iota
	// BackendModel is the calibrated analytic fast model
	// (internal/model): the same App service/reprogram charges without a
	// Dolly instance behind them.
	BackendModel
	// BackendCPU is the processor soft path: jobs execute as software at
	// a calibrated slowdown, with no bitstream and no reconfiguration.
	// CPU workers are spill capacity: whenever fabric-class workers
	// exist, only the Hybrid policy places on them (a pool with no
	// fabric workers serves under every policy).
	BackendCPU
	NumBackendKinds
)

func (k BackendKind) String() string {
	names := [...]string{"cycle", "model", "cpu"}
	if k < 0 || int(k) >= len(names) {
		return "unknown"
	}
	return names[k]
}

// MarshalJSON encodes the kind as its String name for machine-readable
// study output.
func (k BackendKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// BackendKindByName parses a backend kind as printed by String.
func BackendKindByName(name string) (BackendKind, error) {
	for k := BackendKind(0); k < NumBackendKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown backend kind %q", name)
}

// Backend is one execution engine behind a scheduler worker. The
// scheduler owns admission, policy and accounting; a backend owns how a
// placed job actually executes — the cycle-level adapter path, the
// calibrated analytic fast model, or the CPU soft path — including any
// reconfiguration the placement implies.
type Backend interface {
	// Kind reports the implementation class (placement policies use it
	// to tell spill-only CPU workers from fabric-class workers).
	Kind() BackendKind
	// Name is the display name used in per-worker statistics.
	Name() string
	// Capacity is the reconfigurable resource budget jobs are checked
	// against. Software backends report an unbounded budget.
	Capacity() efpga.Resources
	// Register adds an application bitstream to the backend's image
	// library. Registration is idempotent per bitstream.
	Register(bs *efpga.Bitstream) error
	// Resident reports the name of the installed bitstream ("" when
	// unprogrammed, or for backends with no configuration state).
	Resident() string
	// ServiceTime is the backend's analytic occupancy for one job of app
	// with the given input size — what placement estimates charge.
	ServiceTime(app *App, inputSize int) sim.Time
	// ReconfigCost estimates the cost of making app resident at this
	// instant: zero when it already is (or when the backend has no
	// configuration state).
	ReconfigCost(app *App) sim.Time
	// Bind attaches the backend to its scheduler: the post-configuration
	// settle time and the completion callback Dispatch must invoke
	// exactly once per job at its finish instant. Called once, before
	// any Dispatch.
	Bind(settleCycles int64, done func(*Job, error))
	// Dispatch occupies the backend with job j of app: it models any
	// reconfiguration (setting j.Reprogrammed) and the service time,
	// then invokes the bound done callback at the completion instant.
	Dispatch(j *Job, app *App)
}

// Scrubber is the optional backend surface the repair process uses for
// its probationary re-reprogram: Scrub discards the backend's resident
// configuration state, so the first placement after a repair pays the
// full reconfiguration cost (and can wedge again — a flapping fabric).
// Backends with no configuration state simply don't implement it.
type Scrubber interface {
	Scrub()
}

// unboundedCap is the capacity software backends report: every bitstream
// "fits" a processor.
const unboundedInt = int(^uint(0) >> 1)

// UnboundedResources is the capacity reported by backends with no
// reconfigurable fabric (the CPU soft path): any bitstream fits.
var UnboundedResources = efpga.Resources{LUTs: unboundedInt, FFs: unboundedInt, BRAMKb: unboundedInt, DSPs: unboundedInt}
