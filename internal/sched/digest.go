package sched

import (
	"math"
	"math/bits"

	"duet/internal/sim"
)

// Digest is a fixed-memory streaming quantile estimator over sim.Time
// samples — the serve-scale replacement for retaining every job's sojourn
// (O(jobs) memory, re-sorted per percentile query).
//
// Layout: a log-spaced histogram in the HDR style. Values below 2^sub
// (sub = DigestSubBits) land in exact unit-width buckets; larger values
// are bucketed by their top sub+1 bits, i.e. 2^sub sub-buckets per
// power-of-two octave. Bucket indexing is pure integer arithmetic
// (leading-zero count + shifts), so it is deterministic across platforms
// — no floating-point logs whose rounding could differ.
//
// Accuracy: Quantile returns the upper edge of the bucket holding the
// nearest-rank sample, so for the true nearest-rank value v it returns
// q with v <= q < v * (1 + DigestRelError) — a guaranteed relative
// value error below 2^-DigestSubBits (~0.78%), exact for v < 2^sub.
// Rank semantics are exact: bucket counts are exact, only the value
// within a bucket is quantized.
//
// Memory: the bucket table is bounded by DigestMaxBuckets counts
// (~57 KB fully touched) independent of sample count, and is allocated
// lazily up to the highest touched index — a digest over microsecond-to-
// millisecond latencies stays in the low kilobytes.
//
// Merging: Merge adds bucket counts elementwise. Because addition
// commutes, a merged digest is identical whatever the merge order, and a
// digest fed a stream equals the merge of digests fed any partition of
// that stream — the property that makes per-shard digests exact to
// combine, unlike P² markers (not mergeable) or GK summaries (merging
// inflates their rank error).
//
// The zero Digest is ready to use.
type Digest struct {
	count   uint64 // total samples, including negatives clamped to 0
	neg     uint64 // samples below zero (clamped into bucket 0)
	buckets []uint64
}

// Digest accuracy/size constants.
const (
	// DigestSubBits is the sub-bucket resolution: 2^DigestSubBits
	// sub-buckets per octave.
	DigestSubBits  = 7
	digestSubCount = 1 << DigestSubBits

	// DigestMaxBuckets bounds the bucket table: 63-DigestSubBits full
	// octaves above the exact region covers every positive int64.
	DigestMaxBuckets = digestSubCount * (64 - DigestSubBits)
)

// DigestRelError is the documented relative value error bound of
// Quantile: 2^-DigestSubBits.
var DigestRelError = math.Ldexp(1, -DigestSubBits)

// digestIndex maps a non-negative value to its bucket.
func digestIndex(v int64) int {
	if v < digestSubCount {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // >= DigestSubBits
	shift := exp - DigestSubBits
	sub := int(v>>shift) - digestSubCount // [0, digestSubCount)
	return (shift+1)*digestSubCount + sub
}

// digestValue returns the inclusive upper edge of bucket i — the value
// Quantile reports for samples landing in it.
func digestValue(i int) sim.Time {
	if i < digestSubCount {
		return sim.Time(i)
	}
	shift := i/digestSubCount - 1
	sub := int64(i%digestSubCount + digestSubCount)
	return sim.Time((sub+1)<<shift - 1)
}

// Add records one sample. Negative samples count toward ranks but are
// clamped to the zero bucket (sojourns are non-negative by construction;
// the clamp keeps a corrupted sample from corrupting the table).
func (d *Digest) Add(v sim.Time) {
	d.count++
	if v < 0 {
		d.neg++
		v = 0
	}
	i := digestIndex(int64(v))
	if i >= len(d.buckets) {
		// append (not a fresh make+copy) so a gradually climbing
		// high-water bucket grows the table with amortized doubling.
		d.buckets = append(d.buckets, make([]uint64, i+1-len(d.buckets))...)
	}
	d.buckets[i]++
}

// Count reports the number of recorded samples.
func (d *Digest) Count() uint64 { return d.count }

// MemoryBytes reports the digest's bucket-table footprint — the number
// streaming-mode scale tests pin flat while the job count grows. It is
// bounded by 8*DigestMaxBuckets regardless of sample count.
func (d *Digest) MemoryBytes() int { return 8 * len(d.buckets) }

// Merge folds o into d elementwise. Merge order never changes the result.
func (d *Digest) Merge(o *Digest) {
	if o == nil {
		return
	}
	d.count += o.count
	d.neg += o.neg
	if len(o.buckets) > len(d.buckets) {
		grown := make([]uint64, len(o.buckets))
		copy(grown, d.buckets)
		d.buckets = grown
	}
	for i, c := range o.buckets {
		d.buckets[i] += c
	}
}

// Quantile returns the nearest-rank p-th percentile with the documented
// relative value error; zero when the digest is empty. It mirrors
// Percentile's rank convention so exact and streaming stats agree on
// which sample a percentile names.
func (d *Digest) Quantile(p float64) sim.Time {
	if d.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(d.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > d.count {
		rank = d.count
	}
	var cum uint64
	for i, c := range d.buckets {
		cum += c
		if cum >= rank {
			return digestValue(i)
		}
	}
	return digestValue(len(d.buckets) - 1) // unreachable when counts are consistent
}
