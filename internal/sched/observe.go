package sched

import "duet/internal/sim"

// Observer receives the scheduler's lifecycle events — the seam the
// windowed flight recorder (internal/telemetry) hangs off. The hooks
// fire from the shared Scheduler code paths, below the Backend seam, so
// every execution backend (cycle-level adapter, analytic model, CPU soft
// path) is instrumented identically: a cycle-backed and a model-backed
// run of the same stream produce the same observation sequence.
//
// All hooks fire synchronously at the scheduler's current simulated
// instant; an unset observer costs one nil check per event. Observers
// are scoped to one scheduler and are never called concurrently (a
// scheduler runs on one timeline).
type Observer interface {
	// ObserveArrival fires once per Submit offer — admitted, rejected,
	// or failed at submit — before any dispatch the offer triggers.
	// queueDepth is the admission-queue depth including the offered job
	// when it was admitted: the queue's high-water point.
	ObserveArrival(at sim.Time, queueDepth int)
	// ObserveReject fires when an offer bounced off the full admission
	// queue (after its ObserveArrival).
	ObserveReject(at sim.Time)
	// ObserveDispatch fires at each job's dispatch instant. kind is the
	// chosen worker's backend class (a BackendCPU placement is a
	// soft-path spill); reprogrammed reports whether the placement
	// triggered a reconfiguration, which backends flag synchronously
	// during Dispatch (see CycleBackend.Dispatch).
	ObserveDispatch(at sim.Time, worker int, kind BackendKind, reprogrammed bool)
	// ObserveRetire fires at each job's finish instant, once per
	// completed or failed job (j.Err distinguishes; jobs bounced by the
	// admission queue never started and are not retired).
	ObserveRetire(j *Job)
	// ObserveBusy reports one worker occupancy interval [from, to),
	// fired at the release instant to. Zero-length intervals (a job
	// failing at its dispatch instant) are not reported.
	ObserveBusy(worker int, from, to sim.Time)
	// ObserveWedge fires when a reprogram wedges (the ProgWedged-class
	// fault outcome), at the detection instant, before the victim's
	// retry or retirement.
	ObserveWedge(at sim.Time, worker int)
	// ObserveRetry fires when a wedge victim is re-queued within its
	// retry budget (after its ObserveWedge; the job is not retired).
	ObserveRetry(at sim.Time)
	// ObserveTimeout fires when a queued job is dropped past its
	// deadline under FaultConfig.EnforceDeadlines (before its
	// ObserveRetire, whose job carries an ErrTimedOut error).
	ObserveTimeout(at sim.Time)
	// ObserveQuarantine fires once per worker removed from service by a
	// wedged reprogram (after the wedge's ObserveWedge).
	ObserveQuarantine(at sim.Time, worker int)
	// ObserveRepair fires when a scheduled repair returns a quarantined
	// worker to service on probation; quarantined is the time the worker
	// spent out of service.
	ObserveRepair(at sim.Time, worker int, quarantined sim.Time)
	// ObserveProbationFail fires when a repaired worker's probationary
	// re-reprogram wedges again (before the re-quarantine's
	// ObserveQuarantine).
	ObserveProbationFail(at sim.Time, worker int)
}

// SetObserver attaches an observer to the scheduler (nil detaches). Set
// it before the first Submit: events before attachment are simply not
// observed.
func (s *Scheduler) SetObserver(o Observer) { s.obs = o }

// WorkerKinds reports each worker's backend kind in worker-index order —
// what an observer needs to tell fabric-class busy time from soft-path
// busy time.
func (s *Scheduler) WorkerKinds() []BackendKind {
	ks := make([]BackendKind, len(s.workers))
	for i, w := range s.workers {
		ks[i] = w.be.Kind()
	}
	return ks
}

// observeArrival, observeReject and observeBusy keep the hot paths to
// one branch when no observer is attached.
func (s *Scheduler) observeArrival(at sim.Time, depth int) {
	if s.obs != nil {
		s.obs.ObserveArrival(at, depth)
	}
}

func (s *Scheduler) observeReject(at sim.Time) {
	if s.obs != nil {
		s.obs.ObserveReject(at)
	}
}

func (s *Scheduler) observeBusy(w *worker, now sim.Time) {
	if s.obs != nil && now > w.busyAt {
		s.obs.ObserveBusy(w.id, w.busyAt, now)
	}
}

func (s *Scheduler) observeWedge(at sim.Time, worker int) {
	if s.obs != nil {
		s.obs.ObserveWedge(at, worker)
	}
}

func (s *Scheduler) observeRetry(at sim.Time) {
	if s.obs != nil {
		s.obs.ObserveRetry(at)
	}
}

func (s *Scheduler) observeTimeout(at sim.Time) {
	if s.obs != nil {
		s.obs.ObserveTimeout(at)
	}
}

func (s *Scheduler) observeQuarantine(at sim.Time, worker int) {
	if s.obs != nil {
		s.obs.ObserveQuarantine(at, worker)
	}
}

func (s *Scheduler) observeRepair(at sim.Time, worker int, quarantined sim.Time) {
	if s.obs != nil {
		s.obs.ObserveRepair(at, worker, quarantined)
	}
}

func (s *Scheduler) observeProbationFail(at sim.Time, worker int) {
	if s.obs != nil {
		s.obs.ObserveProbationFail(at, worker)
	}
}
