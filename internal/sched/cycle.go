package sched

import (
	"fmt"

	"duet/internal/core"
	"duet/internal/efpga"
	"duet/internal/params"
	"duet/internal/sim"
)

// CycleBackend is the cycle-level execution backend: one eFPGA (fabric)
// behind its Duet Adapter. Dispatch drives the driver's real
// reconfiguration flow — quiesce the Memory Hubs, run the programming
// engine (the same streaming + integrity model behind RegProgram),
// re-enable the hubs, wait out the configuration settle — and then
// occupies the fabric for the job's modeled service time on the fabric
// clock. This is the original scheduler path, extracted behind the
// Backend interface; its event sequence is unchanged.
type CycleBackend struct {
	eng *sim.Engine
	ad  *core.Adapter
	fab *efpga.Fabric

	settle int64
	done   func(*Job, error)
	// finishFn is the one service-completion callback: Dispatch
	// schedules it with the job as the event argument, so the resident
	// fast path allocates no closure.
	finishFn func(any)

	// scrubbed marks the configuration state discarded by a repair's
	// probationary Scrub: Resident reports unprogrammed until the next
	// reprogramming dispatch clears it. The adapter's actual resident
	// image is untouched — the point is only that the next placement
	// prices and pays a full reconfiguration, exactly as the analytic
	// model backend does after its own Scrub.
	scrubbed bool
}

// NewCycleBackend wraps an adapter/fabric pair as an execution backend.
func NewCycleBackend(eng *sim.Engine, ad *core.Adapter, fab *efpga.Fabric) *CycleBackend {
	b := &CycleBackend{eng: eng, ad: ad, fab: fab}
	b.finishFn = func(a any) { b.done(a.(*Job), nil) }
	return b
}

// CycleBackends wraps each adapter/fabric pair (one backend per pair).
func CycleBackends(eng *sim.Engine, adapters []*core.Adapter, fabrics []*efpga.Fabric) []Backend {
	if len(adapters) != len(fabrics) {
		panic("sched: adapter/fabric count mismatch")
	}
	bes := make([]Backend, len(adapters))
	for i := range adapters {
		bes[i] = NewCycleBackend(eng, adapters[i], fabrics[i])
	}
	return bes
}

// Kind reports BackendCycle.
func (b *CycleBackend) Kind() BackendKind { return BackendCycle }

// Name is the fabric's name.
func (b *CycleBackend) Name() string { return b.fab.Name }

// Capacity is the fabric's reconfigurable resource budget.
func (b *CycleBackend) Capacity() efpga.Resources { return b.fab.Cap }

// Register adds the bitstream to the fabric's image library.
func (b *CycleBackend) Register(bs *efpga.Bitstream) error {
	_, err := b.fab.Register(bs)
	return err
}

// Resident reports the fabric's installed bitstream name ("" while the
// configuration state is scrubbed pending a probationary re-reprogram).
func (b *CycleBackend) Resident() string {
	if b.scrubbed {
		return ""
	}
	if bs := b.ad.Resident(); bs != nil {
		return bs.Name
	}
	return ""
}

// Scrub discards the backend's resident configuration state (the repair
// process's probationary re-reprogram; see sched.Scrubber).
func (b *CycleBackend) Scrub() { b.scrubbed = true }

// Bind attaches the scheduler's settle time and completion callback.
func (b *CycleBackend) Bind(settleCycles int64, done func(*Job, error)) {
	b.settle = settleCycles
	b.done = done
}

// ServiceTime is the catalog's analytic occupancy: App cycles at the
// bitstream's Fmax.
func (b *CycleBackend) ServiceTime(app *App, inputSize int) sim.Time {
	return sim.Time(app.Cycles(inputSize)) * app.Period()
}

// ReconfigCost is the analytic cost of making app resident now: two hub
// feature-switch rounds, the programming engine's streaming time, and
// the configuration settle — zero when app is already resident. The
// formula mirrors Dispatch's event chain term for term (a unit test
// pins the equivalence), which is also what makes internal/model's
// analytic backend match this one exactly.
func (b *CycleBackend) ReconfigCost(app *App) sim.Time {
	if b.Resident() == app.BS.Name {
		return 0
	}
	period := b.fab.Clock().Period
	if app.BS.FmaxMHz > 0 {
		period = app.Period()
	}
	return ReprogramCost(app, len(b.ad.Hubs()), b.ad.FastClock().Period, b.settle, period)
}

// ReprogramCost is the driver-flow timing model shared by every backend:
// one hub feature-switch round trip per Memory Hub before and after
// programming, the programming engine streaming one configuration word
// per fast cycle, and settleCycles of the (post-Fmax-switch) fabric
// clock. settlePeriod is the fabric clock period the settle is charged
// at — the app's period when it sets an Fmax, the fabric's current
// period otherwise.
func ReprogramCost(app *App, hubs int, fastPeriod sim.Time, settleCycles int64, settlePeriod sim.Time) sim.Time {
	toggles := int64(hubs)
	if toggles == 0 {
		toggles = 1
	}
	streamCycles := int64(len(app.BS.Image)+params.LineBytes-1) / params.LineBytes
	return sim.Time(2*toggles*HubToggleCycles+streamCycles)*fastPeriod +
		sim.Time(settleCycles)*settlePeriod
}

// Dispatch starts job j on the backend: directly when the needed
// bitstream is resident, otherwise through the quiesce → program →
// resume → settle flow. j.Reprogrammed must be set before Dispatch
// returns — not inside the scheduled event chain — because the
// scheduler's dispatch observer reads it at the dispatch instant (every
// Backend honors this; internal/model mirrors it).
func (b *CycleBackend) Dispatch(j *Job, app *App) {
	if b.Resident() == j.App {
		b.serve(j, app)
		return
	}
	if !app.BS.Res.Fits(b.fab.Cap) {
		// pick never pairs a job with a too-small fabric; this guards a
		// future policy bug from wedging the worker.
		b.done(j, fmt.Errorf("sched: bitstream %q exceeds fabric %q capacity", j.App, b.fab.Name))
		return
	}
	id, ok := b.fab.IDByName(j.App)
	if !ok {
		b.done(j, fmt.Errorf("sched: bitstream %q not registered on fabric %q", j.App, b.fab.Name))
		return
	}
	j.Reprogrammed = true
	b.scrubbed = false // the reprogram re-establishes real resident state
	fast := b.ad.FastClock()
	toggles := int64(len(b.ad.Hubs()))
	if toggles == 0 {
		toggles = 1
	}
	// Quiesce: one feature-switch round trip per hub, then the
	// programming engine (streaming + integrity check), then hub
	// re-enable, then the configuration settle time.
	saved := b.ad.QuiesceHubs()
	b.eng.After(fast.Cycles(toggles*HubToggleCycles), func() {
		b.ad.ProgramAsync(id, func(err error) {
			if err != nil {
				// Restore the pre-quiesce hub state before surfacing the
				// failure, so the adapter is not left quiesced forever.
				b.ad.ResumeHubs(saved)
				b.done(j, err)
				return
			}
			// The scheduler owns the adapter while serving: the incoming
			// tenant is granted every Memory Hub.
			b.ad.ResumeHubs(^uint64(0))
			b.eng.After(fast.Cycles(toggles*HubToggleCycles), func() {
				if app.BS.FmaxMHz > 0 {
					b.fab.SetFreqMHz(app.BS.FmaxMHz)
				}
				b.eng.After(b.fab.Clock().Cycles(b.settle), func() {
					b.serve(j, app)
				})
			})
		})
	})
}

// serve occupies the fabric for the job's modeled service time.
func (b *CycleBackend) serve(j *Job, app *App) {
	if app.BS.FmaxMHz > 0 && b.fab.Clock().FreqMHz() != app.BS.FmaxMHz {
		b.fab.SetFreqMHz(app.BS.FmaxMHz)
	}
	b.eng.AfterArg(b.fab.Clock().Cycles(app.Cycles(j.InputSize)), b.finishFn, j)
}
