// Package sched is a multi-tenant accelerator-as-a-service runtime over
// a pool of execution backends. It accepts a stream of jobs — each
// naming a registered application bitstream, an input size, and a
// deadline and priority — admits them through a bounded queue, and
// places them across every configured worker. A worker is any Backend
// implementation: the cycle-level eFPGA path (core.Adapter +
// efpga.Fabric, where placement reuses an already-resident bitstream
// when possible and otherwise pays the real quiesce → program → resume
// driver flow), the calibrated analytic fast model (internal/model), or
// the CPU soft-path fallback that hybrid placement spills to when the
// fabrics saturate.
//
// The scheduling policy — FIFO, shortest-job-first, affinity
// (reuse-aware), or hybrid (affinity + CPU spill) — is selected at
// construction; see policy.go. Per-job wait/service times and
// per-worker utilization and reconfiguration counts are collected
// throughout; see stats.go.
package sched

import (
	"errors"
	"fmt"

	"duet/internal/efpga"
	"duet/internal/sim"
)

// Timing model of the driver's reconfiguration flow, beyond the
// programming engine's own streaming cost (which is charged by
// Adapter.ProgramAsync):
const (
	// HubToggleCycles charges one MMIO round trip on the fast clock per
	// Memory Hub feature-switch write (quiesce before programming,
	// re-enable after). Exported so analytic backends charge the same
	// driver-flow model as the cycle-level path.
	HubToggleCycles = 32
	// defaultSettleCycles is the default Config.SettleCycles: fabric-clock
	// cycles after configuration for partial-region reset, configuration
	// scrubbing, and clock-generator relock before the accelerator can
	// accept work.
	defaultSettleCycles = 1024
	// defaultQueueCap is the default admission-queue bound.
	defaultQueueCap = 64
)

// App couples a synthesized bitstream with the scheduler's analytic
// service-time model: a job over app a with input size n occupies the
// fabric for FixedCycles + n*CyclesPerItem cycles of the fabric clock,
// run at the bitstream's Fmax.
type App struct {
	BS            *efpga.Bitstream
	FixedCycles   int64
	CyclesPerItem int64

	period sim.Time // service clock period, derived from BS.FmaxMHz
}

// Cycles is the modeled fabric occupancy of one job with input size n —
// the single source of truth for both SJF's estimate and the charged
// service time.
func (a *App) Cycles(n int) int64 { return a.FixedCycles + a.CyclesPerItem*int64(n) }

// Period is the service clock period derived from the bitstream's Fmax
// (valid after Finalize / RegisterApp).
func (a *App) Period() sim.Time { return a.period }

// Finalize applies the catalog defaults: a minimum per-item cost and the
// service period derived from the bitstream's Fmax (100 MHz fallback).
// RegisterApp calls it; analytic backends building their own catalogs
// (internal/model) call it too, so every backend prices one App
// identically.
func (a *App) Finalize() {
	if a.CyclesPerItem <= 0 {
		a.CyclesPerItem = 1
	}
	if a.BS.FmaxMHz > 0 {
		a.period = sim.Time(1e6/a.BS.FmaxMHz + 0.5)
	} else {
		a.period = sim.Time(1e4) // 100 MHz fallback
	}
}

// Job is one unit of work submitted to the scheduler. The caller fills
// the request fields; the scheduler fills the outcome fields.
type Job struct {
	ID        int
	App       string   // bitstream name (RegisterApp key)
	InputSize int      // work items
	Priority  int      // higher is more urgent (SJF tie-break)
	Deadline  sim.Time // absolute completion deadline; 0 = none

	// Outcome.
	Submit       sim.Time
	Start        sim.Time // dispatch instant (end of queue wait)
	Finish       sim.Time
	Fabric       int // worker index the job occupied
	Reprogrammed bool
	Retries      int // re-queues after wedged reprograms (see faults.go)
	Err          error

	// app caches the catalog entry resolved at submission, so queue
	// scans and dispatch never re-hash the name. Scoped to one
	// scheduler: jobs are single-use.
	app *App
}

// Wait is the time spent in the admission queue.
func (j *Job) Wait() sim.Time { return j.Start - j.Submit }

// Service is the time spent occupying a worker (including any
// reprogramming the job triggered).
func (j *Job) Service() sim.Time { return j.Finish - j.Start }

// Sojourn is the submit-to-finish latency.
func (j *Job) Sojourn() sim.Time { return j.Finish - j.Submit }

// MissedDeadline reports whether the job finished past its deadline.
func (j *Job) MissedDeadline() bool { return j.Deadline > 0 && j.Finish > j.Deadline }

// Config selects the scheduling policy and admission bound.
type Config struct {
	Policy   Policy
	QueueCap int // bounded admission queue; defaults to 64
	// SettleCycles is the post-configuration settle time in fabric-clock
	// cycles (defaults to 1024; see the timing-model constants above).
	SettleCycles int64
	// Stats selects the aggregation mode: StatsExact (default) retains
	// per-job ledgers for exact percentiles; StatsStreaming folds jobs
	// into fixed-memory aggregates for serve-scale runs (see stats.go).
	Stats StatsMode
	// Faults configures retry budgets, deadline enforcement and shard
	// outage windows; the zero value adds no behavior (see faults.go).
	Faults FaultConfig
}

// worker tracks one execution backend and its accumulated stats.
type worker struct {
	id          int
	be          Backend
	busy        bool
	quarantined bool // wedged mid-reprogram; out of service until repaired
	// Repair state (see faults.go): repairPending is true while a
	// scheduled repair event is in flight for this quarantine;
	// quarantinedAt stamps the quarantine instant for time-in-quarantine
	// accounting; wedgeCount is the lifetime wedge total driving the
	// repair backoff; probation is set by a repair and cleared by the
	// first successful completion (or the next wedge).
	repairPending bool
	probation     bool
	wedgeCount    int
	quarantinedAt sim.Time
	busyAt        sim.Time
	// estFree is the analytic estimate of when the worker frees up,
	// charged at dispatch from the backend's reconfig + service model —
	// what the hybrid policy weighs CPU spill against.
	estFree sim.Time

	jobs      int
	reconfigs int
	busyTotal sim.Time
}

// Scheduler is the accelerator-as-a-service runtime.
type Scheduler struct {
	tl      Timeline
	cfg     Config
	apps    map[string]*App
	appList []string // registration order (deterministic iteration)
	workers []*worker
	queue   []*Job
	nextID  int

	// Downtime state machine (see faults.go): down is true while the
	// shard is inside Faults.Down[downIdx]; both advance lazily at
	// activity instants through syncFaults.
	downIdx int
	down    bool

	// Fault counters (see faults.go and Stats).
	wedges         int
	retries        int
	timedOut       int
	unavailable    int
	nQuarantined   int
	repairs        int
	probationFails int
	quarantineTime sim.Time

	// repairFn is the pre-built repair-event callback (one allocation per
	// scheduler, not per quarantine); AfterArg carries the worker as arg.
	repairFn func(any)

	// hasFabric records whether any worker is fabric-class: when true,
	// the classic policies never place on CPU soft-path workers — those
	// are spill capacity reserved for the Hybrid policy. A pure-CPU pool
	// (no fabric workers) serves under every policy.
	hasFabric bool

	// Policy scratch (reused across pick calls; see policy.go).
	idleScratch []*worker
	estScratch  []sim.Time

	// Outcome ledgers (exact mode; streaming mode keeps them empty and
	// folds outcomes into agg instead).
	Completed []*Job
	Failed    []*Job // unknown app, over-capacity bitstream, programming error
	Rejected  int    // bounced by the full admission queue

	// agg holds the streaming-mode running aggregates; nil in exact mode.
	agg *aggregate

	// obs, when set, receives lifecycle events (arrival, reject,
	// dispatch, retire, worker-busy intervals) — the windowed-telemetry
	// seam; see observe.go.
	obs Observer

	// OnResult, when set, is invoked at each job's finish instant — once
	// per completed or failed job, in completion order — so a front end
	// (e.g. internal/cluster) can harvest results without reaching into
	// the scheduler's ledgers. Jobs bounced by the admission queue never
	// started and are not reported.
	OnResult func(*Job)
}

// New builds a scheduler over the given execution backends (one worker
// per backend). At least one backend is required; tl is the timeline the
// backends schedule on (the sim.Engine for cycle-level workers, an
// analytic timeline for model-only schedulers).
func New(tl Timeline, backends []Backend, cfg Config) *Scheduler {
	if len(backends) == 0 {
		panic("sched: need at least one execution backend")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = defaultQueueCap
	}
	if cfg.SettleCycles <= 0 {
		cfg.SettleCycles = defaultSettleCycles
	}
	s := &Scheduler{tl: tl, cfg: cfg, apps: make(map[string]*App)}
	s.repairFn = func(a any) { s.repair(a.(*worker)) }
	if cfg.Stats == StatsStreaming {
		s.agg = &aggregate{}
	}
	for i, be := range backends {
		s.workers = append(s.workers, &worker{id: i, be: be})
		be.Bind(cfg.SettleCycles, s.complete)
		if be.Kind() != BackendCPU {
			s.hasFabric = true
		}
	}
	return s
}

// usable reports whether the configured policy may place jobs on worker
// w: quarantined workers take no placements until a repair returns them
// to service (never, without a repair process), and CPU soft-path
// workers are spill capacity only — reserved for the Hybrid policy
// whenever fabric-class workers exist.
func (s *Scheduler) usable(w *worker) bool {
	if w.quarantined {
		return false
	}
	return s.cfg.Policy == Hybrid || !s.hasFabric || w.be.Kind() != BackendCPU
}

// Config reports the scheduler's configuration (defaults applied).
func (s *Scheduler) Config() Config { return s.cfg }

// RegisterApp adds an application to the service catalog, registering its
// bitstream with every backend's image library.
func (s *Scheduler) RegisterApp(app App) error {
	if app.BS == nil || app.BS.Name == "" {
		return fmt.Errorf("sched: app needs a named bitstream")
	}
	if _, dup := s.apps[app.BS.Name]; dup {
		return fmt.Errorf("sched: app %q already registered", app.BS.Name)
	}
	app.Finalize()
	for _, w := range s.workers {
		if err := w.be.Register(app.BS); err != nil {
			return err
		}
	}
	s.apps[app.BS.Name] = &app
	s.appList = append(s.appList, app.BS.Name)
	return nil
}

// Apps lists the registered application names in registration order.
func (s *Scheduler) Apps() []string { return append([]string(nil), s.appList...) }

// QueueLen reports the current admission-queue depth.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Workers reports the number of execution-backend workers.
func (s *Scheduler) Workers() int { return len(s.workers) }

// Predict estimates the fabric occupancy of one job of the named app with
// the given input size — the catalog's analytic model, the same estimate
// SJF ranks by. ok is false for unregistered apps.
func (s *Scheduler) Predict(app string, inputSize int) (est sim.Time, ok bool) {
	a, ok := s.apps[app]
	if !ok {
		return 0, false
	}
	return sim.Time(a.Cycles(inputSize)) * a.period, true
}

// predict estimates a job's fabric occupancy from the catalog model (used
// by SJF and for deadline admission by callers).
func (s *Scheduler) predict(j *Job) sim.Time {
	if j.app != nil {
		return sim.Time(j.app.Cycles(j.InputSize)) * j.app.period
	}
	est, _ := s.Predict(j.App, j.InputSize)
	return est
}

// Submit offers a job to the scheduler at the current simulation time. It
// returns false when the job was not admitted: unknown application or a
// bitstream no worker can hold (the job lands in Failed with Err set), or
// a full admission queue (counted in Rejected).
func (s *Scheduler) Submit(j *Job) bool {
	s.nextID++
	j.ID = s.nextID
	now := s.tl.Now()
	j.Submit = now
	s.syncFaults(now)
	if s.down {
		s.observeArrival(now, len(s.queue))
		j.Err = fmt.Errorf("sched: submission refused, shard down: %w", ErrUnavailable)
		j.Finish = now // dies at submit: zero-length lifetime
		s.retire(j)
		return false
	}
	app, ok := s.apps[j.App]
	if !ok {
		s.observeArrival(now, len(s.queue))
		j.Err = fmt.Errorf("sched: unknown app %q", j.App)
		j.Finish = now // dies at submit: zero-length lifetime
		s.retire(j)
		return false
	}
	j.app = app
	fits, fitsQuarantined := false, false
	for _, w := range s.workers {
		if !app.BS.Res.Fits(w.be.Capacity()) {
			continue
		}
		// A quarantined worker with a repair in flight still counts as a
		// fit: the job waits in the queue for the repair instead of dying.
		if s.usable(w) || (w.quarantined && w.repairPending) {
			fits = true
			break
		}
		if w.quarantined {
			fitsQuarantined = true
		}
	}
	if !fits {
		s.observeArrival(now, len(s.queue))
		if fitsQuarantined {
			j.Err = fmt.Errorf("sched: every fitting worker quarantined: %w", ErrUnavailable)
		} else {
			j.Err = fmt.Errorf("sched: bitstream %q (%+v) exceeds every worker's capacity", j.App, app.BS.Res)
		}
		j.Finish = now // dies at submit: zero-length lifetime
		s.retire(j)
		return false
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.observeArrival(now, len(s.queue))
		s.observeReject(now)
		s.Rejected++
		return false
	}
	s.queue = append(s.queue, j)
	s.observeArrival(now, len(s.queue))
	s.dispatch(now)
	return true
}

// dispatch drains the admission queue onto idle workers, one placement
// per iteration, until the policy finds nothing placeable. now is the
// current instant (timeline reads are hoisted to the dispatch roots).
func (s *Scheduler) dispatch(now sim.Time) {
	if s.cfg.Faults.EnforceDeadlines {
		s.purgeExpired(now)
	}
	if s.down {
		return
	}
	for {
		w, qi := s.pick(now)
		if w == nil {
			return
		}
		j := s.queue[qi]
		s.queue = append(s.queue[:qi], s.queue[qi+1:]...)
		s.place(w, j, now)
	}
}

// place starts job j on worker w: the backend models the rest (resident
// reuse vs reconfiguration, then the service time).
func (s *Scheduler) place(w *worker, j *Job, now sim.Time) {
	j.Start = now
	j.Fabric = w.id
	w.busy = true
	w.busyAt = now
	app := j.app
	w.estFree = now + w.be.ReconfigCost(app) + w.be.ServiceTime(app, j.InputSize)
	w.be.Dispatch(j, app)
	// Backends flag a triggered reconfiguration synchronously during
	// Dispatch, so j.Reprogrammed is settled here even though the
	// reprogram flow itself has only just been scheduled.
	if s.obs != nil {
		s.obs.ObserveDispatch(now, w.id, w.be.Kind(), j.Reprogrammed)
	}
}

// complete retires a dispatched job at its finish instant (the bound
// backend callback; j.Fabric names the worker it occupied).
func (s *Scheduler) complete(j *Job, err error) {
	w := s.workers[j.Fabric]
	now := s.tl.Now()
	s.syncFaults(now)
	if err != nil && errors.Is(err, ErrWedged) {
		s.completeWedged(w, j, err, now)
		return
	}
	j.Finish = now
	if err != nil {
		j.Err = err
	} else {
		w.jobs++
		if j.Reprogrammed {
			w.reconfigs++
		}
		// A clean completion ends a repaired worker's probation: it has
		// re-proved itself (the next wedge restarts the backoff ladder
		// from its lifetime wedge count either way).
		w.probation = false
	}
	s.retire(j)
	s.release(w, now)
}

// retire records a finished job — completed or failed — in the
// configured aggregation mode and notifies OnResult. Streaming mode
// keeps no reference to the job: after OnResult returns it is garbage.
func (s *Scheduler) retire(j *Job) {
	if s.obs != nil {
		s.obs.ObserveRetire(j)
	}
	if s.agg != nil {
		s.agg.finish(j)
	} else if j.Err != nil {
		s.Failed = append(s.Failed, j)
	} else {
		s.Completed = append(s.Completed, j)
	}
	// Failure sub-class counters (Failed stays the total): a distinct
	// timed-out outcome, and the unavailable class covering shard-outage
	// and full-quarantine kills.
	if j.Err != nil {
		switch {
		case errors.Is(j.Err, ErrTimedOut):
			s.timedOut++
		case errors.Is(j.Err, ErrUnavailable):
			s.unavailable++
		}
	}
	if s.OnResult != nil {
		s.OnResult(j)
	}
}

// release returns a worker to the idle pool and re-runs dispatch.
func (s *Scheduler) release(w *worker, now sim.Time) {
	s.observeBusy(w, now)
	w.busyTotal += now - w.busyAt
	w.busy = false
	s.dispatch(now)
}
