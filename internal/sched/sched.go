// Package sched is a multi-tenant accelerator-as-a-service runtime over
// the system's eFPGA fabrics. It accepts a stream of jobs — each naming a
// registered application bitstream, an input size, and a deadline and
// priority — admits them through a bounded queue, and places them across
// every configured eFPGA. Placement reuses an already-resident bitstream
// when possible; otherwise it pays the modeled reprogramming cost: the
// driver quiesces the adapter's Memory Hubs, runs the programming-engine
// flow (the same streaming + integrity model behind RegProgram), and
// re-enables the hubs once the accelerator has restarted.
//
// The scheduling policy — FIFO, shortest-job-first, or affinity
// (reuse-aware) — is selected at construction; see policy.go. Per-job
// wait/service times and per-fabric utilization and reconfiguration
// counts are collected throughout; see stats.go.
package sched

import (
	"fmt"

	"duet/internal/core"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// Timing model of the driver's reconfiguration flow, beyond the
// programming engine's own streaming cost (which is charged by
// Adapter.ProgramAsync):
const (
	// hubToggleCycles charges one MMIO round trip on the fast clock per
	// Memory Hub feature-switch write (quiesce before programming,
	// re-enable after).
	hubToggleCycles = 32
	// defaultSettleCycles is the default Config.SettleCycles: fabric-clock
	// cycles after configuration for partial-region reset, configuration
	// scrubbing, and clock-generator relock before the accelerator can
	// accept work.
	defaultSettleCycles = 1024
	// defaultQueueCap is the default admission-queue bound.
	defaultQueueCap = 64
)

// App couples a synthesized bitstream with the scheduler's analytic
// service-time model: a job over app a with input size n occupies the
// fabric for FixedCycles + n*CyclesPerItem cycles of the fabric clock,
// run at the bitstream's Fmax.
type App struct {
	BS            *efpga.Bitstream
	FixedCycles   int64
	CyclesPerItem int64

	period sim.Time // service clock period, derived from BS.FmaxMHz
}

// cycles is the modeled fabric occupancy of one job with input size n —
// the single source of truth for both SJF's estimate and the charged
// service time.
func (a *App) cycles(n int) int64 { return a.FixedCycles + a.CyclesPerItem*int64(n) }

// Job is one unit of work submitted to the scheduler. The caller fills
// the request fields; the scheduler fills the outcome fields.
type Job struct {
	ID        int
	App       string   // bitstream name (RegisterApp key)
	InputSize int      // work items
	Priority  int      // higher is more urgent (SJF tie-break)
	Deadline  sim.Time // absolute completion deadline; 0 = none

	// Outcome.
	Submit       sim.Time
	Start        sim.Time // dispatch instant (end of queue wait)
	Finish       sim.Time
	Fabric       int
	Reprogrammed bool
	Err          error
}

// Wait is the time spent in the admission queue.
func (j *Job) Wait() sim.Time { return j.Start - j.Submit }

// Service is the time spent occupying a fabric (including any
// reprogramming the job triggered).
func (j *Job) Service() sim.Time { return j.Finish - j.Start }

// Sojourn is the submit-to-finish latency.
func (j *Job) Sojourn() sim.Time { return j.Finish - j.Submit }

// MissedDeadline reports whether the job finished past its deadline.
func (j *Job) MissedDeadline() bool { return j.Deadline > 0 && j.Finish > j.Deadline }

// Config selects the scheduling policy and admission bound.
type Config struct {
	Policy   Policy
	QueueCap int // bounded admission queue; defaults to 64
	// SettleCycles is the post-configuration settle time in fabric-clock
	// cycles (defaults to 1024; see the timing-model constants above).
	SettleCycles int64
	// Stats selects the aggregation mode: StatsExact (default) retains
	// per-job ledgers for exact percentiles; StatsStreaming folds jobs
	// into fixed-memory aggregates for serve-scale runs (see stats.go).
	Stats StatsMode
}

// worker tracks one eFPGA (fabric + adapter) and its accumulated stats.
type worker struct {
	id     int
	ad     *core.Adapter
	fab    *efpga.Fabric
	busy   bool
	busyAt sim.Time

	jobs      int
	reconfigs int
	busyTotal sim.Time
}

// resident reports the name of the fabric's installed bitstream ("" when
// unprogrammed).
func (w *worker) resident() string {
	if bs := w.ad.Resident(); bs != nil {
		return bs.Name
	}
	return ""
}

// Scheduler is the accelerator-as-a-service runtime.
type Scheduler struct {
	eng     *sim.Engine
	cfg     Config
	apps    map[string]*App
	appList []string // registration order (deterministic iteration)
	workers []*worker
	queue   []*Job
	nextID  int

	// Outcome ledgers (exact mode; streaming mode keeps them empty and
	// folds outcomes into agg instead).
	Completed []*Job
	Failed    []*Job // unknown app, over-capacity bitstream, programming error
	Rejected  int    // bounced by the full admission queue

	// agg holds the streaming-mode running aggregates; nil in exact mode.
	agg *aggregate

	// OnResult, when set, is invoked at each job's finish instant — once
	// per completed or failed job, in completion order — so a front end
	// (e.g. internal/cluster) can harvest results without reaching into
	// the scheduler's ledgers. Jobs bounced by the admission queue never
	// started and are not reported.
	OnResult func(*Job)

	// finishFn is the one job-completion callback for the scheduler;
	// serve schedules it with the job as the event argument, so the
	// per-job service path allocates no closure.
	finishFn func(any)
}

// New builds a scheduler over the given adapters and fabrics (one worker
// per pair). At least one eFPGA is required.
func New(eng *sim.Engine, adapters []*core.Adapter, fabrics []*efpga.Fabric, cfg Config) *Scheduler {
	if len(adapters) == 0 || len(adapters) != len(fabrics) {
		panic("sched: need at least one eFPGA (adapter/fabric pair)")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = defaultQueueCap
	}
	if cfg.SettleCycles <= 0 {
		cfg.SettleCycles = defaultSettleCycles
	}
	s := &Scheduler{eng: eng, cfg: cfg, apps: make(map[string]*App)}
	if cfg.Stats == StatsStreaming {
		s.agg = &aggregate{}
	}
	for i := range adapters {
		s.workers = append(s.workers, &worker{id: i, ad: adapters[i], fab: fabrics[i]})
	}
	s.finishFn = func(a any) { s.finish(a.(*Job)) }
	return s
}

// Config reports the scheduler's configuration (defaults applied).
func (s *Scheduler) Config() Config { return s.cfg }

// RegisterApp adds an application to the service catalog, registering its
// bitstream with every fabric's image library.
func (s *Scheduler) RegisterApp(app App) error {
	if app.BS == nil || app.BS.Name == "" {
		return fmt.Errorf("sched: app needs a named bitstream")
	}
	if _, dup := s.apps[app.BS.Name]; dup {
		return fmt.Errorf("sched: app %q already registered", app.BS.Name)
	}
	if app.CyclesPerItem <= 0 {
		app.CyclesPerItem = 1
	}
	if app.BS.FmaxMHz > 0 {
		app.period = sim.Time(1e6/app.BS.FmaxMHz + 0.5)
	} else {
		app.period = sim.Time(1e4) // 100 MHz fallback
	}
	for _, w := range s.workers {
		w.fab.Register(app.BS)
	}
	s.apps[app.BS.Name] = &app
	s.appList = append(s.appList, app.BS.Name)
	return nil
}

// Apps lists the registered application names in registration order.
func (s *Scheduler) Apps() []string { return append([]string(nil), s.appList...) }

// QueueLen reports the current admission-queue depth.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Workers reports the number of eFPGA workers (adapter/fabric pairs).
func (s *Scheduler) Workers() int { return len(s.workers) }

// Predict estimates the fabric occupancy of one job of the named app with
// the given input size — the catalog's analytic model, the same estimate
// SJF ranks by. ok is false for unregistered apps.
func (s *Scheduler) Predict(app string, inputSize int) (est sim.Time, ok bool) {
	a, ok := s.apps[app]
	if !ok {
		return 0, false
	}
	return sim.Time(a.cycles(inputSize)) * a.period, true
}

// predict estimates a job's fabric occupancy from the catalog model (used
// by SJF and for deadline admission by callers).
func (s *Scheduler) predict(j *Job) sim.Time {
	est, _ := s.Predict(j.App, j.InputSize)
	return est
}

// Submit offers a job to the scheduler at the current simulation time. It
// returns false when the job was not admitted: unknown application or a
// bitstream no fabric can hold (the job lands in Failed with Err set), or
// a full admission queue (counted in Rejected).
func (s *Scheduler) Submit(j *Job) bool {
	s.nextID++
	j.ID = s.nextID
	j.Submit = s.eng.Now()
	app, ok := s.apps[j.App]
	if !ok {
		j.Err = fmt.Errorf("sched: unknown app %q", j.App)
		j.Finish = s.eng.Now() // dies at submit: zero-length lifetime
		s.retire(j)
		return false
	}
	fits := false
	for _, w := range s.workers {
		if app.BS.Res.Fits(w.fab.Cap) {
			fits = true
			break
		}
	}
	if !fits {
		j.Err = fmt.Errorf("sched: bitstream %q (%+v) exceeds every fabric's capacity", j.App, app.BS.Res)
		j.Finish = s.eng.Now() // dies at submit: zero-length lifetime
		s.retire(j)
		return false
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.Rejected++
		return false
	}
	s.queue = append(s.queue, j)
	s.dispatch()
	return true
}

// dispatch drains the admission queue onto idle workers, one placement
// per iteration, until the policy finds nothing placeable.
func (s *Scheduler) dispatch() {
	for {
		w, qi := s.pick()
		if w == nil {
			return
		}
		j := s.queue[qi]
		s.queue = append(s.queue[:qi], s.queue[qi+1:]...)
		s.place(w, j)
	}
}

// place starts job j on worker w: directly when the needed bitstream is
// resident, otherwise through the quiesce → program → resume flow.
func (s *Scheduler) place(w *worker, j *Job) {
	now := s.eng.Now()
	j.Start = now
	j.Fabric = w.id
	w.busy = true
	w.busyAt = now
	app := s.apps[j.App]
	if w.resident() == j.App {
		s.serve(w, j, app)
		return
	}
	if !app.BS.Res.Fits(w.fab.Cap) {
		// pick never pairs a job with a too-small fabric; this guards a
		// future policy bug from wedging the worker.
		s.fail(w, j, fmt.Errorf("sched: bitstream %q exceeds fabric %q capacity", j.App, w.fab.Name))
		return
	}
	id, ok := w.fab.IDByName(j.App)
	if !ok {
		s.fail(w, j, fmt.Errorf("sched: bitstream %q not registered on fabric %q", j.App, w.fab.Name))
		return
	}
	j.Reprogrammed = true
	fast := w.ad.FastClock()
	toggles := int64(len(w.ad.Hubs()))
	if toggles == 0 {
		toggles = 1
	}
	// Quiesce: one feature-switch round trip per hub, then the
	// programming engine (streaming + integrity check), then hub
	// re-enable, then the configuration settle time.
	saved := w.ad.QuiesceHubs()
	s.eng.After(fast.Cycles(toggles*hubToggleCycles), func() {
		w.ad.ProgramAsync(id, func(err error) {
			if err != nil {
				// Restore the pre-quiesce hub state before surfacing the
				// failure, so the adapter is not left quiesced forever.
				w.ad.ResumeHubs(saved)
				s.fail(w, j, err)
				return
			}
			w.reconfigs++
			// The scheduler owns the adapter while serving: the incoming
			// tenant is granted every Memory Hub.
			w.ad.ResumeHubs(^uint64(0))
			s.eng.After(fast.Cycles(toggles*hubToggleCycles), func() {
				if app.BS.FmaxMHz > 0 {
					w.fab.SetFreqMHz(app.BS.FmaxMHz)
				}
				s.eng.After(w.fab.Clock().Cycles(s.cfg.SettleCycles), func() {
					s.serve(w, j, app)
				})
			})
		})
	})
}

// serve occupies the fabric for the job's modeled service time.
func (s *Scheduler) serve(w *worker, j *Job, app *App) {
	if app.BS.FmaxMHz > 0 && w.fab.Clock().FreqMHz() != app.BS.FmaxMHz {
		w.fab.SetFreqMHz(app.BS.FmaxMHz)
	}
	s.eng.AfterArg(w.fab.Clock().Cycles(app.cycles(j.InputSize)), s.finishFn, j)
}

// finish retires a served job (j.Fabric names the worker it occupied).
func (s *Scheduler) finish(j *Job) {
	w := s.workers[j.Fabric]
	j.Finish = s.eng.Now()
	w.jobs++
	s.retire(j)
	s.release(w)
}

// fail records a job that died on its worker and frees the worker.
func (s *Scheduler) fail(w *worker, j *Job, err error) {
	j.Err = err
	j.Finish = s.eng.Now()
	s.retire(j)
	s.release(w)
}

// retire records a finished job — completed or failed — in the
// configured aggregation mode and notifies OnResult. Streaming mode
// keeps no reference to the job: after OnResult returns it is garbage.
func (s *Scheduler) retire(j *Job) {
	if s.agg != nil {
		s.agg.finish(j)
	} else if j.Err != nil {
		s.Failed = append(s.Failed, j)
	} else {
		s.Completed = append(s.Completed, j)
	}
	if s.OnResult != nil {
		s.OnResult(j)
	}
}

// release returns a worker to the idle pool and re-runs dispatch.
func (s *Scheduler) release(w *worker) {
	w.busyTotal += s.eng.Now() - w.busyAt
	w.busy = false
	s.dispatch()
}
