package sched

import (
	"errors"
	"fmt"

	"duet/internal/sim"
)

// This file is the scheduler's fault-handling layer: what the shared
// dispatch/complete paths do when an execution backend fails in one of
// the modeled ways (internal/faults injects them below the Backend seam,
// so the cycle and model backends fail identically).
//
//   - A wedged reprogram (an error wrapping ErrWedged) quarantines the
//     worker — mirroring the driver's ProgWedged outcome, where a fabric
//     that never acknowledges its programming engine cannot be trusted
//     with further placements — and re-queues the victim job within a
//     bounded retry budget. Followers steer to the remaining healthy
//     workers, or to the CPU soft path under the Hybrid policy's
//     existing spill decision. Without a repair process the quarantine
//     is permanent; with one (FaultConfig.Repair) the worker returns to
//     service after the configured delay on probation — its backend is
//     scrubbed, so the first placement pays a full probationary
//     re-reprogram and can wedge again.
//   - Shard downtime (FaultConfig.Down) kills every queued job and
//     refuses submissions while a window is open; in-flight jobs run to
//     completion (the replica's workers are modeled as surviving the
//     front-end-visible crash). Both kill paths retire with an error
//     wrapping ErrUnavailable.
//   - Deadline enforcement (FaultConfig.EnforceDeadlines) drops queued
//     jobs whose absolute deadline has passed before dispatch, retiring
//     them with an error wrapping ErrTimedOut — a distinct timed-out
//     outcome instead of a late completion.
//
// Every transition fires an Observer hook (wedge/retry/timeout/
// quarantine) and a dedicated Stats counter, and all decisions happen in
// this shared scheduler code at backend-reported instants, so a
// cycle-backed and a model-backed run under one fault plan make
// identical fault decisions at identical simulated times.

// Error sentinels for the modeled fault outcomes. Backends and injectors
// wrap them (errors.Is distinguishes); Stats counts them per class.
var (
	// ErrWedged marks a reprogram that never completed: the fabric is
	// quarantined and the job is retried within FaultConfig.MaxRetries.
	ErrWedged = errors.New("fabric wedged mid-reprogram")
	// ErrTimedOut marks a queued job dropped past its absolute deadline
	// (FaultConfig.EnforceDeadlines).
	ErrTimedOut = errors.New("deadline passed before dispatch")
	// ErrUnavailable marks a job killed or refused because no service
	// remained: the shard was inside a Down window, or every worker that
	// could hold its bitstream is quarantined.
	ErrUnavailable = errors.New("service unavailable")
)

// Downtime is one closed-open shard outage window [From, To) in
// simulated time.
type Downtime struct {
	From, To sim.Time
}

// FaultConfig parameterizes the scheduler's fault handling. The zero
// value — no retries, no enforcement, no windows — adds no behavior and
// keeps every fault-free run byte-identical to a scheduler without it.
type FaultConfig struct {
	// MaxRetries bounds per-job re-queues after a wedged reprogram; a
	// job whose budget is exhausted (or that fits no remaining healthy
	// worker) retires with the wedge error.
	MaxRetries int
	// EnforceDeadlines drops queued jobs whose absolute Deadline has
	// passed before dispatch (retired with ErrTimedOut) instead of
	// serving them late.
	EnforceDeadlines bool
	// Down lists shard outage windows, ascending and non-overlapping.
	// Entering a window kills every queued job and refuses submissions
	// until it closes; in-flight jobs complete.
	Down []Downtime
	// Repair, when set, is consulted at each quarantine: it returns the
	// repair delay for the nth lifetime wedge of the given worker (nth
	// counts from 1). A positive delay schedules a repair event that far
	// in the future; zero or negative means this quarantine is permanent.
	// The callback must be a pure function of (worker, nth) so the cycle
	// and model backends schedule identical repair instants.
	Repair func(worker, nth int) sim.Time
}

// syncFaults advances the downtime state machine to now. It runs at
// every activity instant (submit, completion), so window transitions are
// observed lazily at the next event — never by a timeline event of their
// own, which keeps the cycle and model backends' event streams
// identical. Crossing into (or entirely past) a window kills the jobs
// queued before it opened; submissions while a window is open are
// refused in Submit via s.down.
func (s *Scheduler) syncFaults(now sim.Time) {
	down := s.cfg.Faults.Down
	for s.downIdx < len(down) {
		w := down[s.downIdx]
		if now < w.From {
			return
		}
		if now < w.To {
			if !s.down {
				s.down = true
				s.failQueued(now, w)
			}
			return
		}
		// The window closed before this activity instant. Jobs queued
		// before it opened still died at the crash (submissions since
		// were refused, so everything queued predates From).
		if !s.down {
			s.failQueued(now, w)
		}
		s.down = false
		s.downIdx++
	}
}

// failQueued kills every queued job at a shard crash (window w), in
// queue order, at instant now.
func (s *Scheduler) failQueued(now sim.Time, w Downtime) {
	q := s.queue
	s.queue = s.queue[:0]
	for _, j := range q {
		j.Finish = now
		j.Err = fmt.Errorf("sched: queued job killed by shard outage [%v, %v): %w", w.From, w.To, ErrUnavailable)
		s.retire(j)
	}
}

// DownAt reports whether instant at falls inside a configured outage
// window — a pure read (no state machine advance) for health surfaces.
func (s *Scheduler) DownAt(at sim.Time) bool {
	for _, w := range s.cfg.Faults.Down {
		if at < w.From {
			return false
		}
		if at < w.To {
			return true
		}
	}
	return false
}

// purgeExpired drops queued jobs whose absolute deadline has passed,
// retiring each with ErrTimedOut. Runs at dispatch entry under
// EnforceDeadlines, so a job is never placed after its deadline.
func (s *Scheduler) purgeExpired(now sim.Time) {
	kept := s.queue[:0]
	for _, j := range s.queue {
		if j.Deadline > 0 && j.Deadline <= now {
			j.Finish = now
			j.Err = fmt.Errorf("sched: %w (deadline %v, now %v)", ErrTimedOut, j.Deadline, now)
			s.observeTimeout(now)
			s.retire(j)
			continue
		}
		kept = append(kept, j)
	}
	s.queue = kept
}

// quarantine marks worker w untrusted: no policy places on it until a
// repair returns it to service (see usable) — without a repair process,
// never. Queued jobs that fit no remaining usable worker and cannot
// outwait a pending repair are retired immediately with ErrUnavailable
// instead of waiting forever.
func (s *Scheduler) quarantine(w *worker, now sim.Time) {
	if w.quarantined {
		return
	}
	w.quarantined = true
	w.wedgeCount++
	w.quarantinedAt = now
	s.nQuarantined++
	s.observeQuarantine(now, w.id)
	if rf := s.cfg.Faults.Repair; rf != nil {
		if d := rf(w.id, w.wedgeCount); d > 0 {
			w.repairPending = true
			s.tl.AfterArg(d, s.repairFn, w)
		}
	}
	kept := s.queue[:0]
	for _, j := range s.queue {
		if s.placeableEventually(j) {
			kept = append(kept, j)
			continue
		}
		j.Finish = now
		j.Err = fmt.Errorf("sched: every fitting worker quarantined: %w", ErrUnavailable)
		s.retire(j)
	}
	s.queue = kept
}

// repair is the scheduled repair-event callback: it returns a
// quarantined worker to service on probation. The backend is scrubbed
// (the probationary re-reprogram: its next placement pays the full
// reconfiguration cost), the time spent in quarantine is charged, and
// dispatch runs immediately — jobs that were queued waiting for this
// repair place right away.
func (s *Scheduler) repair(w *worker) {
	if !w.quarantined || !w.repairPending {
		return
	}
	now := s.tl.Now()
	s.syncFaults(now)
	w.quarantined = false
	w.repairPending = false
	w.probation = true
	s.nQuarantined--
	s.repairs++
	s.quarantineTime += now - w.quarantinedAt
	if sc, ok := w.be.(Scrubber); ok {
		sc.Scrub()
	}
	s.observeRepair(now, w.id, now-w.quarantinedAt)
	s.dispatch(now)
}

// placeableEventually is placeable extended with repair-pending workers:
// a job whose only fitting workers are quarantined but being repaired
// stays queued for the repair instead of dying.
func (s *Scheduler) placeableEventually(j *Job) bool {
	for _, w := range s.workers {
		if !j.app.BS.Res.Fits(w.be.Capacity()) {
			continue
		}
		if s.usable(w) || (w.quarantined && w.repairPending) {
			return true
		}
	}
	return false
}

// placeable reports whether some usable worker can hold j's bitstream —
// the same fit test Submit admits against, re-run after quarantines
// shrink the pool.
func (s *Scheduler) placeable(j *Job) bool {
	for _, w := range s.workers {
		if s.usable(w) && j.app.BS.Res.Fits(w.be.Capacity()) {
			return true
		}
	}
	return false
}

// completeWedged handles a wedged-reprogram completion: quarantine the
// worker, then re-queue the victim within its retry budget (or retire it
// with the wedge error). Returns after releasing the worker's busy
// interval — the wedge-detection occupancy the injector charged.
func (s *Scheduler) completeWedged(w *worker, j *Job, err error, now sim.Time) {
	s.wedges++
	s.observeWedge(now, w.id)
	if w.probation {
		// The probationary re-reprogram itself wedged: a flapping fabric.
		// The re-quarantine below restarts the backoff ladder from the
		// worker's (now larger) lifetime wedge count.
		w.probation = false
		s.probationFails++
		s.observeProbationFail(now, w.id)
	}
	s.quarantine(w, now)
	if j.Retries < s.cfg.Faults.MaxRetries && s.placeableEventually(j) {
		j.Retries++
		s.retries++
		// The wedged attempt's outcome fields are stale, not final:
		// reset them so the retry's dispatch re-settles Reprogrammed.
		j.Reprogrammed = false
		j.Err = nil
		s.observeRetry(now)
		s.queue = append(s.queue, j)
		s.release(w, now)
		return
	}
	j.Finish = now
	j.Err = err
	s.retire(j)
	s.release(w, now)
}

// QuarantinedWorkers reports how many workers are currently quarantined
// by wedged reprograms (repairs return workers to the healthy count).
func (s *Scheduler) QuarantinedWorkers() int { return s.nQuarantined }

// HealthyWorkers reports the workers still accepting placements.
func (s *Scheduler) HealthyWorkers() int { return len(s.workers) - s.nQuarantined }
