package sched_test

import (
	"fmt"
	"testing"

	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
)

// runStreamWorkload plays an identical job mix through a fresh system in
// the given stats mode and returns the scheduler.
func runStreamWorkload(t *testing.T, mode sched.StatsMode) *sched.Scheduler {
	t.Helper()
	sys, sch := newServeSystem(t, 2, sched.Config{Policy: sched.Affinity, Stats: mode})
	a := mkBitstream("A", efpga.Resources{LUTs: 100}, 100)
	b := mkBitstream("B", efpga.Resources{LUTs: 100}, 200)
	for _, bs := range []*efpga.Bitstream{a, b} {
		if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 2000, CyclesPerItem: 3}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		app := "A"
		if i%3 == 0 {
			app = "B"
		}
		j := &sched.Job{App: app, InputSize: 100 + 37*i}
		if i%10 == 5 {
			j.Deadline = 1 // 1ps: must miss
		}
		sch.Submit(j)
	}
	sch.Submit(&sched.Job{App: "phantom"}) // fails at submit
	sys.Run()
	return sch
}

// TestStreamingStatsMatchExact: in streaming mode every Stats field must
// match exact mode precisely except P50/P99, which carry the digest's
// documented relative error; the per-job ledgers must stay empty.
func TestStreamingStatsMatchExact(t *testing.T) {
	exact := runStreamWorkload(t, sched.StatsExact).Stats()
	schS := runStreamWorkload(t, sched.StatsStreaming)
	stream := schS.Stats()

	if len(schS.Completed) != 0 || len(schS.Failed) != 0 {
		t.Fatalf("streaming mode retained %d completed / %d failed jobs",
			len(schS.Completed), len(schS.Failed))
	}
	if stream.Completed != exact.Completed || stream.Failed != exact.Failed ||
		stream.Rejected != exact.Rejected || stream.Reconfigs != exact.Reconfigs ||
		stream.DeadlineMisses != exact.DeadlineMisses {
		t.Fatalf("counters diverged:\nstream %+v\nexact  %+v", stream, exact)
	}
	if stream.Makespan != exact.Makespan || stream.ThroughputPerMS != exact.ThroughputPerMS {
		t.Fatalf("makespan/throughput diverged: %v/%v vs %v/%v",
			stream.Makespan, stream.ThroughputPerMS, exact.Makespan, exact.ThroughputPerMS)
	}
	if stream.MeanWait != exact.MeanWait || stream.MeanService != exact.MeanService {
		t.Fatalf("means diverged: %v/%v vs %v/%v",
			stream.MeanWait, stream.MeanService, exact.MeanWait, exact.MeanService)
	}
	for _, q := range []struct {
		name      string
		got, want sim.Time
	}{{"p50", stream.P50, exact.P50}, {"p99", stream.P99, exact.P99}} {
		if q.got < q.want {
			t.Errorf("%s: streaming %v below exact %v", q.name, q.got, q.want)
		}
		bound := q.want + sim.Time(float64(q.want)*sched.DigestRelError) + 1
		if q.got > bound {
			t.Errorf("%s: streaming %v exceeds exact %v beyond the %.2f%% bound",
				q.name, q.got, q.want, 100*sched.DigestRelError)
		}
	}
	if fmt.Sprintf("%+v", stream.Fabrics) != fmt.Sprintf("%+v", exact.Fabrics) {
		t.Fatalf("fabric stats diverged:\n%+v\n%+v", stream.Fabrics, exact.Fabrics)
	}
}

// TestStreamingOnResultStillFires: the drain hook contract is mode
// independent — front ends harvest per-job results the same way.
func TestStreamingOnResultStillFires(t *testing.T) {
	sys, sch := newServeSystem(t, 1, sched.Config{Policy: sched.FIFO, Stats: sched.StatsStreaming})
	bs := mkBitstream("drain", efpga.Resources{LUTs: 10}, 100)
	if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: 1000, CyclesPerItem: 1}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	sch.OnResult = func(j *sched.Job) { fired++ }
	sch.Submit(&sched.Job{App: "drain", InputSize: 4})
	sch.Submit(&sched.Job{App: "phantom"})
	sys.Run()
	if fired != 2 {
		t.Fatalf("OnResult fired %d times, want 2", fired)
	}
	if st := sch.Stats(); st.Completed != 1 || st.Failed != 1 {
		t.Fatalf("stats = %d completed / %d failed, want 1/1", st.Completed, st.Failed)
	}
}
