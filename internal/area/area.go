// Package area reproduces the paper's silicon area accounting: Table I
// (area and typical frequency of Dolly's hard components, measured by the
// authors with Synopsys DC and prior work, scaled to 45 nm with a linear
// MOSFET scaling model) and the Area-Delay-Product (ADP) metric of Fig. 12.
package area

import "math"

// Component is one row of Table I.
type Component struct {
	Name       string
	Technology string
	AreaMM2    float64 // as published, native node
	FreqMHz    float64 // as published, native node
	ScaledArea float64 // scaled to 45 nm (linear MOSFET model)
	ScaledFreq float64 // scaled to 45 nm
}

// TableI holds the published component data (paper Table I).
var TableI = []Component{
	{Name: "Ariane", Technology: "GlobalFoundries 22nm FDX", AreaMM2: 0.39, FreqMHz: 910, ScaledArea: 1.56, ScaledFreq: 455},
	{Name: "P-Mesh Socket", Technology: "IBM 32nm SOI", AreaMM2: 0.55, FreqMHz: 1000, ScaledArea: 1.10, ScaledFreq: 711},
	{Name: "FPGA Mgr + Soft Reg Intf", Technology: "FreePDK45", AreaMM2: 0.21, FreqMHz: 925, ScaledArea: 0.21, ScaledFreq: 925},
	{Name: "Coherent Memory Intf", Technology: "FreePDK45", AreaMM2: 0.04, FreqMHz: 1250, ScaledArea: 0.04, ScaledFreq: 1250},
}

// Scaled areas of the components used by the ADP model (45 nm, mm^2).
const (
	ArianeMM2   = 1.56
	SocketMM2   = 1.10
	CtrlHubMM2  = 0.21 // FPGA manager + soft register interface
	MemIntfMM2  = 0.04 // coherent memory interface (per memory hub)
	CoreTileMM2 = ArianeMM2 + SocketMM2
)

// LinearScale scales an area from a source node to a target node with the
// paper's linear MOSFET scaling model (area scales with the square of the
// feature-size ratio, frequency with its inverse).
func LinearScale(areaMM2, freqMHz, fromNM, toNM float64) (area, freq float64) {
	r := toNM / fromNM
	return areaMM2 * r * r, freqMHz / r
}

// SystemArea computes the silicon area of an evaluated configuration
// (paper §V-D): the processor-only baseline counts processors and the
// hardware cache system; the FPSoC adds the eFPGA; Dolly further adds the
// Duet Adapters.
type SystemArea struct {
	Cores    int
	MemHubs  int     // 0 for CPU-only and FPSoC
	HasCtrl  bool    // Duet control hub present
	EFPGAMM2 float64 // provisioned eFPGA silicon (0 for CPU-only)
	// AdapterTiles counts C+M tiles, each carrying a P-Mesh socket.
	AdapterTiles int
}

// Total reports the configuration's silicon area in mm^2 (45 nm).
func (s SystemArea) Total() float64 {
	a := float64(s.Cores) * CoreTileMM2
	a += float64(s.AdapterTiles) * SocketMM2
	if s.HasCtrl {
		a += CtrlHubMM2
	}
	a += float64(s.MemHubs) * MemIntfMM2
	a += s.EFPGAMM2
	return a
}

// ADP computes the area-delay product of a configuration relative to a
// baseline: (area/baseArea) * (runtime/baseRuntime). Lower is better.
func ADP(area, runtime, baseArea, baseRuntime float64) float64 {
	if baseArea == 0 || baseRuntime == 0 {
		return math.NaN()
	}
	return (area / baseArea) * (runtime / baseRuntime)
}

// Geomean computes the geometric mean of positive values.
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}
