package area

import (
	"math"
	"testing"
)

func TestTableIScaling(t *testing.T) {
	// Ariane: 0.39mm2 @ 22nm -> 45nm with the linear model.
	a, f := LinearScale(0.39, 910, 22, 45)
	if math.Abs(a-1.63) > 0.05 {
		t.Fatalf("scaled area = %.2f, want ~1.63 (paper rounds to 1.56)", a)
	}
	if math.Abs(f-445) > 15 {
		t.Fatalf("scaled freq = %.0f, want ~445 (paper rounds to 455)", f)
	}
}

func TestSystemAreaComposition(t *testing.T) {
	cpuOnly := SystemArea{Cores: 4}
	if got := cpuOnly.Total(); math.Abs(got-4*CoreTileMM2) > 1e-9 {
		t.Fatalf("cpu-only area = %f", got)
	}
	duet := SystemArea{Cores: 1, MemHubs: 1, HasCtrl: true, AdapterTiles: 1, EFPGAMM2: 5}
	want := CoreTileMM2 + SocketMM2 + CtrlHubMM2 + MemIntfMM2 + 5
	if got := duet.Total(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("duet area = %f, want %f", got, want)
	}
	// FPSoC: eFPGA on top of the baseline, no adapter silicon.
	fpsoc := SystemArea{Cores: 1, EFPGAMM2: 5}
	if got := fpsoc.Total(); got >= duet.Total() {
		t.Fatalf("fpsoc area %f not below duet %f", got, duet.Total())
	}
}

func TestADP(t *testing.T) {
	// 2x area at 4x speedup: ADP = 0.5.
	if got := ADP(2, 0.25, 1, 1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ADP = %f", got)
	}
	if !math.IsNaN(ADP(1, 1, 0, 1)) {
		t.Fatal("zero baseline not NaN")
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("geomean = %f", got)
	}
	if got := Geomean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-9 {
		t.Fatalf("geomean = %f", got)
	}
	if !math.IsNaN(Geomean(nil)) || !math.IsNaN(Geomean([]float64{0})) {
		t.Fatal("degenerate geomean not NaN")
	}
}

func TestTableIPublishedValues(t *testing.T) {
	if len(TableI) != 4 {
		t.Fatal("Table I rows")
	}
	if TableI[0].ScaledArea != ArianeMM2 || TableI[1].ScaledArea != SocketMM2 {
		t.Fatal("constants diverge from Table I data")
	}
}
