package coherence

import (
	"encoding/binary"
	"fmt"

	"duet/internal/cache"
	"duet/internal/mem"
	"duet/internal/noc"
	"duet/internal/sim"
)

// OutPort sends messages toward the NoC. The direct implementation injects
// into the mesh; the slow-cache baseline substitutes a CDC-bridged port.
type OutPort interface {
	Send(*noc.Msg)
}

type meshPort struct{ mesh *noc.Mesh }

func (p meshPort) Send(m *noc.Msg) { p.mesh.Send(m) }

// PCacheConfig describes a private cache instance.
type PCacheConfig struct {
	Name string
	ID   int // globally unique cache ID
	Tile int // NoC tile the cache's traffic enters/leaves at

	Clk *sim.Clock
	Cat sim.Category // latency category of this cache's logic

	SizeBytes int
	Ways      int
	MSHRs     int

	HitCycles       int64 // front-side tag+data access
	MissIssueCycles int64 // miss detection to request injection
	FillCycles      int64 // response arrival to line install + completion
	FwdCycles       int64 // forward (inv/downgrade) processing

	// WriteNoAllocate selects the write-through/no-allocate store policy
	// (Proxy Cache configuration option, paper §II-C).
	WriteNoAllocate bool

	// OnLineLost, if non-nil, is invoked whenever the cache loses a line
	// (invalidation or eviction). The Proxy Cache uses it to push
	// invalidations into the soft cache without waiting for any ack.
	OnLineLost func(line, vpn uint64)
}

type opKind int

const (
	opLoad opKind = iota
	opStore
	opAmo
)

type frontOp struct {
	kind     opKind
	addr     uint64
	size     int
	data     []byte
	vpn      uint64
	amoOp    AmoOp
	operand  uint64
	operand2 uint64
	tx       *sim.TX
	done     func(result []byte)
}

type mshr struct {
	line    uint64
	op      *frontOp
	pending []*frontOp
}

type wbEntry struct {
	data        mem.Line
	dirty       bool
	vpn         uint64
	surrendered bool
	pending     []*frontOp
}

// PCache is a private MESI write-back cache: the model for the CPU L2, the
// Duet Proxy Cache, and (re-clocked) the FPSoC/soft-only slow cache.
type PCache struct {
	cfg  PCacheConfig
	eng  *sim.Engine
	arr  *cache.Array
	port OutPort

	homeOf func(line uint64) int // line -> home tile

	mshrs   map[uint64]*mshr
	wb      map[uint64]*wbEntry
	stalled []*frontOp

	// lookupFn is the one tag-lookup callback for the cache; submit
	// schedules it with the front op as the event argument, so the
	// per-access front end allocates no closure.
	lookupFn func(any)

	// Stats.
	Loads, Stores, Amos     uint64
	LoadMisses, StoreMisses uint64
	FwdsSeen, Surrenders    uint64
	Evictions               uint64
	AbsentFwds              uint64
}

// NewPCache creates a private cache. homeOf maps a line address to its
// home tile; port may be nil to send directly into the mesh.
func NewPCache(eng *sim.Engine, mesh *noc.Mesh, cfg PCacheConfig, homeOf func(uint64) int, port OutPort) *PCache {
	if port == nil {
		port = meshPort{mesh}
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 1
	}
	c := &PCache{
		cfg:    cfg,
		eng:    eng,
		arr:    cache.NewArray(cfg.SizeBytes, cfg.Ways),
		port:   port,
		homeOf: homeOf,
		mshrs:  make(map[uint64]*mshr),
		wb:     make(map[uint64]*wbEntry),
	}
	c.lookupFn = func(a any) { c.lookup(a.(*frontOp)) }
	return c
}

// ID reports the cache's global ID.
func (c *PCache) ID() int { return c.cfg.ID }

// SetWriteNoAllocate reconfigures the store policy (Proxy Cache feature
// switch, paper §II-C).
func (c *PCache) SetWriteNoAllocate(v bool) { c.cfg.WriteNoAllocate = v }

// WriteNoAllocate reports the current store policy.
func (c *PCache) WriteNoAllocate() bool { return c.cfg.WriteNoAllocate }

// Tile reports the cache's NoC tile.
func (c *PCache) Tile() int { return c.cfg.Tile }

// Name reports the cache's name.
func (c *PCache) Name() string { return c.cfg.Name }

// after runs fn n cache-clock cycles from now, attributing the delay to
// the cache's latency category on tx.
func (c *PCache) after(n int64, tx *sim.TX, fn func()) {
	now := c.eng.Now()
	at := c.cfg.Clk.EdgesAfter(now, n)
	tx.Add(c.cfg.Cat, at-now)
	c.eng.At(at, fn)
}

// afterArg is the closure-free variant of after for the cache's cached
// callbacks (see lookupFn).
func (c *PCache) afterArg(n int64, tx *sim.TX, fn func(any), arg any) {
	now := c.eng.Now()
	at := c.cfg.Clk.EdgesAfter(now, n)
	tx.Add(c.cfg.Cat, at-now)
	c.eng.AtArg(at, fn, arg)
}

// LoadAsync reads size bytes at addr, calling done with the data when the
// access completes. vpn tags the line for reverse mapping (0 if unused).
func (c *PCache) LoadAsync(addr uint64, size int, vpn uint64, tx *sim.TX, done func([]byte)) {
	c.Loads++
	c.submit(&frontOp{kind: opLoad, addr: addr, size: size, vpn: vpn, tx: tx, done: done})
}

// StoreAsync writes data at addr, calling done when the store commits.
func (c *PCache) StoreAsync(addr uint64, data []byte, vpn uint64, tx *sim.TX, done func()) {
	c.Stores++
	cp := make([]byte, len(data))
	copy(cp, data)
	c.submit(&frontOp{kind: opStore, addr: addr, size: len(data), data: cp, vpn: vpn, tx: tx,
		done: func([]byte) { done() }})
}

// AmoAsync performs a home-side atomic, calling done with the old value.
func (c *PCache) AmoAsync(op AmoOp, addr uint64, size int, operand, operand2 uint64, tx *sim.TX, done func(old uint64)) {
	c.Amos++
	c.submit(&frontOp{kind: opAmo, addr: addr, size: size, amoOp: op, operand: operand, operand2: operand2, tx: tx,
		done: func(res []byte) {
			var v uint64
			for i := 0; i < len(res); i++ {
				v |= uint64(res[i]) << (8 * i)
			}
			done(v)
		}})
}

// Load is the blocking wrapper over LoadAsync for thread-style callers.
// The calling thread is the only possible waiter, so completion wakes it
// directly (Thread.Wake) instead of through a per-call condition.
func (c *PCache) Load(t *sim.Thread, addr uint64, size int, tx *sim.TX) []byte {
	var out []byte
	c.LoadAsync(addr, size, 0, tx, func(d []byte) {
		out = d
		t.Wake()
	})
	for out == nil {
		t.Park()
	}
	return out
}

// Store is the blocking wrapper over StoreAsync.
func (c *PCache) Store(t *sim.Thread, addr uint64, data []byte, tx *sim.TX) {
	ok := false
	c.StoreAsync(addr, data, 0, tx, func() {
		ok = true
		t.Wake()
	})
	for !ok {
		t.Park()
	}
}

// Amo is the blocking wrapper over AmoAsync.
func (c *PCache) Amo(t *sim.Thread, op AmoOp, addr uint64, size int, operand, operand2 uint64, tx *sim.TX) uint64 {
	var out uint64
	ok := false
	c.AmoAsync(op, addr, size, operand, operand2, tx, func(v uint64) {
		out, ok = v, true
		t.Wake()
	})
	for !ok {
		t.Park()
	}
	return out
}

func (c *PCache) submit(op *frontOp) {
	line := mem.LineAddr(op.addr)
	if m := c.mshrs[line]; m != nil {
		m.pending = append(m.pending, op)
		return
	}
	if w := c.wb[line]; w != nil {
		w.pending = append(w.pending, op)
		return
	}
	c.afterArg(c.cfg.HitCycles, op.tx, c.lookupFn, op)
}

func (c *PCache) lookup(op *frontOp) {
	line := mem.LineAddr(op.addr)
	// Re-check transient structures: they may have appeared while the tag
	// access was in flight.
	if m := c.mshrs[line]; m != nil {
		m.pending = append(m.pending, op)
		return
	}
	if w := c.wb[line]; w != nil {
		w.pending = append(w.pending, op)
		return
	}
	w := c.arr.Lookup(line)
	off := mem.Offset(op.addr)
	switch op.kind {
	case opLoad:
		if w != nil {
			// Synonym rule (paper §II-D): the Proxy Cache stores the
			// virtual page number beside each physical tag; a load through
			// a different virtual address first invalidates the old VA in
			// the soft cache, so synonym aliases never coexist there.
			if op.vpn != 0 && w.VPN != 0 && w.VPN != op.vpn {
				if c.cfg.OnLineLost != nil {
					c.cfg.OnLineLost(line, w.VPN)
				}
				w.VPN = op.vpn
			} else if op.vpn != 0 {
				w.VPN = op.vpn
			}
			out := make([]byte, op.size)
			copy(out, w.Data[off:off+op.size])
			op.done(out)
			return
		}
		c.LoadMisses++
		c.miss(op, ReqLoad)
	case opStore:
		if w != nil && (w.State == StateM || w.State == StateE) {
			copy(w.Data[off:off+op.size], op.data)
			w.State = StateM
			w.Dirty = true
			if op.vpn != 0 {
				w.VPN = op.vpn
			}
			op.done(nil)
			return
		}
		if c.cfg.WriteNoAllocate {
			// Write-through, no allocation (S copies are refreshed by the
			// WTAck payload).
			c.miss(op, ReqWT)
			return
		}
		c.StoreMisses++
		c.miss(op, ReqStore) // miss or S->M upgrade
	case opAmo:
		c.miss(op, ReqAmo)
	default:
		panic("pcache: unknown op")
	}
}

// miss allocates an MSHR and sends the request to the home.
func (c *PCache) miss(op *frontOp, rt ReqType) {
	line := mem.LineAddr(op.addr)
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.stalled = append(c.stalled, op)
		return
	}
	m := &mshr{line: line, op: op}
	c.mshrs[line] = m
	c.after(c.cfg.MissIssueCycles, op.tx, func() {
		req := &ReqMsg{Type: rt, Line: line, CacheID: c.cfg.ID, Addr: op.addr, Size: op.size}
		switch rt {
		case ReqAmo:
			req.Op = op.amoOp
			req.Operand = op.operand
			req.Operand2 = op.operand2
		case ReqWT:
			req.Bytes = op.data
		}
		c.send(req, op.tx)
	})
}

func (c *PCache) send(req *ReqMsg, tx *sim.TX) {
	c.port.Send(&noc.Msg{
		Src:     c.cfg.Tile,
		Dst:     c.homeOf(req.Line),
		VN:      noc.VNReq,
		Bytes:   ReqBytes(req),
		Payload: req,
		TX:      tx,
	})
}

func (c *PCache) sendAck(ack *AckMsg, tx *sim.TX) {
	c.port.Send(&noc.Msg{
		Src:     c.cfg.Tile,
		Dst:     c.homeOf(ack.Line),
		VN:      noc.VNData,
		Bytes:   AckBytes(ack),
		Payload: ack,
		TX:      tx,
	})
}

// DeliverResp handles a home→cache response. Callers (tile dispatcher or
// CDC bridge) invoke it at the time the message reaches the cache's clock
// domain.
func (c *PCache) DeliverResp(r *RespMsg, tx *sim.TX) {
	switch r.Kind {
	case RespData:
		c.after(c.cfg.FillCycles, tx, func() { c.fill(r, tx) })
	case RespAmo:
		m := c.takeMSHR(r.Line)
		c.after(1, tx, func() {
			m.op.done(r.Old[:m.op.size])
			c.drain(m)
		})
	case RespWTAck:
		m := c.takeMSHR(r.Line)
		c.after(1, tx, func() {
			// Refresh a retained S copy with the home's updated line.
			if w := c.arr.Peek(r.Line); w != nil && w.State == StateS {
				w.Data = r.Data
			}
			m.op.done(nil)
			c.drain(m)
		})
	case RespWBAck, RespWBStale:
		e := c.wb[r.Line]
		if e == nil {
			panic(fmt.Sprintf("%s: WB response without WB entry %#x", c.cfg.Name, r.Line))
		}
		delete(c.wb, r.Line)
		pend := e.pending
		for _, op := range pend {
			c.submit(op)
		}
		c.retryStalled()
	default:
		panic("pcache: unknown response kind")
	}
}

func (c *PCache) takeMSHR(line uint64) *mshr {
	m := c.mshrs[line]
	if m == nil {
		panic(fmt.Sprintf("%s: response without MSHR for %#x", c.cfg.Name, line))
	}
	delete(c.mshrs, line)
	return m
}

// fill installs a granted line and completes the MSHR's operations.
func (c *PCache) fill(r *RespMsg, tx *sim.TX) {
	m := c.mshrs[r.Line]
	if m == nil {
		panic(fmt.Sprintf("%s: fill without MSHR for %#x", c.cfg.Name, r.Line))
	}
	var w *cache.Way
	if existing := c.arr.Peek(r.Line); existing != nil {
		// Upgrade (S->M): refresh data with the grant payload.
		w = existing
		w.Data = r.Data
		w.State = r.Grant
	} else {
		w = c.pickVictim(r.Line)
		if w == nil {
			// Every way in the set is transient; retry shortly.
			c.after(1, tx, func() { c.fill(r, tx) })
			return
		}
		if w.Valid {
			c.evict(w, tx)
		}
		w = c.arr.Install(w, r.Line, r.Data, r.Grant)
	}
	delete(c.mshrs, r.Line)
	op := m.op
	off := mem.Offset(op.addr)
	switch op.kind {
	case opLoad:
		if op.vpn != 0 {
			w.VPN = op.vpn
		}
		out := make([]byte, op.size)
		copy(out, w.Data[off:off+op.size])
		op.done(out)
	case opStore:
		copy(w.Data[off:off+op.size], op.data)
		w.State = StateM
		w.Dirty = true
		if op.vpn != 0 {
			w.VPN = op.vpn
		}
		op.done(nil)
	default:
		panic("pcache: fill for non-load/store")
	}
	c.drain(m)
}

// drain resubmits an emptied MSHR's pending ops and retries stalled ones.
func (c *PCache) drain(m *mshr) {
	for _, op := range m.pending {
		c.submit(op)
	}
	c.retryStalled()
}

func (c *PCache) retryStalled() {
	if len(c.stalled) == 0 {
		return
	}
	ops := c.stalled
	c.stalled = nil
	for _, op := range ops {
		c.submit(op)
	}
}

// pickVictim chooses a way in line's set that is not mid-transaction; nil
// if none is available.
func (c *PCache) pickVictim(line uint64) *cache.Way {
	set := c.arr.Set(line)
	var best *cache.Way
	for i := range set {
		w := &set[i]
		if !w.Valid {
			return w
		}
		if c.mshrs[w.Tag] != nil || c.wb[w.Tag] != nil {
			continue
		}
		if best == nil || w.Less(best) {
			best = w
		}
	}
	return best
}

// evict pushes a valid line into the WB buffer and sends the write-back
// transaction.
func (c *PCache) evict(w *cache.Way, tx *sim.TX) {
	c.Evictions++
	line := w.Tag
	e := &wbEntry{data: w.Data, dirty: w.Dirty && w.State == StateM, vpn: w.VPN}
	c.wb[line] = e
	if c.cfg.OnLineLost != nil {
		c.cfg.OnLineLost(line, w.VPN)
	}
	c.arr.Invalidate(w)
	req := &ReqMsg{Type: ReqWB, Line: line, CacheID: c.cfg.ID, Data: e.data, Dirty: e.dirty}
	c.send(req, nil)
}

// DeliverFwd handles a home→cache forward (invalidate or downgrade).
func (c *PCache) DeliverFwd(f *FwdMsg, tx *sim.TX) {
	c.FwdsSeen++
	c.after(c.cfg.FwdCycles, tx, func() { c.handleFwd(f, tx) })
}

func (c *PCache) handleFwd(f *FwdMsg, tx *sim.TX) {
	line := f.Line
	if w := c.arr.Peek(line); w != nil {
		ack := &AckMsg{Line: line, CacheID: c.cfg.ID, Present: true}
		switch f.Type {
		case FwdInv:
			ack.Dirty = w.Dirty && w.State == StateM
			ack.Data = w.Data
			if c.cfg.OnLineLost != nil {
				c.cfg.OnLineLost(line, w.VPN)
			}
			c.arr.Invalidate(w)
		case FwdDowngrade:
			ack.Dirty = w.Dirty && w.State == StateM
			ack.Data = w.Data
			w.State = StateS
			w.Dirty = false
		}
		c.sendAck(ack, tx)
		return
	}
	if e := c.wb[line]; e != nil && !e.surrendered {
		// Forward racing our write-back: serve it from the WB buffer and
		// let the home reject the WB as stale.
		c.Surrenders++
		e.surrendered = true
		c.sendAck(&AckMsg{Line: line, CacheID: c.cfg.ID, Present: true, Dirty: e.dirty, FromWB: true, Data: e.data}, tx)
		return
	}
	// Not present (already surrendered or protocol race window).
	c.AbsentFwds++
	c.sendAck(&AckMsg{Line: line, CacheID: c.cfg.ID, Present: false}, tx)
}

// State reports the MESI state of a line (StateI if absent); for tests and
// the coherence checker.
func (c *PCache) State(line uint64) int {
	if w := c.arr.Peek(line); w != nil {
		return w.State
	}
	return StateI
}

// PeekLine returns the cached data for a line, if present.
func (c *PCache) PeekLine(line uint64) (mem.Line, bool) {
	if w := c.arr.Peek(line); w != nil {
		return w.Data, true
	}
	return mem.Line{}, false
}

// peekState returns data and MESI state for a line, if present.
func (c *PCache) peekState(line uint64) (mem.Line, int, bool) {
	if w := c.arr.Peek(line); w != nil {
		return w.Data, w.State, true
	}
	return mem.Line{}, StateI, false
}

// Quiet reports whether the cache has no in-flight transactions.
func (c *PCache) Quiet() bool {
	return len(c.mshrs) == 0 && len(c.wb) == 0 && len(c.stalled) == 0
}

// FlushAll evicts every valid line (used by tests to force final state
// back to the homes). Completion is signalled by Quiet turning true once
// outstanding WBs drain.
func (c *PCache) FlushAll() {
	c.arr.ForEach(func(w *cache.Way) {
		if c.mshrs[w.Tag] == nil && c.wb[w.Tag] == nil {
			c.evict(w, nil)
		}
	})
}

// Uint64At is a helper to decode a little-endian value from load results.
func Uint64At(b []byte) uint64 {
	switch len(b) {
	case 8:
		return binary.LittleEndian.Uint64(b)
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 1:
		return uint64(b[0])
	}
	panic("bad load size")
}
