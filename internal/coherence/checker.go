package coherence

import (
	"fmt"

	"duet/internal/cache"
	"duet/internal/mem"
)

// CheckCoherence validates the single-writer/multiple-reader invariants
// and directory exactness of a quiescent domain:
//
//  1. at most one cache holds a line in M or E, and then no other cache
//     holds it at all;
//  2. every valid private line is tracked by its home directory with the
//     matching role (owner for M/E, sharer for S);
//  3. every directory entry points at caches that actually hold the line;
//  4. S copies and the home agree on data; an M copy is allowed to differ
//     (it is the authoritative value).
//
// It must only be called when Domain.Quiet() is true.
func CheckCoherence(d *Domain) error {
	if !d.Quiet() {
		return fmt.Errorf("coherence: checker invoked while transactions are in flight")
	}
	type copyInfo struct {
		owners  []int
		sharers []int
	}
	seen := make(map[uint64]*copyInfo)
	lineData := make(map[uint64]map[int]mem.Line)

	for _, c := range d.caches {
		c := c
		c.arr.ForEach(func(w *cache.Way) {
			ci := seen[w.Tag]
			if ci == nil {
				ci = &copyInfo{}
				seen[w.Tag] = ci
				lineData[w.Tag] = make(map[int]mem.Line)
			}
			switch w.State {
			case StateM, StateE:
				ci.owners = append(ci.owners, c.ID())
			case StateS:
				ci.sharers = append(ci.sharers, c.ID())
			default:
				// StateI lines are invalid and never stored valid.
			}
			lineData[w.Tag][c.ID()] = w.Data
		})
	}

	for line, ci := range seen {
		if len(ci.owners) > 1 {
			return fmt.Errorf("line %#x: multiple owners %v", line, ci.owners)
		}
		if len(ci.owners) == 1 && len(ci.sharers) > 0 {
			return fmt.Errorf("line %#x: owner %d coexists with sharers %v", line, ci.owners[0], ci.sharers)
		}
		h := d.HomeFor(line)
		_, owner, sharers := h.SnapshotLine(line)
		dirSharers := make(map[int]bool)
		for _, s := range sharers {
			dirSharers[s] = true
		}
		if len(ci.owners) == 1 {
			if owner != ci.owners[0] {
				return fmt.Errorf("line %#x: cache %d holds M/E but directory owner is %d", line, ci.owners[0], owner)
			}
		}
		for _, s := range ci.sharers {
			if !dirSharers[s] {
				return fmt.Errorf("line %#x: cache %d holds S but directory sharers are %v", line, s, sharers)
			}
		}
		// S copies must match the home's data.
		homeData, _, _ := h.SnapshotLine(line)
		for _, s := range ci.sharers {
			if lineData[line][s] != homeData {
				return fmt.Errorf("line %#x: sharer %d data diverges from home", line, s)
			}
		}
	}

	// Directory entries must point at real copies.
	for _, h := range d.Homes {
		for line, de := range h.dir {
			if de.owner >= 0 {
				c := d.caches[de.owner]
				if c == nil {
					return fmt.Errorf("line %#x: directory owner %d unknown", line, de.owner)
				}
				if s := c.State(line); s != StateM && s != StateE {
					return fmt.Errorf("line %#x: directory owner %d holds %s", line, de.owner, StateName(s))
				}
			}
			for id := range de.sharers {
				c := d.caches[id]
				if c == nil {
					return fmt.Errorf("line %#x: directory sharer %d unknown", line, id)
				}
				if s := c.State(line); s != StateS {
					return fmt.Errorf("line %#x: directory sharer %d holds %s", line, id, StateName(s))
				}
			}
		}
	}
	return nil
}
