package coherence

import (
	"fmt"

	"duet/internal/cache"
	"duet/internal/mem"
	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sim"
)

// dirEntry is the directory state for one line resident in the L3 shard.
// owner >= 0 means a private cache holds the line in E or M (and sharers
// is empty); otherwise sharers lists the caches holding it in S.
type dirEntry struct {
	owner   int
	sharers map[int]bool
}

func newDirEntry() *dirEntry {
	return &dirEntry{owner: -1, sharers: make(map[int]bool)}
}

func (d *dirEntry) hasPrivateCopies() bool {
	return d.owner >= 0 || len(d.sharers) > 0
}

func (d *dirEntry) copies() []int {
	if d.owner >= 0 {
		return []int{d.owner}
	}
	out := make([]int, 0, len(d.sharers))
	for id := range d.sharers {
		out = append(out, id)
	}
	return out
}

// lineCtx serializes home-side work per line.
type lineCtx struct {
	busy bool
	jobs []homeJob

	// Ack collection for the flow currently holding the line's thread.
	acks    []*AckMsg
	ackCond *sim.Cond
}

// homeJob is one queued request for a line's serial worker. Jobs are value
// records rather than closures so the request hot path allocates nothing
// beyond the messages themselves.
type homeJob struct {
	req *ReqMsg
	tx  *sim.TX
}

// Home is one L3 shard plus its slice of the distributed directory. Lines
// map to shards by address interleaving (see Domain). The L3 is inclusive:
// a line with private copies is always present in the shard, and evicting
// an L3 victim first invalidates all private copies.
type Home struct {
	eng  *sim.Engine
	clk  *sim.Clock
	mesh *noc.Mesh
	tile int
	name string // worker-thread name, built once (not per transaction)

	dram *mem.Memory
	arr  *cache.Array
	dir  map[uint64]*dirEntry
	ctxs map[uint64]*lineCtx

	// cacheTile maps cache IDs to their NoC tiles for forwards.
	cacheTile map[int]int

	// Stats.
	Reqs, Fwds, DRAMFills, Writebacks uint64
}

// NewHome creates an L3 shard at the given tile.
func NewHome(eng *sim.Engine, clk *sim.Clock, mesh *noc.Mesh, tile int, dram *mem.Memory) *Home {
	h := &Home{
		eng:       eng,
		clk:       clk,
		mesh:      mesh,
		tile:      tile,
		name:      fmt.Sprintf("home%d", tile),
		dram:      dram,
		arr:       cache.NewArray(params.L3ShardBytes, params.L3Ways),
		dir:       make(map[uint64]*dirEntry),
		ctxs:      make(map[uint64]*lineCtx),
		cacheTile: make(map[int]int),
	}
	mesh.Register(tile, noc.VNReq, h.onReq)
	mesh.Register(tile, noc.VNData, h.onAck)
	return h
}

// Tile reports the home's NoC tile.
func (h *Home) Tile() int { return h.tile }

// AddCache registers a private cache's tile so forwards can be routed.
func (h *Home) AddCache(cacheID, tile int) { h.cacheTile[cacheID] = tile }

func (h *Home) ctx(line uint64) *lineCtx {
	c := h.ctxs[line]
	if c == nil {
		c = &lineCtx{ackCond: sim.NewCond(h.eng)}
		h.ctxs[line] = c
	}
	return c
}

// enqueue adds a request to the line's serial queue, starting a worker
// thread if none is active.
func (h *Home) enqueue(line uint64, job homeJob) {
	c := h.ctx(line)
	c.jobs = append(c.jobs, job)
	if !c.busy {
		c.busy = true
		h.startWorker(c)
	}
}

func (h *Home) startWorker(c *lineCtx) {
	h.eng.Go(h.name, func(t *sim.Thread) {
		for len(c.jobs) > 0 {
			j := c.jobs[0]
			c.jobs[0] = homeJob{}
			c.jobs = c.jobs[1:]
			h.process(t, j.req, j.tx)
		}
		c.busy = false
		if len(c.acks) > 0 {
			panic("home: unconsumed acks at line quiesce")
		}
	})
}

func (h *Home) onReq(m *noc.Msg) {
	req := m.Payload.(*ReqMsg)
	h.Reqs++
	h.enqueue(req.Line, homeJob{req: req, tx: m.TX})
}

func (h *Home) onAck(m *noc.Msg) {
	ack := m.Payload.(*AckMsg)
	c := h.ctx(ack.Line)
	c.acks = append(c.acks, ack)
	c.ackCond.Broadcast()
}

// charge advances the worker thread n fast cycles and attributes them.
func (h *Home) charge(t *sim.Thread, tx *sim.TX, n int64) {
	before := h.eng.Now()
	t.SleepCycles(h.clk, n)
	tx.Add(sim.CatFast, h.eng.Now()-before)
}

// collectAcks waits until n acks for line have arrived and returns them.
func (h *Home) collectAcks(t *sim.Thread, line uint64, n int) []*AckMsg {
	c := h.ctx(line)
	for len(c.acks) < n {
		c.ackCond.Wait(t)
	}
	acks := c.acks
	c.acks = nil
	if len(acks) != n {
		panic(fmt.Sprintf("home: expected %d acks, got %d", n, len(acks)))
	}
	return acks
}

func (h *Home) send(dst int, vn noc.VN, bytes int, payload interface{}, tx *sim.TX) {
	h.mesh.Send(&noc.Msg{Src: h.tile, Dst: dst, VN: vn, Bytes: bytes, Payload: payload, TX: tx})
}

func (h *Home) respond(cacheID int, resp *RespMsg, tx *sim.TX) {
	resp.To = cacheID
	h.send(h.cacheTile[cacheID], noc.VNFwd, RespBytes(resp), resp, tx)
}

func (h *Home) forward(cacheID int, fwd *FwdMsg, tx *sim.TX) {
	fwd.To = cacheID
	h.Fwds++
	h.send(h.cacheTile[cacheID], noc.VNFwd, FwdBytes, fwd, tx)
}

// ensureResident makes the line present in the L3 array, fetching from
// DRAM (and evicting an L3 victim, including back-invalidation of its
// private copies) as needed. It returns the resident way.
func (h *Home) ensureResident(t *sim.Thread, line uint64, tx *sim.TX) *cache.Way {
	if w := h.arr.Lookup(line); w != nil {
		return w
	}
	// Choose a victim way whose line is not mid-transaction.
	var victim *cache.Way
	for {
		victim = h.arr.Victim(line)
		if !victim.Valid {
			break
		}
		if c, ok := h.ctxs[victim.Tag]; ok && c.busy {
			// Rare: the LRU victim is busy; wait a cycle and retry.
			t.SleepCycles(h.clk, 1)
			continue
		}
		break
	}
	if victim.Valid {
		// Hold the victim line busy for the duration of the eviction so a
		// concurrent request for it cannot start a second worker.
		vc := h.ctx(victim.Tag)
		vc.busy = true
		h.evictL3(t, victim, tx)
		if len(vc.jobs) > 0 {
			h.startWorker(vc)
		} else {
			vc.busy = false
		}
	}
	// Fetch from DRAM.
	before := h.eng.Now()
	t.Sleep(params.DRAMLatency)
	tx.Add(sim.CatFast, h.eng.Now()-before)
	h.DRAMFills++
	data := h.dram.ReadLine(line)
	w := h.arr.Install(victim, line, data, 0)
	h.dir[line] = newDirEntry()
	return w
}

// evictL3 removes a victim line from the shard: invalidates all private
// copies (collecting dirty data) and writes the final data back to DRAM.
// Runs inline on the caller's thread; the victim line's own job queue is
// used to serialize against concurrent transactions (caller verified the
// line is idle).
func (h *Home) evictL3(t *sim.Thread, victim *cache.Way, tx *sim.TX) {
	line := victim.Tag
	d := h.dir[line]
	if d != nil && d.hasPrivateCopies() {
		targets := d.copies()
		for _, id := range targets {
			h.forward(id, &FwdMsg{Type: FwdInv, Line: line}, tx)
		}
		acks := h.collectAcks(t, line, len(targets))
		for _, a := range acks {
			if a.Present && a.Dirty {
				victim.Data = a.Data
				victim.Dirty = true
			}
		}
	}
	h.dram.WriteLine(line, victim.Data)
	delete(h.dir, line)
	h.arr.Invalidate(victim)
}

// process runs one request transaction to completion on the line's worker
// thread.
func (h *Home) process(t *sim.Thread, req *ReqMsg, tx *sim.TX) {
	h.charge(t, tx, params.DirLookupCycles)
	switch req.Type {
	case ReqLoad:
		h.processLoad(t, req, tx)
	case ReqStore:
		h.processStore(t, req, tx)
	case ReqWB:
		h.processWB(t, req, tx)
	case ReqAmo:
		h.processAmo(t, req, tx)
	case ReqWT:
		h.processWT(t, req, tx)
	default:
		panic("home: unknown request type")
	}
}

func (h *Home) processLoad(t *sim.Thread, req *ReqMsg, tx *sim.TX) {
	w := h.ensureResident(t, req.Line, tx)
	d := h.dir[req.Line]
	if d.owner == req.CacheID || d.sharers[req.CacheID] {
		panic(fmt.Sprintf("home: load from cache %d already holding %#x", req.CacheID, req.Line))
	}
	if d.owner >= 0 {
		// Fetch from the owner; this is the "secondary write-back" path
		// measured in Fig. 9.
		owner := d.owner
		h.forward(owner, &FwdMsg{Type: FwdDowngrade, Line: req.Line}, tx)
		acks := h.collectAcks(t, req.Line, 1)
		a := acks[0]
		h.charge(t, tx, params.L3DataCycles)
		if a.Present && a.Dirty {
			w.Data = a.Data
			h.Writebacks++
		}
		d.owner = -1
		if a.Present && !a.FromWB {
			d.sharers[owner] = true
		}
		d.sharers[req.CacheID] = true
		h.charge(t, tx, params.HomeRespCycles)
		h.respond(req.CacheID, &RespMsg{Kind: RespData, Line: req.Line, Grant: StateS, Data: w.Data}, tx)
		return
	}
	h.charge(t, tx, params.L3DataCycles+params.HomeRespCycles)
	if len(d.sharers) == 0 {
		// Sole copy: grant Exclusive.
		d.owner = req.CacheID
		h.respond(req.CacheID, &RespMsg{Kind: RespData, Line: req.Line, Grant: StateE, Data: w.Data}, tx)
		return
	}
	d.sharers[req.CacheID] = true
	h.respond(req.CacheID, &RespMsg{Kind: RespData, Line: req.Line, Grant: StateS, Data: w.Data}, tx)
}

func (h *Home) processStore(t *sim.Thread, req *ReqMsg, tx *sim.TX) {
	w := h.ensureResident(t, req.Line, tx)
	d := h.dir[req.Line]
	if d.owner == req.CacheID {
		panic(fmt.Sprintf("home: store from owner %d for %#x", req.CacheID, req.Line))
	}
	// Invalidate every other copy.
	var targets []int
	if d.owner >= 0 {
		targets = []int{d.owner}
	} else {
		for id := range d.sharers {
			if id != req.CacheID {
				targets = append(targets, id)
			}
		}
	}
	for _, id := range targets {
		h.forward(id, &FwdMsg{Type: FwdInv, Line: req.Line}, tx)
	}
	if len(targets) > 0 {
		acks := h.collectAcks(t, req.Line, len(targets))
		for _, a := range acks {
			if a.Present && a.Dirty {
				w.Data = a.Data
				h.Writebacks++
			}
		}
	}
	d.owner = req.CacheID
	d.sharers = make(map[int]bool)
	h.charge(t, tx, params.L3DataCycles+params.HomeRespCycles)
	h.respond(req.CacheID, &RespMsg{Kind: RespData, Line: req.Line, Grant: StateM, Data: w.Data}, tx)
}

func (h *Home) processWB(t *sim.Thread, req *ReqMsg, tx *sim.TX) {
	d := h.dir[req.Line]
	inDir := d != nil && (d.owner == req.CacheID || d.sharers[req.CacheID])
	if !inDir {
		// The line was surrendered to a forward while the WB was in
		// flight: the data already reached the home via the ack path.
		h.charge(t, tx, params.HomeRespCycles)
		h.respond(req.CacheID, &RespMsg{Kind: RespWBStale, Line: req.Line}, tx)
		return
	}
	w := h.arr.Lookup(req.Line)
	if w == nil {
		panic("home: directory entry for a line absent from inclusive L3")
	}
	if d.owner == req.CacheID {
		d.owner = -1
		if req.Dirty {
			w.Data = req.Data
			w.Dirty = true
			h.Writebacks++
		}
	} else {
		delete(d.sharers, req.CacheID)
	}
	h.charge(t, tx, params.L3DataCycles+params.HomeRespCycles)
	h.respond(req.CacheID, &RespMsg{Kind: RespWBAck, Line: req.Line}, tx)
}

func (h *Home) processAmo(t *sim.Thread, req *ReqMsg, tx *sim.TX) {
	w := h.ensureResident(t, req.Line, tx)
	d := h.dir[req.Line]
	// Invalidate ALL private copies, including the requester's.
	targets := d.copies()
	for _, id := range targets {
		h.forward(id, &FwdMsg{Type: FwdInv, Line: req.Line}, tx)
	}
	if len(targets) > 0 {
		acks := h.collectAcks(t, req.Line, len(targets))
		for _, a := range acks {
			if a.Present && a.Dirty {
				w.Data = a.Data
			}
		}
	}
	d.owner = -1
	d.sharers = make(map[int]bool)
	// Execute the operation on the L3 copy.
	h.charge(t, tx, params.L3DataCycles)
	off := mem.Offset(req.Addr)
	old, updated := applyAmo(w.Data, off, req.Size, req.Op, req.Operand, req.Operand2)
	w.Data = updated
	w.Dirty = true
	resp := &RespMsg{Kind: RespAmo, Line: req.Line}
	copy(resp.Old[:], old)
	h.charge(t, tx, params.HomeRespCycles)
	h.respond(req.CacheID, resp, tx)
}

func (h *Home) processWT(t *sim.Thread, req *ReqMsg, tx *sim.TX) {
	w := h.ensureResident(t, req.Line, tx)
	d := h.dir[req.Line]
	// Invalidate every copy except the requester's S copy (which is
	// refreshed by the WTAck payload).
	var targets []int
	if d.owner >= 0 && d.owner != req.CacheID {
		targets = []int{d.owner}
	} else {
		for id := range d.sharers {
			if id != req.CacheID {
				targets = append(targets, id)
			}
		}
	}
	for _, id := range targets {
		h.forward(id, &FwdMsg{Type: FwdInv, Line: req.Line}, tx)
	}
	if len(targets) > 0 {
		acks := h.collectAcks(t, req.Line, len(targets))
		for _, a := range acks {
			if a.Present && a.Dirty {
				w.Data = a.Data
			}
		}
	}
	if d.owner >= 0 && d.owner != req.CacheID {
		d.owner = -1
	}
	h.charge(t, tx, params.L3DataCycles)
	off := mem.Offset(req.Addr)
	copy(w.Data[off:off+len(req.Bytes)], req.Bytes)
	w.Dirty = true
	h.charge(t, tx, params.HomeRespCycles)
	h.respond(req.CacheID, &RespMsg{Kind: RespWTAck, Line: req.Line, Data: w.Data}, tx)
}

func applyAmo(line mem.Line, off, size int, op AmoOp, operand, operand2 uint64) (old []byte, updated mem.Line) {
	updated = line
	read := func() uint64 {
		var v uint64
		for i := 0; i < size; i++ {
			v |= uint64(line[off+i]) << (8 * i)
		}
		return v
	}
	write := func(v uint64) {
		for i := 0; i < size; i++ {
			updated[off+i] = byte(v >> (8 * i))
		}
	}
	cur := read()
	switch op {
	case AmoSwap:
		write(operand)
	case AmoAdd:
		write(cur + operand)
	case AmoAnd:
		write(cur & operand)
	case AmoOr:
		write(cur | operand)
	case AmoCAS:
		if cur == operand {
			write(operand2)
		}
	default:
		panic("home: unknown AMO")
	}
	old = make([]byte, size)
	for i := 0; i < size; i++ {
		old[i] = byte(cur >> (8 * i))
	}
	return old, updated
}

// SnapshotLine returns the home's current view of a line (L3 if resident,
// else DRAM) plus directory state; used by tests and the checker.
func (h *Home) SnapshotLine(line uint64) (data mem.Line, owner int, sharers []int) {
	owner = -1
	if w := h.arr.Peek(line); w != nil {
		data = w.Data
	} else {
		data = h.dram.ReadLine(line)
	}
	if d, ok := h.dir[line]; ok {
		owner = d.owner
		for id := range d.sharers {
			sharers = append(sharers, id)
		}
	}
	return data, owner, sharers
}

// Busy reports whether any line transaction is in flight at this home.
func (h *Home) Busy() bool {
	for _, c := range h.ctxs {
		if c.busy || len(c.jobs) > 0 {
			return true
		}
	}
	return false
}
