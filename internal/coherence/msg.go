// Package coherence implements the directory-based MESI cache-coherence
// system modelled after OpenPiton's P-Mesh (paper §IV): private write-back
// caches (used for the CPU L2, the Duet Proxy Cache, and the slow-cache
// baselines) and distributed, inclusive L3 home shards that serialize
// transactions per line.
//
// Protocol summary:
//
//   - VN1 carries cache→home requests (ReqLoad, ReqStore, ReqWB, ReqAmo,
//     ReqWT). The home processes one transaction per line at a time;
//     conflicting requests queue at the home.
//   - VN2 carries home→cache grants, forwards (FwdInv, FwdDowngrade) and
//     write-back acks. Sharing one ordered channel for grants and forwards
//     gives each cache a consistent view of home decisions.
//   - VN3 carries cache→home data returns and invalidation acks.
//
// Evictions are transactional (ReqWB / WBAck) so the directory stays
// exact; the classic forward-during-writeback race is resolved by serving
// forwards from the write-back buffer and letting the home reject the
// stale write-back (WBStale).
package coherence

import (
	"duet/internal/mem"
)

// Private-cache line states (MESI).
const (
	StateI = iota
	StateS
	StateE
	StateM
)

// StateName returns a short name for a MESI state.
func StateName(s int) string {
	switch s {
	case StateI:
		return "I"
	case StateS:
		return "S"
	case StateE:
		return "E"
	case StateM:
		return "M"
	}
	return "?"
}

// ReqType enumerates cache→home request types.
type ReqType int

// Request types.
const (
	ReqLoad  ReqType = iota // read miss: wants S (or E if sole)
	ReqStore                // write miss or upgrade: wants M
	ReqWB                   // eviction write-back (also for clean/S lines)
	ReqAmo                  // atomic operation, executed at the home
	ReqWT                   // write-through store (write-no-allocate mode)
)

func (r ReqType) String() string {
	return [...]string{"Load", "Store", "WB", "Amo", "WT"}[r]
}

// AmoOp enumerates home-side atomic operations.
type AmoOp int

// Atomic operations (modelled after RISC-V AMOs plus CAS for convenience).
const (
	AmoSwap AmoOp = iota
	AmoAdd
	AmoAnd
	AmoOr
	AmoCAS // Operand = expected, Operand2 = desired
)

func (o AmoOp) String() string {
	return [...]string{"swap", "add", "and", "or", "cas"}[o]
}

// ReqMsg is a cache→home request (VN1).
type ReqMsg struct {
	Type    ReqType
	Line    uint64 // line-aligned physical address
	CacheID int

	// Write-back payload.
	Data  mem.Line
	Dirty bool

	// Amo / WT payload.
	Addr     uint64 // full address within Line
	Size     int    // 4 or 8
	Bytes    []byte // WT store data
	Operand  uint64
	Operand2 uint64
	Op       AmoOp
}

// FwdType enumerates home→cache forward types.
type FwdType int

// Forward types.
const (
	FwdInv       FwdType = iota // invalidate; return data if dirty
	FwdDowngrade                // M/E -> S; return data
)

func (f FwdType) String() string {
	if f == FwdInv {
		return "Inv"
	}
	return "Downgrade"
}

// FwdMsg is a home→cache forward (VN2). To identifies the target cache
// for tiles hosting more than one cache.
type FwdMsg struct {
	Type FwdType
	Line uint64
	To   int
}

// RespKind enumerates home→cache response kinds.
type RespKind int

// Response kinds.
const (
	RespData    RespKind = iota // grant for Load/Store with line data
	RespWBAck                   // write-back accepted
	RespWBStale                 // write-back rejected (requester no longer in directory)
	RespAmo                     // atomic result (old value)
	RespWTAck                   // write-through accepted (with updated line)
)

func (k RespKind) String() string {
	return [...]string{"Data", "WBAck", "WBStale", "Amo", "WTAck"}[k]
}

// RespMsg is a home→cache response (VN2). To identifies the target cache.
type RespMsg struct {
	Kind  RespKind
	Line  uint64
	Grant int // granted MESI state for RespData
	Data  mem.Line
	Old   [8]byte // AMO old value (little-endian, Size bytes valid)
	To    int
}

// AckMsg is a cache→home forward acknowledgement (VN3).
type AckMsg struct {
	Line    uint64
	CacheID int
	Present bool // the cache (or its WB buffer) held the line
	Dirty   bool // Data carries modified content
	FromWB  bool // served from the write-back buffer: drop sender from directory
	Data    mem.Line
}

// Message payload sizes in bytes, used for NoC serialization.
const (
	reqHdrBytes  = 8
	respHdrBytes = 8
	lineBytes    = mem.LineBytes
)

// ReqBytes reports the NoC payload size of a request.
func ReqBytes(r *ReqMsg) int {
	switch r.Type {
	case ReqWB:
		if r.Dirty {
			return reqHdrBytes + lineBytes
		}
		return reqHdrBytes
	case ReqWT:
		return reqHdrBytes + len(r.Bytes)
	case ReqAmo:
		return reqHdrBytes + 16
	default:
		return reqHdrBytes
	}
}

// RespBytes reports the NoC payload size of a response.
func RespBytes(m *RespMsg) int {
	switch m.Kind {
	case RespData, RespWTAck:
		return respHdrBytes + lineBytes
	case RespAmo:
		return respHdrBytes + 8
	default:
		return respHdrBytes
	}
}

// AckBytes reports the NoC payload size of an ack.
func AckBytes(a *AckMsg) int {
	if a.Present && (a.Dirty || a.FromWB) {
		return respHdrBytes + lineBytes
	}
	return respHdrBytes
}

// FwdBytes is the NoC payload size of a forward.
const FwdBytes = 8
