package coherence

import (
	"testing"

	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sim"
)

// testRig builds a 2x2 mesh with homes on every tile and n fast caches on
// distinct tiles.
type testRig struct {
	eng    *sim.Engine
	mesh   *noc.Mesh
	dom    *Domain
	caches []*PCache
}

func newRig(t *testing.T, nCaches int) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	clk := sim.NewClock("fast", params.CPUClockPS)
	w, h := 2, 2
	if nCaches > 4 {
		w, h = 4, 4
	}
	mesh := noc.NewMesh(eng, clk, w, h)
	var homeTiles []int
	for i := 0; i < mesh.Tiles(); i++ {
		homeTiles = append(homeTiles, i)
	}
	dom := NewDomain(eng, mesh, homeTiles)
	rig := &testRig{eng: eng, mesh: mesh, dom: dom}
	for i := 0; i < nCaches; i++ {
		c := dom.NewCache(PCacheConfig{
			Name: "L2", ID: i, Tile: i % mesh.Tiles(),
			Clk: clk, Cat: sim.CatFast,
			SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: params.L2MSHRs,
			HitCycles: params.L2HitCycles, MissIssueCycles: params.L2MissIssue,
			FillCycles: params.L2FillCycles, FwdCycles: params.ProxyFwdCycles,
		})
		rig.caches = append(rig.caches, c)
	}
	return rig
}

// settle runs the engine dry and asserts protocol quiescence + invariants.
func (r *testRig) settle(t *testing.T) {
	t.Helper()
	r.eng.Run(0)
	if !r.dom.Quiet() {
		t.Fatal("domain not quiescent after event drain")
	}
	if err := CheckCoherence(r.dom); err != nil {
		t.Fatalf("coherence invariants violated: %v", err)
	}
}

func TestLoadMissGrantsExclusive(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	r.dom.DRAM.Write64(0x1000, 77)
	var got uint64
	r.eng.Go("prog", func(th *sim.Thread) {
		got = Uint64At(c.Load(th, 0x1000, 8, nil))
	})
	r.settle(t)
	if got != 77 {
		t.Fatalf("loaded %d, want 77", got)
	}
	if s := c.State(0x1000); s != StateE {
		t.Fatalf("state = %s, want E (sole copy)", StateName(s))
	}
}

func TestSilentUpgradeEtoM(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	reqsBefore := uint64(0)
	r.eng.Go("prog", func(th *sim.Thread) {
		c.Load(th, 0x2000, 8, nil)
		reqsBefore = r.dom.HomeFor(0x2000).Reqs
		c.Store(th, 0x2000, []byte{1, 2, 3, 4, 5, 6, 7, 8}, nil)
	})
	r.settle(t)
	if s := c.State(0x2000); s != StateM {
		t.Fatalf("state = %s, want M", StateName(s))
	}
	if r.dom.HomeFor(0x2000).Reqs != reqsBefore {
		t.Fatal("E->M upgrade generated home traffic (should be silent)")
	}
}

func TestReadSharing(t *testing.T) {
	r := newRig(t, 2)
	r.dom.DRAM.Write64(0x3000, 123)
	var v0, v1 uint64
	r.eng.Go("p0", func(th *sim.Thread) { v0 = Uint64At(r.caches[0].Load(th, 0x3000, 8, nil)) })
	r.eng.Go("p1", func(th *sim.Thread) {
		th.Sleep(200 * sim.NS) // ensure p0 went first (gets E, then downgraded)
		v1 = Uint64At(r.caches[1].Load(th, 0x3000, 8, nil))
	})
	r.settle(t)
	if v0 != 123 || v1 != 123 {
		t.Fatalf("values %d, %d", v0, v1)
	}
	if s0, s1 := r.caches[0].State(0x3000), r.caches[1].State(0x3000); s0 != StateS || s1 != StateS {
		t.Fatalf("states %s/%s, want S/S", StateName(s0), StateName(s1))
	}
}

func TestDirtyDataForwardedOnLoad(t *testing.T) {
	// Fig. 9's pull pattern: requester misses, other cache holds M.
	r := newRig(t, 2)
	var got uint64
	r.eng.Go("writer", func(th *sim.Thread) {
		r.caches[0].Store(th, 0x4000, le64(0xabcdef), nil)
	})
	r.eng.Go("reader", func(th *sim.Thread) {
		th.Sleep(500 * sim.NS)
		got = Uint64At(r.caches[1].Load(th, 0x4000, 8, nil))
	})
	r.settle(t)
	if got != 0xabcdef {
		t.Fatalf("got %#x, want dirty value", got)
	}
	// After downgrade, writer holds S and home has the data.
	if s := r.caches[0].State(0x4000); s != StateS {
		t.Fatalf("writer state %s, want S", StateName(s))
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3)
	r.dom.DRAM.Write64(0x5000, 9)
	r.eng.Go("p0", func(th *sim.Thread) { r.caches[0].Load(th, 0x5000, 8, nil) })
	r.eng.Go("p1", func(th *sim.Thread) {
		th.Sleep(300 * sim.NS)
		r.caches[1].Load(th, 0x5000, 8, nil)
	})
	r.eng.Go("p2", func(th *sim.Thread) {
		th.Sleep(600 * sim.NS)
		r.caches[2].Store(th, 0x5000, le64(55), nil)
	})
	r.settle(t)
	if s := r.caches[0].State(0x5000); s != StateI {
		t.Fatalf("sharer 0 not invalidated: %s", StateName(s))
	}
	if s := r.caches[1].State(0x5000); s != StateI {
		t.Fatalf("sharer 1 not invalidated: %s", StateName(s))
	}
	if s := r.caches[2].State(0x5000); s != StateM {
		t.Fatalf("writer state %s", StateName(s))
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	// The L2 is 8KB/4-way = 128 sets; lines that alias the same set are
	// 128*16 = 2KB apart. Write 5 aliasing lines to force an eviction.
	base := uint64(0x10000)
	stride := uint64(params.L2Bytes / params.L2Ways)
	r.eng.Go("prog", func(th *sim.Thread) {
		for i := uint64(0); i < 5; i++ {
			c.Store(th, base+i*stride, le64(100+i), nil)
		}
	})
	r.settle(t)
	if c.Evictions == 0 {
		t.Fatal("no eviction happened")
	}
	// The evicted line's data must be recoverable through the home.
	var got uint64
	r.eng.Go("check", func(th *sim.Thread) {
		got = Uint64At(c.Load(th, base, 8, nil))
	})
	r.settle(t)
	if got != 100 {
		t.Fatalf("evicted line lost: %d", got)
	}
}

func TestFlushMovesDataHome(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	r.eng.Go("prog", func(th *sim.Thread) {
		c.Store(th, 0x6000, le64(4242), nil)
	})
	r.eng.Run(0)
	c.FlushAll()
	r.settle(t)
	if got := r.dom.HomeFor(0x6000); got != nil {
		data, owner, _ := got.SnapshotLine(0x6000)
		if owner != -1 {
			t.Fatalf("owner after flush = %d", owner)
		}
		if Uint64At(data[0:8]) != 4242 {
			t.Fatal("flushed data not at home")
		}
	}
}

func TestAtomicCounterExactness(t *testing.T) {
	// N caches increment a shared counter concurrently; the total must be
	// exact — the core atomicity property the PDES/BFS baselines rely on.
	const nCaches, incsEach = 4, 25
	r := newRig(t, nCaches)
	addr := uint64(0x7000)
	for i, c := range r.caches {
		c, i := c, i
		r.eng.Go("inc", func(th *sim.Thread) {
			th.Sleep(sim.Time(i) * sim.NS)
			for k := 0; k < incsEach; k++ {
				c.Amo(th, AmoAdd, addr, 8, 1, 0, nil)
			}
		})
	}
	r.settle(t)
	var got uint64
	r.eng.Go("read", func(th *sim.Thread) {
		got = Uint64At(r.caches[0].Load(th, addr, 8, nil))
	})
	r.settle(t)
	if got != nCaches*incsEach {
		t.Fatalf("counter = %d, want %d", got, nCaches*incsEach)
	}
}

func TestAmoSwapAndCAS(t *testing.T) {
	r := newRig(t, 2)
	var old1, old2, casOld uint64
	r.eng.Go("prog", func(th *sim.Thread) {
		old1 = r.caches[0].Amo(th, AmoSwap, 0x8000, 8, 111, 0, nil)
		old2 = r.caches[1].Amo(th, AmoSwap, 0x8000, 8, 222, 0, nil)
		casOld = r.caches[0].Amo(th, AmoCAS, 0x8000, 8, 222, 333, nil)
	})
	r.settle(t)
	if old1 != 0 || old2 != 111 || casOld != 222 {
		t.Fatalf("swap/cas olds = %d, %d, %d", old1, old2, casOld)
	}
	var final uint64
	r.eng.Go("read", func(th *sim.Thread) {
		final = Uint64At(r.caches[1].Load(th, 0x8000, 8, nil))
	})
	r.settle(t)
	if final != 333 {
		t.Fatalf("final = %d, want 333 (CAS succeeded)", final)
	}
}

func TestAmoInvalidatesRequesterCopy(t *testing.T) {
	r := newRig(t, 1)
	c := r.caches[0]
	r.eng.Go("prog", func(th *sim.Thread) {
		c.Load(th, 0x9000, 8, nil) // E copy
		c.Amo(th, AmoAdd, 0x9000, 8, 5, 0, nil)
	})
	r.settle(t)
	if s := c.State(0x9000); s != StateI {
		t.Fatalf("requester copy after AMO = %s, want I", StateName(s))
	}
}

func TestWriteNoAllocateMode(t *testing.T) {
	r := newRig(t, 1)
	wna := r.dom.NewCache(PCacheConfig{
		Name: "proxy-wna", ID: 10, Tile: 1,
		Clk: r.mesh.Clock(), Cat: sim.CatFast,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: 4,
		HitCycles: 1, MissIssueCycles: 1, FillCycles: 1, FwdCycles: 1,
		WriteNoAllocate: true,
	})
	r.eng.Go("prog", func(th *sim.Thread) {
		wna.Store(th, 0xa000, le64(31337), nil)
	})
	r.settle(t)
	if s := wna.State(0xa000); s != StateI {
		t.Fatalf("WNA store allocated a line: %s", StateName(s))
	}
	var got uint64
	r.eng.Go("read", func(th *sim.Thread) {
		got = Uint64At(r.caches[0].Load(th, 0xa000, 8, nil))
	})
	r.settle(t)
	if got != 31337 {
		t.Fatalf("WT value lost: %d", got)
	}
}

func TestOnLineLostHook(t *testing.T) {
	r := newRig(t, 1)
	var lost []uint64
	proxy := r.dom.NewCache(PCacheConfig{
		Name: "proxy", ID: 11, Tile: 2,
		Clk: r.mesh.Clock(), Cat: sim.CatFast,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: 4,
		HitCycles: 1, MissIssueCycles: 1, FillCycles: 1, FwdCycles: 1,
		OnLineLost: func(line, vpn uint64) { lost = append(lost, line) },
	})
	r.eng.Go("acc", func(th *sim.Thread) {
		proxy.Store(th, 0xb000, le64(1), nil)
	})
	r.eng.Go("cpu", func(th *sim.Thread) {
		th.Sleep(500 * sim.NS)
		r.caches[0].Store(th, 0xb000, le64(2), nil) // invalidates the proxy
	})
	r.settle(t)
	if len(lost) != 1 || lost[0] != 0xb000 {
		t.Fatalf("OnLineLost = %v", lost)
	}
}

func TestL3VictimBackInvalidation(t *testing.T) {
	// Touch enough distinct lines mapping to one home to overflow an L3
	// set, forcing back-invalidation of a privately-held line.
	r := newRig(t, 1)
	c := r.caches[0]
	home := r.dom.HomeFor(0)
	_ = home
	// L3 shard: 64KB/4-way = 1024 sets; with 4 homes, lines interleave.
	// Lines mapping to home tile 0 and the same L3 set are spaced
	// 4 (homes) * 1024 (sets) * 16B = 64KB apart.
	base := uint64(0x100000)
	stride := uint64(4 * 1024 * params.LineBytes)
	r.eng.Go("prog", func(th *sim.Thread) {
		for i := uint64(0); i < 6; i++ {
			c.Store(th, base+i*stride, le64(i+1), nil)
		}
	})
	r.settle(t)
	// At least one early line must have been back-invalidated from the L2
	// (it maps to different L2 sets, so only L3 pressure explains loss).
	invalidated := 0
	for i := uint64(0); i < 6; i++ {
		if c.State(base+i*stride) == StateI {
			invalidated++
		}
	}
	if invalidated == 0 {
		t.Fatal("no back-invalidation despite L3 set overflow")
	}
	// Data must survive in DRAM/L3: read everything back.
	vals := make([]uint64, 6)
	r.eng.Go("check", func(th *sim.Thread) {
		for i := uint64(0); i < 6; i++ {
			vals[i] = Uint64At(c.Load(th, base+i*stride, 8, nil))
		}
	})
	r.settle(t)
	for i, v := range vals {
		if v != uint64(i+1) {
			t.Fatalf("line %d lost after back-invalidation: %d", i, v)
		}
	}
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}
