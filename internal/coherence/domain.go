package coherence

import (
	"fmt"

	"duet/internal/cdc"
	"duet/internal/mem"
	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sim"
)

// Domain wires together the distributed L3 homes and the private caches of
// one coherent system: address-interleaved home mapping, per-tile VN2
// dispatch (a tile can host more than one cache), and optional CDC bridges
// for caches whose logic runs in a slow clock domain.
type Domain struct {
	Eng   *sim.Engine
	Mesh  *noc.Mesh
	DRAM  *mem.Memory
	Homes []*Home

	homeTiles []int
	caches    map[int]*PCache        // cache ID -> cache
	tileRx    map[int]func(*noc.Msg) // VN2 receivers per tile (after dispatch)
	byTile    map[int]map[int]bool   // tile -> cache IDs
}

// NewDomain creates homes at homeTiles (one L3 shard + directory slice
// each) over a fresh DRAM.
func NewDomain(eng *sim.Engine, mesh *noc.Mesh, homeTiles []int) *Domain {
	if len(homeTiles) == 0 {
		panic("coherence: domain needs at least one home tile")
	}
	d := &Domain{
		Eng:       eng,
		Mesh:      mesh,
		DRAM:      mem.New(),
		homeTiles: homeTiles,
		caches:    make(map[int]*PCache),
		tileRx:    make(map[int]func(*noc.Msg)),
		byTile:    make(map[int]map[int]bool),
	}
	for _, t := range homeTiles {
		d.Homes = append(d.Homes, NewHome(eng, mesh.Clock(), mesh, t, d.DRAM))
	}
	return d
}

// HomeOf maps a line address to its home tile (address interleaving).
func (d *Domain) HomeOf(line uint64) int {
	idx := (line / params.LineBytes) % uint64(len(d.homeTiles))
	return d.homeTiles[idx]
}

// HomeFor returns the Home shard owning line.
func (d *Domain) HomeFor(line uint64) *Home {
	idx := (line / params.LineBytes) % uint64(len(d.homeTiles))
	return d.Homes[idx]
}

// NewCache creates and attaches a fast-domain private cache.
func (d *Domain) NewCache(cfg PCacheConfig) *PCache {
	c := NewPCache(d.Eng, d.Mesh, cfg, d.HomeOf, nil)
	d.attach(c, nil)
	return c
}

// NewSlowCache creates a private cache whose logic runs on slowClk and
// whose NoC ports cross clock domains through async FIFOs — the
// "soft/slow cache" organization of commodity FPSoCs (paper Fig. 4/5).
func (d *Domain) NewSlowCache(cfg PCacheConfig, slowClk *sim.Clock) *PCache {
	br := newBridge(d.Eng, d.Mesh, cfg.Tile, d.Mesh.Clock(), slowClk)
	cfg.Clk = slowClk
	cfg.Cat = sim.CatSlow
	c := NewPCache(d.Eng, d.Mesh, cfg, d.HomeOf, br)
	br.cache = c
	d.attach(c, br)
	return c
}

func (d *Domain) attach(c *PCache, br *cdcBridge) {
	if _, dup := d.caches[c.ID()]; dup {
		panic(fmt.Sprintf("coherence: duplicate cache ID %d", c.ID()))
	}
	d.caches[c.ID()] = c
	for _, h := range d.Homes {
		h.AddCache(c.ID(), c.Tile())
	}
	tile := c.Tile()
	if d.byTile[tile] == nil {
		d.byTile[tile] = make(map[int]bool)
		d.Mesh.Register(tile, noc.VNFwd, func(m *noc.Msg) { d.dispatchVN2(tile, m) })
	}
	d.byTile[tile][c.ID()] = true
	if br != nil {
		d.tileRxSet(c.ID(), br.receiveFromNoC)
	} else {
		d.tileRxSet(c.ID(), func(m *noc.Msg) { deliver(c, m) })
	}
}

func (d *Domain) tileRxSet(cacheID int, fn func(*noc.Msg)) {
	d.tileRx[cacheID] = fn
}

func (d *Domain) dispatchVN2(tile int, m *noc.Msg) {
	var to int
	switch p := m.Payload.(type) {
	case *RespMsg:
		to = p.To
	case *FwdMsg:
		to = p.To
	default:
		panic("coherence: unknown VN2 payload")
	}
	rx := d.tileRx[to]
	if rx == nil || !d.byTile[tile][to] {
		panic(fmt.Sprintf("coherence: VN2 message for unknown cache %d at tile %d", to, tile))
	}
	rx(m)
}

func deliver(c *PCache, m *noc.Msg) {
	switch p := m.Payload.(type) {
	case *RespMsg:
		c.DeliverResp(p, m.TX)
	case *FwdMsg:
		c.DeliverFwd(p, m.TX)
	}
}

// Cache returns the attached cache with the given ID.
func (d *Domain) Cache(id int) *PCache { return d.caches[id] }

// Caches returns all attached caches.
func (d *Domain) Caches() []*PCache {
	out := make([]*PCache, 0, len(d.caches))
	for _, c := range d.caches {
		out = append(out, c)
	}
	return out
}

// DebugReadLine returns the current coherent value of a line for test and
// benchmark result checking: a dirty private copy wins over the home's.
// Only meaningful at quiescence.
func (d *Domain) DebugReadLine(line uint64) mem.Line {
	for _, c := range d.caches {
		if data, state, ok := c.peekState(line); ok && state == StateM {
			return data
		}
	}
	data, _, _ := d.HomeFor(line).SnapshotLine(line)
	return data
}

// Quiet reports whether no coherence activity is in flight anywhere.
func (d *Domain) Quiet() bool {
	for _, h := range d.Homes {
		if h.Busy() {
			return false
		}
	}
	for _, c := range d.caches {
		if !c.Quiet() {
			return false
		}
	}
	return true
}

// cdcBridge carries a slow-domain cache's NoC traffic across clock
// domains: inbound mesh messages cross fast→slow before the cache sees
// them; outbound messages cross slow→fast before entering the mesh.
type cdcBridge struct {
	eng   *sim.Engine
	mesh  *noc.Mesh
	cache *PCache

	in      *cdc.Fifo // fast -> slow (toward cache)
	out     *cdc.Fifo // slow -> fast (toward mesh)
	inPush  *cdc.Pusher
	outPush *cdc.Pusher
}

func newBridge(eng *sim.Engine, mesh *noc.Mesh, tile int, fastClk, slowClk *sim.Clock) *cdcBridge {
	b := &cdcBridge{
		eng:  eng,
		mesh: mesh,
		in:   cdc.NewFifo(eng, fmt.Sprintf("bridge%d.in", tile), fastClk, slowClk, params.FifoDepth, params.SyncStages),
		out:  cdc.NewFifo(eng, fmt.Sprintf("bridge%d.out", tile), slowClk, fastClk, params.FifoDepth, params.SyncStages),
	}
	b.inPush = cdc.NewPusher(eng, b.in)
	b.outPush = cdc.NewPusher(eng, b.out)
	eng.Go(fmt.Sprintf("bridge%d.inpump", tile), func(t *sim.Thread) {
		for {
			v, tx := b.in.PopBlocking(t)
			deliver(b.cache, &noc.Msg{Payload: v, TX: tx})
		}
	})
	eng.Go(fmt.Sprintf("bridge%d.outpump", tile), func(t *sim.Thread) {
		for {
			v, tx := b.out.PopBlocking(t)
			m := v.(*noc.Msg)
			m.TX = tx
			b.mesh.Send(m)
		}
	})
	return b
}

// receiveFromNoC enqueues an inbound VN2 message toward the slow domain,
// in order even under FIFO backpressure.
func (b *cdcBridge) receiveFromNoC(m *noc.Msg) {
	b.inPush.Push(m.Payload, m.TX)
}

// Send implements OutPort for the slow cache: outbound messages cross into
// the fast domain first, in order even under FIFO backpressure.
func (b *cdcBridge) Send(m *noc.Msg) {
	b.outPush.Push(m, m.TX)
}
