package coherence

import (
	"fmt"
	"testing"

	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sim"
)

// TestRandomStress drives random loads, stores and atomics from several
// caches over a tiny address pool (maximizing conflicts, upgrades,
// forwards, write-back races and evictions — the caches are deliberately
// miniature), then verifies:
//
//   - per-address data integrity: each 8-byte slot is written by exactly
//     one cache with monotonically increasing unique values, and every
//     load observes a value that existed within the load's lifetime;
//   - final memory state: after flushing all caches, each slot holds its
//     last completed write;
//   - protocol invariants (SWMR + directory exactness) at quiescence.
func TestRandomStress(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runStress(t, seed)
		})
	}
}

type slotHistory struct {
	vals  []uint64   // every committed value, in completion order
	times []sim.Time // completion time of each value
}

func runStress(t *testing.T, seed uint64) {
	eng := sim.NewEngine()
	clk := sim.NewClock("fast", params.CPUClockPS)
	mesh := noc.NewMesh(eng, clk, 2, 2)
	dom := NewDomain(eng, mesh, []int{0, 1, 2, 3})

	const nCaches = 4
	const nLines = 12
	const opsEach = 120
	base := uint64(0x40000)

	var caches []*PCache
	for i := 0; i < nCaches; i++ {
		caches = append(caches, dom.NewCache(PCacheConfig{
			Name: fmt.Sprintf("c%d", i), ID: i, Tile: i,
			Clk: clk, Cat: sim.CatFast,
			// Tiny: 8 lines, 2-way -> constant evictions.
			SizeBytes: 8 * params.LineBytes, Ways: 2, MSHRs: 2,
			HitCycles: params.L2HitCycles, MissIssueCycles: params.L2MissIssue,
			FillCycles: params.L2FillCycles, FwdCycles: params.ProxyFwdCycles,
		}))
	}

	// Each cache owns one 8-byte slot per line: slot address = line + 8 *
	// (cacheID % 2). Two caches share each slot-offset, so we partition:
	// cache i writes slots of lines where line% nCaches... simpler: cache i
	// exclusively writes slot (line*2 + half) where half = i%2 and
	// line%2 == i/2, and can read anything.
	slotAddr := func(line int, half int) uint64 {
		return base + uint64(line)*params.LineBytes + uint64(half)*8
	}
	ownsSlot := func(cacheID, line, half int) bool {
		return half == cacheID%2 && line%2 == cacheID/2
	}

	hist := make(map[uint64]*slotHistory)
	for l := 0; l < nLines; l++ {
		for h := 0; h < 2; h++ {
			hist[slotAddr(l, h)] = &slotHistory{vals: []uint64{0}, times: []sim.Time{0}}
		}
	}
	counterAddr := base + uint64(nLines)*params.LineBytes
	totalIncs := 0

	type loadCheck struct {
		addr     uint64
		started  sim.Time
		finished sim.Time
		value    uint64
	}
	var loads []loadCheck

	rng := seed
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(mod))
	}

	for i := 0; i < nCaches; i++ {
		i := i
		c := caches[i]
		eng.Go(fmt.Sprintf("prog%d", i), func(th *sim.Thread) {
			wcount := uint64(0)
			for op := 0; op < opsEach; op++ {
				line := next(nLines)
				half := next(2)
				switch next(10) {
				case 0, 1, 2, 3: // load anywhere
					addr := slotAddr(line, half)
					start := th.Now()
					v := Uint64At(c.Load(th, addr, 8, nil))
					loads = append(loads, loadCheck{addr: addr, started: start, finished: th.Now(), value: v})
				case 4, 5, 6, 7: // store to an owned slot
					if !ownsSlot(i, line, half) {
						half = i % 2
						line = (line/2)*2 + i/2
						if line >= nLines {
							line -= 2
						}
					}
					addr := slotAddr(line, half)
					wcount++
					val := uint64(i+1)<<32 | wcount
					c.Store(th, addr, le64(val), nil)
					h := hist[addr]
					h.vals = append(h.vals, val)
					h.times = append(h.times, th.Now())
				case 8: // atomic increment of the shared counter
					c.Amo(th, AmoAdd, counterAddr, 8, 1, 0, nil)
					totalIncs++
				case 9: // atomic swap on an owned slot
					if ownsSlot(i, line, half) {
						addr := slotAddr(line, half)
						wcount++
						val := uint64(i+1)<<32 | wcount
						c.Amo(th, AmoSwap, addr, 8, val, 0, nil)
						h := hist[addr]
						h.vals = append(h.vals, val)
						h.times = append(h.times, th.Now())
					}
				}
				th.Sleep(sim.Time(next(30)) * sim.NS)
			}
		})
	}
	eng.Run(0)
	if !dom.Quiet() {
		t.Fatal("not quiescent")
	}
	if err := CheckCoherence(dom); err != nil {
		t.Fatalf("invariants: %v", err)
	}

	// Load linearizability-ish check: the observed value must be one that
	// was current at some instant within [start, finish]: i.e. it was
	// committed at time <= finish, and no newer committed value existed
	// before start (value's successor committed after start).
	for _, lc := range loads {
		h := hist[lc.addr]
		okv := false
		for k, v := range h.vals {
			if v != lc.value {
				continue
			}
			committed := h.times[k]
			if committed > lc.finished {
				continue
			}
			succAfterStart := k+1 >= len(h.vals) || h.times[k+1] >= lc.started
			if succAfterStart {
				okv = true
				break
			}
		}
		if !okv {
			t.Fatalf("load at %#x observed stale/phantom value %#x (window %v..%v; history %v @ %v)",
				lc.addr, lc.value, lc.started, lc.finished, h.vals, h.times)
		}
	}

	// Flush everything home and verify final values.
	for _, c := range caches {
		c.FlushAll()
	}
	eng.Run(0)
	if !dom.Quiet() {
		t.Fatal("not quiescent after flush")
	}
	for addr, h := range hist {
		home := dom.HomeFor(addr)
		data, owner, sharers := home.SnapshotLine(mem64(addr))
		if owner != -1 || len(sharers) != 0 {
			t.Fatalf("slot %#x: residual directory state after flush", addr)
		}
		off := int(addr % params.LineBytes)
		got := Uint64At(data[off : off+8])
		want := h.vals[len(h.vals)-1]
		if got != want {
			t.Fatalf("slot %#x: final=%#x want=%#x", addr, got, want)
		}
	}
	var counter uint64
	eng.Go("final", func(th *sim.Thread) {
		counter = Uint64At(caches[0].Load(th, counterAddr, 8, nil))
	})
	eng.Run(0)
	if counter != uint64(totalIncs) {
		t.Fatalf("counter = %d, want %d", counter, totalIncs)
	}
}

func mem64(addr uint64) uint64 { return addr &^ (params.LineBytes - 1) }

// TestSlowCacheBridge verifies the CDC-bridged slow cache (the FPSoC
// baseline organization): functional correctness and the expected latency
// penalty versus a fast-domain cache.
func TestSlowCacheBridge(t *testing.T) {
	eng := sim.NewEngine()
	fast := sim.NewClock("fast", params.CPUClockPS)
	slow := sim.ClockMHz("efpga", 100)
	mesh := noc.NewMesh(eng, fast, 2, 1)
	dom := NewDomain(eng, mesh, []int{0, 1})

	cpu := dom.NewCache(PCacheConfig{
		Name: "L2", ID: 0, Tile: 0, Clk: fast, Cat: sim.CatFast,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: params.L2MSHRs,
		HitCycles: params.L2HitCycles, MissIssueCycles: params.L2MissIssue,
		FillCycles: params.L2FillCycles, FwdCycles: params.ProxyFwdCycles,
	})
	slowC := dom.NewSlowCache(PCacheConfig{
		Name: "slow", ID: 1, Tile: 1,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: 1,
		HitCycles: params.SlowCacheTagCycles, MissIssueCycles: 1,
		FillCycles: params.SlowCacheProtoCycles, FwdCycles: params.SlowCacheFwdCycles,
	}, slow)

	// The slow cache writes; the CPU pulls the line (the "CPU Pull w/
	// Slow Cache" pattern of Fig. 9).
	var pullLatency sim.Time
	var got uint64
	eng.Go("acc", func(th *sim.Thread) {
		slowC.Store(th, 0xc000, le64(777), nil)
	})
	eng.Go("cpu", func(th *sim.Thread) {
		th.Sleep(2 * sim.US)
		start := th.Now()
		got = Uint64At(cpu.Load(th, 0xc000, 8, nil))
		pullLatency = th.Now() - start
	})
	eng.Run(0)
	if got != 777 {
		t.Fatalf("pulled %d", got)
	}
	if err := CheckCoherence(dom); err != nil {
		t.Fatal(err)
	}
	// The pull crossed into the 100MHz domain (>=2 slow edges = 20ns) and
	// paid slow processing (6 slow cycles = 60ns): it must be far slower
	// than a fast-domain transfer.
	if pullLatency < 80*sim.NS {
		t.Fatalf("slow-cache pull suspiciously fast: %v", pullLatency)
	}

	// Same pattern against a fast proxy-like cache for contrast.
	eng2 := sim.NewEngine()
	mesh2 := noc.NewMesh(eng2, fast, 2, 1)
	dom2 := NewDomain(eng2, mesh2, []int{0, 1})
	cpu2 := dom2.NewCache(PCacheConfig{
		Name: "L2", ID: 0, Tile: 0, Clk: fast, Cat: sim.CatFast,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: params.L2MSHRs,
		HitCycles: params.L2HitCycles, MissIssueCycles: params.L2MissIssue,
		FillCycles: params.L2FillCycles, FwdCycles: params.ProxyFwdCycles,
	})
	proxy := dom2.NewCache(PCacheConfig{
		Name: "proxy", ID: 1, Tile: 1, Clk: fast, Cat: sim.CatFast,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: params.L2MSHRs,
		HitCycles: params.L2HitCycles, MissIssueCycles: params.L2MissIssue,
		FillCycles: params.L2FillCycles, FwdCycles: params.ProxyFwdCycles,
	})
	var fastLatency sim.Time
	eng2.Go("acc", func(th *sim.Thread) { proxy.Store(th, 0xc000, le64(1), nil) })
	eng2.Go("cpu", func(th *sim.Thread) {
		th.Sleep(2 * sim.US)
		start := th.Now()
		cpu2.Load(th, 0xc000, 8, nil)
		fastLatency = th.Now() - start
	})
	eng2.Run(0)
	if fastLatency >= pullLatency {
		t.Fatalf("fast-domain pull (%v) not faster than slow-domain pull (%v)", fastLatency, pullLatency)
	}
	t.Logf("CPU pull: proxy(fast)=%v slow(100MHz)=%v", fastLatency, pullLatency)
}
