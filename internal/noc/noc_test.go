package noc

import (
	"testing"
	"testing/quick"

	"duet/internal/params"
	"duet/internal/sim"
)

func mesh(w, h int) (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	clk := sim.NewClock("fast", params.CPUClockPS)
	return eng, NewMesh(eng, clk, w, h)
}

func TestRouteXY(t *testing.T) {
	_, m := mesh(4, 4)
	// From (0,0)=0 to (2,1)=6: X first -> 1, 2, then Y -> 6.
	path := m.route(0, 6)
	want := []int{1, 2, 6}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if m.Hops(0, 6) != 3 {
		t.Fatalf("hops = %d", m.Hops(0, 6))
	}
	if m.Hops(5, 5) != 0 {
		t.Fatal("self hops != 0")
	}
}

func TestDeliveryLatency(t *testing.T) {
	eng, m := mesh(2, 1)
	var at sim.Time
	m.Register(1, VNReq, func(msg *Msg) { at = eng.Now() })
	eng.At(0, func() {
		m.Send(&Msg{Src: 0, Dst: 1, VN: VNReq, Bytes: 8})
	})
	eng.Run(0)
	// 1 hop, 8B payload = 2 flits: router(2) + link(1) + tail(1) + eject(1)
	// = 5 cycles = 5ns.
	want := sim.Time(5 * params.CPUClockPS)
	if at != want {
		t.Fatalf("1-hop latency = %v, want %v", at, want)
	}
}

func TestLocalDelivery(t *testing.T) {
	eng, m := mesh(2, 2)
	var at sim.Time
	m.Register(0, VNFwd, func(msg *Msg) { at = eng.Now() })
	eng.At(0, func() { m.Send(&Msg{Src: 0, Dst: 0, VN: VNFwd, Bytes: 8}) })
	eng.Run(0)
	want := sim.Time((params.RouterCycles + params.EjectCycles) * params.CPUClockPS)
	if at != want {
		t.Fatalf("local latency = %v, want %v", at, want)
	}
}

func TestPointToPointOrdering(t *testing.T) {
	eng, m := mesh(4, 1)
	var got []int
	m.Register(3, VNFwd, func(msg *Msg) { got = append(got, msg.Payload.(int)) })
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			m.Send(&Msg{Src: 0, Dst: 3, VN: VNFwd, Bytes: 24, Payload: i})
		}
	})
	eng.Run(0)
	if len(got) != 10 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered: %v", got)
		}
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two messages injected at the same time over the same link must be
	// serialized; a big payload delays the second message.
	eng, m := mesh(2, 1)
	var times []sim.Time
	m.Register(1, VNData, func(msg *Msg) { times = append(times, eng.Now()) })
	eng.At(0, func() {
		m.Send(&Msg{Src: 0, Dst: 1, VN: VNData, Bytes: 64}) // 1+4 flits
		m.Send(&Msg{Src: 0, Dst: 1, VN: VNData, Bytes: 8})
	})
	eng.Run(0)
	if len(times) != 2 {
		t.Fatal("lost message")
	}
	if times[1] <= times[0] {
		t.Fatalf("no serialization: %v", times)
	}
	// First (64B = 5 flits) delivered at 2+1+4+1 = 8ns; second (8B = 2
	// flits) waits for the link until 7ns, delivered at 7+1+1+1 = 10ns.
	if d := times[1] - times[0]; d != 2*params.CPUClockPS {
		t.Fatalf("serialization gap = %v, want 2ns", d)
	}
}

func TestVNsDoNotInterfere(t *testing.T) {
	eng, m := mesh(2, 1)
	var reqAt, fwdAt sim.Time
	m.Register(1, VNReq, func(msg *Msg) { reqAt = eng.Now() })
	m.Register(1, VNFwd, func(msg *Msg) { fwdAt = eng.Now() })
	eng.At(0, func() {
		m.Send(&Msg{Src: 0, Dst: 1, VN: VNReq, Bytes: 512}) // hog VNReq link
		m.Send(&Msg{Src: 0, Dst: 1, VN: VNFwd, Bytes: 8})
	})
	eng.Run(0)
	if fwdAt >= reqAt {
		t.Fatalf("VNFwd blocked behind VNReq: req=%v fwd=%v", reqAt, fwdAt)
	}
}

func TestTXAttribution(t *testing.T) {
	eng, m := mesh(4, 1)
	tx := sim.NewTX(0)
	m.Register(3, VNReq, func(msg *Msg) {})
	eng.At(0, func() { m.Send(&Msg{Src: 0, Dst: 3, VN: VNReq, Bytes: 8, TX: tx}) })
	eng.Run(0)
	// 3 hops * (2+1) + tail 1 + eject 1 = 11 cycles.
	if tx.Parts[sim.CatNoC] != 11*params.CPUClockPS {
		t.Fatalf("NoC attribution = %v", tx.Parts[sim.CatNoC])
	}
}

func TestStats(t *testing.T) {
	eng, m := mesh(2, 2)
	m.Register(3, VNReq, func(msg *Msg) {})
	eng.At(0, func() {
		m.Send(&Msg{Src: 0, Dst: 3, VN: VNReq, Bytes: 40})
	})
	eng.Run(0)
	if m.Messages != 1 || m.BytesSent != 40 || m.VNCount(VNReq) != 1 {
		t.Fatalf("stats: msgs=%d bytes=%d", m.Messages, m.BytesSent)
	}
}

// Property: XY routing visits Hops(src,dst) tiles and delivery latency is
// monotone in hop count for equal payloads; ordering holds per (src,dst,vn)
// for random message streams.
func TestPropertyOrderingRandomStreams(t *testing.T) {
	f := func(seed uint8) bool {
		eng, m := mesh(4, 4)
		type key struct{ src, dst int }
		got := map[key][]int{}
		for d := 0; d < 16; d++ {
			d := d
			m.Register(d, VNReq, func(msg *Msg) {
				k := key{msg.Src, d}
				got[k] = append(got[k], msg.Payload.(int))
			})
		}
		// Deterministic pseudo-random streams from a seed.
		x := uint32(seed) + 1
		next := func(mod int) int {
			x = x*1664525 + 1013904223
			return int(x>>16) % mod
		}
		// Sequence numbers are assigned at send time, so per-key sequences
		// are injected in increasing order regardless of event scheduling.
		sent := map[key]int{}
		for i := 0; i < 200; i++ {
			src, dst := next(16), next(16)
			at := sim.Time(next(50)) * sim.NS
			bytes := 8 + next(32)
			eng.At(at, func() {
				k := key{src, dst}
				seqv := sent[k]
				sent[k]++
				m.Send(&Msg{Src: src, Dst: dst, VN: VNReq, Bytes: bytes, Payload: seqv})
			})
		}
		eng.Run(0)
		for k, vs := range got {
			if len(vs) != sent[k] {
				return false
			}
			for i, v := range vs {
				if v != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
