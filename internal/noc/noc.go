// Package noc models the network-on-chip: a 2D mesh with XY dimension-order
// routing, 16-byte links, per-link serialization, and point-to-point ordered
// delivery per (source, destination, virtual network) — the ordering
// guarantee Dolly inherits from OpenPiton P-Mesh and that the Proxy Cache
// protocol relies on (paper §II-C).
//
// Three virtual networks carry the coherence protocol in the P-Mesh style
// (VN1 cache→home requests, VN2 home→cache grants and forwards, VN3
// cache→home data returns and acks); two more carry memory-mapped I/O.
// Sharing grants and forwards on VN2 is what makes home→cache traffic
// ordered, which the private-cache protocol requires.
package noc

import (
	"fmt"

	"duet/internal/params"
	"duet/internal/sim"
)

// VN identifies a virtual network.
type VN int

// Virtual networks.
const (
	VNReq      VN = iota // cache -> home: coherence requests
	VNFwd                // home -> cache: grants, forwards, acks
	VNData               // cache -> home: data returns, inv acks
	VNMMIOReq            // core -> device: MMIO requests
	VNMMIOResp           // device -> core: MMIO responses
	NumVNs
)

func (v VN) String() string {
	switch v {
	case VNReq:
		return "VN1.req"
	case VNFwd:
		return "VN2.fwd"
	case VNData:
		return "VN3.data"
	case VNMMIOReq:
		return "VN4.mmio-req"
	case VNMMIOResp:
		return "VN5.mmio-resp"
	}
	return "VN?"
}

// Msg is one network message. Bytes is the payload size used for link
// serialization (a header flit is always added).
type Msg struct {
	Src, Dst int
	VN       VN
	Bytes    int
	Payload  interface{}
	TX       *sim.TX
}

// Handler consumes delivered messages. Handlers run in engine context at
// the delivery time.
type Handler func(*Msg)

type linkKey struct {
	from, to int
	vn       VN
}

// Mesh is the 2D-mesh network fabric.
type Mesh struct {
	eng  *sim.Engine
	clk  *sim.Clock
	W, H int

	handlers map[int][NumVNs]Handler
	linkFree map[linkKey]sim.Time

	// deliverFn is the one delivery callback for the whole mesh; Send
	// schedules it with the message as the event argument, so injecting a
	// message allocates no per-message closure.
	deliverFn func(any)

	// Stats
	Messages  uint64
	BytesSent uint64
	perVN     [NumVNs]uint64
}

// NewMesh builds a W x H mesh clocked by clk (the fast clock).
func NewMesh(eng *sim.Engine, clk *sim.Clock, w, h int) *Mesh {
	if w <= 0 || h <= 0 {
		panic("noc: bad mesh dimensions")
	}
	m := &Mesh{
		eng:      eng,
		clk:      clk,
		W:        w,
		H:        h,
		handlers: make(map[int][NumVNs]Handler),
		linkFree: make(map[linkKey]sim.Time),
	}
	m.deliverFn = func(a any) { m.deliver(a.(*Msg)) }
	return m
}

// Tiles reports the number of tiles.
func (m *Mesh) Tiles() int { return m.W * m.H }

// Clock reports the mesh clock.
func (m *Mesh) Clock() *sim.Clock { return m.clk }

// XY reports the coordinates of tile id.
func (m *Mesh) XY(id int) (x, y int) { return id % m.W, id / m.W }

// TileAt reports the tile id at coordinates (x, y).
func (m *Mesh) TileAt(x, y int) int { return y*m.W + x }

// Register installs h as the consumer for vn traffic delivered to tile.
// Registering twice replaces the previous handler.
func (m *Mesh) Register(tile int, vn VN, h Handler) {
	if tile < 0 || tile >= m.Tiles() {
		panic(fmt.Sprintf("noc: register on bad tile %d", tile))
	}
	hs := m.handlers[tile]
	hs[vn] = h
	m.handlers[tile] = hs
}

// route returns the sequence of tile ids visited from src to dst under XY
// routing, excluding src, including dst.
func (m *Mesh) route(src, dst int) []int {
	var path []int
	x, y := m.XY(src)
	dx, dy := m.XY(dst)
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, m.TileAt(x, y))
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, m.TileAt(x, y))
	}
	return path
}

// Hops reports the hop count between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	x, y := m.XY(src)
	dx, dy := m.XY(dst)
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	return abs(x-dx) + abs(y-dy)
}

// flits reports the number of link flits for a payload of n bytes
// (one header flit plus payload flits).
func flits(n int) int64 {
	f := int64(1)
	f += int64((n + params.FlitBytes - 1) / params.FlitBytes)
	return f
}

// Send injects msg at the current time. Delivery is scheduled at the
// arrival time computed from the route, per-link serialization, and flit
// count. Messages between the same (src, dst, vn) never reorder.
func (m *Mesh) Send(msg *Msg) {
	if msg.Src < 0 || msg.Src >= m.Tiles() || msg.Dst < 0 || msg.Dst >= m.Tiles() {
		panic(fmt.Sprintf("noc: send %d->%d outside %dx%d mesh", msg.Src, msg.Dst, m.W, m.H))
	}
	m.Messages++
	m.BytesSent += uint64(msg.Bytes)
	m.perVN[msg.VN]++

	start := m.clk.NextEdge(m.eng.Now())
	t := start
	nf := flits(msg.Bytes)
	cur := msg.Src
	// Walk the XY route hop by hop (same order as route(), without
	// materializing the path: Send is the per-message hot path).
	hop := func(next int) {
		// Router pipeline at the current node.
		t += m.clk.Cycles(params.RouterCycles)
		// Acquire the outgoing link; serialize behind earlier traffic.
		lk := linkKey{from: cur, to: next, vn: msg.VN}
		dep := t
		if free, ok := m.linkFree[lk]; ok && free > dep {
			dep = free
		}
		m.linkFree[lk] = dep + m.clk.Cycles(nf*params.LinkCycles)
		// Head flit reaches the next node after one link traversal.
		t = dep + m.clk.Cycles(params.LinkCycles)
		cur = next
	}
	x, y := m.XY(msg.Src)
	dx, dy := m.XY(msg.Dst)
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		hop(m.TileAt(x, y))
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		hop(m.TileAt(x, y))
	}
	if msg.Src == msg.Dst {
		// Local delivery still pays router + ejection.
		t += m.clk.Cycles(params.RouterCycles)
	} else {
		// The message is usable only once its tail flit arrives.
		t += m.clk.Cycles((nf - 1) * params.LinkCycles)
	}
	t += m.clk.Cycles(params.EjectCycles)

	msg.TX.Add(sim.CatNoC, t-start)
	m.eng.AtArg(t, m.deliverFn, msg)
}

func (m *Mesh) deliver(msg *Msg) {
	hs, ok := m.handlers[msg.Dst]
	if !ok || hs[msg.VN] == nil {
		panic(fmt.Sprintf("noc: no handler for %v at tile %d (msg from %d)", msg.VN, msg.Dst, msg.Src))
	}
	hs[msg.VN](msg)
}

// VNCount reports how many messages were sent on vn.
func (m *Mesh) VNCount(vn VN) uint64 { return m.perVN[vn] }
