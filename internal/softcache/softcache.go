// Package softcache implements the eFPGA-emulated soft cache of paper
// §II-C: a write-through cache built from fabric resources, tightly
// integrated into accelerator datapaths, kept coherent by the Proxy
// Cache's ordered invalidation stream (which it consumes without ever
// acknowledging). A bounded write buffer with optional read-after-write
// forwarding is provided, exactly the knobs the paper leaves to the
// accelerator designer.
package softcache

import (
	"fmt"

	"duet/internal/cache"
	"duet/internal/efpga"
	"duet/internal/mem"
	"duet/internal/mmu"
	"duet/internal/params"
	"duet/internal/sim"
)

// Config describes a soft cache instance.
type Config struct {
	SizeBytes int
	Ways      int
	// WriteBufferDepth bounds outstanding write-through stores (default 4).
	WriteBufferDepth int
	// RAWForwarding lets loads hit pending write-buffer entries; the
	// accelerator designer must confirm this is compatible with the
	// application's consistency assumptions (paper §II-C).
	RAWForwarding bool
	// VIVT indexes the cache by virtual address (the hub must run in
	// virtual mode; invalidations are reverse-mapped through the VPN the
	// Proxy Cache stores per line).
	VIVT bool
	// HitCycles overrides the per-hit cost (default
	// params.SoftCacheHitCycles). Fully pipelined accelerator datapaths
	// set 0 and account for the access in their own initiation interval.
	HitCycles int64
}

type wbufEntry struct {
	va   uint64
	data []byte
	done bool
}

// Cache is one soft cache bound to a Memory Hub port.
type Cache struct {
	cfg   Config
	eng   *sim.Engine
	clk   *sim.Clock
	under efpga.MemIntf
	arr   *cache.Array

	wbuf     []*wbufEntry
	wbufCond *sim.Cond

	// Stats.
	Hits, Misses, Invalidations, RAWHits uint64
}

// New builds a soft cache over a hub port and registers it as the hub's
// invalidation sink. It must be created after the accelerator environment
// is available (fabric clock known).
func New(env *efpga.Env, under efpga.MemIntf, cfg Config) *Cache {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 2 * 1024
	}
	if cfg.Ways == 0 {
		cfg.Ways = 2
	}
	if cfg.WriteBufferDepth == 0 {
		cfg.WriteBufferDepth = 4
	}
	if cfg.HitCycles == 0 {
		cfg.HitCycles = params.SoftCacheHitCycles
	}
	c := &Cache{
		cfg:      cfg,
		eng:      env.Eng,
		clk:      env.Clk,
		under:    under,
		arr:      cache.NewArray(cfg.SizeBytes, cfg.Ways),
		wbufCond: sim.NewCond(env.Eng),
	}
	under.SetInvSink(c.onInvalidate)
	return c
}

// onInvalidate consumes the Proxy Cache's ordered invalidation stream.
// No acknowledgement is ever sent (the Proxy Cache novelty).
func (c *Cache) onInvalidate(pa, vpnTag uint64) {
	c.Invalidations++
	addr := pa
	if c.cfg.VIVT {
		if vpnTag == 0 {
			return // untagged line: cannot reverse-map; nothing cached
		}
		addr = (vpnTag-1)*mmu.PageSize + pa%mmu.PageSize
	}
	if w := c.arr.Peek(mem.LineAddr(addr)); w != nil {
		c.arr.Invalidate(w)
	}
}

// Load reads size bytes at va through the soft cache.
func (c *Cache) Load(t *sim.Thread, va uint64, size int) ([]byte, error) {
	// Write-buffer lookup (RAW forwarding).
	if c.cfg.RAWForwarding {
		for i := len(c.wbuf) - 1; i >= 0; i-- {
			e := c.wbuf[i]
			if !e.done && e.va == va && len(e.data) == size {
				c.RAWHits++
				t.SleepCycles(c.clk, 1)
				out := make([]byte, size)
				copy(out, e.data)
				return out, nil
			}
		}
	}
	line := mem.LineAddr(va)
	if c.cfg.HitCycles > 0 {
		t.SleepCycles(c.clk, c.cfg.HitCycles)
	}
	if w := c.arr.Lookup(line); w != nil {
		c.Hits++
		off := mem.Offset(va)
		out := make([]byte, size)
		copy(out, w.Data[off:off+size])
		return out, nil
	}
	c.Misses++
	b, err := c.under.LoadLine(t, line)
	if err != nil {
		return nil, err
	}
	var data mem.Line
	copy(data[:], b)
	c.install(line, data)
	off := mem.Offset(va)
	out := make([]byte, size)
	copy(out, data[off:off+size])
	return out, nil
}

// Load64 reads a uint64 through the soft cache.
func (c *Cache) Load64(t *sim.Thread, va uint64) (uint64, error) {
	b, err := c.Load(t, va, 8)
	if err != nil {
		return 0, err
	}
	return le64(b), nil
}

// Load32 reads a uint32 through the soft cache.
func (c *Cache) Load32(t *sim.Thread, va uint64) (uint32, error) {
	b, err := c.Load(t, va, 4)
	if err != nil {
		return 0, err
	}
	return uint32(le64(b)), nil
}

func (c *Cache) install(line uint64, data mem.Line) {
	w := c.arr.Victim(line)
	if w.Valid {
		// Write-through cache: lines are always clean; silent eviction.
		c.arr.Invalidate(w)
	}
	c.arr.Install(w, line, data, 1)
}

// Store writes data at va: the local copy (if any) is updated and the
// store is written through the hub via the bounded write buffer.
func (c *Cache) Store(t *sim.Thread, va uint64, data []byte) error {
	if len(data) > params.HubStoreBytes {
		return fmt.Errorf("softcache: store wider than %d bytes", params.HubStoreBytes)
	}
	for c.pendingWrites() >= c.cfg.WriteBufferDepth {
		c.wbufCond.Wait(t)
	}
	if c.cfg.HitCycles > 0 {
		t.SleepCycles(c.clk, 1)
	}
	if w := c.arr.Peek(mem.LineAddr(va)); w != nil {
		off := mem.Offset(va)
		copy(w.Data[off:off+len(data)], data)
	}
	e := &wbufEntry{va: va, data: append([]byte(nil), data...)}
	c.wbuf = append(c.wbuf, e)
	h := c.under.StoreAsync(t, va, data)
	// Retire the buffer entry when the write-through completes.
	c.eng.Go("softcache.retire", func(rt *sim.Thread) {
		c.under.Await(rt, h)
		e.done = true
		c.gcWbuf()
		c.wbufCond.Broadcast()
	})
	return nil
}

// Store64 writes a uint64 through the soft cache.
func (c *Cache) Store64(t *sim.Thread, va uint64, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return c.Store(t, va, b[:])
}

// Store32 writes a uint32 through the soft cache.
func (c *Cache) Store32(t *sim.Thread, va uint64, v uint32) error {
	var b [4]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return c.Store(t, va, b[:])
}

// Amo forwards an atomic operation to the hub ("incrementally more
// message types" when the Proxy Cache's atomics switch is on, §II-C).
// The local copy of the line is dropped first: atomics execute at the
// home, so a cached copy would go stale, and the write buffer must not
// hold writes to the same line across the atomic.
func (c *Cache) Amo(t *sim.Thread, op int, va uint64, size int, operand, operand2 uint64) (uint64, error) {
	for c.pendingWrites() > 0 {
		// Order the atomic behind buffered write-throughs.
		c.wbufCond.Wait(t)
	}
	if w := c.arr.Peek(mem.LineAddr(va)); w != nil {
		c.arr.Invalidate(w)
	}
	if c.cfg.HitCycles > 0 {
		t.SleepCycles(c.clk, 1)
	}
	return c.under.Amo(t, op, va, size, operand, operand2)
}

// Drain blocks until all buffered writes have committed.
func (c *Cache) Drain(t *sim.Thread) {
	for c.pendingWrites() > 0 {
		c.wbufCond.Wait(t)
	}
}

func (c *Cache) pendingWrites() int {
	n := 0
	for _, e := range c.wbuf {
		if !e.done {
			n++
		}
	}
	return n
}

func (c *Cache) gcWbuf() {
	keep := c.wbuf[:0]
	for _, e := range c.wbuf {
		if !e.done {
			keep = append(keep, e)
		}
	}
	c.wbuf = keep
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
