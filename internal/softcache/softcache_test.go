package softcache

import (
	"testing"

	"duet/internal/efpga"
	"duet/internal/sim"
)

// fakePort is a deterministic in-test Memory Hub port: line loads and
// stores against a backing map with a fixed latency.
type fakePort struct {
	eng     *sim.Engine
	clk     *sim.Clock
	backing map[uint64][]byte
	invSink func(pa, vpn uint64)
	seq     uint64
	done    map[uint64][]byte
	cond    *sim.Cond

	loads, stores, amos int
}

func newFakePort(eng *sim.Engine, clk *sim.Clock) *fakePort {
	return &fakePort{
		eng: eng, clk: clk,
		backing: make(map[uint64][]byte),
		done:    make(map[uint64][]byte),
		cond:    sim.NewCond(eng),
	}
}

const fakeLatency = 50 * sim.NS

func (p *fakePort) line(va uint64) []byte {
	l := va &^ 15
	if p.backing[l] == nil {
		p.backing[l] = make([]byte, 16)
	}
	return p.backing[l]
}

func (p *fakePort) LoadAsync(t *sim.Thread, va uint64, size int) uint64 {
	p.loads++
	p.seq++
	h := p.seq
	off := int(va & 15)
	p.eng.After(fakeLatency, func() {
		out := make([]byte, size)
		copy(out, p.line(va)[off:off+size])
		p.done[h] = out
		p.cond.Broadcast()
	})
	return h
}

func (p *fakePort) StoreAsync(t *sim.Thread, va uint64, data []byte) uint64 {
	p.stores++
	p.seq++
	h := p.seq
	cp := append([]byte(nil), data...)
	p.eng.After(fakeLatency, func() {
		copy(p.line(va)[va&15:], cp)
		p.done[h] = []byte{}
		p.cond.Broadcast()
	})
	return h
}

func (p *fakePort) Await(t *sim.Thread, h uint64) ([]byte, error) {
	for p.done[h] == nil {
		p.cond.Wait(t)
	}
	out := p.done[h]
	delete(p.done, h)
	return out, nil
}

func (p *fakePort) Load(t *sim.Thread, va uint64, size int) ([]byte, error) {
	return p.Await(t, p.LoadAsync(t, va, size))
}

func (p *fakePort) LoadLine(t *sim.Thread, va uint64) ([]byte, error) {
	return p.Load(t, va&^15, 16)
}

func (p *fakePort) Store(t *sim.Thread, va uint64, data []byte) error {
	_, err := p.Await(t, p.StoreAsync(t, va, data))
	return err
}

func (p *fakePort) Amo(t *sim.Thread, op int, va uint64, size int, a, b uint64) (uint64, error) {
	p.amos++
	t.Sleep(fakeLatency)
	line := p.line(va)
	off := va & 15
	var old uint64
	for i := 0; i < size; i++ {
		old |= uint64(line[off+uint64(i)]) << (8 * i)
	}
	nv := old + a // add semantics suffice for the test
	for i := 0; i < size; i++ {
		line[off+uint64(i)] = byte(nv >> (8 * i))
	}
	return old, nil
}

func (p *fakePort) SetInvSink(fn func(pa, vpn uint64)) { p.invSink = fn }

var _ efpga.MemIntf = (*fakePort)(nil)

func rig() (*sim.Engine, *efpga.Env, *fakePort) {
	eng := sim.NewEngine()
	clk := sim.ClockMHz("efpga", 100)
	port := newFakePort(eng, clk)
	env := &efpga.Env{Eng: eng, Clk: clk}
	return eng, env, port
}

func TestSoftCacheHitAvoidsPort(t *testing.T) {
	eng, env, port := rig()
	port.line(0x100)[0] = 42
	c := New(env, port, Config{SizeBytes: 512, Ways: 2})
	var v1, v2 uint64
	eng.Go("acc", func(th *sim.Thread) {
		v1, _ = c.Load64(th, 0x100)
		v2, _ = c.Load64(th, 0x100)
	})
	eng.Run(0)
	if v1 != 42 || v2 != 42 {
		t.Fatalf("loads = %d, %d", v1, v2)
	}
	if port.loads != 1 {
		t.Fatalf("port loads = %d, want 1 (second access must hit)", port.loads)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestSoftCacheWriteThrough(t *testing.T) {
	eng, env, port := rig()
	c := New(env, port, Config{SizeBytes: 512, Ways: 2})
	eng.Go("acc", func(th *sim.Thread) {
		c.Load64(th, 0x200) // allocate
		c.Store64(th, 0x200, 77)
		c.Drain(th)
	})
	eng.Run(0)
	if port.stores != 1 {
		t.Fatalf("stores = %d (not written through)", port.stores)
	}
	if got := port.line(0x200)[0]; got != 77 {
		t.Fatalf("backing = %d", got)
	}
	// Local copy updated too.
	var v uint64
	eng.Go("check", func(th *sim.Thread) { v, _ = c.Load64(th, 0x200) })
	eng.Run(0)
	if v != 77 {
		t.Fatalf("local copy = %d", v)
	}
}

func TestSoftCacheRAWForwarding(t *testing.T) {
	eng, env, _ := rig()
	cFwd := New(env, newFakePort(eng, env.Clk), Config{SizeBytes: 512, Ways: 2, RAWForwarding: true})
	var got uint64
	var at sim.Time
	eng.Go("acc", func(th *sim.Thread) {
		cFwd.Store64(th, 0x300, 11)
		start := th.Now()
		got, _ = cFwd.Load64(th, 0x300) // must forward from the write buffer
		at = th.Now() - start
	})
	eng.Run(0)
	if got != 11 {
		t.Fatalf("RAW value = %d", got)
	}
	if cFwd.RAWHits != 1 {
		t.Fatalf("RAWHits = %d", cFwd.RAWHits)
	}
	if at > 20*sim.NS {
		t.Fatalf("RAW forward took %v (went to the port?)", at)
	}
}

func TestSoftCacheWriteBufferBackpressure(t *testing.T) {
	eng, env, port := rig()
	c := New(env, port, Config{SizeBytes: 512, Ways: 2, WriteBufferDepth: 2})
	var issued []sim.Time
	eng.Go("acc", func(th *sim.Thread) {
		for i := 0; i < 4; i++ {
			c.Store64(th, uint64(0x400+i*16), uint64(i))
			issued = append(issued, th.Now())
		}
		c.Drain(th)
	})
	eng.Run(0)
	// The third store must stall until a buffer slot frees (~50ns port
	// latency), unlike the first two.
	if d := issued[2] - issued[1]; d < 30*sim.NS {
		t.Fatalf("no backpressure: third store issued %v after second", d)
	}
	if port.stores != 4 {
		t.Fatalf("stores = %d", port.stores)
	}
}

func TestSoftCacheInvalidationStream(t *testing.T) {
	eng, env, port := rig()
	port.line(0x500)[0] = 1
	c := New(env, port, Config{SizeBytes: 512, Ways: 2})
	var v1, v2 uint64
	eng.Go("acc", func(th *sim.Thread) {
		v1, _ = c.Load64(th, 0x500)
		th.Sleep(200 * sim.NS)
		v2, _ = c.Load64(th, 0x500) // after inv: must refetch
	})
	eng.At(100*sim.NS, func() {
		port.line(0x500)[0] = 2
		port.invSink(0x500, 0) // proxy pushes an invalidation
	})
	eng.Run(0)
	if v1 != 1 || v2 != 2 {
		t.Fatalf("loads = %d, %d; invalidation not applied", v1, v2)
	}
	if c.Invalidations != 1 {
		t.Fatalf("invalidations = %d", c.Invalidations)
	}
	if port.loads != 2 {
		t.Fatalf("port loads = %d (stale hit after inv?)", port.loads)
	}
}

func TestSoftCacheAmoPassthrough(t *testing.T) {
	eng, env, port := rig()
	port.line(0x600)[0] = 10
	c := New(env, port, Config{SizeBytes: 512, Ways: 2})
	var old, reread uint64
	eng.Go("acc", func(th *sim.Thread) {
		c.Load64(th, 0x600)                   // cache the line
		c.Store64(th, 0x600+8, 1)             // leave a buffered write
		old, _ = c.Amo(th, 0, 0x600, 8, 5, 0) // must drain + invalidate + execute at home
		reread, _ = c.Load64(th, 0x600)       // refetch: sees the atomic's result
	})
	eng.Run(0)
	if port.amos != 1 {
		t.Fatalf("amos = %d", port.amos)
	}
	if old != 10 || reread != 15 {
		t.Fatalf("amo old=%d reread=%d, want 10, 15", old, reread)
	}
}
