// Package faults is the deterministic fault-injection layer of the
// serving stack: a seeded, fully reproducible Plan of modeled failures,
// injected below the sched.Backend seam so the cycle-level and analytic
// model backends fail identically — the same faults at the same
// simulated instants, whatever executes the job.
//
// Three fault classes are modeled:
//
//   - Wedge-on-reprogram: with a per-fabric probability, a placement
//     that triggers reconfiguration never completes it — the modeled
//     ProgWedged outcome (see core.Adapter's bounded programming poll).
//     The injector charges a detection occupancy, then fails the job
//     with an error wrapping sched.ErrWedged; the scheduler quarantines
//     the fabric and retries the victim (sched/faults.go).
//   - Service-time blowups: with a per-job probability, a job's service
//     takes BlowupFactor times its modeled occupancy — a straggler, not
//     a failure.
//   - Shard crash/rejoin schedules: simulated-time outage windows per
//     cluster shard, enforced by the scheduler's downtime state machine
//     and visible to cluster front ends for reroute and hedging.
//
// Determinism: every draw is a pure counted hash of (seed, fault class,
// shard, site, sequence) — no RNG stream that scheduling order could
// perturb. The nth reprogram attempt on worker w of shard s wedges, or
// not, identically on every backend and at every study-pool width,
// because the scheduler's dispatch sequence is itself deterministic.
package faults

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
)

// DefaultWedgeDetect is the occupancy charged before a wedged reprogram
// is detected: the modeled driver's bounded programming-status poll
// giving up. Overridden per plan by WedgeDetect.
const DefaultWedgeDetect = 50 * sim.US

// DefaultBlowupFactor is the service-time multiplier of a blown-up job
// when the plan does not set one.
const DefaultBlowupFactor = 4.0

// Plan is one seeded, fully reproducible fault scenario. The zero Plan
// (and a nil *Plan) injects nothing; an empty plan wired into a stack
// still installs the injection seam, which is what the fault-free
// overhead benchmark measures.
type Plan struct {
	// Seed keys every draw; two runs of one plan make identical draws.
	Seed int64

	// WedgeProb is the probability that a reprogram attempt wedges its
	// fabric; WedgeProbs, when non-empty, overrides it per worker index
	// (entries beyond its length fall back to WedgeProb). CPU soft-path
	// workers never reprogram and so never wedge.
	WedgeProb  float64
	WedgeProbs []float64
	// WedgeDetect is the fabric occupancy charged from dispatch to
	// wedge detection (default DefaultWedgeDetect).
	WedgeDetect sim.Time
	// MaxRetries is the per-job re-queue budget after wedges, applied
	// through sched.FaultConfig.
	MaxRetries int

	// BlowupProb is the per-job probability of a service-time straggler;
	// BlowupFactor is its multiplier (default DefaultBlowupFactor).
	BlowupProb   float64
	BlowupFactor float64

	// EnforceDeadlines drops queued jobs past their absolute deadline
	// with a distinct timed-out outcome (sched.ErrTimedOut).
	EnforceDeadlines bool

	// ShardDown lists outage windows per cluster shard (index = shard;
	// shards past its length never crash). Windows must be ascending and
	// non-overlapping per shard.
	ShardDown [][]sched.Downtime

	// Hedge, when positive, makes cluster front ends duplicate arrivals
	// routed to a shard that will crash within Hedge of the arrival
	// instant onto a healthy backup shard — hedged re-dispatch ahead of
	// the crash the victim arrival would be killed by.
	Hedge sim.Time

	// RepairDelay, when positive, turns quarantine into a transient
	// state: a wedged fabric is scheduled for repair after a seeded delay
	// derived from RepairDelay — exponential backoff over the worker's
	// lifetime wedge count, with a deterministic ±50% jitter drawn like
	// every other fault (see RepairDelayFor). Zero keeps quarantine
	// permanent, the pre-repair behavior.
	RepairDelay sim.Time
	// MaxRepairs bounds repairs per worker (0 = unlimited): a worker
	// wedging past its budget is quarantined permanently.
	MaxRepairs int
	// RecoverHold is the cluster front ends' recovery hysteresis: the
	// health-weighted front end keeps deprioritizing a shard whose
	// outage window closed less than RecoverHold ago.
	RecoverHold sim.Time

	// Domains groups shards into named correlated-failure domains (racks,
	// power feeds): a domain's outage windows down every member shard at
	// once, and its wedge probability raises every member worker's.
	Domains []Domain
}

// Domain is one named correlated-failure domain — a rack or power group
// of cluster shards that fails together instead of independently.
type Domain struct {
	// Name labels the domain in flag specs and reports.
	Name string
	// Shards lists the member shard indices.
	Shards []int
	// Down lists the domain's outage windows: every member shard is down
	// for each window, merged into the shard's own ShardDown schedule
	// (see DownFor).
	Down []sched.Downtime
	// WedgeProb, when higher than a member worker's own probability,
	// raises it — a domain-wide event (power sag, cooling failure) that
	// makes every member fabric wedge-prone at once.
	WedgeProb float64
}

// member reports whether shard belongs to the domain.
func (d *Domain) member(shard int) bool {
	for _, s := range d.Shards {
		if s == shard {
			return true
		}
	}
	return false
}

// ParseDomains parses a -domains flag spec: ';'-separated domains, each
//
//	name=SHARD[+SHARD...][@FROM-TO[,FROM-TO...]][~WEDGEPROB]
//
// with FROM/TO in microseconds of simulated time. For example
//
//	rack0=0+1@4000-9000;feedA=2@1000-2000,5000-6000~0.8
//
// declares rack0 downing shards 0 and 1 for [4ms, 9ms) and feedA
// downing shard 2 for two windows while raising its wedge probability
// to 0.8. An empty spec returns no domains.
func ParseDomains(spec string) ([]Domain, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Domain
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: domain %q: want name=shards[@windows][~prob]", part)
		}
		d := Domain{Name: name}
		if body, prob, ok := strings.Cut(rest, "~"); ok {
			p, err := strconv.ParseFloat(strings.TrimSpace(prob), 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faults: domain %q: bad wedge probability %q", name, prob)
			}
			d.WedgeProb = p
			rest = body
		}
		shardsSpec, winSpec, _ := strings.Cut(rest, "@")
		for _, s := range strings.Split(shardsSpec, "+") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: domain %q: bad shard %q", name, s)
			}
			d.Shards = append(d.Shards, n)
		}
		if len(d.Shards) == 0 {
			return nil, fmt.Errorf("faults: domain %q: no member shards", name)
		}
		for _, w := range strings.Split(winSpec, ",") {
			w = strings.TrimSpace(w)
			if w == "" {
				continue
			}
			fromS, toS, ok := strings.Cut(w, "-")
			if !ok {
				return nil, fmt.Errorf("faults: domain %q: window %q: want FROM-TO in microseconds", name, w)
			}
			from, err1 := strconv.ParseInt(strings.TrimSpace(fromS), 10, 64)
			to, err2 := strconv.ParseInt(strings.TrimSpace(toS), 10, 64)
			if err1 != nil || err2 != nil || from < 0 || to <= from {
				return nil, fmt.Errorf("faults: domain %q: bad window %q", name, w)
			}
			d.Down = append(d.Down, sched.Downtime{From: sim.Time(from) * sim.US, To: sim.Time(to) * sim.US})
		}
		out = append(out, d)
	}
	return out, nil
}

// Empty reports whether the plan injects nothing anywhere — wrappers
// built from it are pure pass-through.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	if p.WedgeProb > 0 || p.BlowupProb > 0 || p.EnforceDeadlines || p.MaxRetries > 0 || p.Hedge > 0 {
		return false
	}
	if p.RepairDelay > 0 || p.RecoverHold > 0 {
		return false
	}
	for _, w := range p.WedgeProbs {
		if w > 0 {
			return false
		}
	}
	for _, d := range p.ShardDown {
		if len(d) > 0 {
			return false
		}
	}
	for _, d := range p.Domains {
		if len(d.Down) > 0 || d.WedgeProb > 0 {
			return false
		}
	}
	return true
}

// DownFor reports shard's effective outage schedule: its own ShardDown
// windows merged with every member domain's windows — ascending and
// non-overlapping, the form sched.FaultConfig.Down requires. Nil for
// shards with no windows anywhere.
func (p *Plan) DownFor(shard int) []sched.Downtime {
	if p == nil || shard < 0 {
		return nil
	}
	var base []sched.Downtime
	if shard < len(p.ShardDown) {
		base = p.ShardDown[shard]
	}
	extra := false
	for i := range p.Domains {
		if len(p.Domains[i].Down) > 0 && p.Domains[i].member(shard) {
			extra = true
			break
		}
	}
	if !extra {
		return base
	}
	all := append([]sched.Downtime(nil), base...)
	for i := range p.Domains {
		if p.Domains[i].member(shard) {
			all = append(all, p.Domains[i].Down...)
		}
	}
	return mergeDowntimes(all)
}

// mergeDowntimes sorts windows by opening instant and coalesces
// overlapping or touching ones into the ascending non-overlapping form
// the scheduler's downtime state machine walks.
func mergeDowntimes(ws []sched.Downtime) []sched.Downtime {
	slices.SortFunc(ws, func(a, b sched.Downtime) int {
		switch {
		case a.From != b.From:
			if a.From < b.From {
				return -1
			}
			return 1
		case a.To != b.To:
			if a.To < b.To {
				return -1
			}
			return 1
		}
		return 0
	})
	var out []sched.Downtime
	for _, w := range ws {
		if w.To <= w.From {
			continue
		}
		if n := len(out); n > 0 && w.From <= out[n-1].To {
			if w.To > out[n-1].To {
				out[n-1].To = w.To
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// EffectiveShardDown renders every shard's effective outage schedule
// (own windows plus member-domain windows) for a cluster of the given
// shard count — what cluster front ends route and hedge against. The
// result covers max(shards, the widest schedule the plan names).
func (p *Plan) EffectiveShardDown(shards int) [][]sched.Downtime {
	if p == nil {
		return nil
	}
	n := shards
	if len(p.ShardDown) > n {
		n = len(p.ShardDown)
	}
	for i := range p.Domains {
		for _, s := range p.Domains[i].Shards {
			if s+1 > n {
				n = s + 1
			}
		}
	}
	if n == 0 {
		return nil
	}
	out := make([][]sched.Downtime, n)
	any := false
	for s := 0; s < n; s++ {
		out[s] = p.DownFor(s)
		if len(out[s]) > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// FaultConfig renders the plan's scheduler-side knobs for one shard.
func (p *Plan) FaultConfig(shard int) sched.FaultConfig {
	if p == nil {
		return sched.FaultConfig{}
	}
	fc := sched.FaultConfig{
		MaxRetries:       p.MaxRetries,
		EnforceDeadlines: p.EnforceDeadlines,
		Down:             p.DownFor(shard),
	}
	if p.RepairDelay > 0 {
		fc.Repair = func(worker, nth int) sim.Time {
			return p.RepairDelayFor(shard, worker, nth)
		}
	}
	return fc
}

// maxBackoffShift caps the repair backoff at 64x the base delay.
const maxBackoffShift = 6

// RepairDelayFor is the seeded repair delay for the nth lifetime wedge
// of (shard, worker), counting from 1: RepairDelay doubled per prior
// wedge (capped at 64x) with a deterministic ±50% jitter — a pure
// counted draw keyed like every other fault, so the cycle and model
// backends schedule identical repair instants. Zero (permanent
// quarantine) when the plan has no repair process or the worker has
// exhausted MaxRepairs.
func (p *Plan) RepairDelayFor(shard, worker, nth int) sim.Time {
	if p == nil || p.RepairDelay <= 0 || nth <= 0 {
		return 0
	}
	if p.MaxRepairs > 0 && nth > p.MaxRepairs {
		return 0
	}
	shift := nth - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	base := p.RepairDelay << shift
	jitter := 0.5 + draw(uint64(p.Seed), classRepair, uint64(shard), uint64(worker), uint64(nth))
	return sim.Time(float64(base) * jitter)
}

// wedgeProbFor resolves the effective wedge probability of one worker on
// one shard: the per-worker override (falling back to the shared
// probability), raised to any member domain's higher probability.
func (p *Plan) wedgeProbFor(shard, worker int) float64 {
	prob := p.WedgeProb
	if worker >= 0 && worker < len(p.WedgeProbs) {
		prob = p.WedgeProbs[worker]
	}
	for i := range p.Domains {
		if p.Domains[i].WedgeProb > prob && p.Domains[i].member(shard) {
			prob = p.Domains[i].WedgeProb
		}
	}
	return prob
}

// Fault-class discriminators mixed into every draw, so the wedge,
// blowup and repair streams are independent even at equal sites.
const (
	classWedge uint64 = 1 + iota
	classBlowup
	classRepair
)

// mix is a splitmix64-style finalizer over the draw's key material.
func mix(vals ...uint64) uint64 {
	z := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		z += v
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// draw maps key material to a uniform in [0, 1).
func draw(vals ...uint64) float64 {
	return float64(mix(vals...)>>11) / (1 << 53)
}

// Injector makes one shard's fault draws. It is shared by the shard's
// backend wrappers and is not safe for concurrent use (a shard runs on
// one timeline).
type Injector struct {
	plan  *Plan
	shard int
}

// NewInjector builds shard's injector over plan (nil plan injects
// nothing).
func NewInjector(plan *Plan, shard int) *Injector {
	return &Injector{plan: plan, shard: shard}
}

// wedge decides whether worker's nth reprogram attempt wedges.
func (in *Injector) wedge(worker, attempt int) bool {
	if in.plan == nil {
		return false
	}
	prob := in.plan.wedgeProbFor(in.shard, worker)
	if prob <= 0 {
		return false
	}
	return draw(uint64(in.plan.Seed), classWedge, uint64(in.shard), uint64(worker), uint64(attempt)) < prob
}

// blowup reports a job's service-time multiplier: 1 for normal service.
func (in *Injector) blowup(jobID int) float64 {
	if in.plan == nil || in.plan.BlowupProb <= 0 {
		return 1
	}
	if draw(uint64(in.plan.Seed), classBlowup, uint64(in.shard), uint64(jobID)) >= in.plan.BlowupProb {
		return 1
	}
	if in.plan.BlowupFactor > 0 {
		return in.plan.BlowupFactor
	}
	return DefaultBlowupFactor
}

// detect is the plan's wedge-detection occupancy.
func (in *Injector) detect() sim.Time {
	if in.plan != nil && in.plan.WedgeDetect > 0 {
		return in.plan.WedgeDetect
	}
	return DefaultWedgeDetect
}

// Timeline is the deferred-callback surface the wrapper charges fault
// occupancies on. Both *model.Events and *sim.Engine satisfy it — the
// same seam the model backends schedule through.
type Timeline interface {
	AfterArg(d sim.Time, fn func(any), arg any)
}

// Wrap decorates one execution backend with the injector's fault model;
// worker is its scheduler index (the wedge-probability and draw site).
// The wrapper is transparent under an empty plan: every dispatch goes
// straight to the inner backend after two cheap probability checks.
func (in *Injector) Wrap(tl Timeline, worker int, be sched.Backend) sched.Backend {
	b := &backend{inner: be, tl: tl, in: in, worker: worker}
	b.wedgeFn = func(a any) {
		j := a.(*sched.Job)
		b.done(j, fmt.Errorf("faults: reprogram of %q on worker %d: %w", j.App, b.worker, sched.ErrWedged))
	}
	b.holdFn = func(a any) { b.done(a.(*sched.Job), nil) }
	return b
}

// backend is the fault-injecting sched.Backend decorator. One job is in
// flight per worker, so the blowup extension rides in a field and both
// callbacks stay closure-free.
type backend struct {
	inner  sched.Backend
	tl     Timeline
	in     *Injector
	worker int

	// attempts counts reprogram attempts on this worker — the wedge
	// draw's deterministic sequence number.
	attempts int

	done    func(*sched.Job, error)
	extra   sim.Time // blowup service extension of the in-flight job
	wedgeFn func(any)
	holdFn  func(any)
}

func (b *backend) Kind() sched.BackendKind { return b.inner.Kind() }
func (b *backend) Name() string            { return b.inner.Name() }

func (b *backend) Capacity() efpga.Resources            { return b.inner.Capacity() }
func (b *backend) Register(bs *efpga.Bitstream) error   { return b.inner.Register(bs) }
func (b *backend) Resident() string                     { return b.inner.Resident() }
func (b *backend) ReconfigCost(app *sched.App) sim.Time { return b.inner.ReconfigCost(app) }
func (b *backend) ServiceTime(app *sched.App, n int) sim.Time {
	return b.inner.ServiceTime(app, n)
}

// Scrub forwards the repair process's probationary configuration-state
// discard to scrub-capable inner backends (see sched.Scrubber).
func (b *backend) Scrub() {
	if sc, ok := b.inner.(sched.Scrubber); ok {
		sc.Scrub()
	}
}

// Bind interposes on the completion path: the inner backend completes
// into innerDone, which defers blown-up jobs before handing them to the
// scheduler's real callback.
func (b *backend) Bind(settleCycles int64, done func(*sched.Job, error)) {
	b.done = done
	b.inner.Bind(settleCycles, b.innerDone)
}

func (b *backend) innerDone(j *sched.Job, err error) {
	if err != nil || b.extra <= 0 {
		b.done(j, err)
		return
	}
	d := b.extra
	b.extra = 0
	b.tl.AfterArg(d, b.holdFn, j)
}

// Dispatch draws the job's faults, then delegates. A placement that
// would reprogram (nonzero modeled reconfig cost) counts as an attempt;
// a wedged attempt never reaches the inner backend — the job occupies
// the worker for the detection time and fails with sched.ErrWedged,
// leaving the inner backend's residency untouched (the fabric is
// quarantined anyway).
func (b *backend) Dispatch(j *sched.Job, app *sched.App) {
	if b.inner.ReconfigCost(app) > 0 {
		b.attempts++
		if b.in.wedge(b.worker, b.attempts) {
			// The attempt started a reconfiguration; the observer
			// contract (Reprogrammed settled synchronously at dispatch)
			// holds for wedged attempts too.
			j.Reprogrammed = true
			b.tl.AfterArg(b.in.detect(), b.wedgeFn, j)
			return
		}
	}
	b.extra = 0
	if f := b.in.blowup(j.ID); f > 1 {
		b.extra = sim.Time((f - 1) * float64(b.inner.ServiceTime(app, j.InputSize)))
	}
	b.inner.Dispatch(j, app)
}
