// Package faults is the deterministic fault-injection layer of the
// serving stack: a seeded, fully reproducible Plan of modeled failures,
// injected below the sched.Backend seam so the cycle-level and analytic
// model backends fail identically — the same faults at the same
// simulated instants, whatever executes the job.
//
// Three fault classes are modeled:
//
//   - Wedge-on-reprogram: with a per-fabric probability, a placement
//     that triggers reconfiguration never completes it — the modeled
//     ProgWedged outcome (see core.Adapter's bounded programming poll).
//     The injector charges a detection occupancy, then fails the job
//     with an error wrapping sched.ErrWedged; the scheduler quarantines
//     the fabric and retries the victim (sched/faults.go).
//   - Service-time blowups: with a per-job probability, a job's service
//     takes BlowupFactor times its modeled occupancy — a straggler, not
//     a failure.
//   - Shard crash/rejoin schedules: simulated-time outage windows per
//     cluster shard, enforced by the scheduler's downtime state machine
//     and visible to cluster front ends for reroute and hedging.
//
// Determinism: every draw is a pure counted hash of (seed, fault class,
// shard, site, sequence) — no RNG stream that scheduling order could
// perturb. The nth reprogram attempt on worker w of shard s wedges, or
// not, identically on every backend and at every study-pool width,
// because the scheduler's dispatch sequence is itself deterministic.
package faults

import (
	"fmt"

	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
)

// DefaultWedgeDetect is the occupancy charged before a wedged reprogram
// is detected: the modeled driver's bounded programming-status poll
// giving up. Overridden per plan by WedgeDetect.
const DefaultWedgeDetect = 50 * sim.US

// DefaultBlowupFactor is the service-time multiplier of a blown-up job
// when the plan does not set one.
const DefaultBlowupFactor = 4.0

// Plan is one seeded, fully reproducible fault scenario. The zero Plan
// (and a nil *Plan) injects nothing; an empty plan wired into a stack
// still installs the injection seam, which is what the fault-free
// overhead benchmark measures.
type Plan struct {
	// Seed keys every draw; two runs of one plan make identical draws.
	Seed int64

	// WedgeProb is the probability that a reprogram attempt wedges its
	// fabric; WedgeProbs, when non-empty, overrides it per worker index
	// (entries beyond its length fall back to WedgeProb). CPU soft-path
	// workers never reprogram and so never wedge.
	WedgeProb  float64
	WedgeProbs []float64
	// WedgeDetect is the fabric occupancy charged from dispatch to
	// wedge detection (default DefaultWedgeDetect).
	WedgeDetect sim.Time
	// MaxRetries is the per-job re-queue budget after wedges, applied
	// through sched.FaultConfig.
	MaxRetries int

	// BlowupProb is the per-job probability of a service-time straggler;
	// BlowupFactor is its multiplier (default DefaultBlowupFactor).
	BlowupProb   float64
	BlowupFactor float64

	// EnforceDeadlines drops queued jobs past their absolute deadline
	// with a distinct timed-out outcome (sched.ErrTimedOut).
	EnforceDeadlines bool

	// ShardDown lists outage windows per cluster shard (index = shard;
	// shards past its length never crash). Windows must be ascending and
	// non-overlapping per shard.
	ShardDown [][]sched.Downtime

	// Hedge, when positive, makes cluster front ends duplicate arrivals
	// routed to a shard that will crash within Hedge of the arrival
	// instant onto a healthy backup shard — hedged re-dispatch ahead of
	// the crash the victim arrival would be killed by.
	Hedge sim.Time
}

// Empty reports whether the plan injects nothing anywhere — wrappers
// built from it are pure pass-through.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	if p.WedgeProb > 0 || p.BlowupProb > 0 || p.EnforceDeadlines || p.MaxRetries > 0 || p.Hedge > 0 {
		return false
	}
	for _, w := range p.WedgeProbs {
		if w > 0 {
			return false
		}
	}
	for _, d := range p.ShardDown {
		if len(d) > 0 {
			return false
		}
	}
	return true
}

// DownFor reports shard's outage schedule (nil past the plan's length).
func (p *Plan) DownFor(shard int) []sched.Downtime {
	if p == nil || shard < 0 || shard >= len(p.ShardDown) {
		return nil
	}
	return p.ShardDown[shard]
}

// FaultConfig renders the plan's scheduler-side knobs for one shard.
func (p *Plan) FaultConfig(shard int) sched.FaultConfig {
	if p == nil {
		return sched.FaultConfig{}
	}
	return sched.FaultConfig{
		MaxRetries:       p.MaxRetries,
		EnforceDeadlines: p.EnforceDeadlines,
		Down:             p.DownFor(shard),
	}
}

// wedgeProbFor resolves the effective wedge probability of one worker.
func (p *Plan) wedgeProbFor(worker int) float64 {
	if worker >= 0 && worker < len(p.WedgeProbs) {
		return p.WedgeProbs[worker]
	}
	return p.WedgeProb
}

// Fault-class discriminators mixed into every draw, so the wedge and
// blowup streams are independent even at equal sites.
const (
	classWedge uint64 = 1 + iota
	classBlowup
)

// mix is a splitmix64-style finalizer over the draw's key material.
func mix(vals ...uint64) uint64 {
	z := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		z += v
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// draw maps key material to a uniform in [0, 1).
func draw(vals ...uint64) float64 {
	return float64(mix(vals...)>>11) / (1 << 53)
}

// Injector makes one shard's fault draws. It is shared by the shard's
// backend wrappers and is not safe for concurrent use (a shard runs on
// one timeline).
type Injector struct {
	plan  *Plan
	shard int
}

// NewInjector builds shard's injector over plan (nil plan injects
// nothing).
func NewInjector(plan *Plan, shard int) *Injector {
	return &Injector{plan: plan, shard: shard}
}

// wedge decides whether worker's nth reprogram attempt wedges.
func (in *Injector) wedge(worker, attempt int) bool {
	if in.plan == nil {
		return false
	}
	prob := in.plan.wedgeProbFor(worker)
	if prob <= 0 {
		return false
	}
	return draw(uint64(in.plan.Seed), classWedge, uint64(in.shard), uint64(worker), uint64(attempt)) < prob
}

// blowup reports a job's service-time multiplier: 1 for normal service.
func (in *Injector) blowup(jobID int) float64 {
	if in.plan == nil || in.plan.BlowupProb <= 0 {
		return 1
	}
	if draw(uint64(in.plan.Seed), classBlowup, uint64(in.shard), uint64(jobID)) >= in.plan.BlowupProb {
		return 1
	}
	if in.plan.BlowupFactor > 0 {
		return in.plan.BlowupFactor
	}
	return DefaultBlowupFactor
}

// detect is the plan's wedge-detection occupancy.
func (in *Injector) detect() sim.Time {
	if in.plan != nil && in.plan.WedgeDetect > 0 {
		return in.plan.WedgeDetect
	}
	return DefaultWedgeDetect
}

// Timeline is the deferred-callback surface the wrapper charges fault
// occupancies on. Both *model.Events and *sim.Engine satisfy it — the
// same seam the model backends schedule through.
type Timeline interface {
	AfterArg(d sim.Time, fn func(any), arg any)
}

// Wrap decorates one execution backend with the injector's fault model;
// worker is its scheduler index (the wedge-probability and draw site).
// The wrapper is transparent under an empty plan: every dispatch goes
// straight to the inner backend after two cheap probability checks.
func (in *Injector) Wrap(tl Timeline, worker int, be sched.Backend) sched.Backend {
	b := &backend{inner: be, tl: tl, in: in, worker: worker}
	b.wedgeFn = func(a any) {
		j := a.(*sched.Job)
		b.done(j, fmt.Errorf("faults: reprogram of %q on worker %d: %w", j.App, b.worker, sched.ErrWedged))
	}
	b.holdFn = func(a any) { b.done(a.(*sched.Job), nil) }
	return b
}

// backend is the fault-injecting sched.Backend decorator. One job is in
// flight per worker, so the blowup extension rides in a field and both
// callbacks stay closure-free.
type backend struct {
	inner  sched.Backend
	tl     Timeline
	in     *Injector
	worker int

	// attempts counts reprogram attempts on this worker — the wedge
	// draw's deterministic sequence number.
	attempts int

	done    func(*sched.Job, error)
	extra   sim.Time // blowup service extension of the in-flight job
	wedgeFn func(any)
	holdFn  func(any)
}

func (b *backend) Kind() sched.BackendKind { return b.inner.Kind() }
func (b *backend) Name() string            { return b.inner.Name() }

func (b *backend) Capacity() efpga.Resources            { return b.inner.Capacity() }
func (b *backend) Register(bs *efpga.Bitstream) error   { return b.inner.Register(bs) }
func (b *backend) Resident() string                     { return b.inner.Resident() }
func (b *backend) ReconfigCost(app *sched.App) sim.Time { return b.inner.ReconfigCost(app) }
func (b *backend) ServiceTime(app *sched.App, n int) sim.Time {
	return b.inner.ServiceTime(app, n)
}

// Bind interposes on the completion path: the inner backend completes
// into innerDone, which defers blown-up jobs before handing them to the
// scheduler's real callback.
func (b *backend) Bind(settleCycles int64, done func(*sched.Job, error)) {
	b.done = done
	b.inner.Bind(settleCycles, b.innerDone)
}

func (b *backend) innerDone(j *sched.Job, err error) {
	if err != nil || b.extra <= 0 {
		b.done(j, err)
		return
	}
	d := b.extra
	b.extra = 0
	b.tl.AfterArg(d, b.holdFn, j)
}

// Dispatch draws the job's faults, then delegates. A placement that
// would reprogram (nonzero modeled reconfig cost) counts as an attempt;
// a wedged attempt never reaches the inner backend — the job occupies
// the worker for the detection time and fails with sched.ErrWedged,
// leaving the inner backend's residency untouched (the fabric is
// quarantined anyway).
func (b *backend) Dispatch(j *sched.Job, app *sched.App) {
	if b.inner.ReconfigCost(app) > 0 {
		b.attempts++
		if b.in.wedge(b.worker, b.attempts) {
			// The attempt started a reconfiguration; the observer
			// contract (Reprogrammed settled synchronously at dispatch)
			// holds for wedged attempts too.
			j.Reprogrammed = true
			b.tl.AfterArg(b.in.detect(), b.wedgeFn, j)
			return
		}
	}
	b.extra = 0
	if f := b.in.blowup(j.ID); f > 1 {
		b.extra = sim.Time((f - 1) * float64(b.inner.ServiceTime(app, j.InputSize)))
	}
	b.inner.Dispatch(j, app)
}
