package faults

import (
	"errors"
	"slices"
	"testing"

	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
)

// TestDrawsDeterministic: draws are pure functions of their key material
// — two injectors over equal plans agree site by site, which is the
// whole determinism story (no RNG stream scheduling order could skew).
func TestDrawsDeterministic(t *testing.T) {
	plan := &Plan{Seed: 42, WedgeProb: 0.3, BlowupProb: 0.2, BlowupFactor: 3}
	a := NewInjector(plan, 1)
	b := NewInjector(&Plan{Seed: 42, WedgeProb: 0.3, BlowupProb: 0.2, BlowupFactor: 3}, 1)
	for attempt := 1; attempt <= 200; attempt++ {
		if a.wedge(0, attempt) != b.wedge(0, attempt) {
			t.Fatalf("wedge draw diverged at attempt %d", attempt)
		}
		if a.blowup(attempt) != b.blowup(attempt) {
			t.Fatalf("blowup draw diverged at job %d", attempt)
		}
	}
}

// TestDrawsKeyedBySite: changing any key component — seed, shard,
// worker — changes the draw stream; and the wedge and blowup classes
// are independent even at equal sites.
func TestDrawsKeyedBySite(t *testing.T) {
	base := NewInjector(&Plan{Seed: 1, WedgeProb: 0.5, BlowupProb: 0.5}, 0)
	seeds := NewInjector(&Plan{Seed: 2, WedgeProb: 0.5, BlowupProb: 0.5}, 0)
	shards := NewInjector(&Plan{Seed: 1, WedgeProb: 0.5, BlowupProb: 0.5}, 1)
	diff := func(other *Injector) bool {
		for attempt := 1; attempt <= 64; attempt++ {
			if base.wedge(0, attempt) != other.wedge(0, attempt) {
				return true
			}
		}
		return false
	}
	if !diff(seeds) {
		t.Error("seed change did not move the wedge stream")
	}
	if !diff(shards) {
		t.Error("shard change did not move the wedge stream")
	}
	workerDiff := false
	for attempt := 1; attempt <= 64; attempt++ {
		if base.wedge(0, attempt) != base.wedge(1, attempt) {
			workerDiff = true
			break
		}
	}
	if !workerDiff {
		t.Error("worker change did not move the wedge stream")
	}
	classDiff := false
	for n := 1; n <= 64; n++ {
		if base.wedge(0, n) != (base.blowup(n) > 1) {
			classDiff = true
			break
		}
	}
	if !classDiff {
		t.Error("wedge and blowup classes are not independent at equal sites")
	}
}

// TestWedgeRate: over many attempts the wedge frequency tracks the
// plan's probability — the draws really are uniform, not clustered.
func TestWedgeRate(t *testing.T) {
	in := NewInjector(&Plan{Seed: 7, WedgeProb: 0.25}, 0)
	hits := 0
	const n = 10000
	for attempt := 1; attempt <= n; attempt++ {
		if in.wedge(0, attempt) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("wedge rate %.3f far from plan probability 0.25", rate)
	}
}

func TestPlanEmpty(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want bool
	}{
		{"nil", nil, true},
		{"zero", &Plan{}, true},
		{"seed-only", &Plan{Seed: 99}, true},
		{"empty-shard-schedules", &Plan{ShardDown: [][]sched.Downtime{nil, {}}}, true},
		{"wedge", &Plan{WedgeProb: 0.1}, false},
		{"per-worker-wedge", &Plan{WedgeProbs: []float64{0, 0.5}}, false},
		{"blowup", &Plan{BlowupProb: 0.1}, false},
		{"deadlines", &Plan{EnforceDeadlines: true}, false},
		{"retries", &Plan{MaxRetries: 1}, false},
		{"downtime", &Plan{ShardDown: [][]sched.Downtime{{{From: 1, To: 2}}}}, false},
		{"hedge", &Plan{Hedge: sim.US}, false},
		{"repair", &Plan{RepairDelay: sim.US}, false},
		{"recover-hold", &Plan{RecoverHold: sim.US}, false},
		{"inert-domain", &Plan{Domains: []Domain{{Name: "r0", Shards: []int{0}}}}, true},
		{"domain-down", &Plan{Domains: []Domain{{Name: "r0", Shards: []int{0}, Down: []sched.Downtime{{From: 1, To: 2}}}}}, false},
		{"domain-wedge", &Plan{Domains: []Domain{{Name: "r0", Shards: []int{0}, WedgeProb: 0.2}}}, false},
	}
	for _, tc := range cases {
		if got := tc.plan.Empty(); got != tc.want {
			t.Errorf("%s: Empty() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFaultConfigPerShard(t *testing.T) {
	plan := &Plan{
		MaxRetries:       3,
		EnforceDeadlines: true,
		ShardDown:        [][]sched.Downtime{nil, {{From: 10, To: 20}}},
	}
	fc := plan.FaultConfig(1)
	if fc.MaxRetries != 3 || !fc.EnforceDeadlines {
		t.Fatalf("shard 1 config %+v lost scheduler knobs", fc)
	}
	if len(fc.Down) != 1 || fc.Down[0] != (sched.Downtime{From: 10, To: 20}) {
		t.Fatalf("shard 1 downtime %+v, want the plan's window", fc.Down)
	}
	if got := plan.FaultConfig(0).Down; got != nil {
		t.Fatalf("shard 0 downtime %+v, want none", got)
	}
	// Shards past the schedule's length never crash; a nil plan renders
	// the zero config.
	if got := plan.FaultConfig(5).Down; got != nil {
		t.Fatalf("shard 5 downtime %+v, want none", got)
	}
	if got := (*Plan)(nil).FaultConfig(0); got.MaxRetries != 0 || got.EnforceDeadlines || got.Down != nil {
		t.Fatalf("nil plan config %+v, want zero", got)
	}
}

func TestWedgeProbPerWorkerOverride(t *testing.T) {
	plan := &Plan{WedgeProb: 0.5, WedgeProbs: []float64{0, 1}}
	if got := plan.wedgeProbFor(0, 0); got != 0 {
		t.Errorf("worker 0 prob %v, want per-worker 0", got)
	}
	if got := plan.wedgeProbFor(0, 1); got != 1 {
		t.Errorf("worker 1 prob %v, want per-worker 1", got)
	}
	if got := plan.wedgeProbFor(0, 2); got != 0.5 {
		t.Errorf("worker 2 prob %v, want fallback 0.5", got)
	}
	// A certain-wedge worker wedges every attempt; a zero-prob worker
	// never does, regardless of the shared fallback.
	in := NewInjector(plan, 0)
	for attempt := 1; attempt <= 32; attempt++ {
		if in.wedge(0, attempt) {
			t.Fatal("zero-probability worker wedged")
		}
		if !in.wedge(1, attempt) {
			t.Fatal("certain-wedge worker did not wedge")
		}
	}
}

func TestDetectOccupancy(t *testing.T) {
	if got := NewInjector(&Plan{}, 0).detect(); got != DefaultWedgeDetect {
		t.Errorf("default detect %v, want %v", got, DefaultWedgeDetect)
	}
	if got := NewInjector(&Plan{WedgeDetect: 7 * sim.US}, 0).detect(); got != 7*sim.US {
		t.Errorf("detect %v, want the plan's 7us", got)
	}
}

// stubBackend records Dispatch/Bind traffic and completes jobs
// synchronously, so the wrapper's interposition is directly observable.
type stubBackend struct {
	reconfig   sim.Time
	service    sim.Time
	dispatched []int
	done       func(*sched.Job, error)
}

func (s *stubBackend) Kind() sched.BackendKind              { return sched.BackendCycle }
func (s *stubBackend) Name() string                         { return "stub" }
func (s *stubBackend) Capacity() efpga.Resources            { return efpga.Resources{} }
func (s *stubBackend) Register(*efpga.Bitstream) error      { return nil }
func (s *stubBackend) Resident() string                     { return "" }
func (s *stubBackend) ReconfigCost(*sched.App) sim.Time     { return s.reconfig }
func (s *stubBackend) ServiceTime(*sched.App, int) sim.Time { return s.service }
func (s *stubBackend) Bind(_ int64, done func(*sched.Job, error)) {
	s.done = done
}
func (s *stubBackend) Dispatch(j *sched.Job, _ *sched.App) {
	s.dispatched = append(s.dispatched, j.ID)
	s.done(j, nil)
}

// stubTimeline records AfterArg calls without a real engine.
type stubTimeline struct {
	delays []sim.Time
	fns    []func(any)
	args   []any
}

func (tl *stubTimeline) AfterArg(d sim.Time, fn func(any), arg any) {
	tl.delays = append(tl.delays, d)
	tl.fns = append(tl.fns, fn)
	tl.args = append(tl.args, arg)
}

// TestWrapEmptyPlanPassThrough: under an empty plan the wrapper is pure
// pass-through — every dispatch reaches the inner backend, completions
// flow straight through, and the timeline is never touched. This is the
// contract the fault-free overhead benchmark leans on.
func TestWrapEmptyPlanPassThrough(t *testing.T) {
	inner := &stubBackend{reconfig: sim.US, service: 10 * sim.US}
	tl := &stubTimeline{}
	be := NewInjector(&Plan{}, 0).Wrap(tl, 0, inner)

	var completed []int
	be.Bind(0, func(j *sched.Job, err error) {
		if err != nil {
			t.Fatalf("job %d failed under empty plan: %v", j.ID, err)
		}
		completed = append(completed, j.ID)
	})
	app := &sched.App{}
	for id := 1; id <= 5; id++ {
		be.Dispatch(&sched.Job{ID: id}, app)
	}
	if len(inner.dispatched) != 5 || len(completed) != 5 {
		t.Fatalf("dispatched %v completed %v, want 5 each", inner.dispatched, completed)
	}
	if len(tl.delays) != 0 {
		t.Fatalf("empty plan touched the timeline: %v", tl.delays)
	}
	if be.Kind() != inner.Kind() || be.Name() != inner.Name() ||
		be.ServiceTime(app, 1) != inner.service || be.ReconfigCost(app) != inner.reconfig {
		t.Fatal("wrapper does not delegate the read-only surface")
	}
}

// TestWrapWedgeInterception: a certain-wedge plan never lets a
// reprogramming dispatch reach the inner backend — the job fails after
// the detection occupancy with an error wrapping sched.ErrWedged, and
// Reprogrammed is settled synchronously at dispatch.
func TestWrapWedgeInterception(t *testing.T) {
	inner := &stubBackend{reconfig: sim.US, service: 10 * sim.US}
	tl := &stubTimeline{}
	be := NewInjector(&Plan{Seed: 1, WedgeProb: 1, WedgeDetect: 9 * sim.US}, 0).Wrap(tl, 0, inner)

	var gotErr error
	be.Bind(0, func(_ *sched.Job, err error) { gotErr = err })
	j := &sched.Job{ID: 1}
	be.Dispatch(j, &sched.App{})

	if len(inner.dispatched) != 0 {
		t.Fatal("wedged dispatch reached the inner backend")
	}
	if !j.Reprogrammed {
		t.Fatal("wedged attempt did not settle Reprogrammed at dispatch")
	}
	if len(tl.delays) != 1 || tl.delays[0] != 9*sim.US {
		t.Fatalf("detection occupancy %v, want one 9us deferral", tl.delays)
	}
	tl.fns[0](tl.args[0]) // detection fires
	if !errors.Is(gotErr, sched.ErrWedged) {
		t.Fatalf("completion error %v does not wrap sched.ErrWedged", gotErr)
	}

	// A placement with no reconfiguration never draws a wedge, even at
	// probability 1: only reprogram attempts can wedge.
	inner.reconfig = 0
	be.Dispatch(&sched.Job{ID: 2}, &sched.App{})
	if len(inner.dispatched) != 1 {
		t.Fatal("resident-app dispatch did not pass through")
	}
}

// TestWrapBlowupDefersCompletion: a blown-up job completes only after
// the extra (factor-1) x service occupancy is charged on the timeline.
func TestWrapBlowupDefersCompletion(t *testing.T) {
	inner := &stubBackend{service: 10 * sim.US}
	tl := &stubTimeline{}
	be := NewInjector(&Plan{Seed: 1, BlowupProb: 1, BlowupFactor: 4}, 0).Wrap(tl, 0, inner)

	var completed bool
	be.Bind(0, func(*sched.Job, error) { completed = true })
	be.Dispatch(&sched.Job{ID: 1}, &sched.App{})

	if completed {
		t.Fatal("blown-up job completed without the extension")
	}
	if len(tl.delays) != 1 || tl.delays[0] != 30*sim.US {
		t.Fatalf("extension %v, want one (4-1)x10us deferral", tl.delays)
	}
	tl.fns[0](tl.args[0])
	if !completed {
		t.Fatal("deferred completion never reached the scheduler")
	}
}

func TestParseDomains(t *testing.T) {
	got, err := ParseDomains("rack0=0+1@4000-9000; feedA=2@1000-2000,5000-6000~0.8")
	if err != nil {
		t.Fatal(err)
	}
	want := []Domain{
		{Name: "rack0", Shards: []int{0, 1}, Down: []sched.Downtime{{From: 4000 * sim.US, To: 9000 * sim.US}}},
		{Name: "feedA", Shards: []int{2}, WedgeProb: 0.8, Down: []sched.Downtime{
			{From: 1000 * sim.US, To: 2000 * sim.US}, {From: 5000 * sim.US, To: 6000 * sim.US},
		}},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d domains, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name || g.WedgeProb != w.WedgeProb ||
			!slices.Equal(g.Shards, w.Shards) || !slices.Equal(g.Down, w.Down) {
			t.Errorf("domain %d = %+v, want %+v", i, g, w)
		}
	}
	if got, err := ParseDomains("  "); err != nil || got != nil {
		t.Errorf("blank spec = (%v, %v), want no domains", got, err)
	}
	for _, bad := range []string{"=0", "r0=", "r0=x", "r0=0@5", "r0=0@9-3", "r0=0~1.5", "r0=0~x"} {
		if _, err := ParseDomains(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestDownForMergesDomains: a shard's effective schedule is its own
// windows merged with every member domain's, coalesced and ascending.
func TestDownForMergesDomains(t *testing.T) {
	plan := &Plan{
		ShardDown: [][]sched.Downtime{{{From: 10, To: 20}}},
		Domains: []Domain{
			{Name: "rack", Shards: []int{0, 1}, Down: []sched.Downtime{{From: 15, To: 30}, {From: 50, To: 60}}},
			{Name: "feed", Shards: []int{1}, Down: []sched.Downtime{{From: 55, To: 70}}},
		},
	}
	if got, want := plan.DownFor(0), []sched.Downtime{{From: 10, To: 30}, {From: 50, To: 60}}; !slices.Equal(got, want) {
		t.Errorf("shard 0 schedule %+v, want %+v", got, want)
	}
	if got, want := plan.DownFor(1), []sched.Downtime{{From: 15, To: 30}, {From: 50, To: 70}}; !slices.Equal(got, want) {
		t.Errorf("shard 1 schedule %+v, want %+v", got, want)
	}
	if got := plan.DownFor(2); got != nil {
		t.Errorf("non-member shard schedule %+v, want none", got)
	}
	eff := plan.EffectiveShardDown(4)
	if len(eff) != 4 || len(eff[0]) != 2 || len(eff[1]) != 2 || eff[2] != nil || eff[3] != nil {
		t.Errorf("effective schedules %+v malformed", eff)
	}
	// Domain-free plans hand back the raw schedule (same backing array).
	bare := &Plan{ShardDown: [][]sched.Downtime{{{From: 1, To: 2}}}}
	if got := bare.DownFor(0); &got[0] != &bare.ShardDown[0][0] {
		t.Error("domain-free DownFor copied the schedule")
	}
	if (&Plan{}).EffectiveShardDown(3) != nil {
		t.Error("windowless plan rendered a non-nil schedule table")
	}
}

// TestDomainWedgeProbRaises: a member domain's probability raises a
// worker's effective wedge probability but never lowers it.
func TestDomainWedgeProbRaises(t *testing.T) {
	plan := &Plan{
		WedgeProb: 0.3,
		Domains:   []Domain{{Name: "rack", Shards: []int{1}, WedgeProb: 0.9}},
	}
	if got := plan.wedgeProbFor(1, 0); got != 0.9 {
		t.Errorf("member shard prob %v, want the domain's 0.9", got)
	}
	if got := plan.wedgeProbFor(0, 0); got != 0.3 {
		t.Errorf("non-member shard prob %v, want the plan's 0.3", got)
	}
	plan.Domains[0].WedgeProb = 0.1
	if got := plan.wedgeProbFor(1, 0); got != 0.3 {
		t.Errorf("lower domain prob gave %v, want the plan's 0.3 kept", got)
	}
}

// TestRepairDelayFor: seeded, backed off, jittered within ±50%, and cut
// off past MaxRepairs.
func TestRepairDelayFor(t *testing.T) {
	plan := &Plan{Seed: 7, RepairDelay: 100 * sim.US, MaxRepairs: 3}
	twin := &Plan{Seed: 7, RepairDelay: 100 * sim.US, MaxRepairs: 3}
	for nth := 1; nth <= 3; nth++ {
		d := plan.RepairDelayFor(0, 1, nth)
		if d != twin.RepairDelayFor(0, 1, nth) {
			t.Fatalf("repair delay diverged at nth=%d", nth)
		}
		base := plan.RepairDelay << (nth - 1)
		if d < base/2 || d >= base+base/2 {
			t.Errorf("nth=%d delay %v outside [%v, %v)", nth, d, base/2, base+base/2)
		}
	}
	if got := plan.RepairDelayFor(0, 1, 4); got != 0 {
		t.Errorf("past MaxRepairs delay %v, want permanent quarantine", got)
	}
	if got := (&Plan{Seed: 7}).RepairDelayFor(0, 1, 1); got != 0 {
		t.Errorf("repair-free plan delay %v, want 0", got)
	}
	// Backoff caps at 64x: far-out wedges draw bounded delays.
	deep := &Plan{Seed: 7, RepairDelay: 100 * sim.US}
	if d := deep.RepairDelayFor(0, 1, 40); d >= 96*deep.RepairDelay {
		t.Errorf("nth=40 delay %v escaped the 64x backoff cap", d)
	}
	// Different sites draw different jitters (the repair stream is keyed
	// like every other fault class).
	if deep.RepairDelayFor(0, 1, 1) == deep.RepairDelayFor(1, 1, 1) &&
		deep.RepairDelayFor(0, 1, 1) == deep.RepairDelayFor(0, 2, 1) {
		t.Error("repair jitter ignores its site key")
	}
}

// TestFaultConfigRepairClosure: a repairing plan's FaultConfig carries a
// Repair hook that prices delays per shard.
func TestFaultConfigRepairClosure(t *testing.T) {
	plan := &Plan{Seed: 3, RepairDelay: 50 * sim.US}
	fc := plan.FaultConfig(2)
	if fc.Repair == nil {
		t.Fatal("repairing plan rendered no Repair hook")
	}
	if got, want := fc.Repair(1, 1), plan.RepairDelayFor(2, 1, 1); got != want {
		t.Errorf("hook delay %v, want shard-2 pricing %v", got, want)
	}
	if (&Plan{MaxRetries: 1}).FaultConfig(0).Repair != nil {
		t.Error("repair-free plan rendered a Repair hook")
	}
}

// TestWrapScrubForwards: the fault wrapper forwards Scrub to
// scrub-capable inner backends and swallows it otherwise.
func TestWrapScrubForwards(t *testing.T) {
	inner := &scrubBackend{}
	be := NewInjector(&Plan{}, 0).Wrap(&stubTimeline{}, 0, inner)
	sc, ok := be.(sched.Scrubber)
	if !ok {
		t.Fatal("wrapper does not implement sched.Scrubber")
	}
	sc.Scrub()
	if !inner.scrubbed {
		t.Fatal("Scrub did not reach the inner backend")
	}
	// A non-scrubbing inner backend (the CPU soft path) is a no-op.
	NewInjector(&Plan{}, 0).Wrap(&stubTimeline{}, 0, &stubBackend{}).(sched.Scrubber).Scrub()
}

type scrubBackend struct {
	stubBackend
	scrubbed bool
}

func (b *scrubBackend) Scrub() { b.scrubbed = true }
