package cpu

import (
	"fmt"
	"testing"

	"duet/internal/coherence"
	"duet/internal/mmio"
	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sim"
)

type rig struct {
	eng   *sim.Engine
	mesh  *noc.Mesh
	dom   *coherence.Domain
	cores []*Core
}

func newRig(t *testing.T, n int, route mmio.Router) *rig {
	t.Helper()
	eng := sim.NewEngine()
	clk := sim.NewClock("fast", params.CPUClockPS)
	w, h := 2, 2
	if n > 4 {
		w, h = 4, 4
	}
	mesh := noc.NewMesh(eng, clk, w, h)
	var tiles []int
	for i := 0; i < mesh.Tiles(); i++ {
		tiles = append(tiles, i)
	}
	dom := coherence.NewDomain(eng, mesh, tiles)
	r := &rig{eng: eng, mesh: mesh, dom: dom}
	for i := 0; i < n; i++ {
		r.cores = append(r.cores, New(eng, mesh, dom, i, i%mesh.Tiles(), route))
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	r.eng.Run(0)
	if !r.dom.Quiet() {
		t.Fatal("domain not quiescent")
	}
	if err := coherence.CheckCoherence(r.dom); err != nil {
		t.Fatalf("coherence: %v", err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	r := newRig(t, 1, nil)
	var got uint64
	var got32 uint32
	r.cores[0].Run("prog", func(p Proc) {
		p.Store64(0x1000, 0xfeedface)
		p.Store32(0x2000, 77)
		got = p.Load64(0x1000)
		got32 = p.Load32(0x2000)
	})
	r.run(t)
	if got != 0xfeedface || got32 != 77 {
		t.Fatalf("got %#x, %d", got, got32)
	}
}

func TestL1CachesLoads(t *testing.T) {
	r := newRig(t, 1, nil)
	r.cores[0].Run("prog", func(p Proc) {
		p.Load64(0x1000)
		p.Load64(0x1000)
		p.Load64(0x1008) // same line
	})
	r.run(t)
	c := r.cores[0]
	if c.L1Misses != 1 || c.L1Hits != 2 {
		t.Fatalf("L1 hits=%d misses=%d, want 2/1", c.L1Hits, c.L1Misses)
	}
}

func TestCrossCoreVisibility(t *testing.T) {
	r := newRig(t, 2, nil)
	var seen uint64
	r.cores[0].Run("writer", func(p Proc) {
		p.Store64(0x3000, 1)
		p.Exec(100)
		p.Store64(0x3000, 2)
	})
	r.cores[1].Run("reader", func(p Proc) {
		// Warm own copy, then wait for the writer's second store to
		// invalidate it.
		for seen != 2 {
			seen = p.Load64(0x3000)
			p.Exec(10)
		}
	})
	r.run(t)
	if seen != 2 {
		t.Fatalf("reader stuck at %d", seen)
	}
}

func TestL1BackInvalidation(t *testing.T) {
	// Core 1 must not satisfy loads from a stale L1 line after core 0
	// writes: the L2's OnLineLost hook invalidates the L1 copy.
	r := newRig(t, 2, nil)
	order := make(chan int, 2)
	_ = order
	var first, second uint64
	r.cores[1].Run("reader", func(p Proc) {
		first = p.Load64(0x4000) // caches 0 in L1
		p.Exec(3000)
		second = p.Load64(0x4000) // must observe 9 despite the L1
	})
	r.cores[0].Run("writer", func(p Proc) {
		p.Exec(1000)
		p.Store64(0x4000, 9)
	})
	r.run(t)
	if first != 0 || second != 9 {
		t.Fatalf("reads = %d then %d, want 0 then 9", first, second)
	}
}

func TestAtomicsThroughProc(t *testing.T) {
	r := newRig(t, 4, nil)
	for _, c := range r.cores {
		c.Run("inc", func(p Proc) {
			for i := 0; i < 50; i++ {
				p.AmoAdd64(0x5000, 1)
			}
		})
	}
	r.run(t)
	var total uint64
	r.cores[0].Run("read", func(p Proc) { total = p.Load64(0x5000) })
	r.run(t)
	if total != 200 {
		t.Fatalf("counter = %d", total)
	}
}

func TestMCSLockMutualExclusion(t *testing.T) {
	const nCores, iters = 4, 30
	r := newRig(t, nCores, nil)
	const (
		tail    = uint64(0x6000)
		nodes   = uint64(0x6100)
		counter = uint64(0x7000)
		owner   = uint64(0x7008)
	)
	violations := 0
	for i, c := range r.cores {
		i := i
		c.Run("lock", func(p Proc) {
			node := nodes + uint64(i)*MCSNodeBytes
			for k := 0; k < iters; k++ {
				MCSAcquire(p, tail, node)
				// Critical section: non-atomic read-modify-write plus an
				// exclusivity witness.
				if p.Load64(owner) != 0 {
					violations++
				}
				p.Store64(owner, uint64(i+1))
				v := p.Load64(counter)
				p.Exec(20)
				p.Store64(counter, v+1)
				p.Store64(owner, 0)
				MCSRelease(p, tail, node)
			}
		})
	}
	r.run(t)
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	var total uint64
	r.cores[0].Run("read", func(p Proc) { total = p.Load64(counter) })
	r.run(t)
	if total != nCores*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", total, nCores*iters)
	}
}

func TestMCSLockContentionCost(t *testing.T) {
	// Lock handoff under contention must cost significantly more than
	// uncontended acquisition — the effect the paper's PDES/BFS baselines
	// suffer from.
	measure := func(nCores int) sim.Time {
		r := newRig(t, nCores, nil)
		const tail, nodes, counter = uint64(0x6000), uint64(0x6100), uint64(0x7000)
		var finish sim.Time
		for i, c := range r.cores {
			i := i
			c.Run("lock", func(p Proc) {
				node := nodes + uint64(i)*MCSNodeBytes
				for k := 0; k < 20; k++ {
					MCSAcquire(p, tail, node)
					v := p.Load64(counter)
					p.Exec(10)
					p.Store64(counter, v+1)
					MCSRelease(p, tail, node)
				}
				if p.Now() > finish {
					finish = p.Now()
				}
			})
		}
		r.run(t)
		return finish
	}
	t1 := measure(1)
	t4 := measure(4)
	if t4 < 2*t1 {
		t.Fatalf("contention too cheap: 1 core %v, 4 cores %v", t1, t4)
	}
	t.Logf("MCS: 1 core %v, 4 cores %v", t1, t4)
}

func TestBarrier(t *testing.T) {
	const nCores = 4
	r := newRig(t, nCores, nil)
	const barrier = uint64(0x8000)
	const log = uint64(0x9000)
	for i, c := range r.cores {
		i := i
		c.Run("bar", func(p Proc) {
			sense := uint64(0)
			for step := 0; step < 5; step++ {
				p.Exec(int64(100 * (i + 1))) // staggered arrival
				p.AmoAdd64(log+uint64(step)*8, 1)
				sense ^= 1
				BarrierWait(p, barrier, nCores, sense)
				// After the barrier, all arrivals for this step are visible.
				if got := p.Load64(log + uint64(step)*8); got != nCores {
					t.Errorf("core %d step %d: saw %d arrivals", i, step, got)
				}
			}
		})
	}
	r.run(t)
}

// testDevice is a minimal MMIO register file device.
type testDevice struct {
	eng  *sim.Engine
	mesh *noc.Mesh
	tile int
	regs map[uint64]uint64
}

func newTestDevice(eng *sim.Engine, mesh *noc.Mesh, tile int) *testDevice {
	d := &testDevice{eng: eng, mesh: mesh, tile: tile, regs: make(map[uint64]uint64)}
	mesh.Register(tile, noc.VNMMIOReq, d.onReq)
	return d
}

func (d *testDevice) onReq(m *noc.Msg) {
	req := m.Payload.(*mmio.Req)
	resp := &mmio.Resp{SeqID: req.SeqID}
	if req.Write {
		d.regs[req.Addr] = req.Data
	} else {
		resp.Data = d.regs[req.Addr]
	}
	// Respond after a cycle of device latency.
	d.eng.After(sim.Time(params.CPUClockPS), func() {
		d.mesh.Send(&noc.Msg{Src: d.tile, Dst: req.SrcTile, VN: noc.VNMMIOResp, Bytes: mmio.RespBytes, Payload: resp})
	})
}

func TestMMIORoundTrip(t *testing.T) {
	devTile := 3
	route := func(addr uint64) (int, bool) { return devTile, addr >= params.MMIOBase }
	r := newRig(t, 2, route)
	newTestDevice(r.eng, r.mesh, devTile)
	reg := params.MMIOBase + 0x10
	var got uint64
	var wlat sim.Time
	r.cores[0].Run("prog", func(p Proc) {
		start := p.Now()
		p.MMIOWrite64(reg, 4242)
		wlat = p.Now() - start
		got = p.MMIORead64(reg)
	})
	r.run(t)
	if got != 4242 {
		t.Fatalf("MMIO read = %d", got)
	}
	if wlat < 5*sim.NS {
		t.Fatalf("MMIO write latency %v implausibly low (must round-trip)", wlat)
	}
	t.Logf("MMIO write round-trip: %v", wlat)
}

func TestIRQDeliveredAtBoundary(t *testing.T) {
	r := newRig(t, 1, nil)
	c := r.cores[0]
	var handled []uint64
	var handledAt sim.Time
	c.SetIRQHandler(func(p Proc, irq IRQ) {
		handled = append(handled, irq.Info)
		handledAt = p.Now()
		p.Exec(30) // handler body
	})
	c.Run("prog", func(p Proc) {
		p.Exec(10)
		p.Exec(1000) // IRQ arrives during this block
		p.Load64(0x100)
	})
	r.eng.At(500*sim.NS, func() { c.RaiseIRQ(IRQ{Cause: "test", Info: 7}) })
	r.run(t)
	if len(handled) != 1 || handled[0] != 7 {
		t.Fatalf("handled = %v", handled)
	}
	// Delivered at the next instruction boundary (>= 1010ns), not mid-Exec.
	if handledAt < 1010*sim.NS {
		t.Fatalf("IRQ handled mid-instruction at %v", handledAt)
	}
}

func TestMultipleProgramsDeterministic(t *testing.T) {
	run := func() sim.Time {
		r := newRig(t, 4, nil)
		for i, c := range r.cores {
			i := i
			c.Run("p", func(p Proc) {
				for k := 0; k < 20; k++ {
					p.Store64(uint64(0x1000+i*8), uint64(k))
					p.Load64(uint64(0x1000 + ((i + 1) % 4 * 8)))
					p.Exec(int64(i + 1))
				}
			})
		}
		r.eng.Run(0)
		return r.eng.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic end times %v vs %v", a, b)
	}
}

func ExampleProc() {
	eng := sim.NewEngine()
	clk := sim.NewClock("fast", params.CPUClockPS)
	mesh := noc.NewMesh(eng, clk, 2, 1)
	dom := coherence.NewDomain(eng, mesh, []int{0, 1})
	core := New(eng, mesh, dom, 0, 0, nil)
	core.Run("hello", func(p Proc) {
		p.Store64(0x1000, 41)
		p.Store64(0x1000, p.Load64(0x1000)+1)
		fmt.Println("value:", p.Load64(0x1000), "cycles:", int64(p.Now()/sim.NS))
	})
	eng.Run(0)
	// Output:
	// value: 42 cycles: 119
}
