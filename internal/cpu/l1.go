package cpu

import (
	"duet/internal/cache"
	"duet/internal/mem"
)

// l1d is the write-through L1 data cache woven into the core. It holds
// only clean copies (stores write through to the L2), so evictions and
// back-invalidations are silent. Inclusion in the L2 is maintained by the
// L2's OnLineLost hook.
type l1d struct {
	arr *cache.Array
}

func newL1D(sizeBytes, ways int) *l1d {
	return &l1d{arr: cache.NewArray(sizeBytes, ways)}
}

// load returns the value at addr if the line is present.
func (l *l1d) load(addr uint64, size int) (uint64, bool) {
	w := l.arr.Lookup(mem.LineAddr(addr))
	if w == nil {
		return 0, false
	}
	off := mem.Offset(addr)
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(w.Data[off+i]) << (8 * i)
	}
	return v, true
}

// fill installs a line fetched from the L2, silently dropping any victim
// (L1 lines are never dirty).
func (l *l1d) fill(lineAddr uint64, data mem.Line) {
	if w := l.arr.Peek(lineAddr); w != nil {
		w.Data = data
		return
	}
	w := l.arr.Victim(lineAddr)
	if w.Valid {
		l.arr.Invalidate(w)
	}
	l.arr.Install(w, lineAddr, data, 1)
}

// update refreshes the L1 copy on a store (write-through: no allocation on
// store miss).
func (l *l1d) update(addr uint64, data []byte) {
	w := l.arr.Peek(mem.LineAddr(addr))
	if w == nil {
		return
	}
	off := mem.Offset(addr)
	copy(w.Data[off:off+len(data)], data)
}

// invalidate drops the line if present (back-invalidation from the L2).
func (l *l1d) invalidate(lineAddr uint64) {
	if w := l.arr.Peek(lineAddr); w != nil {
		l.arr.Invalidate(w)
	}
}
