// Package cpu models the processor tiles: an Ariane-like 6-stage, in-order,
// single-issue core (paper §IV) with a write-through L1 data cache backed
// by the coherent private L2, blocking loads and stores, strictly ordered
// MMIO, home-side atomics, and interrupt delivery at instruction
// boundaries.
//
// Benchmark "programs" are ordinary Go functions written against the Proc
// interface; they run as deterministic simulation threads and compute on
// real data inside the simulated memory system, so results can be checked
// functionally as well as timed.
package cpu

import (
	"fmt"

	"duet/internal/coherence"
	"duet/internal/mmio"
	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sim"
)

// IRQ is an interrupt delivered to a core (e.g. a TLB page fault from a
// Memory Hub).
type IRQ struct {
	Cause string
	Info  uint64
	// Source lets the handler talk back to the raising device.
	Source interface{}
}

// Proc is the API benchmark programs run against. All methods charge
// simulated time; Exec models computation between memory operations.
type Proc interface {
	// CoreID reports the core's index.
	CoreID() int
	// Now reports the current simulated time.
	Now() sim.Time
	// Exec charges n core cycles of computation.
	Exec(n int64)

	// Load64/Load32 perform blocking loads (L1 -> L2 -> coherence).
	Load64(addr uint64) uint64
	Load32(addr uint64) uint32
	// Store64/Store32 perform blocking stores (write-through L1).
	Store64(addr uint64, v uint64)
	Store32(addr uint64, v uint32)

	// AmoAdd64, AmoSwap64 and Cas64 are home-side atomics. Cas64 returns
	// the old value (compare with expected to detect success).
	AmoAdd64(addr uint64, delta uint64) uint64
	AmoSwap64(addr uint64, v uint64) uint64
	Cas64(addr uint64, expected, desired uint64) uint64

	// MMIORead64/MMIOWrite64 perform strictly ordered, blocking MMIO.
	MMIORead64(addr uint64) uint64
	MMIOWrite64(addr uint64, v uint64)

	// Fence drains the core's memory operations (no-op beyond a cycle in
	// this blocking model; kept for program fidelity).
	Fence()
}

// Core is one processor tile.
type Core struct {
	id   int
	tile int
	eng  *sim.Engine
	clk  *sim.Clock
	mesh *noc.Mesh
	l2   *coherence.PCache
	l1   *l1d

	route mmio.Router

	seq      uint64
	mmioCond *sim.Cond
	mmioResp map[uint64]*mmio.Resp

	irqPending []IRQ
	irqHandler func(p Proc, irq IRQ)

	// memTX/mmioTX tag the next memory/MMIO operation for latency
	// attribution (synthetic benchmarks only).
	memTX  *sim.TX
	mmioTX *sim.TX

	// Stats.
	Instrs, Loads, Stores, Atomics, MMIOs uint64
	L1Hits, L1Misses                      uint64
}

// New creates a core at the given tile with its private L2 attached to the
// domain. route maps MMIO addresses to device tiles (may be nil if the
// program never issues MMIO).
func New(eng *sim.Engine, mesh *noc.Mesh, dom *coherence.Domain, id, tile int, route mmio.Router) *Core {
	c := &Core{
		id:       id,
		tile:     tile,
		eng:      eng,
		clk:      mesh.Clock(),
		mesh:     mesh,
		route:    route,
		mmioCond: sim.NewCond(eng),
		mmioResp: make(map[uint64]*mmio.Resp),
	}
	c.l1 = newL1D(params.L1DBytes, params.L1DWays)
	c.l2 = dom.NewCache(coherence.PCacheConfig{
		Name: fmt.Sprintf("core%d.l2", id), ID: id, Tile: tile,
		Clk: c.clk, Cat: sim.CatFast,
		SizeBytes: params.L2Bytes, Ways: params.L2Ways, MSHRs: params.L2MSHRs,
		HitCycles: params.L2HitCycles, MissIssueCycles: params.L2MissIssue,
		FillCycles: params.L2FillCycles, FwdCycles: params.ProxyFwdCycles,
		// Keep the write-through L1 coherent: inclusion via back-invalidation.
		OnLineLost: func(line, vpn uint64) { c.l1.invalidate(line) },
	})
	mesh.Register(tile, noc.VNMMIOResp, c.onMMIOResp)
	return c
}

// ID reports the core index.
func (c *Core) ID() int { return c.id }

// Tile reports the core's NoC tile.
func (c *Core) Tile() int { return c.tile }

// L2 exposes the core's private cache (for tests and checkers).
func (c *Core) L2() *coherence.PCache { return c.l2 }

// SetIRQHandler installs the kernel trap handler invoked at instruction
// boundaries when an interrupt is pending.
func (c *Core) SetIRQHandler(h func(p Proc, irq IRQ)) { c.irqHandler = h }

// TagNextLoad attributes the next load's latency to tx (one-shot).
func (c *Core) TagNextLoad(tx *sim.TX) { c.memTX = tx }

// TagNextMMIO attributes the next MMIO operation's latency to tx
// (one-shot).
func (c *Core) TagNextMMIO(tx *sim.TX) { c.mmioTX = tx }

// RaiseIRQ queues an interrupt for delivery (called by devices in engine
// context). Cores stalled on blocking MMIO are woken so the trap can be
// taken mid-stall (a page-faulting Memory Hub may be blocking the very
// MMIO read the core is waiting on).
func (c *Core) RaiseIRQ(irq IRQ) {
	c.irqPending = append(c.irqPending, irq)
	c.mmioCond.Broadcast()
}

// Run spawns prog on the core as a simulation thread and returns the
// thread (finished when prog returns).
func (c *Core) Run(name string, prog func(Proc)) *sim.Thread {
	return c.eng.Go(fmt.Sprintf("core%d:%s", c.id, name), func(t *sim.Thread) {
		p := &proc{core: c, t: t}
		t.AlignTo(c.clk)
		prog(p)
	})
}

func (c *Core) onMMIOResp(m *noc.Msg) {
	r := m.Payload.(*mmio.Resp)
	c.mmioResp[r.SeqID] = r
	c.mmioCond.Broadcast()
}

// trap entry/exit costs (cycles), modelling a bare-metal RISC-V trap.
const (
	trapEntryCycles = 20
	trapExitCycles  = 10
)

type proc struct {
	core *Core
	t    *sim.Thread

	// stbuf stages store data. Both consumers copy synchronously (the L1
	// in update, the L2 in StoreAsync), so one scratch buffer serves every
	// store without a per-store allocation.
	stbuf [8]byte
}

func (p *proc) CoreID() int   { return p.core.id }
func (p *proc) Now() sim.Time { return p.t.Now() }

// checkIRQ delivers pending interrupts at an instruction boundary.
func (p *proc) checkIRQ() {
	c := p.core
	for len(c.irqPending) > 0 && c.irqHandler != nil {
		irq := c.irqPending[0]
		c.irqPending = c.irqPending[1:]
		p.t.SleepCycles(c.clk, trapEntryCycles)
		c.irqHandler(p, irq)
		p.t.SleepCycles(c.clk, trapExitCycles)
	}
}

func (p *proc) Exec(n int64) {
	p.checkIRQ()
	if n <= 0 {
		return
	}
	p.core.Instrs += uint64(n)
	p.t.SleepCycles(p.core.clk, n)
}

func (p *proc) load(addr uint64, size int) uint64 {
	p.checkIRQ()
	c := p.core
	c.Loads++
	c.Instrs++
	if data, ok := c.l1.load(addr, size); ok {
		c.L1Hits++
		p.t.SleepCycles(c.clk, params.L1HitCycles)
		return data
	}
	c.L1Misses++
	// L1 miss: fetch the line through the L2 (blocking).
	tx := c.memTX
	c.memTX = nil
	b := c.l2.Load(p.t, addr, size, tx)
	line, _ := c.l2.PeekLine(addr &^ (params.LineBytes - 1))
	c.l1.fill(addr&^(params.LineBytes-1), line)
	return coherence.Uint64At(b)
}

func (p *proc) store(addr uint64, v uint64, size int) {
	p.checkIRQ()
	c := p.core
	c.Stores++
	c.Instrs++
	buf := p.stbuf[:size]
	for i := 0; i < size; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	// Write-through: update L1 copy if present, then commit to L2.
	c.l1.update(addr, buf)
	c.l2.Store(p.t, addr, buf, nil)
}

func (p *proc) Load64(addr uint64) uint64     { return p.load(addr, 8) }
func (p *proc) Load32(addr uint64) uint32     { return uint32(p.load(addr, 4)) }
func (p *proc) Store64(addr uint64, v uint64) { p.store(addr, v, 8) }
func (p *proc) Store32(addr uint64, v uint32) { p.store(addr, uint64(v), 4) }

func (p *proc) amo(op coherence.AmoOp, addr uint64, operand, operand2 uint64) uint64 {
	p.checkIRQ()
	c := p.core
	c.Atomics++
	c.Instrs++
	// The L1 copy (if any) is invalidated: atomics execute at the home.
	c.l1.invalidate(addr &^ (params.LineBytes - 1))
	return c.l2.Amo(p.t, op, addr, 8, operand, operand2, nil)
}

func (p *proc) AmoAdd64(addr uint64, delta uint64) uint64 {
	return p.amo(coherence.AmoAdd, addr, delta, 0)
}
func (p *proc) AmoSwap64(addr uint64, v uint64) uint64 { return p.amo(coherence.AmoSwap, addr, v, 0) }
func (p *proc) Cas64(addr uint64, expected, desired uint64) uint64 {
	return p.amo(coherence.AmoCAS, addr, expected, desired)
}

func (p *proc) MMIORead64(addr uint64) uint64 { return p.mmio(addr, false, 0) }
func (p *proc) MMIOWrite64(addr uint64, v uint64) {
	p.mmio(addr, true, v)
}

func (p *proc) mmio(addr uint64, write bool, v uint64) uint64 {
	p.checkIRQ()
	c := p.core
	c.MMIOs++
	c.Instrs++
	if c.route == nil {
		panic(fmt.Sprintf("core%d: MMIO %#x with no router", c.id, addr))
	}
	tile, ok := c.route(addr)
	if !ok {
		panic(fmt.Sprintf("core%d: MMIO to unmapped address %#x", c.id, addr))
	}
	c.seq++
	req := &mmio.Req{Addr: addr, Write: write, Size: 8, Data: v, SrcTile: c.tile, SeqID: c.seq}
	tx := c.mmioTX
	c.mmioTX = nil
	p.t.SleepCycles(c.clk, 1) // issue
	c.mesh.Send(&noc.Msg{Src: c.tile, Dst: tile, VN: noc.VNMMIOReq, Bytes: mmio.ReqBytes, Payload: req, TX: tx})
	// Strict I/O ordering: block until the response arrives. Interrupts
	// are taken while stalled (the kernel handler may need to unblock the
	// device this very access is waiting on).
	for {
		if r, done := c.mmioResp[req.SeqID]; done {
			delete(c.mmioResp, req.SeqID)
			return r.Data
		}
		if len(c.irqPending) > 0 && c.irqHandler != nil {
			p.checkIRQ()
			continue
		}
		c.mmioCond.Wait(p.t)
	}
}

func (p *proc) Fence() {
	p.checkIRQ()
	p.t.SleepCycles(p.core.clk, 1)
}
