package cpu

// Software synchronization primitives used by the processor-only
// baselines: MCS queue locks (paper §V-D, PDES baseline: "uses MCS locks
// to arbitrate accesses to the shared event queue") and a sense-reversing
// barrier (BFS baseline: "barrier-synchronized steps").
//
// They run on the Proc API, so every atomic and every spin iteration goes
// through the simulated coherence protocol — lock handoff cost and
// contention behaviour emerge from cache-to-cache transfers rather than
// being modelled analytically.

// MCS queue-lock memory layout:
//
//	lock:  [ tail (8B) ]
//	qnode: [ next (8B) | locked (8B) ]
//
// Callers allocate one qnode per core.
const (
	mcsNextOff   = 0
	mcsLockedOff = 8
	// MCSNodeBytes is the size of one MCS queue node.
	MCSNodeBytes = 16
	// spinBackoff is the cycle cost charged per spin-loop iteration
	// (branch + load issue), limiting event-rate while staying realistic.
	spinBackoff = 4
)

// MCSAcquire acquires the MCS lock whose tail pointer lives at tailAddr,
// enqueueing the caller's qnode at nodeAddr.
func MCSAcquire(p Proc, tailAddr, nodeAddr uint64) {
	p.Store64(nodeAddr+mcsNextOff, 0)
	p.Store64(nodeAddr+mcsLockedOff, 1)
	pred := p.AmoSwap64(tailAddr, nodeAddr)
	if pred == 0 {
		return // uncontended
	}
	p.Store64(pred+mcsNextOff, nodeAddr)
	for p.Load64(nodeAddr+mcsLockedOff) != 0 {
		p.Exec(spinBackoff)
	}
}

// MCSRelease releases the MCS lock acquired with the same qnode.
func MCSRelease(p Proc, tailAddr, nodeAddr uint64) {
	next := p.Load64(nodeAddr + mcsNextOff)
	if next == 0 {
		// No known successor: try to swing the tail back to empty.
		if p.Cas64(tailAddr, nodeAddr, 0) == nodeAddr {
			return
		}
		// A successor is enqueueing; wait for its link.
		for {
			next = p.Load64(nodeAddr + mcsNextOff)
			if next != 0 {
				break
			}
			p.Exec(spinBackoff)
		}
	}
	p.Store64(next+mcsLockedOff, 0)
}

// TASAcquire acquires a naive test-and-set spinlock: every attempt is a
// home-side atomic, so contention hammers the lock's home line and
// throughput collapses as cores multiply — the synchronization bottleneck
// the paper's BFS baseline exhibits (§V-D).
func TASAcquire(p Proc, addr uint64) {
	for p.AmoSwap64(addr, 1) != 0 {
		p.Exec(spinBackoff)
	}
}

// TASRelease releases a test-and-set spinlock.
func TASRelease(p Proc, addr uint64) {
	p.Store64(addr, 0)
}

// Barrier memory layout: [ count (8B) | sense (8B) ].
//
// BarrierBytes is the size of a barrier control block.
const BarrierBytes = 16

// BarrierWait blocks until n participants have arrived at the barrier at
// addr. localSense must alternate per participant per episode; callers
// keep it in a register (Go local) and pass the new value each time:
//
//	sense := uint64(0)
//	for step := ...; {
//	    sense ^= 1
//	    cpu.BarrierWait(p, barrier, nCores, sense)
//	}
func BarrierWait(p Proc, addr uint64, n int, localSense uint64) {
	arrived := p.AmoAdd64(addr, 1) + 1
	if arrived == uint64(n) {
		p.Store64(addr, 0)            // reset count
		p.Store64(addr+8, localSense) // flip global sense, releasing waiters
		return
	}
	for p.Load64(addr+8) != localSense {
		p.Exec(spinBackoff)
	}
}
