// Package cluster shards the accelerator-as-a-service runtime across many
// independent serve replicas — the scale axis past a single System. Each
// shard is an isolated simulated instance behind the Replica interface:
// a complete cycle-level Dolly system (EngineReplica: its own sim.Engine,
// adapters, fabrics, and sched.Scheduler), or internal/model's analytic
// fast-path replica, and the two kinds can be mixed in one heterogeneous
// cluster. Engine-backed shards run concurrently on real goroutines, one
// replica per goroutine, joined errgroup-style (all goroutines complete,
// first error wins).
//
// Determinism contract: a cluster run is byte-identical per
// (seed, shards, front end, per-shard configs) regardless of goroutine
// interleaving. Three properties deliver it:
//
//  1. The arrival stream is a pure function of the seed, and the front
//     end's routing decisions are a pure function of the stream, the
//     shard count, and each shard's catalog model (Predict/Workers) —
//     routing never observes live shard state. Run realizes this as a
//     sequential pre-pass over a materialized stream; RunSource
//     (stream.go) realizes the identical decision sequence online, off
//     an O(1)-memory generator, without ever building the stream.
//  2. Each shard's simulation is a deterministic run over state nothing
//     else touches; per-shard seeds are derived from the cluster seed
//     (ShardSeed) for any replica-local draws.
//  3. Per-shard results are merged in shard-index order with exact
//     latency-quantile merging: the raw per-job sojourn samples are
//     pooled and ranked over the whole population, never approximated
//     from pre-binned per-shard percentiles (see stats.go).
package cluster

import (
	"fmt"
	"sync"

	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/telemetry"
)

// Replica is one shard: an isolated simulated serve instance. The front
// end routes by the replica's catalog model (Predict, Workers); Play
// runs the shard to completion over its share of the arrival stream.
// Implementations: EngineReplica (cycle-level Dolly system) and
// internal/model's analytic fast-path replica.
type Replica interface {
	// Predict is the shard catalog's analytic occupancy estimate for one
	// job — what deterministic front ends route by. ok is false for
	// unregistered apps.
	Predict(app string, inputSize int) (est sim.Time, ok bool)
	// Workers reports the shard's worker count (the front end's view of
	// its service parallelism).
	Workers() int
	// Play runs the shard over its share of the stream — the entries at
	// indices mine (ascending), or the whole stream when mine is nil —
	// and returns the harvested results. The stream is shared across
	// shards: a replica may mutate only its own assigned entries.
	Play(stream []Arrival, mine []int32) (ShardResult, error)
	// PlayStream is Play's pull-based variant: the shard consumes its
	// assigned arrivals from the feed as they are produced, keeping
	// memory independent of the job count. Results are identical to
	// Play over the same per-shard arrival sequence.
	PlayStream(feed ArrivalFeed) (ShardResult, error)
}

// EngineReplica is a cycle-level shard: a fully independent simulated
// Duet instance (its own sim.Engine and scheduler). Run drains the
// replica's event queue and returns any model-level validation error
// (e.g. a failed coherence check).
type EngineReplica struct {
	Eng *sim.Engine
	Sch *sched.Scheduler
	Run func() error

	// DiscardSamples skips the exact-mode per-job harvest (Sojourns and
	// the wait/service sums) — for single-replica callers that read
	// Stats only and never merge. Cluster shards must leave it false:
	// Merge pools the raw samples for exact quantiles.
	DiscardSamples bool

	// Rec, when set, is the shard's windowed flight recorder: Play
	// attaches it to the scheduler before any submission and hands it
	// back in ShardResult.Windows. Window widths must agree across
	// shards for the cluster-level merge (Run enforces it).
	Rec *telemetry.Recorder
}

// Predict exposes the shard's catalog model for front-end routing.
func (r *EngineReplica) Predict(app string, inputSize int) (sim.Time, bool) {
	return r.Sch.Predict(app, inputSize)
}

// Workers reports the shard's worker count.
func (r *EngineReplica) Workers() int { return r.Sch.Workers() }

// Play schedules the shard's assigned arrivals as engine events, drains
// the engine, and harvests the results. In exact mode per-job results
// are harvested through the scheduler's OnResult drain hook; a
// streaming-stats scheduler already folds every job into its own
// fixed-memory digest and exact sums, so the shard reads those
// aggregates back after the run instead of accumulating a parallel copy
// per job — shard stats memory stays flat however many jobs the stream
// offers.
func (r *EngineReplica) Play(stream []Arrival, mine []int32) (ShardResult, error) {
	var sr ShardResult
	r.beginHarvest(&sr)
	submit := func(a any) { r.Sch.Submit(a.(*sched.Job)) }
	schedule := func(a *Arrival) {
		job := a.Job
		r.Eng.AtArg(a.At, submit, &job)
	}
	if mine == nil {
		for i := range stream {
			schedule(&stream[i])
		}
	} else {
		for _, i := range mine {
			schedule(&stream[i])
		}
	}
	err := r.Run()
	r.endHarvest(&sr)
	return sr, err
}

// PlayStream fuses arrival generation into the engine run: for each
// pulled arrival the engine executes every event strictly before the
// arrival instant (RunBefore), then the job is submitted directly — so
// the calendar holds only in-flight completion chains, never the
// O(jobs) pre-scheduled arrival events Play builds. Same-instant
// ordering is preserved exactly: a submission at t still precedes every
// queued completion at t, as a pre-scheduled arrival event would by
// bucket insertion order. In streaming-stats mode retired job records
// are recycled through a freelist (the scheduler keeps no reference
// after OnResult), so the whole run allocates O(in-flight) jobs.
func (r *EngineReplica) PlayStream(feed ArrivalFeed) (ShardResult, error) {
	var sr ShardResult
	r.beginHarvest(&sr)
	streaming := r.Sch.Config().Stats == sched.StatsStreaming
	var free []*sched.Job
	if streaming {
		r.Sch.OnResult = func(j *sched.Job) { free = append(free, j) }
	}
	var a Arrival
	for feed.Next(&a) {
		r.Eng.RunBefore(a.At)
		var j *sched.Job
		if n := len(free); n > 0 {
			j, free = free[n-1], free[:n-1]
		} else {
			j = new(sched.Job)
		}
		*j = a.Job
		if !r.Sch.Submit(j) && streaming && j.Err == nil {
			// Queue-full bounce: the job was never admitted and never
			// retired (no OnResult), so the scheduler holds no reference —
			// recycle the record directly. Submissions refused with an
			// error were retired and already recycled via OnResult.
			free = append(free, j)
		}
	}
	err := r.Run()
	r.endHarvest(&sr)
	return sr, err
}

// beginHarvest wires the flight recorder and, in exact mode, the
// per-job OnResult drain hook into sr before any submission.
func (r *EngineReplica) beginHarvest(sr *ShardResult) {
	if r.Rec != nil {
		r.Sch.SetObserver(r.Rec)
		sr.Windows = r.Rec
	}
	if !r.DiscardSamples && r.Sch.Config().Stats != sched.StatsStreaming {
		r.Sch.OnResult = func(j *sched.Job) {
			if j.Err != nil {
				return
			}
			sr.Sojourns = append(sr.Sojourns, j.Sojourn())
			sr.WaitSum += j.Wait()
			sr.ServiceSum += j.Service()
		}
	}
}

// endHarvest reads the scheduler's aggregates back after the run.
func (r *EngineReplica) endHarvest(sr *ShardResult) {
	sr.Stats = r.Sch.Stats()
	if d, waits, services, ok := r.Sch.SojournDigest(); ok {
		// The digest is the scheduler's own table, adopted by the shard
		// result; the replica is discarded after this run, so nothing
		// else writes to it.
		sr.Digest = d
		sr.WaitSum, sr.ServiceSum = waits, services
	}
}

// Arrival is one job offered to the cluster front end at absolute
// simulated time At. Jobs are held by value in the stream; the front
// end assigns each arrival to exactly one shard, so shards never share
// job state.
type Arrival struct {
	At  sim.Time
	Job sched.Job
}

// Config parameterizes one cluster run.
type Config struct {
	Shards   int      // independent replicas (default 1)
	FrontEnd FrontEnd // arrival-stream routing policy
	Seed     int64    // cluster seed; per-shard seeds derive from it

	// NewReplica builds shard i with its derived seed. Shards may be
	// heterogeneous — different worker counts, fabric clocks or
	// execution backends — but every shard must register the same
	// application catalog (the front end routes by each shard's own
	// catalog model). Construction runs sequentially, in shard order,
	// before any goroutine starts.
	NewReplica func(shard int, seed int64) (Replica, error)

	// Faults, when set, is the front end's view of the run's fault plan:
	// shard outage schedules for dead-shard reroute, and the hedging
	// horizon for duplicate re-dispatch ahead of an imminent crash. The
	// fault pass runs sequentially after routing, so it preserves the
	// determinism contract verbatim. Nil (or an inactive spec) changes
	// nothing.
	Faults *FaultSpec

	// Handoff bounds RunSource's per-shard hand-off buffer for the
	// stateful front ends (LeastOutstanding, HealthWeighted): how many
	// routed arrivals the producer may run ahead of a shard's
	// consumption. <= 0 selects DefaultHandoff. The bound affects only
	// memory and producer/consumer overlap, never results; Run and the
	// index-free front ends ignore it.
	Handoff int

	// Progress, when set, receives coarse delivered-arrival counts and
	// the simulated-time high-water mark from RunSource's feeds — the
	// sensor behind duetsim's -progress ticker. Nil disables updates.
	Progress *Progress
}

// FaultSpec is the cluster-level slice of a fault plan (the front end
// never sees wedge or blowup draws — those live below the Backend seam).
type FaultSpec struct {
	// ShardDown lists outage windows per shard index (ascending,
	// non-overlapping per shard; shards past the length never crash).
	// Arrivals routed to a shard inside one of its windows are rerouted
	// to the next healthy shard in index order; with every shard down
	// the arrival stays put and the shard's scheduler refuses it.
	ShardDown [][]sched.Downtime
	// Hedge, when positive, duplicates every arrival whose shard will
	// crash within Hedge of the arrival instant onto a healthy backup
	// shard — the duplicate rides the stream immediately after its
	// source arrival, keeping per-shard arrival order intact.
	Hedge sim.Time
	// RecoverHold is the health-weighted front end's hysteresis: a shard
	// whose outage window closed less than RecoverHold ago ranks as
	// recovering — behind every healthy shard, ahead of down ones — so
	// traffic ramps back instead of slamming into a just-rejoined shard.
	// Zero means rejoined shards rank healthy immediately.
	RecoverHold sim.Time
}

// active reports whether the spec can change any routing decision.
func (f *FaultSpec) active() bool {
	if f == nil {
		return false
	}
	if f.Hedge > 0 {
		return true
	}
	for _, d := range f.ShardDown {
		if len(d) > 0 {
			return true
		}
	}
	return false
}

// downAt reports whether shard is inside an outage window at instant at.
func (f *FaultSpec) downAt(shard int, at sim.Time) bool {
	if shard < 0 || shard >= len(f.ShardDown) {
		return false
	}
	for _, w := range f.ShardDown[shard] {
		if at >= w.From && at < w.To {
			return true
		}
	}
	return false
}

// healthClass ranks shard for the health-weighted front end at instant
// at: 0 healthy, 1 recovering (inside the RecoverHold hysteresis after
// an outage window closed), 2 down. A nil spec ranks everything healthy.
func (f *FaultSpec) healthClass(shard int, at sim.Time) int {
	if f == nil || shard < 0 || shard >= len(f.ShardDown) {
		return 0
	}
	for _, w := range f.ShardDown[shard] {
		if at >= w.From && at < w.To {
			return 2
		}
		if f.RecoverHold > 0 && at >= w.To && at < w.To+f.RecoverHold {
			return 1
		}
	}
	return 0
}

// crashesWithin reports whether shard enters an outage window in
// (at, at+Hedge].
func (f *FaultSpec) crashesWithin(shard int, at sim.Time) bool {
	if shard < 0 || shard >= len(f.ShardDown) {
		return false
	}
	for _, w := range f.ShardDown[shard] {
		if w.From > at && w.From <= at+f.Hedge {
			return true
		}
	}
	return false
}

// nextHealthy scans shard indices after s (wrapping) for one not down at
// instant at; ok is false when every other shard is down too.
func (f *FaultSpec) nextHealthy(shards, s int, at sim.Time) (int, bool) {
	for k := 1; k < shards; k++ {
		alt := (s + k) % shards
		if !f.downAt(alt, at) {
			return alt, true
		}
	}
	return s, false
}

// applyFaults is the front end's sequential fault pass: reroute arrivals
// aimed at a down shard, then (under a positive hedge horizon) duplicate
// arrivals whose shard is about to crash onto a healthy backup. The
// returned stream keeps ascending arrival order — hedge duplicates ride
// directly behind their source — so both replica kinds play it
// identically.
func applyFaults(f *FaultSpec, shards int, stream []Arrival, assign []int32) ([]Arrival, []int32, int, int) {
	rerouted := 0
	for i := range stream {
		s := int(assign[i])
		if f.downAt(s, stream[i].At) {
			if alt, ok := f.nextHealthy(shards, s, stream[i].At); ok {
				assign[i] = int32(alt)
				rerouted++
			}
		}
	}
	if f.Hedge <= 0 {
		return stream, assign, rerouted, 0
	}
	hedged := 0
	out := make([]Arrival, 0, len(stream))
	outAssign := make([]int32, 0, len(assign))
	for i := range stream {
		out = append(out, stream[i])
		outAssign = append(outAssign, assign[i])
		s := int(assign[i])
		if f.crashesWithin(s, stream[i].At) {
			if alt, ok := f.nextHealthy(shards, s, stream[i].At); ok {
				// The Arrival holds its Job by value, so the duplicate is
				// an independent job record.
				out = append(out, stream[i])
				outAssign = append(outAssign, int32(alt))
				hedged++
			}
		}
	}
	return out, outAssign, rerouted, hedged
}

// ShardSeed derives shard i's seed from the cluster seed with a
// splitmix64 finalizer, so adjacent shards draw unrelated streams.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ShardResult is one shard's share of a cluster run.
type ShardResult struct {
	Shard    int
	Seed     int64
	Assigned int // arrivals routed to this shard
	Stats    sched.Stats

	// Sojourns holds every completed job's submit-to-finish latency in
	// completion order — the raw samples behind exact merged quantiles.
	// Nil in streaming mode, where Digest replaces it.
	Sojourns []sim.Time
	// Digest is the fixed-memory sojourn summary harvested when the
	// shard's scheduler runs with sched.StatsStreaming: per-shard stats
	// memory stays O(1) in the job count and Merge combines digests
	// instead of pooling raw samples. Nil in exact mode.
	Digest *sched.Digest
	// WaitSum and ServiceSum are exact sums over completed jobs, kept so
	// merged means are computed from totals rather than re-divided
	// per-shard means.
	WaitSum, ServiceSum sim.Time

	// Windows is the shard's windowed flight recorder, populated when
	// the replica was built with one (EngineReplica.Rec, or the model
	// replica's SetRecorder). Per-shard window series are keyed by the
	// shared simulated timeline, so Run merges them exactly into
	// Result.Windows. Nil when telemetry was off.
	Windows *telemetry.Recorder
}

// Result is the outcome of one cluster run.
type Result struct {
	Shards   int
	FrontEnd FrontEnd
	Offered  int
	Merged   sched.Stats
	PerShard []ShardResult

	// Rerouted counts arrivals moved off a down shard by the front end's
	// fault pass; Hedged counts duplicate arrivals dispatched ahead of an
	// imminent shard crash. Both are zero without a fault spec.
	Rerouted int
	Hedged   int

	// Windows is the cluster-wide flight-recorder merge: per-shard
	// window series combined index for index in shard order (counters
	// add, busy columns concatenate, digests merge). Nil when no shard
	// recorded telemetry.
	Windows *telemetry.Recorder
}

// Run plays the arrival stream through a sharded serve farm: it builds
// Shards replicas, assigns the stream with the configured front end, runs
// every shard concurrently to completion, and merges the results.
func Run(cfg Config, stream []Arrival) (Result, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	reps, seeds, err := buildReplicas(cfg)
	if err != nil {
		return Result{}, err
	}
	// The front end's sequential pre-pass: one shard index per arrival,
	// regrouped into per-shard index lists. Shards then read their own
	// entries out of the shared stream, so no per-shard copy of the
	// (potentially huge) stream is ever built.
	assign := route(cfg.Shards, cfg.FrontEnd, reps, stream, cfg.Faults)
	var rerouted, hedged int
	if cfg.Faults.active() {
		stream, assign, rerouted, hedged = applyFaults(cfg.Faults, cfg.Shards, stream, assign)
	}
	counts := make([]int, cfg.Shards)
	for _, s := range assign {
		counts[s]++
	}
	indices := make([][]int32, cfg.Shards)
	for i := range indices {
		indices[i] = make([]int32, 0, counts[i])
	}
	for i, s := range assign {
		indices[s] = append(indices[s], int32(i))
	}

	// One replica per goroutine; errgroup-style join (every shard runs to
	// completion, the lowest-indexed error is reported). Each goroutine
	// touches only its own shard's state, its own result slot, and its
	// own assigned stream entries, so the merge after Wait observes a
	// deterministic state.
	results := make([]ShardResult, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = reps[i].Play(stream, indices[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
	}
	return finish(cfg, seeds, results, counts, len(stream), rerouted, hedged)
}

// buildReplicas validates cfg and constructs every shard sequentially,
// in shard order, with its derived seed — shared by Run and RunSource.
func buildReplicas(cfg Config) ([]Replica, []int64, error) {
	if cfg.FrontEnd < 0 || cfg.FrontEnd >= NumFrontEnds {
		return nil, nil, fmt.Errorf("cluster: unknown front end %d", cfg.FrontEnd)
	}
	if cfg.NewReplica == nil {
		return nil, nil, fmt.Errorf("cluster: Config.NewReplica is required")
	}
	reps := make([]Replica, cfg.Shards)
	seeds := make([]int64, cfg.Shards)
	for i := range reps {
		seeds[i] = ShardSeed(cfg.Seed, i)
		r, err := cfg.NewReplica(i, seeds[i])
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		if r == nil {
			return nil, nil, fmt.Errorf("cluster: shard %d: nil replica", i)
		}
		if er, ok := r.(*EngineReplica); ok && (er.Eng == nil || er.Sch == nil || er.Run == nil) {
			return nil, nil, fmt.Errorf("cluster: shard %d: replica needs Eng, Sch and Run", i)
		}
		reps[i] = r
	}
	return reps, seeds, nil
}

// finish stamps per-shard identity onto the results and performs the
// deterministic shard-order merge — shared by Run and RunSource.
func finish(cfg Config, seeds []int64, results []ShardResult, counts []int, offered, rerouted, hedged int) (Result, error) {
	for i := range results {
		results[i].Shard = i
		results[i].Seed = seeds[i]
		results[i].Assigned = counts[i]
	}
	res := Result{
		Shards:   cfg.Shards,
		FrontEnd: cfg.FrontEnd,
		Offered:  offered,
		PerShard: results,
		Rerouted: rerouted,
		Hedged:   hedged,
	}
	res.Merged = Merge(results)
	recs := make([]*telemetry.Recorder, len(results))
	for i := range results {
		recs[i] = results[i].Windows
	}
	var err error
	if res.Windows, err = telemetry.Merge(recs...); err != nil {
		return Result{}, fmt.Errorf("cluster: merging window series: %w", err)
	}
	return res, nil
}
