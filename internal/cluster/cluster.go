// Package cluster shards the accelerator-as-a-service runtime across many
// independent Duet replicas — the scale axis past a single System. Each
// shard is a complete simulated instance (its own sim.Engine, adapters,
// fabrics, and sched.Scheduler); shards run concurrently on real
// goroutines, one replica per goroutine, joined errgroup-style (all
// goroutines complete, first error wins).
//
// Determinism contract: a cluster run is byte-identical per
// (seed, shards, front end) regardless of goroutine interleaving.
// Three properties deliver it:
//
//  1. The arrival stream is generated up front as a pure function of the
//     seed, and the front end splits it across shards in a sequential
//     pre-pass (see frontend.go) — routing never observes live shard
//     state, only the catalog's analytic model.
//  2. Each shard's simulation is a deterministic discrete-event run over
//     an engine nothing else touches; per-shard seeds are derived from
//     the cluster seed (ShardSeed) for any replica-local draws.
//  3. Per-shard results are merged in shard-index order with exact
//     latency-quantile merging: the raw per-job sojourn samples are
//     pooled and ranked over the whole population, never approximated
//     from pre-binned per-shard percentiles (see stats.go).
package cluster

import (
	"fmt"
	"sync"

	"duet/internal/sched"
	"duet/internal/sim"
)

// Replica is one shard: a fully independent simulated Duet instance with
// its scheduler. Run drains the replica's event queue and returns any
// model-level validation error (e.g. a failed coherence check).
type Replica struct {
	Eng *sim.Engine
	Sch *sched.Scheduler
	Run func() error
}

// Arrival is one job offered to the cluster front end at absolute
// simulated time At. The Job is held by value: the front end hands each
// shard its own copy, so shards never share job state.
type Arrival struct {
	At  sim.Time
	Job sched.Job
}

// Config parameterizes one cluster run.
type Config struct {
	Shards   int      // independent replicas (default 1)
	FrontEnd FrontEnd // arrival-stream routing policy
	Seed     int64    // cluster seed; per-shard seeds derive from it

	// NewReplica builds shard i with its derived seed. Every shard must
	// register the same application catalog (the front end routes by the
	// catalog model of shard 0). Construction runs sequentially, in
	// shard order, before any goroutine starts.
	NewReplica func(shard int, seed int64) (*Replica, error)
}

// ShardSeed derives shard i's seed from the cluster seed with a
// splitmix64 finalizer, so adjacent shards draw unrelated streams.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ShardResult is one shard's share of a cluster run.
type ShardResult struct {
	Shard    int
	Seed     int64
	Assigned int // arrivals routed to this shard
	Stats    sched.Stats

	// Sojourns holds every completed job's submit-to-finish latency in
	// completion order — the raw samples behind exact merged quantiles.
	// Nil in streaming mode, where Digest replaces it.
	Sojourns []sim.Time
	// Digest is the fixed-memory sojourn summary harvested when the
	// shard's scheduler runs with sched.StatsStreaming: per-shard stats
	// memory stays O(1) in the job count and Merge combines digests
	// instead of pooling raw samples. Nil in exact mode.
	Digest *sched.Digest
	// WaitSum and ServiceSum are exact sums over completed jobs, kept so
	// merged means are computed from totals rather than re-divided
	// per-shard means.
	WaitSum, ServiceSum sim.Time
}

// Result is the outcome of one cluster run.
type Result struct {
	Shards   int
	FrontEnd FrontEnd
	Offered  int
	Merged   sched.Stats
	PerShard []ShardResult
}

// Run plays the arrival stream through a sharded serve farm: it builds
// Shards replicas, splits the stream with the configured front end, runs
// every shard concurrently to completion, and merges the results.
func Run(cfg Config, stream []Arrival) (Result, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.FrontEnd < 0 || cfg.FrontEnd >= NumFrontEnds {
		return Result{}, fmt.Errorf("cluster: unknown front end %d", cfg.FrontEnd)
	}
	if cfg.NewReplica == nil {
		return Result{}, fmt.Errorf("cluster: Config.NewReplica is required")
	}
	reps := make([]*Replica, cfg.Shards)
	seeds := make([]int64, cfg.Shards)
	for i := range reps {
		seeds[i] = ShardSeed(cfg.Seed, i)
		r, err := cfg.NewReplica(i, seeds[i])
		if err != nil {
			return Result{}, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		if r == nil || r.Eng == nil || r.Sch == nil || r.Run == nil {
			return Result{}, fmt.Errorf("cluster: shard %d: replica needs Eng, Sch and Run", i)
		}
		reps[i] = r
	}
	assigned := split(cfg.Shards, cfg.FrontEnd, reps[0].Sch, stream)

	// One replica per goroutine; errgroup-style join (every shard runs to
	// completion, the lowest-indexed error is reported). Each goroutine
	// touches only its own shard's engine and result slot, so the merge
	// after Wait observes a deterministic state.
	results := make([]ShardResult, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runShard(i, seeds[i], reps[i], assigned[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
	}
	res := Result{
		Shards:   cfg.Shards,
		FrontEnd: cfg.FrontEnd,
		Offered:  len(stream),
		PerShard: results,
	}
	res.Merged = Merge(results)
	return res, nil
}

// runShard plays one shard's sub-stream through its replica. In exact
// mode per-job results are harvested through the scheduler's OnResult
// drain hook; a streaming-stats scheduler already folds every job into
// its own fixed-memory digest and exact sums, so the shard reads those
// aggregates back after the run instead of accumulating a parallel copy
// per job — shard stats memory stays flat however many jobs the stream
// offers.
func runShard(shard int, seed int64, r *Replica, arrivals []Arrival) (ShardResult, error) {
	sr := ShardResult{Shard: shard, Seed: seed, Assigned: len(arrivals)}
	if r.Sch.Config().Stats != sched.StatsStreaming {
		r.Sch.OnResult = func(j *sched.Job) {
			if j.Err != nil {
				return
			}
			sr.Sojourns = append(sr.Sojourns, j.Sojourn())
			sr.WaitSum += j.Wait()
			sr.ServiceSum += j.Service()
		}
	}
	submit := func(a any) { r.Sch.Submit(a.(*sched.Job)) }
	for _, a := range arrivals {
		job := a.Job
		r.Eng.AtArg(a.At, submit, &job)
	}
	err := r.Run()
	sr.Stats = r.Sch.Stats()
	if d, waits, services, ok := r.Sch.SojournDigest(); ok {
		// The digest is the scheduler's own table, adopted by the shard
		// result; the replica is discarded after this run, so nothing
		// else writes to it.
		sr.Digest = d
		sr.WaitSum, sr.ServiceSum = waits, services
	}
	return sr, err
}
