package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"duet/internal/sim"
)

// This file is the streaming arrival pipeline: RunSource plays a cluster
// study straight off an O(1)-memory arrival generator, so the run never
// materializes the O(jobs) []Arrival stream that Run splits in a
// sequential pre-pass. The front end, the fault pass (dead-shard reroute
// and hedge duplicates), and each shard's simulation all become a single
// pass over the source:
//
//   - Index-free front ends (HashApp, RoundRobin) need no shared routing
//     state, so every shard clones the source and filters it down to its
//     own assignment in parallel — generation itself is parallelized and
//     no hand-off buffer exists at all.
//   - Stateful front ends (LeastOutstanding, HealthWeighted) route on a
//     single producer goroutine — the same sequential decision order as
//     Run's pre-pass — which feeds each shard through a bounded hand-off
//     channel (Config.Handoff caps how far the producer runs ahead), so
//     peak memory is O(shards x Handoff) instead of O(jobs).
//
// Per (seed, shards, front end, per-shard configs) the merged result is
// byte-identical to Run over the materialized stream of the same source;
// the equivalence is pinned by property tests in internal/workload.

// Source is a restartable O(1)-memory arrival generator: a pure function
// of its construction parameters that yields the stream in ascending
// arrival order. Clone must restart the identical stream from the first
// arrival — the streaming pipeline's replacement for sharing one
// materialized slice across shards.
type Source interface {
	// Next writes the next arrival into *a and reports whether one was
	// produced; false means the stream is exhausted.
	Next(a *Arrival) bool
	// Len reports the total number of arrivals the stream will yield.
	Len() int
	// Clone returns an independent source positioned at the first arrival.
	Clone() Source
}

// SliceSource adapts a materialized stream to the Source interface —
// tests and small studies can feed RunSource without a generator.
type SliceSource struct {
	stream []Arrival
	i      int
}

// NewSliceSource returns a Source yielding stream's entries in order.
func NewSliceSource(stream []Arrival) *SliceSource {
	return &SliceSource{stream: stream}
}

// Next yields the next entry by value.
func (s *SliceSource) Next(a *Arrival) bool {
	if s.i >= len(s.stream) {
		return false
	}
	*a = s.stream[s.i]
	s.i++
	return true
}

// Len reports the stream length.
func (s *SliceSource) Len() int { return len(s.stream) }

// Clone restarts the stream from the first entry.
func (s *SliceSource) Clone() Source { return &SliceSource{stream: s.stream} }

// ArrivalFeed is the pull side of the pipeline: a shard's own assigned
// arrivals in ascending order. Replica.PlayStream consumes one to
// exhaustion. Arrivals are delivered by value — each call may reuse *a.
type ArrivalFeed interface {
	Next(a *Arrival) bool
}

// Progress is a coarse, concurrency-safe progress counter for capacity
// runs: feeds batch job deliveries locally and flush into it, so a CLI
// ticker can report jobs done and the simulated-time high-water mark
// without touching the hot path. A nil *Progress disables all updates.
type Progress struct {
	jobs  atomic.Int64
	simAt atomic.Int64
}

// Jobs reports the number of arrivals delivered to shards so far.
func (p *Progress) Jobs() int64 {
	if p == nil {
		return 0
	}
	return p.jobs.Load()
}

// SimAt reports the latest arrival instant any shard has consumed.
func (p *Progress) SimAt() sim.Time {
	if p == nil {
		return 0
	}
	return sim.Time(p.simAt.Load())
}

// progressBatch is the flush granularity: one atomic add per this many
// deliveries keeps the counter invisible in profiles.
const progressBatch = 8192

// progressTap is a feed-local accumulator in front of a shared Progress.
type progressTap struct {
	p       *Progress
	pending int64
	at      sim.Time
}

func (t *progressTap) bump(at sim.Time) {
	if t.p == nil {
		return
	}
	t.pending++
	t.at = at
	if t.pending >= progressBatch {
		t.flush()
	}
}

func (t *progressTap) flush() {
	if t.p == nil || t.pending == 0 {
		return
	}
	t.p.jobs.Add(t.pending)
	t.pending = 0
	// CAS-max: the high-water mark over all shards' last-consumed instants.
	for {
		cur := t.p.simAt.Load()
		if int64(t.at) <= cur || t.p.simAt.CompareAndSwap(cur, int64(t.at)) {
			return
		}
	}
}

// SourceFeed adapts a whole Source into one replica's feed — the
// single-shard (workload.Serve) fast path, with optional progress taps.
type SourceFeed struct {
	src Source
	tap progressTap
}

// NewSourceFeed returns a feed yielding every arrival of src. p may be nil.
func NewSourceFeed(src Source, p *Progress) *SourceFeed {
	return &SourceFeed{src: src, tap: progressTap{p: p}}
}

// Next yields the next arrival of the source.
func (f *SourceFeed) Next(a *Arrival) bool {
	if f.src.Next(a) {
		f.tap.bump(a.At)
		return true
	}
	f.tap.flush()
	return false
}

// filterFeed is an index-free shard's view of the stream: a private
// clone of the source filtered down to the arrivals this shard would
// receive after routing and the fault pass. Routing by (index, app) and
// the per-arrival reroute/hedge decisions depend only on the arrival and
// the static fault spec, so every shard recomputes them independently —
// that is what lets generation run in parallel with zero hand-off state.
//
// Equivalence with Run's applyFaults: reroute rewrites each arrival's
// single destination (counted at the destination shard, so the per-shard
// counts sum to the global total), and a hedge duplicate targets
// nextHealthy(effective) which is never the effective shard itself, so
// each arrival contributes at most one entry per shard and the duplicate
// keeps its position directly behind the source arrival in that shard's
// subsequence — the same per-shard order applyFaults produces.
type filterFeed struct {
	src    Source
	shard  int
	shards int
	fe     FrontEnd
	spec   *FaultSpec // nil when the fault pass is inactive
	idx    int        // global stream index (round-robin key)
	tap    progressTap

	assigned, rerouted, hedged int
}

func (f *filterFeed) Next(a *Arrival) bool {
	for f.src.Next(a) {
		i := f.idx
		f.idx++
		var s int
		if f.fe == RoundRobin {
			s = i % f.shards
		} else {
			s = int(hashApp(a.Job.App) % uint32(f.shards))
		}
		eff := s
		if f.spec != nil && f.spec.downAt(s, a.At) {
			if alt, ok := f.spec.nextHealthy(f.shards, s, a.At); ok {
				eff = alt
			}
		}
		if eff == f.shard {
			f.assigned++
			if eff != s {
				f.rerouted++
			}
			f.tap.bump(a.At)
			return true
		}
		if f.spec != nil && f.spec.Hedge > 0 && f.spec.crashesWithin(eff, a.At) {
			if alt, ok := f.spec.nextHealthy(f.shards, eff, a.At); ok && alt == f.shard {
				// The Arrival travels by value, so the duplicate is an
				// independent job record — same as applyFaults' copy.
				f.assigned++
				f.hedged++
				f.tap.bump(a.At)
				return true
			}
		}
	}
	f.tap.flush()
	return false
}

// DefaultHandoff is the stateful front ends' hand-off bound: how many
// routed arrivals the producer may buffer per shard before it blocks.
const DefaultHandoff = 4096

// handoffBatch is the channel granularity: arrivals travel in value
// batches so the producer pays one channel operation per batch, not per
// job. Order within and across batches is the producer's routing order.
const handoffBatch = 256

// chanFeed is a stateful front end's per-shard feed: batches of routed
// arrivals from the producer goroutine over a bounded channel.
type chanFeed struct {
	ch    chan []Arrival
	cur   []Arrival
	i     int
	tap   progressTap
	drain sync.Once
}

func (f *chanFeed) Next(a *Arrival) bool {
	for f.i >= len(f.cur) {
		batch, ok := <-f.ch
		if !ok {
			f.tap.flush()
			return false
		}
		f.cur, f.i = batch, 0
	}
	*a = f.cur[f.i]
	f.i++
	f.tap.bump(a.At)
	return true
}

// drainRest empties the channel so the producer can never block on a
// shard that stopped consuming early (a shard error before exhaustion).
func (f *chanFeed) drainRest() {
	f.drain.Do(func() {
		for range f.ch {
		}
	})
}

// producer routes the whole source on one goroutine — the identical
// sequential decision order as Run's route() pre-pass plus applyFaults,
// interleaved per arrival — and feeds each shard's channel in batches.
type producer struct {
	chans            []chan []Arrival
	batches          [][]Arrival
	counts           []int
	rerouted, hedged int
}

func (p *producer) send(shard int, a *Arrival) {
	p.counts[shard]++
	p.batches[shard] = append(p.batches[shard], *a)
	if len(p.batches[shard]) >= handoffBatch {
		p.chans[shard] <- p.batches[shard]
		p.batches[shard] = make([]Arrival, 0, handoffBatch)
	}
}

func (p *producer) close() {
	for s, b := range p.batches {
		if len(b) > 0 {
			p.chans[s] <- b
		}
		close(p.chans[s])
	}
}

// run consumes the source to exhaustion. reps supplies each shard's
// catalog model for the load-model ranking; routeSpec feeds the
// health-weighted ranking (nil for plain least-outstanding) and
// faultSpec the reroute/hedge pass (nil when inactive) — mirroring
// route() and applyFaults' activation rules exactly.
func (p *producer) run(src Source, reps []Replica, routeSpec, faultSpec *FaultSpec) {
	lo := newLoadModel(reps)
	shards := len(p.chans)
	var a Arrival
	for src.Next(&a) {
		s := lo.route(&a, routeSpec)
		eff := s
		if faultSpec != nil && faultSpec.downAt(s, a.At) {
			if alt, ok := faultSpec.nextHealthy(shards, s, a.At); ok {
				eff = alt
				p.rerouted++
			}
		}
		p.send(eff, &a)
		if faultSpec != nil && faultSpec.Hedge > 0 && faultSpec.crashesWithin(eff, a.At) {
			if alt, ok := faultSpec.nextHealthy(shards, eff, a.At); ok {
				p.hedged++
				p.send(alt, &a)
			}
		}
	}
	p.close()
}

// RunSource plays an arrival source through a sharded serve farm without
// ever materializing the stream: shards consume their assignment as it
// is produced, so peak memory is independent of the job count. The
// merged result is byte-identical to Run over the same source's
// materialized stream.
func RunSource(cfg Config, src Source) (Result, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if src == nil {
		return Result{}, fmt.Errorf("cluster: RunSource needs a non-nil source")
	}
	reps, seeds, err := buildReplicas(cfg)
	if err != nil {
		return Result{}, err
	}
	var faultSpec *FaultSpec
	if cfg.Faults.active() {
		faultSpec = cfg.Faults
	}
	results := make([]ShardResult, cfg.Shards)
	errs := make([]error, cfg.Shards)
	counts := make([]int, cfg.Shards)
	var rerouted, hedged int
	var wg sync.WaitGroup

	switch cfg.FrontEnd {
	case HashApp, RoundRobin:
		// Parallel generation: each shard filters its own clone.
		feeds := make([]*filterFeed, cfg.Shards)
		for i := range feeds {
			feeds[i] = &filterFeed{
				src: src.Clone(), shard: i, shards: cfg.Shards,
				fe: cfg.FrontEnd, spec: faultSpec, tap: progressTap{p: cfg.Progress},
			}
		}
		for i := range reps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = reps[i].PlayStream(feeds[i])
			}(i)
		}
		wg.Wait()
		for i, f := range feeds {
			counts[i] = f.assigned
			rerouted += f.rerouted
			hedged += f.hedged
		}
	case LeastOutstanding, HealthWeighted:
		// Sequential routing on a producer goroutine, bounded hand-off to
		// each shard. The load model reads only each shard's immutable
		// catalog (Predict), never live scheduler state, so it is safe to
		// run concurrently with the shard simulations.
		handoff := cfg.Handoff
		if handoff <= 0 {
			handoff = DefaultHandoff
		}
		capBatches := handoff / handoffBatch
		if capBatches < 1 {
			capBatches = 1
		}
		p := &producer{
			chans:   make([]chan []Arrival, cfg.Shards),
			batches: make([][]Arrival, cfg.Shards),
			counts:  counts,
		}
		feeds := make([]*chanFeed, cfg.Shards)
		for i := range feeds {
			p.chans[i] = make(chan []Arrival, capBatches)
			p.batches[i] = make([]Arrival, 0, handoffBatch)
			feeds[i] = &chanFeed{ch: p.chans[i], tap: progressTap{p: cfg.Progress}}
		}
		for i := range reps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer feeds[i].drainRest()
				results[i], errs[i] = reps[i].PlayStream(feeds[i])
			}(i)
		}
		var routeSpec *FaultSpec
		if cfg.FrontEnd == HealthWeighted {
			routeSpec = cfg.Faults // ranking input even when inactive, like route()
		}
		p.run(src, reps, routeSpec, faultSpec)
		wg.Wait()
		rerouted, hedged = p.rerouted, p.hedged
	default:
		return Result{}, fmt.Errorf("cluster: unknown front end %d", cfg.FrontEnd)
	}

	for i, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
	}
	return finish(cfg, seeds, results, counts, src.Len()+hedged, rerouted, hedged)
}
