package cluster

import (
	"fmt"
	"slices"

	"duet/internal/sched"
	"duet/internal/sim"
)

// Merge folds per-shard results into one cluster-wide sched.Stats.
//
// Counters sum; the makespan is the latest completion instant across
// shards (every shard simulates the same global arrival timeline, so the
// axes line up); throughput and means are recomputed from exact totals.
// Latency quantiles are merged exactly: the per-job sojourn samples of
// every shard are pooled and ranked over the full population — merging
// pre-binned per-shard p50/p99 values would be approximate and
// order-dependent, pooling raw samples is neither. Shards harvested in
// streaming-stats mode carry a fixed-memory sched.Digest instead of raw
// samples; digests merge by elementwise bucket addition, which is also
// order-independent, at the digest's documented relative value error.
//
// With a single shard the merge is the identity on its Stats, which is
// what ties the cluster's determinism contract back to workload.Serve.
func Merge(shards []ShardResult) sched.Stats {
	var m sched.Stats
	var sojourns []sim.Time
	var digest *sched.Digest
	var waits, services sim.Time
	for _, s := range shards {
		m.Completed += s.Stats.Completed
		m.Failed += s.Stats.Failed
		m.Rejected += s.Stats.Rejected
		m.Reconfigs += s.Stats.Reconfigs
		m.DeadlineMisses += s.Stats.DeadlineMisses
		m.TimedOut += s.Stats.TimedOut
		m.Unavailable += s.Stats.Unavailable
		m.Wedges += s.Stats.Wedges
		m.Retries += s.Stats.Retries
		m.Quarantined += s.Stats.Quarantined
		m.Repairs += s.Stats.Repairs
		m.ProbationFails += s.Stats.ProbationFails
		m.QuarantineTime += s.Stats.QuarantineTime
		if s.Stats.Makespan > m.Makespan {
			m.Makespan = s.Stats.Makespan
		}
		sojourns = append(sojourns, s.Sojourns...)
		if s.Digest != nil {
			if digest == nil {
				digest = &sched.Digest{}
			}
			digest.Merge(s.Digest)
		}
		waits += s.WaitSum
		services += s.ServiceSum
	}
	if m.Completed > 0 {
		m.MeanWait = waits / sim.Time(m.Completed)
		m.MeanService = services / sim.Time(m.Completed)
		if m.Makespan > 0 {
			m.ThroughputPerMS = float64(m.Completed) / (float64(m.Makespan) / float64(sim.MS))
		}
	}
	if digest != nil {
		// Mixed modes (exact and streaming shards in one cluster) still
		// rank over the whole population: exact shards' raw samples fold
		// into the merged digest, at the digest's precision.
		for _, v := range sojourns {
			digest.Add(v)
		}
		m.P50 = digest.Quantile(50)
		m.P99 = digest.Quantile(99)
	} else {
		// Sort the pooled population once; both ranks come from it.
		slices.Sort(sojourns)
		m.P50 = sched.PercentileSorted(sojourns, 50)
		m.P99 = sched.PercentileSorted(sojourns, 99)
	}
	for si, s := range shards {
		for _, f := range s.Stats.Fabrics {
			if len(shards) > 1 {
				// Prefix fabric names with their shard and rebase
				// utilization onto the cluster-wide makespan so every row
				// shares one denominator. Single-shard merges keep the
				// shard's own view, exactly matching a plain Serve run.
				f.Name = fmt.Sprintf("s%d/%s", si, f.Name)
				if m.Makespan > 0 {
					f.Utilization = float64(f.Busy) / float64(m.Makespan)
				}
			}
			m.Fabrics = append(m.Fabrics, f)
		}
	}
	return m
}
