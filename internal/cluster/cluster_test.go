package cluster_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"duet"
	"duet/internal/accel"
	"duet/internal/cluster"
	"duet/internal/efpga"
	"duet/internal/sched"
	"duet/internal/sim"
)

// stub is an inert fabric-side model: the scheduler charges service time
// analytically, so the accelerator spawns no behavioural threads.
type stub struct{}

func (stub) Start(*efpga.Env) {}

var testApps = []struct {
	name       string
	fixed, per int64
}{
	{"Tangent", 32, 1},
	{"Popcount", 64, 4},
	{"BFS", 64, 3},
}

// newReplica builds real Dolly replicas with the test catalog
// registered. failShard, when >= 0, injects a Run error on that shard to
// exercise the errgroup-style join; efpgas sets the per-shard fabric
// count (heterogeneous when callers vary it by shard).
func newReplicaN(policy sched.Policy, failShard, efpgas int) func(int, int64) (cluster.Replica, error) {
	return func(shard int, seed int64) (cluster.Replica, error) {
		sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, EFPGAs: efpgas, Style: duet.StyleDuet})
		sch := sys.Scheduler(sched.Config{Policy: policy})
		for _, a := range testApps {
			bs := accel.Synthesize(a.name, func() efpga.Accelerator { return stub{} })
			if err := sch.RegisterApp(sched.App{BS: bs, FixedCycles: a.fixed, CyclesPerItem: a.per}); err != nil {
				return nil, err
			}
		}
		return &cluster.EngineReplica{Eng: sys.Eng, Sch: sch, Run: func() error {
			sys.Run()
			if shard == failShard {
				return errors.New("injected replica failure")
			}
			return nil
		}}, nil
	}
}

func newReplica(policy sched.Policy, failShard int) func(int, int64) (cluster.Replica, error) {
	return newReplicaN(policy, failShard, 2)
}

// stream builds a deterministic synthetic arrival stream (no rng: the
// cluster's determinism must not depend on how the stream was drawn).
// Gaps are shorter than typical service times, so backlog builds and the
// least-outstanding policy has real load imbalances to react to.
func stream(n int) []cluster.Arrival {
	arr := make([]cluster.Arrival, 0, n)
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(1+i%7) * sim.US
		arr = append(arr, cluster.Arrival{At: at, Job: sched.Job{
			App:       testApps[i%len(testApps)].name,
			InputSize: 64 + (i*37)%1500,
			Priority:  i % 4,
		}})
	}
	return arr
}

// TestRunDeterministic: per (seed, shards, front end) the whole result —
// merged stats, per-shard stats, and raw sojourn samples — must be
// byte-identical across runs despite one-goroutine-per-shard execution.
func TestRunDeterministic(t *testing.T) {
	for fe := cluster.FrontEnd(0); fe < cluster.NumFrontEnds; fe++ {
		t.Run(fe.String(), func(t *testing.T) {
			cfg := cluster.Config{Shards: 3, FrontEnd: fe, Seed: 9, NewReplica: newReplica(sched.Affinity, -1)}
			r1, err1 := cluster.Run(cfg, stream(120))
			r2, err2 := cluster.Run(cfg, stream(120))
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("identical cluster runs diverged:\n%+v\n%+v", r1, r2)
			}
			assigned := 0
			for _, s := range r1.PerShard {
				assigned += s.Assigned
				if s.Stats.Completed != s.Assigned {
					t.Fatalf("shard %d completed %d of %d assigned", s.Shard, s.Stats.Completed, s.Assigned)
				}
			}
			if assigned != r1.Offered {
				t.Fatalf("front end %v assigned %d of %d offered", fe, assigned, r1.Offered)
			}
			if got := r1.Merged.Completed + r1.Merged.Failed + r1.Merged.Rejected; got != r1.Offered {
				t.Fatalf("merged accounting %d of %d offered", got, r1.Offered)
			}
		})
	}
}

// TestFrontEndRouting checks each policy's characteristic split shape.
func TestFrontEndRouting(t *testing.T) {
	run := func(fe cluster.FrontEnd, shards int) *cluster.Result {
		r, err := cluster.Run(cluster.Config{
			Shards: shards, FrontEnd: fe, Seed: 4, NewReplica: newReplica(sched.FIFO, -1),
		}, stream(90))
		if err != nil {
			t.Fatal(err)
		}
		return &r
	}

	// Round-robin deals evenly: shard loads differ by at most one job.
	rr := run(cluster.RoundRobin, 4)
	for _, s := range rr.PerShard {
		if s.Assigned < 90/4 || s.Assigned > 90/4+1 {
			t.Fatalf("round-robin shard %d got %d jobs", s.Shard, s.Assigned)
		}
	}

	// Hash-by-app confines each app to one shard: with 3 distinct apps at
	// most 3 of the 4 shards can receive work.
	ha := run(cluster.HashApp, 4)
	loaded := 0
	for _, s := range ha.PerShard {
		if s.Assigned > 0 {
			loaded++
		}
	}
	if loaded == 0 || loaded > len(testApps) {
		t.Fatalf("hash-app loaded %d shards with %d apps", loaded, len(testApps))
	}

	// Least-outstanding balances: every shard serves, and no shard hoards
	// the stream.
	lo := run(cluster.LeastOutstanding, 3)
	for _, s := range lo.PerShard {
		if s.Assigned == 0 {
			t.Fatalf("least-outstanding starved shard %d", s.Shard)
		}
		if s.Assigned == lo.Offered {
			t.Fatalf("least-outstanding sent everything to shard %d", s.Shard)
		}
	}
}

// TestLeastOutstandingTieBreak pins the front end's tie-break: on equal
// outstanding counts the lowest shard index wins. Arrivals spaced far
// apart always observe every shard at zero outstanding, so every job
// must land on shard 0 — any other placement means the tie-break
// drifted (e.g. to round-robin or last-seen).
func TestLeastOutstandingTieBreak(t *testing.T) {
	arr := make([]cluster.Arrival, 12)
	for i := range arr {
		// 1s gaps dwarf any service time: all shards idle at each arrival.
		arr[i] = cluster.Arrival{At: sim.Time(i+1) * sim.Time(1e12), Job: sched.Job{
			App: testApps[i%len(testApps)].name, InputSize: 64,
		}}
	}
	r, err := cluster.Run(cluster.Config{
		Shards: 3, FrontEnd: cluster.LeastOutstanding, Seed: 1,
		NewReplica: newReplica(sched.FIFO, -1),
	}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerShard[0].Assigned != len(arr) {
		t.Fatalf("tie-break drifted: shard 0 got %d of %d (want all on the lowest index)",
			r.PerShard[0].Assigned, len(arr))
	}
	for _, s := range r.PerShard[1:] {
		if s.Assigned != 0 {
			t.Fatalf("tie-break drifted: shard %d got %d jobs", s.Shard, s.Assigned)
		}
	}
}

// TestHeterogeneousShardRouting: the least-outstanding front end must
// plan with each shard's own catalog model. A 4-fabric shard behind a
// 1-fabric shard absorbs most of a saturating stream, even from the
// higher shard index (which loses ties but wins on capacity).
func TestHeterogeneousShardRouting(t *testing.T) {
	mk := newReplicaN(sched.FIFO, -1, 1)
	big := newReplicaN(sched.FIFO, -1, 4)
	r, err := cluster.Run(cluster.Config{
		Shards: 2, FrontEnd: cluster.LeastOutstanding, Seed: 1,
		NewReplica: func(shard int, seed int64) (cluster.Replica, error) {
			if shard == 1 {
				return big(shard, seed)
			}
			return mk(shard, seed)
		},
	}, stream(120))
	if err != nil {
		t.Fatal(err)
	}
	small, wide := r.PerShard[0].Assigned, r.PerShard[1].Assigned
	if wide <= small {
		t.Fatalf("4-fabric shard got %d jobs vs 1-fabric shard's %d: front end ignored per-shard capacity", wide, small)
	}
	if small == 0 {
		t.Fatal("least-outstanding starved the small shard entirely")
	}
}

// TestMergeExactQuantiles: merged percentiles must rank the pooled
// per-job samples, not recombine per-shard percentiles.
func TestMergeExactQuantiles(t *testing.T) {
	mk := func(sojourns ...sim.Time) cluster.ShardResult {
		sr := cluster.ShardResult{Sojourns: sojourns}
		sr.Stats.Completed = len(sojourns)
		sr.Stats.P50 = sched.Percentile(sojourns, 50)
		sr.Stats.P99 = sched.Percentile(sojourns, 99)
		return sr
	}
	// Shard 0 holds the slow tail; shard 1 is uniformly fast. Any
	// percentile-of-percentiles scheme underweights shard 0's tail.
	s0 := mk(900*sim.US, 950*sim.US, 1000*sim.US)
	s1 := mk(10*sim.US, 20*sim.US, 30*sim.US, 40*sim.US, 50*sim.US, 60*sim.US, 70*sim.US)
	m := cluster.Merge([]cluster.ShardResult{s0, s1})
	pooled := []sim.Time{900 * sim.US, 950 * sim.US, 1000 * sim.US,
		10 * sim.US, 20 * sim.US, 30 * sim.US, 40 * sim.US, 50 * sim.US, 60 * sim.US, 70 * sim.US}
	if want := sched.Percentile(pooled, 99); m.P99 != want {
		t.Fatalf("merged p99 = %v, want pooled %v", m.P99, want)
	}
	if want := sched.Percentile(pooled, 50); m.P50 != want {
		t.Fatalf("merged p50 = %v, want pooled %v", m.P50, want)
	}
	if m.Completed != 10 {
		t.Fatalf("merged completed = %d", m.Completed)
	}
}

// TestMergeMixedModeQuantiles: when exact and streaming shards meet in
// one merge (nothing forbids a caller mixing modes per shard), the
// quantiles must still rank the whole population — exact shards' raw
// samples fold into the merged digest at the digest's precision rather
// than being silently dropped.
func TestMergeMixedModeQuantiles(t *testing.T) {
	exact := cluster.ShardResult{Sojourns: []sim.Time{900 * sim.US, 950 * sim.US, 1000 * sim.US}}
	exact.Stats.Completed = 3
	streaming := cluster.ShardResult{Digest: &sched.Digest{}}
	fast := []sim.Time{10 * sim.US, 20 * sim.US, 30 * sim.US, 40 * sim.US, 50 * sim.US, 60 * sim.US, 70 * sim.US}
	for _, v := range fast {
		streaming.Digest.Add(v)
	}
	streaming.Stats.Completed = len(fast)

	m := cluster.Merge([]cluster.ShardResult{exact, streaming})
	pooled := append(append([]sim.Time(nil), exact.Sojourns...), fast...)
	for _, q := range []struct {
		p    float64
		got  sim.Time
		want sim.Time
	}{{50, m.P50, sched.Percentile(pooled, 50)}, {99, m.P99, sched.Percentile(pooled, 99)}} {
		if q.got < q.want || q.got > q.want+sim.Time(float64(q.want)*sched.DigestRelError)+1 {
			t.Fatalf("mixed-mode p%v = %v, want pooled %v within the digest bound", q.p, q.got, q.want)
		}
	}
	if m.Completed != 10 {
		t.Fatalf("merged completed = %d", m.Completed)
	}
}

// TestRunErrors: configuration and replica failures surface with their
// shard attribution; all goroutines are still joined.
func TestRunErrors(t *testing.T) {
	if _, err := cluster.Run(cluster.Config{Shards: 2}, stream(4)); err == nil {
		t.Fatal("missing NewReplica not rejected")
	}
	if _, err := cluster.Run(cluster.Config{
		Shards: 2, FrontEnd: cluster.NumFrontEnds, NewReplica: newReplica(sched.FIFO, -1),
	}, stream(4)); err == nil {
		t.Fatal("bogus front end not rejected")
	}
	factoryErr := func(shard int, seed int64) (cluster.Replica, error) {
		return nil, errors.New("no fabric")
	}
	if _, err := cluster.Run(cluster.Config{Shards: 2, NewReplica: factoryErr}, stream(4)); err == nil {
		t.Fatal("factory error not propagated")
	}
	_, err := cluster.Run(cluster.Config{
		Shards: 3, FrontEnd: cluster.RoundRobin, Seed: 1, NewReplica: newReplica(sched.FIFO, 1),
	}, stream(30))
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("replica failure not attributed to its shard: %v", err)
	}
}

// TestShardSeed: derived seeds are stable and pairwise distinct.
func TestShardSeed(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 16; i++ {
		s := cluster.ShardSeed(1, i)
		if s != cluster.ShardSeed(1, i) {
			t.Fatalf("shard %d seed unstable", i)
		}
		if seen[s] {
			t.Fatalf("shard %d seed collides", i)
		}
		seen[s] = true
	}
}

func TestFrontEndNames(t *testing.T) {
	for f := cluster.FrontEnd(0); f < cluster.NumFrontEnds; f++ {
		got, err := cluster.FrontEndByName(f.String())
		if err != nil || got != f {
			t.Fatalf("round trip %v: %v %v", f, got, err)
		}
	}
	if cluster.FrontEnd(-1).String() != "unknown" || cluster.NumFrontEnds.String() != "unknown" {
		t.Fatal("out-of-range FrontEnd.String not bounded")
	}
	if _, err := cluster.FrontEndByName("fastest"); err == nil {
		t.Fatal("unknown front-end name accepted")
	}
}
