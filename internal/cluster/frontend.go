package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"duet/internal/sim"
)

// FrontEnd selects how the cluster front end routes arriving jobs to
// shards. Every policy is a deterministic, sequential pre-pass over the
// arrival stream — routing decisions depend only on the stream, the
// shard count, and each shard's catalog model (Predict/Workers), never
// on live shard state, which is what keeps multi-shard runs
// byte-identical regardless of goroutine interleaving. Routing by
// per-shard models is also what makes heterogeneous clusters work: a
// shard with more fabrics (or a different execution backend) advertises
// its capacity through its own Workers and Predict.
type FrontEnd int

// Front-end policies.
const (
	// HashApp routes by a stable hash of the job's application name:
	// all of an app's jobs land on one shard, so each shard's fabrics
	// cycle through a small bitstream subset (bitstream affinity).
	HashApp FrontEnd = iota
	// RoundRobin deals jobs across shards in arrival order.
	RoundRobin
	// LeastOutstanding routes each job to the shard with the fewest
	// jobs still outstanding under the front end's analytic model of
	// shard occupancy. On equal outstanding counts the lowest shard
	// index wins — an explicit part of the determinism contract, pinned
	// by a regression test.
	LeastOutstanding
	// HealthWeighted is LeastOutstanding with the fault spec's health
	// signal layered on top: shards are ranked first by health class —
	// healthy, then recovering (an outage window closed less than
	// FaultSpec.RecoverHold ago: the hysteresis that keeps a freshly
	// rejoined shard from instantly absorbing the whole stream), then
	// down — and only then by outstanding count, lowest index winning
	// ties. With a nil or inactive fault spec every shard is healthy and
	// the policy IS LeastOutstanding, decision for decision. The health
	// class comes from the same outage schedule the daemon's /healthz
	// degrades on, and the ranking is part of the sequential pre-pass, so
	// routing stays byte-identical at every width and on both backends.
	HealthWeighted
	NumFrontEnds
)

func (f FrontEnd) String() string {
	names := [...]string{"hash-app", "round-robin", "least-outstanding", "health-weighted"}
	if f < 0 || int(f) >= len(names) {
		return "unknown"
	}
	return names[f]
}

// MarshalJSON encodes the front end as its String name for
// machine-readable study output.
func (f FrontEnd) MarshalJSON() ([]byte, error) { return json.Marshal(f.String()) }

// FrontEndByName parses a front-end name as printed by String.
func FrontEndByName(name string) (FrontEnd, error) {
	for f := FrontEnd(0); f < NumFrontEnds; f++ {
		if f.String() == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown front end %q", name)
}

// route assigns each arrival to a shard under the chosen policy; the
// result maps stream index to shard index. reps supplies every shard's
// catalog model, so heterogeneous shards are routed by their own
// capacity, not shard 0's. faults feeds the health-weighted policy's
// shard ranking (every other policy ignores it; nil means all-healthy).
func route(shards int, fe FrontEnd, reps []Replica, stream []Arrival, faults *FaultSpec) []int32 {
	assign := make([]int32, len(stream))
	switch fe {
	case RoundRobin:
		for i := range stream {
			assign[i] = int32(i % shards)
		}
	case LeastOutstanding:
		lo := newLoadModel(reps)
		for i := range stream {
			assign[i] = int32(lo.route(&stream[i], nil))
		}
	case HealthWeighted:
		lo := newLoadModel(reps)
		for i := range stream {
			assign[i] = int32(lo.route(&stream[i], faults))
		}
	default: // HashApp
		for i := range stream {
			assign[i] = int32(hashApp(stream[i].Job.App) % uint32(shards))
		}
	}
	return assign
}

func hashApp(app string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(app))
	return h.Sum32()
}

// loadModel is the least-outstanding front end's analytic view of shard
// occupancy: each shard is modeled as its own Workers() virtual fabrics
// serving jobs for their catalog-predicted occupancy, FIFO per fabric.
// It tracks, per shard, when each virtual fabric frees up and the
// predicted finish times of in-flight jobs.
//
// Finishes live in one FIFO queue per virtual fabric: a fabric's charged
// finish times are strictly increasing (each new charge starts no
// earlier than the fabric's previous free estimate), so expiring the
// jobs a new arrival has outrun is a pop-from-the-front loop — amortized
// O(1) per charged job — instead of a rescan of every in-flight entry.
// That keeps billion-job streaming studies out of the O(jobs^2) regime
// the old flat finishes slice hit under saturating load.
type loadModel struct {
	reps   []Replica
	shards []loadShard
}

// loadCap bounds the outstanding jobs the model tracks per shard. Under
// sustained overload the modeled backlog would otherwise grow with the
// job count (every arrival is charged, none expire before the stream
// ends) — unbounded memory on exactly the capacity runs the streaming
// pipeline exists for. Past the cap a shard's ranking signal simply
// saturates: further charges advance the fabric-free estimates but are
// not tracked for expiry. No study at sane scale reaches 64Ki modeled
// outstanding per shard without being saturated in every sense that
// matters to a least-loaded ranking.
const loadCap = 1 << 16

type loadShard struct {
	free []sim.Time   // per-virtual-fabric earliest-free estimate
	fins [][]sim.Time // per-fabric FIFO (strictly increasing) of predicted finishes
	head []int        // per-fabric consumed prefix of fins
	n    int          // live finishes across fabrics: the outstanding count
}

// expire drops every predicted finish at or before t — the same set the
// old filter pass kept out of the outstanding count.
func (sh *loadShard) expire(t sim.Time) {
	for f := range sh.fins {
		q, h := sh.fins[f], sh.head[f]
		for h < len(q) && q[h] <= t {
			h++
			sh.n--
		}
		// Reclaim the consumed prefix once it dominates the queue, so the
		// backing array tracks the live backlog, not the all-time total.
		if h > 64 && 2*h >= len(q) {
			copy(q, q[h:])
			sh.fins[f] = q[:len(q)-h]
			h = 0
		}
		sh.head[f] = h
	}
}

func newLoadModel(reps []Replica) *loadModel {
	lm := &loadModel{reps: reps, shards: make([]loadShard, len(reps))}
	for i := range lm.shards {
		w := reps[i].Workers()
		lm.shards[i].free = make([]sim.Time, w)
		lm.shards[i].fins = make([][]sim.Time, w)
		lm.shards[i].head = make([]int, w)
	}
	return lm
}

// route picks the best shard at a.At and charges the job's predicted
// occupancy (under that shard's own catalog model) to the shard's
// earliest-free virtual fabric. Shards are ranked lexicographically by
// (health class, outstanding count, index): with a nil fault spec every
// class is 0 and the pick is plain least-outstanding.
func (lm *loadModel) route(a *Arrival, faults *FaultSpec) int {
	best, bestOut, bestClass := 0, -1, 0
	for i := range lm.shards {
		sh := &lm.shards[i]
		sh.expire(a.At)
		// Strict less-than on both keys: on full ties the earlier
		// (lowest-index) shard keeps the job — the explicit tie-break of
		// the determinism contract.
		class := faults.healthClass(i, a.At)
		if bestOut < 0 || class < bestClass ||
			(class == bestClass && sh.n < bestOut) {
			best, bestOut, bestClass = i, sh.n, class
		}
	}
	sh := &lm.shards[best]
	fab := 0
	for i, f := range sh.free {
		if f < sh.free[fab] {
			fab = i
		}
	}
	start := a.At
	if sh.free[fab] > start {
		start = sh.free[fab]
	}
	svc, _ := lm.reps[best].Predict(a.Job.App, a.Job.InputSize)
	fin := start + svc
	sh.free[fab] = fin
	if sh.n < loadCap {
		sh.fins[fab] = append(sh.fins[fab], fin)
		sh.n++
	}
	return best
}
