// Package mem provides the simulated physical memory: a sparse store of
// 16-byte lines addressed by physical line address. It is purely
// functional (no timing); latency is charged by the components that access
// it (the L3 home shards model DRAM latency).
package mem

import (
	"encoding/binary"
	"fmt"

	"duet/internal/params"
)

// LineBytes is the cache line size in bytes.
const LineBytes = params.LineBytes

// Line is the contents of one cache line.
type Line [LineBytes]byte

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineBytes-1) }

// Offset returns the byte offset of addr within its line.
func Offset(addr uint64) int { return int(addr & uint64(LineBytes-1)) }

// Memory is a sparse physical memory. Unwritten lines read as zero.
type Memory struct {
	lines map[uint64]Line
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{lines: make(map[uint64]Line)}
}

// ReadLine returns the contents of the line containing addr.
func (m *Memory) ReadLine(addr uint64) Line {
	return m.lines[LineAddr(addr)]
}

// WriteLine replaces the line containing addr.
func (m *Memory) WriteLine(addr uint64, data Line) {
	m.lines[LineAddr(addr)] = data
}

// Read copies size bytes starting at addr. It panics if the access crosses
// a line boundary: the simulated hardware issues only naturally-aligned
// accesses, so a crossing is a model bug.
func (m *Memory) Read(addr uint64, size int) []byte {
	checkAligned(addr, size)
	line := m.ReadLine(addr)
	off := Offset(addr)
	out := make([]byte, size)
	copy(out, line[off:off+size])
	return out
}

// Write stores data at addr (len(data) bytes, line-contained).
func (m *Memory) Write(addr uint64, data []byte) {
	checkAligned(addr, len(data))
	line := m.ReadLine(addr)
	copy(line[Offset(addr):], data)
	m.WriteLine(addr, line)
}

// Read64 loads a little-endian uint64 at an 8-byte-aligned address.
func (m *Memory) Read64(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(m.Read(addr, 8))
}

// Write64 stores a little-endian uint64 at an 8-byte-aligned address.
func (m *Memory) Write64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// Read32 loads a little-endian uint32 at a 4-byte-aligned address.
func (m *Memory) Read32(addr uint64) uint32 {
	return binary.LittleEndian.Uint32(m.Read(addr, 4))
}

// Write32 stores a little-endian uint32 at a 4-byte-aligned address.
func (m *Memory) Write32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// Lines reports the number of distinct lines ever written.
func (m *Memory) Lines() int { return len(m.lines) }

func checkAligned(addr uint64, size int) {
	if size <= 0 || size > LineBytes {
		panic(fmt.Sprintf("mem: bad access size %d", size))
	}
	if LineAddr(addr) != LineAddr(addr+uint64(size)-1) {
		panic(fmt.Sprintf("mem: access %#x+%d crosses a line boundary", addr, size))
	}
	if addr%uint64(size) != 0 && size == 8 || size == 4 && addr%4 != 0 {
		panic(fmt.Sprintf("mem: misaligned %d-byte access at %#x", size, addr))
	}
}

// Merge applies data under mask to dst (mask bit i covers dst[i]).
func Merge(dst *Line, off int, data []byte) {
	copy(dst[off:off+len(data)], data)
}
