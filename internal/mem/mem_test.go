package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddrOffset(t *testing.T) {
	if LineAddr(0x1237) != 0x1230 {
		t.Fatalf("LineAddr = %#x", LineAddr(0x1237))
	}
	if Offset(0x1237) != 7 {
		t.Fatalf("Offset = %d", Offset(0x1237))
	}
}

func TestReadWrite64(t *testing.T) {
	m := New()
	m.Write64(0x1000, 0xdeadbeefcafef00d)
	if v := m.Read64(0x1000); v != 0xdeadbeefcafef00d {
		t.Fatalf("Read64 = %#x", v)
	}
	if v := m.Read64(0x1008); v != 0 {
		t.Fatalf("unwritten read = %#x", v)
	}
	m.Write32(0x2004, 0x12345678)
	if v := m.Read32(0x2004); v != 0x12345678 {
		t.Fatalf("Read32 = %#x", v)
	}
}

func TestLineRoundTrip(t *testing.T) {
	m := New()
	var l Line
	for i := range l {
		l[i] = byte(i * 3)
	}
	m.WriteLine(0x40, l)
	got := m.ReadLine(0x4f) // any address within the line
	if got != l {
		t.Fatalf("line mismatch: %v vs %v", got, l)
	}
}

func TestPartialWriteMergesIntoLine(t *testing.T) {
	m := New()
	m.Write64(0x100, 0x1111111111111111)
	m.Write64(0x108, 0x2222222222222222)
	m.Write(0x104, []byte{0xaa, 0xbb})
	l := m.ReadLine(0x100)
	if l[4] != 0xaa || l[5] != 0xbb || l[0] != 0x11 || l[8] != 0x22 {
		t.Fatalf("merge failed: %v", l)
	}
}

func TestCrossLinePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing access did not panic")
		}
	}()
	m.Read(0x10a, 8) // crosses 0x110
}

func TestPropertyWriteReadBack(t *testing.T) {
	m := New()
	f := func(addrRaw uint32, v uint64) bool {
		addr := uint64(addrRaw) &^ 7 // 8-byte aligned
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
