// Package cdc models clock-domain-crossing hardware: asynchronous FIFOs
// built from dual-clock RAMs with Gray-coded, multi-stage pointer
// synchronizers, as used throughout Dolly (paper §IV).
//
// The latency contract reproduced here is the one that matters for the
// paper's results: an entry written at a writer-clock edge t becomes
// visible to the reader only once the write pointer has crossed the
// synchronizer, i.e. at the SyncStages-th reader-clock edge strictly after
// t. Symmetrically, space freed by a read becomes visible to the writer
// SyncStages writer-clock edges after the read. Crossing into a slow
// domain therefore costs ~2 slow cycles while crossing into a fast domain
// costs ~2 fast cycles — the asymmetry behind Figs. 5, 6 and 9.
package cdc

import (
	"duet/internal/sim"
)

// DefaultSyncStages is the synchronizer depth used across Dolly
// ("Gray-coded, 2-stage synchronizers", paper §IV).
const DefaultSyncStages = 2

// DefaultDepth is the default FIFO capacity in entries.
const DefaultDepth = 8

type entry struct {
	payload   interface{}
	writtenAt sim.Time // writer edge the entry was committed
	visibleAt sim.Time // first reader edge the entry can be popped
	tx        *sim.TX
}

// Fifo is an asynchronous FIFO crossing from a writer clock domain to a
// reader clock domain. All methods must be called from engine context (an
// event callback or a parked-thread resumption).
type Fifo struct {
	Name       string
	eng        *sim.Engine
	wclk, rclk *sim.Clock
	depth      int
	syncStages int

	queue []entry
	// freeAt[i] holds times at which previously-consumed slots become
	// visible to the writer again.
	pendingFree []sim.Time

	notEmpty *sim.Cond // signalled when an entry may have become poppable
	notFull  *sim.Cond // signalled when space may have become available

	// Pushed counts total entries ever pushed; Popped total ever popped.
	Pushed, Popped uint64
}

// NewFifo creates an async FIFO with the given capacity (entries) and
// synchronizer depth. depth <= 0 selects DefaultDepth; stages <= 0 selects
// DefaultSyncStages.
func NewFifo(eng *sim.Engine, name string, wclk, rclk *sim.Clock, depth, stages int) *Fifo {
	if depth <= 0 {
		depth = DefaultDepth
	}
	if stages <= 0 {
		stages = DefaultSyncStages
	}
	return &Fifo{
		Name:       name,
		eng:        eng,
		wclk:       wclk,
		rclk:       rclk,
		depth:      depth,
		syncStages: stages,
		notEmpty:   sim.NewCond(eng),
		notFull:    sim.NewCond(eng),
	}
}

// WriterClock reports the writer-side clock.
func (f *Fifo) WriterClock() *sim.Clock { return f.wclk }

// ReaderClock reports the reader-side clock.
func (f *Fifo) ReaderClock() *sim.Clock { return f.rclk }

// Depth reports the FIFO capacity.
func (f *Fifo) Depth() int { return f.depth }

// occupancySeenByWriter counts slots the writer believes are in use at time
// now: everything in the queue plus consumed slots whose release has not yet
// crossed the synchronizer back.
func (f *Fifo) occupancySeenByWriter(now sim.Time) int {
	n := len(f.queue)
	for _, t := range f.pendingFree {
		if t > now {
			n++
		}
	}
	return n
}

// CanPush reports whether a push would be accepted at time now.
func (f *Fifo) CanPush(now sim.Time) bool {
	return f.occupancySeenByWriter(now) < f.depth
}

// TryPush attempts to push payload at the next writer-clock edge at or
// after now. It returns false if the FIFO appears full to the writer.
// On success the entry is committed at the writer edge and its visibility
// time in the reader domain is computed per the synchronizer model.
func (f *Fifo) TryPush(payload interface{}, tx *sim.TX) bool {
	now := f.eng.Now()
	if !f.CanPush(now) {
		return false
	}
	wedge := f.wclk.NextEdge(now)
	visible := f.rclk.EdgesAfter(wedge, int64(f.syncStages))
	f.queue = append(f.queue, entry{payload: payload, writtenAt: wedge, visibleAt: visible, tx: tx})
	f.Pushed++
	// Wake potential readers when the entry becomes visible.
	f.notEmpty.BroadcastAt(visible)
	return true
}

// PushBlocking pushes payload, parking thread t while the FIFO is full.
func (f *Fifo) PushBlocking(t *sim.Thread, payload interface{}, tx *sim.TX) {
	for !f.TryPush(payload, tx) {
		f.notFull.Wait(t)
	}
}

// headVisible reports whether the head entry is poppable at now.
func (f *Fifo) headVisible(now sim.Time) bool {
	return len(f.queue) > 0 && f.queue[0].visibleAt <= now
}

// CanPop reports whether a pop would succeed at time now.
func (f *Fifo) CanPop(now sim.Time) bool { return f.headVisible(now) }

// Len reports the number of entries currently stored (visible or not).
func (f *Fifo) Len() int { return len(f.queue) }

// TryPop pops the head entry if it is visible at the current time. The
// pop is committed at the next reader-clock edge at or after now (now is
// already a reader edge in well-formed models). It returns the payload,
// its transaction tag, and whether a pop occurred.
func (f *Fifo) TryPop() (interface{}, *sim.TX, bool) {
	now := f.eng.Now()
	if !f.headVisible(now) {
		return nil, nil, false
	}
	e := f.queue[0]
	f.queue = f.queue[1:]
	f.Popped++
	redge := f.rclk.NextEdge(now)
	// The slot is returned to the writer once the read pointer crosses the
	// synchronizer into the writer domain.
	freeAt := f.wclk.EdgesAfter(redge, int64(f.syncStages))
	f.pendingFree = append(f.pendingFree, freeAt)
	f.gcPendingFree(now)
	f.notFull.BroadcastAt(freeAt)
	// Attribute the CDC crossing cost to the transaction: time from write
	// commit to visibility.
	e.tx.Add(sim.CatCDC, e.visibleAt-e.writtenAt)
	return e.payload, e.tx, true
}

func (f *Fifo) gcPendingFree(now sim.Time) {
	keep := f.pendingFree[:0]
	for _, t := range f.pendingFree {
		if t > now {
			keep = append(keep, t)
		}
	}
	f.pendingFree = keep
}

// PopBlocking pops the head entry, parking thread t until one is visible.
func (f *Fifo) PopBlocking(t *sim.Thread) (interface{}, *sim.TX) {
	for {
		if v, tx, ok := f.TryPop(); ok {
			return v, tx
		}
		f.notEmpty.Wait(t)
	}
}

// PeekVisibleAt reports the time the head entry becomes visible to the
// reader, or (0, false) when the FIFO is empty. Event-driven consumers use
// this to schedule their service.
func (f *Fifo) PeekVisibleAt() (sim.Time, bool) {
	if len(f.queue) == 0 {
		return 0, false
	}
	return f.queue[0].visibleAt, true
}

// NotEmpty exposes the condition signalled when an entry may have become
// visible. Consumers that multiplex several FIFOs wait on it and re-poll.
func (f *Fifo) NotEmpty() *sim.Cond { return f.notEmpty }

// NotFull exposes the condition signalled when writer-visible space may
// have become available.
func (f *Fifo) NotFull() *sim.Cond { return f.notFull }
