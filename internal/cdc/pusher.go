package cdc

import "duet/internal/sim"

// Pusher serializes pushes into a Fifo, preserving order under
// backpressure. A bare TryPush-with-retry can reorder entries (a retried
// push can fall behind a later successful one); every producer that may
// push while the FIFO is full must go through a Pusher.
type Pusher struct {
	eng     *sim.Engine
	f       *Fifo
	q       []queued
	busy    bool
	drainEv sim.Event // pre-built retry record; rescheduled, never rebuilt
}

type queued struct {
	payload interface{}
	tx      *sim.TX
}

// drainPusher is the trampoline behind the pusher's retry events.
func drainPusher(a any) { a.(*Pusher).drain() }

// NewPusher returns an ordered pusher for f.
func NewPusher(eng *sim.Engine, f *Fifo) *Pusher {
	p := &Pusher{eng: eng, f: f}
	p.drainEv = sim.Event{Fn: drainPusher, Arg: p}
	return p
}

// Push enqueues payload; it is committed to the FIFO in Push-call order as
// space becomes available.
func (p *Pusher) Push(payload interface{}, tx *sim.TX) {
	p.q = append(p.q, queued{payload, tx})
	if !p.busy {
		p.drain()
	}
}

// Backlog reports entries accepted but not yet in the FIFO.
func (p *Pusher) Backlog() int { return len(p.q) }

func (p *Pusher) drain() {
	for len(p.q) > 0 {
		if !p.f.TryPush(p.q[0].payload, p.q[0].tx) {
			// Full: retry at the next writer edge. The busy flag keeps
			// later Push calls queued behind us.
			p.busy = true
			p.eng.AtEvent(p.f.WriterClock().EdgeAfter(p.eng.Now()), &p.drainEv)
			return
		}
		p.q = p.q[1:]
	}
	p.busy = false
}
