package cdc

import (
	"testing"
	"testing/quick"

	"duet/internal/sim"
)

func clocks() (*sim.Clock, *sim.Clock) {
	fast := sim.NewClock("fast", 1000)  // 1 GHz
	slow := sim.NewClock("slow", 10000) // 100 MHz
	return fast, slow
}

func TestFifoVisibilityLatencyFastToSlow(t *testing.T) {
	eng := sim.NewEngine()
	fast, slow := clocks()
	f := NewFifo(eng, "f2s", fast, slow, 8, 2)

	var poppedAt sim.Time
	var got interface{}
	eng.Go("reader", func(th *sim.Thread) {
		got, _ = f.PopBlocking(th)
		poppedAt = th.Now()
	})
	eng.At(0, func() {
		if !f.TryPush(42, nil) {
			t.Error("push failed on empty fifo")
		}
	})
	eng.Run(0)
	if got != 42 {
		t.Fatalf("popped %v, want 42", got)
	}
	// Written at fast edge 0; visible at the 2nd slow edge strictly after 0
	// = 20000ps.
	if poppedAt != 20000 {
		t.Fatalf("popped at %v, want 20ns (2 slow edges)", poppedAt)
	}
}

func TestFifoVisibilityLatencySlowToFast(t *testing.T) {
	eng := sim.NewEngine()
	fast, slow := clocks()
	f := NewFifo(eng, "s2f", slow, fast, 8, 2)
	var poppedAt sim.Time
	eng.Go("reader", func(th *sim.Thread) {
		f.PopBlocking(th)
		poppedAt = th.Now()
	})
	eng.At(3000, func() {
		// Writer is slow: commit lands on next slow edge = 10000.
		f.TryPush("x", nil)
	})
	eng.Run(0)
	// Visible at 2 fast edges strictly after 10000 = 12000ps.
	if poppedAt != 12000 {
		t.Fatalf("popped at %v, want 12ns", poppedAt)
	}
}

func TestFifoOrderPreserved(t *testing.T) {
	eng := sim.NewEngine()
	fast, slow := clocks()
	f := NewFifo(eng, "ord", fast, slow, 4, 2)
	var got []int
	eng.Go("writer", func(th *sim.Thread) {
		for i := 0; i < 20; i++ {
			f.PushBlocking(th, i, nil)
			th.SleepCycles(fast, 1)
		}
	})
	eng.Go("reader", func(th *sim.Thread) {
		for i := 0; i < 20; i++ {
			v, _ := f.PopBlocking(th)
			got = append(got, v.(int))
			th.SleepCycles(slow, 1)
		}
	})
	eng.Run(0)
	if len(got) != 20 {
		t.Fatalf("got %d entries", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated: %v", got)
		}
	}
}

func TestFifoCapacityBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	fast, slow := clocks()
	f := NewFifo(eng, "bp", fast, slow, 2, 2)
	pushed := 0
	eng.At(0, func() {
		for f.TryPush(pushed, nil) {
			pushed++
			if pushed > 10 {
				break
			}
		}
	})
	eng.Run(0)
	if pushed != 2 {
		t.Fatalf("accepted %d pushes into depth-2 fifo with no reader", pushed)
	}
}

func TestFifoCreditReturnDelay(t *testing.T) {
	eng := sim.NewEngine()
	fast, slow := clocks()
	f := NewFifo(eng, "credit", fast, slow, 1, 2)
	var secondPushAt sim.Time
	eng.Go("writer", func(th *sim.Thread) {
		f.PushBlocking(th, 1, nil)
		f.PushBlocking(th, 2, nil) // must wait for pop + credit return
		secondPushAt = th.Now()
	})
	var popAt sim.Time
	eng.Go("reader", func(th *sim.Thread) {
		f.PopBlocking(th)
		popAt = th.Now()
		f.PopBlocking(th)
	})
	eng.Run(0)
	if popAt != 20000 {
		t.Fatalf("pop at %v", popAt)
	}
	// Free slot visible to writer 2 fast edges strictly after the slow read
	// edge (20000) = 22000.
	if secondPushAt != 22000 {
		t.Fatalf("second push at %v, want 22ns", secondPushAt)
	}
}

func TestFifoTXAttribution(t *testing.T) {
	eng := sim.NewEngine()
	fast, slow := clocks()
	f := NewFifo(eng, "tx", fast, slow, 8, 2)
	tx := sim.NewTX(0)
	eng.At(0, func() { f.TryPush("p", tx) })
	eng.Go("r", func(th *sim.Thread) { f.PopBlocking(th) })
	eng.Run(0)
	if tx.Parts[sim.CatCDC] != 20000 {
		t.Fatalf("CDC attribution = %v, want 20ns", tx.Parts[sim.CatCDC])
	}
}

func TestFifoSameClockDomain(t *testing.T) {
	// Degenerate but legal: both sides on the same clock. Latency is still
	// 2 cycles (synchronizer flops), as in real designs that keep the async
	// FIFO for timing closure.
	eng := sim.NewEngine()
	fast, _ := clocks()
	f := NewFifo(eng, "same", fast, fast, 8, 2)
	var at sim.Time
	eng.Go("r", func(th *sim.Thread) {
		f.PopBlocking(th)
		at = th.Now()
	})
	eng.At(0, func() { f.TryPush(1, nil) })
	eng.Run(0)
	if at != 2000 {
		t.Fatalf("same-domain latency %v, want 2ns", at)
	}
}

// Property: for random clock periods and push times, entries pop in order,
// none are lost or duplicated, and every entry's visibility delay is at
// least stages * readerPeriod relative to its write edge.
func TestFifoProperty(t *testing.T) {
	f := func(wp, rp uint16, seed uint8) bool {
		wper := sim.Time(wp%9000) + 500
		rper := sim.Time(rp%9000) + 500
		eng := sim.NewEngine()
		wclk := sim.NewClock("w", wper)
		rclk := sim.NewClock("r", rper)
		fifo := NewFifo(eng, "p", wclk, rclk, 4, 2)
		const n = 25
		var got []int
		eng.Go("writer", func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				fifo.PushBlocking(th, i, nil)
				th.SleepCycles(wclk, int64(seed%3)+1)
			}
		})
		eng.Go("reader", func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				v, _ := fifo.PopBlocking(th)
				got = append(got, v.(int))
				th.SleepCycles(rclk, int64(seed%2)+1)
			}
		})
		eng.Run(0)
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return eng.LiveThreads() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
