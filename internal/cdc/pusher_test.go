package cdc

import (
	"testing"

	"duet/internal/sim"
)

// TestPusherPreservesOrderUnderBackpressure fills a tiny FIFO, keeps
// pushing through the Pusher, and verifies the reader sees strict FIFO
// order — the property a naive retry loop violates.
func TestPusherPreservesOrderUnderBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	fast := sim.NewClock("fast", 1000)
	slow := sim.NewClock("slow", 10000)
	f := NewFifo(eng, "p", fast, slow, 2, 2)
	p := NewPusher(eng, f)

	const n = 30
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			p.Push(i, nil)
		}
	})
	var got []int
	eng.Go("reader", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			v, _ := f.PopBlocking(th)
			got = append(got, v.(int))
			th.SleepCycles(slow, 2)
		}
	})
	eng.Run(0)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: %v", i, got)
		}
	}
}

// TestPusherInterleavedProducers: pushes from different engine events keep
// their global submission order.
func TestPusherInterleavedProducers(t *testing.T) {
	eng := sim.NewEngine()
	fast := sim.NewClock("fast", 1000)
	f := NewFifo(eng, "p2", fast, fast, 1, 2)
	p := NewPusher(eng, f)
	want := []int{}
	for i := 0; i < 12; i++ {
		i := i
		want = append(want, i)
		eng.At(sim.Time(i)*500, func() { p.Push(i, nil) })
	}
	var got []int
	eng.Go("reader", func(th *sim.Thread) {
		for range want {
			v, _ := f.PopBlocking(th)
			got = append(got, v.(int))
		}
	})
	eng.Run(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if p.Backlog() != 0 {
		t.Fatalf("backlog = %d", p.Backlog())
	}
}
