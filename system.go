package duet

import (
	"fmt"
	"math"

	"duet/internal/coherence"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/mmio"
	"duet/internal/mmu"
	"duet/internal/noc"
	"duet/internal/params"
	"duet/internal/sched"
	"duet/internal/sim"
)

// Style selects the system organization.
type Style int

// System styles.
const (
	// StyleCPUOnly is the processor-only baseline: no eFPGA, no adapter.
	StyleCPUOnly Style = iota
	// StyleDuet is the paper's architecture: fast-domain Proxy Caches and
	// Shadow Registers in Duet Adapters.
	StyleDuet
	// StyleFPSoC is the §V-D baseline: the FPGA-side cache runs in the
	// slow clock domain and all shadow registers are downgraded to
	// normal registers.
	StyleFPSoC
)

func (s Style) String() string {
	names := [...]string{"cpu-only", "duet", "fpsoc"}
	if s < 0 || int(s) >= len(names) {
		return "unknown"
	}
	return names[s]
}

// Config describes a Dolly instance (paper §IV: Dolly-PpMm has p
// processors and m memory hubs).
type Config struct {
	Cores   int
	MemHubs int
	Style   Style

	// EFPGAs instantiates multiple independent eFPGAs, each behind its
	// own Duet Adapter with MemHubs memory hubs (paper Fig. 1c: "multiple
	// independent embedded FPGAs"). Defaults to 1.
	EFPGAs int

	// RegSpecs configures each adapter's soft registers. Defaults to 8
	// normal registers when empty.
	RegSpecs []core.SoftRegSpec

	// FabricCap is the eFPGA capacity; a generous default is used when
	// zero (capacity is checked against the configured bitstream).
	FabricCap efpga.Resources

	// FPGAFreqMHz sets the initial eFPGA clock (later adjustable through
	// the FPGA manager or bitstream Fmax). Defaults to 100 MHz.
	FPGAFreqMHz float64

	// SyncStages sets the CDC synchronizer depth of every adapter FIFO
	// (the §IV metastability-hardening ablation knob). 0 selects the
	// paper's 2-stage design point. Carried per system, so concurrent
	// sweeps over the depth never race on shared state.
	SyncStages int
}

// System is one built Dolly instance.
type System struct {
	Cfg   Config
	Eng   *sim.Engine
	Mesh  *noc.Mesh
	Dom   *coherence.Domain
	Cores []*cpu.Core
	PT    *mmu.PageTable

	// Adapters and Fabrics hold one entry per eFPGA; Adapter and Fabric
	// alias the first for the common single-eFPGA case.
	Adapters []*core.Adapter
	Fabrics  []*efpga.Fabric
	Adapter  *core.Adapter
	Fabric   *efpga.Fabric

	scheduler *sched.Scheduler
	route     mmio.Router

	next uint64 // bump allocator
}

// New builds a system. Tiles are laid out row-major: cores first, then
// the C-tile (control hub + hub 0), then M-tiles, mirroring Dolly's
// P-tile/C-tile/M-tile structure (paper Fig. 8).
func New(cfg Config) *System {
	if cfg.Cores <= 0 {
		panic("duet: need at least one core")
	}
	if cfg.Style == StyleCPUOnly && cfg.MemHubs > 0 {
		panic("duet: CPU-only systems have no memory hubs")
	}
	if cfg.FPGAFreqMHz == 0 {
		cfg.FPGAFreqMHz = 100
	}
	if cfg.EFPGAs == 0 {
		cfg.EFPGAs = 1
	}
	if cfg.Style == StyleCPUOnly {
		cfg.EFPGAs = 0
	}

	// Pre-size the event queue for a full Dolly instance so the kernel's
	// calendar reaches steady state without growing mid-run. Concurrently
	// pending events are bounded by component count (each clocked model
	// keeps O(1) events in flight), so 1k covers the largest configs.
	eng := sim.NewEngineCap(1024)
	fastClk := sim.NewClock("sys", params.CPUClockPS)

	tilesPerAdapter := 1 // C-tile
	if cfg.MemHubs > 1 {
		tilesPerAdapter += cfg.MemHubs - 1 // M-tiles
	}
	tiles := cfg.Cores + cfg.EFPGAs*tilesPerAdapter
	w := int(math.Ceil(math.Sqrt(float64(tiles))))
	h := (tiles + w - 1) / w
	mesh := noc.NewMesh(eng, fastClk, w, h)

	homeTiles := make([]int, 0, tiles)
	for i := 0; i < tiles; i++ {
		homeTiles = append(homeTiles, i)
	}
	dom := coherence.NewDomain(eng, mesh, homeTiles)

	s := &System{
		Cfg:  cfg,
		Eng:  eng,
		Mesh: mesh,
		Dom:  dom,
		PT:   mmu.NewPageTable(),
		next: 0x10000,
	}

	ctrlTiles := make([]int, cfg.EFPGAs)
	for a := range ctrlTiles {
		ctrlTiles[a] = cfg.Cores + a*tilesPerAdapter
	}
	if cfg.EFPGAs > 0 {
		s.route = func(addr uint64) (int, bool) {
			if addr < params.MMIOBase {
				return 0, false
			}
			id := int((addr - params.MMIOBase) / core.AdapterStride)
			if id >= len(ctrlTiles) {
				return 0, false
			}
			return ctrlTiles[id], true
		}
	}
	for i := 0; i < cfg.Cores; i++ {
		s.Cores = append(s.Cores, cpu.New(eng, mesh, dom, i, i, s.route))
	}

	capacity := cfg.FabricCap
	if capacity == (efpga.Resources{}) {
		capacity = efpga.DefaultFabricCap
	}
	for a := 0; a < cfg.EFPGAs; a++ {
		fab := efpga.NewFabric(eng, fmt.Sprintf("efpga%d", a), capacity)
		fab.SetFreqMHz(cfg.FPGAFreqMHz)
		hubTiles := make([]int, 0, cfg.MemHubs)
		for i := 0; i < cfg.MemHubs; i++ {
			hubTiles = append(hubTiles, ctrlTiles[a]+i)
		}
		ad := core.NewAdapter(eng, mesh, dom, fab, core.AdapterConfig{
			ID:          a,
			CtrlTile:    ctrlTiles[a],
			HubTiles:    hubTiles,
			CacheIDBase: 1000 + a*100,
			RegSpecs:    cfg.RegSpecs,
			FPSoC:       cfg.Style == StyleFPSoC,
			IRQ:         s.Cores[0],
			SyncStages:  cfg.SyncStages,
		})
		s.Adapters = append(s.Adapters, ad)
		s.Fabrics = append(s.Fabrics, fab)
	}
	if cfg.EFPGAs > 0 {
		s.Adapter = s.Adapters[0]
		s.Fabric = s.Fabrics[0]
		// The kernel TLB-fault handler runs on core 0 and dispatches on
		// the raising adapter.
		handlers := make([]func(cpu.Proc, cpu.IRQ), len(s.Adapters))
		for i, ad := range s.Adapters {
			handlers[i] = ad.KernelTLBHandler(s.PT)
		}
		s.Cores[0].SetIRQHandler(func(p cpu.Proc, irq cpu.IRQ) {
			for _, h := range handlers {
				h(p, irq)
			}
		})
	}
	return s
}

// Alloc reserves n bytes of simulated physical memory (64-byte aligned)
// and returns the base address.
func (s *System) Alloc(n int) uint64 {
	base := s.next
	s.next += uint64((n + 63) &^ 63)
	return base
}

// AllocPage reserves one page-aligned page and returns its base.
func (s *System) AllocPage() uint64 {
	s.next = (s.next + mmu.PageSize - 1) &^ uint64(mmu.PageSize-1)
	base := s.next
	s.next += mmu.PageSize
	return base
}

// InstallAccelerator registers, configures and starts a bitstream on
// eFPGA 0, and runs its clock at the accelerator's maximum frequency (as
// the paper's per-benchmark evaluation does). Programming-engine flows go
// through MMIO instead (see Program).
func (s *System) InstallAccelerator(bs *efpga.Bitstream) error {
	return s.InstallAcceleratorOn(0, bs)
}

// InstallAcceleratorOn installs a bitstream on eFPGA idx.
func (s *System) InstallAcceleratorOn(idx int, bs *efpga.Bitstream) error {
	fab := s.Fabrics[idx]
	if _, err := fab.Register(bs); err != nil {
		return err
	}
	if err := fab.Configure(bs); err != nil {
		return err
	}
	if bs.FmaxMHz > 0 {
		fab.SetFreqMHz(bs.FmaxMHz)
	}
	s.Adapters[idx].StartAccelerator()
	return nil
}

// readMem reads size bytes at addr, little-endian, from the coherent
// image of the containing cache line (dirty cache copies win over memory).
func (s *System) readMem(addr uint64, size int) uint64 {
	line := s.Dom.DebugReadLine(addr &^ (params.LineBytes - 1))
	off := int(addr % params.LineBytes)
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(line[off+i]) << (8 * i)
	}
	return v
}

// Scheduler returns the system's multi-tenant accelerator-as-a-service
// scheduler over all configured eFPGAs, creating it with cfg on first
// use. Subsequent calls return the existing scheduler and ignore cfg.
// CPU-only systems have no eFPGAs and therefore no scheduler (panics).
func (s *System) Scheduler(cfg sched.Config) *sched.Scheduler {
	return s.SchedulerWith(cfg)
}

// SchedulerWith is Scheduler with extra execution backends appended
// after the system's cycle-level eFPGA workers — e.g. internal/model's
// CPU soft-path fallback for hybrid placement. Like Scheduler it builds
// on first use only; extra backends must schedule on this system's
// engine.
func (s *System) SchedulerWith(cfg sched.Config, extra ...sched.Backend) *sched.Scheduler {
	return s.SchedulerWrapped(cfg, nil, extra...)
}

// SchedulerWrapped is SchedulerWith with a backend decorator applied to
// every worker (cycle eFPGA workers and extras alike) before the
// scheduler sees them — the cycle-path fault-injection seam, mirroring
// model.Config.Wrap so both backends fail identically under one fault
// plan. A nil wrap is the identity.
func (s *System) SchedulerWrapped(cfg sched.Config, wrap func(worker int, be sched.Backend) sched.Backend, extra ...sched.Backend) *sched.Scheduler {
	if s.scheduler == nil {
		backends := append(sched.CycleBackends(s.Eng, s.Adapters, s.Fabrics), extra...)
		if wrap != nil {
			for i, be := range backends {
				backends[i] = wrap(i, be)
			}
		}
		s.scheduler = sched.New(s.Eng, backends, cfg)
	}
	return s.scheduler
}

// MMIORouter returns the system's MMIO address router: it maps an
// address to the NoC tile of the owning adapter's control hub, with
// ok=false for addresses no adapter claims. CPU-only systems have no
// MMIO devices and return nil.
func (s *System) MMIORouter() mmio.Router { return s.route }

// ReadMem64 reads the current coherent value of a 64-bit word — for
// result checking after a run.
func (s *System) ReadMem64(addr uint64) uint64 { return s.readMem(addr, 8) }

// ReadMem32 reads the current coherent value of a 32-bit word.
func (s *System) ReadMem32(addr uint64) uint32 { return uint32(s.readMem(addr, 4)) }

// Run drains the event queue. It returns the final simulation time.
func (s *System) Run() sim.Time {
	s.Eng.Run(0)
	return s.Eng.Now()
}

// RunChecked runs to completion and validates coherence invariants.
func (s *System) RunChecked() (sim.Time, error) {
	t := s.Run()
	if !s.Dom.Quiet() {
		return t, fmt.Errorf("duet: coherence domain not quiescent at end of run")
	}
	if err := coherence.CheckCoherence(s.Dom); err != nil {
		return t, err
	}
	return t, nil
}

// --- MMIO address helpers (the "device driver" constants) ------------------

// SoftRegAddr returns the MMIO address of soft register reg on adapter 0.
func SoftRegAddr(reg int) uint64 { return SoftRegAddrOn(0, reg) }

// SoftRegAddrOn returns the MMIO address of a soft register on adapter a.
func SoftRegAddrOn(a, reg int) uint64 {
	return core.BaseAddr(a) + 0x8000 + uint64(reg)*8
}

// HubSwitchAddr returns the MMIO address of a feature switch on adapter 0.
func HubSwitchAddr(hub int, sw uint64) uint64 { return HubSwitchAddrOn(0, hub, sw) }

// HubSwitchAddrOn returns the MMIO address of a feature switch on adapter a.
func HubSwitchAddrOn(a, hub int, sw uint64) uint64 {
	return core.BaseAddr(a) + 0x1000 + uint64(hub)*0x100 + sw
}

// MgrRegAddr returns the MMIO address of an FPGA-manager register on
// adapter 0.
func MgrRegAddr(reg uint64) uint64 { return core.BaseAddr(0) + reg }

// MgrRegAddrOn returns the MMIO address of an FPGA-manager register on
// adapter a.
func MgrRegAddrOn(a int, reg uint64) uint64 { return core.BaseAddr(a) + reg }

// TLBRegAddr returns the MMIO address of a TLB-window register.
func TLBRegAddr(hub int, reg uint64) uint64 {
	return core.BaseAddr(0) + 0x4000 + uint64(hub)*0x100 + reg
}

// EnableHub turns on memory hub i with the given feature switches; call
// from a host program running on a core.
func EnableHub(p cpu.Proc, hub int, fwdInv, atomics, virtMode bool) {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	p.MMIOWrite64(HubSwitchAddr(hub, core.SwFwdInv), b(fwdInv))
	p.MMIOWrite64(HubSwitchAddr(hub, core.SwAtomics), b(atomics))
	p.MMIOWrite64(HubSwitchAddr(hub, core.SwVirtMode), b(virtMode))
	p.MMIOWrite64(HubSwitchAddr(hub, core.SwEnable), 1)
}

// ProgStatus is the outcome of a programming-flow poll loop.
type ProgStatus int

// Programming-flow outcomes.
const (
	// ProgOK: the engine verified and installed the bitstream.
	ProgOK ProgStatus = iota
	// ProgFailed: the engine reported a programming error.
	ProgFailed
	// ProgWedged: the engine reached neither ready nor error within the
	// poll bound (a wedged programming engine must not hang the host).
	ProgWedged
)

func (s ProgStatus) String() string {
	names := [...]string{"ok", "failed", "wedged"}
	if s < 0 || int(s) >= len(names) {
		return "unknown"
	}
	return names[s]
}

// maxProgramPolls bounds the Program/ProgramStatus poll loop. Each poll
// costs ~50 core cycles plus the MMIO round trip, so the bound covers
// configuration images orders of magnitude larger than any modeled fabric
// while still terminating against a wedged engine.
const maxProgramPolls = 4096

// Program runs the MMIO programming flow for a registered bitstream and
// polls until the engine reports ready or error. It returns false on
// programming failure, including a wedged engine that never resolves
// within the poll bound (ProgramStatus distinguishes the cases).
func Program(p cpu.Proc, bitstreamID int) bool {
	return ProgramStatus(p, bitstreamID) == ProgOK
}

// ProgramStatus runs the MMIO programming flow and reports the distinct
// outcome: ok, failed, or wedged (poll bound exhausted).
func ProgramStatus(p cpu.Proc, bitstreamID int) ProgStatus {
	p.MMIOWrite64(MgrRegAddr(core.RegProgram), uint64(bitstreamID))
	for i := 0; i < maxProgramPolls; i++ {
		st := p.MMIORead64(MgrRegAddr(core.RegStatus)) & 0xff
		if st == core.StatusReady {
			return ProgOK
		}
		if st == core.StatusError {
			return ProgFailed
		}
		p.Exec(50)
	}
	return ProgWedged
}
